(* The Theorem 2 lower-bound construction, replayed live (Section 2 and
   Figure 1): a single metric point, facility cost ceil(|sigma|/sqrt|S|),
   and singleton requests for a hidden random subset S' of commodities.

   Two regimes:
     |S'| = sqrt|S| : the Yao distribution — OPT pays 1, every online
                      algorithm pays Omega(sqrt|S|);
     |S'| = |S|     : prediction pays — algorithms that eventually build a
                      facility offering all of S (PD, RAND) reach an O(1)
                      ratio, per-commodity algorithms stay at sqrt|S|.

     dune exec examples/adversarial_lower_bound.exe *)

open Omflp_prelude
open Omflp_commodity
open Omflp_instance
open Omflp_core

let n_commodities = 256

let regime name n_requested =
  let rng = Splitmix.of_int 99 in
  let inst =
    Generators.single_point_adversary rng ~n_commodities
      ~cost:Cost_function.theorem2 ~n_requested
  in
  let opt =
    Omflp_offline.Exact.single_point_partition
      ~g:(fun k ->
        float_of_int (Numerics.ceil_div k (Numerics.isqrt n_commodities)))
      ~n_requested
  in
  Format.printf "@.-- %s: %d singleton requests, OPT = %.0f --@." name
    n_requested opt;
  let table = Texttable.create [ "algorithm"; "cost"; "ratio"; "facilities"; "large" ] in
  List.iter
    (fun (aname, algo) ->
      let run = Simulator.run ~seed:3 algo inst in
      Texttable.add_row table
        [
          aname;
          Texttable.cell_f (Run.total_cost run);
          Texttable.cell_f (Run.total_cost run /. opt);
          Texttable.cell_i (List.length run.Run.facilities);
          Texttable.cell_i (Run.n_large run);
        ])
    (Registry.all ());
  Texttable.print table

let () =
  let root = Numerics.isqrt n_commodities in
  Format.printf
    "Theorem 2 adversary on a single point: |S| = %d, sqrt|S| = %d,@."
    n_commodities root;
  Format.printf "construction cost g(|sigma|) = ceil(|sigma| / %d).@." root;
  regime "lower-bound regime (|S'| = sqrt|S|)" root;
  regime "prediction regime (|S'| = |S|)" n_commodities;
  Format.printf
    "@.Reading: in the first regime every algorithm is ~sqrt|S|-competitive@.\
     (the paper's Omega(sqrt|S|) lower bound binds everyone); in the second,@.\
     the predicting algorithms open one large facility after ~sqrt|S| requests@.\
     and stop paying, while INDEP/GREEDY keep buying singleton facilities.@."
