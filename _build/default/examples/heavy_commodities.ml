(* Section 5 of the paper, live: what happens when one commodity is
   "heavy" — adding it to any configuration costs a large surcharge, so
   Condition 1 fails and the vanilla algorithm's all-commodity large
   facilities become expensive. The paper proposes excluding heavy
   commodities from large facilities and handling them separately; that is
   the HEAVY-AWARE algorithm.

     dune exec examples/heavy_commodities.exe *)

open Omflp_prelude
open Omflp_commodity
open Omflp_instance
open Omflp_core

let n_commodities = 6

let cost_with_heavy ~w ~n_commodities ~n_sites =
  let base = Cost_function.power_law ~n_commodities ~n_sites ~x:1.0 in
  let surcharges = Array.make n_commodities 0.0 in
  surcharges.(0) <- w;
  Cost_function.with_surcharge base ~surcharges

let make_instance seed ~surcharge =
  let rng = Splitmix.of_int seed in
  Generators.clustered rng ~clusters:3 ~per_cluster:4 ~n_requests:40
    ~n_commodities ~side:80.0 ~spread:2.0
    ~cost:(cost_with_heavy ~w:surcharge)

let () =
  let surcharge = 15.0 in
  let inst = make_instance 704 ~surcharge in
  Format.printf "%a@." Instance.pp inst;
  Format.printf "%a@.@." Instance_stats.pp (Instance_stats.compute inst);

  (* The cost function breaks Condition 1 — the validator sees it. *)
  (match Cost_function.check_condition1 inst.Instance.cost with
  | Ok () -> Format.printf "Condition 1 holds (unexpected!)@."
  | Error (m, sigma) ->
      Format.printf "Condition 1 violated, e.g. at site %d for %a@." m Cset.pp
        sigma);
  let heavy = Heavy.detect inst.Instance.cost in
  Format.printf "detected heavy commodities: %a (marginal %.2f vs median)@.@."
    Cset.pp heavy
    (Heavy.marginal inst.Instance.cost ~commodity:0);

  let table = Texttable.create [ "algorithm"; "total"; "facilities"; "bundled" ] in
  let bundled run =
    (* facilities offering the heavy commodity together with others *)
    List.length
      (List.filter
         (fun (f : Facility.t) ->
           Cset.mem f.Facility.offered 0 && Cset.cardinal f.Facility.offered > 1)
         run.Run.facilities)
  in
  let show name run =
    Texttable.add_row table
      [
        name;
        Texttable.cell_f (Run.total_cost run);
        Texttable.cell_i (List.length run.Run.facilities);
        Texttable.cell_i (bundled run);
      ]
  in
  show Pd_omflp.name (Simulator.run (module Pd_omflp) inst);
  show Heavy_aware.name (Simulator.run (module Heavy_aware) inst);
  show Indep_baseline.name (Simulator.run (module Indep_baseline) inst);
  show Rand_omflp.name (Simulator.run ~seed:3 (module Rand_omflp) inst);
  Texttable.print table;
  Format.printf
    "@.The 'bundled' column counts facilities that pay the %.0f surcharge;@."
    surcharge;
  Format.printf
    "HEAVY-AWARE keeps it at zero by serving the heavy commodity with its@.";
  Format.printf "own single-commodity facilities (the paper's proposed fix).@.";

  (* One instance is anecdote; aggregate over 10 workloads. *)
  let pd_total = ref 0.0 and ha_total = ref 0.0 in
  for seed = 700 to 709 do
    let inst = make_instance seed ~surcharge in
    pd_total :=
      !pd_total +. Run.total_cost (Simulator.run (module Pd_omflp) inst);
    ha_total :=
      !ha_total +. Run.total_cost (Simulator.run (module Heavy_aware) inst)
  done;
  Format.printf "@.aggregate over 10 workloads: PD %.1f vs HEAVY-AWARE %.1f (%.1f%% saved)@."
    !pd_total !ha_total
    (100.0 *. (!pd_total -. !ha_total) /. !pd_total)
