(* The paper's motivating scenario (Section 1): a provider places service
   instances in a network. Clients appear at network nodes over time and
   each asks for a subset of the offered services; instantiating a bundle
   of services in one VM costs less than instantiating them separately,
   and talking to one node serving several services is cheaper than
   talking to several nodes.

   We build a random data-center-like network, derive its shortest-path
   metric, and replay a day of client arrivals against every online
   algorithm.

     dune exec examples/service_placement.exe *)

open Omflp_prelude
open Omflp_commodity
open Omflp_instance
open Omflp_core

let n_services = 6
let n_nodes = 24
let n_clients = 80

let service_names =
  [| "auth"; "search"; "storage"; "video"; "payments"; "telemetry" |]

let () =
  let rng = Splitmix.of_int 2026 in
  (* Network: random connected topology with a few redundant links. *)
  let graph =
    Omflp_metric.Graph.random_connected rng ~n:n_nodes ~extra_edges:12
      ~max_weight:5.0
  in
  let metric = Omflp_metric.Graph.shortest_path_metric graph in
  Format.printf "network: %d nodes, %d links, diameter %.2f@." n_nodes
    (Omflp_metric.Graph.n_edges graph)
    (Omflp_metric.Finite_metric.diameter metric);

  (* VM cost: sqrt-concave in the bundle size, with per-node multipliers
     (some nodes have cheaper capacity). *)
  let base = Cost_function.power_law ~n_commodities:n_services ~n_sites:n_nodes ~x:1.0 in
  let multipliers =
    Array.init n_nodes (fun _ -> Sampler.uniform_float rng ~lo:2.0 ~hi:6.0)
  in
  let cost = Cost_function.site_scaled base multipliers in

  (* Clients ask for correlated service bundles (e.g. video implies auth)
     with Zipf popularity. *)
  let requests =
    Array.init n_clients (fun _ ->
        Request.make
          ~site:(Splitmix.int rng n_nodes)
          ~demand:
            (Demand.sample rng ~n_commodities:n_services
               (Demand.Zipf_bundle { zipf_s = 1.2; max_size = 3 })))
  in
  let instance = Instance.make ~name:"service placement" ~metric ~cost ~requests in
  Format.printf "%a@.@." Instance.pp instance;

  (* Offline reference: greedy + local search. *)
  let bracket = Omflp_offline.Opt_estimate.bracket instance in
  Format.printf "offline best known: %.2f (%s)@.@."
    bracket.Omflp_offline.Opt_estimate.upper
    bracket.Omflp_offline.Opt_estimate.upper_method;

  let table =
    Texttable.create
      [ "algorithm"; "total"; "VMs"; "large VMs"; "assignment"; "ratio<=" ]
  in
  List.iter
    (fun (name, algo) ->
      let run = Simulator.run ~seed:7 algo instance in
      Texttable.add_row table
        [
          name;
          Texttable.cell_f (Run.total_cost run);
          Texttable.cell_i (List.length run.Run.facilities);
          Texttable.cell_i (Run.n_large run);
          Texttable.cell_f run.Run.assignment_cost;
          Texttable.cell_f
            (Run.total_cost run /. bracket.Omflp_offline.Opt_estimate.upper);
        ])
    (Registry.all ());
  Texttable.print table;

  (* Show where PD-OMFLP placed its service bundles. *)
  let run = Simulator.run ~seed:7 (module Pd_omflp) instance in
  Format.printf "@.PD-OMFLP placement:@.";
  List.iter
    (fun (f : Facility.t) ->
      let services =
        String.concat "+"
          (List.map (fun e -> service_names.(e)) (Cset.elements f.offered))
      in
      Format.printf "  node %2d: %-50s (cost %.2f, at client %d)@." f.site
        services f.cost f.opened_at)
    run.Run.facilities
