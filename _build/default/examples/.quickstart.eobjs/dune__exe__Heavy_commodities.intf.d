examples/heavy_commodities.mli:
