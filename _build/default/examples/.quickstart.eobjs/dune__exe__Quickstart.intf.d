examples/quickstart.mli:
