examples/adversarial_lower_bound.mli:
