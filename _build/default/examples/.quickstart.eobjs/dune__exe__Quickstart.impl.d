examples/quickstart.ml: Array Cost_function Cset Dual_checker Facility Format Instance List Omflp_commodity Omflp_core Omflp_instance Omflp_metric Omflp_offline Pd_omflp Request Run Simulator
