examples/cdn_zipf.mli:
