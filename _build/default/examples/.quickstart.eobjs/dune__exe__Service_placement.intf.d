examples/service_placement.mli:
