(** Random metric-space generators for workloads and property tests. *)

open Omflp_prelude

(** [random_line rng ~n ~length] places [n] points uniformly on
    [[0, length]]. *)
val random_line : Splitmix.t -> n:int -> length:float -> Finite_metric.t

(** [random_euclidean rng ~n ~side] places [n] points uniformly in a
    [side × side] square. *)
val random_euclidean : Splitmix.t -> n:int -> side:float -> Finite_metric.t

(** [clustered_euclidean rng ~clusters ~per_cluster ~side ~spread] places
    cluster centres uniformly and points Gaussian around them; the classic
    facility-location workload where co-locating commodities pays off. *)
val clustered_euclidean :
  Splitmix.t ->
  clusters:int ->
  per_cluster:int ->
  side:float ->
  spread:float ->
  Finite_metric.t

(** [random_graph_metric rng ~n ~extra_edges ~max_weight] is the
    shortest-path metric of a random connected network. *)
val random_graph_metric :
  Splitmix.t -> n:int -> extra_edges:int -> max_weight:float -> Finite_metric.t

(** [perturbed_uniform rng ~n ~base ~jitter] is a metric with all pairwise
    distances in [[base, base + jitter]]; always metric when
    [jitter <= base]. Raises [Invalid_argument] otherwise. *)
val perturbed_uniform :
  Splitmix.t -> n:int -> base:float -> jitter:float -> Finite_metric.t
