type t = { size : int; dmat : float array array }

let size t = t.size

let dist t a b =
  if a < 0 || a >= t.size || b < 0 || b >= t.size then
    invalid_arg
      (Printf.sprintf "Finite_metric.dist: (%d, %d) outside [0, %d)" a b t.size);
  t.dmat.(a).(b)

let check_triangle_matrix m =
  let n = Array.length m in
  let tol = Omflp_prelude.Numerics.eps in
  let violation = ref None in
  (try
     for i = 0 to n - 1 do
       for j = 0 to n - 1 do
         for k = 0 to n - 1 do
           if m.(i).(j) > m.(i).(k) +. m.(k).(j) +. tol then begin
             violation := Some (i, j, k);
             raise Exit
           end
         done
       done
     done
   with Exit -> ());
  match !violation with None -> Ok () | Some v -> Error v

let validate m =
  let n = Array.length m in
  Array.iteri
    (fun i row ->
      if Array.length row <> n then
        invalid_arg "Finite_metric.of_matrix: matrix is not square";
      Array.iteri
        (fun j v ->
          if v < 0.0 then
            invalid_arg "Finite_metric.of_matrix: negative distance";
          if Float.abs (v -. m.(j).(i)) > Omflp_prelude.Numerics.eps then
            invalid_arg "Finite_metric.of_matrix: asymmetric matrix";
          if i = j && v <> 0.0 then
            invalid_arg "Finite_metric.of_matrix: non-zero diagonal")
        row)
    m;
  match check_triangle_matrix m with
  | Ok () -> ()
  | Error (i, j, k) ->
      invalid_arg
        (Printf.sprintf
           "Finite_metric.of_matrix: triangle inequality violated at (%d, %d, %d)"
           i j k)

let of_matrix m =
  validate m;
  { size = Array.length m; dmat = Array.map Array.copy m }

let of_matrix_unchecked m = { size = Array.length m; dmat = m }

let line positions =
  let n = Array.length positions in
  let dmat =
    Array.init n (fun i ->
        Array.init n (fun j -> Float.abs (positions.(i) -. positions.(j))))
  in
  of_matrix_unchecked dmat

let euclidean points =
  let n = Array.length points in
  let d (x1, y1) (x2, y2) =
    let dx = x1 -. x2 and dy = y1 -. y2 in
    sqrt ((dx *. dx) +. (dy *. dy))
  in
  let dmat =
    Array.init n (fun i -> Array.init n (fun j -> d points.(i) points.(j)))
  in
  of_matrix_unchecked dmat

let single_point () = of_matrix_unchecked [| [| 0.0 |] |]

let uniform n ~d =
  if d < 0.0 then invalid_arg "Finite_metric.uniform: negative distance";
  let dmat =
    Array.init n (fun i -> Array.init n (fun j -> if i = j then 0.0 else d))
  in
  of_matrix_unchecked dmat

let check_triangle t = check_triangle_matrix t.dmat

let diameter t =
  let d = ref 0.0 in
  Array.iter (Array.iter (fun v -> if v > !d then d := v)) t.dmat;
  !d

let nearest t ~from candidates =
  List.fold_left
    (fun best c ->
      let dc = dist t from c in
      match best with
      | Some (_, db) when db <= dc -> best
      | _ -> Some (c, dc))
    None candidates

let pp ppf t =
  Format.fprintf ppf "metric(%d points, diameter %.4g)" t.size (diameter t)
