open Omflp_prelude

type t = { n : int; adj : (int * float) list array; mutable edges : int }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; adj = Array.make n []; edges = 0 }

let n_vertices g = g.n
let n_edges g = g.edges

let add_edge g u v w =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then
    invalid_arg "Graph.add_edge: vertex out of range";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if w < 0.0 then invalid_arg "Graph.add_edge: negative weight";
  g.adj.(u) <- (v, w) :: g.adj.(u);
  g.adj.(v) <- (u, w) :: g.adj.(v);
  g.edges <- g.edges + 1

let neighbors g u =
  if u < 0 || u >= g.n then invalid_arg "Graph.neighbors: vertex out of range";
  g.adj.(u)

let dijkstra g src =
  if src < 0 || src >= g.n then invalid_arg "Graph.dijkstra: vertex out of range";
  let dist = Array.make g.n infinity in
  let settled = Array.make g.n false in
  let heap = Pqueue.create () in
  dist.(src) <- 0.0;
  Pqueue.push heap 0.0 src;
  while not (Pqueue.is_empty heap) do
    let d, u = Pqueue.pop_min heap in
    if not settled.(u) then begin
      settled.(u) <- true;
      List.iter
        (fun (v, w) ->
          let nd = d +. w in
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            Pqueue.push heap nd v
          end)
        g.adj.(u)
    end
  done;
  dist

let is_connected g =
  if g.n = 0 then true
  else
    let dist = dijkstra g 0 in
    Array.for_all (fun d -> d < infinity) dist

let shortest_path_metric g =
  let dmat = Array.init g.n (fun src -> dijkstra g src) in
  Array.iter
    (Array.iter (fun d ->
         if d = infinity then
           invalid_arg "Graph.shortest_path_metric: graph is disconnected"))
    dmat;
  Finite_metric.of_matrix_unchecked dmat

let grid ~rows ~cols ~edge_weight =
  if rows <= 0 || cols <= 0 then invalid_arg "Graph.grid: empty grid";
  let g = create (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then add_edge g (id r c) (id r (c + 1)) edge_weight;
      if r + 1 < rows then add_edge g (id r c) (id (r + 1) c) edge_weight
    done
  done;
  g

let ring n ~edge_weight =
  if n < 3 then invalid_arg "Graph.ring: need at least 3 vertices";
  let g = create n in
  for i = 0 to n - 1 do
    add_edge g i ((i + 1) mod n) edge_weight
  done;
  g

let random_connected rng ~n ~extra_edges ~max_weight =
  if n <= 0 then invalid_arg "Graph.random_connected: empty graph";
  if max_weight <= 0.0 then
    invalid_arg "Graph.random_connected: max_weight must be positive";
  let g = create n in
  (* Random spanning tree: attach each vertex to a random earlier one. *)
  let order = Array.init n Fun.id in
  Sampler.shuffle rng order;
  for i = 1 to n - 1 do
    let parent = order.(Splitmix.int rng i) in
    let w = Sampler.uniform_float rng ~lo:(max_weight /. 100.0) ~hi:max_weight in
    add_edge g order.(i) parent w
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra_edges && !attempts < 100 * (extra_edges + 1) do
    incr attempts;
    let u = Splitmix.int rng n and v = Splitmix.int rng n in
    if u <> v then begin
      let w =
        Sampler.uniform_float rng ~lo:(max_weight /. 100.0) ~hi:max_weight
      in
      add_edge g u v w;
      incr added
    end
  done;
  g
