lib/metric/metric_gen.ml: Array Finite_metric Graph Omflp_prelude Sampler
