lib/metric/tree_metric.ml: Array Finite_metric Float Fun List Numerics Omflp_prelude Queue Sampler Splitmix
