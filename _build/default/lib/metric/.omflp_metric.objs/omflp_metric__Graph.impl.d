lib/metric/graph.ml: Array Finite_metric Fun List Omflp_prelude Pqueue Sampler Splitmix
