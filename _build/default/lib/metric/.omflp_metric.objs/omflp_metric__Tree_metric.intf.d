lib/metric/tree_metric.mli: Finite_metric Omflp_prelude
