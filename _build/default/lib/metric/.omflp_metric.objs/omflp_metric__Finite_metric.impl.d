lib/metric/finite_metric.ml: Array Float Format List Omflp_prelude Printf
