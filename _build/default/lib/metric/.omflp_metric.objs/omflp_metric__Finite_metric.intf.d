lib/metric/finite_metric.mli: Format
