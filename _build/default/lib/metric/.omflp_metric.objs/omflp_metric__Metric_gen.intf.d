lib/metric/metric_gen.mli: Finite_metric Omflp_prelude Splitmix
