lib/metric/graph.mli: Finite_metric Omflp_prelude
