(** Weighted undirected graphs and their shortest-path metrics.

    The intro's motivating scenario places services in a network; this
    module provides that substrate: build a network, take its shortest-path
    closure, and use it as the finite metric the online algorithms run on. *)

type t

(** [create n] is an edgeless graph on vertices [0 .. n-1]. *)
val create : int -> t

(** [n_vertices g]. *)
val n_vertices : t -> int

(** [n_edges g]. *)
val n_edges : t -> int

(** [add_edge g u v w] adds an undirected edge of weight [w >= 0]. Raises
    [Invalid_argument] on out-of-range vertices, negative weight, or
    self-loop. Parallel edges are allowed; shortest paths use the minimum. *)
val add_edge : t -> int -> int -> float -> unit

(** [neighbors g u] lists [(v, w)] pairs. *)
val neighbors : t -> int -> (int * float) list

(** [dijkstra g src] computes single-source shortest-path distances;
    unreachable vertices get [infinity]. *)
val dijkstra : t -> int -> float array

(** [shortest_path_metric g] is the all-pairs shortest-path metric. Raises
    [Invalid_argument] if the graph is disconnected (the closure would not
    be a metric). *)
val shortest_path_metric : t -> Finite_metric.t

(** [is_connected g]. *)
val is_connected : t -> bool

(** [grid ~rows ~cols ~edge_weight] is a rows×cols grid network. *)
val grid : rows:int -> cols:int -> edge_weight:float -> t

(** [ring n ~edge_weight] is a cycle on [n >= 3] vertices. *)
val ring : int -> edge_weight:float -> t

(** [random_connected rng ~n ~extra_edges ~max_weight] builds a random
    spanning tree plus [extra_edges] random chords, weights uniform in
    (0, max_weight]. *)
val random_connected :
  Omflp_prelude.Splitmix.t ->
  n:int ->
  extra_edges:int ->
  max_weight:float ->
  t
