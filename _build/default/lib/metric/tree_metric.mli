(** Tree metrics and hierarchically separated trees (HSTs).

    Tree metrics are a classic probabilistic-embedding target for
    facility-location problems; this module provides weighted trees with
    O(log n)-preprocessed LCA distance queries and a simple randomized
    2-HST construction over any finite metric. *)

type t

(** [create n] is an unrooted tree skeleton over vertices [0 .. n-1] with
    no edges yet; add exactly [n-1] edges with {!add_edge} and then call
    {!finalize}. *)
val create : int -> t

(** [add_edge t u v w] adds an edge of positive weight. Raises
    [Invalid_argument] on out-of-range vertices, non-positive weight, or
    if the edge would close a cycle. *)
val add_edge : t -> int -> int -> float -> unit

(** [finalize t] checks the tree is connected (n-1 edges, spanning) and
    precomputes ancestor tables; distance queries are O(log n) afterwards.
    Raises [Invalid_argument] if the tree is incomplete. *)
val finalize : t -> unit

(** [dist t u v] is the unique tree-path distance. Raises [Failure] if
    called before {!finalize}. *)
val dist : t -> int -> int -> float

(** [to_metric t] materializes the full distance matrix as a
    {!Finite_metric.t}. *)
val to_metric : t -> Finite_metric.t

(** [random_tree rng ~n ~max_weight] is a uniformly-attached random tree,
    finalized. *)
val random_tree : Omflp_prelude.Splitmix.t -> n:int -> max_weight:float -> t

(** [hst_of_metric rng metric] builds a random 2-HST that dominates
    [metric]: a laminar ball-partition hierarchy with geometrically
    decreasing diameters (Bartal-style, single sample). The leaves are the
    metric's points; the returned metric satisfies
    [dist_hst u v >= dist u v] for all pairs. Expected distortion is
    O(log n) over the randomness. *)
val hst_of_metric :
  Omflp_prelude.Splitmix.t -> Finite_metric.t -> Finite_metric.t
