open Omflp_prelude

let random_line rng ~n ~length =
  Finite_metric.line
    (Array.init n (fun _ -> Sampler.uniform_float rng ~lo:0.0 ~hi:length))

let random_euclidean rng ~n ~side =
  Finite_metric.euclidean
    (Array.init n (fun _ ->
         ( Sampler.uniform_float rng ~lo:0.0 ~hi:side,
           Sampler.uniform_float rng ~lo:0.0 ~hi:side )))

let clustered_euclidean rng ~clusters ~per_cluster ~side ~spread =
  if clusters <= 0 || per_cluster <= 0 then
    invalid_arg "Metric_gen.clustered_euclidean: empty configuration";
  let centres =
    Array.init clusters (fun _ ->
        ( Sampler.uniform_float rng ~lo:0.0 ~hi:side,
          Sampler.uniform_float rng ~lo:0.0 ~hi:side ))
  in
  let points =
    Array.init (clusters * per_cluster) (fun i ->
        let cx, cy = centres.(i / per_cluster) in
        ( cx +. Sampler.gaussian rng ~mean:0.0 ~stddev:spread,
          cy +. Sampler.gaussian rng ~mean:0.0 ~stddev:spread ))
  in
  Finite_metric.euclidean points

let random_graph_metric rng ~n ~extra_edges ~max_weight =
  Graph.shortest_path_metric
    (Graph.random_connected rng ~n ~extra_edges ~max_weight)

let perturbed_uniform rng ~n ~base ~jitter =
  if jitter > base then
    invalid_arg "Metric_gen.perturbed_uniform: jitter must not exceed base";
  if base <= 0.0 then
    invalid_arg "Metric_gen.perturbed_uniform: base must be positive";
  let dmat = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = base +. Sampler.uniform_float rng ~lo:0.0 ~hi:jitter in
      dmat.(i).(j) <- d;
      dmat.(j).(i) <- d
    done
  done;
  (* Any d in [base, 2*base] satisfies the triangle inequality because
     base + base >= 2*base >= any entry. *)
  Finite_metric.of_matrix_unchecked dmat
