open Omflp_prelude

type t = {
  n : int;
  adj : (int * float) list array;
  parent_uf : int array;  (** union-find for cycle rejection *)
  mutable edges : int;
  mutable up : int array array;  (** binary lifting: up.(k).(v) *)
  mutable depth : int array;
  mutable dist_root : float array;
  mutable finalized : bool;
}

let create n =
  if n <= 0 then invalid_arg "Tree_metric.create: need at least one vertex";
  {
    n;
    adj = Array.make n [];
    parent_uf = Array.init n Fun.id;
    edges = 0;
    up = [||];
    depth = [||];
    dist_root = [||];
    finalized = false;
  }

let rec find uf v = if uf.(v) = v then v else find uf uf.(v)

let add_edge t u v w =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Tree_metric.add_edge: vertex out of range";
  if w <= 0.0 then invalid_arg "Tree_metric.add_edge: non-positive weight";
  let ru = find t.parent_uf u and rv = find t.parent_uf v in
  if ru = rv then invalid_arg "Tree_metric.add_edge: edge closes a cycle";
  t.parent_uf.(ru) <- rv;
  t.adj.(u) <- (v, w) :: t.adj.(u);
  t.adj.(v) <- (u, w) :: t.adj.(v);
  t.edges <- t.edges + 1

let finalize t =
  if t.edges <> t.n - 1 then
    invalid_arg "Tree_metric.finalize: tree is not spanning";
  let depth = Array.make t.n 0 in
  let dist_root = Array.make t.n 0.0 in
  let parent = Array.make t.n (-1) in
  (* BFS from root 0. *)
  let visited = Array.make t.n false in
  let queue = Queue.create () in
  Queue.push 0 queue;
  visited.(0) <- true;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun (v, w) ->
        if not visited.(v) then begin
          visited.(v) <- true;
          parent.(v) <- u;
          depth.(v) <- depth.(u) + 1;
          dist_root.(v) <- dist_root.(u) +. w;
          Queue.push v queue
        end)
      t.adj.(u)
  done;
  if not (Array.for_all Fun.id visited) then
    invalid_arg "Tree_metric.finalize: tree is not spanning";
  (* Binary lifting table. *)
  let levels = max 1 (int_of_float (ceil (Numerics.log2 (float_of_int (max 2 t.n))))) in
  let up = Array.make_matrix levels t.n (-1) in
  for v = 0 to t.n - 1 do
    up.(0).(v) <- parent.(v)
  done;
  for k = 1 to levels - 1 do
    for v = 0 to t.n - 1 do
      let mid = up.(k - 1).(v) in
      up.(k).(v) <- (if mid < 0 then -1 else up.(k - 1).(mid))
    done
  done;
  t.up <- up;
  t.depth <- depth;
  t.dist_root <- dist_root;
  t.finalized <- true

let lca t u v =
  let levels = Array.length t.up in
  let u = ref u and v = ref v in
  if t.depth.(!u) < t.depth.(!v) then begin
    let tmp = !u in
    u := !v;
    v := tmp
  end;
  (* Lift u to v's depth. *)
  let diff = ref (t.depth.(!u) - t.depth.(!v)) in
  for k = levels - 1 downto 0 do
    if !diff land (1 lsl k) <> 0 then begin
      u := t.up.(k).(!u);
      diff := !diff land lnot (1 lsl k)
    end
  done;
  if !u = !v then !u
  else begin
    for k = levels - 1 downto 0 do
      if t.up.(k).(!u) <> t.up.(k).(!v) then begin
        u := t.up.(k).(!u);
        v := t.up.(k).(!v)
      end
    done;
    t.up.(0).(!u)
  end

let dist t u v =
  if not t.finalized then failwith "Tree_metric.dist: finalize first";
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Tree_metric.dist: vertex out of range";
  if u = v then 0.0
  else
    let a = lca t u v in
    t.dist_root.(u) +. t.dist_root.(v) -. (2.0 *. t.dist_root.(a))

let to_metric t =
  let dmat = Array.init t.n (fun u -> Array.init t.n (fun v -> dist t u v)) in
  Finite_metric.of_matrix_unchecked dmat

let random_tree rng ~n ~max_weight =
  if max_weight <= 0.0 then
    invalid_arg "Tree_metric.random_tree: non-positive max weight";
  let t = create n in
  for v = 1 to n - 1 do
    let parent = Splitmix.int rng v in
    let w = Sampler.uniform_float rng ~lo:(max_weight /. 100.0) ~hi:max_weight in
    add_edge t v parent w
  done;
  finalize t;
  t

(* FRT-style randomized 2-HST: random permutation + random radius scale;
   at level l every point joins the first permuted center within
   radius beta * 2^l, refined inside its level-(l+1) cluster. Leaf
   distances are read off the first level at which two points separate;
   edge weights 2^(l+2) make the tree metric dominate the original. *)
let hst_of_metric rng metric =
  let n = Finite_metric.size metric in
  if n = 1 then Finite_metric.single_point ()
  else begin
    let diameter = Finite_metric.diameter metric in
    if diameter = 0.0 then Finite_metric.uniform n ~d:0.0
    else begin
      let beta = Sampler.uniform_float rng ~lo:1.0 ~hi:2.0 in
      let pi = Array.init n Fun.id in
      Sampler.shuffle rng pi;
      (* Levels from the top (radius >= diameter) down to separation of
         the closest distinct pair. *)
      let dmin =
        let m = ref infinity in
        for u = 0 to n - 1 do
          for v = u + 1 to n - 1 do
            let d = Finite_metric.dist metric u v in
            if d > 0.0 && d < !m then m := d
          done
        done;
        !m
      in
      let top = int_of_float (ceil (Numerics.log2 (diameter /. beta))) + 1 in
      let bottom = int_of_float (floor (Numerics.log2 (dmin /. 2.0))) - 1 in
      let n_levels = top - bottom + 1 in
      (* cluster.(li).(v): cluster representative of v at level
         (top - li); li = 0 is the root level (everything together). *)
      let cluster = Array.make_matrix n_levels n 0 in
      for li = 1 to n_levels - 1 do
        let l = top - li in
        let radius = beta *. Float.pow 2.0 (float_of_int l) in
        for v = 0 to n - 1 do
          (* First permuted center within the radius that shares v's
             parent cluster (laminarity). *)
          let rec pick i =
            if i >= n then v
            else
              let c = pi.(i) in
              if
                Finite_metric.dist metric c v <= radius
                && cluster.(li - 1).(c) = cluster.(li - 1).(v)
              then c
              else pick (i + 1)
          in
          cluster.(li).(v) <- pick 0
        done
      done;
      let dmat = Array.make_matrix n n 0.0 in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          (* Deepest level at which u and v are still clustered together;
             the tree distance is twice the climb above it. *)
          let join = ref 0 in
          (try
             for li = 1 to n_levels - 1 do
               if cluster.(li).(u) <> cluster.(li).(v) then raise Exit;
               join := li
             done
           with Exit -> ());
          let d =
            if !join = n_levels - 1 then 0.0
            else begin
              (* Separated below level (top - join): climb through levels
                 top-join-1 ... using edge weights 2^(l+2). *)
              let acc = ref 0.0 in
              for li = !join + 1 to n_levels - 1 do
                let l = top - li in
                acc := !acc +. Float.pow 2.0 (float_of_int (l + 2))
              done;
              2.0 *. !acc
            end
          in
          dmat.(u).(v) <- d;
          dmat.(v).(u) <- d
        done
      done;
      Finite_metric.of_matrix_unchecked dmat
    end
  end
