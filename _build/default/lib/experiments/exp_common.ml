open Omflp_prelude

type measurement = {
  algorithm : string;
  costs : float array;
  ratios_vs_upper : float array;
  n_facilities : float array;
}

type outcome = {
  measurements : measurement list;
  opt_uppers : float array;
  opt_lowers : float array;
  lower_method : string;
  upper_method : string;
}

let measure ?exact ?local_search ~reps ~seed ~gen ~algos () =
  if reps <= 0 then invalid_arg "Exp_common.measure: reps must be positive";
  let uppers = Array.make reps 0.0 in
  let lowers = Array.make reps 0.0 in
  let lower_method = ref "" in
  let upper_method = ref "" in
  let costs = Array.make_matrix (List.length algos) reps 0.0 in
  let ratios = Array.make_matrix (List.length algos) reps 0.0 in
  let n_fac = Array.make_matrix (List.length algos) reps 0.0 in
  for rep = 0 to reps - 1 do
    let rng = Splitmix.of_int (seed + (1009 * rep)) in
    let inst = gen rng in
    let bracket = Omflp_offline.Opt_estimate.bracket ?exact ?local_search inst in
    uppers.(rep) <- bracket.upper;
    lowers.(rep) <- bracket.lower;
    lower_method := bracket.lower_method;
    upper_method := bracket.upper_method;
    List.iteri
      (fun ai (_, algo) ->
        let run =
          Omflp_core.Simulator.run ~seed:(seed + (31 * rep)) algo inst
        in
        let c = Omflp_core.Run.total_cost run in
        costs.(ai).(rep) <- c;
        ratios.(ai).(rep) <- (if bracket.upper > 0.0 then c /. bracket.upper else 1.0);
        n_fac.(ai).(rep) <-
          float_of_int (List.length run.Omflp_core.Run.facilities))
      algos
  done;
  {
    measurements =
      List.mapi
        (fun ai (name, _) ->
          {
            algorithm = name;
            costs = costs.(ai);
            ratios_vs_upper = ratios.(ai);
            n_facilities = n_fac.(ai);
          })
        algos;
    opt_uppers = uppers;
    opt_lowers = lowers;
    lower_method = !lower_method;
    upper_method = !upper_method;
  }

let mean = Stats.mean
let ci = Stats.ci95

let default_algos () = Omflp_core.Registry.all ()

type section = { title : string; notes : string list; table : Texttable.t }

let print_section s =
  Printf.printf "\n== %s ==\n" s.title;
  List.iter (fun n -> Printf.printf "   %s\n" n) s.notes;
  print_newline ();
  Texttable.print s.table
