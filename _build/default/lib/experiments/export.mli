(** CSV export of experiment sections (for plotting outside the CLI). *)

(** [csv_string section] renders the table as RFC-4180-ish CSV (cells with
    commas/quotes/newlines are quoted, quotes doubled); horizontal rules
    are omitted. *)
val csv_string : Exp_common.section -> string

(** [write_csv ~dir section] writes [<dir>/<slug-of-title>.csv] (creating
    [dir] if needed) and returns the path. *)
val write_csv : dir:string -> Exp_common.section -> string

(** [slug title] is the filename stem used by {!write_csv}. *)
val slug : string -> string
