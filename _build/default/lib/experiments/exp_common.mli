(** Shared experiment plumbing: seeded repetition, OPT bracketing, ratio
    aggregation, table assembly. *)

open Omflp_prelude

type measurement = {
  algorithm : string;
  costs : float array;  (** total cost per repetition *)
  ratios_vs_upper : float array;
      (** cost / best-known offline solution (conservative: never
          over-reports the competitive ratio) *)
  n_facilities : float array;
}

type outcome = {
  measurements : measurement list;
  opt_uppers : float array;
  opt_lowers : float array;
  lower_method : string;
  upper_method : string;
}

(** [measure ~reps ~seed ~gen ~algos ()] generates [reps] seeded instances,
    brackets OPT on each, and runs every algorithm. [exact]/[local_search]
    are forwarded to {!Omflp_offline.Opt_estimate.bracket}. *)
val measure :
  ?exact:bool ->
  ?local_search:bool ->
  reps:int ->
  seed:int ->
  gen:(Splitmix.t -> Omflp_instance.Instance.t) ->
  algos:(string * (module Omflp_core.Algo_intf.ALGO)) list ->
  unit ->
  outcome

(** [mean xs], [ci xs] — re-exports for report code. *)
val mean : float array -> float

val ci : float array -> float

(** [default_algos ()] is the full registry. *)
val default_algos : unit -> (string * (module Omflp_core.Algo_intf.ALGO)) list

(** A titled table, the unit every experiment produces. *)
type section = { title : string; notes : string list; table : Texttable.t }

val print_section : section -> unit
