(** Experiment suite entry point: maps experiment ids to runners. *)

(** [run ~quick ~which] executes experiments. [which] is an id
    ("e1" … "e6", "e8"; "e7" is the Bechamel half of [bench/main.exe]) or
    "all". [quick] shrinks sizes/repetitions for smoke runs. Raises
    [Invalid_argument] on an unknown id. *)
val run : quick:bool -> which:string -> Exp_common.section list

val ids : string list
