lib/experiments/export.ml: Buffer Char Exp_common Filename Fun List Omflp_prelude String Sys Texttable
