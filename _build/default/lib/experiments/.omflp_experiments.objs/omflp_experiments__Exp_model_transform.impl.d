lib/experiments/exp_model_transform.ml: Array Exp_common Generators Instance List Omflp_commodity Omflp_core Omflp_instance Omflp_prelude Printf Splitmix Texttable
