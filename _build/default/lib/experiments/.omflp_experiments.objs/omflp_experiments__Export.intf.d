lib/experiments/export.mli: Exp_common
