lib/experiments/exp_heavy.ml: Array Exp_common Generators List Omflp_commodity Omflp_core Omflp_instance Omflp_prelude Texttable
