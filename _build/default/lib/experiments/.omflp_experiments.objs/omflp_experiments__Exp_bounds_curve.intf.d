lib/experiments/exp_bounds_curve.mli: Exp_common
