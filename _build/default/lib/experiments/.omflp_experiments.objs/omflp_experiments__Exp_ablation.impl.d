lib/experiments/exp_ablation.ml: Exp_common Generators List Omflp_commodity Omflp_instance Omflp_prelude Texttable
