lib/experiments/exp_bounds_curve.ml: Exp_common Float Omflp_prelude Printf Texttable
