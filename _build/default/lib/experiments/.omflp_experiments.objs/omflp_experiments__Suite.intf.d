lib/experiments/suite.mli: Exp_common
