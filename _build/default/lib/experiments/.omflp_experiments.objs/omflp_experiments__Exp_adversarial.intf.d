lib/experiments/exp_adversarial.mli: Exp_common
