lib/experiments/exp_heavy.mli: Exp_common
