lib/experiments/exp_scaling_n.mli: Exp_common
