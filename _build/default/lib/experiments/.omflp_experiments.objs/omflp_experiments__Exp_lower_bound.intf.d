lib/experiments/exp_lower_bound.mli: Exp_common
