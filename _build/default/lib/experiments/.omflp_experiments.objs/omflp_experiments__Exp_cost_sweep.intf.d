lib/experiments/exp_cost_sweep.mli: Exp_common
