lib/experiments/exp_common.ml: Array List Omflp_core Omflp_offline Omflp_prelude Printf Splitmix Stats Texttable
