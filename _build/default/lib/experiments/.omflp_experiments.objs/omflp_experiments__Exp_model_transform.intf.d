lib/experiments/exp_model_transform.mli: Exp_common
