lib/experiments/exp_common.mli: Omflp_core Omflp_instance Omflp_prelude Splitmix Texttable
