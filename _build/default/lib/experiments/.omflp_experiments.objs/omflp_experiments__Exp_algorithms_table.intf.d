lib/experiments/exp_algorithms_table.mli: Exp_common
