lib/experiments/exp_adversarial.ml: Exp_common List Omflp_core Omflp_instance Omflp_offline Omflp_prelude Texttable
