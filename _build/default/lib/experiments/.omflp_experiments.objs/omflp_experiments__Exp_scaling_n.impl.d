lib/experiments/exp_scaling_n.ml: Exp_common List Numerics Omflp_commodity Omflp_instance Omflp_prelude Printf Texttable
