open Omflp_prelude
open Omflp_instance

let gen rng =
  Generators.clustered rng ~clusters:3 ~per_cluster:4 ~n_requests:25
    ~n_commodities:6 ~side:80.0 ~spread:2.0
    ~cost:(fun ~n_commodities ~n_sites ->
      Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)

let run ?(reps = 5) ?(seed = 48) () =
  let algos = Exp_common.default_algos () in
  let table =
    Texttable.create
      [
        "algorithm";
        "cost (joint)";
        "cost (per-commodity)";
        "inflation";
        "requests joint/split";
      ]
  in
  let joint = Array.make_matrix (List.length algos) reps 0.0 in
  let split = Array.make_matrix (List.length algos) reps 0.0 in
  let n_joint = ref 0 and n_split = ref 0 in
  for rep = 0 to reps - 1 do
    let rng = Splitmix.of_int (seed + (1009 * rep)) in
    let inst = gen rng in
    let inst_split = Instance.split_per_commodity inst in
    n_joint := Instance.n_requests inst;
    n_split := Instance.n_requests inst_split;
    List.iteri
      (fun ai (_, algo) ->
        joint.(ai).(rep) <-
          Omflp_core.Run.total_cost
            (Omflp_core.Simulator.run ~seed:(seed + rep) algo inst);
        split.(ai).(rep) <-
          Omflp_core.Run.total_cost
            (Omflp_core.Simulator.run ~seed:(seed + rep) algo inst_split))
      algos
  done;
  List.iteri
    (fun ai (name, _) ->
      let j = Exp_common.mean joint.(ai) and s = Exp_common.mean split.(ai) in
      Texttable.add_row table
        [
          name;
          Texttable.cell_f j;
          Texttable.cell_f s;
          Texttable.cell_f (s /. j);
          Printf.sprintf "%d/%d" !n_joint !n_split;
        ])
    algos;
  {
    Exp_common.title =
      "E9: per-commodity connection model via request splitting (Section 1.1)";
    notes =
      [
        "Splitting removes the shared-connection discount; the paper argues the";
        "competitive ratio only changes by a constant factor — the inflation";
        "column stays small even though the sequence length multiplies.";
      ];
    table;
  }
