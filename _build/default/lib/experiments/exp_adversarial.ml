open Omflp_prelude

let run ?(levels_list = [ 4; 6; 8 ]) ?(seed = 49) () =
  let table =
    Texttable.create
      [ "levels"; "n"; "algorithm"; "cost"; "OPT<="; "ratio>="; "facilities" ]
  in
  List.iter
    (fun levels ->
      List.iter
        (fun (name, algo) ->
          let outcome = Omflp_core.Adversary.zoom_line ~seed ~levels algo in
          let bracket =
            Omflp_offline.Opt_estimate.bracket ~exact:false ~local_search:false
              outcome.Omflp_core.Adversary.realized
          in
          let cost = Omflp_core.Run.total_cost outcome.Omflp_core.Adversary.run in
          Texttable.add_row table
            [
              Texttable.cell_i levels;
              Texttable.cell_i
                (Omflp_instance.Instance.n_requests
                   outcome.Omflp_core.Adversary.realized);
              name;
              Texttable.cell_f cost;
              Texttable.cell_f bracket.Omflp_offline.Opt_estimate.upper;
              Texttable.cell_f (cost /. bracket.Omflp_offline.Opt_estimate.upper);
              Texttable.cell_f
                (float_of_int
                   (List.length
                      outcome.Omflp_core.Adversary.run.Omflp_core.Run.facilities));
            ])
        (Exp_common.default_algos ());
      Texttable.add_rule table)
    levels_list;
  {
    Exp_common.title =
      "E10: adaptive zoom-in adversary on the dyadic line (log n pressure)";
    notes =
      [
        "Each algorithm is attacked individually; OPT estimated on the realized";
        "sequence. Ratios exceed E4's random-input levels and grow with levels ~";
        "log n: slowly for the hedging primal-dual algorithms, dramatically for";
        "the non-competitive GREEDY (it connects forever instead of re-opening).";
      ];
    table;
  }
