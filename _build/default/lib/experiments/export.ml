open Omflp_prelude

let escape_cell cell =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if not needs_quoting then cell
  else begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv_line cells = String.concat "," (List.map escape_cell cells) ^ "\n"

let csv_string (section : Exp_common.section) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (csv_line (Texttable.headers section.table));
  List.iter
    (fun row -> Buffer.add_string buf (csv_line row))
    (Texttable.rows section.table);
  Buffer.contents buf

let slug title =
  let b = Buffer.create (String.length title) in
  let last_dash = ref true in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' ->
          Buffer.add_char b c;
          last_dash := false
      | 'A' .. 'Z' ->
          Buffer.add_char b (Char.lowercase_ascii c);
          last_dash := false
      | _ ->
          if not !last_dash then begin
            Buffer.add_char b '-';
            last_dash := true
          end)
    title;
  let s = Buffer.contents b in
  let s =
    if String.length s > 0 && s.[String.length s - 1] = '-' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  if s = "" then "section" else if String.length s > 60 then String.sub s 0 60 else s

let write_csv ~dir (section : Exp_common.section) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (slug section.title ^ ".csv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (csv_string section));
  path
