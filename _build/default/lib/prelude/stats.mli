(** Summary statistics for experiment reporting. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p90 : float;
}

(** [summarize xs] computes a {!summary}. Raises [Invalid_argument] on an
    empty array. *)
val summarize : float array -> summary

val mean : float array -> float
val stddev : float array -> float

(** [percentile xs p] is the p-th percentile (0 ≤ p ≤ 100), linear
    interpolation between closest ranks. *)
val percentile : float array -> float -> float

(** [ci95 xs] is the half-width of a normal-approximation 95% confidence
    interval on the mean. *)
val ci95 : float array -> float

(** [geometric_mean xs] for positive entries. *)
val geometric_mean : float array -> float

(** [pp_summary] renders ["mean ± stddev [min, max]"]. *)
val pp_summary : Format.formatter -> summary -> unit
