let eps = 1e-9

let approx_eq ?(tol = eps) a b =
  Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let approx_le ?(tol = eps) a b =
  a <= b +. (tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)))

let pos a = Float.max a 0.0

let kahan_sum xs =
  let sum = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !sum +. y in
      comp := t -. !sum -. y;
      sum := t)
    xs;
  !sum

let euler_mascheroni = 0.5772156649015329

let harmonic n =
  if n <= 0 then 0.0
  else if n <= 1_000_000 then begin
    let acc = ref 0.0 in
    for k = n downto 1 do
      acc := !acc +. (1.0 /. float_of_int k)
    done;
    !acc
  end
  else
    let x = float_of_int n in
    log x +. euler_mascheroni +. (1.0 /. (2.0 *. x)) -. (1.0 /. (12.0 *. x *. x))

let log2 x = log x /. log 2.0

let floor_pow2 x =
  if x <= 0.0 then invalid_arg "Numerics.floor_pow2: non-positive input";
  Float.pow 2.0 (Float.floor (log2 x))

let log_over_loglog n =
  if n < 3 then 1.0
  else
    let ln = log (float_of_int n) in
    let lnln = log ln in
    if lnln <= 0.0 then ln else ln /. lnln

let ceil_div a b =
  if b <= 0 then invalid_arg "Numerics.ceil_div: divisor must be positive";
  (a + b - 1) / b

let isqrt n =
  if n < 0 then invalid_arg "Numerics.isqrt: negative input";
  if n = 0 then 0
  else begin
    let r = ref (int_of_float (sqrt (float_of_int n))) in
    while !r * !r > n do
      decr r
    done;
    while (!r + 1) * (!r + 1) <= n do
      incr r
    done;
    !r
  end
