(** Plain-text table rendering for the benchmark harness.

    Produces aligned, boxless tables resembling the row layout of a paper's
    evaluation section. *)

type align = Left | Right

type t

(** [create headers] starts a table; every row must match the header
    arity. Column alignment defaults to [Right] for cells that parse as
    numbers and [Left] otherwise, decided per column from the data. *)
val create : string list -> t

(** [add_row t cells] appends a row. Raises [Invalid_argument] on an arity
    mismatch. *)
val add_row : t -> string list -> unit

(** [add_rule t] appends a horizontal rule. *)
val add_rule : t -> unit

(** [render t] lays out the table as a string ending in a newline. *)
val render : t -> string

(** [headers t] and [rows t] expose the raw cells (rules omitted), e.g.
    for CSV export. *)
val headers : t -> string list

val rows : t -> string list list

(** [print t] renders to stdout. *)
val print : t -> unit

(** [cell_f v] formats a float with 4 significant digits. *)
val cell_f : float -> string

(** [cell_i v] formats an int. *)
val cell_i : int -> string
