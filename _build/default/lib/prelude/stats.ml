type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Numerics.kahan_sum xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let sq = Array.map (fun x -> (x -. m) ** 2.0) xs in
    sqrt (Numerics.kahan_sum sq /. float_of_int (n - 1))
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  {
    n;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    median = percentile xs 50.0;
    p90 = percentile xs 90.0;
  }

let ci95 xs =
  let n = Array.length xs in
  if n < 2 then 0.0 else 1.96 *. stddev xs /. sqrt (float_of_int n)

let geometric_mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.geometric_mean: empty";
  Array.iter
    (fun x ->
      if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive entry")
    xs;
  exp (mean (Array.map log xs))

let pp_summary ppf s =
  Format.fprintf ppf "%.4g ± %.2g [%.4g, %.4g]" s.mean s.stddev s.min s.max
