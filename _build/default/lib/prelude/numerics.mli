(** Small numeric helpers shared across the library. *)

(** Comparison tolerance used throughout the primal–dual machinery. *)
val eps : float

(** [approx_eq ?tol a b] is true when [|a - b| <= tol * max(1, |a|, |b|)]. *)
val approx_eq : ?tol:float -> float -> float -> bool

(** [approx_le ?tol a b] is [a <= b + slack] with the same relative slack. *)
val approx_le : ?tol:float -> float -> float -> bool

(** [pos a] is [max a 0.], the [(·)₊] operator of the paper. *)
val pos : float -> float

(** [kahan_sum xs] sums a float array with compensated summation. *)
val kahan_sum : float array -> float

(** [harmonic n] is the n-th harmonic number H_n = Σ_{k=1}^n 1/k
    (exact summation for small n, asymptotic expansion beyond 10⁶). *)
val harmonic : int -> float

(** [log2 x] is the base-2 logarithm. *)
val log2 : float -> float

(** [floor_pow2 x] rounds a positive float down to the nearest power of two
    (including negative powers). Raises [Invalid_argument] on
    non-positive input. *)
val floor_pow2 : float -> float

(** [log_over_loglog n] is [ln n / ln ln n] for n ≥ 3, and 1.0 below;
    the paper's randomized-bound denominator. *)
val log_over_loglog : int -> float

(** [ceil_div a b] is ⌈a / b⌉ for positive ints. *)
val ceil_div : int -> int -> int

(** [isqrt n] is ⌊√n⌋ for [n >= 0]. *)
val isqrt : int -> int
