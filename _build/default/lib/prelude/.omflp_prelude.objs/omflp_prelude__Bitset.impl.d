lib/prelude/bitset.ml: Array Format Hashtbl List Printf Stdlib
