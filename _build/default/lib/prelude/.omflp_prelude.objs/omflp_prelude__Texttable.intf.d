lib/prelude/texttable.mli:
