lib/prelude/sampler.ml: Array Bitset Float Hashtbl Splitmix
