lib/prelude/pqueue.mli:
