lib/prelude/sampler.mli: Bitset Splitmix
