lib/prelude/numerics.mli:
