lib/prelude/splitmix.mli:
