lib/prelude/texttable.ml: Array Buffer Fun List Option Printf String
