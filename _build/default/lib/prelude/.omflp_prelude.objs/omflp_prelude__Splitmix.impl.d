lib/prelude/splitmix.ml: Int64
