let uniform_float rng ~lo ~hi = lo +. ((hi -. lo) *. Splitmix.float rng)

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Sampler.exponential: rate must be positive";
  let u = 1.0 -. Splitmix.float rng in
  -.log u /. rate

let gaussian rng ~mean ~stddev =
  let u1 = 1.0 -. Splitmix.float rng in
  let u2 = Splitmix.float rng in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let zipf_table ~n ~s =
  if n <= 0 then invalid_arg "Sampler.zipf_table: n must be positive";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for k = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (k + 1)) s);
    cdf.(k) <- !total
  done;
  Array.map (fun v -> v /. !total) cdf

let zipf_draw rng cdf =
  let u = Splitmix.float rng in
  (* Binary search for the first index with cdf.(i) > u. *)
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let zipf rng ~n ~s = zipf_draw rng (zipf_table ~n ~s)

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Splitmix.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement rng ~n ~k =
  if k < 0 || k > n then
    invalid_arg "Sampler.sample_without_replacement: need 0 <= k <= n";
  (* Partial Fisher–Yates: only the first k slots are materialised. *)
  let tbl = Hashtbl.create (2 * k) in
  let lookup i = match Hashtbl.find_opt tbl i with Some v -> v | None -> i in
  Array.init k (fun i ->
      let j = i + Splitmix.int rng (n - i) in
      let vi = lookup i and vj = lookup j in
      Hashtbl.replace tbl j vi;
      Hashtbl.replace tbl i vj;
      vj)

let hypergeometric rng ~population ~successes ~draws =
  if successes < 0 || successes > population then
    invalid_arg "Sampler.hypergeometric: bad successes";
  if draws < 0 || draws > population then
    invalid_arg "Sampler.hypergeometric: bad draws";
  let remaining_pop = ref population in
  let remaining_succ = ref successes in
  let hits = ref 0 in
  for _ = 1 to draws do
    let p = float_of_int !remaining_succ /. float_of_int !remaining_pop in
    if Splitmix.float rng < p then begin
      incr hits;
      decr remaining_succ
    end;
    decr remaining_pop
  done;
  !hits

let categorical rng weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Sampler.categorical: empty weights";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Sampler.categorical: non-positive total";
  let u = Splitmix.float rng *. total in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else go (i + 1) acc
  in
  go 0 0.0

let random_subset rng ~universe ~p =
  let s = ref (Bitset.create universe) in
  for i = 0 to universe - 1 do
    if Splitmix.bernoulli rng p then s := Bitset.add !s i
  done;
  !s

let random_subset_of_size rng ~universe ~k =
  let picks = sample_without_replacement rng ~n:universe ~k in
  Array.fold_left Bitset.add (Bitset.create universe) picks
