type align = Left | Right

type line = Row of string list | Rule

type t = { headers : string list; arity : int; mutable lines : line list }

let create headers = { headers; arity = List.length headers; lines = [] }

let add_row t cells =
  if List.length cells <> t.arity then
    invalid_arg
      (Printf.sprintf "Texttable.add_row: expected %d cells, got %d" t.arity
         (List.length cells));
  t.lines <- Row cells :: t.lines

let add_rule t = t.lines <- Rule :: t.lines

let is_number s =
  match float_of_string_opt (String.trim s) with Some _ -> true | None -> false

let render t =
  let rows =
    List.rev_map (function Row cells -> Some cells | Rule -> None) t.lines
  in
  let all_rows = t.headers :: List.filter_map Fun.id rows in
  let widths = Array.make t.arity 0 in
  List.iter
    (fun cells ->
      List.iteri
        (fun i c -> widths.(i) <- max widths.(i) (String.length c))
        cells)
    all_rows;
  let aligns =
    Array.init t.arity (fun i ->
        let data_cells =
          List.filter_map
            (fun cells -> List.nth_opt (Option.value cells ~default:[]) i)
            (List.map Option.some (List.filter_map Fun.id rows))
        in
        if data_cells <> [] && List.for_all is_number data_cells then Right
        else Left)
  in
  let pad i s =
    let w = widths.(i) in
    let gap = w - String.length s in
    if gap <= 0 then s
    else
      match aligns.(i) with
      | Left -> s ^ String.make gap ' '
      | Right -> String.make gap ' ' ^ s
  in
  let buf = Buffer.create 256 in
  let emit_row cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i c))
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * max 0 (t.arity - 1))
  in
  let rule () = Buffer.add_string buf (String.make total_width '-' ^ "\n") in
  emit_row t.headers;
  rule ();
  List.iter
    (function Row cells -> emit_row cells | Rule -> rule ())
    (List.rev t.lines);
  Buffer.contents buf

let print t = print_string (render t)

let headers t = t.headers

let rows t =
  List.rev
    (List.filter_map (function Row cells -> Some cells | Rule -> None) t.lines)

let cell_f v = Printf.sprintf "%.4g" v
let cell_i v = string_of_int v
