(** Distribution samplers built on {!Splitmix}.

    Every sampler takes the generator explicitly so call sites stay
    deterministic and reproducible. *)

(** [uniform_float rng ~lo ~hi] is uniform on [[lo, hi)]. *)
val uniform_float : Splitmix.t -> lo:float -> hi:float -> float

(** [exponential rng ~rate] draws from Exp(rate). *)
val exponential : Splitmix.t -> rate:float -> float

(** [gaussian rng ~mean ~stddev] draws from N(mean, stddev²)
    (Box–Muller). *)
val gaussian : Splitmix.t -> mean:float -> stddev:float -> float

(** [zipf rng ~n ~s] draws a rank in [[0, n)] with P(k) ∝ 1/(k+1)^s.
    Uses an exact CDF table (rebuilt per call is avoided via {!zipf_table}). *)
val zipf : Splitmix.t -> n:int -> s:float -> int

(** [zipf_table ~n ~s] precomputes the CDF; [zipf_draw rng table] samples
    from it in O(log n). *)
val zipf_table : n:int -> s:float -> float array

val zipf_draw : Splitmix.t -> float array -> int

(** [shuffle rng arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : Splitmix.t -> 'a array -> unit

(** [sample_without_replacement rng ~n ~k] draws [k] distinct values from
    [[0, n)], in uniformly random order. Raises [Invalid_argument] if
    [k > n] or [k < 0]. *)
val sample_without_replacement : Splitmix.t -> n:int -> k:int -> int array

(** [hypergeometric rng ~population ~successes ~draws] counts how many of
    [draws] draws without replacement from a [population]-sized urn with
    [successes] marked elements are marked. Exact urn simulation. *)
val hypergeometric :
  Splitmix.t -> population:int -> successes:int -> draws:int -> int

(** [categorical rng weights] draws index [i] with probability
    [weights.(i) / Σ weights]. Raises [Invalid_argument] on an empty or
    non-positive-total weight vector. *)
val categorical : Splitmix.t -> float array -> int

(** [random_subset rng ~universe ~p] includes each element of
    [[0, universe)] independently with probability [p]. *)
val random_subset : Splitmix.t -> universe:int -> p:float -> Bitset.t

(** [random_subset_of_size rng ~universe ~k] is a uniformly random subset
    of size exactly [k]. *)
val random_subset_of_size : Splitmix.t -> universe:int -> k:int -> Bitset.t
