(** Mutable binary min-heap keyed by floats.

    Used by Dijkstra ({!Omflp_metric.Graph}) and the offline local search.
    Supports lazy deletion via {!pop_min} returning possibly-stale entries;
    callers that need decrease-key semantics insert duplicates and skip
    stale pops. *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

(** [is_empty h] is [true] iff the heap holds no entry. *)
val is_empty : 'a t -> bool

(** [size h] counts entries (including superseded duplicates). *)
val size : 'a t -> int

(** [push h priority value] inserts an entry. *)
val push : 'a t -> float -> 'a -> unit

(** [pop_min h] removes and returns the entry with the smallest priority.
    Raises [Not_found] if empty. Ties are broken arbitrarily but
    deterministically. *)
val pop_min : 'a t -> float * 'a

(** [peek_min h] returns the smallest entry without removing it.
    Raises [Not_found] if empty. *)
val peek_min : 'a t -> float * 'a
