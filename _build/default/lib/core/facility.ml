open Omflp_commodity

type kind = Small of int | Large | Custom of Cset.t

type t = {
  id : int;
  site : int;
  kind : kind;
  offered : Cset.t;
  cost : float;
  opened_at : int;
}

let offered_of_kind ~n_commodities = function
  | Small e -> Cset.singleton ~n_commodities e
  | Large -> Cset.full ~n_commodities
  | Custom s -> s

let pp ppf t =
  let kind =
    match t.kind with
    | Small e -> Printf.sprintf "small(%d)" e
    | Large -> "large"
    | Custom _ -> "custom"
  in
  Format.fprintf ppf "facility#%d %s @%d cost=%.4g (opened at req %d)" t.id
    kind t.site t.cost t.opened_at
