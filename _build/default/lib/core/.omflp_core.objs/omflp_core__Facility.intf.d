lib/core/facility.mli: Format Omflp_commodity
