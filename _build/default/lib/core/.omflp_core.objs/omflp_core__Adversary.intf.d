lib/core/adversary.mli: Algo_intf Omflp_instance Run
