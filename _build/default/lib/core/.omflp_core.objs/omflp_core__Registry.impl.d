lib/core/registry.ml: Algo_intf All_large_baseline Greedy_baseline Heavy_aware Indep_baseline List Pd_omflp Pd_omflp_fast Rand_omflp String
