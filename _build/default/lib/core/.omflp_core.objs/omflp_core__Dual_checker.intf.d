lib/core/dual_checker.mli: Omflp_commodity Omflp_metric Pd_omflp
