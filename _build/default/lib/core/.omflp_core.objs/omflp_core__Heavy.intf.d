lib/core/heavy.mli: Omflp_commodity
