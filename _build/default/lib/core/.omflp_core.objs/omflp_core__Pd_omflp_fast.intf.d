lib/core/pd_omflp_fast.mli: Omflp_commodity Omflp_instance Omflp_metric Pd_omflp Run Service
