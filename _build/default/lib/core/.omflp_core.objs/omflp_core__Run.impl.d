lib/core/run.ml: Facility Facility_store Format List Service
