lib/core/registry.mli: Algo_intf
