lib/core/simulator.ml: Algo_intf Array Facility Hashtbl Instance List Omflp_commodity Omflp_instance Omflp_prelude Printf Registry Request Run Service
