lib/core/adversary.ml: Algo_intf Array Cost_function Cset Facility Finite_metric Float Instance List Omflp_commodity Omflp_instance Omflp_metric Printf Request Run
