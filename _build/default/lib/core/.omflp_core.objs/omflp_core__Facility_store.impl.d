lib/core/facility_store.ml: Array Cset Facility Finite_metric Hashtbl List Omflp_commodity Omflp_metric Service
