lib/core/algo_intf.ml: Omflp_commodity Omflp_instance Omflp_metric Run Service
