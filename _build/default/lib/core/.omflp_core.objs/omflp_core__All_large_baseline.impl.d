lib/core/all_large_baseline.ml: Cost_function Facility Facility_store Finite_metric Float List Numerics Omflp_commodity Omflp_instance Omflp_metric Omflp_prelude Option Request Run Service
