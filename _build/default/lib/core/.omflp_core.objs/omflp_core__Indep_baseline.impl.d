lib/core/indep_baseline.ml: Array Cost_function Cset Facility Facility_store Finite_metric Float List Numerics Omflp_commodity Omflp_instance Omflp_metric Omflp_prelude Option Request Run Service
