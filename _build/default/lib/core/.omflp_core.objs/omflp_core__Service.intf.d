lib/core/service.mli: Omflp_commodity Omflp_metric
