lib/core/service.ml: Cset List Omflp_commodity Omflp_metric
