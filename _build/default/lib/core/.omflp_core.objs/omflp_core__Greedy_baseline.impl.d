lib/core/greedy_baseline.ml: Cost_function Cset Facility Facility_store Finite_metric Float List Omflp_commodity Omflp_instance Omflp_metric Option Request Run Service
