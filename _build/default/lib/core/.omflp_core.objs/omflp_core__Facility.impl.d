lib/core/facility.ml: Cset Format Omflp_commodity Printf
