lib/core/heavy.ml: Array Cost_function Cset Float Omflp_commodity
