lib/core/simulator.mli: Algo_intf Omflp_instance Run
