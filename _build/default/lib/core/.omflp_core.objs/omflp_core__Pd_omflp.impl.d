lib/core/pd_omflp.ml: Array Cost_function Cset Facility Facility_store Finite_metric Float Fun List Numerics Omflp_commodity Omflp_instance Omflp_metric Omflp_prelude Option Request Run Service
