lib/core/run.mli: Facility Facility_store Format Service
