lib/core/dual_checker.ml: Array Cost_function Cset List Numerics Omflp_commodity Omflp_metric Omflp_prelude Pd_omflp Printf Run
