lib/core/indep_baseline.mli: Facility_store Omflp_commodity Omflp_instance Omflp_metric Run Service
