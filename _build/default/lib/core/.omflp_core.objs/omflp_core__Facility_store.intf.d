lib/core/facility_store.mli: Facility Omflp_metric Service
