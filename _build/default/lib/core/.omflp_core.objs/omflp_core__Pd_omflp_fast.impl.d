lib/core/pd_omflp_fast.ml: Pd_omflp Run
