open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance

type past = { site : int; dual : float }

type t = {
  metric : Finite_metric.t;
  cost : Cost_function.t;
  store : Facility_store.t;
  past : past list array;  (** per commodity, newest first *)
  mutable n_requests : int;
}

let name = "INDEP"

let create ?seed:_ metric cost =
  let n_commodities = Cost_function.n_commodities cost in
  {
    metric;
    cost;
    store = Facility_store.create metric ~n_commodities;
    past = Array.make n_commodities [];
    n_requests = 0;
  }

(* One Fotakis primal–dual step for a single commodity: the request either
   connects at the nearest facility's distance or its bid completes the
   payment of a facility at some site. *)
let serve_commodity t ~site e =
  let n_sites = Finite_metric.size t.metric in
  let connect_at = Facility_store.dist_offering t.store ~commodity:e ~from:site in
  let best_site = ref (-1) in
  let best_open = ref infinity in
  for m = 0 to n_sites - 1 do
    let bids =
      List.fold_left
        (fun acc p ->
          let cap =
            Float.min p.dual
              (Facility_store.dist_offering t.store ~commodity:e ~from:p.site)
          in
          acc +. Numerics.pos (cap -. Finite_metric.dist t.metric p.site m))
        0.0 t.past.(e)
    in
    let open_at =
      Finite_metric.dist t.metric site m
      +. Numerics.pos (Cost_function.singleton_cost t.cost m e -. bids)
    in
    if open_at < !best_open then begin
      best_open := open_at;
      best_site := m
    end
  done;
  let dual = Float.min connect_at !best_open in
  if !best_open < connect_at then
    ignore
      (Facility_store.open_facility t.store ~site:!best_site
         ~kind:(Facility.Small e)
         ~cost:(Cost_function.singleton_cost t.cost !best_site e)
         ~opened_at:t.n_requests);
  t.past.(e) <- { site; dual } :: t.past.(e);
  let fac, _ =
    Option.get (Facility_store.nearest_offering t.store ~commodity:e ~from:site)
  in
  (e, fac.Facility.id)

let step t (r : Request.t) =
  let pairs =
    List.map (serve_commodity t ~site:r.site) (Cset.elements r.demand)
  in
  let service = Service.Per_commodity pairs in
  Facility_store.record_service t.store ~request_site:r.site service;
  t.n_requests <- t.n_requests + 1;
  service

let run_so_far t = Run.of_store ~algorithm:name t.store
let store t = t.store
