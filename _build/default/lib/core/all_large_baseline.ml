open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance

type past = { site : int; dual : float }

type t = {
  metric : Finite_metric.t;
  cost : Cost_function.t;
  store : Facility_store.t;
  mutable past : past list;
  mutable n_requests : int;
}

let name = "ALL-LARGE"

let create ?seed:_ metric cost =
  {
    metric;
    cost;
    store =
      Facility_store.create metric
        ~n_commodities:(Cost_function.n_commodities cost);
    past = [];
    n_requests = 0;
  }

let step t (r : Request.t) =
  let n_sites = Finite_metric.size t.metric in
  let connect_at = Facility_store.dist_large t.store ~from:r.site in
  let best_site = ref (-1) in
  let best_open = ref infinity in
  for m = 0 to n_sites - 1 do
    let bids =
      List.fold_left
        (fun acc p ->
          let cap =
            Float.min p.dual (Facility_store.dist_large t.store ~from:p.site)
          in
          acc +. Numerics.pos (cap -. Finite_metric.dist t.metric p.site m))
        0.0 t.past
    in
    let open_at =
      Finite_metric.dist t.metric r.site m
      +. Numerics.pos (Cost_function.full_cost t.cost m -. bids)
    in
    if open_at < !best_open then begin
      best_open := open_at;
      best_site := m
    end
  done;
  let dual = Float.min connect_at !best_open in
  if !best_open < connect_at then
    ignore
      (Facility_store.open_facility t.store ~site:!best_site ~kind:Facility.Large
         ~cost:(Cost_function.full_cost t.cost !best_site)
         ~opened_at:t.n_requests);
  t.past <- { site = r.site; dual } :: t.past;
  let fac, _ = Option.get (Facility_store.nearest_large t.store ~from:r.site) in
  let service = Service.To_single fac.Facility.id in
  Facility_store.record_service t.store ~request_site:r.site service;
  t.n_requests <- t.n_requests + 1;
  service

let run_so_far t = Run.of_store ~algorithm:name t.store
let store t = t.store
