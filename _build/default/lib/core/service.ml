open Omflp_commodity

type t = To_single of int | Per_commodity of (int * int) list

let facility_ids = function
  | To_single id -> [ id ]
  | Per_commodity pairs ->
      List.sort_uniq compare (List.map snd pairs)

let covers ~facility_offered ~demand t =
  match t with
  | To_single id -> Cset.subset demand (facility_offered id)
  | Per_commodity pairs ->
      Cset.for_all
        (fun e ->
          List.exists
            (fun (e', id) -> e' = e && Cset.mem (facility_offered id) e)
            pairs)
        demand

let cost ~facility_site ~metric ~request_site t =
  List.fold_left
    (fun acc id ->
      acc
      +. Omflp_metric.Finite_metric.dist metric request_site (facility_site id))
    0.0 (facility_ids t)
