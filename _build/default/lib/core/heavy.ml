open Omflp_commodity

let marginal cost ~commodity =
  let n_sites = Cost_function.n_sites cost in
  let k = Cost_function.n_commodities cost in
  let full = Cset.full ~n_commodities:k in
  let without = Cset.remove full commodity in
  let acc = ref 0.0 in
  for m = 0 to n_sites - 1 do
    acc :=
      !acc +. (Cost_function.full_cost cost m -. Cost_function.eval cost m without)
  done;
  !acc /. float_of_int n_sites

let detect ?(threshold = 4.0) cost =
  let k = Cost_function.n_commodities cost in
  let marginals = Array.init k (fun e -> marginal cost ~commodity:e) in
  (* Compare against the median marginal: robust to the heavy commodities
     themselves inflating the average. *)
  let sorted = Array.copy marginals in
  Array.sort Float.compare sorted;
  let median = sorted.(k / 2) in
  let bar = threshold *. Float.max median 1e-12 in
  let heavy = ref (Cset.empty ~n_commodities:k) in
  Array.iteri
    (fun e m -> if m > bar then heavy := Cset.add !heavy e)
    marginals;
  (* Keep at least one light commodity: drop the least heavy if needed. *)
  if Cset.cardinal !heavy = k then begin
    let lightest = ref 0 in
    Array.iteri (fun e m -> if m < marginals.(!lightest) then lightest := e) marginals;
    heavy := Cset.diff !heavy (Cset.singleton ~n_commodities:k !lightest)
  end;
  !heavy
