(** Adaptive adversaries.

    Theorem 2's distribution is oblivious; the [log n / log log n] term of
    the paper's lower bound (inherited from Fotakis' OFLP bound, which
    already holds on line metrics) needs {e adaptivity}: the adversary
    watches where the algorithm opens facilities and sends the next batch
    of requests where coverage is worst. This module implements the
    classic zoom-in construction on a dyadic line:

    - points are [j / 2^levels] for [j = 0 .. 2^levels];
    - phase [l] sends a batch of [batch_base · 2^l] requests at the centre
      of the current interval (length [2^-l]);
    - the adversary then recurses into the half whose midpoint is farther
      from every open facility.

    With uniform facility cost 1, each phase costs any online algorithm
    Θ(1) (connect the batch over distance ~2^-l, or open yet another
    facility) while OPT serves everything from one facility placed at the
    final zoom point — so the online/offline gap grows with [levels]
    ≈ log n. *)

type outcome = {
  run : Run.t;
  realized : Omflp_instance.Instance.t;
      (** the adaptively chosen request sequence, as an ordinary instance
          (usable with the offline solvers) *)
  zoom_point : int;  (** the site the adversary zoomed into *)
}

(** [zoom_line ?batch_base ?facility_cost ?n_commodities ~levels algo]
    runs the adversary against a fresh instance of [algo]. All requests
    demand commodity 0; [n_commodities] (default 1) only widens the
    universe (and prices large facilities accordingly). Raises
    [Invalid_argument] for [levels < 1] or [levels > 14]. *)
val zoom_line :
  ?batch_base:int ->
  ?facility_cost:float ->
  ?n_commodities:int ->
  ?seed:int ->
  levels:int ->
  (module Algo_intf.ALGO) ->
  outcome
