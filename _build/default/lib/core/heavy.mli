(** Heavy-commodity detection (Section 5, closing remarks).

    Condition 1 indirectly requires that no single commodity dominates the
    full configuration's cost. A commodity is {e heavy} when its marginal
    cost inside the full configuration is much larger than the average
    per-commodity share; the paper suggests excluding such commodities
    from the "large facility" configuration and handling them separately
    ({!Heavy_aware}). *)

(** [marginal cost ~commodity] is the average over sites of
    [f^S_m − f^{S∖{e}}_m]. *)
val marginal : Omflp_commodity.Cost_function.t -> commodity:int -> float

(** [detect ?threshold cost] returns the set of heavy commodities: those
    whose marginal exceeds [threshold] times the {e median} marginal (the
    median is robust against the heavy commodities inflating the
    average). The default [threshold] is 4.0. Never returns all of [S]
    (the least heavy commodity is dropped if necessary). *)
val detect :
  ?threshold:float -> Omflp_commodity.Cost_function.t -> Omflp_commodity.Cset.t
