(** Common interface of online OMFLP algorithms.

    Algorithms receive the metric space and the cost function up front
    (both are public knowledge in the model) and the requests one by one —
    they never see the request sequence. *)

module type ALGO = sig
  type t

  val name : string

  (** [create ?seed metric cost] starts a run; [seed] only matters for
      randomized algorithms. *)
  val create :
    ?seed:int ->
    Omflp_metric.Finite_metric.t ->
    Omflp_commodity.Cost_function.t ->
    t

  (** [step t request] irrevocably serves the request (opening facilities
      as needed) and returns the service decision. *)
  val step : t -> Omflp_instance.Request.t -> Service.t

  (** [run_so_far t] snapshots facilities, services, and costs. *)
  val run_so_far : t -> Run.t
end

type packed = (module ALGO)
