open Omflp_commodity
open Omflp_metric

type t = {
  metric : Finite_metric.t;
  n_commodities : int;
  mutable facilities_rev : Facility.t list;
  mutable count : int;
  by_id : (int, Facility.t) Hashtbl.t;
  (* nearest.(e).(p): (distance, facility id) of the nearest facility
     offering commodity e, seen from site p. *)
  nearest : (float * int) array array;
  nearest_large : (float * int) array;
  mutable services_rev : Service.t list;
  mutable construction : float;
  mutable assignment : float;
}

let create metric ~n_commodities =
  let n_sites = Finite_metric.size metric in
  {
    metric;
    n_commodities;
    facilities_rev = [];
    count = 0;
    by_id = Hashtbl.create 64;
    nearest =
      Array.init n_commodities (fun _ -> Array.make n_sites (infinity, -1));
    nearest_large = Array.make n_sites (infinity, -1);
    services_rev = [];
    construction = 0.0;
    assignment = 0.0;
  }

let metric t = t.metric
let n_commodities t = t.n_commodities

let open_facility t ~site ~kind ~cost ~opened_at =
  if cost < 0.0 then invalid_arg "Facility_store.open_facility: negative cost";
  let offered = Facility.offered_of_kind ~n_commodities:t.n_commodities kind in
  let fac =
    { Facility.id = t.count; site; kind; offered; cost; opened_at }
  in
  t.count <- t.count + 1;
  t.facilities_rev <- fac :: t.facilities_rev;
  Hashtbl.replace t.by_id fac.id fac;
  t.construction <- t.construction +. cost;
  let n_sites = Finite_metric.size t.metric in
  for p = 0 to n_sites - 1 do
    let d = Finite_metric.dist t.metric p site in
    Cset.iter
      (fun e ->
        let cur, _ = t.nearest.(e).(p) in
        if d < cur then t.nearest.(e).(p) <- (d, fac.id))
      offered;
    if Cset.is_full offered then begin
      let cur, _ = t.nearest_large.(p) in
      if d < cur then t.nearest_large.(p) <- (d, fac.id)
    end
  done;
  fac

let facilities t = List.rev t.facilities_rev
let n_facilities t = t.count

let facility t id = Hashtbl.find t.by_id id

let dist_offering t ~commodity ~from = fst t.nearest.(commodity).(from)

let nearest_offering t ~commodity ~from =
  let d, id = t.nearest.(commodity).(from) in
  if id < 0 then None else Some (facility t id, d)

let dist_large t ~from = fst t.nearest_large.(from)

let nearest_large t ~from =
  let d, id = t.nearest_large.(from) in
  if id < 0 then None else Some (facility t id, d)

let record_service t ~request_site service =
  let facility_site id = (facility t id).Facility.site in
  let c =
    Service.cost ~facility_site ~metric:t.metric ~request_site service
  in
  t.assignment <- t.assignment +. c;
  t.services_rev <- service :: t.services_rev

let services t = List.rev t.services_rev

let construction_cost t = t.construction
let assignment_cost t = t.assignment
let total_cost t = t.construction +. t.assignment
