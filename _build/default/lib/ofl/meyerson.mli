(** Meyerson's randomized Online Facility Location algorithm (FOCS 2001),
    non-uniform opening costs handled via power-of-two cost classes.

    On each request the expected amount spent on openings equals the
    request's connection estimate, split across classes proportionally to
    the distance improvement the class would bring. RAND-OMFLP
    ({!Omflp_core.Rand_omflp}) lifts this scheme to commodities. *)

include Ofl_types.ALGORITHM

(** [create_seeded metric ~opening_costs ~rng] fixes the randomness
    source; {!create} seeds from a default constant. *)
val create_seeded :
  Omflp_metric.Finite_metric.t ->
  opening_costs:float array ->
  rng:Omflp_prelude.Splitmix.t ->
  t
