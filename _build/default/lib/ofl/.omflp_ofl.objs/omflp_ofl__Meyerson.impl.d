lib/ofl/meyerson.ml: Array Finite_metric Float Hashtbl List Numerics Ofl_types Omflp_metric Omflp_prelude Option Splitmix
