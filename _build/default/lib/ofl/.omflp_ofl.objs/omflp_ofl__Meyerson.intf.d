lib/ofl/meyerson.mli: Ofl_types Omflp_metric Omflp_prelude
