lib/ofl/ofl_types.mli: Omflp_metric
