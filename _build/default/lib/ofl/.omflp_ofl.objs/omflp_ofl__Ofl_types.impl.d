lib/ofl/ofl_types.ml: Omflp_metric
