lib/ofl/fotakis_pd.ml: Array Finite_metric Float List Ofl_types Omflp_metric
