lib/ofl/fotakis_pd.mli: Ofl_types
