(** Shared interface of single-commodity Online Facility Location
    algorithms.

    Requests are site indices arriving online; every site is also a
    potential facility location with an individual opening cost. *)

type run = {
  facilities : int list;  (** opened sites, in opening order *)
  construction_cost : float;
  assignment_cost : float;
}

val total_cost : run -> float

module type ALGORITHM = sig
  type t

  (** [create metric ~opening_costs] starts a fresh run;
      [opening_costs.(m)] is the facility cost at site [m]. Raises
      [Invalid_argument] on arity mismatch or a negative cost. *)
  val create : Omflp_metric.Finite_metric.t -> opening_costs:float array -> t

  (** [step t site] serves the next request, possibly opening facilities;
      returns the request's assignment distance. *)
  val step : t -> int -> float

  val snapshot : t -> run
end
