(** Fotakis' deterministic primal–dual Online Facility Location algorithm
    (J. Discrete Algorithms 2007), O(log n)-competitive.

    Each arriving request raises a dual value until either it can connect
    to an existing facility at that price, or the accumulated bids of all
    requests pay for a new facility at some site. PD-OMFLP
    ({!Omflp_core.Pd_omflp}) generalizes exactly this mechanism to
    commodities; this module is both the per-commodity baseline and the
    sanity reference for the generalization. *)

include Ofl_types.ALGORITHM

(** [duals t] lists the frozen dual value of every request so far, in
    arrival order. *)
val duals : t -> float list
