(** Facility construction cost functions [f^σ_m].

    A cost function assigns to every site [m] and non-empty configuration
    [σ ⊆ S] the cost of opening a facility at [m] offering exactly the
    commodities of [σ]. The paper's standing assumptions are subadditivity
    (w.l.o.g., Section 1.1) and Condition 1:
    [f^σ_m / |σ| ≥ f^S_m / |S|]; both can be validated here.

    The empty configuration always costs 0. *)

type t

(** [make ~name ~n_commodities ~n_sites f] wraps an arbitrary cost
    oracle. [f site σ] must be non-negative and deterministic. *)
val make :
  name:string -> n_commodities:int -> n_sites:int -> (int -> Cset.t -> float) -> t

val name : t -> string
val n_commodities : t -> int
val n_sites : t -> int

(** [eval t m σ] is [f^σ_m]. Raises [Invalid_argument] on a site out of
    range or a configuration from the wrong universe. [eval t m ∅ = 0]. *)
val eval : t -> int -> Cset.t -> float

(** [singleton_cost t m e] is [f^{{e}}_m]. *)
val singleton_cost : t -> int -> int -> float

(** [full_cost t m] is [f^S_m]. *)
val full_cost : t -> int -> float

(** {1 Families} *)

(** [size_based ~name ~n_commodities ~n_sites g] has
    [f^σ_m = g |σ|] at every site. [g 0] is ignored (treated as 0). *)
val size_based :
  name:string -> n_commodities:int -> n_sites:int -> (int -> float) -> t

(** [power_law ~n_commodities ~n_sites ~x] is the paper's Section 3.3
    class [C]: [g_x(|σ|) = |σ|^{x/2}] with [x ∈ [0, 2]]. Raises
    [Invalid_argument] outside that range. *)
val power_law : n_commodities:int -> n_sites:int -> x:float -> t

(** [theorem2 ~n_commodities ~n_sites] is the lower-bound construction's
    cost [g(|σ|) = ⌈|σ| / √|S|⌉] (Section 2). *)
val theorem2 : n_commodities:int -> n_sites:int -> t

(** [linear ~n_commodities ~n_sites ~per_commodity] is
    [f^σ_m = per_commodity · |σ|] — the case where co-location brings no
    advantage and prediction is useless (Section 3.3). *)
val linear : n_commodities:int -> n_sites:int -> per_commodity:float -> t

(** [constant ~n_commodities ~n_sites ~cost] charges [cost] for any
    non-empty configuration — the [x = 0] extreme. *)
val constant : n_commodities:int -> n_sites:int -> cost:float -> t

(** [site_scaled base multipliers] scales [base] by a positive per-site
    factor — the non-uniform facility cost setting. Raises
    [Invalid_argument] on an arity mismatch or non-positive factor. *)
val site_scaled : t -> float array -> t

(** [of_table ~n_commodities table] gives explicit costs:
    [table.(m).(bits)] is the cost of the configuration with bit pattern
    [bits] at site [m] ([bits = 0] must be 0). Universe limited to 20
    commodities. *)
val of_table : n_commodities:int -> float array array -> t

(** [project t ~keep] restricts [t] to the sub-universe [keep ⊆ S]: the
    result has [|keep|] commodities (re-indexed in increasing order of the
    original ids) and satisfies
    [eval (project t ~keep) m σ' = eval t m (embed σ')]. Raises
    [Invalid_argument] if [keep] is empty or from the wrong universe.
    Returns the projected function together with the [new → old] commodity
    index map. *)
val project : t -> keep:Cset.t -> t * int array

(** [with_surcharge t ~surcharges] adds a per-commodity additive surcharge:
    [f'^σ_m = f^σ_m + Σ_{e ∈ σ} surcharges.(e)]. Commodities with a large
    surcharge are exactly the paper's "heavy" commodities (Section 5):
    they typically break Condition 1 while preserving subadditivity.
    Raises [Invalid_argument] on arity mismatch or negative surcharge. *)
val with_surcharge : t -> surcharges:float array -> t

(** {1 Validation} *)

(** [check_condition1 t] verifies Condition 1 on every (site, σ) pair for
    universes of at most [exhaustive_limit] commodities (default 12), and
    on [samples] random pairs otherwise. [Ok ()] or [Error (m, σ)]. *)
val check_condition1 :
  ?exhaustive_limit:int ->
  ?samples:int ->
  ?rng:Omflp_prelude.Splitmix.t ->
  t ->
  (unit, int * Cset.t) result

(** [check_subadditive t] verifies [f^{a∪b}_m ≤ f^a_m + f^b_m] the same
    way; [Error (m, a, b)] names a violation. *)
val check_subadditive :
  ?exhaustive_limit:int ->
  ?samples:int ->
  ?rng:Omflp_prelude.Splitmix.t ->
  t ->
  (unit, int * Cset.t * Cset.t) result
