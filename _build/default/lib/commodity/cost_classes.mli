(** Power-of-two facility cost classes (Section 4).

    RAND-OMFLP rounds every facility cost [f^σ_m] down to the nearest power
    of two and groups the sites by the rounded value; the resulting ordered
    classes [C^σ_1 < C^σ_2 < ...] drive its per-class opening
    probabilities. Only the configurations the algorithm ever opens are
    materialised: the singletons [{e}] and the full set [S]. *)

type key = Single of int  (** configuration [{e}] *) | All  (** configuration [S] *)

type cls = {
  cost : float;  (** the rounded class cost [C^σ_i] *)
  sites : int array;  (** sites whose rounded cost equals [cost] *)
}

type t

(** [build cost] precomputes the classes of every singleton configuration
    and of [S] over all sites of [cost]. Costs of exactly 0 are kept in a
    dedicated first class with [cost = 0]. *)
val build : Cost_function.t -> t

(** [classes t key] is the ordered class array (strictly increasing
    [cost]). *)
val classes : t -> key -> cls array

(** [n_classes t key]. *)
val n_classes : t -> key -> int

(** [cumulative_min_dist t key ~dist_to ~upto] is
    [min_{j <= upto} min_{m ∈ class j} dist_to m] — the cumulative-minimum
    distance [D_i(r)] used for the per-class improvement terms. [upto] is a
    0-based class index; raises [Invalid_argument] when out of range. *)
val cumulative_min_dist : t -> key -> dist_to:(int -> float) -> upto:int -> float

(** [nearest_site_in_class t key ~dist_to ~cls_idx] is the (site, distance)
    of the closest site belonging to class [cls_idx] exactly. *)
val nearest_site_in_class :
  t -> key -> dist_to:(int -> float) -> cls_idx:int -> int * float

(** [round_down_pow2 v] rounds a positive cost down to a power of two;
    [0.] maps to [0.]. *)
val round_down_pow2 : float -> float
