open Omflp_prelude

type key = Single of int | All

type cls = { cost : float; sites : int array }

type t = { singles : cls array array; all : cls array }

let round_down_pow2 v =
  if v < 0.0 then invalid_arg "Cost_classes.round_down_pow2: negative cost";
  if v = 0.0 then 0.0 else Numerics.floor_pow2 v

let group_sites costs =
  (* costs.(m) is the rounded cost at site m; group sites by value. *)
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun m c ->
      let prev = Option.value (Hashtbl.find_opt tbl c) ~default:[] in
      Hashtbl.replace tbl c (m :: prev))
    costs;
  let classes =
    Hashtbl.fold
      (fun cost sites acc ->
        { cost; sites = Array.of_list (List.rev sites) } :: acc)
      tbl []
  in
  Array.of_list
    (List.sort (fun a b -> Float.compare a.cost b.cost) classes)

let build cost =
  let n_sites = Cost_function.n_sites cost in
  let n_commodities = Cost_function.n_commodities cost in
  let singles =
    Array.init n_commodities (fun e ->
        group_sites
          (Array.init n_sites (fun m ->
               round_down_pow2 (Cost_function.singleton_cost cost m e))))
  in
  let all =
    group_sites
      (Array.init n_sites (fun m ->
           round_down_pow2 (Cost_function.full_cost cost m)))
  in
  { singles; all }

let classes t = function Single e -> t.singles.(e) | All -> t.all

let n_classes t key = Array.length (classes t key)

let min_dist_in_class cls ~dist_to =
  Array.fold_left (fun acc m -> Float.min acc (dist_to m)) infinity cls.sites

let cumulative_min_dist t key ~dist_to ~upto =
  let cs = classes t key in
  if upto < 0 || upto >= Array.length cs then
    invalid_arg "Cost_classes.cumulative_min_dist: class index out of range";
  let best = ref infinity in
  for j = 0 to upto do
    best := Float.min !best (min_dist_in_class cs.(j) ~dist_to)
  done;
  !best

let nearest_site_in_class t key ~dist_to ~cls_idx =
  let cs = classes t key in
  if cls_idx < 0 || cls_idx >= Array.length cs then
    invalid_arg "Cost_classes.nearest_site_in_class: class index out of range";
  let best_site = ref cs.(cls_idx).sites.(0) in
  let best_dist = ref (dist_to !best_site) in
  Array.iter
    (fun m ->
      let d = dist_to m in
      if d < !best_dist then begin
        best_dist := d;
        best_site := m
      end)
    cs.(cls_idx).sites;
  (!best_site, !best_dist)
