lib/commodity/cost_classes.mli: Cost_function
