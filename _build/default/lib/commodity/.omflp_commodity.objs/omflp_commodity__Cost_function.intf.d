lib/commodity/cost_function.mli: Cset Omflp_prelude
