lib/commodity/cost_classes.ml: Array Cost_function Float Hashtbl List Numerics Omflp_prelude Option
