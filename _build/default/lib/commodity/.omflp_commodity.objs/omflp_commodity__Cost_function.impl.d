lib/commodity/cost_function.ml: Array Bitset Cset Float List Numerics Omflp_prelude Printf Sampler Splitmix
