lib/commodity/cset.ml: Array Bitset List Omflp_prelude
