lib/commodity/cset.mli: Format Omflp_prelude
