open Omflp_prelude

type t = {
  name : string;
  n_commodities : int;
  n_sites : int;
  f : int -> Cset.t -> float;
}

let make ~name ~n_commodities ~n_sites f =
  if n_commodities <= 0 then
    invalid_arg "Cost_function.make: need at least one commodity";
  if n_sites <= 0 then invalid_arg "Cost_function.make: need at least one site";
  { name; n_commodities; n_sites; f }

let name t = t.name
let n_commodities t = t.n_commodities
let n_sites t = t.n_sites

let eval t m sigma =
  if m < 0 || m >= t.n_sites then
    invalid_arg
      (Printf.sprintf "Cost_function.eval: site %d outside [0, %d)" m t.n_sites);
  if Cset.n_commodities sigma <> t.n_commodities then
    invalid_arg "Cost_function.eval: configuration from wrong universe";
  if Cset.is_empty sigma then 0.0 else t.f m sigma

let singleton_cost t m e =
  eval t m (Cset.singleton ~n_commodities:t.n_commodities e)

let full_cost t m = eval t m (Cset.full ~n_commodities:t.n_commodities)

let size_based ~name ~n_commodities ~n_sites g =
  make ~name ~n_commodities ~n_sites (fun _m sigma ->
      g (Cset.cardinal sigma))

let power_law ~n_commodities ~n_sites ~x =
  if x < 0.0 || x > 2.0 then
    invalid_arg "Cost_function.power_law: x must lie in [0, 2]";
  size_based
    ~name:(Printf.sprintf "g_x(x=%.2g)" x)
    ~n_commodities ~n_sites
    (fun k -> Float.pow (float_of_int k) (x /. 2.0))

let theorem2 ~n_commodities ~n_sites =
  let root = Numerics.isqrt n_commodities in
  let root = max root 1 in
  size_based ~name:"ceil(|sigma|/sqrt|S|)" ~n_commodities ~n_sites (fun k ->
      float_of_int (Numerics.ceil_div k root))

let linear ~n_commodities ~n_sites ~per_commodity =
  if per_commodity < 0.0 then
    invalid_arg "Cost_function.linear: negative per-commodity cost";
  size_based ~name:"linear" ~n_commodities ~n_sites (fun k ->
      per_commodity *. float_of_int k)

let constant ~n_commodities ~n_sites ~cost =
  if cost < 0.0 then invalid_arg "Cost_function.constant: negative cost";
  size_based ~name:"constant" ~n_commodities ~n_sites (fun _ -> cost)

let site_scaled base multipliers =
  if Array.length multipliers <> base.n_sites then
    invalid_arg "Cost_function.site_scaled: arity mismatch";
  Array.iter
    (fun m ->
      if m <= 0.0 then
        invalid_arg "Cost_function.site_scaled: non-positive multiplier")
    multipliers;
  {
    base with
    name = base.name ^ "+site-scaled";
    f = (fun m sigma -> multipliers.(m) *. base.f m sigma);
  }

let of_table ~n_commodities table =
  if n_commodities > 20 then
    invalid_arg "Cost_function.of_table: universe too large";
  let n_sites = Array.length table in
  let expected = 1 lsl n_commodities in
  Array.iteri
    (fun m row ->
      if Array.length row <> expected then
        invalid_arg "Cost_function.of_table: row arity mismatch";
      if row.(0) <> 0.0 then
        invalid_arg "Cost_function.of_table: empty configuration must cost 0";
      Array.iter
        (fun v ->
          if v < 0.0 then
            invalid_arg
              (Printf.sprintf "Cost_function.of_table: negative cost at site %d"
                 m))
        row)
    table;
  make ~name:"table" ~n_commodities ~n_sites (fun m sigma ->
      table.(m).(Bitset.to_int sigma))

let project t ~keep =
  if Cset.n_commodities keep <> t.n_commodities then
    invalid_arg "Cost_function.project: keep from wrong universe";
  if Cset.is_empty keep then
    invalid_arg "Cost_function.project: empty sub-universe";
  let old_of_new = Array.of_list (Cset.elements keep) in
  let sub_k = Array.length old_of_new in
  let embed sigma' =
    Cset.fold
      (fun e' acc -> Cset.add acc old_of_new.(e'))
      sigma'
      (Cset.empty ~n_commodities:t.n_commodities)
  in
  let projected =
    make
      ~name:(Printf.sprintf "%s|%d-of-%d" t.name sub_k t.n_commodities)
      ~n_commodities:sub_k ~n_sites:t.n_sites
      (fun m sigma' -> t.f m (embed sigma'))
  in
  (projected, old_of_new)

let with_surcharge t ~surcharges =
  if Array.length surcharges <> t.n_commodities then
    invalid_arg "Cost_function.with_surcharge: arity mismatch";
  Array.iter
    (fun s ->
      if s < 0.0 then
        invalid_arg "Cost_function.with_surcharge: negative surcharge")
    surcharges;
  {
    t with
    name = t.name ^ "+surcharge";
    f =
      (fun m sigma ->
        Cset.fold (fun e acc -> acc +. surcharges.(e)) sigma (t.f m sigma));
  }

(* Validation: exhaustive when the configuration space is small, sampled
   otherwise. *)

let random_config rng ~n_commodities =
  let s = ref (Cset.empty ~n_commodities) in
  while Cset.is_empty !s do
    s := Sampler.random_subset rng ~universe:n_commodities ~p:0.5
  done;
  !s

let check_condition1 ?(exhaustive_limit = 12) ?(samples = 2000) ?rng t =
  let holds m sigma =
    let k = Cset.cardinal sigma in
    if k = 0 then true
    else
      let per_sigma = eval t m sigma /. float_of_int k in
      let per_full = full_cost t m /. float_of_int t.n_commodities in
      Numerics.approx_le per_full per_sigma
  in
  let violation = ref None in
  (try
     if t.n_commodities <= exhaustive_limit then
       for m = 0 to t.n_sites - 1 do
         List.iter
           (fun sigma ->
             if not (holds m sigma) then begin
               violation := Some (m, sigma);
               raise Exit
             end)
           (Cset.all_nonempty_subsets ~n_commodities:t.n_commodities)
       done
     else begin
       let rng =
         match rng with Some r -> r | None -> Splitmix.of_int 0x51ab
       in
       for _ = 1 to samples do
         let m = Splitmix.int rng t.n_sites in
         let sigma = random_config rng ~n_commodities:t.n_commodities in
         if not (holds m sigma) then begin
           violation := Some (m, sigma);
           raise Exit
         end
       done
     end
   with Exit -> ());
  match !violation with None -> Ok () | Some v -> Error v

let check_subadditive ?(exhaustive_limit = 8) ?(samples = 2000) ?rng t =
  let holds m a b =
    let u = Cset.union a b in
    Numerics.approx_le (eval t m u) (eval t m a +. eval t m b)
  in
  let violation = ref None in
  (try
     if t.n_commodities <= exhaustive_limit then begin
       let subsets = Cset.all_subsets ~n_commodities:t.n_commodities in
       for m = 0 to t.n_sites - 1 do
         List.iter
           (fun a ->
             List.iter
               (fun b ->
                 if not (holds m a b) then begin
                   violation := Some (m, a, b);
                   raise Exit
                 end)
               subsets)
           subsets
       done
     end
     else begin
       let rng =
         match rng with Some r -> r | None -> Splitmix.of_int 0x5ba2
       in
       for _ = 1 to samples do
         let m = Splitmix.int rng t.n_sites in
         let a = random_config rng ~n_commodities:t.n_commodities in
         let b = random_config rng ~n_commodities:t.n_commodities in
         if not (holds m a b) then begin
           violation := Some (m, a, b);
           raise Exit
         end
       done
     end
   with Exit -> ());
  match !violation with None -> Ok () | Some v -> Error v
