type relation = Le | Ge | Eq

type constr = { coeffs : float array; relation : relation; rhs : float }

type problem = {
  n_vars : int;
  objective : float array;
  constraints : constr list;
}

type solution =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

let tol = 1e-7

(* Full-tableau simplex.

   Layout: [tab] has [m] constraint rows and one cost row (index m); each
   row has [n_total] variable columns and the RHS in column [n_total].
   [basis.(i)] names the basic variable of row [i]. The cost row holds
   reduced costs (for minimization: pivot while some reduced cost is
   negative); its RHS cell holds the negated objective value. *)

type tableau = {
  m : int;
  n_total : int;
  tab : float array array;
  basis : int array;
}

let pivot t ~row ~col =
  let piv = t.tab.(row).(col) in
  let r = t.tab.(row) in
  for j = 0 to t.n_total do
    r.(j) <- r.(j) /. piv
  done;
  for i = 0 to t.m do
    if i <> row then begin
      let factor = t.tab.(i).(col) in
      if factor <> 0.0 then begin
        let ri = t.tab.(i) in
        for j = 0 to t.n_total do
          ri.(j) <- ri.(j) -. (factor *. r.(j))
        done
      end
    end
  done;
  t.basis.(row) <- col

(* Bland's rule: entering = smallest column index with negative reduced
   cost; leaving = smallest ratio, ties broken by smallest basic index. *)
let run_phase t ~allowed =
  let rec loop iter =
    if iter > 200_000 then
      failwith "Simplex.run_phase: iteration limit (cycling?)";
    let cost = t.tab.(t.m) in
    let entering = ref (-1) in
    (try
       for j = 0 to t.n_total - 1 do
         if allowed j && cost.(j) < -.tol then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to t.m - 1 do
        let a = t.tab.(i).(col) in
        if a > tol then begin
          let ratio = t.tab.(i).(t.n_total) /. a in
          if
            ratio < !best_ratio -. tol
            || (Float.abs (ratio -. !best_ratio) <= tol
               && (!best_row < 0 || t.basis.(i) < t.basis.(!best_row)))
          then begin
            best_ratio := ratio;
            best_row := i
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        pivot t ~row:!best_row ~col;
        loop (iter + 1)
      end
    end
  in
  loop 0

let solve p =
  let n = p.n_vars in
  if Array.length p.objective <> n then
    invalid_arg "Simplex.solve: objective arity mismatch";
  List.iter
    (fun c ->
      if Array.length c.coeffs <> n then
        invalid_arg "Simplex.solve: constraint arity mismatch")
    p.constraints;
  let constraints = Array.of_list p.constraints in
  let m = Array.length constraints in
  (* Normalize to non-negative RHS. *)
  let rows =
    Array.map
      (fun c ->
        if c.rhs < 0.0 then
          {
            coeffs = Array.map (fun v -> -.v) c.coeffs;
            rhs = -.c.rhs;
            relation =
              (match c.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
          }
        else c)
      constraints
  in
  (* Column layout: structural 0..n-1, then one slack/surplus per Le/Ge
     row, then one artificial per Ge/Eq row. *)
  let n_slack =
    Array.fold_left
      (fun acc c -> match c.relation with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows
  in
  let n_art =
    Array.fold_left
      (fun acc c -> match c.relation with Ge | Eq -> acc + 1 | Le -> acc)
      0 rows
  in
  let n_total = n + n_slack + n_art in
  let tab = Array.make_matrix (m + 1) (n_total + 1) 0.0 in
  let basis = Array.make m (-1) in
  let slack_idx = ref n in
  let art_idx = ref (n + n_slack) in
  let art_cols = Array.make n_art 0 in
  let art_count = ref 0 in
  Array.iteri
    (fun i c ->
      Array.blit c.coeffs 0 tab.(i) 0 n;
      tab.(i).(n_total) <- c.rhs;
      (match c.relation with
      | Le ->
          tab.(i).(!slack_idx) <- 1.0;
          basis.(i) <- !slack_idx;
          incr slack_idx
      | Ge ->
          tab.(i).(!slack_idx) <- -1.0;
          incr slack_idx;
          tab.(i).(!art_idx) <- 1.0;
          basis.(i) <- !art_idx;
          art_cols.(!art_count) <- !art_idx;
          incr art_count;
          incr art_idx
      | Eq ->
          tab.(i).(!art_idx) <- 1.0;
          basis.(i) <- !art_idx;
          art_cols.(!art_count) <- !art_idx;
          incr art_count;
          incr art_idx))
    rows;
  let t = { m; n_total; tab; basis } in
  let is_artificial j = j >= n + n_slack in
  (* Phase 1: minimize the sum of artificials. Cost row = Σ (artificial
     rows), negated, so reduced costs of the initial basis are zero. *)
  if n_art > 0 then begin
    let cost = tab.(m) in
    Array.fill cost 0 (n_total + 1) 0.0;
    for j = n + n_slack to n_total - 1 do
      cost.(j) <- 1.0
    done;
    (* Zero out reduced costs of basic artificials. *)
    for i = 0 to m - 1 do
      if is_artificial basis.(i) then
        for j = 0 to n_total do
          cost.(j) <- cost.(j) -. tab.(i).(j)
        done
    done;
    match run_phase t ~allowed:(fun _ -> true) with
    | `Unbounded -> failwith "Simplex: phase 1 unbounded (impossible)"
    | `Optimal ->
        let phase1_obj = -.tab.(m).(n_total) in
        if phase1_obj > 1e-6 then raise Exit
  end;
  (* Drive remaining artificials out of the basis where possible. *)
  for i = 0 to m - 1 do
    if is_artificial t.basis.(i) then begin
      let found = ref false in
      let j = ref 0 in
      while (not !found) && !j < n + n_slack do
        if Float.abs t.tab.(i).(!j) > tol then begin
          pivot t ~row:i ~col:!j;
          found := true
        end;
        incr j
      done
      (* If no pivot exists the row is redundant; the artificial stays
         basic at value 0 and is simply never allowed to re-enter. *)
    end
  done;
  (* Phase 2: real objective. *)
  let cost = tab.(m) in
  Array.fill cost 0 (n_total + 1) 0.0;
  Array.blit p.objective 0 cost 0 n;
  for i = 0 to m - 1 do
    let b = t.basis.(i) in
    if b < n && cost.(b) <> 0.0 then begin
      let factor = cost.(b) in
      for j = 0 to n_total do
        cost.(j) <- cost.(j) -. (factor *. tab.(i).(j))
      done
    end
  done;
  match run_phase t ~allowed:(fun j -> not (is_artificial j)) with
  | `Unbounded -> Unbounded
  | `Optimal ->
      let x = Array.make n 0.0 in
      for i = 0 to m - 1 do
        if t.basis.(i) < n then x.(t.basis.(i)) <- t.tab.(i).(n_total)
      done;
      let objective =
        Array.fold_left ( +. ) 0.0 (Array.mapi (fun j v -> v *. p.objective.(j)) x)
      in
      Optimal { x; objective }

let solve p = try solve p with Exit -> Infeasible

let feasible p x =
  Array.for_all (fun v -> v >= -.tol) x
  && List.for_all
       (fun c ->
         let lhs = ref 0.0 in
         Array.iteri (fun j v -> lhs := !lhs +. (v *. x.(j))) c.coeffs;
         match c.relation with
         | Le -> !lhs <= c.rhs +. (tol *. Float.max 1.0 (Float.abs c.rhs))
         | Ge -> !lhs >= c.rhs -. (tol *. Float.max 1.0 (Float.abs c.rhs))
         | Eq -> Float.abs (!lhs -. c.rhs) <= tol *. Float.max 1.0 (Float.abs c.rhs))
       p.constraints
