(** Dense two-phase primal simplex with Bland's anti-cycling rule.

    Solves [min cᵀx] subject to [Ax {≤,=,≥} b], [x ≥ 0]. Small and
    self-contained: the MFLP LP relaxation (Section 1.1) only needs a few
    hundred variables, so a dense tableau is the simplest robust choice. *)

type relation = Le | Ge | Eq

type constr = { coeffs : float array; relation : relation; rhs : float }

type problem = {
  n_vars : int;
  objective : float array;  (** minimized *)
  constraints : constr list;
}

type solution =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

(** [solve p] returns the optimum of the LP. Raises [Invalid_argument] on
    arity mismatches. Deterministic. *)
val solve : problem -> solution

(** [feasible p x] checks a point against all constraints and
    non-negativity with the library tolerance. *)
val feasible : problem -> float array -> bool
