open Omflp_commodity
open Omflp_instance

type built = {
  problem : Simplex.problem;
  y_index : int -> Cset.t -> int;
  x_index : int -> Cset.t -> int -> int;
  configs : Cset.t array;
}

let build ?(max_commodities = 6) (inst : Instance.t) =
  let s = Instance.n_commodities inst in
  if s > max_commodities then
    invalid_arg
      (Printf.sprintf
         "Mflp_model.build: %d commodities exceed the exact-solver limit %d" s
         max_commodities);
  let n_sites = Instance.n_sites inst in
  let n_req = Instance.n_requests inst in
  let configs = Array.of_list (Cset.all_nonempty_subsets ~n_commodities:s) in
  let n_cfg = Array.length configs in
  (* Column layout: y's first (site-major), then x's (site, config,
     request). Config index = bit pattern - 1. *)
  let cfg_idx sigma = Omflp_prelude.Bitset.to_int sigma - 1 in
  let y_index m sigma = (m * n_cfg) + cfg_idx sigma in
  let x_base = n_sites * n_cfg in
  let x_index m sigma r = x_base + (((m * n_cfg) + cfg_idx sigma) * n_req) + r in
  let n_vars = x_base + (n_sites * n_cfg * n_req) in
  let objective = Array.make n_vars 0.0 in
  for m = 0 to n_sites - 1 do
    Array.iteri
      (fun ci sigma ->
        objective.((m * n_cfg) + ci) <- Cost_function.eval inst.cost m sigma;
        for r = 0 to n_req - 1 do
          objective.(x_index m sigma r) <-
            Omflp_metric.Finite_metric.dist inst.metric m
              inst.requests.(r).Request.site
        done)
      configs
  done;
  let constraints = ref [] in
  (* Coverage: for each request r and each demanded commodity e. *)
  for r = 0 to n_req - 1 do
    Cset.iter
      (fun e ->
        let coeffs = Array.make n_vars 0.0 in
        for m = 0 to n_sites - 1 do
          Array.iter
            (fun sigma ->
              if Cset.mem sigma e then coeffs.(x_index m sigma r) <- 1.0)
            configs
        done;
        constraints :=
          { Simplex.coeffs; relation = Simplex.Ge; rhs = 1.0 } :: !constraints)
      inst.requests.(r).Request.demand
  done;
  (* Linking: x^σ_mr − y^σ_m ≤ 0. Only needed when the x can appear in a
     coverage constraint, i.e. when σ intersects the request's demand. *)
  for m = 0 to n_sites - 1 do
    Array.iter
      (fun sigma ->
        for r = 0 to n_req - 1 do
          if not (Cset.is_empty (Cset.inter sigma inst.requests.(r).Request.demand))
          then begin
            let coeffs = Array.make n_vars 0.0 in
            coeffs.(x_index m sigma r) <- 1.0;
            coeffs.(y_index m sigma) <- -1.0;
            constraints :=
              { Simplex.coeffs; relation = Simplex.Le; rhs = 0.0 }
              :: !constraints
          end
        done)
      configs
  done;
  {
    problem = { Simplex.n_vars; objective; constraints = !constraints };
    y_index;
    x_index;
    configs;
  }

let lp_lower_bound ?max_commodities inst =
  let { problem; _ } = build ?max_commodities inst in
  match Simplex.solve problem with
  | Simplex.Optimal { objective; _ } -> objective
  | Simplex.Infeasible -> failwith "Mflp_model.lp_lower_bound: LP infeasible"
  | Simplex.Unbounded -> failwith "Mflp_model.lp_lower_bound: LP unbounded"

type exact = { objective : float; facilities : (int * Cset.t) list }

type exact_outcome = Exact of exact | Truncated of exact option

let decode built (inst : Instance.t) x =
  let n_sites = Instance.n_sites inst in
  let facilities = ref [] in
  for m = 0 to n_sites - 1 do
    Array.iter
      (fun sigma ->
        let v = x.(built.y_index m sigma) in
        let count = int_of_float (Float.round v) in
        for _ = 1 to count do
          facilities := (m, sigma) :: !facilities
        done)
      built.configs
  done;
  List.rev !facilities

let solve_exact ?max_commodities ?node_limit inst =
  let built = build ?max_commodities inst in
  let n_vars = built.problem.Simplex.n_vars in
  let mip =
    {
      Branch_bound.lp = built.problem;
      integer_vars = List.init n_vars Fun.id;
    }
  in
  match Branch_bound.solve ?node_limit mip with
  | Branch_bound.Mip_optimal { x; objective } ->
      Exact { objective; facilities = decode built inst x }
  | Branch_bound.Mip_infeasible ->
      failwith "Mflp_model.solve_exact: infeasible (impossible)"
  | Branch_bound.Mip_node_limit { best } ->
      Truncated
        (Option.map
           (fun (x, objective) ->
             { objective; facilities = decode built inst x })
           best)
