(** The MFLP integer program of Section 1.1 (simplified form) and its LP
    relaxation.

    Variables: [y^σ_m] (a facility with configuration σ at site m) and
    [x^σ_mr] (request r is served σ ∩ s_r by that facility), for every site
    and every non-empty [σ ⊆ S]. Objective
    [Σ f^σ_m y^σ_m + Σ d(m,r) x^σ_mr]; constraints
    [Σ_{(m,σ): e∈σ} x^σ_mr ≥ 1] per requested commodity and
    [x^σ_mr ≤ y^σ_m].

    Sizes are exponential in [|S|], so construction refuses more than
    [max_commodities] (default 6) commodities. *)

type built = {
  problem : Simplex.problem;
  y_index : int -> Omflp_commodity.Cset.t -> int;
      (** [y_index m σ] is the column of [y^σ_m] *)
  x_index : int -> Omflp_commodity.Cset.t -> int -> int;
      (** [x_index m σ r] is the column of [x^σ_mr] *)
  configs : Omflp_commodity.Cset.t array;  (** all non-empty σ, indexed *)
}

(** [build ?max_commodities instance] constructs the LP relaxation. *)
val build : ?max_commodities:int -> Omflp_instance.Instance.t -> built

(** [lp_lower_bound instance] is the optimum of the relaxation — a
    certified lower bound on OPT. Raises [Failure] if the LP solver fails
    (it cannot be infeasible or unbounded on a valid instance). *)
val lp_lower_bound : ?max_commodities:int -> Omflp_instance.Instance.t -> float

type exact = {
  objective : float;
  facilities : (int * Omflp_commodity.Cset.t) list;
      (** opened (site, configuration) pairs *)
}

type exact_outcome =
  | Exact of exact
  | Truncated of exact option  (** node limit hit; best incumbent if any *)

(** [solve_exact ?max_commodities ?node_limit instance] computes OPT by
    branch and bound on the integer program. *)
val solve_exact :
  ?max_commodities:int ->
  ?node_limit:int ->
  Omflp_instance.Instance.t ->
  exact_outcome
