type mip = { lp : Simplex.problem; integer_vars : int list }

type outcome =
  | Mip_optimal of { x : float array; objective : float }
  | Mip_infeasible
  | Mip_node_limit of { best : (float array * float) option }

let int_tol = 1e-6

let most_fractional integer_vars x =
  List.fold_left
    (fun best v ->
      let frac = Float.abs (x.(v) -. Float.round x.(v)) in
      if frac <= int_tol then best
      else
        match best with
        | Some (_, bf) when bf >= frac -> best
        | _ -> Some (v, frac))
    None integer_vars

let bound_constraint n v relation rhs =
  let coeffs = Array.make n 0.0 in
  coeffs.(v) <- 1.0;
  { Simplex.coeffs; relation; rhs }

let solve ?(node_limit = 50_000) mip =
  let incumbent = ref None in
  let nodes = ref 0 in
  let truncated = ref false in
  let better obj =
    match !incumbent with None -> true | Some (_, best) -> obj < best -. 1e-9
  in
  let rec explore (lp : Simplex.problem) =
    if !nodes >= node_limit then truncated := true
    else begin
      incr nodes;
      match Simplex.solve lp with
      | Simplex.Infeasible -> ()
      | Simplex.Unbounded -> failwith "Branch_bound.solve: unbounded relaxation"
      | Simplex.Optimal { x; objective } ->
          (* The LP value lower-bounds every descendant: prune when it
             cannot beat the incumbent. *)
          if better objective then begin
            match most_fractional mip.integer_vars x with
            | None ->
                let x = Array.map Float.round x in
                incumbent := Some (x, objective)
            | Some (v, _) ->
                let n = lp.Simplex.n_vars in
                let floor_v = Float.floor x.(v) in
                let down =
                  bound_constraint n v Simplex.Le floor_v :: lp.constraints
                in
                let up =
                  bound_constraint n v Simplex.Ge (floor_v +. 1.0)
                  :: lp.constraints
                in
                (* "Round down" first: facility problems usually close
                   facilities in the optimum. *)
                explore { lp with constraints = down };
                explore { lp with constraints = up }
          end
    end
  in
  explore mip.lp;
  match (!incumbent, !truncated) with
  | Some (x, objective), false -> Mip_optimal { x; objective }
  | best, true -> Mip_node_limit { best }
  | None, false -> Mip_infeasible
