lib/lp/mflp_model.mli: Omflp_commodity Omflp_instance Simplex
