lib/lp/branch_bound.ml: Array Float List Simplex
