lib/lp/mflp_model.ml: Array Branch_bound Cost_function Cset Float Fun Instance List Omflp_commodity Omflp_instance Omflp_metric Omflp_prelude Option Printf Request Simplex
