lib/lp/branch_bound.mli: Simplex
