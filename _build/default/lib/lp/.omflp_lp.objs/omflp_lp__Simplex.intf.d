lib/lp/simplex.mli:
