(** Generic branch-and-bound mixed-integer solver over {!Simplex}.

    Depth-first search branching on the most fractional integer variable;
    nodes are pruned against the incumbent. Intended for the small
    instances that certify OPT in tests and experiment tables. *)

type mip = {
  lp : Simplex.problem;
  integer_vars : int list;  (** variables required to be integral *)
}

type outcome =
  | Mip_optimal of { x : float array; objective : float }
  | Mip_infeasible
  | Mip_node_limit of { best : (float array * float) option }
      (** search truncated; [best] is the incumbent if any *)

(** [solve ?node_limit mip] minimizes. [node_limit] defaults to 50_000. *)
val solve : ?node_limit:int -> mip -> outcome
