open Omflp_prelude

type t = { c : float; bs : Bitset.t array }

let make ~c bs =
  if c <= 0.0 then invalid_arg "C_ordered.make: c must be positive";
  let n = Array.length bs in
  Array.iteri
    (fun i b ->
      if Bitset.universe b <> n then
        invalid_arg "C_ordered.make: B set over wrong universe";
      Bitset.iter
        (fun e ->
          if e >= i then
            invalid_arg
              (Printf.sprintf "C_ordered.make: B_%d contains %d >= %d" i e i))
        b;
      if i > 0 && not (Bitset.subset bs.(i - 1) b) then
        invalid_arg
          (Printf.sprintf "C_ordered.make: monotonicity fails at %d" i))
    bs;
  { c; bs }

let n t = Array.length t.bs
let c t = t.c

let b_set t i = t.bs.(i)

let prefix_set ~n i =
  (* {0, ..., i-1} as a bitset over universe n. *)
  let s = ref (Bitset.create n) in
  for e = 0 to i - 1 do
    s := Bitset.add !s e
  done;
  !s

let a_set t i = Bitset.diff (prefix_set ~n:(n t) i) t.bs.(i)

type choice = Take_singletons of int list | Take_coping of int

type cover = { total_weight : float; rounds : choice list }

let weight_of_choice t = function
  | Take_singletons is ->
      List.fold_left
        (fun acc i ->
          acc +. (t.c /. float_of_int (Bitset.cardinal t.bs.(i) + 1)))
        0.0 is
  | Take_coping _ -> t.c

(* Lemma 10/11/12: elements of A_last never appear in any B_j, so removing
   the last element together with covered elements of A_last leaves every
   remaining B set untouched; we simply iterate on the shrinking set of
   remaining original indices. *)
let solve t =
  let size = n t in
  let remaining = ref (Bitset.full size) in
  let rounds = ref [] in
  let total = ref 0.0 in
  while not (Bitset.is_empty !remaining) do
    let last =
      Bitset.fold (fun i _ -> i) !remaining (-1) (* max element *)
    in
    let b_last = t.bs.(last) in
    let m = Bitset.cardinal !remaining in
    let bsize = Bitset.cardinal b_last in
    (* The trailing block: remaining elements whose B set equals B_last.
       Monotonicity makes this a suffix of the remaining sequence. *)
    let block =
      Bitset.fold
        (fun i acc -> if Bitset.equal t.bs.(i) b_last then i :: acc else acc)
        !remaining []
    in
    let coping_per_element = t.c /. float_of_int (m - bsize) in
    let singleton_per_element = t.c /. float_of_int (bsize + 1) in
    let choice, covered =
      if coping_per_element <= singleton_per_element then
        (* {last} ∪ A_last restricted to remaining elements. *)
        let a = a_set t last in
        let covered =
          Bitset.add (Bitset.inter a !remaining) last
        in
        (Take_coping last, covered)
      else
        ( Take_singletons block,
          List.fold_left Bitset.add (Bitset.create size) block )
    in
    total := !total +. weight_of_choice t choice;
    rounds := choice :: !rounds;
    remaining := Bitset.diff !remaining covered
  done;
  { total_weight = !total; rounds = List.rev !rounds }

let covered_elements t cover =
  let size = n t in
  List.fold_left
    (fun acc choice ->
      match choice with
      | Take_singletons is -> List.fold_left Bitset.add acc is
      | Take_coping i -> Bitset.add (Bitset.union acc (a_set t i)) i)
    (Bitset.create size) cover.rounds

let bound t = 2.0 *. t.c *. Numerics.harmonic (n t)

let random rng ~n ~c ~growth_p =
  let bs = Array.make n (Bitset.create n) in
  for i = 1 to n - 1 do
    let b = ref bs.(i - 1) in
    (* Extend with fresh eligible elements (< i) at random; monotone by
       construction. *)
    for e = 0 to i - 1 do
      if (not (Bitset.mem !b e)) && Splitmix.bernoulli rng growth_p then
        b := Bitset.add !b e
    done;
    bs.(i) <- !b
  done;
  make ~c bs
