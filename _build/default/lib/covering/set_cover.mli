(** Weighted set cover: greedy (H_n-approximate) and exact (bitmask DP).

    Used by the offline solvers: the Ravi–Sinha-style greedy reduces the
    MFLP to repeated weighted-cover steps, and the exact DP certifies small
    cases. *)

open Omflp_prelude

type set = { weight : float; members : Bitset.t }

(** [greedy ~universe sets] covers [{0, ..., universe-1}] with a greedy
    minimum weight-per-new-element rule. Returns the chosen set indices in
    pick order with the total weight. Raises [Invalid_argument] if the
    union of all sets does not cover the universe or a weight is
    negative. *)
val greedy : universe:int -> set array -> int list * float

(** [greedy_partial ~target sets] covers only [target] (a subset of the
    sets' universe). *)
val greedy_partial : target:Bitset.t -> set array -> int list * float

(** [exact ~universe sets] finds a minimum-weight cover via DP over element
    masks. Universe limited to 20. Returns chosen indices and weight. *)
val exact : universe:int -> set array -> int list * float

(** [exact_partial ~target sets] as {!exact} for a subset target. *)
val exact_partial : target:Bitset.t -> set array -> int list * float
