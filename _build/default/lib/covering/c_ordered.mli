(** [c]-ordered covering (Definition 9) and its [2cH_n] covering procedure
    (Lemmas 10–12).

    An instance over elements [0 .. n-1] is given by the monotone family
    [B_0 ⊆ B_1 ⊆ ... ⊆ B_{n-1}] with [B_i ⊆ {0, ..., i-1}];
    [A_i = {0, ..., i-1} ∖ B_i] is implied. The available sets are, for
    every [i], the singleton [{i}] with weight [c / (|B_i| + 1)] and
    [{i} ∪ A_i] with weight [c].

    This machinery is the combinatorial core of the deterministic
    algorithm's dual-feasibility proof; here it is executable so the
    [2cH_n] bound (Lemma 12) can be property-tested. *)

type t

(** [make ~c bs] builds an instance from the family [B_i] ([bs.(i)] is a
    bitset over the universe [n = Array.length bs]). Raises
    [Invalid_argument] if [c <= 0], some [B_i] contains an element [>= i],
    or monotonicity [B_i ⊆ B_{i+1}] fails. *)
val make : c:float -> Omflp_prelude.Bitset.t array -> t

val n : t -> int
val c : t -> float

(** [b_set t i] is [B_i]. *)
val b_set : t -> int -> Omflp_prelude.Bitset.t

(** [a_set t i] is [A_i = {0, ..., i-1} ∖ B_i]. *)
val a_set : t -> int -> Omflp_prelude.Bitset.t

type choice =
  | Take_singletons of int list  (** one set [{i}] per listed element *)
  | Take_coping of int  (** the set [{i} ∪ A_i] for the listed element *)

type cover = { total_weight : float; rounds : choice list }

(** [solve t] runs the Lemma 10–12 procedure: repeatedly cover the last
    block with the cheaper of the two choices and remove the covered
    elements. The returned [total_weight] is guaranteed (and tested) to be
    at most [2 c H_n]. *)
val solve : t -> cover

(** [covered_elements t cover] re-derives the union of covered elements;
    equals the whole universe for a cover returned by {!solve}. *)
val covered_elements : t -> cover -> Omflp_prelude.Bitset.t

(** [weight_of_choice t choice] recomputes a single choice's weight. *)
val weight_of_choice : t -> choice -> float

(** [bound t] is the Lemma 12 guarantee [2 c H_n]. *)
val bound : t -> float

(** [random rng ~n ~c ~growth_p] draws a valid random instance:
    [B_i] extends [B_{i-1}] with each eligible element independently with
    probability [growth_p]. *)
val random : Omflp_prelude.Splitmix.t -> n:int -> c:float -> growth_p:float -> t
