open Omflp_prelude

type set = { weight : float; members : Bitset.t }

let check_coverable ~target sets =
  let union =
    Array.fold_left
      (fun acc s -> Bitset.union acc s.members)
      (Bitset.create (Bitset.universe target))
      sets
  in
  if not (Bitset.subset target union) then
    invalid_arg "Set_cover: sets do not cover the target"

let greedy_partial ~target sets =
  Array.iter
    (fun s ->
      if s.weight < 0.0 then invalid_arg "Set_cover: negative weight")
    sets;
  check_coverable ~target sets;
  let uncovered = ref target in
  let chosen = ref [] in
  let total = ref 0.0 in
  while not (Bitset.is_empty !uncovered) do
    let best = ref None in
    Array.iteri
      (fun idx s ->
        let gain = Bitset.cardinal (Bitset.inter s.members !uncovered) in
        if gain > 0 then begin
          let ratio = s.weight /. float_of_int gain in
          match !best with
          | Some (_, best_ratio) when best_ratio <= ratio -> ()
          | _ -> best := Some (idx, ratio)
        end)
      sets;
    match !best with
    | None -> assert false (* coverability checked above *)
    | Some (idx, _) ->
        chosen := idx :: !chosen;
        total := !total +. sets.(idx).weight;
        uncovered := Bitset.diff !uncovered sets.(idx).members
  done;
  (List.rev !chosen, !total)

let greedy ~universe sets = greedy_partial ~target:(Bitset.full universe) sets

let exact_partial ~target sets =
  let universe = Bitset.universe target in
  if universe > 20 then invalid_arg "Set_cover.exact: universe too large";
  check_coverable ~target sets;
  let full = Bitset.to_int target in
  let size = full + 1 in
  let dp = Array.make size infinity in
  let back = Array.make size (-1) in
  let prev = Array.make size (-1) in
  dp.(0) <- 0.0;
  (* Masks are processed in increasing order; adding a set only sets bits,
     so every state is final when visited. Only bits inside [target]
     matter. *)
  for mask = 0 to size - 1 do
    if mask land full = mask && dp.(mask) < infinity then
      Array.iteri
        (fun idx s ->
          let bits = Bitset.to_int s.members land full in
          let next = mask lor bits in
          if next <> mask && dp.(mask) +. s.weight < dp.(next) then begin
            dp.(next) <- dp.(mask) +. s.weight;
            back.(next) <- idx;
            prev.(next) <- mask
          end)
        sets
  done;
  let rec walk mask acc =
    if mask = 0 then acc
    else begin
      let idx = back.(mask) in
      assert (idx >= 0);
      walk prev.(mask) (idx :: acc)
    end
  in
  (walk full [], dp.(full))

let exact ~universe sets = exact_partial ~target:(Bitset.full universe) sets
