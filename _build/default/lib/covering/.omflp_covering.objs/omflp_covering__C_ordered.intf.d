lib/covering/c_ordered.mli: Omflp_prelude
