lib/covering/set_cover.mli: Bitset Omflp_prelude
