lib/covering/c_ordered.ml: Array Bitset List Numerics Omflp_prelude Printf Splitmix
