lib/covering/set_cover.ml: Array Bitset List Omflp_prelude
