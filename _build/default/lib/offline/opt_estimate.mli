(** Bracketing the offline optimum for competitive-ratio measurement.

    Every evaluation table divides an online cost by an estimate of OPT;
    this module makes the estimator explicit. The bracket's [upper] is
    always the cost of a concrete feasible offline solution (so
    [cost / upper] under-reports the true ratio); [lower] is a certified
    bound when available (ILP/exact/LP) and 0 otherwise. *)

type bracket = {
  lower : float;
  lower_method : string;
  upper : float;
  upper_method : string;
}

(** [certified b] is true when lower and upper coincide (exact OPT). *)
val certified : bracket -> bool

(** [bracket ?exact ?local_search instance] computes the estimate.
    [exact] (default auto) forces/forbids the exact solvers; the automatic
    rule uses the ILP for ≤ 4 commodities × ≤ 5 sites × ≤ 10 requests and
    the set-cover solver for single-site instances. [local_search]
    (default true) polishes the greedy upper bound. *)
val bracket :
  ?exact:bool -> ?local_search:bool -> Omflp_instance.Instance.t -> bracket

(** [single_request_lower instance] is the "hardest single request" lower
    bound: OPT must serve every request, so OPT ≥ max_r (cheapest way to
    serve r alone). Exact superset minimization for ≤ 12 commodities;
    valid for any cost function. *)
val single_request_lower : Omflp_instance.Instance.t -> float
