open Omflp_prelude
open Omflp_commodity
open Omflp_instance

let single_point_partition ~g ~n_requested =
  if n_requested < 0 then
    invalid_arg "Exact.single_point_partition: negative count";
  let dp = Array.make (n_requested + 1) infinity in
  dp.(0) <- 0.0;
  for u = 1 to n_requested do
    for j = 1 to u do
      let v = g j +. dp.(u - j) in
      if v < dp.(u) then dp.(u) <- v
    done
  done;
  dp.(n_requested)

let single_point_opt (inst : Instance.t) =
  if Instance.n_sites inst <> 1 then
    invalid_arg "Exact.single_point_opt: instance has more than one site";
  let requested = Instance.distinct_commodities inst in
  let n_commodities = Instance.n_commodities inst in
  if Cset.cardinal requested > 20 then
    invalid_arg "Exact.single_point_opt: too many distinct commodities";
  (* On one point every connection is free: OPT is a minimum-weight cover
     of the requested set by configurations. Candidate configurations:
     subsets of the requested set, plus the full set S (Condition 1 can
     make it cheaper than its requested-only restriction). *)
  let candidates =
    Cset.full ~n_commodities :: Cset.subsets_of requested
  in
  let candidates =
    List.filter (fun s -> not (Cset.is_empty s)) candidates
  in
  (* Compact re-indexing of requested commodities for the DP. *)
  let demanded = Array.of_list (Cset.elements requested) in
  let k = Array.length demanded in
  let compact = Hashtbl.create (2 * k) in
  Array.iteri (fun i e -> Hashtbl.replace compact e i) demanded;
  let sets =
    Array.of_list
      (List.map
         (fun sigma ->
           let members =
             Cset.fold
               (fun e acc ->
                 match Hashtbl.find_opt compact e with
                 | Some i -> Bitset.add acc i
                 | None -> acc)
               sigma (Bitset.create k)
           in
           {
             Omflp_covering.Set_cover.weight = Cost_function.eval inst.cost 0 sigma;
             members;
           })
         candidates)
  in
  snd (Omflp_covering.Set_cover.exact ~universe:k sets)

let ilp_opt ?node_limit inst =
  match Omflp_lp.Mflp_model.solve_exact ?node_limit inst with
  | Omflp_lp.Mflp_model.Exact { objective; _ } -> Some objective
  | Omflp_lp.Mflp_model.Truncated _ -> None
