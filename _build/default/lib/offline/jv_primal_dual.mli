(** Offline primal–dual in the Jain–Vazirani tradition, adapted to the
    multi-commodity small/large structure of the paper.

    All (request, commodity) pairs raise their duals simultaneously from
    zero; a pair freezes when an open facility offering its commodity is
    within its dual. A small facility [(m, {e})] opens when the positive
    bids [Σ (α_re − d(r,m))₊] reach [f^{{e}}_m]; a large facility when the
    pooled per-request bids reach [f^S_m]. Opened facilities are then
    pruned and the assignment recomputed optimally, exactly as for the
    other offline heuristics.

    This differs from {!Pd_offline} (which replays the {e online}
    algorithm): here there is no arrival order at all — the dual growth is
    simultaneous, as in the offline approximation algorithms the paper
    builds on ([9], [16]). *)

type solution = {
  facilities : (int * Omflp_commodity.Cset.t) list;
  cost : float;  (** construction + optimal assignment after pruning *)
  events : int;  (** facility openings + pair freezes processed *)
}

(** [solve instance]. Deterministic. Intended for small/medium instances
    (every event does O(n·|M|) work). *)
val solve : Omflp_instance.Instance.t -> solution
