(** Optimal request→facility assignment for a {e fixed} facility set.

    Because connection cost is paid once per distinct facility, assigning
    one request is a weighted set-cover over its demand: facility
    [(m, σ)] covers [σ ∩ s_r] at weight [d(m, r)]. Exact for demands of at
    most 20 commodities (bitmask DP after re-indexing), greedy beyond. *)

type open_facility = { site : int; offered : Omflp_commodity.Cset.t }

(** [assign_request ~metric ~facilities ~site ~demand] returns the chosen
    facility indices (into [facilities]) and the connection cost. Raises
    [Invalid_argument] if the facilities cannot cover the demand. *)
val assign_request :
  metric:Omflp_metric.Finite_metric.t ->
  facilities:open_facility array ->
  site:int ->
  demand:Omflp_commodity.Cset.t ->
  int list * float

(** [total_cost instance facilities] is the full offline objective of
    opening exactly [facilities]: construction plus optimal assignment of
    every request. *)
val total_cost :
  Omflp_instance.Instance.t -> (int * Omflp_commodity.Cset.t) list -> float

(** [assignment_cost instance facilities] is the assignment part only. *)
val assignment_cost :
  Omflp_instance.Instance.t -> (int * Omflp_commodity.Cset.t) list -> float
