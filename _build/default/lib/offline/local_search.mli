(** Local-search improvement of an offline solution.

    Moves: drop a facility, add a candidate facility (singletons, full
    configuration, or a request's exact demand, at any site), and swap a
    facility's site. Assignment is recomputed optimally after every
    tentative move. First-improvement descent with a move budget. *)

type result = {
  facilities : (int * Omflp_commodity.Cset.t) list;
  cost : float;
  moves : int;  (** accepted improving moves *)
}

(** [improve ?max_moves instance start] descends from [start] (e.g. a
    {!Greedy_offline} solution). *)
val improve :
  ?max_moves:int ->
  Omflp_instance.Instance.t ->
  (int * Omflp_commodity.Cset.t) list ->
  result
