(** Ravi–Sinha-style greedy offline algorithm (SODA 2004): repeatedly open
    the facility "star" with the best cost-per-covered-pair density.

    A star is a site [m], a configuration [σ], and a group of requests;
    its cost is [f^σ_m] plus one connection per request in the group, and
    it covers every still-uncovered (request, commodity) pair with the
    commodity in [σ]. Candidate configurations at a site are the unions of
    uncovered demands of the [k] nearest requests, for every prefix [k] —
    plus the full set. After the greedy cover, the assignment is recomputed
    optimally ({!Assignment}) and redundant facilities are dropped. *)

type solution = {
  facilities : (int * Omflp_commodity.Cset.t) list;
  cost : float;  (** construction + optimal assignment *)
}

val solve : Omflp_instance.Instance.t -> solution
