open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance

type solution = {
  facilities : (int * Cset.t) list;
  cost : float;
  events : int;
}

(* All active duals are equal to the global time τ (they start at zero and
   grow simultaneously), which keeps every tightness time solvable in
   closed form:

   - a small facility (m, {e}) has
     lhs(τ) = Σ_frozen (α_f − d)₊ + Σ_{active, d < τ} (τ − d):
     piecewise linear with breakpoints at the active pairs' distances;
   - a large facility at m has per-request contribution
     (frozen_sum_r + k_r·τ − d(r,m))₊ with k_r = #active commodities of r:
     a ramp of slope k_r starting at (d − frozen_sum_r)/k_r. *)

(* Earliest τ ≥ now with const + Σ_i slope_i · (τ − start_i)₊ ≥ target.
   Returns infinity when unreachable. *)
let solve_piecewise ~now ~const ~ramps ~target =
  (* Fold ramps already running at [now] into the constant (their accrued
     part) and restart them at [now]. *)
  let const, ramps =
    List.fold_left
      (fun (c, rs) (start, slope) ->
        if start < now then (c +. (slope *. (now -. start)), (now, slope) :: rs)
        else (c, (start, slope) :: rs))
      (const, []) ramps
  in
  if const >= target -. 1e-12 then now
  else begin
    let sorted =
      List.sort (fun (a, _) (b, _) -> Float.compare a b) ramps
    in
    (* Between breakpoints the lhs is const + acc_slope·τ − acc_weighted
       where acc_weighted = Σ slope_i · start_i over started ramps. *)
    let rec walk acc_slope acc_weighted remaining prev =
      let candidate =
        if acc_slope > 0.0 then
          Some ((target -. const +. acc_weighted) /. acc_slope)
        else None
      in
      match remaining with
      | [] -> (
          match candidate with
          | Some tau when tau >= prev -. 1e-12 -> Float.max tau now
          | _ -> infinity)
      | (start, slope) :: rest -> (
          match candidate with
          | Some tau when tau >= prev -. 1e-12 && tau <= start +. 1e-12 ->
              Float.max tau now
          | _ ->
              walk (acc_slope +. slope)
                (acc_weighted +. (slope *. start))
                rest start)
    in
    walk 0.0 0.0 sorted now
  end

type event = Freeze of int * int | Open_small of int * int | Open_large of int

let solve (inst : Instance.t) =
  let n_req = Instance.n_requests inst in
  let n_sites = Instance.n_sites inst in
  let s = Instance.n_commodities inst in
  let dist r m = Finite_metric.dist inst.metric inst.requests.(r).Request.site m in
  (* freeze.(r).(e) = Some freeze-time once the pair is frozen. *)
  let freeze = Array.make_matrix n_req s None in
  let demands = Array.map (fun (r : Request.t) -> r.demand) inst.requests in
  let opened_small = Array.make_matrix s n_sites false in
  let opened_large = Array.make n_sites false in
  let facilities = ref [] in
  let active_pairs = ref (Instance.total_demand_pairs inst) in
  let tau = ref 0.0 in
  let events = ref 0 in
  let offering_sites e =
    (* Sites of open facilities offering e. *)
    List.filter_map
      (fun (site, offered) -> if Cset.mem offered e then Some site else None)
      !facilities
  in
  let active_count r =
    Cset.fold
      (fun e acc -> if freeze.(r).(e) = None then acc + 1 else acc)
      demands.(r) 0
  in
  while !active_pairs > 0 do
    incr events;
    if !events > (2 * n_req * s) + (s * n_sites) + n_sites + 16 then
      failwith "Jv_primal_dual.solve: event budget exceeded (bug)";
    (* Earliest event across freezes and openings. *)
    let best_t = ref infinity and best_ev = ref None in
    let consider t ev =
      if t < !best_t -. 1e-12 then begin
        best_t := t;
        best_ev := Some ev
      end
    in
    for r = 0 to n_req - 1 do
      Cset.iter
        (fun e ->
          if freeze.(r).(e) = None then begin
            let d_open =
              List.fold_left
                (fun acc site -> Float.min acc (dist r site))
                infinity (offering_sites e)
            in
            if d_open < infinity then consider (Float.max d_open !tau) (Freeze (r, e))
          end)
        demands.(r)
    done;
    for e = 0 to s - 1 do
      for m = 0 to n_sites - 1 do
        if not opened_small.(e).(m) then begin
          let const = ref 0.0 and ramps = ref [] in
          for r = 0 to n_req - 1 do
            if Cset.mem demands.(r) e then
              match freeze.(r).(e) with
              | Some f -> const := !const +. Numerics.pos (f -. dist r m)
              | None -> ramps := (dist r m, 1.0) :: !ramps
          done;
          let t =
            solve_piecewise ~now:!tau ~const:!const ~ramps:!ramps
              ~target:(Cost_function.singleton_cost inst.cost m e)
          in
          if t < infinity then consider t (Open_small (e, m))
        end
      done
    done;
    for m = 0 to n_sites - 1 do
      if not opened_large.(m) then begin
        let const = ref 0.0 and ramps = ref [] in
        for r = 0 to n_req - 1 do
          let k = active_count r in
          let fsum =
            Cset.fold
              (fun e acc ->
                match freeze.(r).(e) with Some f -> acc +. f | None -> acc)
              demands.(r) 0.0
          in
          if k = 0 then const := !const +. Numerics.pos (fsum -. dist r m)
          else begin
            (* contribution = (fsum + k·τ − d)₊ : ramp of slope k starting
               at τ = (d − fsum)/k. *)
            let start = (dist r m -. fsum) /. float_of_int k in
            ramps := (start, float_of_int k) :: !ramps
          end
        done;
        let t =
          solve_piecewise ~now:!tau ~const:!const ~ramps:!ramps
            ~target:(Cost_function.full_cost inst.cost m)
        in
        if t < infinity then consider t (Open_large m)
      end
    done;
    match !best_ev with
    | None -> failwith "Jv_primal_dual.solve: no event (bug)"
    | Some ev -> begin
        tau := Float.max !tau !best_t;
        match ev with
        | Freeze (r, e) ->
            freeze.(r).(e) <- Some !tau;
            decr active_pairs
        | Open_small (e, m) ->
            opened_small.(e).(m) <- true;
            facilities := (m, Cset.singleton ~n_commodities:s e) :: !facilities;
            for r = 0 to n_req - 1 do
              if
                Cset.mem demands.(r) e
                && freeze.(r).(e) = None
                && dist r m <= !tau +. 1e-12
              then begin
                freeze.(r).(e) <- Some !tau;
                decr active_pairs
              end
            done
        | Open_large m ->
            opened_large.(m) <- true;
            facilities := (m, Cset.full ~n_commodities:s) :: !facilities;
            for r = 0 to n_req - 1 do
              if dist r m <= !tau +. 1e-12 then
                Cset.iter
                  (fun e ->
                    if freeze.(r).(e) = None then begin
                      freeze.(r).(e) <- Some !tau;
                      decr active_pairs
                    end)
                  demands.(r)
            done
      end
  done;
  let deduped = List.sort_uniq compare !facilities in
  let pruned, cost = Prune.drop_pass inst deduped in
  { facilities = pruned; cost; events = !events }
