(** Offline heuristic built from the paper's own machinery: run PD-OMFLP
    over the (shuffled) request sequence with full hindsight disabled,
    keep its facility set, reassign optimally, and prune. Several random
    restarts, best solution kept.

    In the Jain–Vazirani tradition the primal–dual process itself is a
    good facility-set generator; pruning plus optimal reassignment removes
    the online overhead. Used by {!Opt_estimate} as a second upper-bound
    candidate next to the Ravi–Sinha-style greedy. *)

type solution = {
  facilities : (int * Omflp_commodity.Cset.t) list;
  cost : float;
  restarts_used : int;
}

(** [solve ?restarts ?seed instance]; [restarts] defaults to 3 (the first
    pass uses the original request order, the rest shuffle). *)
val solve : ?restarts:int -> ?seed:int -> Omflp_instance.Instance.t -> solution
