(** Exact offline optima for the instance shapes where they are
    tractable. *)

(** [single_point_partition ~g ~n_requested] is the optimum cost of
    covering [n_requested] distinct commodities on one point when the
    construction cost depends only on configuration size: the best way to
    split [n_requested] into facility sizes,
    [dp u = min_j g j + dp (u - j)]. Exact for any subadditive or not
    size-based [g]. *)
val single_point_partition : g:(int -> float) -> n_requested:int -> float

(** [single_point_opt instance] is OPT for a one-site instance with at
    most 20 commodities: an exact weighted set cover of the union of
    demands over all configurations (connection cost is zero on a single
    point). Raises [Invalid_argument] on multi-site instances. *)
val single_point_opt : Omflp_instance.Instance.t -> float

(** [ilp_opt ?node_limit instance] is OPT via the branch-and-bound ILP —
    small instances only (≤ 6 commodities by default in
    {!Omflp_lp.Mflp_model}). Returns [None] if the node limit truncated
    the search without proving optimality. *)
val ilp_opt : ?node_limit:int -> Omflp_instance.Instance.t -> float option
