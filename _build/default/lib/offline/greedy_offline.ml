open Omflp_commodity
open Omflp_metric
open Omflp_instance

type solution = { facilities : (int * Cset.t) list; cost : float }

(* A star candidate: open sigma at site m and connect the given requests. *)
type star = {
  m : int;
  sigma : Cset.t;
  group : int list;  (** request indices *)
  density : float;
  pairs : int;
}

let best_star (inst : Instance.t) ~uncovered =
  let n_sites = Instance.n_sites inst in
  let n_req = Instance.n_requests inst in
  let n_commodities = Instance.n_commodities inst in
  let best = ref None in
  let consider star =
    match !best with
    | Some b when b.density <= star.density -> ()
    | _ -> best := Some star
  in
  for m = 0 to n_sites - 1 do
    (* Requests ordered by distance to m. *)
    let order =
      List.sort
        (fun a b ->
          Float.compare
            (Finite_metric.dist inst.metric m inst.requests.(a).Request.site)
            (Finite_metric.dist inst.metric m inst.requests.(b).Request.site))
        (List.filter
           (fun r -> not (Cset.is_empty uncovered.(r)))
           (List.init n_req Fun.id))
    in
    (* Prefix stars: sigma = union of uncovered demands of the prefix. *)
    let sigma = ref (Cset.empty ~n_commodities) in
    let group = ref [] in
    let conn = ref 0.0 in
    List.iter
      (fun r ->
        sigma := Cset.union !sigma uncovered.(r);
        group := r :: !group;
        conn :=
          !conn
          +. Finite_metric.dist inst.metric m inst.requests.(r).Request.site;
        let pairs =
          List.fold_left
            (fun acc r' -> acc + Cset.cardinal (Cset.inter uncovered.(r') !sigma))
            0 !group
        in
        if pairs > 0 then begin
          let f = Cost_function.eval inst.cost m !sigma in
          consider
            {
              m;
              sigma = !sigma;
              group = !group;
              density = (f +. !conn) /. float_of_int pairs;
              pairs;
            };
          (* Same star with the full configuration: Condition 1 can make
             S cheaper per pair when most commodities are uncovered. *)
          let full = Cset.full ~n_commodities in
          let pairs_full =
            List.fold_left
              (fun acc r' -> acc + Cset.cardinal uncovered.(r'))
              0 !group
          in
          consider
            {
              m;
              sigma = full;
              group = !group;
              density =
                (Cost_function.eval inst.cost m full +. !conn)
                /. float_of_int pairs_full;
              pairs = pairs_full;
            }
        end)
      order
  done;
  !best

let solve (inst : Instance.t) =
  let n_req = Instance.n_requests inst in
  let uncovered =
    Array.map (fun (r : Request.t) -> r.demand) inst.requests
  in
  let facilities = ref [] in
  let remaining = ref (Instance.total_demand_pairs inst) in
  while !remaining > 0 do
    match best_star inst ~uncovered with
    | None -> failwith "Greedy_offline.solve: no star found (impossible)"
    | Some star ->
        facilities := (star.m, star.sigma) :: !facilities;
        List.iter
          (fun r ->
            let covered = Cset.inter uncovered.(r) star.sigma in
            remaining := !remaining - Cset.cardinal covered;
            uncovered.(r) <- Cset.diff uncovered.(r) star.sigma)
          star.group
  done;
  (* Drop facilities that no longer pay for themselves under optimal
     assignment. Each candidate drop re-solves the full assignment, so the
     phase is skipped on large instances where it would dominate. *)
  let cost_of facs = Assignment.total_cost inst facs in
  let current = ref !facilities in
  let current_cost = ref (cost_of !current) in
  let budget = List.length !facilities * n_req in
  let improved = ref (budget <= 20_000) in
  while !improved do
    improved := false;
    List.iter
      (fun fac ->
        let without = List.filter (fun f -> f != fac) !current in
        if without <> [] then begin
          match cost_of without with
          | c when c < !current_cost -. 1e-9 ->
              current := without;
              current_cost := c;
              improved := true
          | _ -> ()
          | exception Invalid_argument _ -> ()
        end)
      !current
  done;
  { facilities = !current; cost = !current_cost }
