(** Facility-set pruning: repeatedly drop any facility whose removal
    lowers the total cost under optimal reassignment. Shared by the
    offline solvers. *)

(** [drop_pass ?max_evals instance facilities] returns the pruned facility
    list and its cost. [max_evals] bounds the number of candidate
    evaluations (each one re-solves the assignment); default 2000. *)
val drop_pass :
  ?max_evals:int ->
  Omflp_instance.Instance.t ->
  (int * Omflp_commodity.Cset.t) list ->
  (int * Omflp_commodity.Cset.t) list * float
