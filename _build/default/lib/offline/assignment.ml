open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance

type open_facility = { site : int; offered : Cset.t }

let assign_request ~metric ~facilities ~site ~demand =
  (* Re-index the demanded commodities to a compact universe so the
     set-cover DP stays small regardless of |S|. *)
  let demanded = Array.of_list (Cset.elements demand) in
  let k = Array.length demanded in
  let compact_of_commodity = Hashtbl.create (2 * k) in
  Array.iteri (fun i e -> Hashtbl.replace compact_of_commodity e i) demanded;
  let sets =
    Array.map
      (fun f ->
        let members =
          Cset.fold
            (fun e acc ->
              match Hashtbl.find_opt compact_of_commodity e with
              | Some i -> Bitset.add acc i
              | None -> acc)
            f.offered (Bitset.create k)
        in
        {
          Omflp_covering.Set_cover.weight = Finite_metric.dist metric site f.site;
          members;
        })
      facilities
  in
  let solver =
    if k <= 20 then Omflp_covering.Set_cover.exact
    else Omflp_covering.Set_cover.greedy
  in
  try solver ~universe:k sets
  with Invalid_argument _ ->
    invalid_arg "Assignment.assign_request: facilities do not cover the demand"

let assignment_cost (inst : Instance.t) facilities =
  let facs =
    Array.of_list
      (List.map (fun (site, offered) -> { site; offered }) facilities)
  in
  Array.fold_left
    (fun acc (r : Request.t) ->
      let _, c =
        assign_request ~metric:inst.metric ~facilities:facs ~site:r.site
          ~demand:r.demand
      in
      acc +. c)
    0.0 inst.requests

let total_cost (inst : Instance.t) facilities =
  let construction =
    List.fold_left
      (fun acc (site, offered) ->
        acc +. Cost_function.eval inst.cost site offered)
      0.0 facilities
  in
  construction +. assignment_cost inst facilities
