lib/offline/local_search.ml: Array Assignment Cset Instance List Omflp_commodity Omflp_instance Request
