lib/offline/pd_offline.ml: Array Instance List Omflp_commodity Omflp_core Omflp_instance Omflp_prelude Prune Sampler Splitmix
