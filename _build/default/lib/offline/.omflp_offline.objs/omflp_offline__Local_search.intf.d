lib/offline/local_search.mli: Omflp_commodity Omflp_instance
