lib/offline/greedy_offline.ml: Array Assignment Cost_function Cset Finite_metric Float Fun Instance List Omflp_commodity Omflp_instance Omflp_metric Request
