lib/offline/assignment.mli: Omflp_commodity Omflp_instance Omflp_metric
