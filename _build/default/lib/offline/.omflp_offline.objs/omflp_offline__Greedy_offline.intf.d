lib/offline/greedy_offline.mli: Omflp_commodity Omflp_instance
