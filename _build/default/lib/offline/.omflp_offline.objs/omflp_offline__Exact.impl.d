lib/offline/exact.ml: Array Bitset Cost_function Cset Hashtbl Instance List Omflp_commodity Omflp_covering Omflp_instance Omflp_lp Omflp_prelude
