lib/offline/prune.mli: Omflp_commodity Omflp_instance
