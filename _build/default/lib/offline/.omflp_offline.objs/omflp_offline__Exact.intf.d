lib/offline/exact.mli: Omflp_instance
