lib/offline/prune.ml: Assignment List
