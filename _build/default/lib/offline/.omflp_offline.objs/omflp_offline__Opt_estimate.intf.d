lib/offline/opt_estimate.mli: Omflp_instance
