lib/offline/pd_offline.mli: Omflp_commodity Omflp_instance
