lib/offline/assignment.ml: Array Bitset Cost_function Cset Finite_metric Hashtbl Instance List Omflp_commodity Omflp_covering Omflp_instance Omflp_metric Omflp_prelude Request
