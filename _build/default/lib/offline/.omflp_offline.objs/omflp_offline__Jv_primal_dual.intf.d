lib/offline/jv_primal_dual.mli: Omflp_commodity Omflp_instance
