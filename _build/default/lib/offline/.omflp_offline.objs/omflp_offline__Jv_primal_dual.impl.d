lib/offline/jv_primal_dual.ml: Array Cost_function Cset Finite_metric Float Instance List Numerics Omflp_commodity Omflp_instance Omflp_metric Omflp_prelude Prune Request
