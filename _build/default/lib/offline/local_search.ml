open Omflp_commodity
open Omflp_instance

type result = {
  facilities : (int * Cset.t) list;
  cost : float;
  moves : int;
}

let candidate_configs (inst : Instance.t) =
  let n_commodities = Instance.n_commodities inst in
  let singles =
    List.init n_commodities (fun e -> Cset.singleton ~n_commodities e)
  in
  let demands =
    Array.to_list (Array.map (fun (r : Request.t) -> r.demand) inst.requests)
  in
  List.sort_uniq Cset.compare
    ((Cset.full ~n_commodities :: singles) @ demands)

let improve ?(max_moves = 200) (inst : Instance.t) start =
  let n_sites = Instance.n_sites inst in
  let configs = candidate_configs inst in
  let cost_of facs =
    try Some (Assignment.total_cost inst facs) with Invalid_argument _ -> None
  in
  let current = ref start in
  let current_cost =
    ref
      (match cost_of start with
      | Some c -> c
      | None -> invalid_arg "Local_search.improve: infeasible start")
  in
  let moves = ref 0 in
  let try_move facs =
    match cost_of facs with
    | Some c when c < !current_cost -. 1e-9 ->
        current := facs;
        current_cost := c;
        incr moves;
        true
    | _ -> false
  in
  let improved = ref true in
  while !improved && !moves < max_moves do
    improved := false;
    (* Drop moves. *)
    let rec drop_scan prefix = function
      | [] -> ()
      | fac :: rest ->
          if try_move (List.rev_append prefix rest) then improved := true
          else drop_scan (fac :: prefix) rest
    in
    drop_scan [] !current;
    (* Add moves. *)
    if not !improved then begin
      try
        for m = 0 to n_sites - 1 do
          List.iter
            (fun sigma ->
              if try_move ((m, sigma) :: !current) then begin
                improved := true;
                raise Exit
              end)
            configs
        done
      with Exit -> ()
    end;
    (* Site-swap moves. *)
    if not !improved then begin
      try
        let arr = Array.of_list !current in
        Array.iteri
          (fun i (site, sigma) ->
            for m = 0 to n_sites - 1 do
              if m <> site then begin
                let swapped =
                  Array.to_list (Array.mapi (fun j f -> if i = j then (m, sigma) else f) arr)
                in
                if try_move swapped then begin
                  improved := true;
                  raise Exit
                end
              end
            done)
          arr
      with Exit -> ()
    end
  done;
  { facilities = !current; cost = !current_cost; moves = !moves }
