let drop_pass ?(max_evals = 2000) inst facilities =
  let cost_of facs =
    try Some (Assignment.total_cost inst facs) with Invalid_argument _ -> None
  in
  let current = ref facilities in
  let current_cost =
    match cost_of facilities with
    | Some c -> c
    | None -> invalid_arg "Prune.drop_pass: infeasible facility set"
  in
  let current_cost = ref current_cost in
  let evals = ref 0 in
  let improved = ref true in
  (* Best-improvement passes: evaluate every single-facility drop and take
     the cheapest, until no drop helps or the evaluation budget runs out. *)
  while !improved && !evals < max_evals do
    improved := false;
    let best = ref None in
    let rec scan prefix = function
      | [] -> ()
      | fac :: rest when !evals < max_evals -> begin
          incr evals;
          let without = List.rev_append prefix rest in
          (match cost_of without with
          | Some c when c < !current_cost -. 1e-9 -> begin
              match !best with
              | Some (_, bc) when bc <= c -> ()
              | _ -> best := Some (without, c)
            end
          | _ -> ());
          scan (fac :: prefix) rest
        end
      | _ -> ()
    in
    scan [] !current;
    match !best with
    | Some (without, c) ->
        current := without;
        current_cost := c;
        improved := true
    | None -> ()
  done;
  (!current, !current_cost)
