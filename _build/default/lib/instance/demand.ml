open Omflp_prelude
open Omflp_commodity

type model =
  | Singletons of { zipf_s : float }
  | Bernoulli of { p : float }
  | Zipf_bundle of { zipf_s : float; max_size : int }
  | Profile of { profiles : Cset.t array; keep_p : float }

let sample rng ~n_commodities model =
  match model with
  | Singletons { zipf_s } ->
      Cset.singleton ~n_commodities (Sampler.zipf rng ~n:n_commodities ~s:zipf_s)
  | Bernoulli { p } ->
      if p <= 0.0 || p > 1.0 then
        invalid_arg "Demand.sample: Bernoulli p must lie in (0, 1]";
      let s = ref (Cset.empty ~n_commodities) in
      while Cset.is_empty !s do
        s := Sampler.random_subset rng ~universe:n_commodities ~p
      done;
      !s
  | Zipf_bundle { zipf_s; max_size } ->
      if max_size < 1 || max_size > n_commodities then
        invalid_arg "Demand.sample: bundle size out of range";
      let size = 1 + Splitmix.int rng max_size in
      let table = Sampler.zipf_table ~n:n_commodities ~s:zipf_s in
      let s = ref (Cset.empty ~n_commodities) in
      (* Draw until [size] distinct commodities are collected; bounded
         retries keep the loop total even for adversarial tables. *)
      let guard = ref 0 in
      while Cset.cardinal !s < size && !guard < 1000 * size do
        incr guard;
        s := Cset.add !s (Sampler.zipf_draw rng table)
      done;
      if Cset.is_empty !s then
        Cset.singleton ~n_commodities (Sampler.zipf_draw rng table)
      else !s
  | Profile { profiles; keep_p } ->
      if Array.length profiles = 0 then
        invalid_arg "Demand.sample: empty profile list";
      if keep_p <= 0.0 || keep_p > 1.0 then
        invalid_arg "Demand.sample: keep_p must lie in (0, 1]";
      Array.iter
        (fun p ->
          if Cset.n_commodities p <> n_commodities then
            invalid_arg "Demand.sample: profile from wrong universe";
          if Cset.is_empty p then
            invalid_arg "Demand.sample: empty profile")
        profiles;
      let profile = profiles.(Splitmix.int rng (Array.length profiles)) in
      let s = ref (Cset.empty ~n_commodities) in
      while Cset.is_empty !s do
        s :=
          Cset.fold
            (fun e acc ->
              if Splitmix.bernoulli rng keep_p then Cset.add acc e else acc)
            profile
            (Cset.empty ~n_commodities)
      done;
      !s

let describe = function
  | Singletons { zipf_s } -> Printf.sprintf "singletons(zipf %.2g)" zipf_s
  | Bernoulli { p } -> Printf.sprintf "bernoulli(p=%.2g)" p
  | Zipf_bundle { zipf_s; max_size } ->
      Printf.sprintf "zipf-bundle(s=%.2g, <=%d)" zipf_s max_size
  | Profile { profiles; keep_p } ->
      Printf.sprintf "profiles(%d, keep=%.2g)" (Array.length profiles) keep_p
