open Omflp_commodity

type t = {
  n_requests : int;
  n_sites : int;
  n_commodities : int;
  mean_demand_size : float;
  max_demand_size : int;
  distinct_requested : int;
  popularity : int array;
  mean_pairwise_overlap : float;
  metric_diameter : float;
  mean_request_spread : float;
}

let compute (inst : Instance.t) =
  let n = Instance.n_requests inst in
  let k = Instance.n_commodities inst in
  let popularity = Array.make k 0 in
  Array.iter
    (fun (r : Request.t) ->
      Cset.iter (fun e -> popularity.(e) <- popularity.(e) + 1) r.demand)
    inst.requests;
  let sizes =
    Array.map (fun (r : Request.t) -> Cset.cardinal r.demand) inst.requests
  in
  let overlap_sum = ref 0.0 in
  let spread_sum = ref 0.0 in
  let pairs = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      incr pairs;
      let a = inst.requests.(i).Request.demand
      and b = inst.requests.(j).Request.demand in
      let inter = Cset.cardinal (Cset.inter a b) in
      let union = Cset.cardinal (Cset.union a b) in
      overlap_sum := !overlap_sum +. (float_of_int inter /. float_of_int union);
      spread_sum :=
        !spread_sum
        +. Omflp_metric.Finite_metric.dist inst.metric
             inst.requests.(i).Request.site inst.requests.(j).Request.site
    done
  done;
  let pair_count = float_of_int (max 1 !pairs) in
  {
    n_requests = n;
    n_sites = Instance.n_sites inst;
    n_commodities = k;
    mean_demand_size =
      (if n = 0 then 0.0
       else
         float_of_int (Array.fold_left ( + ) 0 sizes) /. float_of_int n);
    max_demand_size = Array.fold_left max 0 sizes;
    distinct_requested = Cset.cardinal (Instance.distinct_commodities inst);
    popularity;
    mean_pairwise_overlap = (if !pairs = 0 then 0.0 else !overlap_sum /. pair_count);
    metric_diameter = Omflp_metric.Finite_metric.diameter inst.metric;
    mean_request_spread = (if !pairs = 0 then 0.0 else !spread_sum /. pair_count);
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%d requests over %d sites, |S| = %d (%d requested)@,\
     demand size: mean %.2f, max %d; pairwise Jaccard overlap %.3f@,\
     metric diameter %.3g; mean request spread %.3g@]"
    t.n_requests t.n_sites t.n_commodities t.distinct_requested
    t.mean_demand_size t.max_demand_size t.mean_pairwise_overlap
    t.metric_diameter t.mean_request_spread
