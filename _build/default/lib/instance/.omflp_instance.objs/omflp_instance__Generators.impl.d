lib/instance/generators.ml: Array Cost_function Cset Demand Finite_metric Instance Metric_gen Numerics Omflp_commodity Omflp_metric Omflp_prelude Printf Request Sampler Splitmix
