lib/instance/instance_stats.mli: Format Instance
