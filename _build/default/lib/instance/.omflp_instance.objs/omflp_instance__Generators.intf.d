lib/instance/generators.mli: Demand Instance Omflp_commodity Omflp_prelude Splitmix
