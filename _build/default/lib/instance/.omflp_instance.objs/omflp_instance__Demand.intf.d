lib/instance/demand.mli: Omflp_commodity Omflp_prelude Splitmix
