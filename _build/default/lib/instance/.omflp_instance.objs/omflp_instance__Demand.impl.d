lib/instance/demand.ml: Array Cset Omflp_commodity Omflp_prelude Printf Sampler Splitmix
