lib/instance/request.mli: Format Omflp_commodity
