lib/instance/instance.mli: Format Omflp_commodity Omflp_metric Request
