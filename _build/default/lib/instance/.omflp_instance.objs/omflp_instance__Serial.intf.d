lib/instance/serial.mli: Instance
