lib/instance/instance.ml: Array Cost_function Cset Format List Omflp_commodity Omflp_metric Printf Request
