lib/instance/instance_stats.ml: Array Cset Format Instance Omflp_commodity Omflp_metric Request
