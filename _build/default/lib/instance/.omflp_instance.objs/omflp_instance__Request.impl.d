lib/instance/request.ml: Format Omflp_commodity
