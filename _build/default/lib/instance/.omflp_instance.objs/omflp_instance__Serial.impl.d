lib/instance/serial.ml: Array Cost_function Cset Filename Fun Instance List Omflp_commodity Omflp_metric Printf Request String Sys
