(** Online requests.

    A request appears at a point of the metric space and demands a
    non-empty set of commodities [s_r ⊆ S]. *)

type t = {
  site : int;  (** point of the metric space the request appears at *)
  demand : Omflp_commodity.Cset.t;  (** [s_r], non-empty *)
}

(** [make ~site ~demand] validates non-emptiness. *)
val make : site:int -> demand:Omflp_commodity.Cset.t -> t

val pp : Format.formatter -> t -> unit
