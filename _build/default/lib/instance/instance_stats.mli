(** Descriptive statistics of an instance's demand structure.

    Used by examples and reports to explain {e why} an algorithm behaves
    as it does on a workload: heavy commodity skew favours prediction,
    high pairwise overlap favours large facilities, etc. *)

type t = {
  n_requests : int;
  n_sites : int;
  n_commodities : int;
  mean_demand_size : float;
  max_demand_size : int;
  distinct_requested : int;  (** |∪ s_r| *)
  popularity : int array;  (** per commodity, number of requests asking it *)
  mean_pairwise_overlap : float;
      (** average |s_r ∩ s_q| / |s_r ∪ s_q| over request pairs (Jaccard) *)
  metric_diameter : float;
  mean_request_spread : float;
      (** average pairwise distance between request positions *)
}

val compute : Instance.t -> t

val pp : Format.formatter -> t -> unit
