type t = { site : int; demand : Omflp_commodity.Cset.t }

let make ~site ~demand =
  if Omflp_commodity.Cset.is_empty demand then
    invalid_arg "Request.make: empty demand";
  if site < 0 then invalid_arg "Request.make: negative site";
  { site; demand }

let pp ppf t =
  Format.fprintf ppf "request@%d %a" t.site Omflp_commodity.Cset.pp t.demand
