open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance
open Omflp_offline

let check_float tol = Alcotest.(check (float tol))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Assignment ---------- *)

let test_assignment_simple () =
  let metric = Finite_metric.line [| 0.0; 1.0; 10.0 |] in
  let facilities =
    [|
      { Assignment.site = 1; offered = Cset.of_list ~n_commodities:3 [ 0 ] };
      { Assignment.site = 2; offered = Cset.of_list ~n_commodities:3 [ 1; 2 ] };
    |]
  in
  let chosen, cost =
    Assignment.assign_request ~metric ~facilities ~site:0
      ~demand:(Cset.of_list ~n_commodities:3 [ 0; 1 ])
  in
  check_float 1e-9 "cost" 11.0 cost;
  check_int "two facilities" 2 (List.length chosen)

let test_assignment_prefers_shared () =
  (* One facility covering both commodities nearby vs two further apart. *)
  let metric = Finite_metric.line [| 0.0; 3.0; 1.0; 1.0 |] in
  let facilities =
    [|
      { Assignment.site = 1; offered = Cset.of_list ~n_commodities:2 [ 0; 1 ] };
      { Assignment.site = 2; offered = Cset.of_list ~n_commodities:2 [ 0 ] };
      { Assignment.site = 3; offered = Cset.of_list ~n_commodities:2 [ 1 ] };
    |]
  in
  let chosen, cost =
    Assignment.assign_request ~metric ~facilities ~site:0
      ~demand:(Cset.full ~n_commodities:2)
  in
  (* Shared facility costs 3; the pair costs 1 + 1 = 2: pair wins. *)
  check_float 1e-9 "pair wins" 2.0 cost;
  check_int "two" 2 (List.length chosen);
  (* Move the shared one closer and it wins. *)
  let metric2 = Finite_metric.line [| 0.0; 1.5; 1.0; 1.0 |] in
  let _, cost2 =
    Assignment.assign_request ~metric:metric2 ~facilities ~site:0
      ~demand:(Cset.full ~n_commodities:2)
  in
  check_float 1e-9 "shared wins" 1.5 cost2

let test_assignment_uncoverable () =
  let metric = Finite_metric.single_point () in
  let facilities =
    [| { Assignment.site = 0; offered = Cset.of_list ~n_commodities:2 [ 0 ] } |]
  in
  Alcotest.check_raises "uncoverable"
    (Invalid_argument "Assignment.assign_request: facilities do not cover the demand")
    (fun () ->
      ignore
        (Assignment.assign_request ~metric ~facilities ~site:0
           ~demand:(Cset.full ~n_commodities:2)))

(* Brute force: enumerate all facility subsets for one request. *)
let brute_assign ~metric ~facilities ~site ~demand =
  let n = Array.length facilities in
  let best = ref infinity in
  for mask = 1 to (1 lsl n) - 1 do
    let covered = ref (Cset.empty ~n_commodities:(Cset.n_commodities demand)) in
    let cost = ref 0.0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        covered := Cset.union !covered facilities.(i).Assignment.offered;
        cost := !cost +. Finite_metric.dist metric site facilities.(i).Assignment.site
      end
    done;
    if Cset.subset demand !covered && !cost < !best then best := !cost
  done;
  !best

let prop_assignment_matches_brute_force =
  QCheck.Test.make ~name:"assignment DP = brute force" ~count:150
    QCheck.small_int (fun seed ->
      let rng = Splitmix.of_int seed in
      let n_commodities = 1 + Splitmix.int rng 5 in
      let n_sites = 2 + Splitmix.int rng 4 in
      let metric =
        Finite_metric.line
          (Array.init n_sites (fun _ -> Sampler.uniform_float rng ~lo:0.0 ~hi:10.0))
      in
      let facilities =
        Array.init
          (1 + Splitmix.int rng 5)
          (fun _ ->
            {
              Assignment.site = Splitmix.int rng n_sites;
              offered =
                Demand.sample rng ~n_commodities (Demand.Bernoulli { p = 0.5 });
            })
      in
      let demand = Demand.sample rng ~n_commodities (Demand.Bernoulli { p = 0.5 }) in
      let coverable =
        Cset.subset demand
          (Array.fold_left
             (fun acc f -> Cset.union acc f.Assignment.offered)
             (Cset.empty ~n_commodities) facilities)
      in
      if not coverable then true
      else begin
        let _, dp = Assignment.assign_request ~metric ~facilities ~site:0 ~demand in
        let bf = brute_assign ~metric ~facilities ~site:0 ~demand in
        Float.abs (dp -. bf) < 1e-9
      end)

(* ---------- Exact ---------- *)

let test_partition_dp () =
  (* g(k) = ceil(k/4): covering 16 commodities costs 4 with any split into
     4-blocks; dp must find it. *)
  let g k = float_of_int (Numerics.ceil_div k 4) in
  check_float 1e-9 "16 commodities" 4.0
    (Exact.single_point_partition ~g ~n_requested:16);
  check_float 1e-9 "0 commodities" 0.0 (Exact.single_point_partition ~g ~n_requested:0);
  (* Linear g: no splitting advantage. *)
  let lin k = 2.0 *. float_of_int k in
  check_float 1e-9 "linear" 10.0 (Exact.single_point_partition ~g:lin ~n_requested:5);
  (* Concave g: one big facility wins. *)
  let sqrt_g k = sqrt (float_of_int k) in
  check_float 1e-9 "concave" 3.0 (Exact.single_point_partition ~g:sqrt_g ~n_requested:9)

let test_single_point_opt () =
  let rng = Splitmix.of_int 3 in
  let inst =
    Generators.single_point_adversary rng ~n_commodities:16
      ~cost:Cost_function.theorem2 ~n_requested:4
  in
  check_float 1e-9 "theorem2 regime a" 1.0 (Exact.single_point_opt inst)

let test_single_point_opt_full_candidate () =
  (* Cost where the full set is cheaper than the exact demand: Condition 1
     violated on purpose; the solver must consider sigma = S. *)
  let cost =
    Cost_function.make ~name:"full-cheap" ~n_commodities:4 ~n_sites:1
      (fun _ sigma -> if Cset.is_full sigma then 1.0 else 10.0)
  in
  let metric = Finite_metric.single_point () in
  let inst =
    Instance.make ~name:"fc" ~metric ~cost
      ~requests:
        [| Request.make ~site:0 ~demand:(Cset.of_list ~n_commodities:4 [ 0; 1 ]) |]
  in
  check_float 1e-9 "uses full config" 1.0 (Exact.single_point_opt inst)

let test_single_point_opt_multi_site_rejected () =
  let metric = Finite_metric.line [| 0.0; 1.0 |] in
  let cost = Cost_function.power_law ~n_commodities:2 ~n_sites:2 ~x:1.0 in
  let inst =
    Instance.make ~name:"multi" ~metric ~cost
      ~requests:[| Request.make ~site:0 ~demand:(Cset.singleton ~n_commodities:2 0) |]
  in
  Alcotest.check_raises "multi-site"
    (Invalid_argument "Exact.single_point_opt: instance has more than one site")
    (fun () -> ignore (Exact.single_point_opt inst))

(* ---------- Greedy + local search vs exact ---------- *)

let tiny_gen seed =
  let rng = Splitmix.of_int seed in
  Generators.line rng ~n_sites:3 ~n_requests:5 ~n_commodities:3 ~length:8.0
    ~demand:(Demand.Bernoulli { p = 0.6 })
    ~cost:(fun ~n_commodities ~n_sites ->
      Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)

let prop_greedy_feasible_and_above_opt =
  QCheck.Test.make ~name:"greedy >= exact OPT, and is feasible" ~count:20
    QCheck.small_int (fun seed ->
      let inst = tiny_gen seed in
      let greedy = Greedy_offline.solve inst in
      let recomputed = Assignment.total_cost inst greedy.Greedy_offline.facilities in
      match Exact.ilp_opt inst with
      | Some opt ->
          greedy.Greedy_offline.cost >= opt -. 1e-6
          && Float.abs (recomputed -. greedy.Greedy_offline.cost) < 1e-6
      | None -> true)

let prop_local_search_improves =
  QCheck.Test.make ~name:"local search never increases cost" ~count:20
    QCheck.small_int (fun seed ->
      let inst = tiny_gen seed in
      let greedy = Greedy_offline.solve inst in
      let ls = Local_search.improve inst greedy.Greedy_offline.facilities in
      ls.Local_search.cost <= greedy.Greedy_offline.cost +. 1e-9)

let prop_greedy_quality =
  (* Ravi-Sinha greedy is O(log |S|)-approximate; on these tiny instances
     greedy + local search should stay within 3x of OPT. *)
  QCheck.Test.make ~name:"greedy + LS within 3x of OPT" ~count:15
    QCheck.small_int (fun seed ->
      let inst = tiny_gen seed in
      let greedy = Greedy_offline.solve inst in
      let ls = Local_search.improve inst greedy.Greedy_offline.facilities in
      match Exact.ilp_opt inst with
      | Some opt -> ls.Local_search.cost <= (3.0 *. opt) +. 1e-6
      | None -> true)

(* ---------- Prune / Pd_offline ---------- *)

let test_prune_drops_redundant () =
  let metric = Finite_metric.single_point () in
  let cost = Cost_function.power_law ~n_commodities:3 ~n_sites:1 ~x:1.0 in
  let inst =
    Instance.make ~name:"p" ~metric ~cost
      ~requests:
        [| Request.make ~site:0 ~demand:(Cset.of_list ~n_commodities:3 [ 0; 1 ]) |]
  in
  (* A redundant full facility next to the exact-demand one. *)
  let facilities =
    [
      (0, Cset.of_list ~n_commodities:3 [ 0; 1 ]);
      (0, Cset.full ~n_commodities:3);
    ]
  in
  let pruned, cost' = Prune.drop_pass inst facilities in
  check_int "one facility left" 1 (List.length pruned);
  check_float 1e-9 "cost" (sqrt 2.0) cost'

let test_prune_infeasible_start () =
  let inst = tiny_gen 1 in
  Alcotest.check_raises "infeasible"
    (Invalid_argument "Prune.drop_pass: infeasible facility set") (fun () ->
      ignore (Prune.drop_pass inst []))

let prop_pd_offline_feasible_and_above_opt =
  QCheck.Test.make ~name:"pd-offline feasible, >= OPT, <= online PD" ~count:20
    QCheck.small_int (fun seed ->
      let inst = tiny_gen seed in
      let sol = Pd_offline.solve inst in
      let recomputed = Assignment.total_cost inst sol.Pd_offline.facilities in
      let online =
        Omflp_core.Run.total_cost
          (Omflp_core.Simulator.run (module Omflp_core.Pd_omflp) inst)
      in
      let above_opt =
        match Exact.ilp_opt inst with
        | Some opt -> sol.Pd_offline.cost >= opt -. 1e-6
        | None -> true
      in
      Float.abs (recomputed -. sol.Pd_offline.cost) < 1e-6
      && sol.Pd_offline.cost <= online +. 1e-6
      && above_opt)

let prop_jv_feasible_and_above_opt =
  QCheck.Test.make ~name:"jv primal-dual feasible and >= OPT" ~count:20
    QCheck.small_int (fun seed ->
      let inst = tiny_gen seed in
      let sol = Jv_primal_dual.solve inst in
      let recomputed =
        Assignment.total_cost inst sol.Jv_primal_dual.facilities
      in
      let above_opt =
        match Exact.ilp_opt inst with
        | Some opt -> sol.Jv_primal_dual.cost >= opt -. 1e-6
        | None -> true
      in
      Float.abs (recomputed -. sol.Jv_primal_dual.cost) < 1e-6 && above_opt)

let prop_jv_quality =
  (* JV-style primal-dual with pruning is a constant-factor heuristic in
     practice; assert a loose 4x bound against exact OPT. *)
  QCheck.Test.make ~name:"jv primal-dual within 4x of OPT" ~count:15
    QCheck.small_int (fun seed ->
      let inst = tiny_gen (seed + 900) in
      let sol = Jv_primal_dual.solve inst in
      match Exact.ilp_opt inst with
      | Some opt -> sol.Jv_primal_dual.cost <= (4.0 *. opt) +. 1e-6
      | None -> true)

let test_jv_single_point () =
  (* One point, all commodities demanded, concave cost: JV should find the
     single-large-facility optimum after pruning. *)
  let metric = Finite_metric.single_point () in
  let cost = Cost_function.constant ~n_commodities:4 ~n_sites:1 ~cost:2.0 in
  let inst =
    Instance.make ~name:"jv1" ~metric ~cost
      ~requests:
        [|
          Request.make ~site:0 ~demand:(Cset.of_list ~n_commodities:4 [ 0; 1 ]);
          Request.make ~site:0 ~demand:(Cset.of_list ~n_commodities:4 [ 2; 3 ]);
        |]
  in
  let sol = Jv_primal_dual.solve inst in
  check_float 1e-9 "optimal" 2.0 sol.Jv_primal_dual.cost;
  check_int "one facility" 1 (List.length sol.Jv_primal_dual.facilities)

let test_jv_deterministic () =
  let inst = tiny_gen 5 in
  let a = (Jv_primal_dual.solve inst).Jv_primal_dual.cost in
  let b = (Jv_primal_dual.solve inst).Jv_primal_dual.cost in
  check_float 1e-12 "deterministic" a b

let test_pd_offline_empty () =
  let metric = Finite_metric.single_point () in
  let cost = Cost_function.power_law ~n_commodities:2 ~n_sites:1 ~x:1.0 in
  let inst = Instance.make ~name:"empty" ~metric ~cost ~requests:[||] in
  let sol = Pd_offline.solve inst in
  check_float 1e-9 "zero cost" 0.0 sol.Pd_offline.cost

(* ---------- Opt_estimate ---------- *)

let test_bracket_exact_on_tiny () =
  let inst = tiny_gen 1 in
  let b = Opt_estimate.bracket inst in
  check_bool "certified" true (Opt_estimate.certified b);
  match Exact.ilp_opt inst with
  | Some opt -> check_float 1e-6 "equals ILP" opt b.Opt_estimate.upper
  | None -> Alcotest.fail "ilp failed"

let test_bracket_single_point () =
  let rng = Splitmix.of_int 5 in
  let inst = Generators.theorem2 rng ~n_commodities:16 in
  let b = Opt_estimate.bracket inst in
  check_bool "certified" true (Opt_estimate.certified b);
  check_float 1e-9 "OPT = 1" 1.0 b.Opt_estimate.upper

let test_bracket_order () =
  let rng = Splitmix.of_int 6 in
  let inst =
    Generators.line rng ~n_sites:8 ~n_requests:25 ~n_commodities:6 ~length:30.0
      ~demand:(Demand.Bernoulli { p = 0.4 })
      ~cost:(fun ~n_commodities ~n_sites ->
        Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
  in
  let b = Opt_estimate.bracket inst in
  check_bool "lower <= upper" true (b.Opt_estimate.lower <= b.Opt_estimate.upper +. 1e-9);
  check_bool "lower positive" true (b.Opt_estimate.lower > 0.0)

let test_single_request_lower_bound_valid () =
  for seed = 0 to 10 do
    let inst = tiny_gen (seed + 200) in
    let lower = Opt_estimate.single_request_lower inst in
    match Exact.ilp_opt inst with
    | Some opt ->
        check_bool (Printf.sprintf "seed %d" seed) true (lower <= opt +. 1e-6)
    | None -> ()
  done

let () =
  Alcotest.run "offline"
    [
      ( "assignment",
        [
          Alcotest.test_case "simple" `Quick test_assignment_simple;
          Alcotest.test_case "shared vs pair" `Quick test_assignment_prefers_shared;
          Alcotest.test_case "uncoverable" `Quick test_assignment_uncoverable;
          QCheck_alcotest.to_alcotest prop_assignment_matches_brute_force;
        ] );
      ( "exact",
        [
          Alcotest.test_case "partition DP" `Quick test_partition_dp;
          Alcotest.test_case "single point opt" `Quick test_single_point_opt;
          Alcotest.test_case "full-config candidate" `Quick
            test_single_point_opt_full_candidate;
          Alcotest.test_case "multi-site rejected" `Quick
            test_single_point_opt_multi_site_rejected;
        ] );
      ( "greedy+ls",
        [
          QCheck_alcotest.to_alcotest prop_greedy_feasible_and_above_opt;
          QCheck_alcotest.to_alcotest prop_local_search_improves;
          QCheck_alcotest.to_alcotest prop_greedy_quality;
        ] );
      ( "prune+pd_offline",
        [
          Alcotest.test_case "prune drops redundant" `Quick test_prune_drops_redundant;
          Alcotest.test_case "prune infeasible start" `Quick test_prune_infeasible_start;
          Alcotest.test_case "pd-offline empty" `Quick test_pd_offline_empty;
          QCheck_alcotest.to_alcotest prop_pd_offline_feasible_and_above_opt;
          Alcotest.test_case "jv single point" `Quick test_jv_single_point;
          Alcotest.test_case "jv deterministic" `Quick test_jv_deterministic;
          QCheck_alcotest.to_alcotest prop_jv_feasible_and_above_opt;
          QCheck_alcotest.to_alcotest prop_jv_quality;
        ] );
      ( "opt_estimate",
        [
          Alcotest.test_case "certified on tiny" `Quick test_bracket_exact_on_tiny;
          Alcotest.test_case "single point" `Quick test_bracket_single_point;
          Alcotest.test_case "bracket order" `Quick test_bracket_order;
          Alcotest.test_case "single-request lower bound" `Quick
            test_single_request_lower_bound_valid;
        ] );
    ]
