open Omflp_prelude
open Omflp_commodity

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Cset ---------- *)

let test_cset_basics () =
  let s = Cset.of_list ~n_commodities:6 [ 1; 3; 5 ] in
  check_int "cardinal" 3 (Cset.cardinal s);
  check_bool "mem" true (Cset.mem s 3);
  check_bool "full?" false (Cset.is_full s);
  check_bool "full" true (Cset.is_full (Cset.full ~n_commodities:6))

let test_cset_all_subsets () =
  check_int "2^4" 16 (List.length (Cset.all_subsets ~n_commodities:4));
  check_int "2^4 - 1" 15 (List.length (Cset.all_nonempty_subsets ~n_commodities:4));
  Alcotest.check_raises "too large"
    (Invalid_argument "Cset.all_subsets: universe too large to enumerate")
    (fun () -> ignore (Cset.all_subsets ~n_commodities:21))

let test_cset_subsets_of () =
  let s = Cset.of_list ~n_commodities:10 [ 2; 7 ] in
  let subs = Cset.subsets_of s in
  check_int "2^2" 4 (List.length subs);
  check_bool "all within" true (List.for_all (fun x -> Cset.subset x s) subs)

(* ---------- Cost_function ---------- *)

let cfg es = Cset.of_list ~n_commodities:9 es

let test_power_law_values () =
  let f = Cost_function.power_law ~n_commodities:9 ~n_sites:2 ~x:1.0 in
  check_float "singleton" 1.0 (Cost_function.singleton_cost f 0 3);
  check_float "4 commodities" 2.0 (Cost_function.eval f 1 (cfg [ 0; 1; 2; 3 ]));
  check_float "full" 3.0 (Cost_function.full_cost f 0);
  check_float "empty is free" 0.0 (Cost_function.eval f 0 (cfg []))

let test_power_law_extremes () =
  let f0 = Cost_function.power_law ~n_commodities:9 ~n_sites:1 ~x:0.0 in
  check_float "x=0 constant" 1.0 (Cost_function.eval f0 0 (cfg [ 1; 2; 3 ]));
  let f2 = Cost_function.power_law ~n_commodities:9 ~n_sites:1 ~x:2.0 in
  check_float "x=2 linear" 3.0 (Cost_function.eval f2 0 (cfg [ 1; 2; 3 ]));
  Alcotest.check_raises "x out of range"
    (Invalid_argument "Cost_function.power_law: x must lie in [0, 2]")
    (fun () ->
      ignore (Cost_function.power_law ~n_commodities:9 ~n_sites:1 ~x:2.5))

let test_theorem2_cost () =
  let f = Cost_function.theorem2 ~n_commodities:16 ~n_sites:1 in
  check_float "singleton" 1.0 (Cost_function.singleton_cost f 0 0);
  check_float "sqrt-size set" 1.0
    (Cost_function.eval f 0 (Cset.of_list ~n_commodities:16 [ 0; 1; 2; 3 ]));
  check_float "5 commodities -> 2" 2.0
    (Cost_function.eval f 0 (Cset.of_list ~n_commodities:16 [ 0; 1; 2; 3; 4 ]));
  check_float "full" 4.0 (Cost_function.full_cost f 0)

let test_linear_and_constant () =
  let f = Cost_function.linear ~n_commodities:5 ~n_sites:1 ~per_commodity:2.0 in
  check_float "linear" 6.0
    (Cost_function.eval f 0 (Cset.of_list ~n_commodities:5 [ 0; 1; 2 ]));
  let c = Cost_function.constant ~n_commodities:5 ~n_sites:1 ~cost:7.0 in
  check_float "constant" 7.0
    (Cost_function.eval c 0 (Cset.of_list ~n_commodities:5 [ 0 ]))

let test_site_scaled () =
  let base = Cost_function.linear ~n_commodities:4 ~n_sites:2 ~per_commodity:1.0 in
  let f = Cost_function.site_scaled base [| 1.0; 3.0 |] in
  check_float "site 0" 2.0
    (Cost_function.eval f 0 (Cset.of_list ~n_commodities:4 [ 0; 1 ]));
  check_float "site 1" 6.0
    (Cost_function.eval f 1 (Cset.of_list ~n_commodities:4 [ 0; 1 ]));
  Alcotest.check_raises "arity"
    (Invalid_argument "Cost_function.site_scaled: arity mismatch") (fun () ->
      ignore (Cost_function.site_scaled base [| 1.0 |]))

let test_of_table () =
  let table = [| [| 0.0; 1.0; 2.0; 2.5 |] |] in
  let f = Cost_function.of_table ~n_commodities:2 table in
  check_float "{0}" 1.0 (Cost_function.eval f 0 (Cset.of_list ~n_commodities:2 [ 0 ]));
  check_float "{1}" 2.0 (Cost_function.eval f 0 (Cset.of_list ~n_commodities:2 [ 1 ]));
  check_float "{0,1}" 2.5 (Cost_function.full_cost f 0);
  Alcotest.check_raises "empty config"
    (Invalid_argument "Cost_function.of_table: empty configuration must cost 0")
    (fun () ->
      ignore (Cost_function.of_table ~n_commodities:1 [| [| 1.0; 1.0 |] |]))

let test_eval_validation () =
  let f = Cost_function.power_law ~n_commodities:4 ~n_sites:2 ~x:1.0 in
  Alcotest.check_raises "site range"
    (Invalid_argument "Cost_function.eval: site 2 outside [0, 2)") (fun () ->
      ignore (Cost_function.eval f 2 (Cset.full ~n_commodities:4)));
  Alcotest.check_raises "wrong universe"
    (Invalid_argument "Cost_function.eval: configuration from wrong universe")
    (fun () -> ignore (Cost_function.eval f 0 (Cset.full ~n_commodities:5)))

let test_condition1_families () =
  (* All power-law members satisfy Condition 1. *)
  List.iter
    (fun x ->
      let f = Cost_function.power_law ~n_commodities:8 ~n_sites:2 ~x in
      match Cost_function.check_condition1 f with
      | Ok () -> ()
      | Error (m, sigma) ->
          Alcotest.failf "x=%.1f violates Condition 1 at site %d, %s" x m
            (Format.asprintf "%a" Cset.pp sigma))
    [ 0.0; 0.5; 1.0; 1.5; 2.0 ];
  match
    Cost_function.check_condition1
      (Cost_function.theorem2 ~n_commodities:16 ~n_sites:1)
  with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "theorem2 cost violates Condition 1"

let test_condition1_detects_violation () =
  (* Per-commodity cost much cheaper than full set: violates Condition 1. *)
  let f =
    Cost_function.make ~name:"bad" ~n_commodities:4 ~n_sites:1 (fun _ sigma ->
        if Cset.is_full sigma then 100.0 else float_of_int (Cset.cardinal sigma))
  in
  match Cost_function.check_condition1 f with
  | Ok () -> Alcotest.fail "violation not detected"
  | Error _ -> ()

let test_subadditive_families () =
  List.iter
    (fun x ->
      let f = Cost_function.power_law ~n_commodities:6 ~n_sites:1 ~x in
      match Cost_function.check_subadditive f with
      | Ok () -> ()
      | Error _ -> Alcotest.failf "x=%.1f not subadditive" x)
    [ 0.0; 1.0; 2.0 ]

let test_subadditive_detects_violation () =
  (* Superadditive: f(|sigma|) = |sigma|^2. *)
  let f =
    Cost_function.size_based ~name:"square" ~n_commodities:5 ~n_sites:1
      (fun k -> float_of_int (k * k))
  in
  match Cost_function.check_subadditive f with
  | Ok () -> Alcotest.fail "superadditivity not detected"
  | Error _ -> ()

let test_condition1_sampled_branch () =
  (* Universe above the exhaustive limit exercises the sampled path. *)
  let f = Cost_function.power_law ~n_commodities:40 ~n_sites:2 ~x:1.0 in
  match
    Cost_function.check_condition1 ~exhaustive_limit:10 ~samples:500
      ~rng:(Splitmix.of_int 3) f
  with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "sampled check false positive"

(* ---------- Cost_classes ---------- *)

let test_round_down_pow2 () =
  check_float "5 -> 4" 4.0 (Cost_classes.round_down_pow2 5.0);
  check_float "0 -> 0" 0.0 (Cost_classes.round_down_pow2 0.0);
  check_float "1 -> 1" 1.0 (Cost_classes.round_down_pow2 1.0)

let test_classes_structure () =
  (* Sites with costs 1, 3, 5, 8 for singleton {0} round to 1, 2, 4, 8. *)
  let f =
    Cost_function.make ~name:"per-site" ~n_commodities:2 ~n_sites:4
      (fun m sigma ->
        float_of_int (Cset.cardinal sigma) *. [| 1.0; 3.0; 5.0; 8.0 |].(m))
  in
  let t = Cost_classes.build f in
  let cs = Cost_classes.classes t (Cost_classes.Single 0) in
  check_int "4 classes" 4 (Array.length cs);
  check_float "first" 1.0 cs.(0).Cost_classes.cost;
  check_float "last" 8.0 cs.(3).Cost_classes.cost;
  (* Strictly increasing. *)
  for i = 1 to Array.length cs - 1 do
    check_bool "increasing" true
      (cs.(i).Cost_classes.cost > cs.(i - 1).Cost_classes.cost)
  done

let test_classes_grouping () =
  (* Costs 4 and 5 share the rounded class 4. *)
  let f =
    Cost_function.make ~name:"grouped" ~n_commodities:1 ~n_sites:3
      (fun m _ -> [| 4.0; 5.0; 16.0 |].(m))
  in
  let t = Cost_classes.build f in
  let cs = Cost_classes.classes t (Cost_classes.Single 0) in
  check_int "2 classes" 2 (Array.length cs);
  check_int "first class has 2 sites" 2 (Array.length cs.(0).Cost_classes.sites)

let test_cumulative_min_dist () =
  let f =
    Cost_function.make ~name:"per-site" ~n_commodities:1 ~n_sites:3
      (fun m _ -> [| 1.0; 2.0; 4.0 |].(m))
  in
  let t = Cost_classes.build f in
  (* distances to sites 0,1,2 are 5, 1, 3. *)
  let dist_to = function 0 -> 5.0 | 1 -> 1.0 | _ -> 3.0 in
  check_float "class 0 only" 5.0
    (Cost_classes.cumulative_min_dist t (Cost_classes.Single 0) ~dist_to ~upto:0);
  check_float "classes 0-1" 1.0
    (Cost_classes.cumulative_min_dist t (Cost_classes.Single 0) ~dist_to ~upto:1);
  check_float "all" 1.0
    (Cost_classes.cumulative_min_dist t (Cost_classes.Single 0) ~dist_to ~upto:2)

let test_nearest_site_in_class () =
  let f =
    Cost_function.make ~name:"uniform" ~n_commodities:1 ~n_sites:4
      (fun _ _ -> 2.0)
  in
  let t = Cost_classes.build f in
  let dist_to = function 2 -> 0.5 | m -> float_of_int (m + 1) in
  let site, d =
    Cost_classes.nearest_site_in_class t (Cost_classes.Single 0) ~dist_to
      ~cls_idx:0
  in
  check_int "site" 2 site;
  check_float "dist" 0.5 d

let test_all_key () =
  let f = Cost_function.power_law ~n_commodities:4 ~n_sites:3 ~x:1.0 in
  let t = Cost_classes.build f in
  check_int "single class for uniform cost" 1
    (Cost_classes.n_classes t Cost_classes.All);
  check_float "full cost rounded" 2.0
    (Cost_classes.classes t Cost_classes.All).(0).Cost_classes.cost

(* Property: for any size-based subadditive monotone g, classes are sound:
   rounded cost within factor 2 below the true cost. *)
let prop_class_rounding =
  QCheck.Test.make ~name:"class cost within [f/2, f]" ~count:100
    QCheck.(pair (int_range 1 10) (int_range 1 5))
    (fun (s, sites) ->
      let f = Cost_function.power_law ~n_commodities:s ~n_sites:sites ~x:1.0 in
      let t = Cost_classes.build f in
      let ok = ref true in
      for e = 0 to s - 1 do
        Array.iter
          (fun (c : Cost_classes.cls) ->
            Array.iter
              (fun m ->
                let true_cost = Cost_function.singleton_cost f m e in
                if not (c.cost <= true_cost && true_cost < 2.0 *. c.cost +. 1e-9)
                then ok := false)
              c.sites)
          (Cost_classes.classes t (Cost_classes.Single e))
      done;
      !ok)

let () =
  Alcotest.run "commodity"
    [
      ( "cset",
        [
          Alcotest.test_case "basics" `Quick test_cset_basics;
          Alcotest.test_case "all subsets" `Quick test_cset_all_subsets;
          Alcotest.test_case "subsets_of" `Quick test_cset_subsets_of;
        ] );
      ( "cost_function",
        [
          Alcotest.test_case "power law values" `Quick test_power_law_values;
          Alcotest.test_case "power law extremes" `Quick test_power_law_extremes;
          Alcotest.test_case "theorem2" `Quick test_theorem2_cost;
          Alcotest.test_case "linear/constant" `Quick test_linear_and_constant;
          Alcotest.test_case "site scaled" `Quick test_site_scaled;
          Alcotest.test_case "of_table" `Quick test_of_table;
          Alcotest.test_case "eval validation" `Quick test_eval_validation;
          Alcotest.test_case "Condition 1: families" `Quick test_condition1_families;
          Alcotest.test_case "Condition 1: violation" `Quick
            test_condition1_detects_violation;
          Alcotest.test_case "subadditive families" `Quick test_subadditive_families;
          Alcotest.test_case "superadditive detected" `Quick
            test_subadditive_detects_violation;
          Alcotest.test_case "Condition 1: sampled branch" `Quick
            test_condition1_sampled_branch;
        ] );
      ( "cost_classes",
        [
          Alcotest.test_case "round_down_pow2" `Quick test_round_down_pow2;
          Alcotest.test_case "structure" `Quick test_classes_structure;
          Alcotest.test_case "grouping" `Quick test_classes_grouping;
          Alcotest.test_case "cumulative min dist" `Quick test_cumulative_min_dist;
          Alcotest.test_case "nearest in class" `Quick test_nearest_site_in_class;
          Alcotest.test_case "All key" `Quick test_all_key;
          QCheck_alcotest.to_alcotest prop_class_rounding;
        ] );
    ]
