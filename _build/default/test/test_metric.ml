open Omflp_prelude
open Omflp_metric

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Finite_metric ---------- *)

let test_line () =
  let m = Finite_metric.line [| 0.0; 3.0; 7.0 |] in
  check_float "d01" 3.0 (Finite_metric.dist m 0 1);
  check_float "d12" 4.0 (Finite_metric.dist m 1 2);
  check_float "d02" 7.0 (Finite_metric.dist m 0 2);
  check_float "self" 0.0 (Finite_metric.dist m 1 1)

let test_euclidean () =
  let m = Finite_metric.euclidean [| (0.0, 0.0); (3.0, 4.0) |] in
  check_float "3-4-5" 5.0 (Finite_metric.dist m 0 1)

let test_single_point () =
  let m = Finite_metric.single_point () in
  check_int "size" 1 (Finite_metric.size m);
  check_float "d00" 0.0 (Finite_metric.dist m 0 0)

let test_uniform () =
  let m = Finite_metric.uniform 4 ~d:2.5 in
  check_float "d" 2.5 (Finite_metric.dist m 1 3);
  check_float "diag" 0.0 (Finite_metric.dist m 2 2);
  check_float "diameter" 2.5 (Finite_metric.diameter m)

let test_of_matrix_validation () =
  Alcotest.check_raises "asymmetric"
    (Invalid_argument "Finite_metric.of_matrix: asymmetric matrix") (fun () ->
      ignore (Finite_metric.of_matrix [| [| 0.0; 1.0 |]; [| 2.0; 0.0 |] |]));
  Alcotest.check_raises "diagonal"
    (Invalid_argument "Finite_metric.of_matrix: non-zero diagonal") (fun () ->
      ignore (Finite_metric.of_matrix [| [| 1.0 |] |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Finite_metric.of_matrix: negative distance") (fun () ->
      ignore (Finite_metric.of_matrix [| [| 0.0; -1.0 |]; [| -1.0; 0.0 |] |]));
  Alcotest.check_raises "triangle"
    (Invalid_argument
       "Finite_metric.of_matrix: triangle inequality violated at (0, 1, 2)")
    (fun () ->
      ignore
        (Finite_metric.of_matrix
           [|
             [| 0.0; 10.0; 1.0 |]; [| 10.0; 0.0; 1.0 |]; [| 1.0; 1.0; 0.0 |];
           |]))

let test_dist_bounds () =
  let m = Finite_metric.line [| 0.0; 1.0 |] in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Finite_metric.dist: (0, 2) outside [0, 2)") (fun () ->
      ignore (Finite_metric.dist m 0 2))

let test_nearest () =
  let m = Finite_metric.line [| 0.0; 5.0; 6.0; 20.0 |] in
  Alcotest.(check (option (pair int (float 1e-9))))
    "nearest" (Some (2, 1.0))
    (Finite_metric.nearest m ~from:1 [ 0; 2; 3 ]);
  Alcotest.(check (option (pair int (float 1e-9))))
    "empty" None
    (Finite_metric.nearest m ~from:1 [])

(* ---------- Graph ---------- *)

let test_graph_basics () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1 1.0;
  Graph.add_edge g 1 2 2.0;
  check_int "edges" 2 (Graph.n_edges g);
  check_int "vertices" 4 (Graph.n_vertices g);
  check_bool "disconnected" false (Graph.is_connected g);
  Graph.add_edge g 2 3 1.0;
  check_bool "connected" true (Graph.is_connected g)

let test_graph_validation () =
  let g = Graph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 1 1 1.0);
  Alcotest.check_raises "negative"
    (Invalid_argument "Graph.add_edge: negative weight") (fun () ->
      Graph.add_edge g 0 1 (-1.0));
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.add_edge: vertex out of range") (fun () ->
      Graph.add_edge g 0 3 1.0)

let test_dijkstra_simple () =
  let g = Graph.create 5 in
  Graph.add_edge g 0 1 1.0;
  Graph.add_edge g 1 2 1.0;
  Graph.add_edge g 0 2 5.0;
  Graph.add_edge g 2 3 1.0;
  let d = Graph.dijkstra g 0 in
  check_float "via path" 2.0 d.(2);
  check_float "onward" 3.0 d.(3);
  check_bool "unreachable" true (d.(4) = infinity)

let test_dijkstra_parallel_edges () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1 5.0;
  Graph.add_edge g 0 1 2.0;
  let d = Graph.dijkstra g 0 in
  check_float "min edge" 2.0 d.(1)

let test_shortest_path_metric () =
  let g = Graph.ring 5 ~edge_weight:1.0 in
  let m = Graph.shortest_path_metric g in
  check_float "around ring" 2.0 (Finite_metric.dist m 0 2);
  check_float "short way" 1.0 (Finite_metric.dist m 0 4);
  match Finite_metric.check_triangle m with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "shortest-path closure must be a metric"

let test_shortest_path_disconnected () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 1.0;
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Graph.shortest_path_metric: graph is disconnected")
    (fun () -> ignore (Graph.shortest_path_metric g))

let test_grid () =
  let g = Graph.grid ~rows:3 ~cols:4 ~edge_weight:1.0 in
  check_int "vertices" 12 (Graph.n_vertices g);
  (* 3*3 horizontal + 2*4 vertical = 17 edges *)
  check_int "edges" 17 (Graph.n_edges g);
  let m = Graph.shortest_path_metric g in
  (* Manhattan distance corner to corner. *)
  check_float "corner" 5.0 (Finite_metric.dist m 0 11)

(* Brute-force Bellman-Ford for cross-checking Dijkstra. *)
let bellman_ford g src =
  let n = Graph.n_vertices g in
  let dist = Array.make n infinity in
  dist.(src) <- 0.0;
  for _ = 1 to n do
    for u = 0 to n - 1 do
      List.iter
        (fun (v, w) ->
          if dist.(u) +. w < dist.(v) then dist.(v) <- dist.(u) +. w)
        (Graph.neighbors g u)
    done
  done;
  dist

let graph_gen =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ";"
           (List.map (fun (u, v, w) -> Printf.sprintf "(%d,%d,%.2f)" u v w) edges)))
    QCheck.Gen.(
      let* n = int_range 2 12 in
      let* m = int_range 1 25 in
      let* edges =
        list_repeat m
          (let* u = int_bound (n - 1) in
           let* v = int_bound (n - 1) in
           let* w = float_bound_inclusive 10.0 in
           return (u, v, w +. 0.001))
      in
      return (n, edges))

let prop_dijkstra_matches_bellman_ford =
  QCheck.Test.make ~name:"dijkstra = bellman-ford" ~count:150 graph_gen
    (fun (n, edges) ->
      let g = Graph.create n in
      List.iter (fun (u, v, w) -> if u <> v then Graph.add_edge g u v w) edges;
      let ok = ref true in
      for src = 0 to n - 1 do
        let d1 = Graph.dijkstra g src and d2 = bellman_ford g src in
        for v = 0 to n - 1 do
          if d1.(v) = infinity && d2.(v) = infinity then ()
          else if Float.abs (d1.(v) -. d2.(v)) > 1e-6 then ok := false
        done
      done;
      !ok)

(* ---------- Metric_gen ---------- *)

let gen_metric_cases =
  [
    ("random_line", fun rng -> Metric_gen.random_line rng ~n:12 ~length:50.0);
    ( "random_euclidean",
      fun rng -> Metric_gen.random_euclidean rng ~n:12 ~side:50.0 );
    ( "clustered",
      fun rng ->
        Metric_gen.clustered_euclidean rng ~clusters:3 ~per_cluster:4 ~side:50.0
          ~spread:1.0 );
    ( "graph",
      fun rng -> Metric_gen.random_graph_metric rng ~n:12 ~extra_edges:5 ~max_weight:3.0
    );
    ( "perturbed uniform",
      fun rng -> Metric_gen.perturbed_uniform rng ~n:12 ~base:5.0 ~jitter:4.0 );
  ]

let prop_generators_metric =
  List.map
    (fun (name, gen) ->
      QCheck.Test.make
        ~name:(name ^ " satisfies triangle inequality")
        ~count:25 QCheck.(small_int)
        (fun seed ->
          let m = gen (Splitmix.of_int seed) in
          match Finite_metric.check_triangle m with
          | Ok () -> true
          | Error _ -> false))
    gen_metric_cases

(* ---------- Tree_metric ---------- *)

let test_tree_path () =
  (* Path 0 -1- 1 -2- 2 -3- 3 *)
  let t = Tree_metric.create 4 in
  Tree_metric.add_edge t 0 1 1.0;
  Tree_metric.add_edge t 1 2 2.0;
  Tree_metric.add_edge t 2 3 3.0;
  Tree_metric.finalize t;
  check_float "0-3" 6.0 (Tree_metric.dist t 0 3);
  check_float "1-3" 5.0 (Tree_metric.dist t 1 3);
  check_float "self" 0.0 (Tree_metric.dist t 2 2)

let test_tree_star () =
  let t = Tree_metric.create 5 in
  for leaf = 1 to 4 do
    Tree_metric.add_edge t 0 leaf (float_of_int leaf)
  done;
  Tree_metric.finalize t;
  check_float "across star" 7.0 (Tree_metric.dist t 3 4);
  check_float "to centre" 2.0 (Tree_metric.dist t 0 2)

let test_tree_validation () =
  let t = Tree_metric.create 3 in
  Tree_metric.add_edge t 0 1 1.0;
  Alcotest.check_raises "cycle"
    (Invalid_argument "Tree_metric.add_edge: edge closes a cycle") (fun () ->
      Tree_metric.add_edge t 1 0 1.0);
  Alcotest.check_raises "not spanning"
    (Invalid_argument "Tree_metric.finalize: tree is not spanning") (fun () ->
      Tree_metric.finalize t);
  Alcotest.check_raises "dist before finalize" (Failure "Tree_metric.dist: finalize first")
    (fun () -> ignore (Tree_metric.dist t 0 1))

let tree_brute_dist adj n u v =
  (* BFS accumulating weights. *)
  let dist = Array.make n infinity in
  dist.(u) <- 0.0;
  let q = Queue.create () in
  Queue.push u q;
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    List.iter
      (fun (y, w) ->
        if dist.(y) = infinity then begin
          dist.(y) <- dist.(x) +. w;
          Queue.push y q
        end)
      adj.(x)
  done;
  dist.(v)

let prop_tree_dist_matches_bfs =
  QCheck.Test.make ~name:"tree LCA distances = BFS" ~count:60 QCheck.small_int
    (fun seed ->
      let rng = Splitmix.of_int seed in
      let n = 2 + Splitmix.int rng 20 in
      let t = Tree_metric.random_tree rng ~n ~max_weight:5.0 in
      (* Rebuild adjacency with another random tree of the same seed for a
         brute-force check: recreate deterministically instead. *)
      let rng2 = Splitmix.of_int seed in
      let n2 = 2 + Splitmix.int rng2 20 in
      assert (n2 = n);
      let adj = Array.make n [] in
      for v = 1 to n - 1 do
        let parent = Splitmix.int rng2 v in
        let w =
          Sampler.uniform_float rng2 ~lo:(5.0 /. 100.0) ~hi:5.0
        in
        adj.(v) <- (parent, w) :: adj.(v);
        adj.(parent) <- (v, w) :: adj.(parent)
      done;
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Float.abs (Tree_metric.dist t u v -. tree_brute_dist adj n u v) > 1e-6
          then ok := false
        done
      done;
      !ok)

let prop_tree_metric_valid =
  QCheck.Test.make ~name:"tree metric satisfies triangle inequality" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Splitmix.of_int seed in
      let n = 2 + Splitmix.int rng 15 in
      let t = Tree_metric.random_tree rng ~n ~max_weight:4.0 in
      match Finite_metric.check_triangle (Tree_metric.to_metric t) with
      | Ok () -> true
      | Error _ -> false)

let prop_hst_dominates =
  QCheck.Test.make ~name:"HST dominates the base metric and is a metric"
    ~count:40 QCheck.small_int (fun seed ->
      let rng = Splitmix.of_int seed in
      let n = 2 + Splitmix.int rng 10 in
      let base = Metric_gen.random_euclidean rng ~n ~side:20.0 in
      let hst = Tree_metric.hst_of_metric rng base in
      let dominated = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Finite_metric.dist hst u v < Finite_metric.dist base u v -. 1e-9
          then dominated := false
        done
      done;
      !dominated
      && (match Finite_metric.check_triangle hst with Ok () -> true | Error _ -> false))

let test_hst_single_point () =
  let rng = Splitmix.of_int 1 in
  let hst = Tree_metric.hst_of_metric rng (Finite_metric.single_point ()) in
  check_int "one point" 1 (Finite_metric.size hst)

let test_hst_duplicate_points () =
  (* Co-located points must stay at distance 0 in the HST (they never
     separate), and distinct ones must still dominate. *)
  let rng = Splitmix.of_int 2 in
  let base = Finite_metric.line [| 0.0; 0.0; 5.0 |] in
  let hst = Tree_metric.hst_of_metric rng base in
  check_float "duplicates stay together" 0.0 (Finite_metric.dist hst 0 1);
  check_bool "separated pair dominates" true
    (Finite_metric.dist hst 0 2 >= 5.0 -. 1e-9)

let test_hst_all_identical () =
  let rng = Splitmix.of_int 3 in
  let base = Finite_metric.uniform 4 ~d:0.0 in
  let hst = Tree_metric.hst_of_metric rng base in
  check_float "all zero" 0.0 (Finite_metric.diameter hst)

let test_perturbed_validation () =
  let rng = Splitmix.of_int 1 in
  Alcotest.check_raises "jitter > base"
    (Invalid_argument "Metric_gen.perturbed_uniform: jitter must not exceed base")
    (fun () ->
      ignore (Metric_gen.perturbed_uniform rng ~n:4 ~base:1.0 ~jitter:2.0))

let () =
  Alcotest.run "metric"
    [
      ( "finite_metric",
        [
          Alcotest.test_case "line" `Quick test_line;
          Alcotest.test_case "euclidean" `Quick test_euclidean;
          Alcotest.test_case "single point" `Quick test_single_point;
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "of_matrix validation" `Quick test_of_matrix_validation;
          Alcotest.test_case "dist bounds" `Quick test_dist_bounds;
          Alcotest.test_case "nearest" `Quick test_nearest;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "validation" `Quick test_graph_validation;
          Alcotest.test_case "dijkstra" `Quick test_dijkstra_simple;
          Alcotest.test_case "parallel edges" `Quick test_dijkstra_parallel_edges;
          Alcotest.test_case "shortest-path metric" `Quick test_shortest_path_metric;
          Alcotest.test_case "disconnected" `Quick test_shortest_path_disconnected;
          Alcotest.test_case "grid" `Quick test_grid;
          QCheck_alcotest.to_alcotest prop_dijkstra_matches_bellman_ford;
        ] );
      ( "metric_gen",
        Alcotest.test_case "perturbed validation" `Quick test_perturbed_validation
        :: List.map QCheck_alcotest.to_alcotest prop_generators_metric );
      ( "tree_metric",
        [
          Alcotest.test_case "path" `Quick test_tree_path;
          Alcotest.test_case "star" `Quick test_tree_star;
          Alcotest.test_case "validation" `Quick test_tree_validation;
          Alcotest.test_case "hst single point" `Quick test_hst_single_point;
          Alcotest.test_case "hst duplicate points" `Quick test_hst_duplicate_points;
          Alcotest.test_case "hst all identical" `Quick test_hst_all_identical;
          QCheck_alcotest.to_alcotest prop_tree_dist_matches_bfs;
          QCheck_alcotest.to_alcotest prop_tree_metric_valid;
          QCheck_alcotest.to_alcotest prop_hst_dominates;
        ] );
    ]
