open Omflp_prelude
open Omflp_covering

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

(* ---------- C_ordered (Definition 9, Lemmas 10-12) ---------- *)

let empty_b n = Array.init n (fun _ -> Bitset.create n)

let test_make_validation () =
  let n = 4 in
  (* B_1 containing element 2 >= 1 is invalid. *)
  let bad = empty_b n in
  bad.(1) <- Bitset.of_list n [ 2 ];
  Alcotest.check_raises "element too large"
    (Invalid_argument "C_ordered.make: B_1 contains 2 >= 1") (fun () ->
      ignore (C_ordered.make ~c:1.0 bad));
  (* Monotonicity violation: B_2 = {0}, B_3 = {1}. *)
  let nonmono = empty_b n in
  nonmono.(2) <- Bitset.of_list n [ 0 ];
  nonmono.(3) <- Bitset.of_list n [ 1 ];
  Alcotest.check_raises "monotonicity"
    (Invalid_argument "C_ordered.make: monotonicity fails at 3") (fun () ->
      ignore (C_ordered.make ~c:1.0 nonmono));
  Alcotest.check_raises "non-positive c"
    (Invalid_argument "C_ordered.make: c must be positive") (fun () ->
      ignore (C_ordered.make ~c:0.0 (empty_b 2)))

let test_a_set () =
  let n = 4 in
  let bs = empty_b n in
  bs.(3) <- Bitset.of_list n [ 1 ];
  let t = C_ordered.make ~c:1.0 bs in
  Alcotest.(check (list int)) "A_3" [ 0; 2 ] (Bitset.elements (C_ordered.a_set t 3));
  Alcotest.(check (list int)) "A_0" [] (Bitset.elements (C_ordered.a_set t 0))

let test_empty_b_solution () =
  (* With all B_i empty, element n-1 copes everything: one coping set of
     weight c covers the whole instance. *)
  let t = C_ordered.make ~c:5.0 (empty_b 6) in
  let cover = C_ordered.solve t in
  check_float "one set of weight c" 5.0 cover.C_ordered.total_weight;
  check_bool "covers all" true
    (Bitset.equal (C_ordered.covered_elements t cover) (Bitset.full 6))

let test_full_b_solution () =
  (* B_i = {0,...,i-1}: coping sets are singletons; cheapest option is the
     singleton set of weight c/(|B_i|+1), so the total is c*H_n. *)
  let n = 5 in
  let bs = Array.init n (fun i -> Bitset.of_list n (List.init i Fun.id)) in
  let t = C_ordered.make ~c:1.0 bs in
  let cover = C_ordered.solve t in
  check_float "harmonic total" (Numerics.harmonic n) cover.C_ordered.total_weight

let test_single_element () =
  let t = C_ordered.make ~c:3.0 (empty_b 1) in
  let cover = C_ordered.solve t in
  check_float "weight" 3.0 cover.C_ordered.total_weight

let test_weight_of_choice () =
  let n = 3 in
  let bs = empty_b n in
  bs.(2) <- Bitset.of_list n [ 0 ];
  let t = C_ordered.make ~c:4.0 bs in
  check_float "coping weight" 4.0 (C_ordered.weight_of_choice t (C_ordered.Take_coping 2));
  check_float "singleton weight" 2.0
    (C_ordered.weight_of_choice t (C_ordered.Take_singletons [ 2 ]));
  check_float "singleton weight (empty B)" 4.0
    (C_ordered.weight_of_choice t (C_ordered.Take_singletons [ 1 ]))

let test_mixed_blocks () =
  (* Two blocks: B_0 = B_1 = ∅, B_2 = B_3 = {0}. The last block {2,3} has
     |B| = 1, m = 4: coping covers m − |B| = 3 elements at c/3 each,
     singletons cost c/2 each — coping wins, removing {3} ∪ A_3 = {1,2,3}.
     Remaining {0}: one coping set of weight c. Total 2c ≤ 2cH_4. *)
  let n = 4 in
  let bs = empty_b n in
  bs.(2) <- Bitset.of_list n [ 0 ];
  bs.(3) <- Bitset.of_list n [ 0 ];
  let t = C_ordered.make ~c:3.0 bs in
  let cover = C_ordered.solve t in
  check_float "two coping rounds" 6.0 cover.C_ordered.total_weight;
  check_bool "covers all" true
    (Bitset.equal (C_ordered.covered_elements t cover) (Bitset.full n));
  check_bool "within Lemma 12 bound" true
    (cover.C_ordered.total_weight <= C_ordered.bound t +. 1e-9)

let instance_gen =
  QCheck.make
    ~print:(fun t -> Printf.sprintf "c-ordered instance of size %d" (C_ordered.n t))
    QCheck.Gen.(
      let* n = int_range 1 40 in
      let* c = float_range 0.5 10.0 in
      let* p = float_range 0.0 0.9 in
      let* seed = int_bound 1_000_000 in
      return (C_ordered.random (Splitmix.of_int seed) ~n ~c ~growth_p:p))

(* Lemma 12 executable: the produced covering never exceeds 2cH_n. *)
let prop_lemma12_bound =
  QCheck.Test.make ~name:"Lemma 12: solve weight <= 2cH_n" ~count:300
    instance_gen (fun t ->
      let cover = C_ordered.solve t in
      cover.C_ordered.total_weight <= C_ordered.bound t +. 1e-9)

let prop_solve_covers =
  QCheck.Test.make ~name:"solve covers every element" ~count:300 instance_gen
    (fun t ->
      Bitset.equal
        (C_ordered.covered_elements t (C_ordered.solve t))
        (Bitset.full (C_ordered.n t)))

let prop_weight_consistent =
  QCheck.Test.make ~name:"reported weight = sum of choice weights" ~count:200
    instance_gen (fun t ->
      let cover = C_ordered.solve t in
      let recomputed =
        List.fold_left
          (fun acc ch -> acc +. C_ordered.weight_of_choice t ch)
          0.0 cover.C_ordered.rounds
      in
      Float.abs (recomputed -. cover.C_ordered.total_weight) < 1e-9)

(* ---------- Set_cover ---------- *)

let mk_sets specs =
  Array.of_list
    (List.map
       (fun (w, members) ->
         { Set_cover.weight = w; members = Bitset.of_list 6 members })
       specs)

let test_exact_simple () =
  let sets =
    mk_sets
      [ (3.0, [ 0; 1; 2 ]); (3.0, [ 3; 4; 5 ]); (1.5, [ 0; 1; 2; 3; 4; 5 ]) ]
  in
  let chosen, w = Set_cover.exact ~universe:6 sets in
  check_float "picks the cheap superset" 1.5 w;
  Alcotest.(check (list int)) "chosen" [ 2 ] chosen

let test_exact_needs_combination () =
  let sets = mk_sets [ (1.0, [ 0; 1 ]); (1.0, [ 2; 3 ]); (1.0, [ 4; 5 ]); (2.5, [ 0; 1; 2; 3; 4; 5 ]) ] in
  let _, w = Set_cover.exact ~universe:6 sets in
  check_float "three cheap sets win" 2.5 w

let test_uncoverable () =
  let sets = mk_sets [ (1.0, [ 0; 1 ]) ] in
  Alcotest.check_raises "uncoverable"
    (Invalid_argument "Set_cover: sets do not cover the target") (fun () ->
      ignore (Set_cover.exact ~universe:6 sets))

let test_greedy_partial () =
  let sets = mk_sets [ (1.0, [ 0; 1 ]); (1.0, [ 2 ]); (10.0, [ 3 ]) ] in
  let chosen, w =
    Set_cover.greedy_partial ~target:(Bitset.of_list 6 [ 0; 2 ]) sets
  in
  check_float "covers only target" 2.0 w;
  Alcotest.(check (list int)) "chosen" [ 0; 1 ] (List.sort compare chosen)

let cover_gen =
  QCheck.make
    ~print:(fun (u, sets) ->
      Printf.sprintf "universe=%d, %d sets" u (List.length sets))
    QCheck.Gen.(
      let* u = int_range 1 10 in
      let* n_sets = int_range 1 12 in
      let* sets =
        list_repeat n_sets
          (let* w = float_range 0.1 10.0 in
           let* members = list_size (int_range 1 u) (int_bound (u - 1)) in
           return (w, members))
      in
      (* Add a universal set so every instance is coverable. *)
      return (u, (20.0, List.init u Fun.id) :: sets))

let prop_greedy_vs_exact =
  QCheck.Test.make ~name:"exact <= greedy <= H_n * exact" ~count:300 cover_gen
    (fun (u, specs) ->
      let sets =
        Array.of_list
          (List.map
             (fun (w, members) ->
               { Set_cover.weight = w; members = Bitset.of_list u members })
             specs)
      in
      let _, exact = Set_cover.exact ~universe:u sets in
      let _, greedy = Set_cover.greedy ~universe:u sets in
      exact <= greedy +. 1e-9
      && greedy <= (Numerics.harmonic u *. exact) +. 1e-9)

let prop_exact_choice_is_cover =
  QCheck.Test.make ~name:"exact choice covers and matches weight" ~count:300
    cover_gen (fun (u, specs) ->
      let sets =
        Array.of_list
          (List.map
             (fun (w, members) ->
               { Set_cover.weight = w; members = Bitset.of_list u members })
             specs)
      in
      let chosen, w = Set_cover.exact ~universe:u sets in
      let union =
        List.fold_left
          (fun acc i -> Bitset.union acc sets.(i).Set_cover.members)
          (Bitset.create u) chosen
      in
      let weight =
        List.fold_left (fun acc i -> acc +. sets.(i).Set_cover.weight) 0.0 chosen
      in
      Bitset.equal union (Bitset.full u) && Float.abs (weight -. w) < 1e-9)

let () =
  Alcotest.run "covering"
    [
      ( "c_ordered",
        [
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "a_set" `Quick test_a_set;
          Alcotest.test_case "empty B" `Quick test_empty_b_solution;
          Alcotest.test_case "full B" `Quick test_full_b_solution;
          Alcotest.test_case "single element" `Quick test_single_element;
          Alcotest.test_case "choice weights" `Quick test_weight_of_choice;
          Alcotest.test_case "mixed blocks" `Quick test_mixed_blocks;
          QCheck_alcotest.to_alcotest prop_lemma12_bound;
          QCheck_alcotest.to_alcotest prop_solve_covers;
          QCheck_alcotest.to_alcotest prop_weight_consistent;
        ] );
      ( "set_cover",
        [
          Alcotest.test_case "exact simple" `Quick test_exact_simple;
          Alcotest.test_case "exact combination" `Quick test_exact_needs_combination;
          Alcotest.test_case "uncoverable" `Quick test_uncoverable;
          Alcotest.test_case "greedy partial" `Quick test_greedy_partial;
          QCheck_alcotest.to_alcotest prop_greedy_vs_exact;
          QCheck_alcotest.to_alcotest prop_exact_choice_is_cover;
        ] );
    ]
