test/test_covering.ml: Alcotest Array Bitset C_ordered Float Fun List Numerics Omflp_covering Omflp_prelude Printf QCheck QCheck_alcotest Set_cover Splitmix
