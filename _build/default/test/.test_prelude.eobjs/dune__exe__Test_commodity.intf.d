test/test_commodity.mli:
