test/test_heavy.mli:
