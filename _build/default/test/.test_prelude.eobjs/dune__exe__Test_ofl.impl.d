test/test_ofl.ml: Alcotest Array Finite_metric Float Fotakis_pd List Meyerson Numerics Ofl_types Omflp_metric Omflp_ofl Omflp_prelude QCheck QCheck_alcotest Sampler Splitmix
