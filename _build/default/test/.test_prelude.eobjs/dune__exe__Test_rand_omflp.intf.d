test/test_rand_omflp.mli:
