test/test_metric.ml: Alcotest Array Finite_metric Float Graph List Metric_gen Omflp_metric Omflp_prelude Printf QCheck QCheck_alcotest Queue Sampler Splitmix String Tree_metric
