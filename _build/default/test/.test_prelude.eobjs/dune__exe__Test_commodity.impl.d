test/test_commodity.ml: Alcotest Array Cost_classes Cost_function Cset Format List Omflp_commodity Omflp_prelude QCheck QCheck_alcotest Splitmix
