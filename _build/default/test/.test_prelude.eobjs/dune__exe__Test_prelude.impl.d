test/test_prelude.ml: Alcotest Array Bitset Float Format Fun List Numerics Omflp_prelude Pqueue Printf QCheck QCheck_alcotest Sampler Splitmix Stats String Texttable
