test/test_pd_omflp.mli:
