test/test_ofl.mli:
