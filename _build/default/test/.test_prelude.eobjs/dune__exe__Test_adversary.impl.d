test/test_adversary.ml: Adversary Alcotest Greedy_baseline List Omflp_core Omflp_instance Omflp_offline Pd_omflp Registry Run Simulator
