test/test_covering.mli:
