open Omflp_prelude
open Omflp_lp

let check_float tol = Alcotest.(check (float tol))
let check_bool = Alcotest.(check bool)

let lp n_vars objective constraints =
  { Simplex.n_vars; objective; constraints }

let le coeffs rhs = { Simplex.coeffs; relation = Simplex.Le; rhs }
let ge coeffs rhs = { Simplex.coeffs; relation = Simplex.Ge; rhs }
let eq coeffs rhs = { Simplex.coeffs; relation = Simplex.Eq; rhs }

let expect_optimal = function
  | Simplex.Optimal { x; objective } -> (x, objective)
  | Simplex.Infeasible -> Alcotest.fail "unexpected Infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected Unbounded"

(* ---------- Simplex unit tests ---------- *)

let test_simplex_basic_min () =
  (* min x + y st x + y >= 2, x <= 5, y <= 5 -> 2 *)
  let p =
    lp 2 [| 1.0; 1.0 |]
      [ ge [| 1.0; 1.0 |] 2.0; le [| 1.0; 0.0 |] 5.0; le [| 0.0; 1.0 |] 5.0 ]
  in
  let _, obj = expect_optimal (Simplex.solve p) in
  check_float 1e-7 "objective" 2.0 obj

let test_simplex_max_via_min () =
  (* max 3x + 2y st x + y <= 4, x <= 2  ==  min -3x - 2y; optimum x=2, y=2: 10 *)
  let p =
    lp 2 [| -3.0; -2.0 |] [ le [| 1.0; 1.0 |] 4.0; le [| 1.0; 0.0 |] 2.0 ]
  in
  let x, obj = expect_optimal (Simplex.solve p) in
  check_float 1e-7 "objective" (-10.0) obj;
  check_float 1e-7 "x" 2.0 x.(0);
  check_float 1e-7 "y" 2.0 x.(1)

let test_simplex_equality () =
  (* min x + 2y st x + y = 3, x <= 1 -> x=1, y=2, obj=5 *)
  let p = lp 2 [| 1.0; 2.0 |] [ eq [| 1.0; 1.0 |] 3.0; le [| 1.0; 0.0 |] 1.0 ] in
  let x, obj = expect_optimal (Simplex.solve p) in
  check_float 1e-7 "objective" 5.0 obj;
  check_float 1e-7 "x" 1.0 x.(0)

let test_simplex_infeasible () =
  let p = lp 1 [| 1.0 |] [ ge [| 1.0 |] 5.0; le [| 1.0 |] 2.0 ] in
  match Simplex.solve p with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected Infeasible"

let test_simplex_unbounded () =
  (* min -x st x >= 0 (no upper bound) *)
  let p = lp 1 [| -1.0 |] [ ge [| 1.0 |] 0.0 ] in
  match Simplex.solve p with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected Unbounded"

let test_simplex_negative_rhs () =
  (* min x st -x <= -3 (i.e. x >= 3) *)
  let p = lp 1 [| 1.0 |] [ le [| -1.0 |] (-3.0) ] in
  let x, obj = expect_optimal (Simplex.solve p) in
  check_float 1e-7 "objective" 3.0 obj;
  check_float 1e-7 "x" 3.0 x.(0)

let test_simplex_degenerate () =
  (* Degenerate vertex: several constraints meet at the optimum. *)
  let p =
    lp 2 [| 1.0; 1.0 |]
      [
        ge [| 1.0; 0.0 |] 1.0;
        ge [| 0.0; 1.0 |] 1.0;
        ge [| 1.0; 1.0 |] 2.0;
        le [| 1.0; 1.0 |] 2.0;
      ]
  in
  let _, obj = expect_optimal (Simplex.solve p) in
  check_float 1e-7 "objective" 2.0 obj

let test_simplex_redundant_equalities () =
  (* Duplicate equality rows leave an artificial basic at zero after
     phase 1; the solver must still reach the optimum. *)
  let p =
    lp 2 [| 1.0; 1.0 |]
      [
        eq [| 1.0; 1.0 |] 3.0;
        eq [| 1.0; 1.0 |] 3.0;
        eq [| 2.0; 2.0 |] 6.0;
        ge [| 1.0; 0.0 |] 1.0;
      ]
  in
  let x, obj = expect_optimal (Simplex.solve p) in
  check_float 1e-7 "objective" 3.0 obj;
  check_bool "x >= 1" true (x.(0) >= 1.0 -. 1e-7)

let test_simplex_zero_rhs_degenerate () =
  (* All constraints pass through the origin except the box. *)
  let p =
    lp 2 [| -1.0; -2.0 |]
      [
        ge [| 1.0; -1.0 |] 0.0;
        le [| 1.0; 0.0 |] 4.0;
        le [| 0.0; 1.0 |] 4.0;
      ]
  in
  (* max x + 2y with y <= x <= 4: optimum x = y = 4, objective -12. *)
  let _, obj = expect_optimal (Simplex.solve p) in
  check_float 1e-7 "objective" (-12.0) obj

let test_simplex_single_variable_eq () =
  let p = lp 1 [| 5.0 |] [ eq [| 2.0 |] 7.0 ] in
  let x, obj = expect_optimal (Simplex.solve p) in
  check_float 1e-7 "x" 3.5 x.(0);
  check_float 1e-7 "objective" 17.5 obj

let test_simplex_all_zero_objective () =
  (* Pure feasibility problem: objective 0, any feasible point works. *)
  let p = lp 2 [| 0.0; 0.0 |] [ ge [| 1.0; 1.0 |] 2.0; le [| 1.0; 1.0 |] 5.0 ] in
  let x, obj = expect_optimal (Simplex.solve p) in
  check_float 1e-7 "objective" 0.0 obj;
  check_bool "feasible point" true (Simplex.feasible p x)

let test_feasible_check () =
  let p = lp 2 [| 1.0; 1.0 |] [ ge [| 1.0; 1.0 |] 2.0 ] in
  check_bool "feasible" true (Simplex.feasible p [| 1.0; 1.0 |]);
  check_bool "violates" false (Simplex.feasible p [| 0.5; 0.5 |]);
  check_bool "negative var" false (Simplex.feasible p [| -1.0; 4.0 |])

(* ---------- Simplex property test vs brute force on 2-var LPs ----------
   min c.x st A x >= b, x >= 0 and box x <= 10: the optimum lies at an
   intersection of two active constraints (including the axes/box). *)

let brute_force_2d objective constraints =
  (* Enumerate intersections of all constraint boundary pairs. *)
  let lines =
    constraints
    @ [
        ge [| 1.0; 0.0 |] 0.0;
        ge [| 0.0; 1.0 |] 0.0;
        le [| 1.0; 0.0 |] 10.0;
        le [| 0.0; 1.0 |] 10.0;
      ]
  in
  let feasible pt =
    pt.(0) >= -1e-7
    && pt.(1) >= -1e-7
    && List.for_all
         (fun (c : Simplex.constr) ->
           let lhs = (c.coeffs.(0) *. pt.(0)) +. (c.coeffs.(1) *. pt.(1)) in
           match c.relation with
           | Simplex.Le -> lhs <= c.rhs +. 1e-6
           | Simplex.Ge -> lhs >= c.rhs -. 1e-6
           | Simplex.Eq -> Float.abs (lhs -. c.rhs) <= 1e-6)
         lines
  in
  let best = ref None in
  let consider pt =
    if feasible pt then begin
      let v = (objective.(0) *. pt.(0)) +. (objective.(1) *. pt.(1)) in
      match !best with
      | Some b when b <= v -> ()
      | _ -> best := Some v
    end
  in
  List.iteri
    (fun i (ci : Simplex.constr) ->
      List.iteri
        (fun j (cj : Simplex.constr) ->
          if i < j then begin
            let a11 = ci.coeffs.(0) and a12 = ci.coeffs.(1) in
            let a21 = cj.coeffs.(0) and a22 = cj.coeffs.(1) in
            let det = (a11 *. a22) -. (a12 *. a21) in
            if Float.abs det > 1e-9 then begin
              let x = ((ci.rhs *. a22) -. (a12 *. cj.rhs)) /. det in
              let y = ((a11 *. cj.rhs) -. (ci.rhs *. a21)) /. det in
              consider [| x; y |]
            end
          end)
        lines)
    lines;
  !best

let lp2_gen =
  QCheck.make
    ~print:(fun (obj, cs) ->
      Printf.sprintf "min %gx+%gy, %d constraints" obj.(0) obj.(1)
        (List.length cs))
    QCheck.Gen.(
      let coeff = float_range (-4.0) 4.0 in
      let* o1 = float_range 0.1 4.0 in
      let* o2 = float_range 0.1 4.0 in
      let* n = int_range 1 5 in
      let* cs =
        list_repeat n
          (let* a = coeff in
           let* b = coeff in
           let* rhs = float_range (-3.0) 6.0 in
           let* rel = oneofl [ `Le; `Ge ] in
           return
             (match rel with
             | `Le -> le [| a; b |] rhs
             | `Ge -> ge [| a; b |] rhs))
      in
      return ([| o1; o2 |], cs))

let prop_simplex_vs_brute =
  QCheck.Test.make ~name:"simplex matches 2-var brute force" ~count:300 lp2_gen
    (fun (objective, cs) ->
      (* Box constraints keep everything bounded. *)
      let cs_box =
        cs @ [ le [| 1.0; 0.0 |] 10.0; le [| 0.0; 1.0 |] 10.0 ]
      in
      let p = lp 2 objective cs_box in
      match (Simplex.solve p, brute_force_2d objective cs) with
      | Simplex.Optimal { objective = v; x }, Some bf ->
          Float.abs (v -. bf) < 1e-4 && Simplex.feasible p x
      | Simplex.Infeasible, None -> true
      | Simplex.Optimal _, None -> false
      | Simplex.Infeasible, Some _ -> false
      | Simplex.Unbounded, _ -> false (* box forbids unboundedness *))

(* ---------- Branch and bound ---------- *)

let test_bb_integer_knapsack () =
  (* min -(3x + 4y) st 2x + 3y <= 7, x,y in {0..} -> x=2, y=1 -> -10 *)
  let p =
    lp 2 [| -3.0; -4.0 |]
      [ le [| 2.0; 3.0 |] 7.0; le [| 1.0; 0.0 |] 10.0; le [| 0.0; 1.0 |] 10.0 ]
  in
  match Branch_bound.solve { lp = p; integer_vars = [ 0; 1 ] } with
  | Branch_bound.Mip_optimal { x; objective } ->
      check_float 1e-6 "objective" (-10.0) objective;
      check_float 1e-6 "x" 2.0 x.(0);
      check_float 1e-6 "y" 1.0 x.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_bb_relaxation_fractional () =
  (* LP optimum fractional, integer optimum strictly worse:
     min -(x + y) st 2x + 2y <= 3 -> LP: 1.5, IP: 1. *)
  let p = lp 2 [| -1.0; -1.0 |] [ le [| 2.0; 2.0 |] 3.0 ] in
  (match Simplex.solve p with
  | Simplex.Optimal { objective; _ } -> check_float 1e-6 "lp" (-1.5) objective
  | _ -> Alcotest.fail "lp should be optimal");
  match Branch_bound.solve { lp = p; integer_vars = [ 0; 1 ] } with
  | Branch_bound.Mip_optimal { objective; _ } ->
      check_float 1e-6 "ip" (-1.0) objective
  | _ -> Alcotest.fail "expected optimal"

let test_bb_infeasible () =
  let p = lp 1 [| 1.0 |] [ ge [| 2.0 |] 1.0; le [| 2.0 |] 1.0 ] in
  (* x = 0.5 is the only feasible point; integrality makes it infeasible. *)
  match Branch_bound.solve { lp = p; integer_vars = [ 0 ] } with
  | Branch_bound.Mip_infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_bb_node_limit () =
  let p =
    lp 2 [| -1.0; -1.0 |] [ le [| 2.0; 2.0 |] 3.0 ]
  in
  match Branch_bound.solve ~node_limit:1 { lp = p; integer_vars = [ 0; 1 ] } with
  | Branch_bound.Mip_node_limit _ -> ()
  | _ -> Alcotest.fail "expected truncation"

(* ---------- MFLP model ---------- *)

let tiny_instance () =
  let metric = Omflp_metric.Finite_metric.line [| 0.0; 10.0 |] in
  let cost =
    Omflp_commodity.Cost_function.power_law ~n_commodities:2 ~n_sites:2 ~x:1.0
  in
  let requests =
    [|
      Omflp_instance.Request.make ~site:0
        ~demand:(Omflp_commodity.Cset.of_list ~n_commodities:2 [ 0; 1 ]);
      Omflp_instance.Request.make ~site:1
        ~demand:(Omflp_commodity.Cset.of_list ~n_commodities:2 [ 0 ]);
    |]
  in
  Omflp_instance.Instance.make ~name:"tiny" ~metric ~cost ~requests

let test_mflp_exact_tiny () =
  (* Best: a large facility at each site? Cost sqrt(2) + 1 = 2.414...
     vs large at 0 (sqrt 2) + connect r1 at distance 10: too far.
     Facility {0,1} at site 0 costs sqrt 2, facility {0} at site 1 costs 1;
     total = 2.414, zero assignment. *)
  match Mflp_model.solve_exact (tiny_instance ()) with
  | Mflp_model.Exact { objective; facilities } ->
      check_float 1e-5 "opt" (sqrt 2.0 +. 1.0) objective;
      Alcotest.(check int) "two facilities" 2 (List.length facilities)
  | Mflp_model.Truncated _ -> Alcotest.fail "should not truncate"

let test_mflp_lp_lower_bound () =
  let inst = tiny_instance () in
  let lb = Mflp_model.lp_lower_bound inst in
  match Mflp_model.solve_exact inst with
  | Mflp_model.Exact { objective; _ } ->
      check_bool "lp <= ilp" true (lb <= objective +. 1e-6)
  | _ -> Alcotest.fail "exact failed"

let test_mflp_size_guard () =
  let metric = Omflp_metric.Finite_metric.single_point () in
  let cost =
    Omflp_commodity.Cost_function.power_law ~n_commodities:8 ~n_sites:1 ~x:1.0
  in
  let inst =
    Omflp_instance.Instance.make ~name:"big-S" ~metric ~cost
      ~requests:
        [|
          Omflp_instance.Request.make ~site:0
            ~demand:(Omflp_commodity.Cset.singleton ~n_commodities:8 0);
        |]
  in
  Alcotest.check_raises "guard"
    (Invalid_argument
       "Mflp_model.build: 8 commodities exceed the exact-solver limit 6")
    (fun () -> ignore (Mflp_model.build inst))

let test_mflp_single_point_matches_partition () =
  (* On a single point with ceil-cost, ILP must agree with the partition DP. *)
  let rng = Splitmix.of_int 5 in
  let inst =
    Omflp_instance.Generators.single_point_adversary rng ~n_commodities:4
      ~cost:Omflp_commodity.Cost_function.theorem2 ~n_requested:4
  in
  match Mflp_model.solve_exact inst with
  | Mflp_model.Exact { objective; _ } ->
      let dp =
        Omflp_offline.Exact.single_point_partition
          ~g:(fun k -> float_of_int (Numerics.ceil_div k 2))
          ~n_requested:4
      in
      check_float 1e-6 "agree" dp objective
  | _ -> Alcotest.fail "exact failed"

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic min" `Quick test_simplex_basic_min;
          Alcotest.test_case "max via min" `Quick test_simplex_max_via_min;
          Alcotest.test_case "equality" `Quick test_simplex_equality;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
          Alcotest.test_case "redundant equalities" `Quick
            test_simplex_redundant_equalities;
          Alcotest.test_case "zero-rhs degenerate" `Quick
            test_simplex_zero_rhs_degenerate;
          Alcotest.test_case "single variable eq" `Quick
            test_simplex_single_variable_eq;
          Alcotest.test_case "zero objective" `Quick test_simplex_all_zero_objective;
          Alcotest.test_case "feasible check" `Quick test_feasible_check;
          QCheck_alcotest.to_alcotest prop_simplex_vs_brute;
        ] );
      ( "branch_bound",
        [
          Alcotest.test_case "knapsack" `Quick test_bb_integer_knapsack;
          Alcotest.test_case "fractional relaxation" `Quick test_bb_relaxation_fractional;
          Alcotest.test_case "infeasible" `Quick test_bb_infeasible;
          Alcotest.test_case "node limit" `Quick test_bb_node_limit;
        ] );
      ( "mflp_model",
        [
          Alcotest.test_case "exact tiny" `Quick test_mflp_exact_tiny;
          Alcotest.test_case "lp lower bound" `Quick test_mflp_lp_lower_bound;
          Alcotest.test_case "size guard" `Quick test_mflp_size_guard;
          Alcotest.test_case "matches partition DP" `Quick
            test_mflp_single_point_matches_partition;
        ] );
    ]
