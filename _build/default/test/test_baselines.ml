open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance
open Omflp_core

let check_float tol = Alcotest.(check (float tol))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let line_instance seed =
  let rng = Splitmix.of_int seed in
  Generators.line rng ~n_sites:6 ~n_requests:12 ~n_commodities:4 ~length:20.0
    ~demand:(Demand.Bernoulli { p = 0.5 })
    ~cost:(fun ~n_commodities ~n_sites ->
      Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)

(* ---------- INDEP ---------- *)

let test_indep_only_small () =
  let run = Simulator.run (module Indep_baseline) (line_instance 1) in
  check_int "no large" 0 (Run.n_large run);
  check_int "all small" (List.length run.Run.facilities) (Run.n_small run)

let test_indep_matches_fotakis_on_one_commodity () =
  (* With |S| = 1 INDEP is exactly one Fotakis instance. *)
  let rng = Splitmix.of_int 2 in
  let positions = Array.init 5 (fun _ -> Sampler.uniform_float rng ~lo:0.0 ~hi:20.0) in
  let metric = Finite_metric.line positions in
  let cost = Cost_function.linear ~n_commodities:1 ~n_sites:5 ~per_commodity:3.0 in
  let sites = List.init 10 (fun _ -> Splitmix.int rng 5) in
  let requests =
    Array.of_list
      (List.map
         (fun site ->
           Request.make ~site ~demand:(Cset.singleton ~n_commodities:1 0))
         sites)
  in
  let inst = Instance.make ~name:"1-commodity" ~metric ~cost ~requests in
  let indep = Simulator.run (module Indep_baseline) inst in
  let fot = Omflp_ofl.Fotakis_pd.create metric ~opening_costs:(Array.make 5 3.0) in
  List.iter (fun s -> ignore (Omflp_ofl.Fotakis_pd.step fot s)) sites;
  let snap = Omflp_ofl.Fotakis_pd.snapshot fot in
  check_float 1e-9 "same total cost"
    (Omflp_ofl.Ofl_types.total_cost snap)
    (Run.total_cost indep)

let test_indep_pays_per_commodity () =
  (* Single point, both commodities in one request: INDEP opens two small
     facilities even though a shared one would be cheaper. *)
  let metric = Finite_metric.single_point () in
  let cost = Cost_function.constant ~n_commodities:2 ~n_sites:1 ~cost:5.0 in
  let inst =
    Instance.make ~name:"pair" ~metric ~cost
      ~requests:[| Request.make ~site:0 ~demand:(Cset.full ~n_commodities:2) |]
  in
  let run = Simulator.run (module Indep_baseline) inst in
  check_int "two facilities" 2 (List.length run.Run.facilities);
  check_float 1e-9 "pays twice" 10.0 (Run.total_cost run)

(* ---------- ALL-LARGE ---------- *)

let test_all_large_only_large () =
  let run = Simulator.run (module All_large_baseline) (line_instance 3) in
  check_int "no small" 0 (Run.n_small run);
  check_bool "at least one" true (Run.n_large run >= 1)

let test_all_large_single_point () =
  (* Always pays the full configuration once, then connects for free. *)
  let metric = Finite_metric.single_point () in
  let cost = Cost_function.linear ~n_commodities:4 ~n_sites:1 ~per_commodity:1.0 in
  let r = Request.make ~site:0 ~demand:(Cset.singleton ~n_commodities:4 0) in
  let inst = Instance.make ~name:"x" ~metric ~cost ~requests:[| r; r; r |] in
  let run = Simulator.run (module All_large_baseline) inst in
  check_int "one facility" 1 (List.length run.Run.facilities);
  check_float 1e-9 "full cost" 4.0 (Run.total_cost run)

(* ---------- GREEDY ---------- *)

let test_greedy_validates () =
  ignore (Simulator.run (module Greedy_baseline) (line_instance 4))

let test_greedy_opens_demand_config () =
  (* First request on a single point: cheapest option is its own demand
     configuration. *)
  let metric = Finite_metric.single_point () in
  let cost = Cost_function.power_law ~n_commodities:4 ~n_sites:1 ~x:1.0 in
  let inst =
    Instance.make ~name:"g" ~metric ~cost
      ~requests:
        [| Request.make ~site:0 ~demand:(Cset.of_list ~n_commodities:4 [ 0; 1 ]) |]
  in
  let run = Simulator.run (module Greedy_baseline) inst in
  check_float 1e-9 "sqrt 2" (sqrt 2.0) (Run.total_cost run);
  check_int "one facility" 1 (List.length run.Run.facilities)

let test_greedy_reuses_facility () =
  let metric = Finite_metric.single_point () in
  let cost = Cost_function.power_law ~n_commodities:4 ~n_sites:1 ~x:1.0 in
  let r = Request.make ~site:0 ~demand:(Cset.of_list ~n_commodities:4 [ 0; 1 ]) in
  let inst = Instance.make ~name:"g2" ~metric ~cost ~requests:[| r; r |] in
  let run = Simulator.run (module Greedy_baseline) inst in
  check_float 1e-9 "no second purchase" (sqrt 2.0) (Run.total_cost run)

(* ---------- Cross-algorithm comparisons ---------- *)

let test_linear_cost_indep_equals_pd () =
  (* Linear construction cost: combining commodities brings no advantage
     to OPT, and PD-OMFLP stays within a constant factor of the
     per-commodity baseline (Section 3.3, x = 2). PD can still reinvest
     pooled duals into large facilities (Constraint (4)), so per-instance
     domination does not hold — only a constant-factor relation. *)
  for seed = 0 to 5 do
    let rng = Splitmix.of_int (100 + seed) in
    let inst =
      Generators.line rng ~n_sites:5 ~n_requests:10 ~n_commodities:3
        ~length:15.0
        ~demand:(Demand.Bernoulli { p = 0.5 })
        ~cost:(fun ~n_commodities ~n_sites ->
          Cost_function.linear ~n_commodities ~n_sites ~per_commodity:2.0)
    in
    let pd = Simulator.run (module Pd_omflp) inst in
    let indep = Simulator.run (module Indep_baseline) inst in
    check_bool
      (Printf.sprintf "seed %d: pd within 4x of indep" seed)
      true
      (Run.total_cost pd <= (4.0 *. Run.total_cost indep) +. 1e-6)
  done

let test_theorem2_separation () =
  (* |S'| = |S| regime: predicting algorithms beat non-predicting ones by
     a Theta(sqrt|S|) factor. *)
  let rng = Splitmix.of_int 8 in
  let inst =
    Generators.single_point_adversary rng ~n_commodities:64
      ~cost:Cost_function.theorem2 ~n_requested:64
  in
  let pd = Run.total_cost (Simulator.run (module Pd_omflp) inst) in
  let indep = Run.total_cost (Simulator.run (module Indep_baseline) inst) in
  let greedy = Run.total_cost (Simulator.run (module Greedy_baseline) inst) in
  check_float 1e-9 "indep pays |S|" 64.0 indep;
  check_float 1e-9 "greedy pays |S|" 64.0 greedy;
  check_bool "pd four times better" true (pd *. 4.0 <= indep +. 1e-9)

let () =
  Alcotest.run "baselines"
    [
      ( "indep",
        [
          Alcotest.test_case "only small facilities" `Quick test_indep_only_small;
          Alcotest.test_case "matches Fotakis (|S|=1)" `Quick
            test_indep_matches_fotakis_on_one_commodity;
          Alcotest.test_case "pays per commodity" `Quick test_indep_pays_per_commodity;
        ] );
      ( "all_large",
        [
          Alcotest.test_case "only large facilities" `Quick test_all_large_only_large;
          Alcotest.test_case "single point" `Quick test_all_large_single_point;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "validates" `Quick test_greedy_validates;
          Alcotest.test_case "opens demand config" `Quick test_greedy_opens_demand_config;
          Alcotest.test_case "reuses facility" `Quick test_greedy_reuses_facility;
        ] );
      ( "comparisons",
        [
          Alcotest.test_case "linear: PD <= INDEP" `Quick
            test_linear_cost_indep_equals_pd;
          Alcotest.test_case "theorem2 separation" `Quick test_theorem2_separation;
        ] );
    ]
