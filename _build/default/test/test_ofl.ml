open Omflp_prelude
open Omflp_metric
open Omflp_ofl

let check_float tol = Alcotest.(check (float tol))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Offline single-commodity facility location OPT by brute force: enumerate
   facility subsets (small site counts only). *)
let offline_opt metric opening_costs request_sites =
  let n = Finite_metric.size metric in
  let best = ref infinity in
  for mask = 1 to (1 lsl n) - 1 do
    let build = ref 0.0 in
    for m = 0 to n - 1 do
      if mask land (1 lsl m) <> 0 then build := !build +. opening_costs.(m)
    done;
    let assign =
      List.fold_left
        (fun acc site ->
          let d = ref infinity in
          for m = 0 to n - 1 do
            if mask land (1 lsl m) <> 0 then
              d := Float.min !d (Finite_metric.dist metric site m)
          done;
          acc +. !d)
        0.0 request_sites
    in
    if !build +. assign < !best then best := !build +. assign
  done;
  !best

let run_algo (module A : Ofl_types.ALGORITHM) metric opening_costs sites =
  let t = A.create metric ~opening_costs in
  List.iter (fun s -> ignore (A.step t s)) sites;
  A.snapshot t

(* ---------- Fotakis primal-dual ---------- *)

let test_fotakis_single_site () =
  let metric = Finite_metric.single_point () in
  let run = run_algo (module Fotakis_pd) metric [| 5.0 |] [ 0; 0; 0 ] in
  check_float 1e-9 "construction" 5.0 run.Ofl_types.construction_cost;
  check_float 1e-9 "assignment" 0.0 run.Ofl_types.assignment_cost;
  check_int "one facility" 1 (List.length run.Ofl_types.facilities)

let test_fotakis_prefers_cheap_site () =
  (* Request at site 0; site 1 nearby and much cheaper to open. *)
  let metric = Finite_metric.line [| 0.0; 1.0 |] in
  let run = run_algo (module Fotakis_pd) metric [| 100.0; 1.0 |] [ 0 ] in
  Alcotest.(check (list int)) "opens site 1" [ 1 ] run.Ofl_types.facilities;
  check_float 1e-9 "assignment = distance" 1.0 run.Ofl_types.assignment_cost

let test_fotakis_connects_when_cheap () =
  let metric = Finite_metric.line [| 0.0; 0.5 |] in
  let run = run_algo (module Fotakis_pd) metric [| 10.0; 10.0 |] [ 0; 1; 0; 1 ] in
  (* After the first facility opens, later nearby requests connect. *)
  check_int "one facility" 1 (List.length run.Ofl_types.facilities)

let test_fotakis_duals_length () =
  let metric = Finite_metric.line [| 0.0; 3.0 |] in
  let t = Fotakis_pd.create metric ~opening_costs:[| 2.0; 2.0 |] in
  ignore (Fotakis_pd.step t 0);
  ignore (Fotakis_pd.step t 1);
  check_int "duals" 2 (List.length (Fotakis_pd.duals t))

let test_fotakis_cost_arity () =
  let metric = Finite_metric.line [| 0.0; 3.0 |] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Fotakis_pd.create: opening_costs arity mismatch")
    (fun () -> ignore (Fotakis_pd.create metric ~opening_costs:[| 1.0 |]))

(* ---------- Meyerson ---------- *)

let test_meyerson_coverage () =
  let metric = Finite_metric.line [| 0.0; 2.0; 7.0 |] in
  let t =
    Meyerson.create_seeded metric ~opening_costs:[| 3.0; 3.0; 3.0 |]
      ~rng:(Splitmix.of_int 1)
  in
  List.iter
    (fun s ->
      let d = Meyerson.step t s in
      check_bool "finite assignment" true (d < infinity))
    [ 0; 1; 2; 0; 1; 2 ];
  let run = Meyerson.snapshot t in
  check_bool "opened something" true (run.Ofl_types.facilities <> [])

let test_meyerson_free_sites () =
  (* Zero-cost facilities: every request should be served at distance 0
     once its own site's class is free. *)
  let metric = Finite_metric.line [| 0.0; 5.0 |] in
  let t =
    Meyerson.create_seeded metric ~opening_costs:[| 0.0; 0.0 |]
      ~rng:(Splitmix.of_int 2)
  in
  check_float 1e-9 "first" 0.0 (Meyerson.step t 0);
  check_float 1e-9 "second" 0.0 (Meyerson.step t 1)

let test_meyerson_deterministic_given_seed () =
  let metric = Finite_metric.line [| 0.0; 1.0; 4.0; 9.0 |] in
  let costs = [| 2.0; 3.0; 2.0; 5.0 |] in
  let go seed =
    let t = Meyerson.create_seeded metric ~opening_costs:costs ~rng:(Splitmix.of_int seed) in
    List.iter (fun s -> ignore (Meyerson.step t s)) [ 0; 2; 3; 1; 0 ];
    Ofl_types.total_cost (Meyerson.snapshot t)
  in
  check_float 1e-12 "same seed, same run" (go 7) (go 7)

(* ---------- Competitiveness on random instances ---------- *)

let random_case seed =
  let rng = Splitmix.of_int seed in
  let n = 2 + Splitmix.int rng 5 in
  let metric =
    Finite_metric.line (Array.init n (fun _ -> Sampler.uniform_float rng ~lo:0.0 ~hi:20.0))
  in
  let costs = Array.init n (fun _ -> Sampler.uniform_float rng ~lo:0.5 ~hi:8.0) in
  let n_req = 1 + Splitmix.int rng 12 in
  let sites = List.init n_req (fun _ -> Splitmix.int rng n) in
  (metric, costs, sites)

let prop_fotakis_competitive =
  (* O(log n) with small constants; assert a generous concrete bound. *)
  QCheck.Test.make ~name:"fotakis within 15*H_n of offline OPT" ~count:100
    QCheck.small_int (fun seed ->
      let metric, costs, sites = random_case seed in
      let run = run_algo (module Fotakis_pd) metric costs sites in
      let opt = offline_opt metric costs sites in
      Ofl_types.total_cost run
      <= (15.0 *. Numerics.harmonic (List.length sites) *. opt) +. 1e-6)

let prop_fotakis_at_least_opt =
  QCheck.Test.make ~name:"online cost >= offline OPT" ~count:100
    QCheck.small_int (fun seed ->
      let metric, costs, sites = random_case seed in
      let run = run_algo (module Fotakis_pd) metric costs sites in
      let opt = offline_opt metric costs sites in
      Ofl_types.total_cost run >= opt -. 1e-6)

let prop_meyerson_competitive_on_average =
  (* Average over seeds; Meyerson is O(log n / log log n) in expectation. *)
  QCheck.Test.make ~name:"meyerson mean within 15*H_n of OPT" ~count:30
    QCheck.small_int (fun seed ->
      let metric, costs, sites = random_case seed in
      let opt = offline_opt metric costs sites in
      let total = ref 0.0 in
      let reps = 20 in
      for r = 1 to reps do
        let t =
          Meyerson.create_seeded metric ~opening_costs:costs
            ~rng:(Splitmix.of_int ((seed * 131) + r))
        in
        List.iter (fun s -> ignore (Meyerson.step t s)) sites;
        total := !total +. Ofl_types.total_cost (Meyerson.snapshot t)
      done;
      !total /. float_of_int reps
      <= (15.0 *. Numerics.harmonic (List.length sites) *. opt) +. 1e-6)

let () =
  Alcotest.run "ofl"
    [
      ( "fotakis_pd",
        [
          Alcotest.test_case "single site" `Quick test_fotakis_single_site;
          Alcotest.test_case "prefers cheap site" `Quick test_fotakis_prefers_cheap_site;
          Alcotest.test_case "connects when cheap" `Quick test_fotakis_connects_when_cheap;
          Alcotest.test_case "duals exposed" `Quick test_fotakis_duals_length;
          Alcotest.test_case "arity validation" `Quick test_fotakis_cost_arity;
        ] );
      ( "meyerson",
        [
          Alcotest.test_case "coverage" `Quick test_meyerson_coverage;
          Alcotest.test_case "free sites" `Quick test_meyerson_free_sites;
          Alcotest.test_case "seeded determinism" `Quick
            test_meyerson_deterministic_given_seed;
        ] );
      ( "competitiveness",
        [
          QCheck_alcotest.to_alcotest prop_fotakis_competitive;
          QCheck_alcotest.to_alcotest prop_fotakis_at_least_opt;
          QCheck_alcotest.to_alcotest prop_meyerson_competitive_on_average;
        ] );
    ]
