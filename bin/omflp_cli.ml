(* omflp — command-line front end: run online algorithms, solve offline,
   and regenerate the paper's experiments. *)

open Cmdliner
open Omflp_prelude
open Omflp_instance

let make_cost kind ~n_commodities ~n_sites =
  match kind with
  | "linear" ->
      Omflp_commodity.Cost_function.linear ~n_commodities ~n_sites
        ~per_commodity:1.0
  | "constant" ->
      Omflp_commodity.Cost_function.constant ~n_commodities ~n_sites ~cost:1.0
  | "theorem2" -> Omflp_commodity.Cost_function.theorem2 ~n_commodities ~n_sites
  | s when String.length s > 2 && String.sub s 0 2 = "x=" ->
      let x = float_of_string (String.sub s 2 (String.length s - 2)) in
      Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites ~x
  | other ->
      invalid_arg
        (Printf.sprintf
           "unknown cost %S (use linear | constant | theorem2 | x=<v>)" other)

let make_instance ~family ~seed ~n_sites ~n_requests ~n_commodities ~cost_kind =
  let rng = Splitmix.of_int seed in
  let cost = make_cost cost_kind in
  match family with
  | "adversary" -> Generators.theorem2 rng ~n_commodities
  | "line" ->
      Generators.line rng ~n_sites ~n_requests ~n_commodities ~length:100.0
        ~demand:
          (Demand.Zipf_bundle { zipf_s = 1.0; max_size = min 3 n_commodities })
        ~cost
  | "clustered" ->
      Generators.clustered rng ~clusters:(max 2 (n_sites / 4))
        ~per_cluster:4 ~n_requests ~n_commodities ~side:100.0 ~spread:2.0 ~cost
  | "network" ->
      Generators.network rng ~n_sites ~extra_edges:(n_sites / 2) ~n_requests
        ~n_commodities
        ~demand:(Demand.Bernoulli { p = 0.4 })
        ~cost
  | "uniform" ->
      Generators.uniform_metric rng ~n_sites ~d:10.0 ~n_requests ~n_commodities
        ~demand:(Demand.Bernoulli { p = 0.4 })
        ~cost
  | other ->
      invalid_arg
        (Printf.sprintf
           "unknown family %S (adversary | line | clustered | network | uniform)"
           other)

(* Shared argument definitions. The cross-command flags — --seed,
   --jobs, --metrics, --trace — live in lib/cli (Cli_flags) so every
   subcommand parses and errors identically; instance-shape flags stay
   here. *)
module Cli_flags = Omflp_cli_support.Cli_flags

let seed_arg = Cli_flags.seed_arg
let jobs_arg = Cli_flags.jobs_arg
let metrics_arg = Cli_flags.metrics_arg
let trace_arg = Cli_flags.trace_arg
let with_obs = Cli_flags.with_obs

let family_arg =
  Arg.(
    value
    & opt string "line"
    & info [ "family" ]
        ~doc:"Instance family: adversary | line | clustered | network | uniform.")

(* Problem-family flag shared by check and bench: validated here so both
   commands refuse an unknown family with the same message. *)
let problem_family_of_flag ~flag s =
  match s with
  | "all" -> None
  | s -> (
      match Omflp_instance.Problem_env.Family.of_string s with
      | Some f -> Some f
      | None ->
          Cli_flags.die
            (Printf.sprintf
               "omflp: %s: expected omflp|nonmetric-fl|leasing|all, got %S"
               flag s))

(* Resolve --algo NAME against the registry and the instance's problem
   family; both failure modes are usage errors, not internal ones. *)
let algo_for_instance name inst =
  match Omflp_core.Registry.find name with
  | Error e ->
      Cli_flags.die ("omflp: " ^ Omflp_core.Registry.unknown_algo_message e)
  | Ok a ->
      let (module A : Omflp_core.Algo_intf.ALGO) = a in
      if A.family <> Instance.family inst then
        Cli_flags.die
          ("omflp: "
          ^ Omflp_instance.Problem_env.mismatch_message ~algo:name
              ~declared:A.family ~got:(Instance.family inst));
      a

let sites_arg =
  Arg.(value & opt int 12 & info [ "sites" ] ~doc:"Number of metric points.")

let requests_arg =
  Arg.(value & opt int 30 & info [ "requests" ] ~doc:"Number of requests.")

let commodities_arg =
  Arg.(value & opt int 6 & info [ "commodities" ] ~doc:"Number of commodities |S|.")

let cost_arg =
  Arg.(
    value
    & opt string "x=1"
    & info [ "cost" ]
        ~doc:"Construction cost: linear | constant | theorem2 | x=<v> (power law).")

(* omflp run *)
let run_cmd =
  let algo_arg =
    Arg.(
      value
      & opt string "all"
      & info [ "algo" ] ~doc:"Algorithm name or 'all'.")
  in
  let action algo family seed n_sites n_requests n_commodities cost_kind
      metrics trace =
    let inst =
      make_instance ~family ~seed ~n_sites ~n_requests ~n_commodities ~cost_kind
    in
    Format.printf "%a@." Instance.pp inst;
    with_obs ~metrics ~trace (fun () ->
        let runs =
          if algo = "all" then Omflp_core.Simulator.run_all ~seed inst
          else
            let a = algo_for_instance algo inst in
            [ (algo, Omflp_core.Simulator.run ~seed a inst) ]
        in
        let bracket = Omflp_offline.Opt_estimate.bracket inst in
        Printf.printf "offline bracket: [%.4g, %.4g] (%s / %s)\n" bracket.lower
          bracket.upper bracket.lower_method bracket.upper_method;
        List.iter
          (fun (_, run) ->
            Format.printf "%a  ratio<=%.3f@." Omflp_core.Run.pp run
              (Omflp_core.Run.total_cost run /. bracket.upper))
          runs)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run online algorithm(s) on a generated instance.")
    Term.(
      const action $ algo_arg $ family_arg $ seed_arg $ sites_arg
      $ requests_arg $ commodities_arg $ cost_arg $ metrics_arg $ trace_arg)

(* omflp solve *)
let solve_cmd =
  let action family seed n_sites n_requests n_commodities cost_kind =
    let inst =
      make_instance ~family ~seed ~n_sites ~n_requests ~n_commodities ~cost_kind
    in
    Format.printf "%a@." Instance.pp inst;
    let greedy = Omflp_offline.Greedy_offline.solve inst in
    Printf.printf "greedy offline: cost %.4g with %d facilities\n" greedy.cost
      (List.length greedy.facilities);
    let ls = Omflp_offline.Local_search.improve inst greedy.facilities in
    Printf.printf "+ local search: cost %.4g (%d moves)\n" ls.cost ls.moves;
    let bracket = Omflp_offline.Opt_estimate.bracket inst in
    Printf.printf "bracket: [%.4g, %.4g] (%s / %s)%s\n" bracket.lower
      bracket.upper bracket.lower_method bracket.upper_method
      (if Omflp_offline.Opt_estimate.certified bracket then " [exact]" else "")
  in
  Cmd.v (Cmd.info "solve" ~doc:"Solve a generated instance offline.")
    Term.(
      const action $ family_arg $ seed_arg $ sites_arg $ requests_arg
      $ commodities_arg $ cost_arg)

(* omflp gen *)
let gen_cmd =
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~doc:"Output file for the instance.")
  in
  let action out family seed n_sites n_requests n_commodities cost_kind =
    let inst =
      make_instance ~family ~seed ~n_sites ~n_requests ~n_commodities ~cost_kind
    in
    Serial.save_file out inst;
    Format.printf "wrote %a to %s@." Instance.pp inst out
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate an instance and save it to a file.")
    Term.(
      const action $ out_arg $ family_arg $ seed_arg $ sites_arg
      $ requests_arg $ commodities_arg $ cost_arg)

(* omflp replay *)
let replay_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Instance file written by 'omflp gen'.")
  in
  let algo_arg =
    Arg.(value & opt string "all" & info [ "algo" ] ~doc:"Algorithm name or 'all'.")
  in
  let action file algo seed metrics trace =
    let inst = Serial.load_file file in
    Format.printf "%a@." Instance.pp inst;
    with_obs ~metrics ~trace (fun () ->
        let runs =
          if algo = "all" then Omflp_core.Simulator.run_all ~seed inst
          else
            let a = algo_for_instance algo inst in
            [ (algo, Omflp_core.Simulator.run ~seed a inst) ]
        in
        List.iter (fun (_, run) -> Format.printf "%a@." Omflp_core.Run.pp run) runs)
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Load a saved instance and run algorithm(s) on it.")
    Term.(const action $ file_arg $ algo_arg $ seed_arg $ metrics_arg $ trace_arg)

(* omflp stats *)
let stats_cmd =
  let file_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~doc:"Instance file; omit to generate one instead.")
  in
  let action file family seed n_sites n_requests n_commodities cost_kind =
    let inst =
      match file with
      | Some f -> Serial.load_file f
      | None ->
          make_instance ~family ~seed ~n_sites ~n_requests ~n_commodities
            ~cost_kind
    in
    Format.printf "%a@.%a@." Instance.pp inst Instance_stats.pp
      (Instance_stats.compute inst);
    let heavy = Omflp_core.Heavy.detect inst.Instance.cost in
    if Omflp_commodity.Cset.is_empty heavy then
      Format.printf "no heavy commodities detected@."
    else
      Format.printf "heavy commodities: %a@." Omflp_commodity.Cset.pp heavy
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Describe an instance's demand structure.")
    Term.(
      const action $ file_arg $ family_arg $ seed_arg $ sites_arg
      $ requests_arg $ commodities_arg $ cost_arg)

(* omflp exp *)
let exp_cmd =
  let which_arg =
    Arg.(
      value
      & opt string "all"
      & info [ "id"; "which" ]
          ~doc:"Experiment id: e1 | e2 | e3 | e4 | e5 | e6 | e8 | e9 | e10 | e11 | all.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sizes and repetitions.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv-dir" ]
          ~doc:"Also write each table as CSV into this directory.")
  in
  let action which quick csv_dir jobs =
    Cli_flags.apply_jobs jobs;
    let sections = Omflp_experiments.Suite.run ~quick ~which () in
    List.iter Omflp_experiments.Exp_common.print_section sections;
    match csv_dir with
    | None -> ()
    | Some dir ->
        List.iter
          (fun section ->
            let path = Omflp_experiments.Export.write_csv ~dir section in
            Printf.printf "wrote %s\n" path)
          sections
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Regenerate the paper's experiment tables/figures.")
    Term.(const action $ which_arg $ quick_arg $ csv_arg $ jobs_arg)

(* omflp check — differential oracle fuzzing (lib/check) *)
let check_cmd =
  let budget_arg =
    Arg.(
      value & opt int 200
      & info [ "budget" ] ~docv:"N"
          ~doc:"Number of fresh random scenarios to generate and check.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt string Omflp_check.Corpus.default_dir
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Replay corpus directory: failing instances found earlier are \
             re-checked first, and new (shrunk) failures are saved here.")
  in
  let no_replay_arg =
    Arg.(
      value & flag
      & info [ "no-replay" ] ~doc:"Skip the initial corpus replay pass.")
  in
  let no_shrink_arg =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:"Save failing instances as generated, without minimization.")
  in
  let det_arg =
    Arg.(
      value & opt int 4
      & info [ "determinism-sample" ] ~docv:"K"
          ~doc:
            "Re-run the first $(docv) scenarios under a pool with a \
             different job count and require byte-identical run digests; 0 \
             disables the cross-check.")
  in
  let arrival_arg =
    Arg.(
      value & opt string "all"
      & info [ "arrival" ] ~docv:"MODEL"
          ~doc:
            "Restrict the scenario stream's arrival axis: $(b,adversarial) \
             (in-order/reversed), $(b,random-order), $(b,iid), or \
             $(b,all) (default) to mix the three models.")
  in
  let pfamily_arg =
    Arg.(
      value & opt string "all"
      & info [ "problem-family" ] ~docv:"FAMILY"
          ~doc:
            "Force every fresh scenario into one problem family: \
             $(b,omflp), $(b,nonmetric-fl), $(b,leasing); $(b,all) \
             (default) keeps the unforced plain-OMFLP stream. The oracle \
             checks each instance with the registered algorithms of its \
             family.")
  in
  let action budget seed corpus no_replay no_shrink det_sample arrival pfamily
      jobs metrics trace =
    Cli_flags.apply_jobs jobs;
    Cli_flags.or_die (Cli_flags.validate_nonneg ~flag:"--budget" budget);
    let family = problem_family_of_flag ~flag:"--problem-family" pfamily in
    let arrival =
      match arrival with
      | "all" -> None
      | s -> (
          match Omflp_check.Scenario.forced_of_string s with
          | Some _ as f -> f
          | None ->
              Cli_flags.or_die
                (Error
                   (Printf.sprintf
                      "--arrival: expected adversarial|random-order|iid|all, \
                       got %S"
                      s));
              None)
    in
    let report =
      with_obs ~metrics ~trace (fun () ->
          Omflp_check.Check_engine.run ~corpus_dir:(Some corpus)
            ~replay:(not no_replay) ~shrink:(not no_shrink)
            ~determinism_sample:det_sample ?arrival ?family ~budget ~seed ())
    in
    Printf.printf
      "checked %d scenario(s), replayed %d corpus case(s), determinism x%d: \
       %d violation(s)\n"
      report.scenarios report.replays report.determinism_checked
      (List.length report.findings);
    if report.findings <> [] then begin
      let table =
        Texttable.create
          [ "check"; "algorithm"; "sites"; "reqs"; "comm"; "shrink"; "replay" ]
      in
      List.iter
        (fun (f : Omflp_check.Check_engine.finding) ->
          let dims g = Option.fold ~none:"-" ~some:(fun i -> string_of_int (g i))
              f.instance
          in
          Texttable.add_row table
            [
              f.violation.check;
              f.violation.algo;
              dims Instance.n_sites;
              dims Instance.n_requests;
              dims Instance.n_commodities;
              Texttable.cell_i f.shrink_steps;
              Option.value f.replay_path ~default:"-";
            ])
        report.findings;
      Texttable.print table;
      print_newline ();
      List.iter
        (fun (f : Omflp_check.Check_engine.finding) ->
          Printf.printf "%s [%s] %s\n  scenario: %s\n" f.violation.check
            f.violation.algo f.violation.detail f.scenario;
          Option.iter (Printf.printf "  replay: omflp replay %s\n")
            f.replay_path)
        report.findings;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Fuzz every registered algorithm against the offline/dual oracles \
          (randomized conformance checking with shrinking and replay).")
    Term.(
      const action $ budget_arg $ seed_arg $ corpus_arg $ no_replay_arg
      $ no_shrink_arg $ det_arg $ arrival_arg $ pfamily_arg $ jobs_arg
      $ metrics_arg $ trace_arg)

(* omflp bench — the lib/benchkit harness (tables + E7 + regression gate) *)
let bench_cmd =
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Smaller experiment sizes and shorter bechamel quotas.")
  in
  let tables_only_arg =
    Arg.(
      value & flag
      & info [ "tables-only" ]
          ~doc:"Only regenerate the experiment tables (E1-E6, E8-E11).")
  in
  let bench_only_arg =
    Arg.(
      value & flag
      & info [ "bench-only" ]
          ~doc:"Only run the microbenchmarks and work counters (E7).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write machine-readable results (schema omflp.bench.v1: \
             ns/run rows + E7b work counters) to $(docv).")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Diff ns/run rows against this omflp.bench.v1 file (e.g. the \
             committed BENCH_BASELINE.json) and exit 1 if any shared row \
             regressed past --max-regression.")
  in
  let max_regression_arg =
    Arg.(
      value
      & opt float (100.0 *. Omflp_benchkit.Benchkit.default_max_regression)
      & info [ "max-regression" ] ~docv:"PCT"
          ~doc:"Allowed slowdown per benchmark row, in percent.")
  in
  let pfamily_arg =
    Arg.(
      value & opt string "all"
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Restrict the bechamel rows to one problem family: $(b,omflp) \
             runs the classic suite, $(b,nonmetric-fl) or $(b,leasing) \
             only that family's E12 rows, $(b,all) (default) everything.")
  in
  let action quick tables_only bench_only jobs json baseline max_regression
      pfamily =
    Cli_flags.or_die (Cli_flags.validate_jobs jobs);
    if tables_only && bench_only then
      Cli_flags.die (Cli_flags.conflict_error "--tables-only" "--bench-only");
    if max_regression < 0.0 then
      Cli_flags.die "omflp: --max-regression must be >= 0";
    let family = problem_family_of_flag ~flag:"--family" pfamily in
    exit
      (Omflp_benchkit.Benchkit.run
         {
           quick;
           tables_only;
           bench_only;
           jobs;
           json_path = json;
           baseline_path = baseline;
           max_regression = max_regression /. 100.0;
           family;
         })
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the benchmark harness: experiment tables, E7 microbenchmarks, \
          work counters, and (with --baseline) the perf regression gate.")
    Term.(
      const action $ quick_arg $ tables_only_arg $ bench_only_arg $ jobs_arg
      $ json_arg $ baseline_arg $ max_regression_arg $ pfamily_arg)

(* omflp selfcheck *)
let selfcheck_cmd =
  let action seed =
    let inst =
      make_instance ~family:"clustered" ~seed ~n_sites:8 ~n_requests:20
        ~n_commodities:5 ~cost_kind:"x=1"
    in
    List.iter
      (fun (name, run) ->
        match Omflp_core.Simulator.validate inst run with
        | Ok () -> Printf.printf "%-10s valid (cost %.4g)\n" name
                     (Omflp_core.Run.total_cost run)
        | Error e -> Printf.printf "%-10s INVALID: %s\n" name e)
      (Omflp_core.Simulator.run_all ~seed inst);
    (* PD-specific theory checks. *)
    let t = Omflp_core.Pd_omflp.create (Instance.env inst) in
    Array.iter
      (fun r -> ignore (Omflp_core.Pd_omflp.step t r))
      inst.Instance.requests;
    (match Omflp_core.Dual_checker.corollary8 t with
    | Ok () -> print_endline "Corollary 8 (cost <= 3*duals): ok"
    | Error e -> print_endline ("Corollary 8 FAILED: " ^ e));
    match
      Omflp_core.Dual_checker.scaled_dual_feasible inst.Instance.metric
        inst.Instance.cost
        (Omflp_core.Pd_omflp.dual_records t)
    with
    | Ok () -> print_endline "Corollary 17 (scaled duals feasible): ok"
    | Error (m, sigma) ->
        Format.printf "Corollary 17 FAILED at site %d, sigma %a@." m
          Omflp_commodity.Cset.pp sigma
  in
  Cmd.v
    (Cmd.info "selfcheck" ~doc:"Run validity and theory checks on a sample instance.")
    Term.(const action $ seed_arg)

(* omflp serve *)
let serve_cmd =
  let module Serve = Omflp_serve in
  let algo_arg =
    Arg.(
      value
      & opt string "PD-OMFLP"
      & info [ "algo" ] ~docv:"NAME" ~doc:"Algorithm to serve with.")
  in
  let env_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "env" ] ~docv:"FILE"
          ~doc:
            "Instance file ('omflp gen') supplying the metric space and \
             cost function. Its request list is ignored: requests arrive \
             as JSON lines on stdin.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"DIR"
          ~doc:
            "Durable session directory: write-ahead request log, decision \
             log, and periodic state snapshots. A killed session restarted \
             with --resume continues its exact decision stream.")
  in
  let snapshot_every_arg =
    Arg.(
      value
      & opt int 16
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Snapshot the algorithm state every $(docv) requests.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume the session in --checkpoint: restore the latest \
             snapshot, replay the uncovered WAL suffix, re-emit decisions \
             lost in the crash window, and skip that many already-served \
             leading input lines.")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Serve many concurrent sessions over a socket instead of one \
             over stdin: a path is a Unix-domain socket, HOST:PORT is TCP. \
             Each connection opens with a session handshake line; with \
             --checkpoint DIR every session checkpoints under DIR/ID. \
             Stdin mode is exactly this with one anonymous session.")
  in
  let max_sessions_arg =
    Arg.(
      value
      & opt int 1024
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:
            "Refuse handshakes beyond $(docv) concurrent sessions \
             (--listen only).")
  in
  let queue_depth_arg =
    Arg.(
      value
      & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Per-connection request-queue bound; a full queue stops \
             reading that connection until its session catches up \
             (--listen only).")
  in
  let workers_arg =
    Arg.(
      value
      & opt int 4
      & info [ "workers" ] ~docv:"N"
          ~doc:"Serving domains for --listen mode.")
  in
  let action algo env checkpoint snapshot_every resume listen max_sessions
      queue_depth workers seed metrics trace =
    if snapshot_every <= 0 then
      Cli_flags.die "omflp: --snapshot-every must be >= 1";
    if resume && checkpoint = None then
      Cli_flags.die "omflp: --resume requires --checkpoint";
    if resume && listen <> None then
      Cli_flags.die
        "omflp: --resume is per-session in --listen mode (use the \
         handshake's \"resume\":true instead)";
    let inst = Serial.load_file env in
    let penv = Instance.env inst in
    let n_sites = Instance.n_sites inst in
    let n_commodities = Instance.n_commodities inst in
    let algo_m =
      match Omflp_core.Registry.find algo with
      | Ok a -> a
      | Error e ->
          Cli_flags.die
            ("omflp: " ^ Omflp_core.Registry.unknown_algo_message e)
    in
    let (module A : Omflp_core.Algo_intf.ALGO) = algo_m in
    let instance_md5 = Digest.to_hex (Digest.file env) in
    match listen with
    | Some addr -> (
        match
          with_obs ~metrics ~trace (fun () ->
              Serve.Server.run
                {
                  Serve.Server.listen = addr;
                  algo;
                  env = inst;
                  instance_md5;
                  checkpoint_root = checkpoint;
                  snapshot_every;
                  seed;
                  max_sessions;
                  queue_depth;
                  workers;
                })
        with
        | () -> ()
        | exception (Failure msg | Invalid_argument msg) ->
            Cli_flags.die ("omflp serve: " ^ msg))
    | None -> (
    match
      with_obs ~metrics ~trace (fun () ->
        let session, skip, reemit =
          match checkpoint with
          | None -> (Serve.Session.create ~algo:algo_m ~seed penv, 0, [])
          | Some dir ->
              if resume then begin
                let rz =
                  Serve.Checkpoint.open_resume ~dir ~n_sites ~n_commodities
                    ~instance_md5
                in
                let s, lost = Serve.Session.resume ~algo:algo_m rz penv in
                (s, Serve.Session.count s, lost)
              end
              else begin
                let cp =
                  Serve.Checkpoint.create ~dir ~algo:A.name ~seed:(Some seed)
                    ~instance_md5 ~snapshot_every
                in
                ( Serve.Session.create ~algo:algo_m ~seed ~checkpoint:cp penv,
                  0,
                  [] )
              end
        in
        (* Decisions that were served before the crash but not yet durable:
           the client never saw their records survive, so re-emit them
           (canonical form — replay has no meaningful latency). *)
        List.iter
          (fun d -> print_endline (Serve.Wire.decision_to_json d))
          reemit;
        if reemit <> [] then flush stdout;
        let line_no = ref 0 in
        let skipped = ref 0 in
        (try
           while true do
             let line = input_line stdin in
             incr line_no;
             if String.trim line <> "" then begin
               if !skipped < skip then incr skipped
               else
                 match
                   Serve.Wire.parse_request ~n_sites ~n_commodities line
                 with
                 | Error e ->
                     Printf.eprintf "omflp serve: stdin line %d: %s\n%!"
                       !line_no e
                 | Ok r ->
                     let t0 = Omflp_obs.Metrics.now () in
                     let d = Serve.Session.handle session r in
                     let latency_s = Omflp_obs.Metrics.now () -. t0 in
                     print_endline (Serve.Wire.decision_to_json ~latency_s d);
                     flush stdout
             end
           done
         with End_of_file -> ());
        Serve.Session.close session;
        let construction, assignment, total =
          Serve.Session.running_costs session
        in
        Printf.eprintf
          "omflp serve: %s served %d requests; cost %.17g (construction \
           %.17g, assignment %.17g)\n\
           %!"
          A.name
          (Serve.Session.count session)
          total construction assignment)
    with
    | () -> ()
    | exception Failure msg -> Cli_flags.die ("omflp serve: " ^ msg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve requests interactively: JSON lines in, decision records \
          out, with optional crash-robust checkpoint/resume; --listen \
          multiplexes many concurrent sessions over a socket.")
    Term.(
      const action $ algo_arg $ env_arg $ checkpoint_arg $ snapshot_every_arg
      $ resume_arg $ listen_arg $ max_sessions_arg $ queue_depth_arg
      $ workers_arg $ seed_arg $ metrics_arg $ trace_arg)

(* omflp loadgen *)
let loadgen_cmd =
  let connect_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Server address ('omflp serve --listen' syntax): a Unix-domain \
             socket path or HOST:PORT.")
  in
  let env_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "env" ] ~docv:"FILE"
          ~doc:
            "Instance file ('omflp gen'); session $(i,i) replays its \
             request sequence rotated by $(i,i).")
  in
  let sessions_arg =
    Arg.(
      value & opt int 8
      & info [ "sessions" ] ~docv:"N" ~doc:"Concurrent client sessions.")
  in
  let requests_arg =
    Arg.(
      value & opt int 100
      & info [ "requests" ] ~docv:"N"
          ~doc:"Requests per session (wraps around the instance).")
  in
  let algo_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "algo" ] ~docv:"NAME"
          ~doc:"Algorithm named in the handshake; default: the server's.")
  in
  let window_arg =
    Arg.(
      value & opt int 8
      & info [ "window" ] ~docv:"N"
          ~doc:"Max in-flight requests per connection.")
  in
  let prefix_arg =
    Arg.(
      value & opt string "lg"
      & info [ "session-prefix" ] ~docv:"S" ~doc:"Session id prefix.")
  in
  let no_checkpoint_arg =
    Arg.(
      value & flag
      & info [ "no-checkpoint" ]
          ~doc:
            "Opt sessions out of checkpointing even when the server has a \
             checkpoint root.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ] ~doc:"Resume every session from its checkpoint.")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-dir" ] ~docv:"DIR"
          ~doc:
            "Also write each session's exact request stream to \
             DIR/ID.jsonl, for byte-identity replays through stdin mode.")
  in
  let action connect env sessions requests algo window prefix no_checkpoint
      resume dump_dir seed =
    let inst = Serial.load_file env in
    match
      Omflp_loadgen.Loadgen.run
        {
          Omflp_loadgen.Loadgen.connect;
          env = inst;
          sessions;
          requests_per_session = requests;
          algo;
          seed = Some seed;
          snapshot_every = None;
          checkpoint = (if no_checkpoint then Some false else None);
          resume;
          window;
          session_prefix = prefix;
          dump_dir;
        }
    with
    | Ok report -> Omflp_loadgen.Loadgen.print_report stdout report
    | Error msg -> Cli_flags.die ("omflp loadgen: " ^ msg)
    | exception (Failure msg | Invalid_argument msg) ->
        Cli_flags.die ("omflp loadgen: " ^ msg)
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive an 'omflp serve --listen' server with N concurrent \
          sessions and report throughput and latency percentiles.")
    Term.(
      const action $ connect_arg $ env_arg $ sessions_arg $ requests_arg
      $ algo_arg $ window_arg $ prefix_arg $ no_checkpoint_arg $ resume_arg
      $ dump_arg $ seed_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "omflp" ~version:"1.0.0"
             ~doc:"Online Multi-Commodity Facility Location (SPAA 2020) toolkit")
          [
            run_cmd;
            solve_cmd;
            gen_cmd;
            replay_cmd;
            stats_cmd;
            exp_cmd;
            bench_cmd;
            check_cmd;
            selfcheck_cmd;
            serve_cmd;
            loadgen_cmd;
          ]))
