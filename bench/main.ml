(* Thin front end over lib/benchkit: parses argv into a
   [Benchkit.config] and exits with [Benchkit.run]'s status. The
   cmdliner-flavoured twin lives at [omflp bench]. *)

let usage =
  "usage: main.exe [--quick] [--tables-only | --bench-only] [--jobs N] \
   [--json FILE] [--baseline FILE] [--max-regression PCT]\n\
  \  --quick               smaller experiment sizes and shorter bechamel \
   quotas\n\
  \  --tables-only         only regenerate the experiment tables (E1-E6, \
   E8-E11)\n\
  \  --bench-only          only run the microbenchmarks and work counters \
   (E7)\n\
  \  --jobs N              run experiment repetitions on N domains (default \
   1;\n\
  \                        env OMFLP_JOBS); tables are byte-identical for \
   any N\n\
  \  --json FILE           also write machine-readable results (ns/run + \
   E7b\n\
  \                        work counters) to FILE\n\
  \  --baseline FILE       diff ns/run rows against this omflp.bench.v1 \
   file\n\
  \                        (e.g. BENCH_BASELINE.json) and fail on \
   regression\n\
  \  --max-regression PCT  allowed slowdown per row in percent (default \
   25)\n"

let config =
  let open Omflp_benchkit.Benchkit in
  let cfg =
    ref
      {
        default_config with
        jobs =
          (match Sys.getenv_opt "OMFLP_JOBS" with
          | Some s -> (
              match int_of_string_opt s with
              | Some n -> n
              | None ->
                  Printf.eprintf
                    "main.exe: OMFLP_JOBS must be an integer, got %S\n" s;
                  exit 2)
          | None -> 1);
      }
  in
  let int_value flag = function
    | Some s when int_of_string_opt s <> None -> Option.get (int_of_string_opt s)
    | _ ->
        Printf.eprintf "main.exe: %s needs an integer argument\n%s" flag usage;
        exit 2
  in
  let str_value flag = function
    | Some s -> s
    | None ->
        Printf.eprintf "main.exe: %s needs a file argument\n%s" flag usage;
        exit 2
  in
  let float_value flag = function
    | Some s when float_of_string_opt s <> None ->
        Option.get (float_of_string_opt s)
    | _ ->
        Printf.eprintf "main.exe: %s needs a numeric argument\n%s" flag usage;
        exit 2
  in
  let pop = function v :: r -> (Some v, r) | [] -> (None, []) in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        cfg := { !cfg with quick = true };
        parse rest
    | "--tables-only" :: rest ->
        cfg := { !cfg with tables_only = true };
        parse rest
    | "--bench-only" :: rest ->
        cfg := { !cfg with bench_only = true };
        parse rest
    | "--jobs" :: rest ->
        let v, rest = pop rest in
        cfg := { !cfg with jobs = int_value "--jobs" v };
        parse rest
    | "--json" :: rest ->
        let v, rest = pop rest in
        cfg := { !cfg with json_path = Some (str_value "--json" v) };
        parse rest
    | "--baseline" :: rest ->
        let v, rest = pop rest in
        cfg := { !cfg with baseline_path = Some (str_value "--baseline" v) };
        parse rest
    | "--max-regression" :: rest ->
        let v, rest = pop rest in
        cfg :=
          { !cfg with max_regression = float_value "--max-regression" v /. 100.0 };
        parse rest
    | ("--help" | "-help") :: _ ->
        print_string usage;
        exit 0
    | other :: _ when String.length other >= 2 && String.sub other 0 2 = "--" ->
        Printf.eprintf "main.exe: unknown option %s\n%s" other usage;
        exit 2
    | _ :: rest -> parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !cfg.tables_only && !cfg.bench_only then begin
    Printf.eprintf
      "main.exe: --tables-only and --bench-only conflict (together they \
       would run nothing)\n%s"
      usage;
    exit 2
  end;
  if !cfg.jobs < 1 then begin
    Printf.eprintf "main.exe: --jobs must be >= 1 (got %d)\n%s" !cfg.jobs usage;
    exit 2
  end;
  if !cfg.max_regression < 0.0 then begin
    Printf.eprintf "main.exe: --max-regression must be >= 0\n%s" usage;
    exit 2
  end;
  !cfg

let () = exit (Omflp_benchkit.Benchkit.run config)
