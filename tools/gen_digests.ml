(* Regenerates test/golden/run_digests.txt: one MD5 of the full run
   digest (Oracle.run_digest) per (scenario, registered algorithm) pair
   on a fixed seed set, each scenario run by the registered algorithms of
   its family (Scenario.golden: indices 0-29 plain OMFLP, 30-32
   non-metric, 33-35 leasing). The optimization layer must never change
   these — the pin is the decision-invariance contract of every perf PR.

   Usage: dune exec tools/gen_digests.exe > test/golden/run_digests.txt *)

let master_seed = 0xD16E57

let n_scenarios = 36

let () =
  Printf.printf "# run digests: master_seed=%#x scenarios=%d\n" master_seed
    n_scenarios;
  Printf.printf "# regenerate: dune exec tools/gen_digests.exe > test/golden/run_digests.txt\n";
  for index = 0 to n_scenarios - 1 do
    let scenario = Omflp_check.Scenario.golden ~master_seed ~index in
    let fam =
      Omflp_instance.Instance.family scenario.Omflp_check.Scenario.instance
    in
    List.iter
      (fun (name, algo) ->
        if Omflp_core.Registry.family_of algo = fam then begin
          let run =
            Omflp_core.Simulator.run
              ~seed:scenario.Omflp_check.Scenario.algo_seed ~check:false algo
              scenario.Omflp_check.Scenario.instance
          in
          let md5 =
            Digest.to_hex (Digest.string (Omflp_check.Oracle.run_digest run))
          in
          Printf.printf "%02d %-14s %s\n" index name md5
        end)
      (Omflp_core.Registry.extended ())
  done
