(* Regenerates test/golden/snapshot_v2/<algo>.snap: the committed
   snapshot-codec fixtures. Each file holds the exact blob every
   registered algorithm emits after serving the first 5 requests of a
   golden check scenario of its own family (index 0 for OMFLP, 30 for
   non-metric, 33 for leasing) — test_serve pins current snapshots to
   these bytes and proves the committed bytes still restore and continue
   into the golden run digests. Regenerate ONLY on a deliberate
   wire-format change, together with a tag bump in the algorithm's codec.

   Usage: dune exec tools/gen_snapshot_fixtures.exe *)

open Omflp_instance

let master_seed = 0xD16E57

let scenario_for fam =
  let index =
    match fam with
    | Problem_env.Family.Omflp -> 0
    | Problem_env.Family.Nonmetric_fl -> 30
    | Problem_env.Family.Multi_facility_leasing -> 33
  in
  Omflp_check.Scenario.golden ~master_seed ~index

let () =
  let dir = Filename.concat "test" (Filename.concat "golden" "snapshot_v2") in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, (module A : Omflp_core.Algo_intf.ALGO)) ->
      let sc = scenario_for A.family in
      let inst = sc.Omflp_check.Scenario.instance in
      let seed = sc.Omflp_check.Scenario.algo_seed in
      let cut = min 5 (Instance.n_requests inst) in
      let t = A.create ~seed (Instance.env inst) in
      for i = 0 to cut - 1 do
        ignore (A.step t inst.Instance.requests.(i))
      done;
      let blob = A.snapshot t in
      let path = Filename.concat dir (String.lowercase_ascii name ^ ".snap") in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc blob);
      Printf.printf "wrote %s (%d bytes)\n" path (String.length blob))
    (Omflp_core.Registry.extended ())
