(* Regenerates test/golden/snapshot_v2/<algo>.snap: the committed
   snapshot-codec fixtures. Each file holds the exact blob every
   registered algorithm emits after serving the first 5 requests of
   check scenario 0 — test_serve pins current snapshots to these bytes
   and proves the committed bytes still restore and continue into the
   golden run digests. Regenerate ONLY on a deliberate wire-format
   change, together with a tag bump in the algorithm's codec.

   Usage: dune exec tools/gen_snapshot_fixtures.exe *)

open Omflp_instance

let master_seed = 0xD16E57

let () =
  let dir = Filename.concat "test" (Filename.concat "golden" "snapshot_v2") in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let sc = Omflp_check.Scenario.generate ~master_seed ~index:0 () in
  let inst = sc.Omflp_check.Scenario.instance in
  let seed = sc.Omflp_check.Scenario.algo_seed in
  let cut = min 5 (Instance.n_requests inst) in
  List.iter
    (fun (name, (module A : Omflp_core.Algo_intf.ALGO)) ->
      let t = A.create ~seed inst.Instance.metric inst.Instance.cost in
      for i = 0 to cut - 1 do
        ignore (A.step t inst.Instance.requests.(i))
      done;
      let blob = A.snapshot t in
      let path = Filename.concat dir (String.lowercase_ascii name ^ ".snap") in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc blob);
      Printf.printf "wrote %s (%d bytes)\n" path (String.length blob))
    (Omflp_core.Registry.extended ())
