(** Concurrent load generator for [omflp serve --listen].

    Opens [sessions] connections, each with its own session id
    ([session_prefix ^ i]) and a deterministic request stream (the env
    instance's requests rotated by [i], wrapping), drives them with up
    to [window] requests in flight per connection, and reports
    throughput plus latency percentiles from a {!Omflp_obs.Metrics}
    histogram. With [dump_dir] set, each session's exact stream is also
    written to [DIR/ID.jsonl] for byte-identity replays through
    single-session stdin mode. *)

type config = {
  connect : string;  (** {!Omflp_serve.Listener.parse} syntax *)
  env : Omflp_instance.Instance.t;  (** source of replayed requests *)
  sessions : int;
  requests_per_session : int;
  algo : string option;  (** hello overrides; [None] = server default *)
  seed : int option;
  snapshot_every : int option;
  checkpoint : bool option;
  resume : bool;
  window : int;  (** max in-flight requests per connection, >= 1 *)
  session_prefix : string;
  dump_dir : string option;
}

type report = {
  r_sessions : int;
  r_requests : int;
  r_elapsed_s : float;
  r_throughput_rps : float;
  r_total_cost : float;
  r_latency : Omflp_obs.Metrics.histogram_view option;
  r_min_s : float;
  r_max_s : float;
}

(** [run cfg] drives the full load and blocks until every client
    finished. [Error msg] when any session failed (refused handshake,
    protocol violation, dropped connection). Raises [Invalid_argument]
    on nonsensical [cfg] numbers, [Failure] when the env instance has no
    requests. *)
val run : config -> (report, string) result

val print_report : out_channel -> report -> unit
