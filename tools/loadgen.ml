(* Load generator for the multi-session server: N client threads, each
   its own connection and session, replaying a deterministic rotation of
   an instance's request sequence and timing every request round trip.

   Latencies are collected per client (plain local arrays — client
   threads share the main domain, so they must not write shared metric
   shards concurrently) and merged into a [Metrics] histogram on the
   main thread after the join; the report's percentiles come from
   {!Metrics.approx_quantile} over that histogram, the same estimator
   the rest of the toolkit uses.

   [dump_dir] writes each session's exact request stream to
   [DIR/ID.jsonl] so a harness can replay the same streams through
   single-session stdin mode and diff the durable decision logs —
   that replay is the byte-identity check in CI. *)

open Omflp_instance
open Omflp_serve
open Omflp_obs

type config = {
  connect : string;  (* Listener address syntax *)
  env : Instance.t;  (* request source; metric/cost live server-side *)
  sessions : int;
  requests_per_session : int;
  algo : string option;
  seed : int option;
  snapshot_every : int option;
  checkpoint : bool option;
  resume : bool;
  window : int;  (* max in-flight requests per connection *)
  session_prefix : string;
  dump_dir : string option;
}

type report = {
  r_sessions : int;
  r_requests : int;  (* decisions received, across sessions *)
  r_elapsed_s : float;
  r_throughput_rps : float;
  r_total_cost : float;  (* summed over sessions' done records *)
  r_latency : Metrics.histogram_view option;  (* None when no requests *)
  r_min_s : float;
  r_max_s : float;
}

let fail fmt = Printf.ksprintf failwith fmt

(* The plain request line of the wire protocol (no index — that is the
   WAL form). *)
let request_line (r : Request.t) =
  let b = Buffer.create 64 in
  Buffer.add_string b "{\"site\":";
  Buffer.add_string b (string_of_int r.Request.site);
  Buffer.add_string b ",\"demand\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int c))
    (Omflp_commodity.Cset.elements r.Request.demand);
  Buffer.add_string b "]}";
  Buffer.contents b

(* Session [i] replays the instance's requests rotated by [i] (wrapping
   when it asks for more than the instance holds): every session's
   stream is distinct but fully determined by (env, i). *)
let stream_for cfg i =
  let reqs = cfg.env.Instance.requests in
  let n = Array.length reqs in
  if n = 0 then fail "Loadgen: the --env instance has no requests to replay";
  Array.init cfg.requests_per_session (fun j -> request_line reqs.((i + j) mod n))

let session_id cfg i = Printf.sprintf "%s%d" cfg.session_prefix i

let hello cfg i =
  Wire.hello_to_json
    {
      Wire.h_session = session_id cfg i;
      h_algo = cfg.algo;
      h_seed = cfg.seed;
      h_snapshot_every = cfg.snapshot_every;
      h_checkpoint = cfg.checkpoint;
      h_resume = cfg.resume;
    }

type client_result = {
  latencies : float array;  (* one per decision received *)
  total_cost : float;
}

(* One client: handshake, then a windowed send/receive loop — up to
   [window] requests in flight, each decision matched back to its send
   time by request index. Raises [Failure] on any protocol surprise. *)
let client cfg addr i stream =
  let fd = Listener.connect_addr addr in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let send line =
        output_string oc line;
        output_char oc '\n';
        flush oc
      in
      let recv () =
        match input_line ic with
        | line -> (
            match Wire.parse_server_line line with
            | Ok l -> l
            | Error e -> fail "Loadgen: session %s: %s" (session_id cfg i) e)
        | exception End_of_file ->
            fail "Loadgen: session %s: server closed the connection"
              (session_id cfg i)
      in
      send (hello cfg i);
      let base =
        match recv () with
        | Wire.Ack a ->
            (* Crash-window decisions re-sent after the ack are not
               responses to anything we sent: drain them first. *)
            for _ = 1 to a.Wire.a_reemitted do
              ignore (recv ())
            done;
            a.Wire.a_served
        | Wire.Refused e ->
            fail "Loadgen: session %s refused: %s" (session_id cfg i) e
        | Wire.Decision_line _ | Wire.Done _ ->
            fail "Loadgen: session %s: expected an ack" (session_id cfg i)
      in
      let n = Array.length stream in
      let t_send = Array.make (max n 1) 0.0 in
      let lat = Array.make (max n 1) 0.0 in
      let sent = ref 0 and received = ref 0 in
      while !received < n do
        while !sent < n && !sent - !received < cfg.window do
          t_send.(!sent) <- Metrics.now ();
          send stream.(!sent);
          incr sent
        done;
        match recv () with
        | Wire.Decision_line idx ->
            let j = idx - base in
            if j < 0 || j >= n then
              fail "Loadgen: session %s: decision index %d outside [%d,%d)"
                (session_id cfg i) idx base (base + n);
            lat.(j) <- Metrics.now () -. t_send.(j);
            incr received
        | Wire.Refused e ->
            fail "Loadgen: session %s: server error: %s" (session_id cfg i) e
        | Wire.Ack _ -> fail "Loadgen: session %s: duplicate ack" (session_id cfg i)
        | Wire.Done _ ->
            fail "Loadgen: session %s: premature done record" (session_id cfg i)
      done;
      (* Half-close: tells the server the stream is over; it answers with
         the done record after finalizing (final snapshot included). *)
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let rec wait_done () =
        match recv () with
        | Wire.Done (_, total) -> total
        | Wire.Decision_line _ | Wire.Ack _ | Wire.Refused _ -> wait_done ()
      in
      let total = wait_done () in
      { latencies = Array.sub lat 0 n; total_cost = total })

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let dump cfg streams =
  match cfg.dump_dir with
  | None -> ()
  | Some dir ->
      mkdir_p dir;
      Array.iteri
        (fun i stream ->
          let path = Filename.concat dir (session_id cfg i ^ ".jsonl") in
          let oc = open_out path in
          Array.iter
            (fun line ->
              output_string oc line;
              output_char oc '\n')
            stream;
          close_out oc)
        streams

let latency_h = Metrics.histogram "loadgen.latency_s"

(* [run cfg] drives the whole load: spawn one client thread per session,
   join, merge. Returns [Error] (first failure message) when any client
   failed — partial latency data is discarded. *)
let run cfg =
  if cfg.sessions < 1 then invalid_arg "Loadgen.run: sessions must be >= 1";
  if cfg.requests_per_session < 0 then
    invalid_arg "Loadgen.run: requests must be >= 0";
  if cfg.window < 1 then invalid_arg "Loadgen.run: window must be >= 1";
  match Listener.parse cfg.connect with
  | Error e -> Error (Printf.sprintf "Loadgen: bad address: %s" e)
  | Ok addr -> (
      let streams = Array.init cfg.sessions (stream_for cfg) in
      dump cfg streams;
      let results = Array.make cfg.sessions None in
      let errors = Array.make cfg.sessions None in
      let t0 = Metrics.now () in
      let thr =
        Array.init cfg.sessions (fun i ->
            Thread.create
              (fun () ->
                match client cfg addr i streams.(i) with
                | r -> results.(i) <- Some r
                | exception Failure e -> errors.(i) <- Some e
                | exception e -> errors.(i) <- Some (Printexc.to_string e))
              ())
      in
      Array.iter Thread.join thr;
      let elapsed = Metrics.now () -. t0 in
      match Array.find_map Fun.id errors with
      | Some e -> Error e
      | None ->
          let rs = Array.map Option.get results in
          let n_requests =
            Array.fold_left (fun a r -> a + Array.length r.latencies) 0 rs
          in
          let total_cost =
            Array.fold_left (fun a r -> a +. r.total_cost) 0.0 rs
          in
          (* Merge into the shared histogram on this one thread; restore
             the global enable flag afterwards so driving load does not
             silently switch observability on for the host process. *)
          let was_enabled = Metrics.enabled () in
          Metrics.set_enabled true;
          let mn = ref infinity and mx = ref neg_infinity in
          Array.iter
            (fun r ->
              Array.iter
                (fun l ->
                  Metrics.observe latency_h l;
                  if l < !mn then mn := l;
                  if l > !mx then mx := l)
                r.latencies)
            rs;
          Metrics.set_enabled was_enabled;
          let view =
            List.find_opt
              (fun v -> v.Metrics.h_name = "loadgen.latency_s")
              (Metrics.snapshot ()).Metrics.histograms
          in
          Ok
            {
              r_sessions = cfg.sessions;
              r_requests = n_requests;
              r_elapsed_s = elapsed;
              r_throughput_rps =
                (if elapsed > 0.0 then float_of_int n_requests /. elapsed
                 else 0.0);
              r_total_cost = total_cost;
              r_latency = (if n_requests = 0 then None else view);
              r_min_s = (if n_requests = 0 then 0.0 else !mn);
              r_max_s = (if n_requests = 0 then 0.0 else !mx);
            })

let print_report oc r =
  Printf.fprintf oc
    "loadgen: %d session(s), %d request(s) in %.3f s — %.1f req/s; summed \
     cost %.17g\n"
    r.r_sessions r.r_requests r.r_elapsed_s r.r_throughput_rps r.r_total_cost;
  (match r.r_latency with
  | None -> Printf.fprintf oc "loadgen: no requests, no latency data\n"
  | Some v ->
      let q p = Metrics.approx_quantile v p in
      Printf.fprintf oc
        "loadgen: latency p50 %.6f s, p90 %.6f s, p99 %.6f s (min %.6f, max \
         %.6f, mean %.6f)\n"
        (q 0.5) (q 0.9) (q 0.99) r.r_min_s r.r_max_s
        (v.Metrics.h_sum /. float_of_int (max 1 v.Metrics.h_events)));
  flush oc
