(** Listen-address parsing and socket setup shared by {!Server}, the
    load generator, and the tests.

    One textual syntax: a string without [':'] is a Unix-domain socket
    path; [HOST:PORT] is TCP ([HOST] empty for any-interface,
    ["localhost"], a dotted quad, or a resolvable name). *)

type addr = Unix_sock of string | Tcp of Unix.inet_addr * int

val parse : string -> (addr, string) result

val pp_addr : addr -> string

(** [listen addr] binds and listens (backlog 128). A stale socket file
    left by a killed server is replaced; anything else at that path is a
    named [Failure]. TCP listeners set [SO_REUSEADDR]. *)
val listen : addr -> Unix.file_descr

(** [connect s] parses [s] and connects a client socket ([TCP_NODELAY]
    on TCP). Raises [Failure] with a named message on bad addresses or
    connection errors. *)
val connect : string -> Unix.file_descr

val connect_addr : addr -> Unix.file_descr

(** [cleanup addr] removes the socket file of a Unix-domain listener;
    no-op for TCP. *)
val cleanup : addr -> unit
