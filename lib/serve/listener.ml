(* Listen-address plumbing shared by the server, the load generator, and
   the tests: one textual address syntax — a filesystem path means a
   Unix-domain socket, HOST:PORT means TCP — parsed once, used for both
   [listen] and [connect]. *)

type addr = Unix_sock of string | Tcp of Unix.inet_addr * int

let pp_addr = function
  | Unix_sock path -> path
  | Tcp (host, port) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) port

(* The portable sockaddr_un payload is ~104 bytes; refuse paths that
   would be silently truncated. *)
let max_unix_path = 100

let resolve_host host =
  if host = "" then Ok Unix.inet_addr_any
  else if host = "localhost" then Ok Unix.inet_addr_loopback
  else
    match Unix.inet_addr_of_string host with
    | a -> Ok a
    | exception Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
            Error (Printf.sprintf "cannot resolve host %S" host)
        | { Unix.h_addr_list; _ } -> Ok h_addr_list.(0))

let parse s =
  if s = "" then Error "empty listen address"
  else
    match String.rindex_opt s ':' with
    | None ->
        if String.length s > max_unix_path then
          Error
            (Printf.sprintf
               "unix socket path is %d bytes; the OS limit is about %d"
               (String.length s) max_unix_path)
        else Ok (Unix_sock s)
    | Some i -> (
        let host = String.sub s 0 i in
        let port_s = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port_s with
        | Some port when port >= 1 && port <= 65535 ->
            Result.map (fun h -> Tcp (h, port)) (resolve_host host)
        | _ ->
            Error
              (Printf.sprintf
                 "bad address %S (use a socket PATH without ':' or \
                  HOST:PORT with port in [1,65535])"
                 s))

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> Unix.ADDR_INET (host, port)

let socket_for = function
  | Unix_sock _ -> Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
  | Tcp _ -> Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0

let fail fmt = Printf.ksprintf failwith fmt

let listen addr =
  (match addr with
  | Unix_sock path when Sys.file_exists path ->
      (* A SIGKILLed server leaves its socket file behind; replace it —
         but only a socket, never a regular file someone pointed us at. *)
      if (Unix.stat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
      else
        fail "Listener.listen: %s exists and is not a socket (refusing to \
              replace it)"
          path
  | _ -> ());
  let fd = socket_for addr in
  (try
     (match addr with
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Unix_sock _ -> ());
     Unix.bind fd (sockaddr addr);
     Unix.listen fd 128
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (match e with
     | Unix.Unix_error (err, _, _) ->
         fail "Listener.listen: cannot listen on %s: %s" (pp_addr addr)
           (Unix.error_message err)
     | e -> raise e));
  fd

let connect_addr addr =
  let fd = socket_for addr in
  try
    Unix.connect fd (sockaddr addr);
    (match addr with
    | Tcp _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
    | Unix_sock _ -> ());
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (match e with
    | Unix.Unix_error (err, _, _) ->
        fail "Listener.connect: cannot connect to %s: %s" (pp_addr addr)
          (Unix.error_message err)
    | e -> raise e)

let connect s =
  match parse s with
  | Error e -> fail "Listener.connect: %s" e
  | Ok addr -> connect_addr addr

let cleanup addr =
  match addr with
  | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ()
