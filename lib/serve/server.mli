(** Multi-session socket server over the single-session serving core.

    Listens on a Unix-domain socket or TCP address ({!Listener} syntax),
    accepts any number of concurrent connections, and multiplexes their
    sessions across a fixed pool of worker domains. Each connection opens
    with a {!Wire.hello} handshake naming its session; the session gets
    its own checkpoint directory ([checkpoint_root/ID]) and its own
    [server.session.ID.requests] counter.

    Concurrency model: one reader {e thread} per connection parses lines
    into a bounded queue (capacity [queue_depth]; a full queue blocks the
    reader — backpressure all the way to the client's writes), while
    [workers] {e domains} drain the queues, at most one drain per
    connection at a time, in queue order — so every session's decision
    log is byte-identical to the same stream served by single-session
    stdin mode.

    Fault model: a fatal session error aborts only that session (the
    client sees [{"ok":false,...}]); killing the whole server loses
    nothing — every session resumes from its own checkpoint directory
    via the [resume] handshake. *)

type config = {
  listen : string;  (** {!Listener.parse} syntax *)
  algo : string;  (** default algorithm; hellos may override *)
  env : Omflp_instance.Instance.t;
      (** supplies the metric and cost function; its request list is
          ignored *)
  instance_md5 : string;  (** pins checkpoints to this environment *)
  checkpoint_root : string option;
      (** sessions checkpoint under [root/ID]; [None] disables
          checkpointing (hellos asking for it are refused) *)
  snapshot_every : int;
  seed : int;  (** default RNG seed; hellos may override *)
  max_sessions : int;  (** admission limit on concurrent sessions *)
  queue_depth : int;  (** per-connection request-queue bound *)
  workers : int;  (** serving domains (>= 1) *)
}

type t

(** [start cfg] binds, spawns the worker pool and the accept thread, and
    returns immediately. Raises [Failure] on bad addresses or bind
    errors, [Invalid_argument] on nonsensical [cfg] numbers. *)
val start : config -> t

(** [listening t] renders the bound address (diagnostics). *)
val listening : t -> string

(** [active_sessions t] counts currently connected sessions. *)
val active_sessions : t -> int

(** [stop t] stops accepting, waits for every live connection to finish
    (clients half-close when done), then tears down the pool and removes
    a Unix socket file. *)
val stop : t -> unit

(** [run cfg] is [start] plus a banner on stderr, then blocks forever —
    the CLI entry point; durability across SIGKILL is the checkpoint
    layer's job. *)
val run : config -> unit
