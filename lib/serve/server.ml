(* Concurrent multi-session front end over the single-session serving
   core: an accept loop hands each connection to a reader thread, the
   reader parses the session-open handshake plus the request stream into
   a bounded per-connection queue, and pool worker domains drain one
   connection at a time — so each session's requests are stepped in
   order, by one domain at a time, and its durable decision log is byte
   for byte what stdin-mode [omflp serve] would have written for the
   same stream.

   Scheduling: a connection owns at most one drain task (Conn's
   [scheduled] flag). A drain steps up to [drain_batch] requests, then
   requeues itself — FIFO through the pool queue, so thousands of
   sessions share the worker domains fairly. Backpressure is Conn.push
   blocking the reader on a full queue.

   Durability is unchanged from the single-session layer: each session
   gets its own checkpoint directory under the server's checkpoint root,
   with the same WAL-before-step / decision-after ordering, so
   SIGKILLing the whole server loses nothing a per-session resume cannot
   replay. *)

open Omflp_instance
open Omflp_core
open Omflp_obs

type config = {
  listen : string;
  algo : string;  (* default; a hello may name another registered one *)
  env : Instance.t;  (* metric + cost; its request list is ignored *)
  instance_md5 : string;
  checkpoint_root : string option;
  snapshot_every : int;
  seed : int;
  max_sessions : int;
  queue_depth : int;
  workers : int;
}

type t = {
  cfg : config;
  n_sites : int;
  n_commodities : int;
  pool : Omflp_prelude.Pool.t;
  addr : Listener.addr;
  lfd : Unix.file_descr;
  mutable accept_thr : Thread.t option;
  m : Mutex.t;
  conn_done : Condition.t;
  live : (string, unit) Hashtbl.t;  (* connected session ids *)
  mutable n_conns : int;  (* open connections, incl. pre-handshake *)
  mutable stopping : bool;
}

let accepted_c = Metrics.counter "server.accepted"
let sessions_c = Metrics.counter "server.sessions"
let rejected_c = Metrics.counter "server.rejected"
let request_errors_c = Metrics.counter "server.request_errors"
let latency_h = Metrics.histogram "server.latency_s"

let drain_batch = 32

let fail fmt = Printf.ksprintf failwith fmt

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end
  else if not (Sys.is_directory dir) then
    fail "Server: checkpoint root %s exists and is not a directory" dir

(* ---------- session opening (runs on the reader thread) ---------- *)

(* Session ids become checkpoint directory names under the root, so the
   charset is locked down: anything that could traverse ("..", "/") or
   confuse a filesystem is refused at the handshake. *)
let valid_session_id id =
  String.length id > 0
  && id <> "." && id <> ".."
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       id

(* Admission control under the registry mutex: the id is claimed before
   the (slow, IO-heavy) session construction, so two connections racing
   on one session id cannot both open its checkpoint directory. *)
let claim t (h : Wire.hello) =
  Mutex.lock t.m;
  let r =
    if not (valid_session_id h.Wire.h_session) then
      Error
        (Printf.sprintf
           "invalid session id %S (want [A-Za-z0-9._-]+, not \".\"/\"..\")"
           h.Wire.h_session)
    else if t.stopping then Error "server is shutting down"
    else if Hashtbl.mem t.live h.Wire.h_session then
      Error (Printf.sprintf "session %S is already connected" h.Wire.h_session)
    else if Hashtbl.length t.live >= t.cfg.max_sessions then
      Error
        (Printf.sprintf "server is at --max-sessions capacity (%d)"
           t.cfg.max_sessions)
    else begin
      Hashtbl.add t.live h.Wire.h_session ();
      Ok ()
    end
  in
  Mutex.unlock t.m;
  r

let open_session t (h : Wire.hello) =
  let algo_name = Option.value h.Wire.h_algo ~default:t.cfg.algo in
  let algo =
    match Registry.find algo_name with
    | Ok a -> a
    | Error e -> fail "%s" (Registry.unknown_algo_message e)
  in
  let seed = Option.value h.Wire.h_seed ~default:t.cfg.seed in
  let snapshot_every =
    Option.value h.Wire.h_snapshot_every ~default:t.cfg.snapshot_every
  in
  let env = Instance.env t.cfg.env in
  let want_checkpoint =
    match h.Wire.h_checkpoint with
    | Some b -> b
    | None -> t.cfg.checkpoint_root <> None
  in
  let root () =
    match t.cfg.checkpoint_root with
    | Some root -> Filename.concat root h.Wire.h_session
    | None ->
        fail
          "handshake requests a checkpoint but the server has no \
           --checkpoint root"
  in
  if h.Wire.h_resume && not want_checkpoint then
    fail "resume requires checkpointing";
  let session, served, reemit =
    if h.Wire.h_resume then begin
      let rz =
        Checkpoint.open_resume ~dir:(root ()) ~n_sites:t.n_sites
          ~n_commodities:t.n_commodities ~instance_md5:t.cfg.instance_md5
      in
      let s, lost = Session.resume ~algo rz env in
      (s, Session.count s, lost)
    end
    else if want_checkpoint then begin
      let (module A : Algo_intf.ALGO) = algo in
      let cp =
        Checkpoint.create ~dir:(root ()) ~algo:A.name ~seed:(Some seed)
          ~instance_md5:t.cfg.instance_md5 ~snapshot_every
      in
      (Session.create ~algo ~seed ~checkpoint:cp env, 0, [])
    end
    else (Session.create ~algo ~seed env, 0, [])
  in
  (session, algo_name, served, reemit)

(* ---------- teardown (either side, exactly once) ---------- *)

let finalize t conn =
  if Conn.claim_finalize conn then begin
    (match conn.Conn.session with
    | None -> ()
    | Some s ->
        (try Session.close s
         with Failure msg ->
           Printf.eprintf "omflp serve: session close: %s\n%!" msg);
        let _, _, total = Session.running_costs s in
        ignore
          (Conn.send_line conn
             (Wire.done_to_json ~served:(Session.count s) ~total)));
    Conn.close conn;
    Mutex.lock t.m;
    Option.iter (Hashtbl.remove t.live) conn.Conn.session_id;
    t.n_conns <- t.n_conns - 1;
    Condition.broadcast t.conn_done;
    Mutex.unlock t.m
  end

(* ---------- drain (runs on pool worker domains) ---------- *)

let rec drain t conn per_session_c budget =
  if budget <= 0 then
    (* Yield the worker: requeue behind other runnable connections. *)
    schedule t conn per_session_c
  else
    match Conn.take conn ~max:budget with
    | Conn.Idle -> ()
    | Conn.Finished -> finalize t conn
    | Conn.Batch rs -> (
        match conn.Conn.session with
        | None -> assert false (* requests only flow after the handshake *)
        | Some s -> (
            let t0 = Metrics.now () in
            match Session.handle_batch s rs with
            | ds ->
                let n = Array.length ds in
                let latency_s =
                  (Metrics.now () -. t0) /. float_of_int (max 1 n)
                in
                Array.iter
                  (fun d ->
                    Metrics.observe latency_h latency_s;
                    Metrics.incr per_session_c;
                    if not conn.Conn.dead then
                      ignore
                        (Conn.send_fill conn (fun b ->
                             Wire.decision_to_buffer ~latency_s b d)))
                  ds;
                drain t conn per_session_c (budget - n)
            | exception Failure msg ->
                (* Fatal for this session (checkpoint IO, algorithm
                   invariant): tell the client, stop its reader, and let
                   the Finished path run the usual finalization — the
                   WAL-before-decision write order makes this exactly the
                   crash-window shape a later resume can replay. *)
                Printf.eprintf "omflp serve: session %s: %s\n%!"
                  (Option.value conn.Conn.session_id ~default:"?")
                  msg;
                ignore (Conn.send_line conn (Wire.error_to_json msg));
                Conn.abort conn;
                drain t conn per_session_c budget))

and schedule t conn per_session_c =
  Omflp_prelude.Pool.submit t.pool (fun () ->
      try drain t conn per_session_c drain_batch
      with e ->
        (* Backstop: a drain task must never kill its worker domain. *)
        Printf.eprintf "omflp serve: drain: %s\n%!" (Printexc.to_string e);
        Conn.abort conn;
        finalize t conn)

(* ---------- reader threads ---------- *)

let refuse t conn msg =
  Metrics.incr rejected_c;
  ignore (Conn.send_line conn (Wire.error_to_json msg));
  finalize t conn

let stream_loop t conn per_session_c =
  let line_no = ref 0 in
  let rec loop () =
    match Conn.input_line_opt conn with
    | None -> if Conn.finish_input conn then schedule t conn per_session_c
    | Some line ->
        incr line_no;
        (if String.trim line <> "" then
           match
             Wire.parse_request ~n_sites:t.n_sites
               ~n_commodities:t.n_commodities line
           with
           | Error e ->
               Metrics.incr request_errors_c;
               ignore
                 (Conn.send_line conn
                    (Wire.error_to_json
                       (Printf.sprintf "line %d: %s" !line_no e)))
           | Ok r -> if Conn.push conn r then schedule t conn per_session_c);
        loop ()
  in
  loop ()

let reader t conn =
  match Conn.input_line_opt conn with
  | None -> finalize t conn
  | Some hello_line -> (
      match Wire.parse_hello hello_line with
      | Error e -> refuse t conn (Printf.sprintf "bad handshake: %s" e)
      | Ok hello -> (
          match claim t hello with
          | Error e -> refuse t conn e
          | Ok () -> (
              conn.Conn.session_id <- Some hello.Wire.h_session;
              match open_session t hello with
              | exception Failure msg -> refuse t conn msg
              | session, algo_name, served, reemit ->
                  Metrics.incr sessions_c;
                  conn.Conn.session <- Some session;
                  let per_session_c =
                    Metrics.counter
                      (Printf.sprintf "server.session.%s.requests"
                         hello.Wire.h_session)
                  in
                  let ack =
                    Wire.ack_to_json
                      {
                        Wire.a_session = hello.Wire.h_session;
                        a_algo = algo_name;
                        a_served = served;
                        a_reemitted = List.length reemit;
                      }
                  in
                  if Conn.send_line conn ack then begin
                    List.iter
                      (fun d ->
                        ignore (Conn.send_line conn (Wire.decision_to_json d)))
                      reemit;
                    stream_loop t conn per_session_c
                  end
                  else begin
                    (* Peer vanished between connect and ack: still close
                       the session cleanly (final snapshot). *)
                    ignore (Conn.finish_input conn);
                    drain t conn per_session_c drain_batch
                  end)))

(* ---------- lifecycle ---------- *)

let rec accept_loop t =
  match Unix.accept ~cloexec:true t.lfd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t
  | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> accept_loop t
  | exception Unix.Unix_error _ when t.stopping -> ()
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "omflp serve: accept: %s\n%!" (Unix.error_message e)
  | fd, _ ->
      if t.stopping then (
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ())
      else begin
        Metrics.incr accepted_c;
        Mutex.lock t.m;
        t.n_conns <- t.n_conns + 1;
        Mutex.unlock t.m;
        let conn = Conn.of_fd ~cap:t.cfg.queue_depth fd in
        ignore (Thread.create (fun () -> reader t conn) ());
        accept_loop t
      end

let start cfg =
  if cfg.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if cfg.max_sessions < 1 then
    invalid_arg "Server.start: max_sessions must be >= 1";
  if cfg.snapshot_every < 1 then
    invalid_arg "Server.start: snapshot_every must be >= 1";
  if cfg.queue_depth < 1 then
    invalid_arg "Server.start: queue_depth must be >= 1";
  (* A client that vanishes mid-write must surface as a write error on
     our side, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Option.iter mkdir_p cfg.checkpoint_root;
  let addr =
    match Listener.parse cfg.listen with
    | Ok a -> a
    | Error e -> fail "Server: bad --listen address: %s" e
  in
  let lfd = Listener.listen addr in
  let t =
    {
      cfg;
      n_sites = Instance.n_sites cfg.env;
      n_commodities = Instance.n_commodities cfg.env;
      (* [workers + 1] because the pool's creating "caller slot" is the
         accept thread, which never helps drain — submitted tasks run on
         the [workers] spawned domains only. *)
      pool = Omflp_prelude.Pool.create ~jobs:(cfg.workers + 1);
      addr;
      lfd;
      accept_thr = None;
      m = Mutex.create ();
      conn_done = Condition.create ();
      live = Hashtbl.create 64;
      n_conns = 0;
      stopping = false;
    }
  in
  t.accept_thr <- Some (Thread.create accept_loop t);
  t

let listening t = Listener.pp_addr t.addr

let active_sessions t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.live in
  Mutex.unlock t.m;
  n

let stop t =
  Mutex.lock t.m;
  t.stopping <- true;
  Mutex.unlock t.m;
  (* Wake a blocked [accept]: shutdown works on Linux; the dummy connect
     covers platforms where it does not. *)
  (try Unix.shutdown t.lfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close (Listener.connect_addr t.addr)
   with Failure _ | Unix.Unix_error _ -> ());
  Option.iter Thread.join t.accept_thr;
  t.accept_thr <- None;
  (* Let live connections finish: clients half-close when done, drains
     finalize, and the registry empties. *)
  Mutex.lock t.m;
  while t.n_conns > 0 do
    Condition.wait t.conn_done t.m
  done;
  Mutex.unlock t.m;
  (try Unix.close t.lfd with Unix.Unix_error _ -> ());
  Listener.cleanup t.addr;
  Omflp_prelude.Pool.shutdown t.pool

let run cfg =
  let t = start cfg in
  Printf.eprintf
    "omflp serve: listening on %s (%d worker domain%s, max %d sessions, \
     queue depth %d)\n\
     %!"
    (listening t) cfg.workers
    (if cfg.workers = 1 then "" else "s")
    cfg.max_sessions cfg.queue_depth;
  (* Runs until the process is killed; durability is the checkpoint
     root's business, not a shutdown handler's. *)
  Option.iter Thread.join t.accept_thr
