(* One accepted connection: the socket pair of channels, a single-writer
   output lock, and the bounded request queue that couples the reader
   thread to the pool worker draining the session.

   Threading contract: exactly one reader thread calls [input_line_opt] /
   [push] / [finish_input]; exactly one drain task at a time calls
   [take] (the [scheduled] flag, managed here, guarantees the "at a
   time"). [send_line] may be called from either side — the io mutex
   makes every line atomic on the wire.

   Backpressure: [push] blocks while the queue holds [cap] requests, so
   a client outpacing its session stops being read, the kernel socket
   buffer fills, and the client's own writes stall — flow control end to
   end with no unbounded buffering server-side. *)

open Omflp_instance

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  io_mutex : Mutex.t;
  out_buf : Buffer.t;  (* reused by [send_fill]; guarded by io_mutex *)
  q : Request.t Queue.t;
  q_mutex : Mutex.t;
  q_not_full : Condition.t;
  cap : int;
  mutable scheduled : bool;  (* a drain task is queued or running *)
  mutable eof : bool;  (* reader saw end of input *)
  mutable dead : bool;  (* peer gone or session aborted: stop writing *)
  mutable finalized : bool;  (* teardown ran; guards double-finalize *)
  mutable session : Session.t option;
  mutable session_id : string option;
}

let of_fd ~cap fd =
  if cap < 1 then invalid_arg "Conn.of_fd: queue capacity must be >= 1";
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    io_mutex = Mutex.create ();
    out_buf = Buffer.create 256;
    q = Queue.create ();
    q_mutex = Mutex.create ();
    q_not_full = Condition.create ();
    cap;
    scheduled = false;
    eof = false;
    dead = false;
    finalized = false;
    session = None;
    session_id = None;
  }

(* First caller wins; a second finalization attempt (e.g. the drain
   backstop racing the normal [Finished] path) becomes a no-op. *)
let claim_finalize t =
  Mutex.lock t.q_mutex;
  let first = not t.finalized in
  if first then t.finalized <- true;
  Mutex.unlock t.q_mutex;
  first

(* Reader-side line input; any channel error (peer reset, fd shut down
   by [abort]) reads as end of input — the conn is then finalized
   through the normal drain path. *)
let input_line_opt t =
  match input_line t.ic with
  | line -> Some line
  | exception (End_of_file | Sys_error _) -> None
  | exception Unix.Unix_error _ -> None

let send_line t line =
  if t.dead then false
  else begin
    Mutex.lock t.io_mutex;
    let ok =
      match
        output_string t.oc line;
        output_char t.oc '\n';
        flush t.oc
      with
      | () -> true
      | exception (Sys_error _ | Unix.Unix_error _) ->
          t.dead <- true;
          false
    in
    Mutex.unlock t.io_mutex;
    ok
  end

(* Like [send_line], but [fill] writes the line body straight into the
   connection's reusable output buffer (newline appended here) — the
   per-decision hot path sends without building an intermediate
   string. *)
let send_fill t fill =
  if t.dead then false
  else begin
    Mutex.lock t.io_mutex;
    let ok =
      match
        Buffer.clear t.out_buf;
        fill t.out_buf;
        Buffer.add_char t.out_buf '\n';
        Buffer.output_buffer t.oc t.out_buf;
        flush t.oc
      with
      | () -> true
      | exception (Sys_error _ | Unix.Unix_error _) ->
          t.dead <- true;
          false
    in
    Mutex.unlock t.io_mutex;
    ok
  end

(* Returns true when the caller must schedule a drain task (the queue
   was idle). Blocks while the queue is full — that block IS the
   backpressure. A dead conn swallows the request instead of blocking
   forever on a drain that will never come. *)
let push t r =
  Mutex.lock t.q_mutex;
  while Queue.length t.q >= t.cap && not t.dead do
    Condition.wait t.q_not_full t.q_mutex
  done;
  let need =
    if t.dead then false
    else begin
      Queue.push r t.q;
      let need = not t.scheduled in
      if need then t.scheduled <- true;
      need
    end
  in
  Mutex.unlock t.q_mutex;
  need

(* Reader is done (EOF or read error). Returns true when a drain task
   must be scheduled to run the finalization. *)
let finish_input t =
  Mutex.lock t.q_mutex;
  t.eof <- true;
  let need = not t.scheduled in
  if need then t.scheduled <- true;
  Mutex.unlock t.q_mutex;
  need

type take = Batch of Request.t array | Idle | Finished

(* Drain-side: next unit of work — up to [max] queued requests popped
   together, in arrival order, so the session can step them as one batch
   with a single WAL/decision flush each. [Idle] clears [scheduled] —
   the next [push]/[finish_input] schedules a fresh task; [Finished]
   keeps it set, the drain finalizes and nothing runs after. *)
let take t ~max =
  if max < 1 then invalid_arg "Conn.take: max must be >= 1";
  Mutex.lock t.q_mutex;
  let r =
    if Queue.is_empty t.q then
      if t.eof then Finished
      else begin
        t.scheduled <- false;
        Idle
      end
    else begin
      let n = min max (Queue.length t.q) in
      let rs = Array.make n (Queue.peek t.q) in
      for i = 0 to n - 1 do
        rs.(i) <- Queue.pop t.q
      done;
      Condition.broadcast t.q_not_full;
      Batch rs
    end
  in
  Mutex.unlock t.q_mutex;
  r

(* Fatal-session teardown from the drain side: stop the reader (shut the
   receive half so a blocked [input_line] returns), drop queued work,
   and wake a reader blocked on a full queue. The conn then finalizes
   through the normal [Finished] path. *)
let abort t =
  (try Unix.shutdown t.fd Unix.SHUTDOWN_RECEIVE
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  Mutex.lock t.q_mutex;
  Queue.clear t.q;
  t.dead <- true;
  t.eof <- true;
  Condition.broadcast t.q_not_full;
  Mutex.unlock t.q_mutex

(* Close the socket once, via the fd: [ic] and [oc] wrap the same
   descriptor, so closing the channels would double-close it. Buffered
   output was flushed per line by [send_line]. *)
let close t =
  t.dead <- true;
  try Unix.close t.fd with Unix.Unix_error _ -> ()
