(** One accepted server connection: socket channels, a single-writer
    output lock, and the bounded request queue coupling the reader
    thread to the pool worker draining the session.

    Threading contract: one reader thread calls {!input_line_opt},
    {!push}, and {!finish_input}; at most one drain task at a time calls
    {!take} (the internal [scheduled] flag guarantees it — [push] and
    [finish_input] return [true] exactly when the caller must schedule a
    drain). {!send_line} is safe from both sides. {!push} blocking on a
    full queue is the server's backpressure: the reader stops consuming
    input, the kernel buffers fill, and the client's writes stall. *)

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  io_mutex : Mutex.t;
  out_buf : Buffer.t;
  q : Omflp_instance.Request.t Queue.t;
  q_mutex : Mutex.t;
  q_not_full : Condition.t;
  cap : int;
  mutable scheduled : bool;
  mutable eof : bool;
  mutable dead : bool;
  mutable finalized : bool;
  mutable session : Session.t option;
  mutable session_id : string option;
}

(** [of_fd ~cap fd] wraps an accepted socket with a [cap]-bounded request
    queue. Raises [Invalid_argument] when [cap < 1]. *)
val of_fd : cap:int -> Unix.file_descr -> t

(** [claim_finalize t] is [true] for exactly one caller over the conn's
    lifetime: run the teardown iff it returns [true]. *)
val claim_finalize : t -> bool

(** [input_line_opt t] reads one line; [None] on EOF or any read error
    (peer reset, {!abort}). Reader thread only. *)
val input_line_opt : t -> string option

(** [send_line t line] writes [line ^ "\n"] atomically and flushes;
    [false] when the peer is gone (the conn is marked dead and later
    writes are dropped). *)
val send_line : t -> string -> bool

(** [send_fill t fill] is {!send_line} without the intermediate string:
    [fill] writes the line body into the connection's reusable output
    buffer (the newline is appended here). *)
val send_fill : t -> (Buffer.t -> unit) -> bool

(** [push t r] enqueues a request, blocking while the queue is full
    (backpressure). Returns [true] when the caller must schedule a drain
    task. Reader thread only. *)
val push : t -> Omflp_instance.Request.t -> bool

(** [finish_input t] marks end of input; [true] when a drain task must
    be scheduled to finalize. Reader thread only. *)
val finish_input : t -> bool

type take =
  | Batch of Omflp_instance.Request.t array
      (** serve these next, in arrival order *)
  | Idle  (** queue empty, drain descheduled; a future push reschedules *)
  | Finished  (** input done and queue drained: finalize the conn *)

(** [take t ~max] is the drain task's next unit of work: up to [max]
    queued requests popped together, so the session steps them as one
    batch with a single WAL/decision flush each. Drain side only. Raises
    [Invalid_argument] when [max < 1]. *)
val take : t -> max:int -> take

(** [abort t] tears the session down from the drain side: shuts the
    receive half (unblocking the reader), drops queued requests, and
    wakes a reader blocked on the full queue. The conn still finalizes
    through the normal {!Finished} path. *)
val abort : t -> unit

(** [close t] closes the socket (once — both channels share the fd). *)
val close : t -> unit
