open Omflp_prelude
open Omflp_commodity
open Omflp_instance
open Omflp_core

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_float b v = Printf.bprintf b "%.17g" v

let buf_add_int_list b es =
  Buffer.add_char b '[';
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int e))
    es;
  Buffer.add_char b ']'

(* ---------- requests ---------- *)

let int_member key json =
  match Option.bind (Minijson.member key json) Minijson.to_float with
  | Some f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let demand_member key json =
  match Option.bind (Minijson.member key json) Minijson.to_list with
  | None -> None
  | Some items ->
      let rec ints acc = function
        | [] -> Some (List.rev acc)
        | j :: rest -> (
            match Minijson.to_float j with
            | Some f when Float.is_integer f -> ints (int_of_float f :: acc) rest
            | _ -> None)
      in
      ints [] items

let parse_request ~n_sites ~n_commodities line =
  match Minijson.of_string line with
  | exception Minijson.Parse_error msg -> Error ("bad JSON: " ^ msg)
  | json -> (
      match (int_member "site" json, demand_member "demand" json) with
      | None, _ -> Error {|missing or non-integer "site"|}
      | _, None -> Error {|missing or non-integer-list "demand"|}
      | Some site, Some demand ->
          if site < 0 || site >= n_sites then
            Error
              (Printf.sprintf "site %d out of range [0,%d)" site n_sites)
          else if demand = [] then Error "empty demand"
          else if
            List.exists (fun e -> e < 0 || e >= n_commodities) demand
          then
            Error
              (Printf.sprintf "demand commodity out of range [0,%d)"
                 n_commodities)
          else
            Ok
              (Request.make ~site
                 ~demand:(Cset.of_list ~n_commodities demand)))

let request_to_json ~index (r : Request.t) =
  let b = Buffer.create 64 in
  Buffer.add_string b "{\"index\":";
  Buffer.add_string b (string_of_int index);
  Buffer.add_string b ",\"site\":";
  Buffer.add_string b (string_of_int r.site);
  Buffer.add_string b ",\"demand\":";
  buf_add_int_list b (Cset.elements r.demand);
  Buffer.add_char b '}';
  Buffer.contents b

let parse_wal_line ~n_sites ~n_commodities line =
  match Minijson.of_string line with
  | exception Minijson.Parse_error msg -> Error ("bad JSON: " ^ msg)
  | json -> (
      match int_member "index" json with
      | None -> Error {|missing or non-integer "index"|}
      | Some index -> (
          match parse_request ~n_sites ~n_commodities line with
          | Error e -> Error e
          | Ok r -> Ok (index, r)))

(* ---------- session-open handshake ---------- *)

type hello = {
  h_session : string;
  h_algo : string option;
  h_seed : int option;
  h_snapshot_every : int option;
  h_checkpoint : bool option;
  h_resume : bool;
}

(* Session ids name checkpoint subdirectories and metric labels, so they
   are confined to a filesystem- and JSON-safe alphabet; in particular a
   leading dot (and hence "." / "..") is rejected. *)
let valid_session_id s =
  let n = String.length s in
  n >= 1 && n <= 64
  && (match s.[0] with 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' -> true | _ -> false)
  && String.for_all
       (function
         | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       s

let bool_member key json =
  match Minijson.member key json with
  | Some (Minijson.Bool b) -> Ok (Some b)
  | None | Some Minijson.Null -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" key)

let opt_int_member key json =
  match Minijson.member key json with
  | None | Some Minijson.Null -> Ok None
  | Some (Minijson.Num f) when Float.is_integer f -> Ok (Some (int_of_float f))
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" key)

let parse_hello line =
  let ( let* ) = Result.bind in
  match Minijson.of_string line with
  | exception Minijson.Parse_error msg -> Error ("bad JSON: " ^ msg)
  | json ->
      let* session =
        match Option.bind (Minijson.member "session" json) Minijson.to_string with
        | Some s when valid_session_id s -> Ok s
        | Some s ->
            Error
              (Printf.sprintf
                 "invalid session id %S (1-64 chars of [A-Za-z0-9._-], \
                  starting alphanumeric)"
                 s)
        | None -> Error {|missing or non-string "session"|}
      in
      let* algo =
        match Minijson.member "algo" json with
        | None | Some Minijson.Null -> Ok None
        | Some (Minijson.Str s) -> Ok (Some s)
        | Some _ -> Error {|field "algo" must be a string|}
      in
      let* seed = opt_int_member "seed" json in
      let* snapshot_every = opt_int_member "snapshot_every" json in
      let* () =
        match snapshot_every with
        | Some n when n < 1 -> Error {|field "snapshot_every" must be >= 1|}
        | _ -> Ok ()
      in
      let* checkpoint = bool_member "checkpoint" json in
      let* resume = bool_member "resume" json in
      Ok
        {
          h_session = session;
          h_algo = algo;
          h_seed = seed;
          h_snapshot_every = snapshot_every;
          h_checkpoint = checkpoint;
          h_resume = Option.value resume ~default:false;
        }

let hello_to_json h =
  let b = Buffer.create 96 in
  Buffer.add_string b "{\"session\":";
  buf_add_json_string b h.h_session;
  (match h.h_algo with
  | None -> ()
  | Some a ->
      Buffer.add_string b ",\"algo\":";
      buf_add_json_string b a);
  (match h.h_seed with
  | None -> ()
  | Some s ->
      Buffer.add_string b ",\"seed\":";
      Buffer.add_string b (string_of_int s));
  (match h.h_snapshot_every with
  | None -> ()
  | Some n ->
      Buffer.add_string b ",\"snapshot_every\":";
      Buffer.add_string b (string_of_int n));
  (match h.h_checkpoint with
  | None -> ()
  | Some c -> Buffer.add_string b (if c then ",\"checkpoint\":true" else ",\"checkpoint\":false"));
  if h.h_resume then Buffer.add_string b ",\"resume\":true";
  Buffer.add_char b '}';
  Buffer.contents b

type ack = {
  a_session : string;
  a_algo : string;
  a_served : int;
  a_reemitted : int;
}

let ack_to_json a =
  let b = Buffer.create 96 in
  Buffer.add_string b "{\"ok\":true,\"session\":";
  buf_add_json_string b a.a_session;
  Buffer.add_string b ",\"algo\":";
  buf_add_json_string b a.a_algo;
  Buffer.add_string b ",\"served\":";
  Buffer.add_string b (string_of_int a.a_served);
  Buffer.add_string b ",\"reemitted\":";
  Buffer.add_string b (string_of_int a.a_reemitted);
  Buffer.add_char b '}';
  Buffer.contents b

let error_to_json msg =
  let b = Buffer.create 64 in
  Buffer.add_string b "{\"ok\":false,\"error\":";
  buf_add_json_string b msg;
  Buffer.add_char b '}';
  Buffer.contents b

let done_to_json ~served ~total =
  let b = Buffer.create 64 in
  Buffer.add_string b "{\"done\":true,\"served\":";
  Buffer.add_string b (string_of_int served);
  Buffer.add_string b ",\"total\":";
  buf_add_float b total;
  Buffer.add_char b '}';
  Buffer.contents b

type server_line =
  | Ack of ack
  | Refused of string
  | Decision_line of int
  | Done of int * float

let parse_server_line line =
  match Minijson.of_string line with
  | exception Minijson.Parse_error msg -> Error ("bad JSON: " ^ msg)
  | json -> (
      match Minijson.member "ok" json with
      | Some (Minijson.Bool true) -> (
          let str key =
            Option.bind (Minijson.member key json) Minijson.to_string
          in
          match (str "session", str "algo", int_member "served" json,
                 int_member "reemitted" json)
          with
          | Some s, Some a, Some served, Some reemitted ->
              Ok (Ack { a_session = s; a_algo = a; a_served = served;
                        a_reemitted = reemitted })
          | _ -> Error "malformed ack")
      | Some (Minijson.Bool false) | Some Minijson.Null -> (
          match
            Option.bind (Minijson.member "error" json) Minijson.to_string
          with
          | Some e -> Ok (Refused e)
          | None -> Error "malformed refusal")
      | _ -> (
          match Minijson.member "done" json with
          | Some (Minijson.Bool true) -> (
              match
                ( int_member "served" json,
                  Option.bind (Minijson.member "total" json) Minijson.to_float )
              with
              | Some served, Some total -> Ok (Done (served, total))
              | _ -> Error "malformed done record")
          | _ -> (
              match
                (int_member "index" json,
                 Option.bind (Minijson.member "error" json) Minijson.to_string)
              with
              | Some i, _ -> Ok (Decision_line i)
              | None, Some e -> Ok (Refused e)
              | None, None -> Error "unrecognized server line")))

(* ---------- decisions ---------- *)

type decision = {
  index : int;
  site : int;
  demand : int list;
  service : Service.t;
  opened : Facility.t list;
  construction : float;
  assignment : float;
  total : float;
}

let buf_add_kind b (k : Facility.kind) =
  match k with
  | Facility.Small e -> buf_add_json_string b (Printf.sprintf "small(%d)" e)
  | Facility.Large -> buf_add_json_string b "large"
  | Facility.Custom s ->
      buf_add_json_string b
        ("custom("
        ^ String.concat "," (List.map string_of_int (Cset.elements s))
        ^ ")")

let buf_add_facility b (f : Facility.t) =
  Buffer.add_string b "{\"id\":";
  Buffer.add_string b (string_of_int f.id);
  Buffer.add_string b ",\"site\":";
  Buffer.add_string b (string_of_int f.site);
  Buffer.add_string b ",\"kind\":";
  buf_add_kind b f.kind;
  Buffer.add_string b ",\"cost\":";
  buf_add_float b f.cost;
  Buffer.add_char b '}'

let buf_add_service b (s : Service.t) =
  match s with
  | Service.To_single fid ->
      Buffer.add_string b "{\"kind\":\"single\",\"facility\":";
      Buffer.add_string b (string_of_int fid);
      Buffer.add_char b '}'
  | Service.Per_commodity pairs ->
      Buffer.add_string b "{\"kind\":\"per_commodity\",\"pairs\":[";
      List.iteri
        (fun i (e, fid) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '[';
          Buffer.add_string b (string_of_int e);
          Buffer.add_char b ',';
          Buffer.add_string b (string_of_int fid);
          Buffer.add_char b ']')
        pairs;
      Buffer.add_string b "]}"

(* Append one decision record to a caller-owned buffer: the hot serving
   path reuses one buffer per connection/session instead of growing a
   fresh 256-byte one per decision. *)
let decision_to_buffer ?latency_s b (d : decision) =
  Buffer.add_string b "{\"index\":";
  Buffer.add_string b (string_of_int d.index);
  Buffer.add_string b ",\"site\":";
  Buffer.add_string b (string_of_int d.site);
  Buffer.add_string b ",\"demand\":";
  buf_add_int_list b d.demand;
  Buffer.add_string b ",\"service\":";
  buf_add_service b d.service;
  Buffer.add_string b ",\"opened\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      buf_add_facility b f)
    d.opened;
  Buffer.add_string b "],\"construction\":";
  buf_add_float b d.construction;
  Buffer.add_string b ",\"assignment\":";
  buf_add_float b d.assignment;
  Buffer.add_string b ",\"total\":";
  buf_add_float b d.total;
  (match latency_s with
  | None -> ()
  | Some l -> Printf.bprintf b ",\"latency_s\":%.6f" l);
  Buffer.add_char b '}'

let decision_to_json ?latency_s (d : decision) =
  let b = Buffer.create 256 in
  decision_to_buffer ?latency_s b d;
  Buffer.contents b
