open Omflp_prelude
open Omflp_commodity
open Omflp_instance
open Omflp_core

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_float b v = Buffer.add_string b (Printf.sprintf "%.17g" v)

let buf_add_int_list b es =
  Buffer.add_char b '[';
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int e))
    es;
  Buffer.add_char b ']'

(* ---------- requests ---------- *)

let int_member key json =
  match Option.bind (Minijson.member key json) Minijson.to_float with
  | Some f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let demand_member key json =
  match Option.bind (Minijson.member key json) Minijson.to_list with
  | None -> None
  | Some items ->
      let rec ints acc = function
        | [] -> Some (List.rev acc)
        | j :: rest -> (
            match Minijson.to_float j with
            | Some f when Float.is_integer f -> ints (int_of_float f :: acc) rest
            | _ -> None)
      in
      ints [] items

let parse_request ~n_sites ~n_commodities line =
  match Minijson.of_string line with
  | exception Minijson.Parse_error msg -> Error ("bad JSON: " ^ msg)
  | json -> (
      match (int_member "site" json, demand_member "demand" json) with
      | None, _ -> Error {|missing or non-integer "site"|}
      | _, None -> Error {|missing or non-integer-list "demand"|}
      | Some site, Some demand ->
          if site < 0 || site >= n_sites then
            Error
              (Printf.sprintf "site %d out of range [0,%d)" site n_sites)
          else if demand = [] then Error "empty demand"
          else if
            List.exists (fun e -> e < 0 || e >= n_commodities) demand
          then
            Error
              (Printf.sprintf "demand commodity out of range [0,%d)"
                 n_commodities)
          else
            Ok
              (Request.make ~site
                 ~demand:(Cset.of_list ~n_commodities demand)))

let request_to_json ~index (r : Request.t) =
  let b = Buffer.create 64 in
  Buffer.add_string b "{\"index\":";
  Buffer.add_string b (string_of_int index);
  Buffer.add_string b ",\"site\":";
  Buffer.add_string b (string_of_int r.site);
  Buffer.add_string b ",\"demand\":";
  buf_add_int_list b (Cset.elements r.demand);
  Buffer.add_char b '}';
  Buffer.contents b

let parse_wal_line ~n_sites ~n_commodities line =
  match Minijson.of_string line with
  | exception Minijson.Parse_error msg -> Error ("bad JSON: " ^ msg)
  | json -> (
      match int_member "index" json with
      | None -> Error {|missing or non-integer "index"|}
      | Some index -> (
          match parse_request ~n_sites ~n_commodities line with
          | Error e -> Error e
          | Ok r -> Ok (index, r)))

(* ---------- decisions ---------- *)

type decision = {
  index : int;
  site : int;
  demand : int list;
  service : Service.t;
  opened : Facility.t list;
  construction : float;
  assignment : float;
  total : float;
}

let buf_add_kind b (k : Facility.kind) =
  match k with
  | Facility.Small e -> buf_add_json_string b (Printf.sprintf "small(%d)" e)
  | Facility.Large -> buf_add_json_string b "large"
  | Facility.Custom s ->
      buf_add_json_string b
        ("custom("
        ^ String.concat "," (List.map string_of_int (Cset.elements s))
        ^ ")")

let buf_add_facility b (f : Facility.t) =
  Buffer.add_string b "{\"id\":";
  Buffer.add_string b (string_of_int f.id);
  Buffer.add_string b ",\"site\":";
  Buffer.add_string b (string_of_int f.site);
  Buffer.add_string b ",\"kind\":";
  buf_add_kind b f.kind;
  Buffer.add_string b ",\"cost\":";
  buf_add_float b f.cost;
  Buffer.add_char b '}'

let buf_add_service b (s : Service.t) =
  match s with
  | Service.To_single fid ->
      Buffer.add_string b "{\"kind\":\"single\",\"facility\":";
      Buffer.add_string b (string_of_int fid);
      Buffer.add_char b '}'
  | Service.Per_commodity pairs ->
      Buffer.add_string b "{\"kind\":\"per_commodity\",\"pairs\":[";
      List.iteri
        (fun i (e, fid) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '[';
          Buffer.add_string b (string_of_int e);
          Buffer.add_char b ',';
          Buffer.add_string b (string_of_int fid);
          Buffer.add_char b ']')
        pairs;
      Buffer.add_string b "]}"

let decision_to_json ?latency_s (d : decision) =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"index\":";
  Buffer.add_string b (string_of_int d.index);
  Buffer.add_string b ",\"site\":";
  Buffer.add_string b (string_of_int d.site);
  Buffer.add_string b ",\"demand\":";
  buf_add_int_list b d.demand;
  Buffer.add_string b ",\"service\":";
  buf_add_service b d.service;
  Buffer.add_string b ",\"opened\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      buf_add_facility b f)
    d.opened;
  Buffer.add_string b "],\"construction\":";
  buf_add_float b d.construction;
  Buffer.add_string b ",\"assignment\":";
  buf_add_float b d.assignment;
  Buffer.add_string b ",\"total\":";
  buf_add_float b d.total;
  (match latency_s with
  | None -> ()
  | Some l -> Buffer.add_string b (Printf.sprintf ",\"latency_s\":%.6f" l));
  Buffer.add_char b '}';
  Buffer.contents b
