open Omflp_prelude

let format_id = "omflp.serve.v1"
let snapshot_magic = "omflp.serve.snapshot.v1"
let manifest_file = "MANIFEST.json"
let wal_file = "wal.jsonl"
let decisions_file = "decisions.jsonl"
let snapshot_file = "snapshot.bin"

type t = {
  dir : string;
  algo : string;
  seed : int option;
  instance_md5 : string;
  snapshot_every : int;
  wal_oc : out_channel;
  dec_oc : out_channel;
}

let dir t = t.dir
let algo t = t.algo
let seed t = t.seed
let snapshot_every t = t.snapshot_every

let fail fmt = Printf.ksprintf failwith fmt
let ( / ) = Filename.concat

let append_channel path =
  open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path

let manifest_json ~algo ~seed ~instance_md5 ~snapshot_every =
  Printf.sprintf
    "{\"format\":%S,\"algo\":%S,\"seed\":%s,\"instance_md5\":%S,\"snapshot_every\":%d}\n"
    format_id algo
    (match seed with None -> "null" | Some s -> string_of_int s)
    instance_md5 snapshot_every

let create ~dir ~algo ~seed ~instance_md5 ~snapshot_every =
  if snapshot_every <= 0 then
    invalid_arg "Checkpoint.create: snapshot_every must be positive";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    fail "Checkpoint.create: %s exists and is not a directory" dir;
  if Sys.file_exists (dir / manifest_file) then
    fail
      "Checkpoint.create: %s already holds a session (found %s); resume it \
       or pick a fresh directory"
      dir manifest_file;
  Atomic_file.write_string (dir / manifest_file)
    (manifest_json ~algo ~seed ~instance_md5 ~snapshot_every);
  {
    dir;
    algo;
    seed;
    instance_md5;
    snapshot_every;
    wal_oc = append_channel (dir / wal_file);
    dec_oc = append_channel (dir / decisions_file);
  }

(* ---------- durable appends ---------- *)

let append_wal t line =
  output_string t.wal_oc line;
  output_char t.wal_oc '\n';
  flush t.wal_oc

let append_decision t line =
  output_string t.dec_oc line;
  output_char t.dec_oc '\n';
  flush t.dec_oc

(* Batched appends: [buf] holds whole newline-terminated lines; one
   write + flush makes the batch durable together. The WAL batch is
   still flushed before the first step it covers, so the crash-window
   invariant (snapshot <= decisions <= WAL) is unchanged. *)
let append_wal_batch t buf =
  Buffer.output_buffer t.wal_oc buf;
  flush t.wal_oc

let append_decision_batch t buf =
  Buffer.output_buffer t.dec_oc buf;
  flush t.dec_oc

let close t =
  close_out t.wal_oc;
  close_out t.dec_oc

(* ---------- snapshots ---------- *)

let write_snapshot t ~count blob =
  Atomic_file.write (t.dir / snapshot_file) (fun oc ->
      Printf.fprintf oc "%s %d %s\n" snapshot_magic count
        (Digest.to_hex (Digest.string blob));
      output_string oc blob)

let load_snapshot ~dir =
  let path = dir / snapshot_file in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let header, blob =
      match String.index_opt content '\n' with
      | None -> fail "Checkpoint.load_snapshot: corrupt snapshot header"
      | Some i ->
          ( String.sub content 0 i,
            String.sub content (i + 1) (String.length content - i - 1) )
    in
    match String.split_on_char ' ' header with
    | [ magic; count; md5 ] when magic = snapshot_magic -> (
        match int_of_string_opt count with
        | None -> fail "Checkpoint.load_snapshot: corrupt snapshot header"
        | Some count ->
            if Digest.to_hex (Digest.string blob) <> md5 then
              fail
                "Checkpoint.load_snapshot: snapshot integrity check failed \
                 (truncated or corrupt)";
            Some (count, blob))
    | _ -> fail "Checkpoint.load_snapshot: corrupt snapshot header"
  end

(* ---------- resume ---------- *)

(* Drop a torn (flushed-without-trailing-newline) final line; every line
   before the last flush ends in '\n', so at most the crash-interrupted
   record disappears. *)
let truncate_torn_tail path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let len, content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let n = in_channel_length ic in
          (n, really_input_string ic n))
    in
    let keep =
      match String.rindex_opt content '\n' with
      | None -> 0
      | Some i -> i + 1
    in
    if keep < len then Unix.truncate path keep
  end

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  end

type resume = {
  cp : t;
  wal : (int * Omflp_instance.Request.t) list;
  decisions : string list;
  n_decisions : int;
  snapshot : (int * string) option;
}

(* Manifest fields feed arithmetic later ([count mod snapshot_every]) and
   algorithm seeding, so a hand-edited or corrupt value must fail here
   with a named error, not surface as a bare [Division_by_zero] or a
   silently truncated float mid-session. *)
let load_manifest ~dir =
  let path = dir / manifest_file in
  if not (Sys.file_exists path) then
    fail "Checkpoint.resume: %s has no %s (not a session directory)" dir
      manifest_file;
  let json =
    try Minijson.of_file path
    with Minijson.Parse_error msg ->
      fail "Checkpoint.resume: corrupt manifest: %s" msg
  in
  let str key =
    match Option.bind (Minijson.member key json) Minijson.to_string with
    | Some s -> s
    | None -> fail "Checkpoint.resume: manifest misses %S" key
  in
  let int key =
    match Minijson.member key json with
    | None -> fail "Checkpoint.resume: manifest misses %S" key
    | Some (Minijson.Num f) when Float.is_integer f -> int_of_float f
    | Some (Minijson.Num f) ->
        fail "Checkpoint.resume: manifest field %S must be an integer (got %g)"
          key f
    | Some _ ->
        fail "Checkpoint.resume: manifest field %S must be an integer" key
  in
  let snapshot_every = int "snapshot_every" in
  if snapshot_every < 1 then
    fail "Checkpoint.resume: manifest field \"snapshot_every\" must be >= 1 \
          (got %d)"
      snapshot_every;
  let seed =
    match Minijson.member "seed" json with
    | None | Some Minijson.Null -> None
    | Some (Minijson.Num f) when Float.is_integer f -> Some (int_of_float f)
    | Some _ ->
        fail "Checkpoint.resume: manifest field \"seed\" must be an integer \
              or null"
  in
  (str "format", str "algo", seed, str "instance_md5", snapshot_every)

let open_resume ~dir ~n_sites ~n_commodities ~instance_md5 =
  let format, algo, seed, manifest_md5, snapshot_every =
    load_manifest ~dir
  in
  if format <> format_id then
    fail "Checkpoint.resume: unsupported checkpoint format %S" format;
  if manifest_md5 <> instance_md5 then
    fail
      "Checkpoint.resume: instance mismatch: session was started on an \
       instance with md5 %s, got %s"
      manifest_md5 instance_md5;
  truncate_torn_tail (dir / wal_file);
  truncate_torn_tail (dir / decisions_file);
  let wal =
    List.mapi
      (fun i line ->
        match Wire.parse_wal_line ~n_sites ~n_commodities line with
        | Error e -> fail "Checkpoint.resume: corrupt WAL line %d: %s" i e
        | Ok (index, r) ->
            if index <> i then
              fail
                "Checkpoint.resume: WAL line %d carries index %d (log not \
                 sequential)"
                i index;
            (index, r))
      (read_lines (dir / wal_file))
  in
  let decisions = read_lines (dir / decisions_file) in
  let n_decisions = List.length decisions in
  let n_wal = List.length wal in
  if n_decisions > n_wal then
    fail
      "Checkpoint.resume: %d decisions but only %d WAL entries (decision \
       log ahead of its WAL)"
      n_decisions n_wal;
  let snapshot = load_snapshot ~dir in
  (* The write order per request is WAL flush -> decision flush ->
     snapshot, so a genuine crash always leaves
     snapshot count <= durable decisions <= WAL length; anything else is
     external corruption, and restoring would leave a hole in the
     decision log. *)
  (match snapshot with
  | Some (count, _) when count > n_decisions ->
      fail
        "Checkpoint.resume: snapshot covers %d requests but only %d \
         decisions are durable (decision log truncated?)"
        count n_decisions
  | _ -> ());
  let cp =
    {
      dir;
      algo;
      seed;
      instance_md5;
      snapshot_every;
      wal_oc = append_channel (dir / wal_file);
      dec_oc = append_channel (dir / decisions_file);
    }
  in
  { cp; wal; decisions; n_decisions; snapshot }
