(** Durable session state: write-ahead request log, decision log, and
    versioned state snapshots in one directory.

    Layout (all inside the checkpoint directory):
    - [MANIFEST.json] — format id, algorithm, seed, instance md5,
      snapshot cadence; written atomically once at session creation;
    - [wal.jsonl] — one canonical request line per accepted request,
      appended and flushed {e before} the algorithm steps;
    - [decisions.jsonl] — one canonical decision line per served request,
      appended and flushed {e after} the step (so the decision log never
      runs ahead of the WAL);
    - [snapshot.bin] — the latest algorithm+store snapshot, replaced
      atomically (temp + rename) every [snapshot_every] requests, with an
      MD5 of the blob in the header checked {e before} any decoding.

    Durability contract: every write is flushed per record, so a crash —
    including SIGKILL — loses at most the record being written; resume
    truncates a torn trailing line and replays the WAL suffix not covered
    by the snapshot. *)

type t

val dir : t -> string
val algo : t -> string
val seed : t -> int option
val snapshot_every : t -> int

(** [create ~dir ~algo ~seed ~instance_md5 ~snapshot_every] starts a fresh
    session, creating [dir] when missing. Raises [Failure] if [dir]
    already holds a session manifest. *)
val create :
  dir:string ->
  algo:string ->
  seed:int option ->
  instance_md5:string ->
  snapshot_every:int ->
  t

(** [append_wal t line] durably appends one request line (flushes). *)
val append_wal : t -> string -> unit

(** [append_decision t line] durably appends one decision line. *)
val append_decision : t -> string -> unit

(** [append_wal_batch t buf] durably appends a batch of whole
    newline-terminated request lines in one write + flush. The batch
    must still be made durable before the first step it covers. *)
val append_wal_batch : t -> Buffer.t -> unit

(** [append_decision_batch t buf] durably appends a batch of whole
    newline-terminated decision lines in one write + flush. *)
val append_decision_batch : t -> Buffer.t -> unit

(** [write_snapshot t ~count blob] atomically replaces the snapshot with
    [blob], recording that it covers the first [count] requests. *)
val write_snapshot : t -> count:int -> string -> unit

(** [load_snapshot ~dir] reads the snapshot back, checking its MD5
    against the header before returning the blob. [None] when no snapshot
    was written yet; raises [Failure] on a corrupt or truncated file. *)
val load_snapshot : dir:string -> (int * string) option

val close : t -> unit

(** What {!open_resume} found: the reopened checkpoint, the full WAL in
    index order, the durable decision lines (verbatim, so a replay can be
    cross-checked against them), and the latest snapshot. Invariants
    checked: sequential WAL indexes,
    [snapshot count <= n_decisions <= |wal|] (the per-request write order
    is WAL flush, then decision flush, then snapshot — a genuine crash
    cannot violate this chain, only external corruption can). *)
type resume = {
  cp : t;
  wal : (int * Omflp_instance.Request.t) list;
  decisions : string list;  (** durable decision lines, in index order *)
  n_decisions : int;  (** [List.length decisions] *)
  snapshot : (int * string) option;
}

(** [open_resume ~dir ~n_sites ~n_commodities ~instance_md5] validates the
    manifest (format id, instance md5, integral/positive
    [snapshot_every], integral-or-null [seed]), truncates torn tails of
    both logs, parses the WAL, and integrity-checks the snapshot. All
    failures are [Failure] with a named [Checkpoint.resume: ...]
    message. *)
val open_resume :
  dir:string ->
  n_sites:int ->
  n_commodities:int ->
  instance_md5:string ->
  resume
