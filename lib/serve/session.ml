open Omflp_commodity
open Omflp_instance
open Omflp_core
open Omflp_obs

type state = State : (module Algo_intf.ALGO with type t = 'a) * 'a -> state

type t = {
  env : Problem_env.t;
  state : state;
  checkpoint : Checkpoint.t option;
  mutable count : int;
  mutable n_facilities_seen : int;
  (* Reused per-session scratch for batched WAL/decision appends; a
     session is drained by one worker at a time, so no lock. *)
  wal_buf : Buffer.t;
  dec_buf : Buffer.t;
}

let requests_c = Metrics.counter "serve.requests"
let resume_c = Metrics.counter "serve.resume"
let replayed_c = Metrics.counter "serve.replayed"
let snapshots_c = Metrics.counter "serve.snapshots"
let step_t = Metrics.timer "serve.step"

let fail fmt = Printf.ksprintf failwith fmt

let count t = t.count

let running_costs t =
  match t.state with
  | State ((module A), st) ->
      let store = A.store st in
      ( Facility_store.construction_cost store,
        Facility_store.assignment_cost store,
        Facility_store.total_cost store )

let create ~algo ?seed ?checkpoint env =
  let (module A : Algo_intf.ALGO) = algo in
  (match checkpoint with
  | Some cp ->
      if Checkpoint.algo cp <> A.name then
        fail "Session.create: checkpoint belongs to %s, serving %s"
          (Checkpoint.algo cp) A.name
  | None -> ());
  (* Family capability check up front: a mismatched algorithm must refuse
     at session open, never crash mid-run. *)
  Problem_env.require ~algo:A.name ~family:A.family env;
  let st = A.create ?seed env in
  {
    env;
    state = State ((module A), st);
    checkpoint;
    count = 0;
    n_facilities_seen = 0;
    wal_buf = Buffer.create 256;
    dec_buf = Buffer.create 1024;
  }

(* One algorithm step plus decision-record assembly; WAL and decision-log
   appends are the caller's business (live vs replay differ there). *)
let step_only t (r : Request.t) =
  match t.state with
  | State ((module A), st) ->
      let t0 = Metrics.now () in
      let service = A.step st r in
      Metrics.record_span step_t (Metrics.now () -. t0);
      let store = A.store st in
      let n_fac = Facility_store.n_facilities store in
      let opened =
        List.init (n_fac - t.n_facilities_seen) (fun i ->
            Facility_store.facility store (t.n_facilities_seen + i))
      in
      let d =
        {
          Wire.index = t.count;
          site = r.site;
          demand = Cset.elements r.demand;
          service;
          opened;
          construction = Facility_store.construction_cost store;
          assignment = Facility_store.assignment_cost store;
          total = Facility_store.total_cost store;
        }
      in
      t.n_facilities_seen <- n_fac;
      t.count <- t.count + 1;
      d

let take_snapshot t =
  match (t.checkpoint, t.state) with
  | None, _ -> ()
  | Some cp, State ((module A), st) ->
      Checkpoint.write_snapshot cp ~count:t.count (A.snapshot st);
      Metrics.incr snapshots_c

let maybe_snapshot t =
  match t.checkpoint with
  | Some cp when t.count mod Checkpoint.snapshot_every cp = 0 ->
      take_snapshot t
  | _ -> ()

let handle t (r : Request.t) =
  Metrics.incr requests_c;
  (match t.checkpoint with
  | Some cp -> Checkpoint.append_wal cp (Wire.request_to_json ~index:t.count r)
  | None -> ());
  let d = step_only t r in
  (match t.checkpoint with
  | Some cp -> Checkpoint.append_decision cp (Wire.decision_to_json d)
  | None -> ());
  maybe_snapshot t;
  Trace_sink.emit_current ~kind:"serve.step"
    [
      ("index", Trace_sink.Int d.Wire.index);
      ("site", Trace_sink.Int d.Wire.site);
      ("total", Trace_sink.Float d.Wire.total);
    ];
  d

(* Batch entry point: the WAL lines of the whole batch are made durable
   in one flush before any step runs, every request is then stepped in
   arrival order, and the decision lines land in one flush at the end —
   identical bytes to per-request [handle], grouped. A crash or a
   failing step mid-batch leaves the standard crash-window shape (WAL
   ahead of decisions); the decisions of the stepped prefix are flushed
   before the error propagates, so the durable log never falls behind a
   snapshot written at [close]. Decision records observe the per-request
   cost evolution, so stepping stays per-request here — the amortized
   [step_batch] entry is for decision-free paths (simulator, oracle,
   bench). *)
let handle_batch t (reqs : Request.t array) =
  let n = Array.length reqs in
  if n = 0 then [||]
  else begin
    Metrics.add requests_c n;
    (match t.checkpoint with
    | Some cp ->
        Buffer.clear t.wal_buf;
        Array.iteri
          (fun i r ->
            Buffer.add_string t.wal_buf
              (Wire.request_to_json ~index:(t.count + i) r);
            Buffer.add_char t.wal_buf '\n')
          reqs;
        Checkpoint.append_wal_batch cp t.wal_buf
    | None -> ());
    Buffer.clear t.dec_buf;
    let flush_decisions () =
      match t.checkpoint with
      | Some cp when Buffer.length t.dec_buf > 0 ->
          Checkpoint.append_decision_batch cp t.dec_buf;
          Buffer.clear t.dec_buf
      | _ -> ()
    in
    let ds_rev = ref [] in
    (try
       Array.iter
         (fun r ->
           let d = step_only t r in
           (match t.checkpoint with
           | Some _ ->
               Wire.decision_to_buffer t.dec_buf d;
               Buffer.add_char t.dec_buf '\n'
           | None -> ());
           Trace_sink.emit_current ~kind:"serve.step"
             [
               ("index", Trace_sink.Int d.Wire.index);
               ("site", Trace_sink.Int d.Wire.site);
               ("total", Trace_sink.Float d.Wire.total);
             ];
           ds_rev := d :: !ds_rev)
         reqs
     with e ->
       flush_decisions ();
       raise e);
    flush_decisions ();
    (match t.checkpoint with
    | Some cp
      when t.count / Checkpoint.snapshot_every cp
           > (t.count - n) / Checkpoint.snapshot_every cp ->
        take_snapshot t
    | _ -> ());
    let ds = Array.make n (List.hd !ds_rev) in
    List.iteri (fun i d -> ds.(n - 1 - i) <- d) !ds_rev;
    ds
  end

let resume ~algo (rz : Checkpoint.resume) env =
  let (module A : Algo_intf.ALGO) = algo in
  if Checkpoint.algo rz.cp <> A.name then
    fail "Session.resume: checkpoint belongs to %s, serving %s"
      (Checkpoint.algo rz.cp) A.name;
  Problem_env.require ~algo:A.name ~family:A.family env;
  Metrics.incr resume_c;
  let start, st =
    match rz.snapshot with
    | Some (c, blob) -> (c, A.restore env blob)
    | None -> (0, A.create ?seed:(Checkpoint.seed rz.cp) env)
  in
  let t =
    {
      env;
      state = State ((module A), st);
      checkpoint = Some rz.cp;
      count = start;
      n_facilities_seen = Facility_store.n_facilities (A.store st);
      wal_buf = Buffer.create 256;
      dec_buf = Buffer.create 1024;
    }
  in
  (* Replay the WAL suffix the snapshot does not cover. Decisions already
     durable (index < n_decisions) are recomputed and cross-checked byte
     for byte against the durable log — a snapshot that restores into a
     different state (corruption, a planted blob, a nondeterministic
     environment) would otherwise silently continue a decision stream
     that contradicts what the client already saw. The rest were lost in
     the crash window and are appended and handed back for
     re-emission. *)
  let durable = Array.of_list rz.decisions in
  let reemitted = ref [] in
  List.iter
    (fun (idx, r) ->
      if idx >= start then begin
        if idx <> t.count then
          fail "Session.resume: WAL replay out of order (at %d, expected %d)"
            idx t.count;
        Metrics.incr replayed_c;
        let d = step_only t r in
        if d.Wire.index < rz.n_decisions then begin
          let recomputed = Wire.decision_to_json d in
          if recomputed <> durable.(d.Wire.index) then
            fail
              "Session.resume: replay diverges from the durable decision \
               log at index %d (recomputed %s, durable %s) — the snapshot \
               does not reproduce the state that emitted the log"
              d.Wire.index recomputed
              durable.(d.Wire.index)
        end
        else begin
          (match t.checkpoint with
          | Some cp -> Checkpoint.append_decision cp (Wire.decision_to_json d)
          | None -> ());
          reemitted := d :: !reemitted
        end
      end)
    rz.wal;
  Trace_sink.emit_current ~kind:"serve.resume"
    [
      ("start", Trace_sink.Int start);
      ("replayed", Trace_sink.Int (t.count - start));
      ("reemitted", Trace_sink.Int (List.length !reemitted));
    ];
  (t, List.rev !reemitted)

let close t =
  match t.checkpoint with
  | None -> ()
  | Some cp ->
      take_snapshot t;
      Checkpoint.close cp
