(** Long-lived serving sessions: requests in, decision records out, with
    optional crash-robust checkpointing.

    A session wraps any registered {!Omflp_core.Algo_intf.ALGO} and feeds
    it requests one at a time. With a {!Checkpoint.t} attached, every
    request is write-ahead logged before the algorithm steps and every
    decision is appended after; a state snapshot is written every
    [snapshot_every] requests and at {!close}. {!resume} restores the
    snapshot, replays the WAL suffix, and — by the byte-identical
    continuation contract of {!Omflp_core.Algo_intf.ALGO.snapshot} —
    continues exactly the decision stream of the uninterrupted run.

    Observability: counters [serve.requests], [serve.resume],
    [serve.replayed], [serve.snapshots]; timer [serve.step]; trace events
    [serve.step] and [serve.resume] through the current sink. *)

type t

(** [create ~algo ?seed ?checkpoint env] starts a fresh session. Raises
    [Failure] when [checkpoint] was created for another algorithm, or
    when the algorithm's declared family doesn't match [env]'s (see
    {!Omflp_instance.Problem_env.mismatch_message}) — sessions refuse at
    open, never crash mid-run. *)
val create :
  algo:Omflp_core.Algo_intf.packed ->
  ?seed:int ->
  ?checkpoint:Checkpoint.t ->
  Omflp_instance.Problem_env.t ->
  t

(** [handle t r] serves one request: WAL append (flushed), algorithm
    step, decision append (flushed), periodic snapshot. *)
val handle : t -> Omflp_instance.Request.t -> Wire.decision

(** [handle_batch t reqs] serves a batch with one WAL flush before the
    first step and one decision flush after the last — byte-identical
    log contents to per-request {!handle}, grouped. A failing step
    flushes the decisions of the stepped prefix before the exception
    propagates, preserving the crash-window shape
    (snapshot <= decisions <= WAL). *)
val handle_batch :
  t -> Omflp_instance.Request.t array -> Wire.decision array

(** [resume ~algo rz env] revives a session from what
    {!Checkpoint.open_resume} found and replays the uncovered WAL
    suffix. Every recomputed decision that is already durable is
    cross-checked byte for byte against the durable log; a mismatch —
    a snapshot that does not reproduce the state that emitted the log —
    raises [Failure] instead of silently contradicting what the client
    already saw. Returns the session positioned after the last WAL entry
    plus the decisions that were {e not} yet durable (crash window) —
    the caller should re-emit exactly those. *)
val resume :
  algo:Omflp_core.Algo_intf.packed ->
  Checkpoint.resume ->
  Omflp_instance.Problem_env.t ->
  (t * Wire.decision list)

(** [count t] is the number of requests served (including replayed). *)
val count : t -> int

(** [running_costs t] is (construction, assignment, total) so far. *)
val running_costs : t -> float * float * float

(** [close t] writes a final snapshot and closes the checkpoint (no-op
    without one). *)
val close : t -> unit
