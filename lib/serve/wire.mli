(** JSONL wire format of the serving layer.

    Requests arrive one JSON object per line, [{"site":s,"demand":[e,...]}];
    each produces one decision record. The {e canonical} decision encoding
    (no [latency_s] field, floats printed [%.17g]) is what lands in the
    checkpoint's decision log, so an interrupted-and-resumed session can be
    diffed byte-for-byte against a straight-through run; the interactive
    stream adds the per-step latency on top. *)

(** A decision record: what happened to request [index]. [opened] lists
    facilities opened {e by this step} in opening order; the cost fields
    are the running totals after the step. *)
type decision = {
  index : int;
  site : int;
  demand : int list;
  service : Omflp_core.Service.t;
  opened : Omflp_core.Facility.t list;
  construction : float;
  assignment : float;
  total : float;
}

(** [parse_request ~n_sites ~n_commodities line] parses and validates one
    input line. Errors are human-readable and never exceptions. *)
val parse_request :
  n_sites:int ->
  n_commodities:int ->
  string ->
  (Omflp_instance.Request.t, string) result

(** [request_to_json ~index r] is the canonical WAL encoding,
    [{"index":k,"site":s,"demand":[...]}]. *)
val request_to_json : index:int -> Omflp_instance.Request.t -> string

(** [parse_wal_line ~n_sites ~n_commodities line] reads back a
    {!request_to_json} line. *)
val parse_wal_line :
  n_sites:int ->
  n_commodities:int ->
  string ->
  (int * Omflp_instance.Request.t, string) result

(** [decision_to_json ?latency_s d] encodes a decision record on one line.
    Omit [latency_s] for the canonical (replay-stable) form. *)
val decision_to_json : ?latency_s:float -> decision -> string

(** [decision_to_buffer ?latency_s b d] appends the same encoding to a
    caller-owned buffer (no trailing newline). The serving hot path
    reuses one buffer per connection/session instead of allocating a
    fresh one per decision. *)
val decision_to_buffer : ?latency_s:float -> Buffer.t -> decision -> unit

(** {1 Session-open handshake}

    A multi-session connection ({!Server}) opens with one client hello
    line, [{"session":ID,"algo":...,"seed":...,"snapshot_every":...,
    "checkpoint":...,"resume":...}] — every field but [session] optional,
    defaults coming from the server's configuration. The server answers
    with an ack, [{"ok":true,"session":...,"algo":...,"served":n,
    "reemitted":k}], followed by [k] re-emitted crash-window decision
    lines (resume only); a refused handshake gets
    [{"ok":false,"error":...}] and the connection is closed. After the
    ack the stream is the plain request/decision JSONL of stdin mode, and
    a client that half-closes its sending side receives a final
    [{"done":true,"served":n,"total":c}] record. *)

type hello = {
  h_session : string;  (** 1-64 chars of [A-Za-z0-9._-], leading alnum *)
  h_algo : string option;
  h_seed : int option;
  h_snapshot_every : int option;
  h_checkpoint : bool option;
      (** [Some false] opts out of checkpointing even under a server
          checkpoint root; [None] follows the server default. *)
  h_resume : bool;
}

val parse_hello : string -> (hello, string) result

(** [hello_to_json h] is the canonical client hello line (optional fields
    omitted when [None]). *)
val hello_to_json : hello -> string

type ack = {
  a_session : string;
  a_algo : string;
  a_served : int;  (** requests already served before this connection *)
  a_reemitted : int;  (** crash-window decisions re-sent after the ack *)
}

val ack_to_json : ack -> string

(** [error_to_json msg] is [{"ok":false,"error":msg}] — the refused
    handshake and mid-stream bad-request shape. *)
val error_to_json : string -> string

(** [done_to_json ~served ~total] is the end-of-session summary record. *)
val done_to_json : served:int -> total:float -> string

(** What a client sees on a server connection, one line at a time. *)
type server_line =
  | Ack of ack
  | Refused of string
  | Decision_line of int  (** a decision record, by request index *)
  | Done of int * float  (** served count, total cost *)

val parse_server_line : string -> (server_line, string) result
