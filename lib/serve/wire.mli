(** JSONL wire format of the serving layer.

    Requests arrive one JSON object per line, [{"site":s,"demand":[e,...]}];
    each produces one decision record. The {e canonical} decision encoding
    (no [latency_s] field, floats printed [%.17g]) is what lands in the
    checkpoint's decision log, so an interrupted-and-resumed session can be
    diffed byte-for-byte against a straight-through run; the interactive
    stream adds the per-step latency on top. *)

(** A decision record: what happened to request [index]. [opened] lists
    facilities opened {e by this step} in opening order; the cost fields
    are the running totals after the step. *)
type decision = {
  index : int;
  site : int;
  demand : int list;
  service : Omflp_core.Service.t;
  opened : Omflp_core.Facility.t list;
  construction : float;
  assignment : float;
  total : float;
}

(** [parse_request ~n_sites ~n_commodities line] parses and validates one
    input line. Errors are human-readable and never exceptions. *)
val parse_request :
  n_sites:int ->
  n_commodities:int ->
  string ->
  (Omflp_instance.Request.t, string) result

(** [request_to_json ~index r] is the canonical WAL encoding,
    [{"index":k,"site":s,"demand":[...]}]. *)
val request_to_json : index:int -> Omflp_instance.Request.t -> string

(** [parse_wal_line ~n_sites ~n_commodities line] reads back a
    {!request_to_json} line. *)
val parse_wal_line :
  n_sites:int ->
  n_commodities:int ->
  string ->
  (int * Omflp_instance.Request.t, string) result

(** [decision_to_json ?latency_s d] encodes a decision record on one line.
    Omit [latency_s] for the canonical (replay-stable) form. *)
val decision_to_json : ?latency_s:float -> decision -> string
