(** Shared command-line plumbing for every [omflp] subcommand.

    Each flag has ONE definition and one documented behaviour; commands
    compose these terms instead of redeclaring them, so [--jobs],
    [--seed], [--metrics], and [--trace] parse and error identically
    everywhere. The error strings are part of the CLI contract and are
    pinned by [test/test_cli.ml]. *)

(** [--seed N] (default 42). *)
val seed_arg : int Cmdliner.Term.t

(** [--jobs N] / [-j N] (default 1; env [OMFLP_JOBS]). Parsing only —
    validate with {!validate_jobs} or {!apply_jobs}. *)
val jobs_arg : int Cmdliner.Term.t

(** [--metrics]: enable lib/obs and print the report after the run. *)
val metrics_arg : bool Cmdliner.Term.t

(** [--trace FILE]: stream a JSON-lines trace to [FILE]. *)
val trace_arg : string option Cmdliner.Term.t

(** The uniform error strings (pure, for tests and callers). *)

val jobs_error : int -> string

val validate_jobs : int -> (unit, string) result

val nonneg_error : flag:string -> int -> string

val validate_nonneg : flag:string -> int -> (unit, string) result

(** [conflict_error "--a" "--b"] — two mutually-exclusive flags were both
    given. *)
val conflict_error : string -> string -> string

(** [die msg] prints [msg] to stderr and exits with status 2 (the CLI's
    usage-error status). *)
val die : string -> 'a

val or_die : (unit, string) result -> unit

(** [apply_jobs n] validates [n] ({!die}s on error) and installs it as
    the default pool size. *)
val apply_jobs : int -> unit

(** [with_obs ~metrics ~trace f] runs [f] with lib/obs configured per the
    shared flags: metrics report printed afterwards when [metrics], trace
    sink installed for the duration when [trace] is given. *)
val with_obs : metrics:bool -> trace:string option -> (unit -> 'a) -> 'a
