open Cmdliner

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ]
        ~env:(Cmd.Env.info "OMFLP_JOBS")
        ~docv:"N"
        ~doc:
          "Run independent units of work (repetitions, experiments, \
           scenarios) on $(docv) domains. Seeds are index-derived, so the \
           output is byte-identical for every value of $(docv); 1 (the \
           default) stays fully serial.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Enable lib/obs instrumentation and print counters, timers, and \
           latency histograms after the run.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSON-lines trace (one record per request: site, demand \
           size, service shape, latency) to $(docv).")

let jobs_error n = Printf.sprintf "omflp: --jobs must be >= 1 (got %d)" n

let validate_jobs n = if n >= 1 then Ok () else Error (jobs_error n)

let nonneg_error ~flag n =
  Printf.sprintf "omflp: %s must be >= 0 (got %d)" flag n

let validate_nonneg ~flag n =
  if n >= 0 then Ok () else Error (nonneg_error ~flag n)

let conflict_error a b =
  Printf.sprintf
    "omflp: %s and %s conflict (together they would run nothing)" a b

let die msg =
  Printf.eprintf "%s\n" msg;
  exit 2

let or_die = function Ok () -> () | Error msg -> die msg

let apply_jobs n =
  or_die (validate_jobs n);
  Omflp_prelude.Pool.set_default_jobs n

let with_obs ~metrics ~trace f =
  Omflp_obs.Metrics.set_enabled metrics;
  let sink =
    Option.map
      (fun file ->
        try Omflp_obs.Trace_sink.open_file file
        with Sys_error msg ->
          die (Printf.sprintf "omflp: cannot open trace file: %s" msg))
      trace
  in
  Option.iter Omflp_obs.Trace_sink.install sink;
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun s ->
          Omflp_obs.Trace_sink.uninstall ();
          Omflp_obs.Trace_sink.close s)
        sink)
    (fun () ->
      let result = f () in
      if metrics then Omflp_obs.Report.print ~title:"metrics (lib/obs)" ();
      Option.iter (fun file -> Printf.printf "wrote trace to %s\n" file) trace;
      result)
