open Omflp_prelude
open Omflp_commodity
open Omflp_instance

type t = {
  index : int;
  label : string;
  instance : Instance.t;
  algo_seed : int;
}

(* Index-derived seeding: the RNG of scenario [i] is a pure function of
   (master_seed, i) — the golden-ratio increment is SplitMix64's own
   gamma, so consecutive indices land on well-separated streams. *)
let scenario_rng ~master_seed ~index =
  Splitmix.create
    (Int64.add
       (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L)
       (Int64.of_int master_seed))

let pick rng arr = arr.(Splitmix.int rng (Array.length arr))

(* Construction-cost families. Each entry is (label, builder); builders
   that need randomness capture their own split so a family choice stays
   a deterministic function of the scenario RNG. *)
let cost_family rng =
  match Splitmix.int rng 7 with
  | 0 | 1 | 2 | 3 ->
      let x = pick rng [| 0.5; 1.0; 1.5; 2.0 |] in
      ( Printf.sprintf "x=%.1f" x,
        fun ~n_commodities ~n_sites ->
          Cost_function.power_law ~n_commodities ~n_sites ~x )
  | 4 ->
      let c = pick rng [| 0.5; 1.0; 4.0 |] in
      ( Printf.sprintf "const=%.1f" c,
        fun ~n_commodities ~n_sites ->
          Cost_function.constant ~n_commodities ~n_sites ~cost:c )
  | 5 -> ("theorem2", Cost_function.theorem2)
  | _ ->
      let r = Splitmix.split rng in
      ( "site-scaled(x=1)",
        fun ~n_commodities ~n_sites ->
          let multipliers =
            Array.init n_sites (fun _ ->
                Sampler.uniform_float r ~lo:0.5 ~hi:4.0)
          in
          Cost_function.site_scaled
            (Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
            multipliers )

let demand_model rng ~n_commodities =
  match Splitmix.int rng 3 with
  | 0 -> Demand.Bernoulli { p = pick rng [| 0.3; 0.5; 0.7 |] }
  | 1 -> Demand.Singletons { zipf_s = 1.0 }
  | _ -> Demand.Zipf_bundle { zipf_s = 1.0; max_size = min 3 n_commodities }

type forced = [ `Adversarial | `Random_order | `Iid ]

let forced_of_string = function
  | "adversarial" | "adv" -> Some `Adversarial
  | "random-order" | "ro" -> Some `Random_order
  | "iid" -> Some `Iid
  | _ -> None

(* Lease menus for forced leasing scenarios: (durations, factors). *)
let lease_menus =
  [|
    ([| 1; 4; 16 |], [| 1.0; 2.5; 6.0 |]);
    ([| 2; 8; 32 |], [| 1.5; 3.5; 8.0 |]);
    ([| 1; 2; 4; 8 |], [| 1.0; 1.8; 3.2; 5.5 |]);
  |]

let generate ?arrival:forced ?family:forced_family ~master_seed ~index () =
  let rng = scenario_rng ~master_seed ~index in
  let cost_label, cost = cost_family rng in
  (* Multi-site universes stop at 4 commodities: the oracle's certified
     lower bound solves an LP with n_sites * (2^|S| - 1) * (n_req + 1)
     columns — |S| = 5 already costs tens of seconds per instance. Larger
     universes are still fuzzed via the single-point adversary family,
     where the exact set-cover solver replaces the LP. *)
  let n_commodities = 2 + Splitmix.int rng 3 in
  let n_sites = 2 + Splitmix.int rng 6 in
  let n_requests = 4 + Splitmix.int rng 8 in
  let family, cost_label, inst =
    match Splitmix.int rng 6 with
    | 0 ->
        (* The Theorem 2 adversary fixes its own cost function and needs
           a larger universe to bite. *)
        let s = pick rng [| 4; 9; 16 |] in
        ("adversary", "theorem2", Generators.theorem2 rng ~n_commodities:s)
    | 1 ->
        ( "single-point",
          cost_label,
          Generators.single_point_adversary rng ~n_commodities ~cost
            ~n_requested:(1 + Splitmix.int rng n_commodities) )
    | 2 ->
        ( "line",
          cost_label,
          Generators.line rng ~n_sites ~n_requests ~n_commodities
            ~length:(pick rng [| 10.0; 100.0 |])
            ~demand:(demand_model rng ~n_commodities) ~cost )
    | 3 ->
        ( "clustered",
          cost_label,
          Generators.clustered rng ~clusters:(max 2 (n_sites / 2))
            ~per_cluster:2 ~n_requests ~n_commodities ~side:50.0 ~spread:2.0
            ~cost )
    | 4 ->
        ( "network",
          cost_label,
          Generators.network rng ~n_sites ~extra_edges:(n_sites / 2)
            ~n_requests ~n_commodities ~demand:(demand_model rng ~n_commodities) ~cost )
    | _ ->
        ( "uniform",
          cost_label,
          Generators.uniform_metric rng ~n_sites
            ~d:(pick rng [| 1.0; 10.0 |])
            ~n_requests ~n_commodities ~demand:(demand_model rng ~n_commodities) ~cost )
  in
  (* Arrival axis. Every draw below is consumed unconditionally so a
     [?arrival] forcing changes only the order treatment, never the
     instance family or the algo seed of the same (master_seed, index). *)
  let axis = Splitmix.int rng 8 in
  let ro_seed = Splitmix.int rng 1_000_000_000 in
  let iid_seed = Splitmix.int rng 1_000_000_000 in
  let iid_demand =
    (* Single-site families can carry up to 16 commodities; the oracle's
       exact bracket there is the set-cover solver, which needs
       singleton-friendly demands to stay affordable. Multi-site
       families are capped at 4 commodities, so any model is fine. *)
    if Instance.n_sites inst = 1 then Demand.Singletons { zipf_s = 1.0 }
    else demand_model rng ~n_commodities:(Instance.n_commodities inst)
  in
  let model =
    match forced with
    | Some `Adversarial -> if axis = 2 then `Reversed else `In_order
    | Some `Random_order -> `Random_order
    | Some `Iid -> `Iid
    | None -> (
        match axis with
        | 0 | 1 -> `In_order
        | 2 -> `Reversed
        | 3 | 4 | 5 -> `Random_order
        | _ -> `Iid)
  in
  let order, arrival, requests =
    let n_sites = Instance.n_sites inst in
    let n_commodities = Instance.n_commodities inst in
    match model with
    | `In_order ->
        ("in-order", Arrival.Adversarial, Array.copy inst.Instance.requests)
    | `Reversed ->
        let n = Array.length inst.Instance.requests in
        ( "reversed",
          Arrival.Adversarial,
          Array.init n (fun i -> inst.Instance.requests.(n - 1 - i)) )
    | `Random_order ->
        let a = Arrival.Random_order { seed = ro_seed } in
        ( Arrival.describe a,
          a,
          Arrival.apply a ~n_sites ~n_commodities inst.Instance.requests )
    | `Iid ->
        let a =
          Arrival.Iid
            {
              seed = iid_seed;
              n_requests = Array.length inst.Instance.requests;
              demand = iid_demand;
            }
        in
        ( Arrival.describe a,
          a,
          Arrival.apply a ~n_sites ~n_commodities inst.Instance.requests )
  in
  let algo_seed = Splitmix.int rng 1_000_000 in
  (* Problem-family axis. These draws come strictly after every draw the
     plain-OMFLP stream consumes (algo_seed is the historical last draw),
     and the unforced stream never applies them — so golden pins of the
     unforced scenarios stay byte-identical and a [?family] forcing
     reuses the same underlying instance with family data bolted on. *)
  let conn_rng = Splitmix.split rng in
  let menu_pick = Splitmix.int rng (Array.length lease_menus) in
  let family_tag, ext =
    match forced_family with
    | None | Some Problem_env.Family.Omflp -> ("", Problem_env.Omflp_ext)
    | Some Problem_env.Family.Nonmetric_fl ->
        let n = Instance.n_sites inst in
        let conn =
          (* Asymmetric per-cell perturbation of the metric — breaks the
             triangle inequality and symmetry while keeping magnitudes
             comparable to the OMFLP workload's distances. *)
          Array.init n (fun m ->
              Array.init n (fun s ->
                  let scale = Sampler.uniform_float conn_rng ~lo:0.25 ~hi:4.0 in
                  let base = Omflp_metric.Finite_metric.dist inst.Instance.metric m s in
                  (scale *. base) +. Sampler.uniform_float conn_rng ~lo:0.0 ~hi:0.5))
        in
        (" family=nonmetric-fl", Problem_env.Nonmetric { conn })
    | Some Problem_env.Family.Multi_facility_leasing ->
        let durations, factors = lease_menus.(menu_pick) in
        ( Printf.sprintf " family=leasing(menu %d)" menu_pick,
          Problem_env.Leasing { durations; factors } )
  in
  let label =
    Printf.sprintf
      "chk s%d i%d: %s cost=%s order=%s (%d sites, %d reqs, %d comm)%s"
      master_seed index family cost_label order
      (Instance.n_sites inst) (Array.length requests)
      (Instance.n_commodities inst) family_tag
  in
  let instance =
    let base =
      Instance.with_ext
        (Instance.make ~name:label ~metric:inst.Instance.metric
           ~cost:inst.Instance.cost ~requests)
        ext
    in
    { base with Instance.arrival }
  in
  { index; label; instance; algo_seed }

(* Golden-pin convention shared by tools/gen_digests,
   tools/gen_snapshot_fixtures, and the tests: indices 0–29 are the
   historical unforced (plain OMFLP) stream, 30–32 force the non-metric
   family, 33–35 force leasing; anything beyond is unforced again. *)
let golden_family ~index =
  if index < 30 then None
  else if index < 33 then Some Problem_env.Family.Nonmetric_fl
  else if index < 36 then Some Problem_env.Family.Multi_facility_leasing
  else None

let golden ~master_seed ~index =
  generate ?family:(golden_family ~index) ~master_seed ~index ()
