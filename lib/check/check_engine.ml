open Omflp_prelude
open Omflp_instance
open Omflp_obs

type finding = {
  scenario : string;
  violation : Oracle.violation;
  instance : Instance.t option;
  shrink_steps : int;
  replay_path : string option;
}

type report = {
  scenarios : int;
  replays : int;
  determinism_checked : int;
  findings : finding list;
}

let m_scenarios = Metrics.counter "check.scenarios"

let m_replays = Metrics.counter "check.replays"

let m_findings = Metrics.counter "check.findings"

let replay_pass ?algos ~seed entries =
  List.concat_map
    (fun (path, entry) ->
      Metrics.incr m_replays;
      match entry with
      | Error msg ->
          [
            {
              scenario = path;
              violation =
                { Oracle.check = "corpus-load"; algo = "(corpus)"; detail = msg };
              instance = None;
              shrink_steps = 0;
              replay_path = Some path;
            };
          ]
      | Ok inst ->
          List.map
            (fun v ->
              {
                scenario = inst.Instance.name;
                violation = v;
                instance = Some inst;
                shrink_steps = 0;
                replay_path = Some path;
              })
            (Oracle.check_instance ?algos ~seed inst))
    entries

let run ?pool ?algos ?(corpus_dir = Some Corpus.default_dir) ?(replay = true)
    ?(shrink = true) ?(determinism_sample = 4) ?arrival ?family ~budget ~seed
    () =
  if budget < 0 then invalid_arg "Check_engine.run: negative budget";
  let generate index =
    Scenario.generate ?arrival ?family ~master_seed:seed ~index ()
  in
  (* With no explicit pool the oracle family-filters per instance; the
     determinism cross-check mirrors that so both passes exercise the
     same algorithm set. *)
  let algos_for inst =
    match algos with
    | Some l -> l
    | None -> Omflp_core.Registry.of_family (Instance.family inst)
  in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  (* 1. Replay the corpus (serial: corpora are small and findings should
     print in a stable order). *)
  let corpus_entries =
    match corpus_dir with
    | Some dir when replay -> Corpus.load_all ~dir
    | _ -> []
  in
  let replay_findings = replay_pass ?algos ~seed corpus_entries in
  (* 2. Fresh scenarios, fanned out over the pool. Each task is a pure
     function of (seed, index); metrics shards are domain-safe. *)
  let results =
    Pool.map pool
      (fun index ->
        Metrics.incr m_scenarios;
        let sc = generate index in
        (sc, Oracle.check_instance ?algos ~seed:sc.Scenario.algo_seed
               sc.Scenario.instance))
      (Array.init budget Fun.id)
  in
  (* 3. Shrink and persist fresh failures (serial: shrinking re-runs the
     oracle many times and writes to the corpus). *)
  let fresh_findings =
    List.concat_map
      (fun ((sc : Scenario.t), vs) ->
        List.map
          (fun (v : Oracle.violation) ->
            Metrics.incr m_findings;
            let shrunk, steps =
              if not shrink then (sc.instance, 0)
              else
                Shrink.shrink
                  ~still_failing:(fun cand ->
                    List.exists
                      (fun (v' : Oracle.violation) ->
                        v'.check = v.check && v'.algo = v.algo)
                      (Oracle.check_instance ?algos ~seed:sc.algo_seed cand))
                  sc.instance
            in
            let replay_path =
              Option.map
                (fun dir ->
                  (* The arrival tag makes the slug self-describing: a
                     replay of this entry re-runs the exact materialized
                     order (the .inst file also carries the arrival
                     line). *)
                  let family_tag =
                    match Instance.family sc.instance with
                    | Problem_env.Family.Omflp -> ""
                    | f -> "-" ^ Problem_env.Family.to_string f
                  in
                  Corpus.save ~dir
                    ~slug:
                      (Printf.sprintf "case-%s-%s-%s%s-s%d-i%d" v.check v.algo
                         (Arrival.model_tag sc.instance.Instance.arrival)
                         family_tag seed sc.index)
                    shrunk)
                corpus_dir
            in
            {
              scenario = sc.label;
              violation = v;
              instance = Some shrunk;
              shrink_steps = steps;
              replay_path;
            })
          vs)
      (Array.to_list results)
  in
  (* 4. Pool-determinism cross-check: recompute the run digests of a
     sample of scenarios under a pool with a different job count; the
     stack's determinism contract says they must match byte-for-byte. *)
  let det_n = min determinism_sample budget in
  let det_findings =
    if det_n <= 0 then []
    else begin
      let digest_of index =
        let sc = generate index in
        String.concat "\n"
          (List.map
             (fun (name, algo) ->
               match
                 Omflp_core.Simulator.run ~seed:sc.Scenario.algo_seed
                   ~check:false algo sc.Scenario.instance
               with
               | run -> Oracle.run_digest run
               | exception e -> name ^ " raised " ^ Printexc.to_string e)
             (algos_for sc.Scenario.instance))
      in
      let indices = Array.init det_n Fun.id in
      let base = Pool.map pool digest_of indices in
      let alt_jobs = if Pool.jobs pool = 1 then 2 else 1 in
      let alt_pool = Pool.create ~jobs:alt_jobs in
      let alt =
        Fun.protect
          ~finally:(fun () -> Pool.shutdown alt_pool)
          (fun () -> Pool.map alt_pool digest_of indices)
      in
      List.filter_map
        (fun index ->
          if base.(index) = alt.(index) then None
          else begin
            Metrics.incr m_findings;
            let sc = generate index in
            Some
              {
                scenario = sc.Scenario.label;
                violation =
                  {
                    Oracle.check = "pool-determinism";
                    algo = "(all)";
                    detail =
                      Printf.sprintf
                        "run digests differ between jobs=%d and jobs=%d"
                        (Pool.jobs pool) alt_jobs;
                  };
                instance = Some sc.Scenario.instance;
                shrink_steps = 0;
                replay_path = None;
              }
          end)
        (List.init det_n Fun.id)
    end
  in
  {
    scenarios = budget;
    replays = List.length corpus_entries;
    determinism_checked = det_n;
    findings = replay_findings @ fresh_findings @ det_findings;
  }
