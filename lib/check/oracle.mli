(** Differential oracle: cross-cutting invariants every registered online
    algorithm must satisfy on every instance.

    The paper's guarantees are inequalities relating an online run to the
    offline optimum; this module makes them executable per instance:

    - {b feasible}: {!Omflp_core.Simulator.validate} — every request
      served, configurations consistent, reported costs match a
      recomputation from first principles;
    - {b deterministic}: two runs with the same seed are byte-identical;
    - {b opt-lower}: online cost ≥ the certified offline lower bound
      ({!Omflp_offline.Opt_estimate.bracket} — exact/ILP/LP on small
      instances) — no online algorithm may beat OPT;
    - {b bracket-order}: the offline bracket itself satisfies
      [lower ≤ upper] — a differential check of the offline solvers;
    - {b corollary8} / {b corollary17} / {b theorem4}: PD-OMFLP's cost is
      within the proven factor of its dual objective and the scaled duals
      are dual-feasible ({!Omflp_core.Dual_checker});
    - {b weak-duality}: [γ · Σ a_re] never exceeds the cost of a concrete
      feasible offline solution;
    - {b fast-equiv}: [Pd_omflp_fast] is decision-identical to
      [Pd_omflp] and agrees on cost up to float-summation noise;
    - {b resume}: snapshotting at the midpoint and restoring from the
      blob ({!Omflp_core.Algo_intf.ALGO.snapshot}) reproduces the
      uninterrupted run byte-identically — the serving layer's
      crash/resume path in miniature.

    Violations are reported, never raised — an algorithm exception
    becomes a ["run"] violation, and an explicitly-passed algorithm whose
    declared {!Omflp_core.Algo_intf.ALGO.family} differs from the
    instance's environment becomes a ["family-mismatch"] violation and is
    skipped (defaulted algorithm lists are already family-filtered via
    {!Omflp_core.Registry.of_family}) — so the checker composes with
    shrinking and budgeted fan-out. Findings are counted through [Omflp_obs]
    ([check.instances], [check.checks], [check.violations]). *)

type violation = {
  check : string;  (** invariant identifier, e.g. ["opt-lower"] *)
  algo : string;  (** offending algorithm, or ["(offline)"] *)
  detail : string;  (** human-readable explanation *)
}

(** [default_algos ()] is {!Omflp_core.Registry.extended}. *)
val default_algos : unit -> (string * Omflp_core.Algo_intf.packed) list

(** [run_digest run] is a canonical string of a completed run — algorithm
    name, exact costs ([%.17g]), facilities (site, configuration, opening
    request), and per-request service decisions. Two digests are equal
    iff the runs are observationally identical; used for the determinism
    checks (same seed twice, pool jobs 1 vs N). *)
val run_digest : Omflp_core.Run.t -> string

(** [decision_digest run] is {!run_digest} without the algorithm name and
    without floats — the pure decision sequence, equal across
    [Pd_omflp]/[Pd_omflp_fast] whose costs differ only in summation
    order. *)
val decision_digest : Omflp_core.Run.t -> string

(** [check_instance ?algos ?seed inst] runs every check against every
    algorithm of [algos] (default {!default_algos}) and returns all
    violations found, in check order. [seed] (default 0) seeds every
    algorithm run. *)
val check_instance :
  ?algos:(string * Omflp_core.Algo_intf.packed) list ->
  ?seed:int ->
  Omflp_instance.Instance.t ->
  violation list
