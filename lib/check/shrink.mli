(** Greedy minimization of a failing instance.

    Given an instance on which some oracle check fails, [shrink] looks
    for a smaller instance on which the {e same} check still fails, so
    the replay corpus stores counterexamples a human can read. Three
    reductions are tried to a fixpoint, each candidate re-validated
    against [still_failing]:

    + dropping contiguous request slices (halves down to single
      requests, ddmin-style);
    + projecting the commodity universe down to the commodities actually
      demanded ({!Omflp_commodity.Cost_function.project});
    + restricting the metric to the sites requests actually arrive at
      (facilities may then only open at request sites — a semantic
      restriction, which is sound because the candidate is only kept if
      the failure reproduces on it).

    Accepted steps are counted through [Omflp_obs]
    ([check.shrink_steps]). *)

(** [shrink ?max_evals ~still_failing inst] returns the shrunk instance
    and the number of accepted reduction steps. [still_failing] must
    return [true] when the candidate still exhibits the original
    failure; it is called at most [max_evals] times (default 400 — each
    call typically re-runs the full oracle). [still_failing inst] is
    assumed true; the result equals [inst] when nothing smaller fails. *)
val shrink :
  ?max_evals:int ->
  still_failing:(Omflp_instance.Instance.t -> bool) ->
  Omflp_instance.Instance.t ->
  Omflp_instance.Instance.t * int
