(** Budgeted conformance-fuzzing engine: replay the corpus, fan a budget
    of fresh scenarios out across the domain pool, shrink and persist
    every failure, and cross-check pool determinism.

    One invocation performs, in order:

    + {b replay}: every instance in the corpus directory is re-checked
      first — previously found bugs stay visible until fixed;
    + {b fuzz}: [budget] scenarios ({!Scenario.generate}, index-derived
      from [seed]) are checked through {!Oracle.check_instance}, fanned
      out with {!Omflp_prelude.Pool.map} over the given pool;
    + {b shrink & persist}: each fresh failure is minimized with
      {!Shrink.shrink} (re-running the oracle as the failure predicate)
      and serialized into the corpus;
    + {b pool determinism}: the first [determinism_sample] scenarios are
      re-run under a pool with a {e different} job count and the run
      digests compared byte-for-byte — the [--jobs 1] vs [N] contract of
      the whole stack, checked end to end.

    Progress is counted through [Omflp_obs] ([check.scenarios],
    [check.replays], [check.findings], plus the {!Oracle} and {!Shrink}
    counters). *)

type finding = {
  scenario : string;  (** scenario label or corpus path *)
  violation : Oracle.violation;
  instance : Omflp_instance.Instance.t option;
      (** the (shrunk) counterexample; [None] only for corpus files that
          failed to parse *)
  shrink_steps : int;
  replay_path : string option;  (** corpus file to reproduce with *)
}

type report = {
  scenarios : int;  (** fresh scenarios checked *)
  replays : int;  (** corpus entries re-checked *)
  determinism_checked : int;
  findings : finding list;  (** replay findings first, then fresh *)
}

(** [run ?pool ?algos ?corpus_dir ?replay ?shrink ?determinism_sample
    ~budget ~seed ()] executes the pipeline above.

    [pool] defaults to {!Omflp_prelude.Pool.default}. [algos] defaults to
    {!Oracle.default_algos} — tests inject mutants here. [corpus_dir]
    (default {!Corpus.default_dir}) is where failures are loaded from and
    saved to; [None] disables the corpus entirely. [replay] (default
    [true]) controls the initial corpus pass. [shrink] (default [true])
    controls minimization. [determinism_sample] (default 4) bounds the
    alternate-pool cross-check; [0] disables it. [arrival] restricts the
    scenario stream's arrival axis to one model ({!Scenario.forced});
    omitted, scenarios mix all three. [family] forces every fresh
    scenario into one problem family ({!Scenario.generate}); omitted,
    scenarios are plain OMFLP. [algos] defaults to every registered
    algorithm of each instance's family. Corpus slugs embed the model tag
    ([adv]/[ro]/[iid]) and saved instances carry their arrival line, so
    replays reproduce the exact request order. *)
val run :
  ?pool:Omflp_prelude.Pool.t ->
  ?algos:(string * Omflp_core.Algo_intf.packed) list ->
  ?corpus_dir:string option ->
  ?replay:bool ->
  ?shrink:bool ->
  ?determinism_sample:int ->
  ?arrival:Scenario.forced ->
  ?family:Omflp_instance.Problem_env.Family.t ->
  budget:int ->
  seed:int ->
  unit ->
  report
