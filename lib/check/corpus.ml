open Omflp_instance

let default_dir = "check-corpus"

let sanitize slug =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    slug

let save ~dir ~slug inst =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let path = Filename.concat dir (sanitize slug ^ ".inst") in
  Serial.save_file path inst;
  path

let load_all ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".inst")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           let entry =
             match Serial.load_file path with
             | inst -> Ok inst
             | exception Failure msg -> Error msg
             | exception e -> Error (Printexc.to_string e)
           in
           (path, entry))
