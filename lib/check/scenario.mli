(** Seeded random scenario generation for the conformance oracle.

    A scenario is a complete OMFLP instance drawn from the cross product
    of metric generators ({!Omflp_metric.Metric_gen}), workload families
    ({!Omflp_instance.Generators}), construction-cost families
    ({!Omflp_commodity.Cost_function}), and an arrival model
    ({!Omflp_instance.Arrival}: adversarial in-order / reversed, seeded
    random-order permutation, seeded i.i.d. redraw) — online algorithms
    fail on adversarial {e orderings} as much as on adversarial point
    sets, so the arrival model is part of the sampled space, and every
    instance carries it so corpus replays reproduce the exact order.

    Generation is index-derived: scenario [i] of master seed [s] depends
    on [(s, i)] alone, never on any other scenario, so scenarios can be
    produced on any domain in any order ({!Omflp_prelude.Pool.map}) and
    reproduced one by one from a report. *)

type t = {
  index : int;  (** position in the budgeted sweep *)
  label : string;  (** human-readable description (also the instance name) *)
  instance : Omflp_instance.Instance.t;
  algo_seed : int;  (** seed handed to every algorithm run on this instance *)
}

(** Restriction of the arrival axis for targeted fuzzing ([check
    --arrival ...]): [`Adversarial] keeps the in-order/reversed split,
    the others force that model. *)
type forced = [ `Adversarial | `Random_order | `Iid ]

(** [forced_of_string s] parses ["adversarial"]/["adv"],
    ["random-order"]/["ro"], ["iid"]. *)
val forced_of_string : string -> forced option

(** [generate ?arrival ~master_seed ~index ()] draws scenario [index] of
    the stream identified by [master_seed]. Instances are deliberately
    small (≤ 8 sites, ≤ 12 requests, ≤ 16 commodities) so that the
    oracle's exact offline brackets and subset enumerations stay
    affordable. Forcing [?arrival] changes only the order treatment: the
    underlying instance family, sizes, and [algo_seed] of a given
    [(master_seed, index)] are identical across forcings because every
    RNG draw is consumed unconditionally. *)
val generate :
  ?arrival:forced ->
  ?family:Omflp_instance.Problem_env.Family.t ->
  master_seed:int ->
  index:int ->
  unit ->
  t

(** [generate ?family ...] additionally forces a problem family: the
    same underlying instance as the unforced draw of [(master_seed,
    index)] with family data (non-metric connection matrix or lease
    menu) bolted on — all family draws are consumed after every
    plain-OMFLP draw, so unforced scenarios are unchanged. *)

(** [golden_family ~index] is the golden-pin convention: indices 0–29
    unforced (plain OMFLP), 30–32 non-metric, 33–35 leasing, beyond
    unforced. *)
val golden_family :
  index:int -> Omflp_instance.Problem_env.Family.t option

(** [golden ~master_seed ~index] draws with {!golden_family} applied. *)
val golden : master_seed:int -> index:int -> t
