(** Seeded random scenario generation for the conformance oracle.

    A scenario is a complete OMFLP instance drawn from the cross product
    of metric generators ({!Omflp_metric.Metric_gen}), workload families
    ({!Omflp_instance.Generators}), construction-cost families
    ({!Omflp_commodity.Cost_function}), and a request-order treatment
    (shuffled / reversed / as generated) — online algorithms fail on
    adversarial {e orderings} as much as on adversarial point sets, so the
    ordering is part of the sampled space.

    Generation is index-derived: scenario [i] of master seed [s] depends
    on [(s, i)] alone, never on any other scenario, so scenarios can be
    produced on any domain in any order ({!Omflp_prelude.Pool.map}) and
    reproduced one by one from a report. *)

type t = {
  index : int;  (** position in the budgeted sweep *)
  label : string;  (** human-readable description (also the instance name) *)
  instance : Omflp_instance.Instance.t;
  algo_seed : int;  (** seed handed to every algorithm run on this instance *)
}

(** [generate ~master_seed ~index] draws scenario [index] of the stream
    identified by [master_seed]. Instances are deliberately small (≤ 8
    sites, ≤ 12 requests, ≤ 16 commodities) so that the oracle's exact
    offline brackets and subset enumerations stay affordable. *)
val generate : master_seed:int -> index:int -> t
