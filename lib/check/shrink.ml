open Omflp_commodity
open Omflp_instance
open Omflp_obs

let m_shrink_steps = Metrics.counter "check.shrink_steps"

(* Remove requests [lo, lo + len); None when nothing would remain. *)
let drop_slice (inst : Instance.t) lo len =
  let n = Array.length inst.requests in
  let kept =
    Array.of_seq
      (Seq.filter_map
         (fun i -> if i >= lo && i < lo + len then None else Some inst.requests.(i))
         (Seq.init n Fun.id))
  in
  if Array.length kept = 0 || Array.length kept = n then None
  else
    Some
      (Instance.make ~name:inst.name ~metric:inst.metric ~cost:inst.cost
         ~requests:kept)

(* Project the commodity universe down to the demanded commodities. *)
let project_commodities (inst : Instance.t) =
  let used = Instance.distinct_commodities inst in
  if Cset.is_full used then None
  else
    let cost, new_to_old = Cost_function.project inst.cost ~keep:used in
    let k' = Array.length new_to_old in
    let old_to_new = Array.make (Cset.n_commodities used) (-1) in
    Array.iteri (fun nw old -> old_to_new.(old) <- nw) new_to_old;
    let requests =
      Array.map
        (fun (r : Request.t) ->
          Request.make ~site:r.site
            ~demand:
              (Cset.of_list ~n_commodities:k'
                 (List.map
                    (fun e -> old_to_new.(e))
                    (Cset.elements r.demand))))
        inst.requests
    in
    Some (Instance.make ~name:inst.name ~metric:inst.metric ~cost ~requests)

(* Restrict the metric to the sites requests arrive at. *)
let restrict_sites (inst : Instance.t) =
  let n_sites = Instance.n_sites inst in
  let used =
    List.sort_uniq compare
      (Array.to_list (Array.map (fun (r : Request.t) -> r.Request.site) inst.requests))
  in
  if List.length used = n_sites then None
  else
    let used = Array.of_list used in
    let n' = Array.length used in
    let old_to_new = Array.make n_sites (-1) in
    Array.iteri (fun nw old -> old_to_new.(old) <- nw) used;
    let metric =
      Omflp_metric.Finite_metric.of_matrix_unchecked
        (Array.init n' (fun i ->
             Array.init n' (fun j ->
                 Omflp_metric.Finite_metric.dist inst.metric used.(i) used.(j))))
    in
    let cost =
      Cost_function.make
        ~name:(Cost_function.name inst.cost ^ "/sites")
        ~n_commodities:(Cost_function.n_commodities inst.cost)
        ~n_sites:n'
        (fun m sigma -> Cost_function.eval inst.cost used.(m) sigma)
    in
    let requests =
      Array.map
        (fun (r : Request.t) ->
          Request.make ~site:old_to_new.(r.Request.site) ~demand:r.demand)
        inst.requests
    in
    Some (Instance.make ~name:inst.name ~metric ~cost ~requests)

let shrink ?(max_evals = 400) ~still_failing inst0 =
  let evals = ref 0 in
  let steps = ref 0 in
  let ok cand =
    !evals < max_evals
    &&
    (incr evals;
     still_failing cand)
  in
  let accept current cand =
    incr steps;
    Metrics.incr m_shrink_steps;
    current := cand
  in
  let current = ref inst0 in
  let progress = ref true in
  while !progress && !evals < max_evals do
    progress := false;
    (* Pass 1: ddmin-style slice removal, halving chunk sizes. *)
    let chunk = ref (max 1 (Instance.n_requests !current / 2)) in
    while !chunk >= 1 && !evals < max_evals do
      let lo = ref 0 in
      while !lo < Instance.n_requests !current && !evals < max_evals do
        match drop_slice !current !lo !chunk with
        | Some cand when ok cand ->
            accept current cand;
            progress := true
            (* keep [lo]: the slice that moved into this position is
               tried next *)
        | _ -> lo := !lo + !chunk
      done;
      chunk := (if !chunk = 1 then 0 else !chunk / 2)
    done;
    (* Pass 2: shrink the commodity universe. *)
    (match project_commodities !current with
    | Some cand when ok cand ->
        accept current cand;
        progress := true
    | _ -> ());
    (* Pass 3: shrink the metric. *)
    match restrict_sites !current with
    | Some cand when ok cand ->
        accept current cand;
        progress := true
    | _ -> ()
  done;
  (!current, !steps)
