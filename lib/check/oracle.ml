open Omflp_prelude
open Omflp_commodity
open Omflp_instance
open Omflp_core
open Omflp_obs

type violation = { check : string; algo : string; detail : string }

let m_instances = Metrics.counter "check.instances"

let m_checks = Metrics.counter "check.checks"

let m_violations = Metrics.counter "check.violations"

let default_algos () = Registry.extended ()

let tol = 1e-6

let digest ~with_name ~with_floats (run : Run.t) =
  let b = Buffer.create 256 in
  if with_name then Buffer.add_string b run.algorithm;
  if with_floats then
    Printf.bprintf b "|cost=%.17g+%.17g" run.construction_cost
      run.assignment_cost;
  List.iter
    (fun (f : Facility.t) ->
      Printf.bprintf b "|f%d@%d[%s]t%d" f.id f.site
        (String.concat "," (List.map string_of_int (Cset.elements f.offered)))
        f.opened_at;
      if with_floats then Printf.bprintf b "$%.17g" f.cost)
    run.facilities;
  List.iter
    (fun (s : Service.t) ->
      match s with
      | Service.To_single id -> Printf.bprintf b "|S%d" id
      | Service.Per_commodity l ->
          Buffer.add_string b "|P";
          List.iter (fun (e, id) -> Printf.bprintf b " %d>%d" e id) l)
    run.services;
  Buffer.contents b

let run_digest run = digest ~with_name:true ~with_floats:true run

let decision_digest run = digest ~with_name:false ~with_floats:false run

let check_instance ?algos ?(seed = 0) (inst : Instance.t) =
  Metrics.incr m_instances;
  let fam = Instance.family inst in
  let env = Instance.env inst in
  let out = ref [] in
  let violation check algo fmt =
    Printf.ksprintf
      (fun detail ->
        Metrics.incr m_violations;
        out := { check; algo; detail } :: !out)
      fmt
  in
  let checked () = Metrics.incr m_checks in
  (* Family dispatch: the default pool is every registered algorithm of
     the instance's family; an explicitly requested algorithm of another
     family is a named finding, never a mid-run crash. *)
  let algos =
    match algos with
    | None -> Registry.of_family fam
    | Some l ->
        List.filter
          (fun (name, algo) ->
            let (module A : Algo_intf.ALGO) = algo in
            A.family = fam
            ||
            (violation "family-mismatch" name "%s"
               (Problem_env.mismatch_message ~algo:name ~declared:A.family
                  ~got:fam);
             false))
          l
  in
  (* Every algorithm run is guarded: a raise is itself a reportable
     (and shrinkable) finding, not an oracle crash. *)
  let safe_run name algo =
    match Simulator.run ~seed ~check:false algo inst with
    | run -> Some run
    | exception e ->
        violation "run" name "raised %s" (Printexc.to_string e);
        None
  in
  let bracket =
    match Omflp_offline.Opt_estimate.bracket inst with
    | b -> Some b
    | exception e ->
        violation "run" "(offline)" "bracket raised %s" (Printexc.to_string e);
        None
  in
  (match bracket with
  | Some b ->
      checked ();
      if not (Numerics.approx_le ~tol b.lower b.upper) then
        violation "bracket-order" "(offline)"
          "lower %.9g (%s) exceeds upper %.9g (%s)" b.lower b.lower_method
          b.upper b.upper_method
  | None -> ());
  List.iter
    (fun (name, algo) ->
      match safe_run name algo with
      | None -> ()
      | Some run ->
          checked ();
          (match Simulator.validate inst run with
          | Ok () -> ()
          | Error e -> violation "feasible" name "%s" e);
          checked ();
          (match safe_run name algo with
          | Some run2 when run_digest run <> run_digest run2 ->
              violation "deterministic" name
                "two runs with seed %d produced different outcomes" seed
          | _ -> ());
          (match bracket with
          | Some b when b.lower > 0.0 ->
              checked ();
              let c = Run.total_cost run in
              if not (Numerics.approx_le ~tol b.lower c) then
                violation "opt-lower" name
                  "online cost %.9g beats the certified lower bound %.9g (%s)"
                  c b.lower b.lower_method
          | _ -> ());
          (* Byte-identical continuation: snapshot at the midpoint,
             restore from the blob, finish the run — the serving layer's
             crash/resume path in miniature. Any drift (decisions,
             facility ids, cost floats) is a violation. *)
          checked ();
          let (module A : Algo_intf.ALGO) = algo in
          let cut = Instance.n_requests inst / 2 in
          (match
             let t = A.create ~seed env in
             Array.iteri
               (fun i r -> if i < cut then ignore (A.step t r))
               inst.Instance.requests;
             let blob = A.snapshot t in
             let t' = A.restore env blob in
             Array.iteri
               (fun i r -> if i >= cut then ignore (A.step t' r))
               inst.Instance.requests;
             A.run_so_far t'
           with
          | resumed ->
              if run_digest resumed <> run_digest run then
                violation "resume" name
                  "snapshot/restore at request %d diverges from the \
                   uninterrupted run"
                  cut
          | exception e ->
              violation "resume" name "snapshot/restore at request %d raised %s"
                cut (Printexc.to_string e)))
    algos;
  (* PD-OMFLP theory checks: replay the deterministic primal-dual run and
     test the paper's inequalities on its duals. The paper's analysis is
     for the metric OMFLP family only, so both the dual replay and the
     FAST-equivalence differential are gated on it. *)
  if fam = Problem_env.Family.Omflp then begin
  (try
     let t = Pd_omflp.create ~seed env in
     Array.iter (fun r -> ignore (Pd_omflp.step t r)) inst.Instance.requests;
     checked ();
     (match Dual_checker.corollary8 t with
     | Ok () -> ()
     | Error e -> violation "corollary8" Pd_omflp.name "%s" e);
     checked ();
     (match
        Dual_checker.scaled_dual_feasible inst.Instance.metric
          inst.Instance.cost (Pd_omflp.dual_records t)
      with
     | Ok () -> ()
     | Error (m, sigma) ->
         violation "corollary17" Pd_omflp.name
           "scaled duals infeasible at site %d, sigma %s" m
           (Format.asprintf "%a" Cset.pp sigma));
     let gamma =
       Dual_checker.gamma
         ~n_commodities:(Instance.n_commodities inst)
         ~n_requests:(Instance.n_requests inst)
     in
     let dual_lb = Dual_checker.dual_lower_bound t in
     let cost = Run.total_cost (Pd_omflp.run_so_far t) in
     checked ();
     if dual_lb > 0.0 && not (Numerics.approx_le ~tol cost (3.0 /. gamma *. dual_lb))
     then
       violation "theorem4" Pd_omflp.name
         "cost %.9g exceeds (3/gamma) x dual lower bound = %.9g (gamma %.6g)"
         cost
         (3.0 /. gamma *. dual_lb)
         gamma;
     (match bracket with
     | Some b ->
         checked ();
         if not (Numerics.approx_le ~tol dual_lb b.upper) then
           violation "weak-duality" Pd_omflp.name
             "dual lower bound %.9g exceeds the feasible offline cost %.9g (%s)"
             dual_lb b.upper b.upper_method
     | None -> ())
   with e ->
     violation "run" Pd_omflp.name "dual replay raised %s"
       (Printexc.to_string e));
  (* PD-OMFLP-FAST must take exactly the decisions of PD-OMFLP. *)
  (match
     ( safe_run Pd_omflp.name (module Pd_omflp),
       safe_run Pd_omflp_fast.name (module Pd_omflp_fast) )
   with
  | Some slow, Some fast ->
      checked ();
      if decision_digest slow <> decision_digest fast then
        violation "fast-equiv" Pd_omflp_fast.name
          "decisions differ from %s on the same input" Pd_omflp.name
      else if
        not
          (Numerics.approx_eq ~tol (Run.total_cost slow) (Run.total_cost fast))
      then
        violation "fast-equiv" Pd_omflp_fast.name
          "same decisions but cost %.17g differs from %.17g"
          (Run.total_cost fast) (Run.total_cost slow)
  | _ -> ())
  end;
  List.rev !out
