(** Replay corpus: failing instances serialized to disk and re-checked
    first on later invocations, so a bug found by one fuzz run becomes a
    permanent regression test until fixed.

    Instances are stored in the plain-text {!Omflp_instance.Serial}
    format — exact for every size-based cost family the scenario
    generator produces — one file per finding, named after the failed
    check, the algorithm, and the originating (seed, index). *)

(** [default_dir] is ["check-corpus"]. *)
val default_dir : string

(** [save ~dir ~slug inst] writes [inst] to [dir/<sanitized slug>.inst]
    (creating [dir] if needed, overwriting an existing file of the same
    slug — saving is deterministic) and returns the path. *)
val save : dir:string -> slug:string -> Omflp_instance.Instance.t -> string

(** [load_all ~dir] reads every [*.inst] file of [dir] in filename order;
    a file that fails to parse is returned as [Error message] so the
    caller can surface corpus corruption instead of crashing. An absent
    directory is an empty corpus. *)
val load_all :
  dir:string -> (string * (Omflp_instance.Instance.t, string) result) list
