open Omflp_prelude
open Omflp_commodity
open Omflp_instance

(* Oblivious zoom-line: the static cousin of Adversary.zoom_line. The
   zoom point is drawn up front and the dyadic batches converge to it
   coarse-to-fine — the classic bad arrival order for online facility
   location (each batch is dense enough to look like a new cluster).
   Under a random-order shuffle the early coarse requests no longer
   precede the fine ones, which is exactly the regime where
   Kaplan–Naori–Raz (arXiv:2207.08783) prove Meyerson is ~O(1). *)
let zoom_line rng ~levels ~batch_base ~n_commodities =
  let n_points = (1 lsl levels) + 1 in
  let positions =
    Array.init n_points (fun j -> float_of_int j /. float_of_int (n_points - 1))
  in
  let metric = Omflp_metric.Finite_metric.line positions in
  let cost = Cost_function.constant ~n_commodities ~n_sites:n_points ~cost:1.0 in
  let zoom = Splitmix.int rng n_points in
  let demand () =
    Demand.sample rng ~n_commodities (Demand.Singletons { zipf_s = 1.0 })
  in
  let requests_rev = ref [] in
  let send site =
    requests_rev := Request.make ~site ~demand:(demand ()) :: !requests_rev
  in
  let lo = ref 0 and hi = ref (n_points - 1) in
  for l = 0 to levels - 1 do
    let mid = (!lo + !hi) / 2 in
    for _ = 1 to batch_base * (1 lsl l) do
      send mid
    done;
    if zoom <= mid then hi := mid else lo := mid
  done;
  for _ = 1 to batch_base * (1 lsl levels) do
    send ((!lo + !hi) / 2)
  done;
  Instance.make
    ~name:(Printf.sprintf "zoom-line(levels=%d)" levels)
    ~metric ~cost
    ~requests:(Array.of_list (List.rev !requests_rev))

let families ~quick =
  let levels = if quick then 3 else 4 in
  let scale = if quick then 1 else 2 in
  [
    ( "zoom-line",
      Demand.Singletons { zipf_s = 1.0 },
      fun rng -> zoom_line rng ~levels ~batch_base:2 ~n_commodities:2 );
    ( "clustered",
      Demand.Zipf_bundle { zipf_s = 1.0; max_size = 2 },
      fun rng ->
        Generators.clustered rng ~clusters:3 ~per_cluster:2
          ~n_requests:(15 * scale) ~n_commodities:4 ~side:50.0 ~spread:2.0
          ~cost:(fun ~n_commodities ~n_sites ->
            Cost_function.power_law ~n_commodities ~n_sites ~x:1.0) );
  ]

(* Per-model instance transforms. Each draws its arrival seed from the
   repetition RNG, so distinct repetitions see distinct permutations /
   i.i.d. draws while the whole sweep stays a pure function of the
   experiment seed (byte-identical across pool sizes). *)
let models ~iid_demand =
  [
    ("adversarial", fun _rng inst -> inst);
    ( "random-order",
      fun rng inst ->
        Generators.with_arrival
          (Arrival.Random_order { seed = Splitmix.int rng 1_000_000_000 })
          inst );
    ( "iid",
      fun rng inst ->
        Generators.with_arrival
          (Arrival.Iid
             {
               seed = Splitmix.int rng 1_000_000_000;
               n_requests = Instance.n_requests inst;
               demand = iid_demand;
             })
          inst );
  ]

let run ?(reps = 8) ?(seed = 47) ?(quick = false) () =
  let table =
    Texttable.create
      [
        "family";
        "arrival";
        "algorithm";
        "mean ratio";
        "p95 ratio";
        "mean cost";
        "OPT estimator";
      ]
  in
  List.iter
    (fun (fname, iid_demand, base_gen) ->
      List.iter
        (fun (mname, transform) ->
          let gen rng = transform rng (base_gen rng) in
          let outcome =
            Exp_common.measure ~reps ~seed ~gen
              ~algos:
                (Omflp_core.Registry.of_family
                   Omflp_instance.Problem_env.Family.Omflp)
              ()
          in
          List.iter
            (fun (m : Exp_common.measurement) ->
              Texttable.add_row table
                [
                  fname;
                  mname;
                  m.algorithm;
                  Texttable.cell_f (Exp_common.mean m.ratios_vs_upper);
                  Texttable.cell_f (Stats.percentile m.ratios_vs_upper 95.0);
                  Texttable.cell_f (Exp_common.mean m.costs);
                  outcome.upper_method;
                ])
            outcome.measurements)
        (models ~iid_demand);
      Texttable.add_rule table)
    (families ~quick);
  {
    Exp_common.title = "E11: empirical ratio per arrival model";
    notes =
      [
        "Same seeded families under adversarial, random-order (uniform seeded";
        "permutation), and i.i.d. arrival; ratios against the OPT bracket's";
        "upper estimate. Kaplan-Naori-Raz (arXiv:2207.08783) predicts";
        "random-order <= adversarial for MEYERSON-OFL on zoom-line.";
      ];
    table;
  }

let run_spec (s : Exp_common.Spec.t) =
  run
    ?reps:(Exp_common.Spec.resolve s.reps ~quick_default:2 s)
    ?seed:s.seed ~quick:s.quick ()
