(** E6 — Section 3.3 ablation: how the construction cost function changes
    who wins.

    Three costs on the same clustered workload: linear ([x = 2], no
    co-location advantage — prediction is useless, INDEP should match
    PD-OMFLP), square-root ([x = 1], the hard middle), and constant
    ([x = 0], one facility serves all — ALL-LARGE-style prediction is
    free). *)

val run_spec : Exp_common.Spec.t -> Exp_common.section
