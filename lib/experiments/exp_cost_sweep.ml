open Omflp_prelude

let run ?(reps = 5) ?(n_commodities = 64) ?(xs = [ 0.0; 0.5; 1.0; 1.5; 2.0 ])
    ?(seed = 43) () =
  let root = Numerics.isqrt n_commodities in
  let table =
    Texttable.create
      [ "x"; "algorithm"; "mean ratio"; "+/-"; "upper factor"; "lower factor" ]
  in
  List.iter
    (fun x ->
      let outcome =
        Exp_common.measure ~reps ~seed
          ~gen:(fun rng ->
            Omflp_instance.Generators.single_point_adversary rng ~n_commodities
              ~cost:(fun ~n_commodities ~n_sites ->
                Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites
                  ~x)
              ~n_requested:root)
          ~algos:(Exp_common.default_algos ())
          ()
      in
      List.iter
        (fun (m : Exp_common.measurement) ->
          Texttable.add_row table
            [
              Printf.sprintf "%.1f" x;
              m.algorithm;
              Texttable.cell_f (Exp_common.mean m.ratios_vs_upper);
              Texttable.cell_f (Exp_common.ci m.ratios_vs_upper);
              Texttable.cell_f (Exp_bounds_curve.upper_factor ~n_commodities ~x);
              Texttable.cell_f (Exp_bounds_curve.lower_factor ~n_commodities ~x);
            ])
        outcome.measurements;
      Texttable.add_rule table)
    xs;
  {
    Exp_common.title =
      Printf.sprintf
        "E3: Theorem 18 cost-function sweep g_x on the single-point adversary (|S| = %d, OPT exact)"
        n_commodities;
    notes =
      [
        "Ratios are against exact OPT (single-point set cover).";
        "Paper: PD-OMFLP is O(sqrt|S|^((2x-x^2)/2) log n); prediction is useless at x = 2.";
      ];
    table;
  }

let run_spec (s : Exp_common.Spec.t) =
  run
    ?reps:(Exp_common.Spec.resolve s.reps ~quick_default:3 s)
    ?n_commodities:(Exp_common.Spec.resolve s.n_commodities ~quick_default:16 s)
    ?xs:s.xs ?seed:s.seed ()
