open Omflp_prelude
open Omflp_instance

let families ~quick =
  let scale = if quick then 1 else 2 in
  [
    ( "adversary |S|=64",
      fun rng -> Generators.theorem2 rng ~n_commodities:64 );
    ( "line",
      fun rng ->
        Generators.line rng ~n_sites:(10 * scale) ~n_requests:(30 * scale)
          ~n_commodities:6 ~length:50.0
          ~demand:(Demand.Zipf_bundle { zipf_s = 1.0; max_size = 3 })
          ~cost:(fun ~n_commodities ~n_sites ->
            Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites
              ~x:1.0) );
    ( "clustered",
      fun rng ->
        Generators.clustered rng ~clusters:3 ~per_cluster:(4 * scale)
          ~n_requests:(30 * scale) ~n_commodities:8 ~side:100.0 ~spread:2.0
          ~cost:(fun ~n_commodities ~n_sites ->
            Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites
              ~x:1.0) );
    ( "network",
      fun rng ->
        Generators.network rng ~n_sites:(12 * scale) ~extra_edges:(6 * scale)
          ~n_requests:(25 * scale) ~n_commodities:6
          ~demand:(Demand.Bernoulli { p = 0.4 })
          ~cost:(fun ~n_commodities ~n_sites ->
            Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites
              ~x:1.0) );
  ]

let run ?(reps = 5) ?(seed = 45) ?(quick = false) () =
  let table =
    Texttable.create
      [
        "family";
        "algorithm";
        "mean cost";
        "mean ratio";
        "+/-";
        "facilities";
        "OPT estimator";
      ]
  in
  List.iter
    (fun (fname, gen) ->
      let outcome =
        Exp_common.measure ~reps ~seed ~gen
          ~algos:(Exp_common.default_algos ())
          ()
      in
      List.iter
        (fun (m : Exp_common.measurement) ->
          Texttable.add_row table
            [
              fname;
              m.algorithm;
              Texttable.cell_f (Exp_common.mean m.costs);
              Texttable.cell_f (Exp_common.mean m.ratios_vs_upper);
              Texttable.cell_f (Exp_common.ci m.ratios_vs_upper);
              Texttable.cell_f (Exp_common.mean m.n_facilities);
              outcome.upper_method;
            ])
        outcome.measurements;
      Texttable.add_rule table)
    (families ~quick);
  {
    Exp_common.title = "E5: algorithm comparison across instance families";
    notes =
      [
        "Ratios against the bracket's upper estimate (feasible offline solution";
        "or exact OPT, see the estimator column).";
      ];
    table;
  }

let run_spec (s : Exp_common.Spec.t) =
  run
    ?reps:(Exp_common.Spec.resolve s.reps ~quick_default:2 s)
    ?seed:s.seed ~quick:s.quick ()
