(** E2 — exact regeneration of Figure 2.

    The two closed-form curves over the cost-function exponent
    [x ∈ [0, 2]] for [|S| = 10,000]:

    - upper bound factor [√|S|^{(2x − x²)/2}] (PD-OMFLP, Theorem 18),
    - lower bound factor [min{√|S|^{(2−x)/2}, √|S|^{x/2}}].

    Both peak at [⁴√|S| = 10] for [x = 1] and meet at [x ∈ {0, 1, 2}],
    exactly as in the paper's figure. *)

(** [upper_factor ~n_commodities ~x], [lower_factor ~n_commodities ~x] —
    the plotted functions. *)
val upper_factor : n_commodities:int -> x:float -> float

val lower_factor : n_commodities:int -> x:float -> float

val run_spec : Exp_common.Spec.t -> Exp_common.section
