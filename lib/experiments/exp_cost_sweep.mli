(** E3 — Theorem 18: competitive ratio under the power-law cost family
    [g_x(|σ|) = |σ|^{x/2}], measured on the single-point adversary.

    For each exponent [x] the table reports measured ratios next to the
    adaptive bound factors of E2: at [x = 2] (linear cost) prediction is
    useless and every reasonable algorithm is near-optimal; at [x = 1] the
    gap to non-predicting baselines is widest (factor ≈ ⁴√|S|). *)

val run_spec : Exp_common.Spec.t -> Exp_common.section
