open Omflp_prelude
open Omflp_instance

let gen rng =
  Generators.clustered rng ~clusters:3 ~per_cluster:4 ~n_requests:25
    ~n_commodities:6 ~side:80.0 ~spread:2.0
    ~cost:(fun ~n_commodities ~n_sites ->
      Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)

let run ?(reps = 5) ?(seed = 48) () =
  let algos = Exp_common.default_algos () in
  let table =
    Texttable.create
      [
        "algorithm";
        "cost (joint)";
        "cost (per-commodity)";
        "inflation";
        "requests joint/split";
      ]
  in
  let algos_a = Array.of_list algos in
  let per_rep =
    Pool.map (Pool.default ())
      (fun rep ->
        let rng = Splitmix.of_int (seed + (1009 * rep)) in
        let inst = gen rng in
        let inst_split = Instance.split_per_commodity inst in
        let costs =
          Array.map
            (fun (_, algo) ->
              ( Omflp_core.Run.total_cost
                  (Omflp_core.Simulator.run ~seed:(seed + rep) algo inst),
                Omflp_core.Run.total_cost
                  (Omflp_core.Simulator.run ~seed:(seed + rep) algo inst_split)
              ))
            algos_a
        in
        (costs, Instance.n_requests inst, Instance.n_requests inst_split))
      (Array.init reps Fun.id)
  in
  let joint =
    Array.init (Array.length algos_a) (fun ai ->
        Array.map (fun (c, _, _) -> fst c.(ai)) per_rep)
  in
  let split =
    Array.init (Array.length algos_a) (fun ai ->
        Array.map (fun (c, _, _) -> snd c.(ai)) per_rep)
  in
  (* The generator draws a fixed-length sequence, so the request counts
     are the same on every repetition; report the first. *)
  let _, n0_joint, n0_split = per_rep.(0) in
  let n_joint = ref n0_joint and n_split = ref n0_split in
  List.iteri
    (fun ai (name, _) ->
      let j = Exp_common.mean joint.(ai) and s = Exp_common.mean split.(ai) in
      Texttable.add_row table
        [
          name;
          Texttable.cell_f j;
          Texttable.cell_f s;
          Texttable.cell_f (s /. j);
          Printf.sprintf "%d/%d" !n_joint !n_split;
        ])
    algos;
  {
    Exp_common.title =
      "E9: per-commodity connection model via request splitting (Section 1.1)";
    notes =
      [
        "Splitting removes the shared-connection discount; the paper argues the";
        "competitive ratio only changes by a constant factor — the inflation";
        "column stays small even though the sequence length multiplies.";
      ];
    table;
  }

let run_spec (s : Exp_common.Spec.t) =
  run
    ?reps:(Exp_common.Spec.resolve s.reps ~quick_default:2 s)
    ?seed:s.seed ()
