(** E5 — cross-family comparison: every algorithm on every instance
    family (single-point adversary, line, clustered Euclidean, network),
    with costs and ratios against the OPT bracket.

    This is the evaluation table the paper implies in Section 1.3: the
    trivial per-commodity baseline (INDEP) against PD-OMFLP and
    RAND-OMFLP, with the non-competitive GREEDY heuristic and the
    always-predict ALL-LARGE extreme for context. *)

val run_spec : Exp_common.Spec.t -> Exp_common.section
