open Omflp_prelude

type measurement = {
  algorithm : string;
  costs : float array;
  ratios_vs_upper : float array;
  n_facilities : float array;
}

type outcome = {
  measurements : measurement list;
  opt_uppers : float array;
  opt_lowers : float array;
  lower_method : string;
  upper_method : string;
}

(* One repetition's worth of results; built entirely from the rep's own
   seed-derived RNGs so repetitions can run on any domain in any order. *)
type rep = {
  rep_upper : float;
  rep_lower : float;
  rep_lower_method : string;
  rep_upper_method : string;
  rep_costs : float array;  (* indexed by algorithm *)
  rep_ratios : float array;
  rep_n_fac : float array;
}

let method_label methods =
  (* Distinct methods in first-repetition order; a mixed-estimator batch
     is reported as such instead of silently keeping the last rep's. *)
  let distinct =
    Array.fold_left
      (fun acc m -> if List.mem m acc then acc else m :: acc)
      [] methods
    |> List.rev
  in
  match distinct with
  | [] -> ""
  | [ m ] -> m
  | ms -> Printf.sprintf "mixed(%s)" (String.concat "|" ms)

let pool_or_default = function Some p -> p | None -> Pool.default ()

let measure ?exact ?local_search ?pool ~reps ~seed ~gen ~algos () =
  if reps <= 0 then invalid_arg "Exp_common.measure: reps must be positive";
  let algos_a = Array.of_list algos in
  let n_algos = Array.length algos_a in
  let one rep =
    let rng = Splitmix.of_int (seed + (1009 * rep)) in
    let inst = gen rng in
    let bracket = Omflp_offline.Opt_estimate.bracket ?exact ?local_search inst in
    let rep_costs = Array.make n_algos 0.0 in
    let rep_ratios = Array.make n_algos 0.0 in
    let rep_n_fac = Array.make n_algos 0.0 in
    Array.iteri
      (fun ai (_, algo) ->
        let run =
          Omflp_core.Simulator.run ~seed:(seed + (31 * rep)) algo inst
        in
        let c = Omflp_core.Run.total_cost run in
        rep_costs.(ai) <- c;
        rep_ratios.(ai) <- (if bracket.upper > 0.0 then c /. bracket.upper else 1.0);
        rep_n_fac.(ai) <-
          float_of_int (List.length run.Omflp_core.Run.facilities))
      algos_a;
    {
      rep_upper = bracket.upper;
      rep_lower = bracket.lower;
      rep_lower_method = bracket.lower_method;
      rep_upper_method = bracket.upper_method;
      rep_costs;
      rep_ratios;
      rep_n_fac;
    }
  in
  let results =
    Pool.map (pool_or_default pool) one (Array.init reps Fun.id)
  in
  {
    measurements =
      List.mapi
        (fun ai (name, _) ->
          {
            algorithm = name;
            costs = Array.map (fun r -> r.rep_costs.(ai)) results;
            ratios_vs_upper = Array.map (fun r -> r.rep_ratios.(ai)) results;
            n_facilities = Array.map (fun r -> r.rep_n_fac.(ai)) results;
          })
        algos;
    opt_uppers = Array.map (fun r -> r.rep_upper) results;
    opt_lowers = Array.map (fun r -> r.rep_lower) results;
    lower_method = method_label (Array.map (fun r -> r.rep_lower_method) results);
    upper_method = method_label (Array.map (fun r -> r.rep_upper_method) results);
  }

let mean = Stats.mean
let ci = Stats.ci95

module Spec = struct
  type t = {
    id : string;
    quick : bool;
    reps : int option;
    seed : int option;
    sizes : int list option;
    xs : float list option;
    n_commodities : int option;
    steps : int option;
  }

  let make ?(quick = false) ?reps ?seed ?sizes ?xs ?n_commodities ?steps id =
    {
      id = String.lowercase_ascii id;
      quick;
      reps;
      seed;
      sizes;
      xs;
      n_commodities;
      steps;
    }

  (* [resolve field ~quick_default spec]: an explicit field wins; an
     unset field on a quick spec takes the experiment's quick default;
     otherwise the experiment's own full-size default applies (the
     wrapper passes [None] through to its optional argument). *)
  let resolve field ~quick_default (spec : t) =
    match field with
    | Some _ -> field
    | None -> if spec.quick then Some quick_default else None
end

let default_algos () = Omflp_core.Registry.all ()

type section = { title : string; notes : string list; table : Texttable.t }

let section_to_string s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "\n== %s ==\n" s.title);
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "   %s\n" n)) s.notes;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Texttable.render s.table);
  Buffer.contents buf

let print_section s = print_string (section_to_string s)
