(** E9 — Section 1.1's "different cost model".

    The paper notes that charging connection cost per commodity (instead
    of once per facility connection) is simulated by replacing every
    request by singleton requests, growing the sequence by at most a
    factor |S| and the competitive ratios by only a constant. The table
    runs every algorithm on original vs per-commodity-split instances and
    reports the cost inflation — which should stay a small constant even
    though the sequence length multiplies. *)

val run_spec : Exp_common.Spec.t -> Exp_common.section
