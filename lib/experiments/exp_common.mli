(** Shared experiment plumbing: seeded repetition, OPT bracketing, ratio
    aggregation, table assembly. *)

open Omflp_prelude

type measurement = {
  algorithm : string;
  costs : float array;  (** total cost per repetition *)
  ratios_vs_upper : float array;
      (** cost / best-known offline solution (conservative: never
          over-reports the competitive ratio) *)
  n_facilities : float array;
}

type outcome = {
  measurements : measurement list;
  opt_uppers : float array;
  opt_lowers : float array;
  lower_method : string;
      (** the estimator used on every repetition, or ["mixed(a|b)"] when
          repetitions disagree (distinct methods, first-rep order) *)
  upper_method : string;  (** same convention as [lower_method] *)
}

(** [measure ~reps ~seed ~gen ~algos ()] generates [reps] seeded instances,
    brackets OPT on each, and runs every algorithm. [exact]/[local_search]
    are forwarded to {!Omflp_offline.Opt_estimate.bracket}.

    Repetitions are independent — each derives its own RNGs from [seed]
    and the repetition index — and run through [pool] (default:
    {!Pool.default}). The outcome is byte-identical for any pool size. *)
val measure :
  ?exact:bool ->
  ?local_search:bool ->
  ?pool:Pool.t ->
  reps:int ->
  seed:int ->
  gen:(Splitmix.t -> Omflp_instance.Instance.t) ->
  algos:(string * (module Omflp_core.Algo_intf.ALGO)) list ->
  unit ->
  outcome

(** [method_label methods] collapses per-repetition estimator names into
    one label: the common name when all repetitions agree, or
    ["mixed(a|b)"] (distinct names, first-occurrence order) when they
    don't. *)
val method_label : string array -> string

(** [mean xs], [ci xs] — re-exports for report code. *)
val mean : float array -> float

val ci : float array -> float

(** One record describes a run of any experiment — the single entry
    point replacing the per-experiment keyword signatures. Unset fields
    fall back to the experiment's defaults ([quick] selects its reduced
    smoke-run defaults); fields an experiment does not use are ignored.

    Field reuse across experiments: [sizes] is e1's |S| list, e4's
    request counts, and e10's adversary levels; [xs] is e3's cost
    exponents and e8's surcharges. *)
module Spec : sig
  type t = {
    id : string;  (** "e1" … "e11" (lowercased by {!make}) *)
    quick : bool;
    reps : int option;
    seed : int option;
    sizes : int list option;
    xs : float list option;
    n_commodities : int option;
    steps : int option;
  }

  val make :
    ?quick:bool ->
    ?reps:int ->
    ?seed:int ->
    ?sizes:int list ->
    ?xs:float list ->
    ?n_commodities:int ->
    ?steps:int ->
    string ->
    t

  (** [resolve field ~quick_default spec] implements the precedence
      explicit > quick default > experiment default ([None]). *)
  val resolve : 'a option -> quick_default:'a -> t -> 'a option
end

(** [default_algos ()] is the full registry. *)
val default_algos : unit -> (string * (module Omflp_core.Algo_intf.ALGO)) list

(** A titled table, the unit every experiment produces. *)
type section = { title : string; notes : string list; table : Texttable.t }

(** [section_to_string s] renders the section exactly as
    {!print_section} emits it — title banner, indented notes, blank line,
    table — so tests can pin the printed output byte-for-byte. *)
val section_to_string : section -> string

val print_section : section -> unit
