open Omflp_prelude
open Omflp_instance

let algos () :
    (string * (module Omflp_core.Algo_intf.ALGO)) list =
  [
    (Omflp_core.Pd_omflp.name, (module Omflp_core.Pd_omflp));
    (Omflp_core.Heavy_aware.name, (module Omflp_core.Heavy_aware));
    (Omflp_core.Rand_omflp.name, (module Omflp_core.Rand_omflp));
    (Omflp_core.Indep_baseline.name, (module Omflp_core.Indep_baseline));
  ]

let heavy_cost ~surcharge ~n_commodities ~n_sites =
  let base =
    Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites ~x:1.0
  in
  let surcharges = Array.make n_commodities 0.0 in
  surcharges.(0) <- surcharge;
  Omflp_commodity.Cost_function.with_surcharge base ~surcharges

let run ?(reps = 5) ?(surcharges = [ 0.0; 5.0; 20.0 ]) ?(seed = 47) () =
  let table =
    Texttable.create
      [ "surcharge"; "algorithm"; "mean cost"; "mean ratio"; "+/-"; "large/custom" ]
  in
  List.iter
    (fun surcharge ->
      let outcome =
        Exp_common.measure ~reps ~seed
          ~gen:(fun rng ->
            Generators.clustered rng ~clusters:3 ~per_cluster:4 ~n_requests:30
              ~n_commodities:6 ~side:100.0 ~spread:2.0
              ~cost:(heavy_cost ~surcharge))
          ~algos:(algos ()) ()
      in
      List.iter
        (fun (m : Exp_common.measurement) ->
          Texttable.add_row table
            [
              Texttable.cell_f surcharge;
              m.algorithm;
              Texttable.cell_f (Exp_common.mean m.costs);
              Texttable.cell_f (Exp_common.mean m.ratios_vs_upper);
              Texttable.cell_f (Exp_common.ci m.ratios_vs_upper);
              Texttable.cell_f (Exp_common.mean m.n_facilities);
            ])
        outcome.measurements;
      Texttable.add_rule table)
    surcharges;
  {
    Exp_common.title =
      "E8: heavy commodities (Section 5) — surcharge on commodity 0, clustered family";
    notes =
      [
        "Condition 1 breaks as the surcharge grows: vanilla PD pays it in every";
        "large facility, HEAVY-AWARE excludes the heavy commodity from large";
        "facilities and serves it independently (the paper's proposed fix).";
      ];
    table;
  }

let run_spec (s : Exp_common.Spec.t) =
  run
    ?reps:(Exp_common.Spec.resolve s.reps ~quick_default:2 s)
    ?surcharges:s.xs ?seed:s.seed ()
