open Omflp_prelude

let run ?(reps = 3) ?(ns = [ 50; 100; 200; 400 ]) ?(n_commodities = 8)
    ?(seed = 44) () =
  let table =
    Texttable.create
      [
        "n";
        "algorithm";
        "mean ratio";
        "+/-";
        "ratio/H_n";
        "ratio/(ln n/ln ln n)";
      ]
  in
  List.iter
    (fun n ->
      let outcome =
        Exp_common.measure ~reps ~seed ~exact:false ~local_search:(n <= 60)
          ~gen:(fun rng ->
            Omflp_instance.Generators.line rng ~n_sites:(max 10 (n / 10))
              ~n_requests:n ~n_commodities ~length:100.0
              ~demand:
                (Omflp_instance.Demand.Zipf_bundle
                   { zipf_s = 1.0; max_size = min 4 n_commodities })
              ~cost:(fun ~n_commodities ~n_sites ->
                Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites
                  ~x:1.0))
          ~algos:(Exp_common.default_algos ())
          ()
      in
      let hn = Numerics.harmonic n in
      let lll = Numerics.log_over_loglog n in
      List.iter
        (fun (m : Exp_common.measurement) ->
          let r = Exp_common.mean m.ratios_vs_upper in
          Texttable.add_row table
            [
              Texttable.cell_i n;
              m.algorithm;
              Texttable.cell_f r;
              Texttable.cell_f (Exp_common.ci m.ratios_vs_upper);
              Texttable.cell_f (r /. hn);
              Texttable.cell_f (r /. lll);
            ])
        outcome.measurements;
      Texttable.add_rule table)
    ns;
  {
    Exp_common.title =
      Printf.sprintf
        "E4: ratio growth with n on line metrics (|S| = %d, cost g_1 = sqrt, zipf bundles)"
        n_commodities;
    notes =
      [
        "OPT estimated by the greedy offline solution (+ local search for n <= 60):";
        "reported ratios under-estimate the true competitive ratio.";
        "Paper: PD = O(sqrt|S| log n), RAND = O(sqrt|S| log n / log log n).";
      ];
    table;
  }

let run_spec (s : Exp_common.Spec.t) =
  run
    ?reps:(Exp_common.Spec.resolve s.reps ~quick_default:2 s)
    ?ns:(Exp_common.Spec.resolve s.sizes ~quick_default:[ 25; 50; 100 ] s)
    ?n_commodities:s.n_commodities ?seed:s.seed ()
