open Omflp_prelude

let run ?(levels_list = [ 4; 6; 8 ]) ?(seed = 49) () =
  let table =
    Texttable.create
      [ "levels"; "n"; "algorithm"; "cost"; "OPT<="; "ratio>="; "facilities" ]
  in
  (* Every (levels, algorithm) attack is independent and seeded, so the
     whole grid fans out; rows are added back in grid order. *)
  let algos = Exp_common.default_algos () in
  let grid =
    Array.of_list
      (List.concat_map
         (fun levels -> List.map (fun a -> (levels, a)) algos)
         levels_list)
  in
  let rows =
    Pool.map (Pool.default ())
      (fun (levels, (name, algo)) ->
        let outcome = Omflp_core.Adversary.zoom_line ~seed ~levels algo in
        let bracket =
          Omflp_offline.Opt_estimate.bracket ~exact:false ~local_search:false
            outcome.Omflp_core.Adversary.realized
        in
        let cost = Omflp_core.Run.total_cost outcome.Omflp_core.Adversary.run in
        ( levels,
          [
            Texttable.cell_i levels;
            Texttable.cell_i
              (Omflp_instance.Instance.n_requests
                 outcome.Omflp_core.Adversary.realized);
            name;
            Texttable.cell_f cost;
            Texttable.cell_f bracket.Omflp_offline.Opt_estimate.upper;
            Texttable.cell_f (cost /. bracket.Omflp_offline.Opt_estimate.upper);
            Texttable.cell_f
              (float_of_int
                 (List.length
                    outcome.Omflp_core.Adversary.run.Omflp_core.Run.facilities));
          ] ))
      grid
  in
  Array.iteri
    (fun i (levels, row) ->
      Texttable.add_row table row;
      if i = Array.length rows - 1 || fst rows.(i + 1) <> levels then
        Texttable.add_rule table)
    rows;
  {
    Exp_common.title =
      "E10: adaptive zoom-in adversary on the dyadic line (log n pressure)";
    notes =
      [
        "Each algorithm is attacked individually; OPT estimated on the realized";
        "sequence. Ratios exceed E4's random-input levels and grow with levels ~";
        "log n: slowly for the hedging primal-dual algorithms, dramatically for";
        "the non-competitive GREEDY (it connects forever instead of re-opening).";
      ];
    table;
  }

let run_spec (s : Exp_common.Spec.t) =
  run
    ?levels_list:(Exp_common.Spec.resolve s.sizes ~quick_default:[ 4; 6 ] s)
    ?seed:s.seed ()
