(** E10 — adaptive zoom-in adversary (the [log n] pressure behind
    Corollary 3's second term, inherited from Fotakis' OFLP bound).

    Every algorithm is attacked individually (the adversary watches its
    facilities); ratios are against the offline bracket of the realized
    sequence. The ratio should grow roughly linearly in [levels] ≈ log n —
    in contrast with E4's flat curves on random inputs. *)

val run_spec : Exp_common.Spec.t -> Exp_common.section
