open Omflp_prelude
open Omflp_commodity

(* Exact OPT on a single point for a size-based, monotone cost: the best
   partition of the requested commodity count into facility sizes. *)
let exact_opt ~n_commodities ~n_requested =
  let root = max 1 (Numerics.isqrt n_commodities) in
  let g k = float_of_int (Numerics.ceil_div k root) in
  Omflp_offline.Exact.single_point_partition ~g ~n_requested

let run ?(reps = 5) ?(sizes = [ 16; 64; 256; 1024 ]) ?(seed = 42) () =
  let table =
    Texttable.create
      [
        "|S|";
        "regime";
        "algorithm";
        "OPT";
        "mean ratio";
        "+/-";
        "ratio/sqrt|S|";
        "facilities";
      ]
  in
  let algos = Exp_common.default_algos () in
  let algos_a = Array.of_list algos in
  let pool = Pool.default () in
  List.iter
    (fun s ->
      let root = Numerics.isqrt s in
      (* Regime (a): |S'| = sqrt|S| — the exact Theorem 2 distribution,
         every online algorithm must pay Omega(sqrt|S|) * OPT.
         Regime (b): |S'| = |S| — prediction pays off: PD/RAND open one
         large facility early, INDEP/GREEDY pay ~sqrt|S| * OPT. *)
      List.iter
        (fun (regime, n_requested) ->
          let opt = exact_opt ~n_commodities:s ~n_requested in
          let per_rep =
            Pool.map pool
              (fun rep ->
                let rng = Splitmix.of_int (seed + (1009 * rep) + s) in
                let inst =
                  Omflp_instance.Generators.single_point_adversary rng
                    ~n_commodities:s ~cost:Cost_function.theorem2 ~n_requested
                in
                Array.map
                  (fun (_, algo) ->
                    let run =
                      Omflp_core.Simulator.run ~seed:(seed + (31 * rep)) algo
                        inst
                    in
                    ( Omflp_core.Run.total_cost run /. opt,
                      float_of_int
                        (List.length run.Omflp_core.Run.facilities) ))
                  algos_a)
              (Array.init reps Fun.id)
          in
          let ratios =
            Array.init (Array.length algos_a) (fun ai ->
                Array.map (fun r -> fst r.(ai)) per_rep)
          in
          let n_fac =
            Array.init (Array.length algos_a) (fun ai ->
                Array.map (fun r -> snd r.(ai)) per_rep)
          in
          List.iteri
            (fun ai (name, _) ->
              Texttable.add_row table
                [
                  Texttable.cell_i s;
                  regime;
                  name;
                  Texttable.cell_f opt;
                  Texttable.cell_f (Exp_common.mean ratios.(ai));
                  Texttable.cell_f (Exp_common.ci ratios.(ai));
                  Texttable.cell_f
                    (Exp_common.mean ratios.(ai) /. float_of_int root);
                  Texttable.cell_f (Exp_common.mean n_fac.(ai));
                ])
            algos;
          Texttable.add_rule table)
        [ ("|S'|=sqrt|S|", root); ("|S'|=|S|", s) ])
    sizes;
  {
    Exp_common.title =
      "E1: Theorem 2 adversary (single point, cost = ceil(|sigma|/sqrt|S|), exact OPT)";
    notes =
      [
        "Regime |S'|=sqrt|S| is the paper's Yao distribution: OPT = 1 and every online";
        "algorithm pays Omega(sqrt|S|) — the ratio/sqrt|S| column is Theta(1) for all.";
        "Regime |S'|=|S| shows why prediction is necessary: predicting algorithms";
        "(PD/RAND/ALL-LARGE) reach O(1) ratio, non-predicting ones stay at sqrt|S|.";
      ];
    table;
  }

let run_spec (s : Exp_common.Spec.t) =
  run
    ?reps:(Exp_common.Spec.resolve s.reps ~quick_default:3 s)
    ?sizes:(Exp_common.Spec.resolve s.sizes ~quick_default:[ 16; 64; 256 ] s)
    ?seed:s.seed ()
