(** E4 — Theorems 4 and 19: growth of the competitive ratio with the
    number of requests [n] on line metrics.

    The paper proves O(√|S|·log n) for PD-OMFLP and
    O(√|S|·log n / log log n) for RAND-OMFLP; the table reports measured
    ratios together with their normalizations by [H_n] and
    [ln n / ln ln n] — the normalized columns should stay bounded (and in
    practice nearly flat) as [n] grows. Ratios are against the best-known
    offline solution (greedy), so they under-report the true ratio. *)

val run_spec : Exp_common.Spec.t -> Exp_common.section
