(** E1 — the Theorem 2 / Figure 1 lower-bound experiment.

    The exact Yao distribution of Section 2 on a single point with cost
    [⌈|σ|/√|S|⌉]: OPT opens one facility for the √|S| requested
    commodities and pays exactly 1, while any non-predicting algorithm
    pays Θ(√|S|). The table shows, per |S| and algorithm, the mean cost
    (which equals the ratio, OPT = 1) and its normalization by √|S|:
    the paper predicts the normalized column to be Θ(1) for
    non-predicting algorithms (INDEP, GREEDY) and o(1)-to-constant with a
    much smaller constant for the predicting ones (PD, RAND). *)

val run_spec : Exp_common.Spec.t -> Exp_common.section
