(** E8 — Section 5 (closing remarks): heavy commodities.

    A per-commodity surcharge on one commodity breaks Condition 1: every
    full-configuration facility pays the surcharge, so vanilla PD-OMFLP's
    large facilities become increasingly wasteful as the surcharge grows,
    while the paper's proposed fix — exclude heavy commodities from large
    facilities and serve them independently ({!Omflp_core.Heavy_aware}) —
    stays flat. *)

val run_spec : Exp_common.Spec.t -> Exp_common.section
