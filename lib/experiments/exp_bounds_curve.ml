open Omflp_prelude

let upper_factor ~n_commodities ~x =
  Float.pow (sqrt (float_of_int n_commodities)) (((2.0 *. x) -. (x *. x)) /. 2.0)

let lower_factor ~n_commodities ~x =
  let root = sqrt (float_of_int n_commodities) in
  Float.min (Float.pow root ((2.0 -. x) /. 2.0)) (Float.pow root (x /. 2.0))

let run ?(n_commodities = 10_000) ?(steps = 20) () =
  let table =
    Texttable.create
      [ "x"; "upper: sqrt|S|^((2x-x^2)/2)"; "lower: min(sqrt|S|^((2-x)/2), sqrt|S|^(x/2))" ]
  in
  for i = 0 to steps do
    let x = 2.0 *. float_of_int i /. float_of_int steps in
    Texttable.add_row table
      [
        Printf.sprintf "%.2f" x;
        Texttable.cell_f (upper_factor ~n_commodities ~x);
        Texttable.cell_f (lower_factor ~n_commodities ~x);
      ]
  done;
  {
    Exp_common.title =
      Printf.sprintf "E2: Figure 2 bound curves (|S| = %d)" n_commodities;
    notes =
      [
        "Closed-form reproduction; both curves peak at |S|^(1/4) = 10 at x = 1";
        "and coincide at x in {0, 1, 2}.";
      ];
    table;
  }

let run_spec (s : Exp_common.Spec.t) =
  run ?n_commodities:s.n_commodities ?steps:s.steps ()
