(** E11 — arrival-model comparison: every extended-registry algorithm on
    the same seeded families under adversarial, random-order, and i.i.d.
    arrival ({!Omflp_instance.Arrival}), with mean and p95 empirical
    ratios against the OPT bracket.

    The zoom-line family materializes the classic coarse-to-fine bad
    order for online facility location; Kaplan–Naori–Raz
    (arXiv:2207.08783) prove Meyerson's algorithm is ~O(1)-competitive
    once that order is uniformly shuffled, so MEYERSON-OFL's
    random-order row is expected at or below its adversarial row. *)

val run_spec : Exp_common.Spec.t -> Exp_common.section
