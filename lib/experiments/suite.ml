let ids = [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e8"; "e9"; "e10" ]

let run_one ~quick = function
  | "e1" ->
      if quick then
        Exp_lower_bound.run ~reps:3 ~sizes:[ 16; 64; 256 ] ()
      else Exp_lower_bound.run ()
  | "e2" -> Exp_bounds_curve.run ()
  | "e3" ->
      if quick then Exp_cost_sweep.run ~reps:3 ~n_commodities:16 ()
      else Exp_cost_sweep.run ()
  | "e4" ->
      if quick then Exp_scaling_n.run ~reps:2 ~ns:[ 25; 50; 100 ] ()
      else Exp_scaling_n.run ()
  | "e5" ->
      if quick then Exp_algorithms_table.run ~reps:2 ~quick:true ()
      else Exp_algorithms_table.run ()
  | "e6" ->
      if quick then Exp_ablation.run ~reps:2 () else Exp_ablation.run ()
  | "e8" -> if quick then Exp_heavy.run ~reps:2 () else Exp_heavy.run ()
  | "e9" ->
      if quick then Exp_model_transform.run ~reps:2 ()
      else Exp_model_transform.run ()
  | "e10" ->
      if quick then Exp_adversarial.run ~levels_list:[ 4; 6 ] ()
      else Exp_adversarial.run ()
  | other -> invalid_arg (Printf.sprintf "unknown experiment id %S" other)

let run ?pool ~quick ~which () =
  let which = String.lowercase_ascii which in
  let pool =
    match pool with Some p -> p | None -> Omflp_prelude.Pool.default ()
  in
  if which = "all" then
    (* Whole experiments fan out across the pool; sections come back in
       [ids] order (Pool.map preserves input order), so the printed
       output is independent of scheduling. An experiment running inside
       a pool task executes its own per-rep fan-out inline (nested maps
       are sequential); a single-experiment run parallelizes its reps
       instead. *)
    Array.to_list
      (Omflp_prelude.Pool.map pool
         (fun id -> run_one ~quick id)
         (Array.of_list ids))
  else [ run_one ~quick which ]
