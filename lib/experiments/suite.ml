let ids = [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e8"; "e9"; "e10"; "e11" ]

let run_spec (spec : Exp_common.Spec.t) =
  match spec.id with
  | "e1" -> Exp_lower_bound.run_spec spec
  | "e2" -> Exp_bounds_curve.run_spec spec
  | "e3" -> Exp_cost_sweep.run_spec spec
  | "e4" -> Exp_scaling_n.run_spec spec
  | "e5" -> Exp_algorithms_table.run_spec spec
  | "e6" -> Exp_ablation.run_spec spec
  | "e8" -> Exp_heavy.run_spec spec
  | "e9" -> Exp_model_transform.run_spec spec
  | "e10" -> Exp_adversarial.run_spec spec
  | "e11" -> Exp_arrival.run_spec spec
  | other -> invalid_arg (Printf.sprintf "unknown experiment id %S" other)

let run ?pool ~quick ~which () =
  let which = String.lowercase_ascii which in
  let pool =
    match pool with Some p -> p | None -> Omflp_prelude.Pool.default ()
  in
  let spec id = Exp_common.Spec.make ~quick id in
  if which = "all" then
    (* Whole experiments fan out across the pool; sections come back in
       [ids] order (Pool.map preserves input order), so the printed
       output is independent of scheduling. An experiment running inside
       a pool task executes its own per-rep fan-out inline (nested maps
       are sequential); a single-experiment run parallelizes its reps
       instead. *)
    Array.to_list
      (Omflp_prelude.Pool.map pool
         (fun id -> run_spec (spec id))
         (Array.of_list ids))
  else [ run_spec (spec which) ]
