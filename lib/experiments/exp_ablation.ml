open Omflp_prelude
open Omflp_instance

let costs =
  [
    ( "linear (x=2)",
      fun ~n_commodities ~n_sites ->
        Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites ~x:2.0
    );
    ( "sqrt (x=1)",
      fun ~n_commodities ~n_sites ->
        Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites ~x:1.0
    );
    ( "constant (x=0)",
      fun ~n_commodities ~n_sites ->
        Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites ~x:0.0
    );
  ]

let run ?(reps = 5) ?(seed = 46) () =
  let table =
    Texttable.create
      [ "cost function"; "algorithm"; "mean cost"; "mean ratio"; "+/-" ]
  in
  List.iter
    (fun (cname, cost) ->
      let outcome =
        Exp_common.measure ~reps ~seed
          ~gen:(fun rng ->
            Generators.clustered rng ~clusters:3 ~per_cluster:4 ~n_requests:30
              ~n_commodities:8 ~side:100.0 ~spread:2.0 ~cost)
          ~algos:(Exp_common.default_algos ())
          ()
      in
      List.iter
        (fun (m : Exp_common.measurement) ->
          Texttable.add_row table
            [
              cname;
              m.algorithm;
              Texttable.cell_f (Exp_common.mean m.costs);
              Texttable.cell_f (Exp_common.mean m.ratios_vs_upper);
              Texttable.cell_f (Exp_common.ci m.ratios_vs_upper);
            ])
        outcome.measurements;
      Texttable.add_rule table)
    costs;
  {
    Exp_common.title =
      "E6: cost-function ablation on the clustered family (Section 3.3)";
    notes =
      [
        "Linear cost: prediction useless, INDEP ~ PD. Constant cost: one large";
        "facility is optimal, ALL-LARGE-style prediction is free.";
      ];
    table;
  }

let run_spec (s : Exp_common.Spec.t) =
  run
    ?reps:(Exp_common.Spec.resolve s.reps ~quick_default:2 s)
    ?seed:s.seed ()
