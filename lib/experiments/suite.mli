(** Experiment suite entry point: maps experiment ids to runners. *)

(** [run ~quick ~which] executes experiments. [which] is an id
    ("e1" … "e6", "e8"; "e7" is the Bechamel half of [bench/main.exe]) or
    "all". [quick] shrinks sizes/repetitions for smoke runs. Raises
    [Invalid_argument] on an unknown id.

    With ["all"], experiments are dispatched across [pool] (default:
    {!Omflp_prelude.Pool.default}); the returned sections are always in
    {!ids} order and byte-identical for any pool size. *)
val run :
  ?pool:Omflp_prelude.Pool.t ->
  quick:bool ->
  which:string ->
  unit ->
  Exp_common.section list

val ids : string list
