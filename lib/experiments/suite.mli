(** Experiment suite entry point: one spec-driven runner for every
    experiment. *)

(** [run_spec spec] dispatches on [spec.id] ("e1" … "e6", "e8" … "e11";
    "e7" is the Bechamel half of [bench/main.exe]) and runs the
    experiment with the spec's overrides. Raises [Invalid_argument] on
    an unknown id. *)
val run_spec : Exp_common.Spec.t -> Exp_common.section

(** [run ~quick ~which] builds a {!Exp_common.Spec} per requested id
    ([which] is an id or "all") and executes it via {!run_spec}.

    With ["all"], experiments are dispatched across [pool] (default:
    {!Omflp_prelude.Pool.default}); the returned sections are always in
    {!ids} order and byte-identical for any pool size. *)
val run :
  ?pool:Omflp_prelude.Pool.t ->
  quick:bool ->
  which:string ->
  unit ->
  Exp_common.section list

val ids : string list
