(** Process-wide metrics registry: monotonic counters, wall-clock timers,
    and log-scale histograms.

    Designed to stay enabled in hot paths: instruments are registered once
    (at module initialization) and resolve to indices into flat arrays, so
    an increment is one branch on the global enable flag plus one array
    write — no allocation, no hashing. All instruments are process-global;
    callers that need per-run numbers snapshot before and after, or
    {!reset} between runs.

    Recording is {e domain-safe}: instrument state is sharded per domain
    (each domain writes only its own flat arrays, reached through
    [Domain.DLS], so pool workers never contend or race), and readers
    ({!value}, {!snapshot}, {!reset}) merge every shard in domain-id
    order. Integer counters therefore merge exactly — the same workload
    yields the same counts whether it ran on 1 domain or N — while float
    accumulators (timer totals, histogram sums) merge in a deterministic
    order. Merging is intended for join points: call {!snapshot} or
    {!value} only while no task is concurrently {e recording}.
    Concurrent {e registration} is safe, though: {!snapshot} captures the
    instrument name tables under the registration mutex, so a server
    registering per-session instruments on one domain never tears a
    snapshot taken on another.

    Recording is gated by {!set_enabled} and starts disabled, so
    unobserved runs pay only the flag check. *)

(** {1 Enablement} *)

val set_enabled : bool -> unit

val enabled : unit -> bool

(** {1 Counters} *)

type counter

(** [counter name] registers (or looks up — registration is idempotent,
    the same name always yields the same instrument) a monotonic counter. *)
val counter : string -> counter

(** [incr c] adds 1 when metrics are enabled; no-op otherwise. *)
val incr : counter -> unit

(** [add c n] adds [n] when metrics are enabled. *)
val add : counter -> int -> unit

val value : counter -> int

(** {1 Timers}

    A timer accumulates wall-clock spans (seconds) and the number of
    recorded spans. *)

type timer

val timer : string -> timer

(** [now ()] is the current wall clock in seconds (monotonic enough for
    span measurement; [Unix.gettimeofday]). Always live, so callers can
    bracket a span and decide later whether to record it. *)
val now : unit -> float

(** [record_span t seconds] adds one span when metrics are enabled. *)
val record_span : timer -> float -> unit

(** [time t f] runs [f ()], recording its duration when enabled. *)
val time : timer -> (unit -> 'a) -> 'a

(** {1 Histograms}

    Fixed log-scale (base-2) buckets: bucket [i] covers
    [[2^(i-34), 2^(i-33))] with the extremes clamped, so the usable range
    spans ~5.8e-11 to ~5.4e8 — nanoseconds to years when observing
    seconds, single units to hundreds of millions when observing sizes.
    Observation is two array writes; quantiles from the snapshot are
    approximate (bucket geometric midpoint). *)

type histogram

val histogram : string -> histogram

(** [observe h v] records [v] (clamped to the bucket range) when
    enabled. *)
val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type counter_view = { c_name : string; c_value : int }

type timer_view = {
  t_name : string;
  t_events : int;
  t_total_s : float;  (** summed span length, seconds *)
}

type bucket = { b_lo : float; b_hi : float; b_count : int }

type histogram_view = {
  h_name : string;
  h_events : int;
  h_sum : float;
  h_buckets : bucket list;  (** non-empty buckets, ascending *)
}

type snapshot = {
  counters : counter_view list;
  timers : timer_view list;
  histograms : histogram_view list;
}

(** [snapshot ()] captures every registered instrument, each section
    sorted by name (deterministic output). Zero-valued counters are
    included — a wired-but-never-hit code path is itself a signal. *)
val snapshot : unit -> snapshot

(** [approx_quantile view q] estimates the [q]-quantile ([0 <= q <= 1])
    of a histogram from its buckets; [nan] when empty. *)
val approx_quantile : histogram_view -> float -> float

(** [reset ()] zeroes every instrument, keeping registrations. *)
val reset : unit -> unit
