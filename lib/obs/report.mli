(** Render a {!Metrics.snapshot} as aligned text tables (via
    {!Omflp_prelude.Texttable}): one table per instrument kind, rows
    sorted by name — deterministic output for a deterministic run. *)

(** [render snapshot] lays out up to three tables (counters; timers;
    histograms), skipping empty sections. Timer totals are reported in
    ms with a derived mean in µs; histogram quantiles are approximate
    (log-bucket midpoints). *)
val render : Metrics.snapshot -> string

(** [print ?title ()] snapshots the current registry and prints it,
    preceded by [title] (default ["metrics"]) — the one-call form for
    CLI [--metrics] style consumers. *)
val print : ?title:string -> unit -> unit
