(** Structured per-request trace sink: one JSON object per line.

    A sink wraps an output channel; records are flat string-keyed field
    lists, written in the order given with a [kind] discriminator first
    and a per-sink monotonically increasing [seq] second. Producers
    (simulator, algorithms) emit through the process-global {e current}
    sink via {!emit_current}, which is a no-op while no sink is
    installed — so tracing, like metrics, costs one check when off. *)

type t

type value =
  | Int of int
  | Float of float  (** non-finite values are written as [null] *)
  | String of string
  | Bool of bool

(** [to_channel oc] wraps an existing channel; {!close} flushes but does
    not close it. *)
val to_channel : out_channel -> t

(** [open_file path] opens [path] in {e append} mode (creating it when
    missing), so resumed sessions — and any two sinks pointed at one
    path — extend the event log instead of truncating each other;
    {!close} closes it. The per-sink [seq] still starts at 0. *)
val open_file : string -> t

(** [emit t ~kind fields] writes one line:
    [{"kind":<kind>,"seq":<n>,<fields...>}] and flushes the channel, so
    a crash loses at most the record being written. Emission is atomic
    per record — a single-writer mutex serializes the seq draw and the
    whole-line write — so concurrent sessions on different domains
    sharing one sink never interleave torn lines or duplicate sequence
    numbers. *)
val emit : t -> kind:string -> (string * value) list -> unit

val close : t -> unit

(** {1 The process-global current sink} *)

val install : t -> unit

(** [uninstall ()] detaches the current sink without closing it. *)
val uninstall : unit -> unit

val installed : unit -> bool

(** [emit_current ~kind fields] emits through the installed sink, if
    any. *)
val emit_current : kind:string -> (string * value) list -> unit
