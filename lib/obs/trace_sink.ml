type value = Int of int | Float of float | String of string | Bool of bool

type t = {
  oc : out_channel;
  owns_channel : bool;  (* close the fd on [close], not just flush *)
  mutable seq : int;
}

let to_channel oc = { oc; owns_channel = false; seq = 0 }

(* Append, never truncate: a resumed session (or a second sink on the
   same path) must extend the event log, not silently clobber it. *)
let open_file path =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
  in
  { oc; owns_channel = true; seq = 0 }

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_value buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.9g" f)
      else Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'

let emit t ~kind fields =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"kind\":";
  add_value buf (String kind);
  Buffer.add_string buf ",\"seq\":";
  Buffer.add_string buf (string_of_int t.seq);
  t.seq <- t.seq + 1;
  List.iter
    (fun (key, v) ->
      Buffer.add_string buf ",\"";
      escape_into buf key;
      Buffer.add_string buf "\":";
      add_value buf v)
    fields;
  Buffer.add_string buf "}\n";
  Buffer.output_buffer t.oc buf;
  (* One flush per record: a crash loses at most the line being written,
     and a resumed session finds every event it emitted before dying. *)
  flush t.oc

let close t =
  flush t.oc;
  if t.owns_channel then close_out t.oc

(* ---------- global current sink ---------- *)

let current : t option ref = ref None

let install t = current := Some t

let uninstall () = current := None

let installed () = Option.is_some !current

let emit_current ~kind fields =
  match !current with None -> () | Some t -> emit t ~kind fields
