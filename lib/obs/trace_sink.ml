type value = Int of int | Float of float | String of string | Bool of bool

type t = {
  oc : out_channel;
  owns_channel : bool;  (* close the fd on [close], not just flush *)
  (* Single-writer lock: concurrent sessions on different domains share
     one sink, and an unserialized [output]+[flush] pair interleaves —
     torn JSONL lines — while the unguarded [seq] bump duplicates
     sequence numbers. Each record's field list is rendered off-lock;
     the seq draw and the whole-line write+flush hold the lock. *)
  mutex : Mutex.t;
  mutable seq : int;
}

let to_channel oc = { oc; owns_channel = false; mutex = Mutex.create (); seq = 0 }

(* Append, never truncate: a resumed session (or a second sink on the
   same path) must extend the event log, not silently clobber it. *)
let open_file path =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
  in
  { oc; owns_channel = true; mutex = Mutex.create (); seq = 0 }

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_value buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.9g" f)
      else Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'

let emit t ~kind fields =
  let tail = Buffer.create 128 in
  List.iter
    (fun (key, v) ->
      Buffer.add_string tail ",\"";
      escape_into tail key;
      Buffer.add_string tail "\":";
      add_value tail v)
    fields;
  Buffer.add_string tail "}\n";
  let head = Buffer.create 48 in
  Buffer.add_string head "{\"kind\":";
  add_value head (String kind);
  Buffer.add_string head ",\"seq\":";
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      Buffer.add_string head (string_of_int t.seq);
      t.seq <- t.seq + 1;
      Buffer.output_buffer t.oc head;
      Buffer.output_buffer t.oc tail;
      (* One flush per record: a crash loses at most the line being
         written, and a resumed session finds every event it emitted
         before dying. *)
      flush t.oc)

let close t =
  flush t.oc;
  if t.owns_channel then close_out t.oc

(* ---------- global current sink ---------- *)

let current : t option ref = ref None

let install t = current := Some t

let uninstall () = current := None

let installed () = Option.is_some !current

let emit_current ~kind fields =
  match !current with None -> () | Some t -> emit t ~kind fields
