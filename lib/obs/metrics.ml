(* Flat-array registry. Each instrument kind keeps a parallel (names,
   state) pair of growable arrays plus a name -> index table; the handle
   handed to callers is the bare index, so the hot-path operations touch
   no heap beyond the preallocated arrays. *)

let on = ref false

let set_enabled b = on := b

let enabled () = !on

(* ---------- counters ---------- *)

type counter = int

let c_index : (string, int) Hashtbl.t = Hashtbl.create 64

let c_names = ref (Array.make 16 "")

let c_values = ref (Array.make 16 0)

let c_count = ref 0

let grow_s a =
  let b = Array.make (2 * Array.length !a) "" in
  Array.blit !a 0 b 0 (Array.length !a);
  a := b

let counter name =
  match Hashtbl.find_opt c_index name with
  | Some i -> i
  | None ->
      if !c_count = Array.length !c_names then begin
        grow_s c_names;
        let b = Array.make (2 * Array.length !c_values) 0 in
        Array.blit !c_values 0 b 0 !c_count;
        c_values := b
      end;
      let i = !c_count in
      !c_names.(i) <- name;
      !c_values.(i) <- 0;
      incr c_count;
      Hashtbl.add c_index name i;
      i

let incr c = if !on then !c_values.(c) <- !c_values.(c) + 1

let add c n = if !on then !c_values.(c) <- !c_values.(c) + n

let value c = !c_values.(c)

(* ---------- timers ---------- *)

type timer = int

let t_index : (string, int) Hashtbl.t = Hashtbl.create 16

let t_names = ref (Array.make 8 "")

let t_events = ref (Array.make 8 0)

let t_totals = ref (Array.make 8 0.0)

let t_count = ref 0

let timer name =
  match Hashtbl.find_opt t_index name with
  | Some i -> i
  | None ->
      if !t_count = Array.length !t_names then begin
        grow_s t_names;
        let b = Array.make (2 * Array.length !t_events) 0 in
        Array.blit !t_events 0 b 0 !t_count;
        t_events := b;
        let b = Array.make (2 * Array.length !t_totals) 0.0 in
        Array.blit !t_totals 0 b 0 !t_count;
        t_totals := b
      end;
      let i = !t_count in
      !t_names.(i) <- name;
      Stdlib.incr t_count;
      Hashtbl.add t_index name i;
      i

let now () = Unix.gettimeofday ()

let record_span t s =
  if !on then begin
    !t_events.(t) <- !t_events.(t) + 1;
    !t_totals.(t) <- !t_totals.(t) +. s
  end

let time t f =
  if !on then begin
    let t0 = now () in
    let r = f () in
    record_span t (now () -. t0);
    r
  end
  else f ()

(* ---------- histograms ---------- *)

(* Bucket i covers [2^(i-34), 2^(i-33)); bucket 0 additionally absorbs
   everything below, the last bucket everything above. *)
let n_buckets = 64

let bucket_of v =
  if v < Float.ldexp 1.0 (-34) then 0
  else
    let e = snd (Float.frexp v) - 1 in
    (* v in [2^e, 2^(e+1)) *)
    Stdlib.min (n_buckets - 1) (Stdlib.max 0 (e + 34))

type histogram = int

let h_index : (string, int) Hashtbl.t = Hashtbl.create 16

let h_names = ref (Array.make 8 "")

let h_buckets = ref (Array.make 8 [||])

let h_sums = ref (Array.make 8 0.0)

let h_count = ref 0

let histogram name =
  match Hashtbl.find_opt h_index name with
  | Some i -> i
  | None ->
      if !h_count = Array.length !h_names then begin
        grow_s h_names;
        let b = Array.make (2 * Array.length !h_buckets) [||] in
        Array.blit !h_buckets 0 b 0 !h_count;
        h_buckets := b;
        let b = Array.make (2 * Array.length !h_sums) 0.0 in
        Array.blit !h_sums 0 b 0 !h_count;
        h_sums := b
      end;
      let i = !h_count in
      !h_names.(i) <- name;
      !h_buckets.(i) <- Array.make n_buckets 0;
      Stdlib.incr h_count;
      Hashtbl.add h_index name i;
      i

let observe h v =
  if !on then begin
    let b = !h_buckets.(h) in
    let i = bucket_of v in
    b.(i) <- b.(i) + 1;
    !h_sums.(h) <- !h_sums.(h) +. v
  end

(* ---------- snapshots ---------- *)

type counter_view = { c_name : string; c_value : int }

type timer_view = { t_name : string; t_events : int; t_total_s : float }

type bucket = { b_lo : float; b_hi : float; b_count : int }

type histogram_view = {
  h_name : string;
  h_events : int;
  h_sum : float;
  h_buckets : bucket list;
}

type snapshot = {
  counters : counter_view list;
  timers : timer_view list;
  histograms : histogram_view list;
}

let bucket_bounds i = (Float.ldexp 1.0 (i - 34), Float.ldexp 1.0 (i - 33))

let snapshot () =
  let counters =
    List.init !c_count (fun i ->
        { c_name = !c_names.(i); c_value = !c_values.(i) })
    |> List.sort (fun a b -> String.compare a.c_name b.c_name)
  in
  let timers =
    List.init !t_count (fun i ->
        { t_name = !t_names.(i); t_events = !t_events.(i); t_total_s = !t_totals.(i) })
    |> List.sort (fun a b -> String.compare a.t_name b.t_name)
  in
  let histograms =
    List.init !h_count (fun i ->
        let cells = !h_buckets.(i) in
        let buckets = ref [] in
        let events = ref 0 in
        for b = n_buckets - 1 downto 0 do
          if cells.(b) > 0 then begin
            let lo, hi = bucket_bounds b in
            buckets := { b_lo = lo; b_hi = hi; b_count = cells.(b) } :: !buckets;
            events := !events + cells.(b)
          end
        done;
        {
          h_name = !h_names.(i);
          h_events = !events;
          h_sum = !h_sums.(i);
          h_buckets = !buckets;
        })
    |> List.sort (fun a b -> String.compare a.h_name b.h_name)
  in
  { counters; timers; histograms }

let approx_quantile view q =
  if view.h_events = 0 then Float.nan
  else begin
    let target =
      Float.max 1.0 (Float.round (q *. float_of_int view.h_events))
    in
    let rec go acc = function
      | [] -> Float.nan
      | [ b ] -> ignore acc; sqrt (b.b_lo *. b.b_hi)
      | b :: rest ->
          let acc = acc + b.b_count in
          if float_of_int acc >= target then sqrt (b.b_lo *. b.b_hi)
          else go acc rest
    in
    go 0 view.h_buckets
  end

let reset () =
  for i = 0 to !c_count - 1 do
    !c_values.(i) <- 0
  done;
  for i = 0 to !t_count - 1 do
    !t_events.(i) <- 0;
    !t_totals.(i) <- 0.0
  done;
  for i = 0 to !h_count - 1 do
    Array.fill !h_buckets.(i) 0 n_buckets 0;
    !h_sums.(i) <- 0.0
  done
