(* Sharded flat-array registry. Registration (name -> index) is global
   and mutex-guarded; the handle handed to callers is the bare index.
   Instrument *state* lives in per-domain shards reached through
   [Domain.DLS], so hot-path recording from pool workers is lock-free
   and race-free: each domain writes only its own arrays. Readers
   ([value] / [snapshot] / [reset]) merge every shard ever created, in
   domain-id order so float accumulation is deterministic; integer
   counters merge exactly regardless of which domain did the work, which
   is what keeps the E7b work-counter tables byte-identical across
   [--jobs] values. Shards of terminated domains are kept (their
   contributions happened), so a merge never loses work. *)

let on = ref false

let set_enabled b = on := b

let enabled () = !on

(* ---------- registration (global, mutex-guarded) ---------- *)

let reg_mutex = Mutex.create ()

let c_index : (string, int) Hashtbl.t = Hashtbl.create 64

let c_names = ref (Array.make 16 "")

let c_count = ref 0

let t_index : (string, int) Hashtbl.t = Hashtbl.create 16

let t_names = ref (Array.make 8 "")

let t_count = ref 0

let h_index : (string, int) Hashtbl.t = Hashtbl.create 16

let h_names = ref (Array.make 8 "")

let h_count = ref 0

let grow_s a =
  let b = Array.make (2 * Array.length !a) "" in
  Array.blit !a 0 b 0 (Array.length !a);
  a := b

let register index names count name =
  Mutex.lock reg_mutex;
  let i =
    match Hashtbl.find_opt index name with
    | Some i -> i
    | None ->
        if !count = Array.length !names then grow_s names;
        let i = !count in
        !names.(i) <- name;
        incr count;
        Hashtbl.add index name i;
        i
  in
  Mutex.unlock reg_mutex;
  i

type counter = int

let counter name = register c_index c_names c_count name

type timer = int

let timer name = register t_index t_names t_count name

(* Bucket i covers [2^(i-34), 2^(i-33)); bucket 0 additionally absorbs
   everything below, the last bucket everything above. *)
let n_buckets = 64

type histogram = int

let histogram name = register h_index h_names h_count name

(* ---------- per-domain shards ---------- *)

type shard = {
  sh_domain : int;  (* merge order key; domain ids are never reused *)
  mutable sh_c : int array;
  mutable sh_t_events : int array;
  mutable sh_t_totals : float array;
  mutable sh_h_cells : int array array;
  mutable sh_h_sums : float array;
}

let shards_mutex = Mutex.create ()

let shards : shard list ref = ref []

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          sh_domain = (Domain.self () :> int);
          sh_c = Array.make (max 16 !c_count) 0;
          sh_t_events = Array.make (max 8 !t_count) 0;
          sh_t_totals = Array.make (max 8 !t_count) 0.0;
          sh_h_cells = Array.init (max 8 !h_count) (fun _ -> Array.make n_buckets 0);
          sh_h_sums = Array.make (max 8 !h_count) 0.0;
        }
      in
      Mutex.lock shards_mutex;
      shards := s :: !shards;
      Mutex.unlock shards_mutex;
      s)

let shard () = Domain.DLS.get shard_key

(* Instruments can be registered after a shard was created (another
   domain, or post-spawn registration), so every accessor widens the
   shard arrays on demand. *)
let grown_i a n =
  let b = Array.make (max n (2 * Array.length a)) 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let grown_f a n =
  let b = Array.make (max n (2 * Array.length a)) 0.0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let counter_cells s c =
  if c >= Array.length s.sh_c then s.sh_c <- grown_i s.sh_c (c + 1);
  s.sh_c

let timer_cells s t =
  if t >= Array.length s.sh_t_events then begin
    s.sh_t_events <- grown_i s.sh_t_events (t + 1);
    s.sh_t_totals <- grown_f s.sh_t_totals (t + 1)
  end

let hist_cells s h =
  if h >= Array.length s.sh_h_cells then begin
    let b =
      Array.init
        (max (h + 1) (2 * Array.length s.sh_h_cells))
        (fun i ->
          if i < Array.length s.sh_h_cells then s.sh_h_cells.(i)
          else Array.make n_buckets 0)
    in
    s.sh_h_cells <- b;
    s.sh_h_sums <- grown_f s.sh_h_sums (h + 1)
  end;
  s.sh_h_cells.(h)

(* Snapshot under the shards mutex, oldest (lowest domain id) first, so
   float merges accumulate in a deterministic order. *)
let sorted_shards () =
  Mutex.lock shards_mutex;
  let l = !shards in
  Mutex.unlock shards_mutex;
  List.sort (fun a b -> compare a.sh_domain b.sh_domain) l

(* ---------- counters ---------- *)

let incr c =
  if !on then begin
    let a = counter_cells (shard ()) c in
    a.(c) <- a.(c) + 1
  end

let add c n =
  if !on then begin
    let a = counter_cells (shard ()) c in
    a.(c) <- a.(c) + n
  end

let value c =
  List.fold_left
    (fun acc s -> if c < Array.length s.sh_c then acc + s.sh_c.(c) else acc)
    0 (sorted_shards ())

(* ---------- timers ---------- *)

let now () = Unix.gettimeofday ()

let record_span t span =
  if !on then begin
    let s = shard () in
    timer_cells s t;
    s.sh_t_events.(t) <- s.sh_t_events.(t) + 1;
    s.sh_t_totals.(t) <- s.sh_t_totals.(t) +. span
  end

let time t f =
  if !on then begin
    let t0 = now () in
    let r = f () in
    record_span t (now () -. t0);
    r
  end
  else f ()

(* ---------- histograms ---------- *)

let bucket_of v =
  if v < Float.ldexp 1.0 (-34) then 0
  else
    let e = snd (Float.frexp v) - 1 in
    (* v in [2^e, 2^(e+1)) *)
    Stdlib.min (n_buckets - 1) (Stdlib.max 0 (e + 34))

let observe h v =
  if !on then begin
    let s = shard () in
    let cells = hist_cells s h in
    let i = bucket_of v in
    cells.(i) <- cells.(i) + 1;
    s.sh_h_sums.(h) <- s.sh_h_sums.(h) +. v
  end

(* ---------- snapshots ---------- *)

type counter_view = { c_name : string; c_value : int }

type timer_view = { t_name : string; t_events : int; t_total_s : float }

type bucket = { b_lo : float; b_hi : float; b_count : int }

type histogram_view = {
  h_name : string;
  h_events : int;
  h_sum : float;
  h_buckets : bucket list;
}

type snapshot = {
  counters : counter_view list;
  timers : timer_view list;
  histograms : histogram_view list;
}

let bucket_bounds i = (Float.ldexp 1.0 (i - 34), Float.ldexp 1.0 (i - 33))

let snapshot () =
  let all = sorted_shards () in
  (* Capture (count, names) pairs under the registration mutex: a
     concurrent [register] from another domain swaps the names array
     ([grow_s]) and bumps the count non-atomically, so an unguarded
     reader can pair a new count with a stale (shorter, or
     partially-blank) array — yielding empty instrument names or an
     out-of-bounds read. Holding the mutex synchronizes-with the
     registering domain's release, so every slot below the captured
     count is fully written in the captured array. *)
  let n_c, names_c, n_t, names_t, n_h, names_h =
    Mutex.lock reg_mutex;
    let r = (!c_count, !c_names, !t_count, !t_names, !h_count, !h_names) in
    Mutex.unlock reg_mutex;
    r
  in
  let counters =
    List.init n_c (fun i ->
        let v =
          List.fold_left
            (fun acc s -> if i < Array.length s.sh_c then acc + s.sh_c.(i) else acc)
            0 all
        in
        { c_name = names_c.(i); c_value = v })
    |> List.sort (fun a b -> String.compare a.c_name b.c_name)
  in
  let timers =
    List.init n_t (fun i ->
        let events, total =
          List.fold_left
            (fun (e, tt) s ->
              if i < Array.length s.sh_t_events then
                (e + s.sh_t_events.(i), tt +. s.sh_t_totals.(i))
              else (e, tt))
            (0, 0.0) all
        in
        { t_name = names_t.(i); t_events = events; t_total_s = total })
    |> List.sort (fun a b -> String.compare a.t_name b.t_name)
  in
  let histograms =
    List.init n_h (fun i ->
        let cells = Array.make n_buckets 0 in
        let sum =
          List.fold_left
            (fun acc s ->
              if i < Array.length s.sh_h_cells then begin
                let sc = s.sh_h_cells.(i) in
                for b = 0 to n_buckets - 1 do
                  cells.(b) <- cells.(b) + sc.(b)
                done;
                acc +. s.sh_h_sums.(i)
              end
              else acc)
            0.0 all
        in
        let buckets = ref [] in
        let events = ref 0 in
        for b = n_buckets - 1 downto 0 do
          if cells.(b) > 0 then begin
            let lo, hi = bucket_bounds b in
            buckets := { b_lo = lo; b_hi = hi; b_count = cells.(b) } :: !buckets;
            events := !events + cells.(b)
          end
        done;
        {
          h_name = names_h.(i);
          h_events = !events;
          h_sum = sum;
          h_buckets = !buckets;
        })
    |> List.sort (fun a b -> String.compare a.h_name b.h_name)
  in
  { counters; timers; histograms }

let approx_quantile view q =
  if view.h_events = 0 then Float.nan
  else begin
    let target =
      Float.max 1.0 (Float.round (q *. float_of_int view.h_events))
    in
    let rec go acc = function
      | [] -> Float.nan
      | [ b ] -> ignore acc; sqrt (b.b_lo *. b.b_hi)
      | b :: rest ->
          let acc = acc + b.b_count in
          if float_of_int acc >= target then sqrt (b.b_lo *. b.b_hi)
          else go acc rest
    in
    go 0 view.h_buckets
  end

let reset () =
  List.iter
    (fun s ->
      Array.fill s.sh_c 0 (Array.length s.sh_c) 0;
      Array.fill s.sh_t_events 0 (Array.length s.sh_t_events) 0;
      Array.fill s.sh_t_totals 0 (Array.length s.sh_t_totals) 0.0;
      Array.iter (fun cells -> Array.fill cells 0 n_buckets 0) s.sh_h_cells;
      Array.fill s.sh_h_sums 0 (Array.length s.sh_h_sums) 0.0)
    (sorted_shards ())
