open Omflp_prelude

let render (s : Metrics.snapshot) =
  let buf = Buffer.create 512 in
  if s.counters <> [] then begin
    let t = Texttable.create [ "counter"; "value" ] in
    List.iter
      (fun (c : Metrics.counter_view) ->
        Texttable.add_row t [ c.c_name; string_of_int c.c_value ])
      s.counters;
    Buffer.add_string buf (Texttable.render t)
  end;
  if s.timers <> [] then begin
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    let t = Texttable.create [ "timer"; "events"; "total ms"; "mean us" ] in
    List.iter
      (fun (tm : Metrics.timer_view) ->
        let mean_us =
          if tm.t_events = 0 then 0.0
          else tm.t_total_s /. float_of_int tm.t_events *. 1e6
        in
        Texttable.add_row t
          [
            tm.t_name;
            string_of_int tm.t_events;
            Printf.sprintf "%.3f" (tm.t_total_s *. 1e3);
            Printf.sprintf "%.2f" mean_us;
          ])
      s.timers;
    Buffer.add_string buf (Texttable.render t)
  end;
  if s.histograms <> [] then begin
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    let t =
      Texttable.create [ "histogram"; "events"; "mean"; "~p50"; "~p99"; "max <" ]
    in
    List.iter
      (fun (h : Metrics.histogram_view) ->
        let mean =
          if h.h_events = 0 then 0.0 else h.h_sum /. float_of_int h.h_events
        in
        let hi =
          List.fold_left (fun _ (b : Metrics.bucket) -> b.b_hi) Float.nan
            h.h_buckets
        in
        Texttable.add_row t
          [
            h.h_name;
            string_of_int h.h_events;
            Printf.sprintf "%.3g" mean;
            Printf.sprintf "%.3g" (Metrics.approx_quantile h 0.5);
            Printf.sprintf "%.3g" (Metrics.approx_quantile h 0.99);
            Printf.sprintf "%.3g" hi;
          ])
      s.histograms;
    Buffer.add_string buf (Texttable.render t)
  end;
  Buffer.contents buf

let print ?(title = "metrics") () =
  Printf.printf "---- %s ----\n%s%!" title (render (Metrics.snapshot ()))
