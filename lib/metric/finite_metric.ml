let m_cache_hits = Omflp_obs.Metrics.counter "metric.dist_cache.hits"

let m_cache_rows = Omflp_obs.Metrics.counter "metric.dist_cache.rows_built"

let () =
  Omflp_prelude.Dist_cache.set_observers
    ~hit:(fun () -> Omflp_obs.Metrics.incr m_cache_hits)
    ~row_build:(fun () -> Omflp_obs.Metrics.incr m_cache_rows)

(* Explicit matrices keep the Dense representation; generated families
   (line, euclidean, uniform) are defined by a symmetric kernel and only
   materialize the rows that are actually queried. Both representations
   must produce bit-identical distances for the same constructor inputs:
   the kernels below are exactly the expressions the eager constructors
   used to evaluate per cell. *)
type repr =
  | Dense of float array array
  | Memo of Omflp_prelude.Dist_cache.t

type t = { size : int; repr : repr }

let size t = t.size

let check_bounds ~ctx t a b =
  if a < 0 || a >= t.size || b < 0 || b >= t.size then
    invalid_arg
      (Printf.sprintf "Finite_metric.%s: (%d, %d) outside [0, %d)" ctx a b
         t.size)

let dist t a b =
  check_bounds ~ctx:"dist" t a b;
  match t.repr with
  | Dense dmat -> dmat.(a).(b)
  | Memo cache -> Omflp_prelude.Dist_cache.get cache a b

let row t a =
  if a < 0 || a >= t.size then
    invalid_arg
      (Printf.sprintf "Finite_metric.row: %d outside [0, %d)" a t.size);
  match t.repr with
  | Dense dmat -> dmat.(a)
  | Memo cache -> Omflp_prelude.Dist_cache.row cache a

let check_triangle_matrix m =
  let n = Array.length m in
  let tol = Omflp_prelude.Numerics.eps in
  let violation = ref None in
  (try
     for i = 0 to n - 1 do
       for j = 0 to n - 1 do
         for k = 0 to n - 1 do
           if m.(i).(j) > m.(i).(k) +. m.(k).(j) +. tol then begin
             violation := Some (i, j, k);
             raise Exit
           end
         done
       done
     done
   with Exit -> ());
  match !violation with None -> Ok () | Some v -> Error v

let validate m =
  let n = Array.length m in
  Array.iteri
    (fun i row ->
      if Array.length row <> n then
        invalid_arg "Finite_metric.of_matrix: matrix is not square";
      Array.iteri
        (fun j v ->
          if v < 0.0 then
            invalid_arg "Finite_metric.of_matrix: negative distance";
          if Float.abs (v -. m.(j).(i)) > Omflp_prelude.Numerics.eps then
            invalid_arg "Finite_metric.of_matrix: asymmetric matrix";
          if i = j && v <> 0.0 then
            invalid_arg "Finite_metric.of_matrix: non-zero diagonal")
        row)
    m;
  match check_triangle_matrix m with
  | Ok () -> ()
  | Error (i, j, k) ->
      invalid_arg
        (Printf.sprintf
           "Finite_metric.of_matrix: triangle inequality violated at (%d, %d, %d)"
           i j k)

let of_matrix m =
  validate m;
  { size = Array.length m; repr = Dense (Array.map Array.copy m) }

let of_matrix_unchecked m = { size = Array.length m; repr = Dense m }

let memo ~n ~kernel =
  { size = n; repr = Memo (Omflp_prelude.Dist_cache.create ~n ~kernel) }

let line positions =
  let positions = Array.copy positions in
  memo ~n:(Array.length positions) ~kernel:(fun i j ->
      Float.abs (positions.(i) -. positions.(j)))

let euclidean points =
  let points = Array.copy points in
  memo ~n:(Array.length points) ~kernel:(fun i j ->
      let x1, y1 = points.(i) and x2, y2 = points.(j) in
      let dx = x1 -. x2 and dy = y1 -. y2 in
      sqrt ((dx *. dx) +. (dy *. dy)))

let single_point () = of_matrix_unchecked [| [| 0.0 |] |]

let uniform n ~d =
  if d < 0.0 then invalid_arg "Finite_metric.uniform: negative distance";
  memo ~n ~kernel:(fun i j -> if i = j then 0.0 else d)

let to_rows t = Array.init t.size (fun a -> row t a)

let check_triangle t = check_triangle_matrix (to_rows t)

let diameter t =
  let d = ref 0.0 in
  Array.iter (Array.iter (fun v -> if v > !d then d := v)) (to_rows t);
  !d

let nearest t ~from candidates =
  List.fold_left
    (fun best c ->
      let dc = dist t from c in
      match best with
      | Some (_, db) when db <= dc -> best
      | _ -> Some (c, dc))
    None candidates

let pp ppf t =
  Format.fprintf ppf "metric(%d points, diameter %.4g)" t.size (diameter t)
