(** Finite metric spaces over points [0 .. size - 1].

    Requests arrive at points of the space and facilities may be built at
    any point, matching the paper's model where both requests and facility
    locations live in a finite metric space [M]. *)

type t

(** [size t] is the number of points. *)
val size : t -> int

(** [dist t a b] is the distance between points [a] and [b]. Raises
    [Invalid_argument] on out-of-range indices. *)
val dist : t -> int -> int -> float

(** [row t a] is the full distance row of point [a] — [ (row t a).(b) =
    dist t a b ] for every [b]. For generated metrics the row is
    materialized lazily (once) through a {!Omflp_prelude.Dist_cache};
    either way the returned array is the metric's own storage and MUST
    be treated as read-only. Hot loops that scan all sites against a
    fixed point should fetch the row once instead of calling [dist] per
    site. *)
val row : t -> int -> float array

(** [of_matrix m] builds a metric from an explicit symmetric matrix with a
    zero diagonal. Raises [Invalid_argument] if the matrix is not square,
    has negative entries, is asymmetric, has a non-zero diagonal, or
    violates the triangle inequality (checked exhaustively). *)
val of_matrix : float array array -> t

(** [of_matrix_unchecked m] trusts the caller; used by generators that
    construct metrics correct by design (e.g. shortest-path closures). *)
val of_matrix_unchecked : float array array -> t

(** Generated families ([line], [euclidean], [uniform]) are represented
    lazily: construction is O(n) and distance rows materialize on first
    touch, with hit/build counts surfaced as the
    [metric.dist_cache.hits] / [metric.dist_cache.rows_built] metrics.

    [line positions] is the 1-D metric induced by coordinates on the real
    line: [dist i j = |positions.(i) - positions.(j)|]. *)
val line : float array -> t

(** [euclidean points] is the 2-D Euclidean metric over the given
    coordinates. *)
val euclidean : (float * float) array -> t

(** [single_point ()] is the one-point metric used by the Theorem 2
    adversary. *)
val single_point : unit -> t

(** [uniform n ~d] is the uniform metric: all distinct points at distance
    [d]. Raises [Invalid_argument] if [d < 0]. *)
val uniform : int -> d:float -> t

(** [check_triangle t] re-validates the triangle inequality; [Ok ()] or
    [Error (i, j, k)] naming a violating triple. *)
val check_triangle : t -> (unit, int * int * int) result

(** [diameter t] is the largest pairwise distance. *)
val diameter : t -> float

(** [nearest t ~from candidates] is the candidate point closest to [from]
    together with its distance; [None] on an empty candidate list. *)
val nearest : t -> from:int -> int list -> (int * float) option

(** [pp] prints size and diameter. *)
val pp : Format.formatter -> t -> unit
