(* Benchmark harness: regenerates every table/figure of the reproduction
   (experiments E1-E6, E8-E11, see DESIGN.md), times the algorithms with
   Bechamel (experiment E7, the Section 4 efficiency claim), reports
   lib/obs work counters for seeded runs, and optionally gates the
   ns/run rows against a committed baseline (BENCH_BASELINE.json).

   Both front ends — [bench/main.exe] and [omflp bench] — parse flags
   into a {!config} and call {!run}. *)

open Bechamel
open Omflp_prelude
open Omflp_instance

type config = {
  quick : bool;
  tables_only : bool;
  bench_only : bool;
  jobs : int;
  json_path : string option;
  baseline_path : string option;
  max_regression : float;
  family : Problem_env.Family.t option;
      (* restrict the bechamel rows to one problem family; [None] runs
         everything *)
}

let default_max_regression = 0.25

let default_config =
  {
    quick = false;
    tables_only = false;
    bench_only = false;
    jobs = 1;
    json_path = None;
    baseline_path = None;
    max_regression = default_max_regression;
    family = None;
  }

(* ---------- Part 1: experiment tables (one per paper artifact) ---------- *)

let run_tables ~quick () =
  print_endline "====================================================";
  print_endline " OMFLP reproduction: experiment tables (E1-E6, E8-E11)";
  print_endline " paper: Castenow et al., SPAA 2020 (arXiv:2005.08391)";
  print_endline "====================================================";
  List.iter Omflp_experiments.Exp_common.print_section
    (Omflp_experiments.Suite.run ~quick ~which:"all" ())

(* ---------- Part 2: Bechamel microbenchmarks ---------- *)

(* Workload shared by the per-algorithm benches: a clustered instance with
   a sqrt construction cost. *)
let bench_instance ~n_sites ~n_requests ~n_commodities =
  let rng = Splitmix.of_int 0xbe9c4 in
  Generators.clustered rng ~clusters:(max 2 (n_sites / 4)) ~per_cluster:4
    ~n_requests ~n_commodities ~side:100.0 ~spread:2.0
    ~cost:(fun ~n_commodities ~n_sites ->
      Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)

let full_run (module A : Omflp_core.Algo_intf.ALGO) inst () =
  let t = A.create ~seed:17 (Instance.env inst) in
  ignore (A.step_batch t inst.Instance.requests);
  Omflp_core.Run.total_cost (A.run_so_far t)

(* Serve-layer throughput: the drain loop's in-process shape — one
   session, no checkpoint IO, requests stepped in drain-sized batches
   with full decision-record assembly. What one worker domain of the
   socket server achieves, minus the sockets. *)
let serve_batch = 32

let serve_bench_n_requests = 60

let serve_bench_name =
  Printf.sprintf "serve/session PD-OMFLP-FAST (n=%d, batch=%d)"
    serve_bench_n_requests serve_batch

let serve_full_run inst () =
  let algo =
    (module Omflp_core.Pd_omflp_fast : Omflp_core.Algo_intf.ALGO)
  in
  let s = Omflp_serve.Session.create ~algo ~seed:17 (Instance.env inst) in
  let reqs = inst.Instance.requests in
  let n = Array.length reqs in
  let i = ref 0 in
  while !i < n do
    let k = min serve_batch (n - !i) in
    ignore (Omflp_serve.Session.handle_batch s (Array.sub reqs !i k));
    i := !i + k
  done;
  Omflp_serve.Session.count s

let serve_benches () =
  let inst =
    bench_instance ~n_sites:16 ~n_requests:serve_bench_n_requests
      ~n_commodities:8
  in
  [
    Test.make ~name:serve_bench_name (Staged.stage (serve_full_run inst));
  ]

(* One Test.make per table/figure artifact: the computational kernel that
   regenerates it. *)
let table_kernels () =
  let t2_instance =
    let rng = Splitmix.of_int 0xe1 in
    Generators.theorem2 rng ~n_commodities:256
  in
  let sweep_instance =
    let rng = Splitmix.of_int 0xe3 in
    Generators.single_point_adversary rng ~n_commodities:64
      ~cost:(fun ~n_commodities ~n_sites ->
        Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
      ~n_requested:8
  in
  let line_instance =
    let rng = Splitmix.of_int 0xe4 in
    Generators.line rng ~n_sites:10 ~n_requests:100 ~n_commodities:8
      ~length:100.0
      ~demand:(Demand.Zipf_bundle { zipf_s = 1.0; max_size = 4 })
      ~cost:(fun ~n_commodities ~n_sites ->
        Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
  in
  let clustered_instance =
    bench_instance ~n_sites:12 ~n_requests:50 ~n_commodities:8
  in
  let linear_instance =
    let rng = Splitmix.of_int 0xe6 in
    Generators.clustered rng ~clusters:3 ~per_cluster:4 ~n_requests:30
      ~n_commodities:8 ~side:100.0 ~spread:2.0
      ~cost:(fun ~n_commodities ~n_sites ->
        Omflp_commodity.Cost_function.linear ~n_commodities ~n_sites
          ~per_commodity:1.0)
  in
  [
    Test.make ~name:"E1/theorem2-adversary |S|=256 (PD)"
      (Staged.stage (full_run (module Omflp_core.Pd_omflp) t2_instance));
    Test.make ~name:"E2/figure2-curves"
      (Staged.stage (fun () ->
           let acc = ref 0.0 in
           for i = 0 to 200 do
             let x = 2.0 *. float_of_int i /. 200.0 in
             acc :=
               !acc
               +. Omflp_experiments.Exp_bounds_curve.upper_factor
                    ~n_commodities:10_000 ~x
               +. Omflp_experiments.Exp_bounds_curve.lower_factor
                    ~n_commodities:10_000 ~x
           done;
           !acc));
    Test.make ~name:"E3/cost-sweep g_1 |S|=64 (PD)"
      (Staged.stage (full_run (module Omflp_core.Pd_omflp) sweep_instance));
    Test.make ~name:"E4/line n=100 (PD)"
      (Staged.stage (full_run (module Omflp_core.Pd_omflp) line_instance));
    Test.make ~name:"E5/clustered n=50 (PD)"
      (Staged.stage (full_run (module Omflp_core.Pd_omflp) clustered_instance));
    Test.make ~name:"E6/linear-cost ablation (PD)"
      (Staged.stage (full_run (module Omflp_core.Pd_omflp) linear_instance));
    (let heavy_instance =
       let rng = Splitmix.of_int 0xe8 in
       Generators.clustered rng ~clusters:3 ~per_cluster:4 ~n_requests:30
         ~n_commodities:6 ~side:100.0 ~spread:2.0
         ~cost:(fun ~n_commodities ~n_sites ->
           let base =
             Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites
               ~x:1.0
           in
           let surcharges = Array.make n_commodities 0.0 in
           surcharges.(0) <- 10.0;
           Omflp_commodity.Cost_function.with_surcharge base ~surcharges)
     in
     Test.make ~name:"E8/heavy-commodity (HEAVY-AWARE)"
       (Staged.stage (full_run (module Omflp_core.Heavy_aware) heavy_instance)));
  ]

(* E7: per-request efficiency, PD vs RAND vs baselines — the paper's
   Section 4 claim that the randomized algorithm is much cheaper to run. *)
let algo_benches () =
  let inst = bench_instance ~n_sites:16 ~n_requests:60 ~n_commodities:8 in
  List.map
    (fun (name, algo) ->
      Test.make ~name:(Printf.sprintf "E7/full-run %s (n=60)" name)
        (Staged.stage (full_run algo inst)))
    (Omflp_core.Registry.all ()
    @ [
        ( Omflp_core.Heavy_aware.name,
          (module Omflp_core.Heavy_aware : Omflp_core.Algo_intf.ALGO) );
      ])

let scaling_benches ~quick () =
  (* PD and RAND as n grows: the deterministic event loop is quadratic in
     past requests, the randomized one near-linear. *)
  List.concat_map
    (fun n_requests ->
      let inst = bench_instance ~n_sites:12 ~n_requests ~n_commodities:8 in
      [
        Test.make ~name:(Printf.sprintf "E7/scaling PD n=%d" n_requests)
          (Staged.stage (full_run (module Omflp_core.Pd_omflp) inst));
        Test.make ~name:(Printf.sprintf "E7/scaling PD-FAST n=%d" n_requests)
          (Staged.stage (full_run (module Omflp_core.Pd_omflp_fast) inst));
        Test.make ~name:(Printf.sprintf "E7/scaling RAND n=%d" n_requests)
          (Staged.stage (full_run (module Omflp_core.Rand_omflp) inst));
      ])
    (if quick then [ 25; 50 ] else [ 25; 50; 100; 200 ])

let commodity_sweep_benches ~quick () =
  (* PD and RAND as |S| grows on the single-point adversary. *)
  List.concat_map
    (fun s ->
      let inst =
        let rng = Splitmix.of_int (0x5e + s) in
        Generators.theorem2 rng ~n_commodities:s
      in
      [
        Test.make ~name:(Printf.sprintf "E7/sweep-|S| PD |S|=%d" s)
          (Staged.stage (full_run (module Omflp_core.Pd_omflp) inst));
        Test.make ~name:(Printf.sprintf "E7/sweep-|S| RAND |S|=%d" s)
          (Staged.stage (full_run (module Omflp_core.Rand_omflp) inst));
      ])
    (if quick then [ 64; 256 ] else [ 64; 256; 1024 ])

let site_sweep_benches ~quick () =
  (* PD as the number of candidate sites grows (the event loop scans every
     site). *)
  List.map
    (fun n_sites ->
      let inst = bench_instance ~n_sites ~n_requests:40 ~n_commodities:6 in
      Test.make ~name:(Printf.sprintf "E7/sweep-|M| PD |M|=%d" n_sites)
        (Staged.stage (full_run (module Omflp_core.Pd_omflp) inst)))
    (if quick then [ 8; 16 ] else [ 8; 16; 32; 64 ])

(* Family rows: every registered algorithm of the non-OMFLP families on
   the clustered workload with family data bolted on — non-metric gets an
   asymmetric perturbation of the metric, leasing a three-type menu. *)
let family_instances () =
  let base = bench_instance ~n_sites:12 ~n_requests:40 ~n_commodities:6 in
  let nonmetric =
    let n = Instance.n_sites base in
    let rng = Splitmix.of_int 0xfa01 in
    let conn =
      Array.init n (fun m ->
          Array.init n (fun s ->
              let scale = Sampler.uniform_float rng ~lo:0.25 ~hi:4.0 in
              (scale
              *. Omflp_metric.Finite_metric.dist base.Instance.metric m s)
              +. Sampler.uniform_float rng ~lo:0.0 ~hi:0.5))
    in
    Instance.with_ext base (Problem_env.Nonmetric { conn })
  in
  let leasing =
    Instance.with_ext base
      (Problem_env.Leasing
         { durations = [| 1; 4; 16 |]; factors = [| 1.0; 2.5; 6.0 |] })
  in
  [ nonmetric; leasing ]

let family_benches ?only () =
  List.concat_map
    (fun inst ->
      let fam = Instance.family inst in
      if only <> None && only <> Some fam then []
      else
        List.map
          (fun (name, algo) ->
            Test.make
              ~name:
                (Printf.sprintf "E12/family-%s %s (n=40)"
                   (Problem_env.Family.to_string fam)
                   name)
              (Staged.stage (full_run algo inst)))
          (Omflp_core.Registry.of_family fam))
    (family_instances ())

let offline_benches () =
  let inst = bench_instance ~n_sites:12 ~n_requests:30 ~n_commodities:6 in
  [
    Test.make ~name:"offline/greedy n=30"
      (Staged.stage (fun () -> (Omflp_offline.Greedy_offline.solve inst).cost));
  ]

(* Runs the bechamel suite and returns [(name, ns_per_run option)] rows
   sorted by benchmark name, for both the printed table and BENCH.json. *)
let run_benchmarks ?family ~quick () =
  print_endline "";
  print_endline "====================================================";
  print_endline " E7: Bechamel microbenchmarks (ns per full run)";
  print_endline "====================================================";
  let cfg =
    Benchmark.cfg ~limit:300
      ~quota:(Time.second (if quick then 0.2 else 0.5))
      ~kde:None ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let tests =
    match family with
    | Some Problem_env.Family.Omflp ->
        table_kernels () @ algo_benches ()
        @ scaling_benches ~quick ()
        @ commodity_sweep_benches ~quick ()
        @ site_sweep_benches ~quick ()
        @ offline_benches () @ serve_benches ()
    | Some fam -> family_benches ~only:fam ()
    | None ->
        table_kernels () @ algo_benches ()
        @ scaling_benches ~quick ()
        @ commodity_sweep_benches ~quick ()
        @ site_sweep_benches ~quick ()
        @ offline_benches () @ serve_benches ()
        @ family_benches ()
  in
  let table = Texttable.create [ "benchmark"; "ns/run"; "ms/run" ] in
  (* Collect every OLS estimate first and sort by benchmark name:
     [Hashtbl.iter] order is unspecified, so printing rows straight out
     of it made the table row order vary between runs. *)
  let rows = ref [] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter (fun name result -> rows := (name, result) :: !rows) results)
    tests;
  let rows =
    List.map
      (fun (name, result) ->
        match Analyze.OLS.estimates result with
        | Some (est :: _) -> (name, Some est)
        | _ -> (name, None))
      (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows)
  in
  List.iter
    (fun (name, est) ->
      match est with
      | Some est ->
          Texttable.add_row table
            [
              name;
              Printf.sprintf "%.0f" est;
              Printf.sprintf "%.3f" (est /. 1e6);
            ]
      | None -> Texttable.add_row table [ name; "n/a"; "n/a" ])
    rows;
  Texttable.print table;
  (match List.assoc_opt serve_bench_name rows with
  | Some (Some ns) when ns > 0.0 ->
      Printf.printf
        "serve throughput: %.0f requests/sec (one domain, in-process \
         session stepping)\n"
        (float_of_int serve_bench_n_requests *. 1e9 /. ns)
  | _ -> ());
  rows

(* Work counters (lib/obs): deterministic seeded full runs, reported as
   counted work — event-loop iterations, events by kind, cache updates,
   coin flips, facility openings — so perf claims can be cross-checked
   against what the algorithms actually did, not just ns/run. *)
let run_work_counters ~quick () =
  print_endline "";
  print_endline "====================================================";
  print_endline " E7b: work counters (seeded full runs, lib/obs)";
  print_endline "====================================================";
  let n_requests = if quick then 25 else 100 in
  Printf.printf "workload: clustered, |M|=12, n=%d, |S|=8, seed fixed\n"
    n_requests;
  let inst = bench_instance ~n_sites:12 ~n_requests ~n_commodities:8 in
  let table = Texttable.create [ "algorithm"; "counter"; "value" ] in
  let rows = ref [] in
  let was_enabled = Omflp_obs.Metrics.enabled () in
  Omflp_obs.Metrics.set_enabled true;
  List.iter
    (fun (name, algo) ->
      Omflp_obs.Metrics.reset ();
      ignore (full_run algo inst ());
      let snap = Omflp_obs.Metrics.snapshot () in
      List.iter
        (fun (c : Omflp_obs.Metrics.counter_view) ->
          if c.c_value > 0 then begin
            Texttable.add_row table [ name; c.c_name; string_of_int c.c_value ];
            rows := (name, c.c_name, c.c_value) :: !rows
          end)
        snap.Omflp_obs.Metrics.counters)
    [
      ( Omflp_core.Pd_omflp.name,
        (module Omflp_core.Pd_omflp : Omflp_core.Algo_intf.ALGO) );
      (Omflp_core.Pd_omflp_fast.name, (module Omflp_core.Pd_omflp_fast));
      (Omflp_core.Rand_omflp.name, (module Omflp_core.Rand_omflp));
    ];
  Omflp_obs.Metrics.reset ();
  Omflp_obs.Metrics.set_enabled was_enabled;
  Texttable.print table;
  List.rev !rows

(* ---------- allocation profile: minor words per request ---------- *)

(* [Gc.minor_words] deltas over repeated seeded full runs, reported per
   request so the number is workload-size independent. The committed
   baseline gates growth separately from ns/run: perf work that trades
   speed for garbage (or a refactor that quietly reboxes the hot path)
   shows up here even on a fast machine. *)
let alloc_reps = 10

let run_allocations () =
  print_endline "";
  print_endline "====================================================";
  print_endline " E7c: allocation profile (minor words per request)";
  print_endline "====================================================";
  let inst = bench_instance ~n_sites:16 ~n_requests:60 ~n_commodities:8 in
  let n_requests = Array.length inst.Instance.requests in
  let workloads =
    [
      ( "PD-OMFLP full-run (n=60)",
        fun () -> ignore (full_run (module Omflp_core.Pd_omflp) inst ()) );
      ( "PD-OMFLP-FAST full-run (n=60)",
        fun () -> ignore (full_run (module Omflp_core.Pd_omflp_fast) inst ())
      );
      ( "RAND-OMFLP full-run (n=60)",
        fun () -> ignore (full_run (module Omflp_core.Rand_omflp) inst ()) );
      ( "GREEDY full-run (n=60)",
        fun () -> ignore (full_run (module Omflp_core.Greedy_baseline) inst ())
      );
      (serve_bench_name, fun () -> ignore (serve_full_run inst ()));
    ]
  in
  let table = Texttable.create [ "workload"; "minor words/request" ] in
  let rows =
    List.map
      (fun (name, f) ->
        (* One warm run first: lazy cost tables and metric rows
           materialize outside the measured window. *)
        f ();
        let w0 = Gc.minor_words () in
        for _ = 1 to alloc_reps do
          f ()
        done;
        let per_request =
          (Gc.minor_words () -. w0) /. float_of_int (alloc_reps * n_requests)
        in
        Texttable.add_row table [ name; Printf.sprintf "%.1f" per_request ];
        (name, per_request))
      workloads
  in
  Texttable.print table;
  rows

(* ---------- BENCH.json: the perf trajectory across PRs ---------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~quick ~jobs path ~bench_rows ~counter_rows ~alloc_rows =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"omflp.bench.v1\",\n";
  out "  \"quick\": %b,\n" quick;
  out "  \"jobs\": %d,\n" jobs;
  out "  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, est) ->
      out "    {\"name\": \"%s\", \"ns_per_run\": %s}%s\n" (json_escape name)
        (match est with
        | Some v when Float.is_finite v -> Printf.sprintf "%.6g" v
        | _ -> "null")
        (if i = List.length bench_rows - 1 then "" else ","))
    bench_rows;
  out "  ],\n";
  out "  \"allocations\": [\n";
  List.iteri
    (fun i (name, per_request) ->
      out "    {\"name\": \"%s\", \"minor_words_per_request\": %.3f}%s\n"
        (json_escape name) per_request
        (if i = List.length alloc_rows - 1 then "" else ","))
    alloc_rows;
  out "  ],\n";
  out "  \"work_counters\": [\n";
  List.iteri
    (fun i (algo, counter, v) ->
      out "    {\"algorithm\": \"%s\", \"counter\": \"%s\", \"value\": %d}%s\n"
        (json_escape algo) (json_escape counter) v
        (if i = List.length counter_rows - 1 then "" else ","))
    counter_rows;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* ---------- Regression gate vs a committed baseline ---------- *)

type regression = {
  reg_name : string;
  baseline_ns : float;
  current_ns : float;
  ratio : float;
}

type gate_report = {
  compared : int;
  skipped : int;  (** current rows with no (numeric) baseline row *)
  regressions : regression list;
}

(* Reads the [benchmarks] rows of an [omflp.bench.v1] file into
   [(name, ns_per_run)] pairs, dropping [null] estimates. *)
let read_baseline path =
  match Minijson.of_file path with
  | exception Sys_error msg -> Error ("cannot read baseline: " ^ msg)
  | exception Minijson.Parse_error msg ->
      Error (Printf.sprintf "cannot parse baseline %s: %s" path msg)
  | json -> (
      match Option.bind (Minijson.member "benchmarks" json) Minijson.to_list with
      | None ->
          Error
            (Printf.sprintf "baseline %s has no \"benchmarks\" array" path)
      | Some rows ->
          Ok
            (List.filter_map
               (fun row ->
                 match
                   ( Option.bind (Minijson.member "name" row) Minijson.to_string,
                     Option.bind (Minijson.member "ns_per_run" row)
                       Minijson.to_float )
                 with
                 | Some name, Some ns -> Some (name, ns)
                 | _ -> None)
               rows))

(* Compares by benchmark NAME over the intersection of the two row sets,
   so a quick run (fewer scaling points) still gates against a full
   baseline and newly-added benchmarks don't fail the gate. *)
let vacuous_error ~baseline_path ~n_rows ~skipped =
  Printf.sprintf
    "vacuous comparison: 0 of %d benchmark row(s) matched baseline %s (%d \
     skipped) — wrong, empty, or stale baseline file"
    n_rows baseline_path skipped

let compare_baseline ~baseline_path ~max_regression bench_rows =
  Result.bind (read_baseline baseline_path) (fun baseline ->
      let compared = ref 0 and skipped = ref 0 and regs = ref [] in
      List.iter
        (fun (name, est) ->
          match (est, List.assoc_opt name baseline) with
          | Some current_ns, Some baseline_ns when baseline_ns > 0.0 ->
              incr compared;
              let ratio = current_ns /. baseline_ns in
              if ratio > 1.0 +. max_regression then
                regs :=
                  { reg_name = name; baseline_ns; current_ns; ratio } :: !regs
          | _ -> incr skipped)
        bench_rows;
      (* A gate that compared nothing proves nothing: every row silently
         skipping (renamed benchmarks, an empty or foreign baseline) used
         to report OK. Make it a hard failure. *)
      if !compared = 0 then
        Error
          (vacuous_error ~baseline_path ~n_rows:(List.length bench_rows)
             ~skipped:!skipped)
      else
        Ok
          {
            compared = !compared;
            skipped = !skipped;
            regressions = List.rev !regs;
          })

let run_gate ~baseline_path ~max_regression bench_rows =
  print_endline "";
  print_endline "====================================================";
  print_endline " bench regression gate";
  print_endline "====================================================";
  match compare_baseline ~baseline_path ~max_regression bench_rows with
  | Error msg ->
      Printf.printf "GATE ERROR: %s\n" msg;
      2
  | Ok report ->
      Printf.printf
        "baseline %s: %d row(s) compared, %d skipped, threshold +%.0f%%\n"
        baseline_path report.compared report.skipped (100.0 *. max_regression);
      if report.regressions = [] then begin
        print_endline "gate: OK (no row regressed past the threshold)";
        0
      end
      else begin
        let table =
          Texttable.create [ "benchmark"; "baseline ns"; "current ns"; "ratio" ]
        in
        List.iter
          (fun r ->
            Texttable.add_row table
              [
                r.reg_name;
                Printf.sprintf "%.0f" r.baseline_ns;
                Printf.sprintf "%.0f" r.current_ns;
                Printf.sprintf "%.2fx" r.ratio;
              ])
          report.regressions;
        Texttable.print table;
        Printf.printf "gate: FAIL (%d row(s) regressed > +%.0f%%)\n"
          (List.length report.regressions)
          (100.0 *. max_regression);
        1
      end

(* ---------- Allocation gate vs the committed baseline ---------- *)

(* Allocation growth is gated tighter than wall-clock: minor words per
   request are deterministic for a fixed workload, so noise headroom is
   unnecessary and 10% growth already means a reboxed hot path. *)
let alloc_max_growth = 0.10

let missing_alloc_error ~baseline_path =
  Printf.sprintf
    "baseline %s has no \"allocations\" section — regenerate it with \
     --json; an allocation gate that compares nothing proves nothing"
    baseline_path

(* Reads the [allocations] rows into [(name, minor_words_per_request)]
   pairs. A baseline predating the section is a hard error, not a skip:
   the gate would otherwise pass forever against a stale file. *)
let read_alloc_baseline path =
  match Minijson.of_file path with
  | exception Sys_error msg -> Error ("cannot read baseline: " ^ msg)
  | exception Minijson.Parse_error msg ->
      Error (Printf.sprintf "cannot parse baseline %s: %s" path msg)
  | json -> (
      match
        Option.bind (Minijson.member "allocations" json) Minijson.to_list
      with
      | None -> Error (missing_alloc_error ~baseline_path:path)
      | Some rows ->
          Ok
            (List.filter_map
               (fun row ->
                 match
                   ( Option.bind (Minijson.member "name" row) Minijson.to_string,
                     Option.bind
                       (Minijson.member "minor_words_per_request" row)
                       Minijson.to_float )
                 with
                 | Some name, Some w -> Some (name, w)
                 | _ -> None)
               rows))

(* Same [gate_report] shape as the ns gate; for allocation rows the
   [baseline_ns]/[current_ns] fields hold minor words per request. *)
let compare_allocations ~baseline_path alloc_rows =
  Result.bind (read_alloc_baseline baseline_path) (fun baseline ->
      let compared = ref 0 and skipped = ref 0 and regs = ref [] in
      List.iter
        (fun (name, current) ->
          match List.assoc_opt name baseline with
          | Some base when base > 0.0 ->
              incr compared;
              let ratio = current /. base in
              if ratio > 1.0 +. alloc_max_growth then
                regs :=
                  {
                    reg_name = name;
                    baseline_ns = base;
                    current_ns = current;
                    ratio;
                  }
                  :: !regs
          | _ -> incr skipped)
        alloc_rows;
      if !compared = 0 then
        Error
          (Printf.sprintf
             "vacuous allocation comparison: 0 of %d row(s) matched baseline \
              %s (%d skipped) — wrong, empty, or stale baseline file"
             (List.length alloc_rows) baseline_path !skipped)
      else
        Ok
          {
            compared = !compared;
            skipped = !skipped;
            regressions = List.rev !regs;
          })

let run_alloc_gate ~baseline_path alloc_rows =
  print_endline "";
  print_endline "====================================================";
  print_endline " allocation gate (minor words per request)";
  print_endline "====================================================";
  match compare_allocations ~baseline_path alloc_rows with
  | Error msg ->
      Printf.printf "GATE ERROR: %s\n" msg;
      2
  | Ok report ->
      Printf.printf
        "baseline %s: %d row(s) compared, %d skipped, threshold +%.0f%%\n"
        baseline_path report.compared report.skipped
        (100.0 *. alloc_max_growth);
      if report.regressions = [] then begin
        print_endline "allocation gate: OK (no workload grew past the threshold)";
        0
      end
      else begin
        let table =
          Texttable.create
            [ "workload"; "baseline words/req"; "current words/req"; "ratio" ]
        in
        List.iter
          (fun r ->
            Texttable.add_row table
              [
                r.reg_name;
                Printf.sprintf "%.1f" r.baseline_ns;
                Printf.sprintf "%.1f" r.current_ns;
                Printf.sprintf "%.2fx" r.ratio;
              ])
          report.regressions;
        Texttable.print table;
        Printf.printf "allocation gate: FAIL (%d workload(s) grew > +%.0f%%)\n"
          (List.length report.regressions)
          (100.0 *. alloc_max_growth);
        1
      end

(* ---------- Entry point shared by bench/main.exe and [omflp bench] ---------- *)

let run config =
  Pool.set_default_jobs config.jobs;
  if not config.bench_only then run_tables ~quick:config.quick ();
  if config.tables_only then begin
    Option.iter
      (fun path ->
        write_json ~quick:config.quick ~jobs:config.jobs path ~bench_rows:[]
          ~counter_rows:[] ~alloc_rows:[])
      config.json_path;
    0
  end
  else begin
    let bench_rows =
      run_benchmarks ?family:config.family ~quick:config.quick ()
    in
    let counter_rows = run_work_counters ~quick:config.quick () in
    let alloc_rows = run_allocations () in
    Option.iter
      (fun path ->
        write_json ~quick:config.quick ~jobs:config.jobs path ~bench_rows
          ~counter_rows ~alloc_rows)
      config.json_path;
    match config.baseline_path with
    | None -> 0
    | Some baseline_path ->
        let ns_gate =
          run_gate ~baseline_path ~max_regression:config.max_regression
            bench_rows
        in
        let alloc_gate = run_alloc_gate ~baseline_path alloc_rows in
        max ns_gate alloc_gate
  end
