(** The benchmark harness behind [bench/main.exe] and [omflp bench]:
    experiment tables, Bechamel E7 microbenchmarks, lib/obs work
    counters, BENCH.json emission, and the regression gate against a
    committed baseline. *)

type config = {
  quick : bool;  (** smaller sizes, shorter bechamel quotas *)
  tables_only : bool;
  bench_only : bool;
  jobs : int;  (** pool size for the experiment tables *)
  json_path : string option;  (** write [omflp.bench.v1] here *)
  baseline_path : string option;
      (** gate ns/run rows against this [omflp.bench.v1] file *)
  max_regression : float;
      (** allowed slowdown per row as a fraction (0.25 = +25%) *)
  family : Omflp_instance.Problem_env.Family.t option;
      (** restrict the bechamel rows to one problem family: [omflp] runs
          the classic suite, another family runs only its E12 rows;
          [None] runs everything *)
}

val default_max_regression : float

(** Full-size run, no JSON, no gate. *)
val default_config : config

(** [run config] executes the configured parts and returns the process
    exit code: 0 on success, 1 when the gate found a regression, 2 when
    the baseline file is unreadable. *)
val run : config -> int

(** {2 Pieces, exposed for tests and custom drivers} *)

val run_tables : quick:bool -> unit -> unit

(** [(name, ns_per_run)] rows sorted by name; [None] when Bechamel
    produced no estimate. [family] restricts the test list as in
    {!config}. *)
val run_benchmarks :
  ?family:Omflp_instance.Problem_env.Family.t ->
  quick:bool ->
  unit ->
  (string * float option) list

val run_work_counters : quick:bool -> unit -> (string * string * int) list

(** [(workload, minor words per request)] rows: [Gc.minor_words] deltas
    over {!alloc_reps} seeded full runs after one warm-up run, divided by
    [reps * n_requests]. Deterministic for a fixed workload. *)
val run_allocations : unit -> (string * float) list

(** Measured runs per allocation row (after the warm-up run). *)
val alloc_reps : int

val write_json :
  quick:bool ->
  jobs:int ->
  string ->
  bench_rows:(string * float option) list ->
  counter_rows:(string * string * int) list ->
  alloc_rows:(string * float) list ->
  unit

type regression = {
  reg_name : string;
  baseline_ns : float;
  current_ns : float;
  ratio : float;
}

type gate_report = {
  compared : int;
  skipped : int;  (** current rows with no (numeric) baseline row *)
  regressions : regression list;
}

(** [read_baseline path] loads the [benchmarks] rows of an
    [omflp.bench.v1] file, dropping [null] estimates. *)
val read_baseline : string -> ((string * float) list, string) result

(** [vacuous_error ~baseline_path ~n_rows ~skipped] is the pinned message
    {!compare_baseline} returns when the intersection is empty. *)
val vacuous_error : baseline_path:string -> n_rows:int -> skipped:int -> string

(** [compare_baseline ~baseline_path ~max_regression rows] diffs the
    current rows against the baseline by benchmark name (intersection
    only: rows missing on either side are counted as [skipped], never
    failed). A row regresses when [current > baseline * (1 + max_regression)].
    An empty intersection ([compared = 0]) is a hard [Error]
    ({!vacuous_error}) — a gate that compared nothing must not pass. *)
val compare_baseline :
  baseline_path:string ->
  max_regression:float ->
  (string * float option) list ->
  (gate_report, string) result

(** {2 Allocation gate} *)

(** Fixed growth threshold for minor words per request (0.10 = +10%).
    Tighter than the ns gate because the measurement is deterministic. *)
val alloc_max_growth : float

(** [missing_alloc_error ~baseline_path] is the pinned message for a
    baseline file predating the [allocations] section. *)
val missing_alloc_error : baseline_path:string -> string

(** [read_alloc_baseline path] loads the [allocations] rows of an
    [omflp.bench.v1] file. A baseline {e without} the section is a hard
    [Error] ({!missing_alloc_error}), not an empty list — the gate must
    not silently pass against a stale baseline. *)
val read_alloc_baseline : string -> ((string * float) list, string) result

(** [compare_allocations ~baseline_path rows] diffs current
    minor-words-per-request rows against the baseline by workload name,
    flagging growth beyond {!alloc_max_growth}. Reuses {!gate_report};
    in its rows the [baseline_ns]/[current_ns] fields hold minor words
    per request. Empty intersection is a hard [Error]. *)
val compare_allocations :
  baseline_path:string ->
  (string * float) list ->
  (gate_report, string) result
