type t = {
  n : int;
  kernel : int -> int -> float;
  rows : float array option array;
  mutable hits : int;
  mutable row_builds : int;
}

type stats = { hits : int; row_builds : int; rows_resident : int }

(* Observer hooks let lib/metric wire cache events into lib/obs Metrics
   without making the prelude depend on the observability layer. They are
   process-global on purpose: caches are created per metric but counters
   are aggregated per process, matching the Metrics registry. *)
let on_hit : (unit -> unit) ref = ref ignore
let on_row_build : (unit -> unit) ref = ref ignore
let set_observers ~hit ~row_build =
  on_hit := hit;
  on_row_build := row_build

let create ~n ~kernel =
  if n < 0 then invalid_arg "Dist_cache.create: negative size";
  { n; kernel; rows = Array.make n None; hits = 0; row_builds = 0 }

let size t = t.n

let build_row t a =
  let k = t.kernel in
  let row = Array.init t.n (fun b -> k a b) in
  t.rows.(a) <- Some row;
  t.row_builds <- t.row_builds + 1;
  !on_row_build ();
  row

let row t a =
  if a < 0 || a >= t.n then
    invalid_arg
      (Printf.sprintf "Dist_cache.row: %d outside [0, %d)" a t.n);
  match t.rows.(a) with
  | Some r ->
      t.hits <- t.hits + 1;
      !on_hit ();
      r
  | None -> build_row t a

let get t a b =
  if a < 0 || a >= t.n || b < 0 || b >= t.n then
    invalid_arg
      (Printf.sprintf "Dist_cache.get: (%d, %d) outside [0, %d)" a b t.n);
  (* A symmetric kernel means either endpoint's row answers the query;
     prefer whichever is already resident so point queries never build a
     second row for a pair that is already covered. *)
  match t.rows.(a) with
  | Some r ->
      t.hits <- t.hits + 1;
      !on_hit ();
      r.(b)
  | None -> (
      match t.rows.(b) with
      | Some r ->
          t.hits <- t.hits + 1;
          !on_hit ();
          r.(a)
      | None -> (build_row t a).(b))

let stats t =
  let resident = ref 0 in
  Array.iter (function Some _ -> incr resident | None -> ()) t.rows;
  { hits = t.hits; row_builds = t.row_builds; rows_resident = !resident }
