(* Versioned fixed-layout binary envelope for algorithm state blobs.

   Wire format (codec v2):

     "omflp.snap2" '\n' tag '\n' payload md5

   where [payload] is written by explicit field serializers (the writer
   combinators below; every variable-length value is length-prefixed) and
   [md5] is the 16-byte MD5 of everything before it. Unlike the v1
   Marshal envelope this layout is stable across compiler versions,
   carries its own integrity check, and never interprets attacker-
   controlled bytes as heap structure: every read is bounds-checked and
   every length is validated against the bytes that remain, so a
   truncated or corrupted blob raises a named [Failure] instead of
   crashing.

   Integers travel as 64-bit little-endian; floats as the little-endian
   IEEE-754 bits ([Int64.bits_of_float]), which round-trips them
   bit-exactly — the property the byte-identical resume contract rests
   on. *)

let magic = "omflp.snap2"
let digest_len = 16

let fail fmt = Printf.ksprintf failwith fmt

(* ---------- writing ---------- *)

type writer = Buffer.t

let w_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))
let w_i64 b v = Buffer.add_int64_le b v
let w_int b n = w_i64 b (Int64.of_int n)
let w_bool b v = w_u8 b (if v then 1 else 0)
let w_float b v = w_i64 b (Int64.bits_of_float v)

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_opt w b = function
  | None -> w_u8 b 0
  | Some v ->
      w_u8 b 1;
      w b v

let w_list w b xs =
  w_int b (List.length xs);
  List.iter (w b) xs

let w_array w b xs =
  w_int b (Array.length xs);
  Array.iter (w b) xs

let w_float_array b a = w_array w_float b a
let w_int_array b a = w_array w_int b a

(* ---------- reading ---------- *)

type reader = { buf : string; limit : int; mutable pos : int }

let need r n =
  if n < 0 || r.limit - r.pos < n then
    fail "Snapshot_codec: truncated snapshot (need %d bytes at offset %d)" n
      r.pos

let r_u8 r =
  need r 1;
  let c = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_i64 r =
  need r 8;
  let v = String.get_int64_le r.buf r.pos in
  r.pos <- r.pos + 8;
  v

let r_int r =
  let v = r_i64 r in
  let n = Int64.to_int v in
  if Int64.of_int n <> v then
    fail "Snapshot_codec: integer out of range at offset %d" (r.pos - 8);
  n

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> fail "Snapshot_codec: bad bool byte %d at offset %d" n (r.pos - 1)

let r_float r = Int64.float_of_bits (r_i64 r)

let r_string r =
  let n = r_int r in
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

(* Validate an element count against the bytes that remain, assuming each
   element occupies at least [elt_bytes] — rejects hostile counts before
   any allocation happens. *)
let r_count r ~elt_bytes =
  let n = r_int r in
  if n < 0 || (elt_bytes > 0 && n > (r.limit - r.pos) / elt_bytes) then
    fail "Snapshot_codec: bad element count %d at offset %d" n (r.pos - 8);
  n

let r_opt rd r =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (rd r)
  | n -> fail "Snapshot_codec: bad option byte %d at offset %d" n (r.pos - 1)

let r_list rd r =
  let n = r_count r ~elt_bytes:1 in
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (rd r :: acc) in
  go n []

(* Explicit loop: [Array.init]'s evaluation order is unspecified, and the
   reader is stateful. *)
let r_array rd r =
  let n = r_count r ~elt_bytes:1 in
  if n = 0 then [||]
  else begin
    let a = Array.make n (rd r) in
    for i = 1 to n - 1 do
      a.(i) <- rd r
    done;
    a
  end

let r_float_array r =
  let n = r_count r ~elt_bytes:8 in
  let a = Array.make n 0.0 in
  for i = 0 to n - 1 do
    a.(i) <- r_float r
  done;
  a

let r_int_array r =
  let n = r_count r ~elt_bytes:8 in
  let a = Array.make n 0 in
  for i = 0 to n - 1 do
    a.(i) <- r_int r
  done;
  a

(* ---------- envelope ---------- *)

let encode ~tag emit =
  if String.contains tag '\n' then
    invalid_arg "Snapshot_codec.encode: tag contains a newline";
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Buffer.add_string b tag;
  Buffer.add_char b '\n';
  emit b;
  let body = Buffer.contents b in
  body ^ Digest.string body

let decode ~tag read blob =
  let header = magic ^ "\n" ^ tag ^ "\n" in
  let hlen = String.length header in
  let len = String.length blob in
  if len < hlen + digest_len || String.sub blob 0 hlen <> header then
    fail "Snapshot_codec.decode: blob is not a %S snapshot" tag;
  let body_len = len - digest_len in
  let stored = String.sub blob body_len digest_len in
  if not (Digest.equal stored (Digest.substring blob 0 body_len)) then
    fail "Snapshot_codec.decode: %S snapshot failed its integrity check" tag;
  let r = { buf = blob; limit = body_len; pos = hlen } in
  let v = read r in
  if r.pos <> r.limit then
    fail "Snapshot_codec.decode: %S snapshot has %d trailing payload bytes" tag
      (r.limit - r.pos);
  v
