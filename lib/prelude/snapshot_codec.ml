(* Tagged Marshal envelope for algorithm state blobs.

   The payload must be pure data (no closures, no custom blocks beyond
   the stdlib's), which every persisted record in this repository is;
   Marshal then round-trips floats and int64s bit-exactly — the property
   the byte-identical resume contract rests on.

   The tag names the producing module and its format version
   ("omflp.snap.<algo>.v<n>"), so feeding a blob to the wrong [decode]
   fails with a named error instead of unmarshalling garbage. Integrity
   against truncation/corruption is the *caller's* job (the serve
   checkpoint layer stores an MD5 next to the blob and verifies it
   before calling [decode]); [Marshal.from_string] on hostile bytes is
   unsafe, so decode only blobs whose provenance is checked. *)

let encode ~tag payload =
  if String.contains tag '\n' then
    invalid_arg "Snapshot_codec.encode: tag contains a newline";
  tag ^ "\n" ^ Marshal.to_string payload []

let fail fmt = Printf.ksprintf failwith fmt

let decode ~tag blob =
  let header_len = String.length tag + 1 in
  if
    String.length blob < header_len
    || String.sub blob 0 (String.length tag) <> tag
    || blob.[String.length tag] <> '\n'
  then
    fail "Snapshot_codec.decode: blob is not a %S snapshot" tag
  else if String.length blob - header_len < Marshal.header_size then
    fail "Snapshot_codec.decode: truncated %S snapshot" tag
  else
    let data_len =
      try Marshal.total_size (Bytes.unsafe_of_string blob) header_len
      with Failure _ ->
        fail "Snapshot_codec.decode: corrupt %S snapshot header" tag
    in
    if String.length blob - header_len < data_len then
      fail "Snapshot_codec.decode: truncated %S snapshot" tag
    else Marshal.from_string blob header_len
