(** Row-memoizing cache for symmetric pairwise kernels.

    Generated metrics (line, Euclidean, …) are defined by a closed-form
    kernel; materializing the full n x n matrix up front is O(n^2) work
    and memory even when an algorithm only ever touches the rows of the
    requested sites. [Dist_cache] builds one row at a time, on first
    touch, and serves every later lookup from the resident row.

    The kernel MUST be symmetric ([kernel a b = kernel b a]) and pure:
    [get] answers a point query from either endpoint's resident row, and
    a row is built exactly once, so an impure or asymmetric kernel would
    make lookups order-dependent. *)

type t

type stats = { hits : int; row_builds : int; rows_resident : int }

(** [create ~n ~kernel] makes an empty cache over points [0 .. n-1].
    No kernel calls happen until the first lookup. *)
val create : n:int -> kernel:(int -> int -> float) -> t

val size : t -> int

(** [get t a b] is [kernel a b], served from a resident row when one
    endpoint already has its row built. *)
val get : t -> int -> int -> float

(** [row t a] is the full distance row of [a], building it on first use.
    The returned array is the cache's own storage: callers must treat it
    as read-only. *)
val row : t -> int -> float array

val stats : t -> stats

(** [set_observers ~hit ~row_build] installs process-global callbacks
    fired on each cache hit / row materialization. Used by lib/metric to
    bump lib/obs counters without a prelude -> obs dependency. *)
val set_observers : hit:(unit -> unit) -> row_build:(unit -> unit) -> unit
