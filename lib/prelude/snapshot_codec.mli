(** Tagged, versioned binary envelopes for algorithm state snapshots.

    Every online algorithm serializes its persisted state through this
    codec: [encode ~tag state] prefixes a Marshal blob with a
    newline-terminated tag ("omflp.snap.<algo>.v<n>") and
    [decode ~tag blob] refuses — with a named [Failure], never an
    unmarshal crash on the envelope — blobs carrying a different tag or
    an incomplete payload.

    The payload travels through [Marshal], which round-trips floats and
    int64s bit-exactly; that exactness is what lets a restored algorithm
    produce byte-identical decisions. Decode only blobs whose integrity
    has been established (the serve checkpoint layer verifies an MD5
    before decoding): Marshal offers no protection against adversarial
    bytes {e inside} a well-formed envelope. *)

(** [encode ~tag payload] marshals [payload] under [tag]. Raises
    [Invalid_argument] if [tag] contains a newline. *)
val encode : tag:string -> 'a -> string

(** [decode ~tag blob] recovers the payload. Raises [Failure] with a
    message naming [tag] when the blob was encoded under a different tag
    or is truncated. *)
val decode : tag:string -> string -> 'a
