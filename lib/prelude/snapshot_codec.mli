(** Versioned fixed-layout binary envelopes for algorithm state snapshots
    (codec v2 — Marshal-free).

    Every online algorithm serializes its persisted state through this
    codec with explicit field serializers: [encode ~tag emit] frames the
    bytes [emit] writes as

    {v "omflp.snap2" '\n' tag '\n' payload md5 v}

    where [md5] is the 16-byte MD5 of everything before it, and
    [decode ~tag read blob] verifies the magic, the tag
    ("omflp.snap.<algo>.v<n>"), and the digest before handing [read] a
    bounds-checked reader over the payload. Unlike the old Marshal
    envelope, the layout is stable across compiler versions and hostile
    bytes can only produce a named [Failure] — never memory-unsafe
    unmarshalling. Floats travel as their IEEE-754 bits and round-trip
    bit-exactly; that exactness is what lets a restored algorithm produce
    byte-identical decisions. *)

(** Accumulates payload bytes during encoding; writer combinators append
    length-prefixed fields. *)
type writer = Buffer.t

(** Cursor over a verified payload. All [r_*] readers bounds-check and
    raise [Failure] (prefixed "Snapshot_codec") on truncation, hostile
    lengths, or malformed tag bytes. *)
type reader

val w_int : writer -> int -> unit
val w_i64 : writer -> int64 -> unit
val w_bool : writer -> bool -> unit

(** Floats are written as [Int64.bits_of_float] — bit-exact round-trip. *)
val w_float : writer -> float -> unit

val w_string : writer -> string -> unit
val w_opt : (writer -> 'a -> unit) -> writer -> 'a option -> unit
val w_list : (writer -> 'a -> unit) -> writer -> 'a list -> unit
val w_array : (writer -> 'a -> unit) -> writer -> 'a array -> unit
val w_float_array : writer -> float array -> unit
val w_int_array : writer -> int array -> unit

val r_int : reader -> int
val r_i64 : reader -> int64
val r_bool : reader -> bool
val r_float : reader -> float
val r_string : reader -> string
val r_opt : (reader -> 'a) -> reader -> 'a option
val r_list : (reader -> 'a) -> reader -> 'a list
val r_array : (reader -> 'a) -> reader -> 'a array
val r_float_array : reader -> float array
val r_int_array : reader -> int array

(** [encode ~tag emit] frames the payload written by [emit] under [tag]
    and appends the MD5 footer. Raises [Invalid_argument] if [tag]
    contains a newline. *)
val encode : tag:string -> (writer -> unit) -> string

(** [decode ~tag read blob] verifies magic, tag, and MD5 footer, applies
    [read] to the payload, and checks that [read] consumed it fully.
    Raises [Failure] with a message naming [tag] on a foreign or
    damaged blob. *)
val decode : tag:string -> (reader -> 'a) -> string -> 'a
