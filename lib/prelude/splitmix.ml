type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let of_int seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = mix seed }

let copy t = { state = t.state }

let state t = t.state

let float t =
  (* 53 high bits give a uniform dyadic rational in [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Keep 62 bits so the value stays non-negative in a native 63-bit int;
     rejection sampling avoids modulo bias. *)
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    let r = v mod bound in
    if v - r > max_int - bound then draw () else r
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t < p
