type t = { universe : int; words : int array }

let bits_per_word = 62

let word_count universe = (universe + bits_per_word - 1) / bits_per_word

let create universe =
  if universe < 0 then invalid_arg "Bitset.create: negative universe";
  { universe; words = Array.make (max 1 (word_count universe)) 0 }

let universe t = t.universe

let check_index t i =
  if i < 0 || i >= t.universe then
    invalid_arg
      (Printf.sprintf "Bitset: index %d outside universe %d" i t.universe)

let check_same a b =
  if a.universe <> b.universe then
    invalid_arg
      (Printf.sprintf "Bitset: universes differ (%d vs %d)" a.universe
         b.universe)

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let mem t i =
  check_index t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let copy t = { t with words = Array.copy t.words }

let add t i =
  check_index t i;
  let t' = copy t in
  t'.words.(i / bits_per_word) <-
    t'.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word));
  t'

let remove t i =
  check_index t i;
  let t' = copy t in
  t'.words.(i / bits_per_word) <-
    t'.words.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word));
  t'

let singleton universe i = add (create universe) i

(* Mask of valid bits in the last word, so [complement] and [full] never set
   phantom bits beyond the universe. *)
let last_word_mask universe =
  let rem = universe mod bits_per_word in
  if universe = 0 then 0
  else if rem = 0 then (1 lsl bits_per_word) - 1
  else (1 lsl rem) - 1

let full universe =
  let t = create universe in
  let n = Array.length t.words in
  if universe > 0 then begin
    for k = 0 to n - 2 do
      t.words.(k) <- (1 lsl bits_per_word) - 1
    done;
    t.words.(n - 1) <- last_word_mask universe
  end;
  t

let map2 op a b =
  check_same a b;
  let words = Array.mapi (fun k w -> op w b.words.(k)) a.words in
  { universe = a.universe; words }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let complement t =
  let f = full t.universe in
  diff f t

let subset a b =
  check_same a b;
  let ok = ref true in
  Array.iteri (fun k w -> if w land lnot b.words.(k) <> 0 then ok := false) a.words;
  !ok

let equal a b =
  check_same a b;
  Array.for_all2 ( = ) a.words b.words

let compare a b =
  check_same a b;
  Stdlib.compare a.words b.words

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  (* Word-skipping scan: empty words cost one compare, and each word's
     loop ends at its highest set bit. Phantom bits are never set, so the
     universe bound needs no separate check. *)
  let nw = Array.length t.words in
  for k = 0 to nw - 1 do
    let w = ref t.words.(k) in
    let i = ref (k * bits_per_word) in
    while !w <> 0 do
      if !w land 1 <> 0 then f !i;
      w := !w lsr 1;
      incr i
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list universe is = List.fold_left add (create universe) is

let choose t =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) t;
    raise Not_found
  with Found i -> i

let for_all p t = fold (fun i acc -> acc && p i) t true
let exists p t = fold (fun i acc -> acc || p i) t false

let hash t = Hashtbl.hash (t.universe, t.words)

let to_int t =
  if t.universe > bits_per_word then
    invalid_arg "Bitset.to_int: universe exceeds 62";
  t.words.(0)

let of_int universe bits =
  if universe > bits_per_word then
    invalid_arg "Bitset.of_int: universe exceeds 62";
  if bits land lnot (last_word_mask universe) <> 0 && universe > 0 then
    invalid_arg "Bitset.of_int: bits outside universe";
  if universe = 0 && bits <> 0 then invalid_arg "Bitset.of_int: bits outside universe";
  let t = create universe in
  t.words.(0) <- bits;
  t

let to_words t = Array.copy t.words

let of_words universe words =
  if universe < 0 then invalid_arg "Bitset.of_words: negative universe";
  let n = max 1 (word_count universe) in
  if Array.length words <> n then
    invalid_arg "Bitset.of_words: wrong word count";
  let ok = ref true in
  if universe = 0 then (if words.(0) <> 0 then ok := false)
  else begin
    for k = 0 to n - 2 do
      if words.(k) land lnot ((1 lsl bits_per_word) - 1) <> 0 then ok := false
    done;
    if words.(n - 1) land lnot (last_word_mask universe) <> 0 then ok := false
  end;
  if not !ok then invalid_arg "Bitset.of_words: bits outside universe";
  { universe; words = Array.copy words }

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (elements t)
