(** SplitMix64 pseudo-random number generator.

    Deterministic, splittable, fast. Used as the single source of randomness
    in the whole library so that every experiment is reproducible from a
    seed. The generator state is mutable. *)

type t

(** [create seed] builds a generator from a 64-bit seed. *)
val create : int64 -> t

(** [of_int seed] is [create] on the sign-extended integer. *)
val of_int : int -> t

(** [next_int64 t] draws 64 uniformly distributed bits. *)
val next_int64 : t -> int64

(** [split t] derives an independent generator; [t] advances. *)
val split : t -> t

(** [copy t] duplicates the current state. *)
val copy : t -> t

(** [state t] exposes the raw 64-bit state, so a generator can be
    persisted and revived with {!create} mid-stream: [create (state t)]
    continues exactly where [t] stopped. *)
val state : t -> int64

(** [float t] is uniform in [[0, 1)]. *)
val float : t -> float

(** [int t bound] is uniform in [[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [min 1 (max 0 p)]. *)
val bernoulli : t -> float -> bool
