(* A from-scratch fixed-size domain pool: one shared FIFO of thunks
   guarded by a mutex/condition pair, [jobs - 1] worker domains spawned
   once at [create], and a caller that helps drain the queue during
   [map] so all [jobs] domains execute tasks. Determinism comes for free
   from indexing: task [i] writes only slot [i] of the result array, so
   scheduling order can never reorder results. *)

type t = {
  pool_jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  pending : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t array;
}

(* True while the current domain is executing a pool task (set around
   the task body, not per domain, so a caller helping drain the queue is
   covered too). Nested [map]s see it and fall back to inline
   execution: workers never block on other workers, so the pool cannot
   deadlock. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.pending && not t.closing do
    Condition.wait t.work_available t.mutex
  done;
  match Queue.take_opt t.pending with
  | None ->
      (* Empty and closing: drain complete, exit. *)
      Mutex.unlock t.mutex
  | Some task ->
      Mutex.unlock t.mutex;
      task ();
      worker_loop t

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      pool_jobs = jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      pending = Queue.create ();
      closing = false;
      workers = [||];
    }
  in
  t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.pool_jobs

let run_task body =
  (* Tasks never raise: the body stores its own result/exception. *)
  Domain.DLS.set in_task true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_task false) body

let map t f arr =
  let n = Array.length arr in
  if t.pool_jobs = 1 || n <= 1 || Domain.DLS.get in_task then Array.map f arr
  else begin
    Mutex.lock t.mutex;
    if t.closing then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    let results = Array.make n None in
    let remaining = ref n in
    let all_done = Condition.create () in
    let task i () =
      run_task (fun () ->
          results.(i) <-
            Some
              (try Ok (f arr.(i))
               with e -> Error (e, Printexc.get_raw_backtrace ())));
      Mutex.lock t.mutex;
      decr remaining;
      if !remaining = 0 then Condition.broadcast all_done;
      Mutex.unlock t.mutex
    in
    for i = 0 to n - 1 do
      Queue.push (task i) t.pending
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    (* Help drain the queue, then wait for in-flight tasks to settle. *)
    let rec help () =
      Mutex.lock t.mutex;
      if !remaining = 0 then Mutex.unlock t.mutex
      else
        match Queue.take_opt t.pending with
        | Some task ->
            Mutex.unlock t.mutex;
            task ();
            help ()
        | None ->
            while !remaining > 0 do
              Condition.wait all_done t.mutex
            done;
            Mutex.unlock t.mutex
    in
    help ();
    (* Lowest-index failure wins: deterministic error propagation. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      results;
    Array.map
      (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
      results
  end

(* Fire-and-forget task submission, the long-lived-service face of the
   pool ([map] is the batch face): the serve layer enqueues one drain
   task per runnable connection and the spawned workers execute them.
   Tasks run under [run_task] so a nested [map] inside a task falls back
   inline and cannot deadlock the pool. *)
let submit t task =
  Mutex.lock t.mutex;
  if t.closing then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  if Array.length t.workers = 0 then begin
    (* Degenerate 1-job pool: no worker domains exist, so run inline —
       submission order is preserved and the caller provides the
       concurrency (e.g. one systhread per connection). *)
    Mutex.unlock t.mutex;
    run_task task
  end
  else begin
    Queue.push (fun () -> run_task task) t.pending;
    Condition.signal t.work_available;
    Mutex.unlock t.mutex
  end

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.closing <- true;
  t.workers <- [||];
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  Array.iter Domain.join workers

(* ---------- process-default pool ---------- *)

let default_pool : t option ref = ref None

let default_jobs_setting = ref 1

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  (match !default_pool with Some p -> shutdown p | None -> ());
  default_pool := None;
  default_jobs_setting := n

let default_jobs () = !default_jobs_setting

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create ~jobs:!default_jobs_setting in
      default_pool := Some p;
      p
