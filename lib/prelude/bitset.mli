(** Fixed-universe bitsets.

    A value of type {!t} represents a subset of [{0, ..., universe - 1}].
    All binary operations require both operands to share the same universe
    size and raise [Invalid_argument] otherwise. Values are immutable from
    the outside: every operation returns a fresh set. *)

type t

(** [create universe] is the empty subset of [{0, ..., universe - 1}].
    Raises [Invalid_argument] if [universe < 0]. *)
val create : int -> t

(** [universe t] is the size of the universe [t] draws its elements from. *)
val universe : t -> int

(** [is_empty t] is [true] iff [t] contains no element. *)
val is_empty : t -> bool

(** [mem t i] tests membership. Raises [Invalid_argument] if [i] is outside
    the universe. *)
val mem : t -> int -> bool

(** [add t i] is [t ∪ {i}]. *)
val add : t -> int -> t

(** [remove t i] is [t ∖ {i}]. *)
val remove : t -> int -> t

(** [singleton universe i] is [{i}] inside [{0, ..., universe - 1}]. *)
val singleton : int -> int -> t

(** [full universe] is the whole universe. *)
val full : int -> t

(** [union a b] is [a ∪ b]. *)
val union : t -> t -> t

(** [inter a b] is [a ∩ b]. *)
val inter : t -> t -> t

(** [diff a b] is [a ∖ b]. *)
val diff : t -> t -> t

(** [complement t] is the universe minus [t]. *)
val complement : t -> t

(** [subset a b] is [true] iff [a ⊆ b]. *)
val subset : t -> t -> bool

(** [equal a b] is set equality (universes must match). *)
val equal : t -> t -> bool

(** [compare] is a total order compatible with {!equal}. *)
val compare : t -> t -> int

(** [cardinal t] is [|t|]. *)
val cardinal : t -> int

(** [iter f t] applies [f] to each element in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f t init] folds over elements in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [elements t] lists the elements in increasing order. *)
val elements : t -> int list

(** [of_list universe is] builds a set from a list of elements. *)
val of_list : int -> int list -> t

(** [choose t] is the smallest element of [t]. Raises [Not_found] if empty. *)
val choose : t -> int

(** [for_all p t] tests whether all elements satisfy [p]. *)
val for_all : (int -> bool) -> t -> bool

(** [exists p t] tests whether some element satisfies [p]. *)
val exists : (int -> bool) -> t -> bool

(** [hash t] is a hash compatible with {!equal}. *)
val hash : t -> int

(** [to_int t] encodes [t] as a bit pattern in a single [int].
    Raises [Invalid_argument] if the universe exceeds 62. *)
val to_int : t -> int

(** [of_int universe bits] decodes a bit pattern produced by {!to_int}. *)
val of_int : int -> int -> t

(** [to_words t] is a copy of the backing 62-bit word array, lowest
    indices first — the serialization companion of {!of_words}. *)
val to_words : t -> int array

(** [of_words universe words] rebuilds a set from {!to_words} output.
    Raises [Invalid_argument] on a wrong word count or bits outside the
    universe. *)
val of_words : int -> int array -> t

(** [pp] prints as [{e1, e2, ...}]. *)
val pp : Format.formatter -> t -> unit
