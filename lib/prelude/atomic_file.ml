(* Crash-safe file replacement: write into a temporary file in the same
   directory, fsync-flush, then rename over the destination. POSIX rename
   within one directory is atomic, so readers see either the old complete
   file or the new complete file — never a torn prefix. *)

let write path writer =
  let dir = Filename.dirname path in
  let tmp =
    Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path ^ ".") ".tmp"
  in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !ok then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          writer oc;
          flush oc);
      Sys.rename tmp path;
      ok := true)

let write_string path s = write path (fun oc -> output_string oc s)
