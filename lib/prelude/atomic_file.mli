(** Atomic (write-temp-then-rename) file replacement.

    Persistence paths that other runs replay — the check corpus, serve
    checkpoints, baselines — must never leave a half-written file behind:
    a crash mid-write would poison the next reader with a torn prefix
    that parses as garbage. [write] stages the content in a temporary
    file in the {e same} directory (rename across filesystems is not
    atomic) and renames it over the destination only after the writer
    completed and the channel was flushed. *)

(** [write path writer] runs [writer oc] against a temporary channel and
    atomically replaces [path] with the result. On any exception the
    temporary file is removed and [path] is left untouched. *)
val write : string -> (out_channel -> unit) -> unit

(** [write_string path s] is [write] of one string. *)
val write_string : string -> string -> unit
