type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail "expected %c at offset %d, got %c" c st.pos c'
  | None -> fail "expected %c at offset %d, got end of input" c st.pos

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail "invalid literal at offset %d" st.pos

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail "unterminated string at offset %d" st.pos
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail "unterminated escape at offset %d" st.pos
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                (* Decode the 4-hex-digit escape; non-ASCII code points
                   come back as '?' — bench names are plain ASCII. *)
                if st.pos + 4 > String.length st.src then
                  fail "truncated \\u escape at offset %d" st.pos;
                let hex = String.sub st.src st.pos 4 in
                st.pos <- st.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape %S" hex
                in
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else Buffer.add_char buf '?'
            | c -> fail "bad escape \\%c at offset %d" c st.pos);
            loop ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec run () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        run ()
    | _ -> ()
  in
  run ();
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail "invalid number %S at offset %d" s start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input at offset %d" st.pos
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((key, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((key, v) :: acc)
          | _ -> fail "expected , or } at offset %d" st.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail "expected , or ] at offset %d" st.pos
        in
        List (items [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then
    fail "trailing garbage at offset %d" st.pos;
  v

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_string = function Str s -> Some s | _ -> None
