(** Fixed-size domain pool for embarrassingly parallel fan-out.

    A pool owns [jobs - 1] worker domains (spawned once at {!create},
    reused for every subsequent {!map}) plus the calling domain, which
    participates in draining the work queue — so a pool with [jobs = 4]
    executes tasks on exactly four domains. With [jobs = 1] no domain is
    ever spawned and {!map} degenerates to [Array.map].

    The intended discipline is the one the experiment harness enforces:
    tasks are pure functions of their input (every repetition derives its
    own RNG from a seed), so [map pool f arr] returns exactly what
    [Array.map f arr] returns, element for element, regardless of [jobs]
    — this is the byte-identical determinism contract tested in
    [test/test_pool.ml] and [test/test_experiments.ml]. Tasks must not
    print, install trace sinks, or mutate shared state other than through
    the domain-safe [Omflp_obs.Metrics] shards. *)

type t

(** [create ~jobs] spawns [jobs - 1] worker domains. Raises
    [Invalid_argument] when [jobs < 1]. *)
val create : jobs:int -> t

(** [jobs t] is the parallelism the pool was created with. *)
val jobs : t -> int

(** [map t f arr] applies [f] to every element of [arr], in parallel on
    the pool's domains, and returns the results in input order.

    Exceptions raised by [f] are caught per task; once every task has
    settled, the exception of the lowest-index failing element is
    re-raised (with its backtrace) in the calling domain — deterministic
    even when several tasks fail.

    Runs inline (plain [Array.map], no queueing) when [jobs t = 1], when
    [arr] has at most one element, or when called from inside a pool task
    — nested [map]s are safe but sequential. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [submit t task] enqueues [task] for execution on a worker domain and
    returns immediately — the fire-and-forget face of the pool that the
    serving layer schedules connection drains on. Tasks submitted from
    one thread run in submission order, but tasks from different threads
    interleave arbitrarily; callers needing per-object ordering must
    serialize per object (the serve layer keeps at most one drain task
    per connection in flight). [task] must handle its own exceptions — a
    task that raises kills the worker domain that ran it.

    On a [jobs = 1] pool no worker domains exist, so [task] runs inline
    in the calling thread before [submit] returns.

    Raises [Invalid_argument] after {!shutdown}. *)
val submit : t -> (unit -> unit) -> unit

(** [shutdown t] drains outstanding work and joins the worker domains.
    Idempotent; {!map} on a shut-down pool raises [Invalid_argument]. *)
val shutdown : t -> unit

(** {1 The process-default pool}

    CLI entry points configure parallelism once ([--jobs N] /
    [OMFLP_JOBS]); library code that wants the ambient pool calls
    {!default}. The default starts at [jobs = 1], i.e. fully serial. *)

(** [set_default_jobs n] shuts down the current default pool (if any) and
    makes the next {!default} create one with [n] domains. Raises
    [Invalid_argument] when [n < 1]. *)
val set_default_jobs : int -> unit

val default_jobs : unit -> int

(** [default ()] is the lazily-created process-default pool. *)
val default : unit -> t
