(** Minimal JSON reader for the bench regression gate.

    The container has no yojson, and the only JSON the tooling must
    *read* is its own BENCH.json / BENCH_BASELINE.json output (schema
    [omflp.bench.v1]) — writers stay hand-rolled in Benchkit. This
    parser accepts standard JSON with ASCII strings; [\u] escapes above
    0x7F decode to ['?']. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val of_string : string -> t

val of_file : string -> t

(** Accessors return [None] on a type or key mismatch. *)

val member : string -> t -> t option

val to_list : t -> t list option

val to_float : t -> float option

val to_string : t -> string option
