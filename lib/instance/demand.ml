open Omflp_prelude
open Omflp_commodity

type model =
  | Singletons of { zipf_s : float }
  | Bernoulli of { p : float }
  | Zipf_bundle of { zipf_s : float; max_size : int }
  | Profile of { profiles : Cset.t array; keep_p : float }

let sample rng ~n_commodities model =
  match model with
  | Singletons { zipf_s } ->
      Cset.singleton ~n_commodities (Sampler.zipf rng ~n:n_commodities ~s:zipf_s)
  | Bernoulli { p } ->
      if p <= 0.0 || p > 1.0 then
        invalid_arg "Demand.sample: Bernoulli p must lie in (0, 1]";
      let s = ref (Cset.empty ~n_commodities) in
      while Cset.is_empty !s do
        s := Sampler.random_subset rng ~universe:n_commodities ~p
      done;
      !s
  | Zipf_bundle { zipf_s; max_size } ->
      if max_size < 1 || max_size > n_commodities then
        invalid_arg "Demand.sample: bundle size out of range";
      let size = 1 + Splitmix.int rng max_size in
      let table = Sampler.zipf_table ~n:n_commodities ~s:zipf_s in
      let s = ref (Cset.empty ~n_commodities) in
      (* Draw until [size] distinct commodities are collected; bounded
         retries keep the loop total even for adversarial tables. *)
      let guard = ref 0 in
      while Cset.cardinal !s < size && !guard < 1000 * size do
        incr guard;
        s := Cset.add !s (Sampler.zipf_draw rng table)
      done;
      if Cset.is_empty !s then
        Cset.singleton ~n_commodities (Sampler.zipf_draw rng table)
      else !s
  | Profile { profiles; keep_p } ->
      if Array.length profiles = 0 then
        invalid_arg "Demand.sample: empty profile list";
      if keep_p <= 0.0 || keep_p > 1.0 then
        invalid_arg "Demand.sample: keep_p must lie in (0, 1]";
      Array.iter
        (fun p ->
          if Cset.n_commodities p <> n_commodities then
            invalid_arg "Demand.sample: profile from wrong universe";
          if Cset.is_empty p then
            invalid_arg "Demand.sample: empty profile")
        profiles;
      let profile = profiles.(Splitmix.int rng (Array.length profiles)) in
      let s = ref (Cset.empty ~n_commodities) in
      while Cset.is_empty !s do
        s :=
          Cset.fold
            (fun e acc ->
              if Splitmix.bernoulli rng keep_p then Cset.add acc e else acc)
            profile
            (Cset.empty ~n_commodities)
      done;
      !s

(* Exact textual form (floats as %.17g) so arrival specs can ride the
   Serial instance format; [of_string] inverts it bit-for-bit. *)
let to_string = function
  | Singletons { zipf_s } -> Printf.sprintf "singletons %.17g" zipf_s
  | Bernoulli { p } -> Printf.sprintf "bernoulli %.17g" p
  | Zipf_bundle { zipf_s; max_size } ->
      Printf.sprintf "zipf-bundle %.17g %d" zipf_s max_size
  | Profile { profiles; keep_p } ->
      Printf.sprintf "profile %.17g %s" keep_p
        (String.concat ";"
           (Array.to_list profiles
           |> List.map (fun p ->
                  String.concat "," (List.map string_of_int (Cset.elements p)))))

let of_string ~n_commodities s =
  let fail () = failwith (Printf.sprintf "Demand.of_string: malformed %S" s) in
  let float_of x =
    match float_of_string_opt x with Some v -> v | None -> fail ()
  in
  let int_of x =
    match int_of_string_opt x with Some v -> v | None -> fail ()
  in
  match String.split_on_char ' ' s |> List.filter (( <> ) "") with
  | [ "singletons"; zs ] -> Singletons { zipf_s = float_of zs }
  | [ "bernoulli"; p ] -> Bernoulli { p = float_of p }
  | [ "zipf-bundle"; zs; m ] ->
      Zipf_bundle { zipf_s = float_of zs; max_size = int_of m }
  | [ "profile"; kp; ps ] ->
      let profiles =
        String.split_on_char ';' ps
        |> List.map (fun p ->
               Cset.of_list ~n_commodities
                 (String.split_on_char ',' p |> List.map int_of))
        |> Array.of_list
      in
      Profile { profiles; keep_p = float_of kp }
  | _ -> fail ()

let describe = function
  | Singletons { zipf_s } -> Printf.sprintf "singletons(zipf %.2g)" zipf_s
  | Bernoulli { p } -> Printf.sprintf "bernoulli(p=%.2g)" p
  | Zipf_bundle { zipf_s; max_size } ->
      Printf.sprintf "zipf-bundle(s=%.2g, <=%d)" zipf_s max_size
  | Profile { profiles; keep_p } ->
      Printf.sprintf "profiles(%d, keep=%.2g)" (Array.length profiles) keep_p
