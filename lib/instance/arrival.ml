open Omflp_prelude

type t =
  | Adversarial
  | Random_order of { seed : int }
  | Iid of { seed : int; n_requests : int; demand : Demand.model }

let model_tag = function
  | Adversarial -> "adv"
  | Random_order _ -> "ro"
  | Iid _ -> "iid"

let describe = function
  | Adversarial -> "adversarial"
  | Random_order { seed } -> Printf.sprintf "ro(seed=%d)" seed
  | Iid { seed; n_requests; demand } ->
      Printf.sprintf "iid(seed=%d, n=%d, %s)" seed n_requests
        (Demand.describe demand)

(* All branches return a fresh array: the caller's requests are never
   mutated and never aliased by the result (regression for the old
   in-place Scenario.reorder shuffle). *)
let apply t ~n_sites ~n_commodities requests =
  match t with
  | Adversarial -> Array.copy requests
  | Random_order { seed } ->
      let copy = Array.copy requests in
      Sampler.shuffle (Splitmix.of_int seed) copy;
      copy
  | Iid { seed; n_requests; demand } ->
      if n_sites <= 0 then invalid_arg "Arrival.apply: empty metric";
      if n_requests < 0 then invalid_arg "Arrival.apply: negative n_requests";
      let rng = Splitmix.of_int seed in
      Array.init n_requests (fun _ ->
          let site = Splitmix.int rng n_sites in
          let demand = Demand.sample rng ~n_commodities demand in
          Request.make ~site ~demand)

let to_string = function
  | Adversarial -> "adversarial"
  | Random_order { seed } -> Printf.sprintf "random-order %d" seed
  | Iid { seed; n_requests; demand } ->
      Printf.sprintf "iid %d %d %s" seed n_requests (Demand.to_string demand)

let of_string ~n_commodities s =
  let fail () = failwith (Printf.sprintf "Arrival.of_string: malformed %S" s) in
  let int_of x =
    match int_of_string_opt x with Some v -> v | None -> fail ()
  in
  match String.split_on_char ' ' s |> List.filter (( <> ) "") with
  | [ "adversarial" ] -> Adversarial
  | [ "random-order"; seed ] -> Random_order { seed = int_of seed }
  | "iid" :: seed :: n :: rest when rest <> [] ->
      Iid
        {
          seed = int_of seed;
          n_requests = int_of n;
          demand = Demand.of_string ~n_commodities (String.concat " " rest);
        }
  | _ -> fail ()
