open Omflp_commodity

type t = {
  name : string;
  metric : Omflp_metric.Finite_metric.t;
  cost : Cost_function.t;
  requests : Request.t array;
  arrival : Arrival.t;
  ext : Problem_env.ext;
}

let make ~name ~metric ~cost ~requests =
  let n_sites = Omflp_metric.Finite_metric.size metric in
  if Cost_function.n_sites cost <> n_sites then
    invalid_arg
      (Printf.sprintf
         "Instance.make: cost function covers %d sites but metric has %d"
         (Cost_function.n_sites cost) n_sites);
  Array.iter
    (fun (r : Request.t) ->
      if r.site >= n_sites then
        invalid_arg
          (Printf.sprintf "Instance.make: request site %d outside metric"
             r.site);
      if Cset.n_commodities r.demand <> Cost_function.n_commodities cost then
        invalid_arg "Instance.make: request demand from wrong universe")
    requests;
  {
    name;
    metric;
    cost;
    requests;
    arrival = Arrival.Adversarial;
    ext = Problem_env.Omflp_ext;
  }

(* Attach (and validate) family-specific data; [make] always builds plain
   OMFLP instances. *)
let with_ext t ext =
  ignore (Problem_env.of_parts ~ext t.metric t.cost);
  { t with ext }

let env t = Problem_env.of_parts ~ext:t.ext t.metric t.cost
let family t = Problem_env.family (env t)

let n_requests t = Array.length t.requests
let n_sites t = Omflp_metric.Finite_metric.size t.metric
let n_commodities t = Cost_function.n_commodities t.cost

let distinct_commodities t =
  Array.fold_left
    (fun acc (r : Request.t) -> Cset.union acc r.demand)
    (Cset.empty ~n_commodities:(n_commodities t))
    t.requests

let total_demand_pairs t =
  Array.fold_left
    (fun acc (r : Request.t) -> acc + Cset.cardinal r.demand)
    0 t.requests

let split_per_commodity t =
  let k = n_commodities t in
  let requests =
    Array.of_list
      (List.concat_map
         (fun (r : Request.t) ->
           List.map
             (fun e ->
               Request.make ~site:r.site ~demand:(Cset.singleton ~n_commodities:k e))
             (Cset.elements r.demand))
         (Array.to_list t.requests))
  in
  (* The derived sequence is no longer what the arrival model drew, so
     provenance resets to Adversarial ("as constructed"). *)
  { t with name = t.name ^ " (per-commodity)"; requests; arrival = Arrival.Adversarial }

let truncate t k =
  if k < 0 || k > Array.length t.requests then
    invalid_arg "Instance.truncate: bad length";
  { t with requests = Array.sub t.requests 0 k; arrival = Arrival.Adversarial }

let pp ppf t =
  Format.fprintf ppf "%s: %d requests, %d sites, %d commodities, cost=%s"
    t.name (n_requests t) (n_sites t) (n_commodities t)
    (Cost_function.name t.cost)
