(** Problem-family environment: everything an online algorithm needs to
    know about the world it serves, in one record.

    An environment is always a finite metric plus a configuration cost
    function; the [ext] payload selects the problem family and carries the
    family-specific data:

    - {b OMFLP} (the default): connection costs are metric distances.
    - {b Non-metric facility location}: connection costs come from an
      arbitrary non-negative matrix [conn] (facility row, request-site
      column) with no triangle-inequality or symmetry promise; the metric
      is still carried for tooling (scenario labels, bench kernels).
    - {b Multi-facility leasing}: a facility is opened as a lease of one
      of K types; type [k] lives for [durations.(k)] steps and costs
      [factors.(k)] times the configuration cost.

    All family-specific branching in the engine lives here (and in
    [Registry]): algorithms declare a family and extract their view via
    the [require_*] functions, which refuse mismatched environments with
    a named [Failure]. *)

module Family : sig
  type t = Omflp | Nonmetric_fl | Multi_facility_leasing

  val to_string : t -> string
  (** ["omflp"], ["nonmetric-fl"], ["leasing"]. *)

  val of_string : string -> t option
  val all : t list
  val pp : Format.formatter -> t -> unit
end

type ext =
  | Omflp_ext
  | Nonmetric of { conn : float array array }
  | Leasing of { durations : int array; factors : float array }

type t = {
  metric : Omflp_metric.Finite_metric.t;
  cost : Omflp_commodity.Cost_function.t;
  ext : ext;
}

val omflp : Omflp_metric.Finite_metric.t -> Omflp_commodity.Cost_function.t -> t
(** Plain OMFLP environment. Raises [Invalid_argument] on dimension
    mismatch between metric and cost function. *)

val nonmetric :
  conn:float array array ->
  Omflp_metric.Finite_metric.t ->
  Omflp_commodity.Cost_function.t ->
  t
(** Non-metric environment; [conn.(m).(s)] is the cost of serving a
    request at site [s] from a facility at site [m]. Validates shape and
    non-negativity. *)

val leasing :
  durations:int array ->
  factors:float array ->
  Omflp_metric.Finite_metric.t ->
  Omflp_commodity.Cost_function.t ->
  t
(** Leasing environment. Durations must be positive; factors positive,
    finite and pairwise distinct (so a facility's lease type can be
    recovered from its construction cost). *)

val of_parts :
  ext:ext -> Omflp_metric.Finite_metric.t -> Omflp_commodity.Cost_function.t -> t
(** Rebuild (and re-validate) an environment from its parts. *)

val family : t -> Family.t
val metric : t -> Omflp_metric.Finite_metric.t
val cost : t -> Omflp_commodity.Cost_function.t
val ext : t -> ext

val mismatch_message : algo:string -> declared:Family.t -> got:Family.t -> string
(** The canonical family-mismatch error text, shared by every refusal
    site so tests can pin it once. *)

val require : algo:string -> family:Family.t -> t -> unit
(** Raises [Failure (mismatch_message ...)] unless [family t] matches. *)

val require_omflp :
  algo:string ->
  t ->
  Omflp_metric.Finite_metric.t * Omflp_commodity.Cost_function.t

val require_nonmetric :
  algo:string ->
  t ->
  Omflp_metric.Finite_metric.t * Omflp_commodity.Cost_function.t
  * float array array

val require_leasing :
  algo:string ->
  t ->
  Omflp_metric.Finite_metric.t * Omflp_commodity.Cost_function.t
  * int array * float array

val connection_dist : t -> facility_site:int -> request_site:int -> float
(** Family-dispatched connection cost: metric distance for OMFLP and
    leasing, the raw matrix entry for the non-metric family. *)

val classify_facility_cost :
  t ->
  site:int ->
  offered:Omflp_commodity.Cset.t ->
  cost:float ->
  (int option, string) result
(** Validation hook: does a recorded construction cost match an allowed
    opening in this environment? [Ok None] for the plain configuration
    cost; [Ok (Some d)] for a lease of duration [d] (ties on a zero base
    cost resolve to the longest duration). *)

val lease_scale_min : t -> float
(** Scale applied to configuration costs in the family-generic
    serve-alone lower bound: 1 outside leasing, the minimum lease factor
    inside (any lease covers at least its opening instant). *)

val pp : Format.formatter -> t -> unit
