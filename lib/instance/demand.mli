(** Demand-set sampling models for workload generators. *)

open Omflp_prelude

type model =
  | Singletons of { zipf_s : float }
      (** one commodity per request, popularity Zipf(s) *)
  | Bernoulli of { p : float }
      (** each commodity independently with probability [p]; resampled
          until non-empty *)
  | Zipf_bundle of { zipf_s : float; max_size : int }
      (** bundle size uniform in [1, max_size], members Zipf-popular *)
  | Profile of { profiles : Omflp_commodity.Cset.t array; keep_p : float }
      (** pick a uniform profile, keep each member with probability
          [keep_p]; resampled until non-empty *)

(** [sample rng ~n_commodities model] draws one non-empty demand set.
    Raises [Invalid_argument] on inconsistent parameters (empty profile
    list, profile from another universe, [max_size < 1], ...). *)
val sample :
  Splitmix.t -> n_commodities:int -> model -> Omflp_commodity.Cset.t

(** [describe model] is a short label for reports. *)
val describe : model -> string

(** [to_string model] is an exact single-line textual form (floats as
    [%.17g]) suitable for the {!Serial} instance format; inverted
    bit-for-bit by {!of_string}. *)
val to_string : model -> string

(** [of_string ~n_commodities s] parses {!to_string} output. Profile
    commodity sets are rebuilt in the given universe. Raises [Failure]
    on malformed input. *)
val of_string : n_commodities:int -> string -> model
