(** Plain-text serialization of instances.

    A simple line-oriented format so generated workloads can be saved,
    shared, and replayed bit-for-bit:

    {v
    omflp-instance 1
    name <string>
    arrival <spec>          (optional; omitted for adversarial)
    commodities <k>
    sites <n>
    metric
    <n lines of n space-separated distances>
    costs
    <n lines of k values: cost of a size-j configuration at this site>
    requests <m>
    <m lines: site e1 e2 ...>
    v}

    General cost functions are oracles; the format stores, per site, the
    cost of each configuration {e size} (evaluated on the prefix set
    [{0..j-1}]) and reloads [f^σ_m] as [table.(m).(|σ|)]. This is an exact
    round-trip for every size-based family shipped in
    {!Omflp_commodity.Cost_function} (including site-scaled ones) and a
    size-projection otherwise.

    The [arrival] line is {!Arrival.to_string} of the instance's arrival
    model; it is written only for non-adversarial models, so files
    produced by older writers (and for adversarial instances) are
    byte-identical to before. Requests are always stored already
    materialized in arrival order — the arrival line is provenance, so
    corpus replays reproduce the exact order without re-deriving it. *)

(** [save oc instance] writes the format above. *)
val save : out_channel -> Instance.t -> unit

(** [save_file path instance] writes atomically (temp file + rename in
    the destination directory), so replay consumers — the check corpus,
    serve environments — never observe a torn file. *)
val save_file : string -> Instance.t -> unit

(** [load ic] parses an instance. Raises [Failure] with a descriptive
    message on malformed input. *)
val load : in_channel -> Instance.t

(** [load_file path]. *)
val load_file : string -> Instance.t

(** [round_trip instance] is [load ∘ save] through a temporary buffer —
    the canonicalized (size-projected) form. *)
val round_trip : Instance.t -> Instance.t
