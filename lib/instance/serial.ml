open Omflp_commodity

let magic = "omflp-instance 1"

let save oc (inst : Instance.t) =
  let n = Instance.n_sites inst in
  let k = Instance.n_commodities inst in
  Printf.fprintf oc "%s\n" magic;
  Printf.fprintf oc "name %s\n" inst.name;
  (* Optional line, written only for non-default models so files from
     older writers and for adversarial instances stay byte-identical. *)
  (match inst.arrival with
  | Arrival.Adversarial -> ()
  | a -> Printf.fprintf oc "arrival %s\n" (Arrival.to_string a));
  Printf.fprintf oc "commodities %d\n" k;
  Printf.fprintf oc "sites %d\n" n;
  Printf.fprintf oc "metric\n";
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if v > 0 then output_char oc ' ';
      Printf.fprintf oc "%.17g" (Omflp_metric.Finite_metric.dist inst.metric u v)
    done;
    output_char oc '\n'
  done;
  Printf.fprintf oc "costs\n";
  for m = 0 to n - 1 do
    for size = 1 to k do
      if size > 1 then output_char oc ' ';
      let sigma = Cset.of_list ~n_commodities:k (List.init size Fun.id) in
      Printf.fprintf oc "%.17g" (Cost_function.eval inst.cost m sigma)
    done;
    output_char oc '\n'
  done;
  (* Optional family section, written only for non-OMFLP families so
     existing files stay byte-identical. *)
  (match inst.ext with
  | Problem_env.Omflp_ext -> ()
  | Problem_env.Nonmetric { conn } ->
      Printf.fprintf oc "family %s\n"
        (Problem_env.Family.to_string Problem_env.Family.Nonmetric_fl);
      Printf.fprintf oc "conn\n";
      Array.iter
        (fun row ->
          Array.iteri
            (fun v c ->
              if v > 0 then output_char oc ' ';
              Printf.fprintf oc "%.17g" c)
            row;
          output_char oc '\n')
        conn
  | Problem_env.Leasing { durations; factors } ->
      Printf.fprintf oc "family %s\n"
        (Problem_env.Family.to_string Problem_env.Family.Multi_facility_leasing);
      Printf.fprintf oc "leases %d\n" (Array.length durations);
      Printf.fprintf oc "durations";
      Array.iter (fun d -> Printf.fprintf oc " %d" d) durations;
      output_char oc '\n';
      Printf.fprintf oc "factors";
      Array.iter (fun f -> Printf.fprintf oc " %.17g" f) factors;
      output_char oc '\n');
  Printf.fprintf oc "requests %d\n" (Instance.n_requests inst);
  Array.iter
    (fun (r : Request.t) ->
      Printf.fprintf oc "%d" r.site;
      Cset.iter (fun e -> Printf.fprintf oc " %d" e) r.demand;
      output_char oc '\n')
    inst.requests

let save_file path inst =
  Omflp_prelude.Atomic_file.write path (fun oc -> save oc inst)

let fail fmt = Printf.ksprintf failwith fmt

let load ic =
  let line_no = ref 0 in
  let read_line () =
    incr line_no;
    try input_line ic
    with End_of_file -> fail "Serial.load: unexpected end of file at line %d" !line_no
  in
  let expect_prefix prefix =
    let line = read_line () in
    let p = String.length prefix in
    if String.length line < p || String.sub line 0 p <> prefix then
      fail "Serial.load: line %d: expected %S" !line_no prefix;
    String.trim (String.sub line p (String.length line - p))
  in
  let int_of field s =
    match int_of_string_opt (String.trim s) with
    | Some v -> v
    | None -> fail "Serial.load: line %d: bad integer for %s" !line_no field
  in
  let floats_of_line expected =
    let line = read_line () in
    let parts =
      List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
    in
    if List.length parts <> expected then
      fail "Serial.load: line %d: expected %d values, found %d" !line_no
        expected (List.length parts);
    List.map
      (fun s ->
        match float_of_string_opt s with
        | Some v -> v
        | None -> fail "Serial.load: line %d: bad float %S" !line_no s)
      parts
  in
  if read_line () <> magic then fail "Serial.load: missing %S header" magic;
  let name = expect_prefix "name " in
  (* The arrival line is optional and precedes "commodities"; its demand
     spec needs [k], so parsing is deferred until dimensions are read. *)
  let arrival_raw, commodities_line =
    let line = read_line () in
    let p = "arrival " in
    if
      String.length line >= String.length p
      && String.sub line 0 (String.length p) = p
    then
      ( Some
          (String.trim
             (String.sub line (String.length p)
                (String.length line - String.length p))),
        read_line () )
    else (None, line)
  in
  let field_of prefix line =
    let p = String.length prefix in
    if String.length line < p || String.sub line 0 p <> prefix then
      fail "Serial.load: line %d: expected %S" !line_no prefix;
    String.trim (String.sub line p (String.length line - p))
  in
  let k = int_of "commodities" (field_of "commodities " commodities_line) in
  let n = int_of "sites" (expect_prefix "sites ") in
  if k <= 0 || n <= 0 then fail "Serial.load: non-positive dimensions";
  let arrival =
    match arrival_raw with
    | None -> Arrival.Adversarial
    | Some raw -> (
        try Arrival.of_string ~n_commodities:k raw
        with Failure msg -> fail "Serial.load: %s" msg)
  in
  ignore (expect_prefix "metric");
  let dmat =
    Array.init n (fun _ -> Array.of_list (floats_of_line n))
  in
  let metric = Omflp_metric.Finite_metric.of_matrix dmat in
  ignore (expect_prefix "costs");
  let cost_table =
    Array.init n (fun _ -> Array.of_list (floats_of_line k))
  in
  Array.iter
    (Array.iter (fun v ->
         if v < 0.0 then fail "Serial.load: negative cost"))
    cost_table;
  let cost =
    Cost_function.make ~name:"serialized(size-based)" ~n_commodities:k
      ~n_sites:n (fun m sigma -> cost_table.(m).(Cset.cardinal sigma - 1))
  in
  (* Optional family section precedes "requests"; same deferred-line
     trick as the arrival header. *)
  let ext, requests_line =
    let line = read_line () in
    let p = "family " in
    if
      String.length line >= String.length p
      && String.sub line 0 (String.length p) = p
    then (
      let raw =
        String.trim
          (String.sub line (String.length p)
             (String.length line - String.length p))
      in
      match Problem_env.Family.of_string raw with
      | None -> fail "Serial.load: line %d: unknown family %S" !line_no raw
      | Some Problem_env.Family.Omflp -> (Problem_env.Omflp_ext, read_line ())
      | Some Problem_env.Family.Nonmetric_fl ->
          ignore (expect_prefix "conn");
          let conn =
            Array.init n (fun _ -> Array.of_list (floats_of_line n))
          in
          (Problem_env.Nonmetric { conn }, read_line ())
      | Some Problem_env.Family.Multi_facility_leasing ->
          let n_leases = int_of "leases" (expect_prefix "leases ") in
          if n_leases <= 0 then fail "Serial.load: non-positive lease count";
          let ints_of field s =
            List.map (int_of field)
              (List.filter (fun x -> x <> "") (String.split_on_char ' ' s))
          in
          let durations =
            Array.of_list (ints_of "duration" (expect_prefix "durations "))
          in
          let factors =
            Array.of_list
              (List.map
                 (fun s ->
                   match float_of_string_opt s with
                   | Some v -> v
                   | None ->
                       fail "Serial.load: line %d: bad float %S" !line_no s)
                 (List.filter
                    (fun x -> x <> "")
                    (String.split_on_char ' ' (expect_prefix "factors "))))
          in
          if
            Array.length durations <> n_leases
            || Array.length factors <> n_leases
          then
            fail "Serial.load: line %d: expected %d durations and factors"
              !line_no n_leases;
          (Problem_env.Leasing { durations; factors }, read_line ()))
    else (Problem_env.Omflp_ext, line)
  in
  let n_req = int_of "requests" (field_of "requests " requests_line) in
  let requests =
    Array.init n_req (fun _ ->
        let line = read_line () in
        let parts =
          List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
        in
        match parts with
        | site :: es when es <> [] ->
            let site = int_of "request site" site in
            let demand =
              Cset.of_list ~n_commodities:k
                (List.map (fun e -> int_of "commodity" e) es)
            in
            Request.make ~site ~demand
        | _ -> fail "Serial.load: line %d: malformed request" !line_no)
  in
  let base = Instance.with_ext (Instance.make ~name ~metric ~cost ~requests) ext in
  { base with arrival }

let load_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> load ic)

let round_trip inst =
  let tmp = Filename.temp_file "omflp" ".inst" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      save_file tmp inst;
      load_file tmp)
