open Omflp_prelude
open Omflp_commodity
open Omflp_metric

let singleton_sequence rng ~n_commodities ~n_requested ~site =
  let chosen =
    Sampler.sample_without_replacement rng ~n:n_commodities ~k:n_requested
  in
  Array.map
    (fun e ->
      Request.make ~site ~demand:(Cset.singleton ~n_commodities e))
    chosen

let single_point_adversary rng ~n_commodities ~cost ~n_requested =
  let metric = Finite_metric.single_point () in
  let cost = cost ~n_commodities ~n_sites:1 in
  let requests =
    singleton_sequence rng ~n_commodities ~n_requested ~site:0
  in
  Instance.make
    ~name:(Printf.sprintf "single-point(|S|=%d, |S'|=%d)" n_commodities n_requested)
    ~metric ~cost ~requests

let theorem2 rng ~n_commodities =
  let root = max 1 (Numerics.isqrt n_commodities) in
  single_point_adversary rng ~n_commodities ~cost:Cost_function.theorem2
    ~n_requested:root

let random_requests rng ~n_sites ~n_requests ~n_commodities ~demand =
  Array.init n_requests (fun _ ->
      Request.make ~site:(Splitmix.int rng n_sites)
        ~demand:(Demand.sample rng ~n_commodities demand))

let line rng ~n_sites ~n_requests ~n_commodities ~length ~demand ~cost =
  let metric = Metric_gen.random_line rng ~n:n_sites ~length in
  let cost = cost ~n_commodities ~n_sites in
  let requests =
    random_requests rng ~n_sites ~n_requests ~n_commodities ~demand
  in
  Instance.make
    ~name:(Printf.sprintf "line(%d sites, %d reqs)" n_sites n_requests)
    ~metric ~cost ~requests

let clustered rng ~clusters ~per_cluster ~n_requests ~n_commodities ~side
    ~spread ~cost =
  let metric =
    Metric_gen.clustered_euclidean rng ~clusters ~per_cluster ~side ~spread
  in
  let n_sites = Finite_metric.size metric in
  let cost = cost ~n_commodities ~n_sites in
  (* Each cluster is biased towards a commodity profile of about half of
     S; requests demand non-empty subsets of their cluster's profile. *)
  let profiles =
    Array.init clusters (fun _ ->
        let k = max 1 (Numerics.ceil_div n_commodities 2) in
        Sampler.random_subset_of_size rng ~universe:n_commodities ~k)
  in
  let requests =
    Array.init n_requests (fun _ ->
        let c = Splitmix.int rng clusters in
        let site = (c * per_cluster) + Splitmix.int rng per_cluster in
        let demand =
          Demand.sample rng ~n_commodities
            (Demand.Profile { profiles = [| profiles.(c) |]; keep_p = 0.6 })
        in
        Request.make ~site ~demand)
  in
  Instance.make
    ~name:
      (Printf.sprintf "clustered(%dx%d sites, %d reqs)" clusters per_cluster
         n_requests)
    ~metric ~cost ~requests

let network rng ~n_sites ~extra_edges ~n_requests ~n_commodities ~demand ~cost =
  let metric =
    Metric_gen.random_graph_metric rng ~n:n_sites ~extra_edges ~max_weight:1.0
  in
  let cost = cost ~n_commodities ~n_sites in
  let requests =
    random_requests rng ~n_sites ~n_requests ~n_commodities ~demand
  in
  Instance.make
    ~name:(Printf.sprintf "network(%d sites, %d reqs)" n_sites n_requests)
    ~metric ~cost ~requests

let uniform_metric rng ~n_sites ~d ~n_requests ~n_commodities ~demand ~cost =
  let metric = Finite_metric.uniform n_sites ~d in
  let cost = cost ~n_commodities ~n_sites in
  let requests =
    random_requests rng ~n_sites ~n_requests ~n_commodities ~demand
  in
  Instance.make
    ~name:(Printf.sprintf "uniform(%d sites, %d reqs)" n_sites n_requests)
    ~metric ~cost ~requests

let with_arrival arrival (inst : Instance.t) =
  let requests =
    Arrival.apply arrival
      ~n_sites:(Instance.n_sites inst)
      ~n_commodities:(Instance.n_commodities inst)
      inst.requests
  in
  let base =
    Instance.make ~name:inst.name ~metric:inst.metric ~cost:inst.cost ~requests
  in
  { base with arrival }
