(** Arrival models: how a request sequence is ordered (or drawn).

    The paper's guarantees are worst-case adversarial, but
    Kaplan–Naori–Raz (arXiv:2207.08783) show Meyerson's algorithm is
    ~O(1)-competitive when the adversary picks the multiset of requests
    and the order is a uniform random permutation. This module makes the
    arrival model a first-class, seeded, serializable value so
    experiments and the conformance oracle can compare models on equal
    footing.

    An {!Instance.t} stores its requests already materialized in arrival
    order; the arrival value records {e which model produced that order}
    so serialized instances, corpus entries, and reports can reproduce
    it exactly. *)

type t =
  | Adversarial  (** requests exactly as constructed, in order *)
  | Random_order of { seed : int }
      (** seeded uniform permutation (Fisher–Yates over
          [Splitmix.of_int seed]) of the constructed requests *)
  | Iid of { seed : int; n_requests : int; demand : Demand.model }
      (** [n_requests] i.i.d. draws: site uniform over the metric,
          demand set from [demand]; the constructed requests are
          ignored *)

(** [apply t ~n_sites ~n_commodities requests] materializes the arrival
    sequence. Always returns a fresh array: [requests] is never mutated
    and the result never aliases it. [Iid] ignores [requests] and draws
    [n_requests] fresh ones. *)
val apply :
  t -> n_sites:int -> n_commodities:int -> Request.t array -> Request.t array

(** Short tag for corpus slugs and CI findings: ["adv"], ["ro"], ["iid"]. *)
val model_tag : t -> string

(** [describe t] is a short human label for scenario names and reports. *)
val describe : t -> string

(** [to_string t] is an exact single-line form for the {!Serial} format;
    inverted bit-for-bit by {!of_string}. *)
val to_string : t -> string

(** [of_string ~n_commodities s] parses {!to_string} output. Raises
    [Failure] on malformed input. *)
val of_string : n_commodities:int -> string -> t
