(** Workload generators: the paper's adversarial distribution plus the
    natural instance families used by the evaluation harness. *)

open Omflp_prelude

(** [theorem2 rng ~n_commodities] is the exact Yao distribution of the
    Theorem 2 lower bound: a single metric point, construction cost
    [g(|σ|) = ⌈|σ|/√|S|⌉], a uniformly random commodity subset
    [S' ⊂ S] with [|S'| = ⌊√|S|⌋], and one singleton request per element of
    [S'] (in random order). The offline optimum for this instance is
    exactly [g(|S'|) = 1]. *)
val theorem2 : Splitmix.t -> n_commodities:int -> Instance.t

(** [single_point_adversary rng ~n_commodities ~cost ~n_requested] is the
    same sequence shape with an arbitrary size-based cost function and a
    chosen [|S'|]. *)
val single_point_adversary :
  Splitmix.t ->
  n_commodities:int ->
  cost:(n_commodities:int -> n_sites:int -> Omflp_commodity.Cost_function.t) ->
  n_requested:int ->
  Instance.t

(** [line rng ~n_sites ~n_requests ~n_commodities ~length ~demand ~cost]
    places sites uniformly on a segment; requests pick a uniform site and a
    demand from the model. *)
val line :
  Splitmix.t ->
  n_sites:int ->
  n_requests:int ->
  n_commodities:int ->
  length:float ->
  demand:Demand.model ->
  cost:(n_commodities:int -> n_sites:int -> Omflp_commodity.Cost_function.t) ->
  Instance.t

(** [clustered rng ~clusters ~per_cluster ~n_requests ~n_commodities ~side
    ~spread ~cost] builds a clustered Euclidean metric; each cluster is
    assigned a commodity profile and its requests demand random non-empty
    subsets of that profile — the workload where commodity co-location is
    most valuable. *)
val clustered :
  Splitmix.t ->
  clusters:int ->
  per_cluster:int ->
  n_requests:int ->
  n_commodities:int ->
  side:float ->
  spread:float ->
  cost:(n_commodities:int -> n_sites:int -> Omflp_commodity.Cost_function.t) ->
  Instance.t

(** [network rng ~n_sites ~extra_edges ~n_requests ~n_commodities ~demand
    ~cost] uses a random connected graph's shortest-path metric — the
    intro's service-placement scenario. *)
val network :
  Splitmix.t ->
  n_sites:int ->
  extra_edges:int ->
  n_requests:int ->
  n_commodities:int ->
  demand:Demand.model ->
  cost:(n_commodities:int -> n_sites:int -> Omflp_commodity.Cost_function.t) ->
  Instance.t

(** [with_arrival arrival inst] materializes [arrival] over [inst]'s
    requests (see {!Arrival.apply}) and returns a new instance carrying
    the model; [inst] is left untouched. *)
val with_arrival : Arrival.t -> Instance.t -> Instance.t

(** [uniform_metric rng ~n_sites ~d ~n_requests ~n_commodities ~demand
    ~cost] uses the uniform metric (all distances [d]). *)
val uniform_metric :
  Splitmix.t ->
  n_sites:int ->
  d:float ->
  n_requests:int ->
  n_commodities:int ->
  demand:Demand.model ->
  cost:(n_commodities:int -> n_sites:int -> Omflp_commodity.Cost_function.t) ->
  Instance.t
