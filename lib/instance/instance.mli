(** A complete OMFLP instance: metric space, construction costs, and the
    (online) request sequence. *)

type t = {
  name : string;
  metric : Omflp_metric.Finite_metric.t;
  cost : Omflp_commodity.Cost_function.t;
  requests : Request.t array;  (** in arrival order, already materialized *)
  arrival : Arrival.t;
      (** which arrival model produced [requests]; descriptive metadata
          carried through {!Serial} so replays reproduce the order *)
  ext : Problem_env.ext;
      (** problem-family payload ({!Problem_env.Omflp_ext} for plain
          OMFLP); carried through {!Serial} *)
}

(** [make ~name ~metric ~cost ~requests] validates consistency: the cost
    function must cover every metric point as a site, every request site
    must be a metric point, and every demand must live in the cost
    function's commodity universe. The arrival field defaults to
    {!Arrival.Adversarial}; use {!Generators.with_arrival} to
    materialize another model (or a record update to tag provenance). *)
val make :
  name:string ->
  metric:Omflp_metric.Finite_metric.t ->
  cost:Omflp_commodity.Cost_function.t ->
  requests:Request.t array ->
  t

(** [with_ext t ext] attaches (and validates) family-specific data;
    {!make} always builds plain OMFLP instances. *)
val with_ext : t -> Problem_env.ext -> t

(** [env t] packs the instance's environment view — what an algorithm's
    [create]/[restore] consumes. *)
val env : t -> Problem_env.t

val family : t -> Problem_env.Family.t

val n_requests : t -> int
val n_sites : t -> int
val n_commodities : t -> int

(** [distinct_commodities t] is the union of all demands — the part of [S]
    actually requested. *)
val distinct_commodities : t -> Omflp_commodity.Cset.t

(** [total_demand_pairs t] is [Σ_r |s_r|], the number of (request,
    commodity) pairs to serve. *)
val total_demand_pairs : t -> int

(** [truncate t k] keeps only the first [k] requests. *)
val truncate : t -> int -> t

(** [split_per_commodity t] is the paper's Section 1.1 model
    transformation: every request with demand [s_r] is replaced by [|s_r|]
    consecutive singleton requests at the same point. In the transformed
    instance the "one connection serves many commodities" discount
    disappears, simulating the per-commodity connection cost model; the
    sequence length grows to [Σ|s_r|]. *)
val split_per_commodity : t -> t

val pp : Format.formatter -> t -> unit
