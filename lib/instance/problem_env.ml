open Omflp_commodity

module Family = struct
  type t = Omflp | Nonmetric_fl | Multi_facility_leasing

  let to_string = function
    | Omflp -> "omflp"
    | Nonmetric_fl -> "nonmetric-fl"
    | Multi_facility_leasing -> "leasing"

  let of_string = function
    | "omflp" -> Some Omflp
    | "nonmetric-fl" | "nonmetric" -> Some Nonmetric_fl
    | "leasing" | "multi-facility-leasing" -> Some Multi_facility_leasing
    | _ -> None

  let all = [ Omflp; Nonmetric_fl; Multi_facility_leasing ]
  let pp ppf t = Format.pp_print_string ppf (to_string t)
end

type ext =
  | Omflp_ext
  | Nonmetric of { conn : float array array }
  | Leasing of { durations : int array; factors : float array }

type t = {
  metric : Omflp_metric.Finite_metric.t;
  cost : Cost_function.t;
  ext : ext;
}

let family t =
  match t.ext with
  | Omflp_ext -> Family.Omflp
  | Nonmetric _ -> Family.Nonmetric_fl
  | Leasing _ -> Family.Multi_facility_leasing

let metric t = t.metric
let cost t = t.cost
let ext t = t.ext

let check_dims metric cost =
  let n_sites = Omflp_metric.Finite_metric.size metric in
  if Cost_function.n_sites cost <> n_sites then
    invalid_arg
      (Printf.sprintf
         "Problem_env: cost function covers %d sites but metric has %d"
         (Cost_function.n_sites cost) n_sites);
  n_sites

let omflp metric cost =
  ignore (check_dims metric cost);
  { metric; cost; ext = Omflp_ext }

let validate_conn ~n_sites conn =
  if Array.length conn <> n_sites then
    invalid_arg
      (Printf.sprintf "Problem_env.nonmetric: conn has %d rows, metric %d sites"
         (Array.length conn) n_sites);
  Array.iter
    (fun row ->
      if Array.length row <> n_sites then
        invalid_arg "Problem_env.nonmetric: conn is not square";
      Array.iter
        (fun v ->
          if not (Float.is_finite v) || v < 0.0 then
            invalid_arg
              "Problem_env.nonmetric: connection costs must be finite and >= 0")
        row)
    conn

let nonmetric ~conn metric cost =
  let n_sites = check_dims metric cost in
  validate_conn ~n_sites conn;
  { metric; cost; ext = Nonmetric { conn } }

let validate_leases ~durations ~factors =
  let k = Array.length durations in
  if k = 0 || Array.length factors <> k then
    invalid_arg
      "Problem_env.leasing: need the same positive number of durations and \
       factors";
  Array.iter
    (fun d ->
      if d <= 0 then invalid_arg "Problem_env.leasing: durations must be >= 1")
    durations;
  Array.iteri
    (fun i f ->
      if not (Float.is_finite f) || f <= 0.0 then
        invalid_arg "Problem_env.leasing: factors must be finite and > 0";
      for j = 0 to i - 1 do
        (* Distinct factors let validation recover a facility's lease type
           from its construction cost alone. *)
        if Float.equal factors.(j) f then
          invalid_arg "Problem_env.leasing: factors must be pairwise distinct"
      done)
    factors

let leasing ~durations ~factors metric cost =
  ignore (check_dims metric cost);
  validate_leases ~durations ~factors;
  { metric; cost; ext = Leasing { durations; factors } }

let of_parts ~ext metric cost =
  match ext with
  | Omflp_ext -> omflp metric cost
  | Nonmetric { conn } -> nonmetric ~conn metric cost
  | Leasing { durations; factors } -> leasing ~durations ~factors metric cost

(* ---------- capability-checked dispatch ---------- *)

let mismatch_message ~algo ~declared ~got =
  Printf.sprintf
    "family mismatch: algorithm %s serves the %s family but the environment \
     is %s"
    algo (Family.to_string declared) (Family.to_string got)

let require ~algo ~family:declared t =
  let got = family t in
  if got <> declared then
    failwith (mismatch_message ~algo ~declared ~got)

let require_omflp ~algo t =
  require ~algo ~family:Family.Omflp t;
  (t.metric, t.cost)

let require_nonmetric ~algo t =
  match t.ext with
  | Nonmetric { conn } -> (t.metric, t.cost, conn)
  | _ ->
      failwith
        (mismatch_message ~algo ~declared:Family.Nonmetric_fl ~got:(family t))

let require_leasing ~algo t =
  match t.ext with
  | Leasing { durations; factors } -> (t.metric, t.cost, durations, factors)
  | _ ->
      failwith
        (mismatch_message ~algo ~declared:Family.Multi_facility_leasing
           ~got:(family t))

(* ---------- family-dispatched primitives ---------- *)

(* Connection cost of serving a request at [request_site] from a facility
   at [facility_site]. Metric families read the (symmetric) metric in the
   historical argument order; the non-metric family reads the raw matrix,
   which need satisfy no triangle inequality and may be asymmetric
   (direction: facility row, request column). *)
let connection_dist t ~facility_site ~request_site =
  match t.ext with
  | Omflp_ext | Leasing _ ->
      Omflp_metric.Finite_metric.dist t.metric request_site facility_site
  | Nonmetric { conn } -> conn.(facility_site).(request_site)

(* Lease type whose scaled construction cost matches [cost] for config
   [offered] at [site]. [Ok None]: the cost matches the plain cost
   function (non-leasing families). [Ok (Some d)]: a lease of duration
   [d]. Ambiguity (a zero base cost matches every factor) resolves to the
   longest duration — the most permissive liveness window — and the
   algorithms use the same rule. *)
let classify_facility_cost t ~site ~offered ~cost:c =
  let base = Cost_function.eval t.cost site offered in
  let approx = Omflp_prelude.Numerics.approx_eq ~tol:1e-6 in
  match t.ext with
  | Omflp_ext | Nonmetric _ ->
      if approx base c then Ok None
      else
        Error
          (Printf.sprintf "cost %.9g but f^sigma_m = %.9g" c base)
  | Leasing { durations; factors } ->
      let best = ref (-1) in
      Array.iteri
        (fun k f ->
          if
            approx (f *. base) c
            && (!best < 0 || durations.(k) > durations.(!best))
          then best := k)
        factors;
      if !best >= 0 then Ok (Some durations.(!best))
      else
        Error
          (Printf.sprintf
             "cost %.9g matches no lease type (base f^sigma_m = %.9g, \
              factors %s)"
             c base
             (String.concat ","
                (Array.to_list (Array.map (Printf.sprintf "%g") factors))))

(* Cheapest way any single lease can cover one time instant: the minimum
   factor (every duration >= 1 covers the opening step). Scale for the
   family-generic serve-alone lower bound. *)
let lease_scale_min t =
  match t.ext with
  | Omflp_ext | Nonmetric _ -> 1.0
  | Leasing { factors; _ } -> Array.fold_left Float.min factors.(0) factors

let pp ppf t =
  match t.ext with
  | Omflp_ext -> Format.fprintf ppf "omflp"
  | Nonmetric _ -> Format.fprintf ppf "nonmetric-fl"
  | Leasing { durations; factors } ->
      Format.fprintf ppf "leasing[%s]"
        (String.concat ";"
           (Array.to_list
              (Array.mapi
                 (fun k d -> Printf.sprintf "%dx%g" d factors.(k))
                 durations)))
