open Omflp_commodity
open Omflp_metric
open Omflp_instance

type t = {
  metric : Finite_metric.t;
  cost : Cost_function.t;
  store : Facility_store.t;
  (* singleton.(e).(site): opening cost of {e} at [site], precomputed so
     the per-request option-A scan is an array read instead of a
     commodity-set allocation per probe (same float values — the cost
     function is pure). *)
  singleton : float array array;
  mutable n_requests : int;
}

let name = "GREEDY"
let family = Problem_env.Family.Omflp

let create ?seed:_ env =
  let metric, cost = Problem_env.require_omflp ~algo:name env in
  let n_commodities = Cost_function.n_commodities cost in
  let n_sites = Finite_metric.size metric in
  {
    metric;
    cost;
    store = Facility_store.create env ~n_commodities;
    singleton =
      Array.init n_commodities (fun e ->
          Array.init n_sites (fun site ->
              Cost_function.singleton_cost cost site e));
    n_requests = 0;
  }

let step t (r : Request.t) =
  (* Option A: per commodity, the cheaper of connecting to the nearest
     facility offering it or opening {e} at the request's own site. *)
  let option_a_cost =
    Cset.fold
      (fun e acc ->
        let connect =
          Facility_store.dist_offering t.store ~commodity:e ~from:r.site
        in
        let build = t.singleton.(e).(r.site) in
        acc +. Float.min connect build)
      r.demand 0.0
  in
  (* Option B: open the exact demand set at the request's own site. *)
  let option_b_cost = Cost_function.eval t.cost r.site r.demand in
  (* Option C: connect to the nearest large facility. *)
  let option_c_cost = Facility_store.dist_large t.store ~from:r.site in
  let service =
    if option_c_cost <= option_a_cost && option_c_cost <= option_b_cost then begin
      let fac, _ =
        Option.get (Facility_store.nearest_large t.store ~from:r.site)
      in
      Service.To_single fac.Facility.id
    end
    else if option_b_cost <= option_a_cost then begin
      let fac =
        Facility_store.open_facility t.store ~site:r.site
          ~kind:(Facility.Custom r.demand) ~cost:option_b_cost
          ~opened_at:t.n_requests
      in
      Service.To_single fac.Facility.id
    end
    else begin
      let pairs =
        List.map
          (fun e ->
            let connect =
              Facility_store.dist_offering t.store ~commodity:e ~from:r.site
            in
            let build = t.singleton.(e).(r.site) in
            let fac =
              if build < connect then
                Facility_store.open_facility t.store ~site:r.site
                  ~kind:(Facility.Small e) ~cost:build ~opened_at:t.n_requests
              else
                fst
                  (Option.get
                     (Facility_store.nearest_offering t.store ~commodity:e
                        ~from:r.site))
            in
            (e, fac.Facility.id))
          (Cset.elements r.demand)
      in
      Service.Per_commodity pairs
    end
  in
  Facility_store.record_service t.store ~request_site:r.site service;
  t.n_requests <- t.n_requests + 1;
  service

let step_batch t reqs = Algo_intf.batch_of_step ~step t reqs

let run_so_far t = Run.of_store ~algorithm:name t.store
let store t = t.store

(* Persisted: GREEDY keeps no scratch beyond the store and the pure
   singleton table, so the blob is just the store. *)

let snapshot_tag = "omflp.snap.greedy.v2"

let snapshot t =
  Omflp_prelude.Snapshot_codec.encode ~tag:snapshot_tag (fun b ->
      Facility_store.write_persisted b (Facility_store.persist t.store);
      Omflp_prelude.Snapshot_codec.w_int b t.n_requests)

let restore env blob =
  Omflp_prelude.Snapshot_codec.decode ~tag:snapshot_tag
    (fun r ->
      let z_store = Facility_store.read_persisted r in
      let n_requests = Omflp_prelude.Snapshot_codec.r_int r in
      let t = create env in
      {
        t with
        store = Facility_store.of_persisted env z_store;
        n_requests;
      })
    blob
