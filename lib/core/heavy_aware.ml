open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance

type heavy_past = { site : int; dual : float }

type t = {
  metric : Finite_metric.t;
  cost : Cost_function.t;
  heavy : Cset.t;
  light : Cset.t;
  light_map : int array;  (** light sub-universe index → original commodity *)
  inner : Pd_omflp.t;  (** PD-OMFLP over the light sub-universe *)
  store : Facility_store.t;  (** full-universe accounting *)
  fid_map : (int, int) Hashtbl.t;  (** inner facility id → outer id *)
  mutable inner_mirrored : int;
  heavy_past : heavy_past list array;  (** per original commodity *)
  mutable n_requests : int;
}

let name = "HEAVY-AWARE"
let family = Problem_env.Family.Omflp

let create_with_heavy ~heavy env =
  let metric, cost = Problem_env.require_omflp ~algo:name env in
  let k = Cost_function.n_commodities cost in
  if Cset.n_commodities heavy <> k then
    invalid_arg "Heavy_aware.create_with_heavy: heavy from wrong universe";
  let light = Cset.diff (Cset.full ~n_commodities:k) heavy in
  if Cset.is_empty light then
    invalid_arg "Heavy_aware.create_with_heavy: no light commodities left";
  let light_cost, light_map = Cost_function.project cost ~keep:light in
  {
    metric;
    cost;
    heavy;
    light;
    light_map;
    inner = Pd_omflp.create (Problem_env.omflp metric light_cost);
    store = Facility_store.create env ~n_commodities:k;
    fid_map = Hashtbl.create 64;
    inner_mirrored = 0;
    heavy_past = Array.make k [];
    n_requests = 0;
  }

let create ?seed:_ env =
  create_with_heavy ~heavy:(Heavy.detect (Problem_env.cost env)) env

let heavy_set t = t.heavy

(* Replay inner facilities into the outer store, translating kinds back to
   the full universe. A light-side "large" facility offers exactly the
   light set. *)
let mirror_inner t =
  let k = Cset.n_commodities t.light in
  List.iteri
    (fun idx (f : Facility.t) ->
      if idx >= t.inner_mirrored then begin
        let kind =
          match f.kind with
          | Facility.Small e' -> Facility.Small t.light_map.(e')
          | Facility.Large ->
              if Cset.cardinal t.light = k then Facility.Large
              else Facility.Custom t.light
          | Facility.Custom sigma' ->
              Facility.Custom
                (Cset.fold
                   (fun e' acc -> Cset.add acc t.light_map.(e'))
                   sigma'
                   (Cset.empty ~n_commodities:k))
        in
        let outer =
          Facility_store.open_facility t.store ~site:f.site ~kind ~cost:f.cost
            ~opened_at:t.n_requests
        in
        Hashtbl.replace t.fid_map f.id outer.Facility.id;
        t.inner_mirrored <- t.inner_mirrored + 1
      end)
    (Facility_store.facilities (Pd_omflp.store t.inner))

(* One Fotakis primal-dual step for a heavy commodity against the outer
   store (only heavy small facilities ever offer it). *)
let serve_heavy t ~site e =
  let n_sites = Finite_metric.size t.metric in
  let connect_at = Facility_store.dist_offering t.store ~commodity:e ~from:site in
  let best_site = ref (-1) in
  let best_open = ref infinity in
  for m = 0 to n_sites - 1 do
    let bids =
      List.fold_left
        (fun acc p ->
          let cap =
            Float.min p.dual
              (Facility_store.dist_offering t.store ~commodity:e ~from:p.site)
          in
          acc +. Numerics.pos (cap -. Finite_metric.dist t.metric p.site m))
        0.0 t.heavy_past.(e)
    in
    let open_at =
      Finite_metric.dist t.metric site m
      +. Numerics.pos (Cost_function.singleton_cost t.cost m e -. bids)
    in
    if open_at < !best_open then begin
      best_open := open_at;
      best_site := m
    end
  done;
  let dual = Float.min connect_at !best_open in
  if !best_open < connect_at then
    ignore
      (Facility_store.open_facility t.store ~site:!best_site
         ~kind:(Facility.Small e)
         ~cost:(Cost_function.singleton_cost t.cost !best_site e)
         ~opened_at:t.n_requests);
  t.heavy_past.(e) <- { site; dual } :: t.heavy_past.(e);
  let fac, _ =
    Option.get (Facility_store.nearest_offering t.store ~commodity:e ~from:site)
  in
  (e, fac.Facility.id)

let step t (r : Request.t) =
  let light_demand = Cset.inter r.demand t.light in
  let heavy_demand = Cset.inter r.demand t.heavy in
  (* Light side: project the demand and run the inner PD-OMFLP step. *)
  let light_pairs, light_single =
    if Cset.is_empty light_demand then ([], None)
    else begin
      let sub_k = Array.length t.light_map in
      let sub_demand =
        Array.to_list (Array.init sub_k Fun.id)
        |> List.filter (fun e' -> Cset.mem light_demand t.light_map.(e'))
        |> Cset.of_list ~n_commodities:sub_k
      in
      let inner_service =
        Pd_omflp.step t.inner (Request.make ~site:r.site ~demand:sub_demand)
      in
      mirror_inner t;
      match inner_service with
      | Service.To_single fid ->
          let outer = Hashtbl.find t.fid_map fid in
          ( List.map
              (fun e -> (e, outer))
              (Cset.elements light_demand),
            Some outer )
      | Service.Per_commodity pairs ->
          ( List.map
              (fun (e', fid) -> (t.light_map.(e'), Hashtbl.find t.fid_map fid))
              pairs,
            None )
    end
  in
  (* Heavy side: independent per-commodity primal-dual. *)
  let heavy_pairs =
    List.map (fun e -> serve_heavy t ~site:r.site e) (Cset.elements heavy_demand)
  in
  let service =
    match (light_single, heavy_pairs) with
    | Some fid, [] -> Service.To_single fid
    | _ -> Service.Per_commodity (light_pairs @ heavy_pairs)
  in
  Facility_store.record_service t.store ~request_site:r.site service;
  t.n_requests <- t.n_requests + 1;
  service

let step_batch t reqs = Algo_intf.batch_of_step ~step t reqs

let run_so_far t = Run.of_store ~algorithm:name t.store
let store t = t.store

(* Persisted: the heavy set (it may have been overridden via
   [create_with_heavy], so detection is not re-run), the inner PD run as
   a nested blob, and the outer bookkeeping. The light projection is a
   pure function of (cost, heavy) and is rebuilt. The fid map is
   serialized sorted by inner id so the blob does not depend on hashtable
   iteration order. *)

let snapshot_tag = "omflp.snap.heavy-aware.v2"

let w_heavy_past b (p : heavy_past) =
  Snapshot_codec.w_int b p.site;
  Snapshot_codec.w_float b p.dual

let r_heavy_past r =
  let site = Snapshot_codec.r_int r in
  let dual = Snapshot_codec.r_float r in
  { site; dual }

let snapshot t =
  Snapshot_codec.encode ~tag:snapshot_tag (fun b ->
      Cset.write b t.heavy;
      Snapshot_codec.w_string b (Pd_omflp.snapshot t.inner);
      Facility_store.write_persisted b (Facility_store.persist t.store);
      let fid_pairs =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.fid_map [])
      in
      Snapshot_codec.w_list
        (fun b (k, v) ->
          Snapshot_codec.w_int b k;
          Snapshot_codec.w_int b v)
        b fid_pairs;
      Snapshot_codec.w_int b t.inner_mirrored;
      Snapshot_codec.w_array (Snapshot_codec.w_list w_heavy_past) b
        t.heavy_past;
      Snapshot_codec.w_int b t.n_requests)

let restore env blob =
  Snapshot_codec.decode ~tag:snapshot_tag
    (fun r ->
      let z_heavy = Cset.read r in
      let z_inner = Snapshot_codec.r_string r in
      let z_store = Facility_store.read_persisted r in
      let z_fid_map =
        Snapshot_codec.r_list
          (fun r ->
            let k = Snapshot_codec.r_int r in
            let v = Snapshot_codec.r_int r in
            (k, v))
          r
      in
      let z_inner_mirrored = Snapshot_codec.r_int r in
      let z_heavy_past =
        Snapshot_codec.r_array (Snapshot_codec.r_list r_heavy_past) r
      in
      let z_n_requests = Snapshot_codec.r_int r in
      let t = create_with_heavy ~heavy:z_heavy env in
      let light_cost, _ = Cost_function.project t.cost ~keep:t.light in
      List.iter (fun (k, v) -> Hashtbl.replace t.fid_map k v) z_fid_map;
      if Array.length z_heavy_past <> Array.length t.heavy_past then
        failwith "Heavy_aware.restore: commodity count mismatch";
      Array.blit z_heavy_past 0 t.heavy_past 0 (Array.length t.heavy_past);
      {
        t with
        inner = Pd_omflp.restore (Problem_env.omflp t.metric light_cost) z_inner;
        store = Facility_store.of_persisted env z_store;
        inner_mirrored = z_inner_mirrored;
        n_requests = z_n_requests;
      })
    blob
