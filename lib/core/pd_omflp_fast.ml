type t = Pd_omflp.t

let name = "PD-OMFLP-FAST"

let family = Pd_omflp.family
let create ?seed env = Pd_omflp.create_incremental ?seed env

let step = Pd_omflp.step

let step_batch = Pd_omflp.step_batch

let run_so_far t = Run.of_store ~algorithm:name (Pd_omflp.store t)

let store = Pd_omflp.store

let snapshot = Pd_omflp.snapshot

let restore = Pd_omflp.restore_incremental
