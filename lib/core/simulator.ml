open Omflp_instance
open Omflp_obs

(* Per-request service latency, recorded only while observation is on
   (metrics enabled or a trace sink installed) so unobserved runs keep
   the bare [A.step] call in the loop. *)
let m_requests = Metrics.counter "sim.requests"

let m_step_timer = Metrics.timer "sim.step"

let m_step_hist = Metrics.histogram "sim.step_seconds"

let validate (inst : Instance.t) (run : Run.t) =
  let env = Instance.env inst in
  let facility_tbl = Hashtbl.create 64 in
  List.iter
    (fun (f : Facility.t) -> Hashtbl.replace facility_tbl f.id f)
    run.facilities;
  let facility id =
    match Hashtbl.find_opt facility_tbl id with
    | Some f -> f
    | None -> failwith (Printf.sprintf "unknown facility id %d" id)
  in
  (* Construction costs must match an opening the environment allows;
     for leasing this also recovers each facility's lease duration (its
     liveness window). *)
  let duration_of (f : Facility.t) =
    match
      Problem_env.classify_facility_cost env ~site:f.site ~offered:f.offered
        ~cost:f.cost
    with
    | Ok d -> d
    | Error msg -> failwith (Printf.sprintf "facility %d %s" f.id msg)
  in
  let n_req = Instance.n_requests inst in
  let services = Array.of_list run.services in
  try
    if Array.length services <> n_req then
      failwith
        (Printf.sprintf "expected %d services, got %d" n_req
           (Array.length services));
    (* Coverage, respecting opening times: a facility used by request i
       must have been opened at or before i — and, under leasing, not
       have expired before i. *)
    Array.iteri
      (fun i service ->
        let r = inst.requests.(i) in
        List.iter
          (fun id ->
            let f = facility id in
            if f.Facility.opened_at > i then
              failwith
                (Printf.sprintf
                   "request %d served by facility %d opened later (at %d)" i id
                   f.Facility.opened_at);
            match duration_of f with
            | None -> ()
            | Some d ->
                if i >= f.Facility.opened_at + d then
                  failwith
                    (Printf.sprintf
                       "request %d served by facility %d whose lease (opened \
                        %d, duration %d) had expired"
                       i id f.Facility.opened_at d))
          (Service.facility_ids service);
        if
          not
            (Service.covers
               ~facility_offered:(fun id -> (facility id).Facility.offered)
               ~demand:r.Request.demand service)
        then failwith (Printf.sprintf "request %d not fully served" i))
      services;
    (* Cost recomputation. *)
    let construction =
      List.fold_left (fun acc (f : Facility.t) -> acc +. f.cost) 0.0
        run.facilities
    in
    let assignment = ref 0.0 in
    Array.iteri
      (fun i service ->
        assignment :=
          !assignment
          +. Service.cost_env
               ~facility_site:(fun id -> (facility id).Facility.site)
               ~env
               ~request_site:inst.requests.(i).Request.site service)
      services;
    let open Omflp_prelude.Numerics in
    if not (approx_eq ~tol:1e-6 construction run.construction_cost) then
      failwith
        (Printf.sprintf "construction cost mismatch: %.9g vs reported %.9g"
           construction run.construction_cost);
    if not (approx_eq ~tol:1e-6 !assignment run.assignment_cost) then
      failwith
        (Printf.sprintf "assignment cost mismatch: %.9g vs reported %.9g"
           !assignment run.assignment_cost);
    (* Facility construction costs must match the cost function (checked
       family-aware by [duration_of] above for used facilities; re-run
       over all facilities so unused openings are checked too). *)
    List.iter (fun (f : Facility.t) -> ignore (duration_of f)) run.facilities;
    Ok ()
  with Failure msg -> Error (run.algorithm ^ ": " ^ msg)

let run ?seed ?(check = true) (module A : Algo_intf.ALGO)
    (inst : Instance.t) =
  let t = A.create ?seed (Instance.env inst) in
  let observing = Metrics.enabled () || Trace_sink.installed () in
  let result =
    if not observing then begin
      (* Unobserved runs take the batch entry point: decisions are
         identical to the step-by-step fold (the ALGO contract), and
         algorithms get to amortize pure per-request setup. *)
      ignore (A.step_batch t inst.requests);
      A.run_so_far t
    end
    else begin
      let latencies = Array.make (Array.length inst.requests) 0.0 in
      Array.iteri
        (fun i r ->
          let t0 = Metrics.now () in
          let service = A.step t r in
          let dt = Metrics.now () -. t0 in
          latencies.(i) <- dt;
          Metrics.incr m_requests;
          Metrics.record_span m_step_timer dt;
          Metrics.observe m_step_hist dt;
          Trace_sink.emit_current ~kind:"request"
            [
              ("algorithm", Trace_sink.String A.name);
              ("index", Trace_sink.Int i);
              ("site", Trace_sink.Int r.Request.site);
              ( "demand",
                Trace_sink.Int (Omflp_commodity.Cset.cardinal r.Request.demand)
              );
              ( "service",
                Trace_sink.String
                  (match service with
                  | Service.To_single _ -> "single"
                  | Service.Per_commodity _ -> "per_commodity") );
              ( "facilities",
                Trace_sink.Int (List.length (Service.facility_ids service)) );
              ("latency_s", Trace_sink.Float dt);
            ])
        inst.requests;
      { (A.run_so_far t) with Run.step_seconds = latencies }
    end
  in
  if check then begin
    match validate inst result with
    | Ok () -> ()
    | Error msg -> failwith ("Simulator.run: invalid run: " ^ msg)
  end;
  result

let run_many ?seed ?(check = true) algos (inst : Instance.t) =
  (* All algorithms share the instance's metric, so the distance rows of
     the request sites — the rows every step loop reads — are forced
     once here and served from cache for the whole table, instead of
     each run paying the first-touch materialization. *)
  Array.iter
    (fun (r : Request.t) ->
      ignore (Omflp_metric.Finite_metric.row inst.metric r.site))
    inst.requests;
  List.map (fun (name, algo) -> (name, run ?seed ~check algo inst)) algos

let run_all ?seed inst =
  run_many ?seed (Registry.canonical_for (Instance.family inst)) inst
