open Omflp_commodity

type kind = Small of int | Large | Custom of Cset.t

type t = {
  id : int;
  site : int;
  kind : kind;
  offered : Cset.t;
  cost : float;
  opened_at : int;
}

let offered_of_kind ~n_commodities = function
  | Small e -> Cset.singleton ~n_commodities e
  | Large -> Cset.full ~n_commodities
  | Custom s -> s

open Omflp_prelude

let write b t =
  Snapshot_codec.w_int b t.id;
  Snapshot_codec.w_int b t.site;
  (match t.kind with
  | Small e ->
      Snapshot_codec.w_int b 0;
      Snapshot_codec.w_int b e
  | Large -> Snapshot_codec.w_int b 1
  | Custom s ->
      Snapshot_codec.w_int b 2;
      Cset.write b s);
  Snapshot_codec.w_float b t.cost;
  Snapshot_codec.w_int b t.opened_at

let read ~n_commodities r =
  let id = Snapshot_codec.r_int r in
  let site = Snapshot_codec.r_int r in
  let kind =
    match Snapshot_codec.r_int r with
    | 0 -> Small (Snapshot_codec.r_int r)
    | 1 -> Large
    | 2 -> Custom (Cset.read r)
    | k -> Printf.ksprintf failwith "Snapshot_codec: bad facility kind %d" k
  in
  let cost = Snapshot_codec.r_float r in
  let opened_at = Snapshot_codec.r_int r in
  (* [offered] is a pure function of the kind — derive it rather than
     trusting serialized bytes to stay consistent with the kind. *)
  let offered = offered_of_kind ~n_commodities kind in
  { id; site; kind; offered; cost; opened_at }

let pp ppf t =
  let kind =
    match t.kind with
    | Small e -> Printf.sprintf "small(%d)" e
    | Large -> "large"
    | Custom _ -> "custom"
  in
  Format.fprintf ppf "facility#%d %s @%d cost=%.4g (opened at req %d)" t.id
    kind t.site t.cost t.opened_at
