open Omflp_commodity

type t = To_single of int | Per_commodity of (int * int) list

let facility_ids = function
  | To_single id -> [ id ]
  | Per_commodity pairs ->
      List.sort_uniq compare (List.map snd pairs)

let covers ~facility_offered ~demand t =
  match t with
  | To_single id -> Cset.subset demand (facility_offered id)
  | Per_commodity pairs ->
      Cset.for_all
        (fun e ->
          List.exists
            (fun (e', id) -> e' = e && Cset.mem (facility_offered id) e)
            pairs)
        demand

open Omflp_prelude

let write b = function
  | To_single id ->
      Snapshot_codec.w_int b 0;
      Snapshot_codec.w_int b id
  | Per_commodity pairs ->
      Snapshot_codec.w_int b 1;
      Snapshot_codec.w_list
        (fun b (e, id) ->
          Snapshot_codec.w_int b e;
          Snapshot_codec.w_int b id)
        b pairs

let read r =
  match Snapshot_codec.r_int r with
  | 0 -> To_single (Snapshot_codec.r_int r)
  | 1 ->
      Per_commodity
        (Snapshot_codec.r_list
           (fun r ->
             let e = Snapshot_codec.r_int r in
             let id = Snapshot_codec.r_int r in
             (e, id))
           r)
  | k -> Printf.ksprintf failwith "Snapshot_codec: bad service tag %d" k

let cost ~facility_site ~metric ~request_site t =
  List.fold_left
    (fun acc id ->
      acc
      +. Omflp_metric.Finite_metric.dist metric request_site (facility_site id))
    0.0 (facility_ids t)

(* Family-dispatched variant: connection costs come from the environment
   (metric distance for OMFLP/leasing, the raw matrix for non-metric).
   Float-identical to [cost] on OMFLP environments. *)
let cost_env ~facility_site ~env ~request_site t =
  List.fold_left
    (fun acc id ->
      acc
      +. Omflp_instance.Problem_env.connection_dist env
           ~facility_site:(facility_site id) ~request_site)
    0.0 (facility_ids t)
