open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance
open Omflp_obs

(* Work counters (lib/obs); [rand.coin_flips] counts Bernoulli draws
   actually performed (p > 0), [rand.service_fallbacks] the deterministic
   openings forced by the service guarantee. *)
let m_requests = Metrics.counter "rand.requests"

let m_coin_flips = Metrics.counter "rand.coin_flips"

let m_facilities_opened = Metrics.counter "rand.facilities_opened"

let m_service_fallbacks = Metrics.counter "rand.service_fallbacks"

type t = {
  metric : Finite_metric.t;
  cost : Cost_function.t;
  classes : Cost_classes.t;
  rng : Splitmix.t;
  store : Facility_store.t;
  mutable n_requests : int;
}

let name = "RAND-OMFLP"
let family = Problem_env.Family.Omflp

let create ?(seed = 0x52414e44) env =
  let metric, cost = Problem_env.require_omflp ~algo:name env in
  {
    metric;
    cost;
    classes = Cost_classes.build cost;
    rng = Splitmix.of_int seed;
    store =
      Facility_store.create env
        ~n_commodities:(Cost_function.n_commodities cost);
    n_requests = 0;
  }

(* Cumulative-minimum distances D_i = min_{j<=i} d(class_j, r) and, per
   class, the argmin site of the class itself. *)
let class_profile t key ~dist_to =
  let cs = Cost_classes.classes t.classes key in
  let k = Array.length cs in
  let cum = Array.make k infinity in
  let nearest = Array.make k (-1, infinity) in
  let acc = ref infinity in
  for i = 0 to k - 1 do
    let site, d =
      Cost_classes.nearest_site_in_class t.classes key ~dist_to ~cls_idx:i
    in
    nearest.(i) <- (site, d);
    acc := Float.min !acc d;
    cum.(i) <- !acc
  done;
  (cs, cum, nearest)

(* min_i (C_i + D_i): the cheapest build-and-connect estimate. *)
let build_estimate cs cum =
  let best = ref infinity in
  Array.iteri
    (fun i (c : Cost_classes.cls) -> best := Float.min !best (c.cost +. cum.(i)))
    cs;
  !best

let step t (r : Request.t) =
  (* One row fetch replaces the per-site [dist] calls of every class
     scan below; row_r.(m) = d(r, m) exactly. *)
  let row_r = Finite_metric.row t.metric r.site in
  let dist_to m = row_r.(m) in
  let es = Array.of_list (Cset.elements r.demand) in
  (* X(r,e) and its class profile per commodity. *)
  let profiles =
    Array.map (fun e -> class_profile t (Cost_classes.Single e) ~dist_to) es
  in
  let x_re =
    Array.mapi
      (fun i e ->
        let cs, cum, _ = profiles.(i) in
        Float.min
          (Facility_store.dist_offering t.store ~commodity:e ~from:r.site)
          (build_estimate cs cum))
      es
  in
  let x_r = Array.fold_left ( +. ) 0.0 x_re in
  let all_cs, all_cum, all_nearest =
    class_profile t Cost_classes.All ~dist_to
  in
  let z_r =
    Float.min
      (Facility_store.dist_large t.store ~from:r.site)
      (build_estimate all_cs all_cum)
  in
  let estimate = Float.min x_r z_r in
  (* Coin flips: small facilities, per commodity and class. The share
     X(r,e)/X(r) splits the request's budget across its commodities. *)
  Array.iteri
    (fun i e ->
      let cs, cum, nearest = profiles.(i) in
      let share = if x_r > 0.0 then x_re.(i) /. x_r else 0.0 in
      Array.iteri
        (fun ci (cls : Cost_classes.cls) ->
          let d_prev = if ci = 0 then estimate else cum.(ci - 1) in
          let improvement = Numerics.pos (d_prev -. cum.(ci)) in
          let build () =
            let site, _ = nearest.(ci) in
            Metrics.incr m_facilities_opened;
            ignore
              (Facility_store.open_facility t.store ~site ~kind:(Facility.Small e)
                 ~cost:(Cost_function.singleton_cost t.cost site e)
                 ~opened_at:t.n_requests)
          in
          if cls.cost = 0.0 then begin
            (* Free class: build when it beats every open facility (the
               estimate already counts the free build itself). *)
            if
              cum.(ci)
              < Facility_store.dist_offering t.store ~commodity:e ~from:r.site
            then build ()
          end
          else begin
            let p = Float.min 1.0 (improvement /. cls.cost *. share) in
            if p > 0.0 then begin
              Metrics.incr m_coin_flips;
              if Splitmix.bernoulli t.rng p then build ()
            end
          end)
        cs)
    es;
  (* Coin flips: large facilities, per class. *)
  Array.iteri
    (fun ci (cls : Cost_classes.cls) ->
      let d_prev = if ci = 0 then estimate else all_cum.(ci - 1) in
      let improvement = Numerics.pos (d_prev -. all_cum.(ci)) in
      let build () =
        let site, _ = all_nearest.(ci) in
        Metrics.incr m_facilities_opened;
        ignore
          (Facility_store.open_facility t.store ~site ~kind:Facility.Large
             ~cost:(Cost_function.full_cost t.cost site)
             ~opened_at:t.n_requests)
      in
      if cls.cost = 0.0 then begin
        if all_cum.(ci) < Facility_store.dist_large t.store ~from:r.site then
          build ()
      end
      else begin
        let p = Float.min 1.0 (improvement /. cls.cost) in
        if p > 0.0 then begin
          Metrics.incr m_coin_flips;
          if Splitmix.bernoulli t.rng p then build ()
        end
      end)
    all_cs;
  (* Service guarantee: any commodity with no reachable facility gets the
     small facility realizing its X(r,e) estimate. *)
  Array.iteri
    (fun i e ->
      if
        Facility_store.dist_offering t.store ~commodity:e ~from:r.site
        = infinity
      then begin
        let cs, _, nearest = profiles.(i) in
        let best = ref (-1) and best_v = ref infinity in
        Array.iteri
          (fun ci (cls : Cost_classes.cls) ->
            let _, d = nearest.(ci) in
            if cls.cost +. d < !best_v then begin
              best_v := cls.cost +. d;
              best := ci
            end)
          cs;
        let site, _ = nearest.(!best) in
        Metrics.incr m_service_fallbacks;
        Metrics.incr m_facilities_opened;
        ignore
          (Facility_store.open_facility t.store ~site ~kind:(Facility.Small e)
             ~cost:(Cost_function.singleton_cost t.cost site e)
             ~opened_at:t.n_requests)
      end)
    es;
  (* Connect to the cheaper of: per-commodity nearest facilities (distinct
     facilities pay once), or the nearest large facility. *)
  let per_commodity =
    Array.to_list
      (Array.map
         (fun e ->
           let fac, _ =
             Option.get
               (Facility_store.nearest_offering t.store ~commodity:e
                  ~from:r.site)
           in
           (e, fac.Facility.id))
         es)
  in
  let cost_of service =
    Service.cost
      ~facility_site:(fun id -> (Facility_store.facility t.store id).Facility.site)
      ~metric:t.metric ~request_site:r.site service
  in
  let option_a = Service.Per_commodity per_commodity in
  let service =
    match Facility_store.nearest_large t.store ~from:r.site with
    | Some (fac, d) when d <= cost_of option_a -> Service.To_single fac.Facility.id
    | _ -> option_a
  in
  Facility_store.record_service t.store ~request_site:r.site service;
  t.n_requests <- t.n_requests + 1;
  Metrics.incr m_requests;
  service

let step_batch t reqs = Algo_intf.batch_of_step ~step t reqs

let run_so_far t = Run.of_store ~algorithm:name t.store

let store t = t.store

(* ---------- snapshot / restore ---------- *)

(* Persisted: the RNG position (the whole point — a restored run must
   continue the coin-flip stream, not restart it) plus the store. The
   cost classes are a pure function of the cost function and are rebuilt
   by [create]. *)

let snapshot_tag = "omflp.snap.rand-omflp.v2"

let snapshot t =
  Snapshot_codec.encode ~tag:snapshot_tag (fun b ->
      Snapshot_codec.w_i64 b (Splitmix.state t.rng);
      Facility_store.write_persisted b (Facility_store.persist t.store);
      Snapshot_codec.w_int b t.n_requests)

let restore env blob =
  Snapshot_codec.decode ~tag:snapshot_tag
    (fun r ->
      let rng = Snapshot_codec.r_i64 r in
      let z_store = Facility_store.read_persisted r in
      let n_requests = Snapshot_codec.r_int r in
      let t = create env in
      {
        t with
        rng = Splitmix.create rng;
        store = Facility_store.of_persisted env z_store;
        n_requests;
      })
    blob
