open Omflp_commodity
open Omflp_metric
open Omflp_instance

type outcome = {
  run : Run.t;
  realized : Instance.t;
  zoom_point : int;
}

let zoom_line ?(batch_base = 2) ?(facility_cost = 1.0) ?(n_commodities = 1)
    ?seed ~levels (module A : Algo_intf.ALGO) =
  if levels < 1 || levels > 14 then
    invalid_arg "Adversary.zoom_line: levels must lie in [1, 14]";
  if facility_cost <= 0.0 then
    invalid_arg "Adversary.zoom_line: facility cost must be positive";
  let n_points = (1 lsl levels) + 1 in
  let positions = Array.init n_points (fun j -> float_of_int j /. float_of_int (n_points - 1)) in
  let metric = Finite_metric.line positions in
  (* Uniform size-based cost: every non-empty configuration costs
     [facility_cost] (commodity 0 is all anyone asks for, so richer
     configurations would only cost more under other families). *)
  let cost =
    Cost_function.constant ~n_commodities ~n_sites:n_points ~cost:facility_cost
  in
  let t = A.create ?seed (Problem_env.omflp metric cost) in
  let demand = Cset.singleton ~n_commodities 0 in
  let requests_rev = ref [] in
  let send site =
    let r = Request.make ~site ~demand in
    requests_rev := r :: !requests_rev;
    ignore (A.step t r)
  in
  (* Current dyadic interval as point indices [lo, hi]. *)
  let lo = ref 0 and hi = ref (n_points - 1) in
  for l = 0 to levels - 1 do
    let mid = (!lo + !hi) / 2 in
    let batch = batch_base * (1 lsl l) in
    for _ = 1 to batch do
      send mid
    done;
    (* Zoom into the half whose midpoint is farther from every facility
       the algorithm has opened so far. *)
    let run = A.run_so_far t in
    let dist_to_facilities site =
      List.fold_left
        (fun acc (f : Facility.t) ->
          Float.min acc (Finite_metric.dist metric site f.site))
        infinity run.Run.facilities
    in
    let left_mid = (!lo + mid) / 2 and right_mid = (mid + !hi) / 2 in
    if dist_to_facilities left_mid >= dist_to_facilities right_mid then
      hi := mid
    else lo := mid
  done;
  (* Final concentrated batch at the zoom point. *)
  let final = (!lo + !hi) / 2 in
  for _ = 1 to batch_base * (1 lsl levels) do
    send final
  done;
  let run = A.run_so_far t in
  let realized =
    Instance.make ~name:(Printf.sprintf "zoom-line(levels=%d)" levels) ~metric
      ~cost
      ~requests:(Array.of_list (List.rev !requests_rev))
  in
  { run; realized; zoom_point = final }
