(** HEAVY-AWARE PD — the paper's Section 5 proposal, implemented.

    "Naturally, one could simply run our algorithms in which the heavy
    commodities are excluded such that a large facility becomes one
    including all non-heavy commodities. This reflects the intuition that
    heavy commodities should be avoided as far as possible."

    The algorithm detects heavy commodities ({!Heavy.detect}), runs
    PD-OMFLP on the instance projected to the light sub-universe (its
    "large" facilities offer exactly the light commodities), and serves
    each heavy commodity with an independent per-commodity primal–dual
    OFL. On cost functions satisfying Condition 1 nothing is heavy and
    the algorithm coincides with PD-OMFLP; with heavy commodities present
    it avoids paying their surcharge in every large facility. *)

type t

val name : string
val family : Omflp_instance.Problem_env.Family.t

val create : ?seed:int -> Omflp_instance.Problem_env.t -> t

(** [create_with_heavy ~heavy metric cost] overrides detection. *)
val create_with_heavy :
  heavy:Omflp_commodity.Cset.t -> Omflp_instance.Problem_env.t -> t

val step : t -> Omflp_instance.Request.t -> Service.t

(** Batch variant of {!step}; decisions are exactly those of folding
    [step] left to right. *)
val step_batch : t -> Omflp_instance.Request.t array -> Service.t array
val run_so_far : t -> Run.t
val store : t -> Facility_store.t

(** See {!Algo_intf.ALGO}: byte-identical continuation. The blob records
    the heavy set itself, so runs started with {!create_with_heavy}
    restore faithfully without re-running detection. *)
val snapshot : t -> string

val restore : Omflp_instance.Problem_env.t -> string -> t

(** [heavy_set t] is the commodity set treated as heavy. *)
val heavy_set : t -> Omflp_commodity.Cset.t
