open Omflp_commodity
open Omflp_metric
open Omflp_obs

let m_openings = Metrics.counter "index.openings"

let m_cell_updates = Metrics.counter "index.cell_updates"

(* Parallel unboxed arrays instead of (float * int) tuples: the PD/RAND
   step loops read distances far more often than ids, and a float array
   row is a flat scan with no pointer chasing or tuple allocation. *)
type t = {
  n_commodities : int;
  n_sites : int;
  dist : float array array; (* [commodity].(site) -> d(F(e), site) *)
  id : int array array; (* [commodity].(site) -> facility id, -1 if none *)
  dist_large : float array; (* site -> d(F^, site) *)
  id_large : int array;
}

let create ~n_commodities ~n_sites =
  {
    n_commodities;
    n_sites;
    dist = Array.init n_commodities (fun _ -> Array.make n_sites infinity);
    id = Array.init n_commodities (fun _ -> Array.make n_sites (-1));
    dist_large = Array.make n_sites infinity;
    id_large = Array.make n_sites (-1);
  }

let note_opened t metric ~site ~offered ~id =
  Metrics.incr m_openings;
  (* One metric row serves the whole update: row.(p) = dist p site by
     symmetry. Looping commodity-major over that row keeps each table
     row hot in cache. *)
  let row = Finite_metric.row metric site in
  let updates = ref 0 in
  Cset.iter
    (fun e ->
      let de = t.dist.(e) and ide = t.id.(e) in
      for p = 0 to t.n_sites - 1 do
        let d = row.(p) in
        if d < de.(p) then begin
          de.(p) <- d;
          ide.(p) <- id;
          incr updates
        end
      done)
    offered;
  if Cset.is_full offered then begin
    let dl = t.dist_large and il = t.id_large in
    for p = 0 to t.n_sites - 1 do
      let d = row.(p) in
      if d < dl.(p) then begin
        dl.(p) <- d;
        il.(p) <- id;
        incr updates
      end
    done
  end;
  Metrics.add m_cell_updates !updates

(* Queries are deliberately uncounted: they sit in the innermost event
   loops and must stay raw array reads. *)
let dist t ~commodity ~site = t.dist.(commodity).(site)

let id t ~commodity ~site = t.id.(commodity).(site)

let dist_large t ~site = t.dist_large.(site)

let id_large t ~site = t.id_large.(site)

(* Read-only row views for hot loops that scan a commodity's whole
   distance row; callers must not mutate. *)
let dist_row t ~commodity = t.dist.(commodity)

let dist_large_row t = t.dist_large
