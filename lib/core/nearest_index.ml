open Omflp_commodity
open Omflp_metric
open Omflp_obs

let m_openings = Metrics.counter "index.openings"

let m_cell_updates = Metrics.counter "index.cell_updates"

(* Single flat unboxed arrays instead of per-commodity rows: cell
   (commodity e, site p) lives at [e * n_sites + p]. The PD/RAND step
   loops read distances far more often than ids, and a flat float array
   scan has no pointer chasing, no outer-array bounds check, and no tuple
   allocation. *)
type t = {
  n_commodities : int;
  n_sites : int;
  dist : float array; (* (commodity * n_sites + site) -> d(F(e), site) *)
  id : int array; (* (commodity * n_sites + site) -> facility id, -1 if none *)
  dist_large : float array; (* site -> d(F^, site) *)
  id_large : int array;
}

let create ~n_commodities ~n_sites =
  {
    n_commodities;
    n_sites;
    dist = Array.make (max 1 (n_commodities * n_sites)) infinity;
    id = Array.make (max 1 (n_commodities * n_sites)) (-1);
    dist_large = Array.make (max 1 n_sites) infinity;
    id_large = Array.make (max 1 n_sites) (-1);
  }

let note_opened t metric ~site ~offered ~id =
  Metrics.incr m_openings;
  (* One metric row serves the whole update: row.(p) = dist p site by
     symmetry. Looping commodity-major keeps each table segment hot in
     cache. The select style (compare once, conditional-move both cells)
     keeps the scan flat; ties keep the earlier opening via strict [<]. *)
  let row = Finite_metric.row metric site in
  let updates = ref 0 in
  let n = t.n_sites in
  let de = t.dist and ide = t.id in
  Cset.iter
    (fun e ->
      let base = e * n in
      for p = 0 to n - 1 do
        let d = Array.unsafe_get row p in
        let j = base + p in
        let smaller = d < Array.unsafe_get de j in
        if smaller then begin
          Array.unsafe_set de j d;
          Array.unsafe_set ide j id;
          incr updates
        end
      done)
    offered;
  if Cset.is_full offered then begin
    let dl = t.dist_large and il = t.id_large in
    for p = 0 to n - 1 do
      let d = Array.unsafe_get row p in
      let smaller = d < Array.unsafe_get dl p in
      if smaller then begin
        Array.unsafe_set dl p d;
        Array.unsafe_set il p id;
        incr updates
      end
    done
  end;
  Metrics.add m_cell_updates !updates

(* Queries are deliberately uncounted: they sit in the innermost event
   loops and must stay raw array reads. *)
let dist t ~commodity ~site = t.dist.((commodity * t.n_sites) + site)

let id t ~commodity ~site = t.id.((commodity * t.n_sites) + site)

let dist_large t ~site = t.dist_large.(site)

let id_large t ~site = t.id_large.(site)

(* Read-only flat views for hot loops; commodity [e]'s row starts at
   [row_base t ~commodity:e]. Callers must not mutate. *)
let flat_dist t = t.dist

let flat_id t = t.id

let row_base t ~commodity = commodity * t.n_sites

let dist_large_row t = t.dist_large

let id_large_row t = t.id_large
