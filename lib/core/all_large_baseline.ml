open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance

type past = { site : int; dual : float }

type t = {
  metric : Finite_metric.t;
  cost : Cost_function.t;
  store : Facility_store.t;
  (* f4.(m) = full opening cost at m; bids is per-step scratch. Both the
     table and the outer-past/inner-site bid accumulation below add the
     same float terms in the same per-cell order as the historical
     per-site fold, so decisions are bit-identical. *)
  f4 : float array;
  bids : float array;
  mutable past : past list;
  mutable n_requests : int;
}

let name = "ALL-LARGE"
let family = Problem_env.Family.Omflp

let create ?seed:_ env =
  let metric, cost = Problem_env.require_omflp ~algo:name env in
  let n_sites = Finite_metric.size metric in
  {
    metric;
    cost;
    store =
      Facility_store.create env
        ~n_commodities:(Cost_function.n_commodities cost);
    f4 = Array.init n_sites (fun m -> Cost_function.full_cost cost m);
    bids = Array.make n_sites 0.0;
    past = [];
    n_requests = 0;
  }

let step t (r : Request.t) =
  let n_sites = Finite_metric.size t.metric in
  let connect_at = Facility_store.dist_large t.store ~from:r.site in
  let bids = t.bids in
  Array.fill bids 0 n_sites 0.0;
  List.iter
    (fun p ->
      let cap =
        Float.min p.dual (Facility_store.dist_large t.store ~from:p.site)
      in
      let row_p = Finite_metric.row t.metric p.site in
      for m = 0 to n_sites - 1 do
        bids.(m) <- bids.(m) +. Numerics.pos (cap -. row_p.(m))
      done)
    t.past;
  let row_r = Finite_metric.row t.metric r.site in
  let best_site = ref (-1) in
  let best_open = ref infinity in
  for m = 0 to n_sites - 1 do
    let open_at = row_r.(m) +. Numerics.pos (t.f4.(m) -. bids.(m)) in
    if open_at < !best_open then begin
      best_open := open_at;
      best_site := m
    end
  done;
  let dual = Float.min connect_at !best_open in
  if !best_open < connect_at then
    ignore
      (Facility_store.open_facility t.store ~site:!best_site ~kind:Facility.Large
         ~cost:t.f4.(!best_site) ~opened_at:t.n_requests);
  t.past <- { site = r.site; dual } :: t.past;
  let fac, _ = Option.get (Facility_store.nearest_large t.store ~from:r.site) in
  let service = Service.To_single fac.Facility.id in
  Facility_store.record_service t.store ~request_site:r.site service;
  t.n_requests <- t.n_requests + 1;
  service

let step_batch t reqs = Algo_intf.batch_of_step ~step t reqs

let run_so_far t = Run.of_store ~algorithm:name t.store
let store t = t.store

(* Persisted: the dual history plus the store; the f4 table and bid
   scratch are rebuilt. *)

let snapshot_tag = "omflp.snap.all-large.v2"

let w_past b (p : past) =
  Snapshot_codec.w_int b p.site;
  Snapshot_codec.w_float b p.dual

let r_past r =
  let site = Snapshot_codec.r_int r in
  let dual = Snapshot_codec.r_float r in
  { site; dual }

let snapshot t =
  Snapshot_codec.encode ~tag:snapshot_tag (fun b ->
      Snapshot_codec.w_list w_past b t.past;
      Facility_store.write_persisted b (Facility_store.persist t.store);
      Snapshot_codec.w_int b t.n_requests)

let restore env blob =
  Snapshot_codec.decode ~tag:snapshot_tag
    (fun r ->
      let z_past = Snapshot_codec.r_list r_past r in
      let z_store = Facility_store.read_persisted r in
      let n_requests = Snapshot_codec.r_int r in
      let t = create env in
      {
        t with
        past = z_past;
        store = Facility_store.of_persisted env z_store;
        n_requests;
      })
    blob
