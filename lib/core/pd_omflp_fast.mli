(** PD-OMFLP with incremental bid maintenance — the same algorithm as
    {!Pd_omflp} (identical decisions up to floating-point summation
    order), with per-request work reduced from O(|s_r|·|M|·n) to
    amortized O((|s_r| + opened)·|M|). *)

type t = Pd_omflp.t

val name : string
val family : Omflp_instance.Problem_env.Family.t

val create : ?seed:int -> Omflp_instance.Problem_env.t -> t

val step : t -> Omflp_instance.Request.t -> Service.t

(** Batch variant of {!step}; decisions are exactly those of folding
    [step] left to right. Amortizes metric-row cache warming across the
    batch. *)
val step_batch : t -> Omflp_instance.Request.t array -> Service.t array
val run_so_far : t -> Run.t
val store : t -> Facility_store.t

(** {!Pd_omflp.snapshot} / {!Pd_omflp.restore_incremental}: blobs are
    shared with the recomputing module but mode-checked on restore. *)
val snapshot : t -> string

val restore : Omflp_instance.Problem_env.t -> string -> t
