(** INDEP — the trivial baseline of Section 1.3: one independent instance
    of (deterministic, primal–dual) Online Facility Location per
    commodity, each opening only small facilities with cost [f^{{e}}_m].
    O(|S| · log n)-competitive; never aggregates commodities, so the
    Theorem 2 adversary forces a Θ(√|S|) gap against PD-OMFLP. *)

type t

val name : string
val family : Omflp_instance.Problem_env.Family.t

val create : ?seed:int -> Omflp_instance.Problem_env.t -> t

val step : t -> Omflp_instance.Request.t -> Service.t

(** Batch variant of {!step}; decisions are exactly those of folding
    [step] left to right. *)
val step_batch : t -> Omflp_instance.Request.t array -> Service.t array
val run_so_far : t -> Run.t
val store : t -> Facility_store.t

(** See {!Algo_intf.ALGO}: byte-identical continuation. *)
val snapshot : t -> string

val restore : Omflp_instance.Problem_env.t -> string -> t
