open Omflp_prelude
open Omflp_commodity
open Omflp_instance

(* NONMETRIC-BF — deterministic online non-metric facility location in
   the style of Bienkowski–Feldkord (arXiv:2007.07025): connection costs
   come from an arbitrary non-negative matrix, so nearest-index tricks
   (which assume the triangle inequality) are off the table and the
   algorithm works on the covering formulation instead.

   Per (commodity, site) it maintains a monotone fractional opening
   variable x_{e,m}, raised by the classic multiplicative-update rule for
   online set cover against weights w_m = f^{{e}}_m + conn(m, r) whenever
   the arriving (request, commodity) pair is not yet fractionally
   covered. Deterministic threshold rounding opens a singleton facility
   once its variable reaches 1/2. Whatever demand is still integrally
   uncovered afterwards is closed by one greedy weighted-cover step over
   candidate configurations ({e} and the full uncovered bundle per site)
   via {!Omflp_covering.Set_cover}, which also gives the multi-commodity
   bundling the single-commodity covering scheme lacks. *)

type t = {
  cost : Cost_function.t;
  conn : float array array; (* conn.(facility_site).(request_site) *)
  env : Problem_env.t;
  store : Facility_store.t;
  s : int;
  n_sites : int;
  f3 : float array array; (* f3.(e).(m) = f^{{e}}_m *)
  x : float array array; (* fractional openings, s × n_sites *)
  opened : bool array array; (* Small-e facility already at m? s × n_sites *)
  mutable n_requests : int;
}

let name = "NONMETRIC-BF"
let family = Problem_env.Family.Nonmetric_fl

let create ?seed:_ env =
  let _metric, cost, conn = Problem_env.require_nonmetric ~algo:name env in
  let s = Cost_function.n_commodities cost in
  let n_sites = Cost_function.n_sites cost in
  {
    cost;
    conn;
    env;
    store = Facility_store.create env ~n_commodities:s;
    s;
    n_sites;
    f3 =
      Array.init s (fun e ->
          Array.init n_sites (fun m -> Cost_function.singleton_cost cost m e));
    x = Array.make_matrix s n_sites 0.0;
    opened = Array.make_matrix s n_sites false;
    n_requests = 0;
  }

(* Cheapest open facility offering [e] for a request at [site]: minimal
   connection cost, ties to the earliest opening. Linear scan — no
   triangle inequality, so no index can answer this. *)
let best_open t ~commodity ~site =
  List.fold_left
    (fun acc (f : Facility.t) ->
      if Cset.mem f.Facility.offered commodity then
        let c = t.conn.(f.Facility.site).(site) in
        match acc with
        | Some (_, best) when best <= c -> acc
        | _ -> Some (f.Facility.id, c)
      else acc)
    None
    (Facility_store.facilities t.store)

let fractional_round t ~site e =
  let xs = t.x.(e) and f3e = t.f3.(e) in
  let coverage () =
    let acc = ref 0.0 in
    for m = 0 to t.n_sites - 1 do
      acc := !acc +. Float.min 1.0 xs.(m)
    done;
    !acc
  in
  let guard = ref 0 in
  while coverage () < 1.0 && !guard < 128 do
    incr guard;
    for m = 0 to t.n_sites - 1 do
      let w = f3e.(m) +. t.conn.(m).(site) in
      let inv = if w > 0.0 then 1.0 /. w else 1e18 in
      xs.(m) <-
        (xs.(m) *. (1.0 +. inv)) +. (inv /. float_of_int t.n_sites)
    done
  done;
  (* Threshold rounding: open every singleton whose variable crossed. *)
  for m = 0 to t.n_sites - 1 do
    if xs.(m) >= 0.5 && not t.opened.(e).(m) then begin
      t.opened.(e).(m) <- true;
      ignore
        (Facility_store.open_facility t.store ~site:m ~kind:(Facility.Small e)
           ~cost:f3e.(m) ~opened_at:t.n_requests)
    end
  done

(* Greedy weighted cover over the still-uncovered demand: candidate sets
   are, per site, each uncovered singleton and the whole uncovered bundle. *)
let cover_remaining t ~site uncovered =
  let u = List.filter (fun e -> best_open t ~commodity:e ~site = None) uncovered in
  if u <> [] then begin
    let target = Bitset.of_list t.s u in
    let candidates = ref [] in
    for m = t.n_sites - 1 downto 0 do
      List.iter
        (fun e ->
          candidates :=
            ( Omflp_covering.Set_cover.
                {
                  weight = t.f3.(e).(m) +. t.conn.(m).(site);
                  members = Bitset.singleton t.s e;
                },
              (m, `Single e) )
            :: !candidates)
        u;
      if List.length u >= 2 then begin
        let sigma = Cset.of_list ~n_commodities:t.s u in
        candidates :=
          ( Omflp_covering.Set_cover.
              {
                weight = Cost_function.eval t.cost m sigma +. t.conn.(m).(site);
                members = Bitset.of_list t.s u;
              },
            (m, `Bundle sigma) )
          :: !candidates
      end
    done;
    let sets = Array.of_list (List.map fst !candidates) in
    let meta = Array.of_list (List.map snd !candidates) in
    let picks, _ = Omflp_covering.Set_cover.greedy_partial ~target sets in
    List.iter
      (fun i ->
        let m, what = meta.(i) in
        match what with
        | `Single e ->
            if not t.opened.(e).(m) then begin
              t.opened.(e).(m) <- true;
              ignore
                (Facility_store.open_facility t.store ~site:m
                   ~kind:(Facility.Small e) ~cost:t.f3.(e).(m)
                   ~opened_at:t.n_requests)
            end
        | `Bundle sigma ->
            ignore
              (Facility_store.open_facility t.store ~site:m
                 ~kind:(Facility.Custom sigma)
                 ~cost:(Cost_function.eval t.cost m sigma)
                 ~opened_at:t.n_requests))
      (List.sort compare picks)
  end

let step t (r : Request.t) =
  let site = r.Request.site in
  let demand = Cset.elements r.Request.demand in
  (* Fractional progress + threshold openings only for commodities no
     open facility offers yet. *)
  List.iter
    (fun e ->
      if best_open t ~commodity:e ~site = None then fractional_round t ~site e)
    demand;
  cover_remaining t ~site demand;
  let pairs =
    List.map
      (fun e ->
        match best_open t ~commodity:e ~site with
        | Some (id, _) -> (e, id)
        | None -> assert false (* cover_remaining closed the gap *))
      demand
  in
  let service = Service.Per_commodity pairs in
  Facility_store.record_service t.store ~request_site:site service;
  t.n_requests <- t.n_requests + 1;
  service

let step_batch t reqs = Algo_intf.batch_of_step ~step t reqs
let run_so_far t = Run.of_store ~algorithm:name t.store
let store t = t.store

(* Persisted: the fractional matrix, the store, and the clock. The
   [opened] flags are a pure function of the store and are rebuilt. *)

let snapshot_tag = "omflp.snap.nonmetric-bf.v2"

let snapshot t =
  Snapshot_codec.encode ~tag:snapshot_tag (fun b ->
      Snapshot_codec.w_array Snapshot_codec.w_float_array b t.x;
      Facility_store.write_persisted b (Facility_store.persist t.store);
      Snapshot_codec.w_int b t.n_requests)

let restore env blob =
  Snapshot_codec.decode ~tag:snapshot_tag
    (fun r ->
      let z_x = Snapshot_codec.r_array Snapshot_codec.r_float_array r in
      let z_store = Facility_store.read_persisted r in
      let n_requests = Snapshot_codec.r_int r in
      let t = create env in
      if Array.length z_x <> t.s then
        failwith "Nonmetric_bf.restore: commodity count mismatch";
      Array.iteri
        (fun e row ->
          if Array.length row <> t.n_sites then
            failwith "Nonmetric_bf.restore: site count mismatch";
          Array.blit row 0 t.x.(e) 0 t.n_sites)
        z_x;
      let t = { t with store = Facility_store.of_persisted env z_store; n_requests } in
      List.iter
        (fun (f : Facility.t) ->
          match f.Facility.kind with
          | Facility.Small e -> t.opened.(e).(f.Facility.site) <- true
          | _ -> ())
        (Facility_store.facilities t.store);
      t)
    blob
