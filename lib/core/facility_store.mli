(** Mutable bookkeeping shared by every online algorithm: the set of open
    facilities, nearest-facility distance tables, and cost accounting.

    Distance tables are maintained per commodity and for large facilities
    ([F(e)] and [F̂] of the paper) by an incremental {!Nearest_index}, so
    algorithms query nearest facilities in O(1) and pay O(|σ| · |M|) once
    per opening. *)

type t

(** [create env ~n_commodities] starts with no facilities; connection
    costs are accounted family-aware via the environment. The nearest
    index always runs on the environment's metric (non-metric algorithms
    scan their connection matrix themselves). *)
val create : Omflp_instance.Problem_env.t -> n_commodities:int -> t

val env : t -> Omflp_instance.Problem_env.t
val metric : t -> Omflp_metric.Finite_metric.t
val n_commodities : t -> int

(** [index t] is the store's nearest-open-facility index. Hot loops may
    read its rows directly; all updates go through {!open_facility}. *)
val index : t -> Nearest_index.t

(** [open_facility t ~site ~kind ~cost ~opened_at] registers a facility,
    pays its construction cost, updates the distance tables, and returns
    the record. *)
val open_facility :
  t -> site:int -> kind:Facility.kind -> cost:float -> opened_at:int -> Facility.t

(** [facilities t] lists open facilities in opening order. *)
val facilities : t -> Facility.t list

val n_facilities : t -> int

(** [facility t id] fetches by id. Raises [Not_found]. *)
val facility : t -> int -> Facility.t

(** [facility_site t id] is [(facility t id).site] without the option
    ceremony — for hot loops that already hold a valid id. *)
val facility_site : t -> int -> int

(** [dist_offering t ~commodity ~from] is [d(F(e), ·)]: the distance from
    site [from] to the nearest open facility offering [commodity]
    ([infinity] if none). *)
val dist_offering : t -> commodity:int -> from:int -> float

(** [nearest_offering t ~commodity ~from] also returns the facility. *)
val nearest_offering : t -> commodity:int -> from:int -> (Facility.t * float) option

(** [dist_large t ~from] is [d(F̂, ·)], distance to the nearest facility
    offering all of [S] ([infinity] if none). *)
val dist_large : t -> from:int -> float

(** [nearest_large t ~from]. *)
val nearest_large : t -> from:int -> (Facility.t * float) option

(** [record_service t ~request_site service] accounts the connection cost
    (per distinct facility) and stores the service. *)
val record_service : t -> request_site:int -> Service.t -> unit

val services : t -> Service.t list
(** in request order *)

val construction_cost : t -> float
val assignment_cost : t -> float
val total_cost : t -> float

(** {1 Persistence}

    A store's durable state as pure data, for algorithm snapshots. The
    distance tables are {e not} serialized: {!of_persisted} replays the
    opening sequence through {!Nearest_index.note_opened}, which — being
    a deterministic fold of min-updates over metric rows — rebuilds them
    bit-identically, while the cost accumulators are restored to their
    serialized values instead of being re-summed. *)

type persisted

(** [persist t] captures facilities (in opening order), services, and
    cost accumulators. *)
val persist : t -> persisted

(** [of_persisted env z] revives a store against the same environment.
    Raises [Failure] if the facility ids are not the sequential ids this
    store assigns. *)
val of_persisted : Omflp_instance.Problem_env.t -> persisted -> t

(** Snapshot codec v2 field serializers for the persisted form;
    [read_persisted] raises [Failure] on malformed bytes. *)
val write_persisted : Omflp_prelude.Snapshot_codec.writer -> persisted -> unit

val read_persisted : Omflp_prelude.Snapshot_codec.reader -> persisted
