open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance
open Omflp_ofl

module type OFL_SPEC = sig
  module A : Ofl_types.ALGORITHM

  val name : string

  (** [create ?seed ~commodity metric ~opening_costs] builds the
      commodity's single-commodity instance; randomized algorithms derive
      their stream from [seed] and [commodity]. *)
  val create :
    ?seed:int ->
    commodity:int ->
    Finite_metric.t ->
    opening_costs:float array ->
    A.t
end

module Make (S : OFL_SPEC) : Algo_intf.ALGO = struct
  (* Each commodity runs its own single-commodity OFL instance whose
     opening cost at site m is the singleton cost f^{e}_m; openings are
     mirrored into the shared Facility_store as Small facilities, so the
     joint run is validated, costed, and digested exactly like every
     native algorithm. This is the per-commodity decomposition the paper
     compares against (INDEP), but driven by the classical OFL
     algorithms themselves. *)
  type slot = {
    ofl : S.A.t;
    costs : float array; (* singleton costs of this commodity, per site *)
    mutable mirrored : int; (* prefix of OFL facilities already mirrored *)
  }

  type t = {
    metric : Finite_metric.t;
    cost : Cost_function.t;
    store : Facility_store.t;
    seed : int option;
    slots : slot option array;
    mutable n_requests : int;
  }

  let name = S.name
  let family = Problem_env.Family.Omflp

  let create ?seed env =
    let metric, cost = Problem_env.require_omflp ~algo:name env in
    {
      metric;
      cost;
      store =
        Facility_store.create env
          ~n_commodities:(Cost_function.n_commodities cost);
      seed;
      slots = Array.make (Cost_function.n_commodities cost) None;
      n_requests = 0;
    }

  let slot t e =
    match t.slots.(e) with
    | Some s -> s
    | None ->
        let costs =
          Array.init (Finite_metric.size t.metric) (fun m ->
              Cost_function.singleton_cost t.cost m e)
        in
        let s =
          {
            ofl = S.create ?seed:t.seed ~commodity:e t.metric ~opening_costs:costs;
            costs;
            mirrored = 0;
          }
        in
        t.slots.(e) <- Some s;
        s

  (* Mirror any facilities the OFL instance opened since the last sync.
     [Ofl_types.run] lists facilities in opening order, so the new ones
     are the suffix past [mirrored]. *)
  let sync_openings t e (s : slot) =
    let facs = (S.A.snapshot s.ofl).Ofl_types.facilities in
    let fresh = List.filteri (fun i _ -> i >= s.mirrored) facs in
    List.iter
      (fun site ->
        ignore
          (Facility_store.open_facility t.store ~site ~kind:(Facility.Small e)
             ~cost:s.costs.(site) ~opened_at:t.n_requests))
      fresh;
    s.mirrored <- s.mirrored + List.length fresh

  let step t (r : Request.t) =
    let pairs_rev = ref [] in
    Cset.iter
      (fun e ->
        let s = slot t e in
        ignore (S.A.step s.ofl r.site);
        sync_openings t e s;
        let fac, _ =
          (* The OFL algorithm just served this request, so some facility
             offering [e] is open. *)
          Option.get
            (Facility_store.nearest_offering t.store ~commodity:e ~from:r.site)
        in
        pairs_rev := (e, fac.Facility.id) :: !pairs_rev)
      r.demand;
    let service = Service.Per_commodity (List.rev !pairs_rev) in
    Facility_store.record_service t.store ~request_site:r.site service;
    t.n_requests <- t.n_requests + 1;
    service

  let step_batch t reqs = Algo_intf.batch_of_step ~step t reqs

  let run_so_far t = Run.of_store ~algorithm:name t.store
  let store t = t.store

  (* Persisted: the creation seed (so commodities first requested after a
     restore derive the same per-commodity streams), the shared store, and
     each live slot as (inner OFL blob, mirrored prefix length). Slot
     opening-cost tables are pure and rebuilt. *)

  let snapshot_tag = "omflp.snap.ofl-adapter." ^ S.name ^ ".v2"

  let snapshot t =
    Snapshot_codec.encode ~tag:snapshot_tag (fun b ->
        Snapshot_codec.w_opt Snapshot_codec.w_int b t.seed;
        Facility_store.write_persisted b (Facility_store.persist t.store);
        Snapshot_codec.w_array
          (Snapshot_codec.w_opt (fun b s ->
               Snapshot_codec.w_string b (S.A.save_state s.ofl);
               Snapshot_codec.w_int b s.mirrored))
          b t.slots;
        Snapshot_codec.w_int b t.n_requests)

  let restore env blob =
    Snapshot_codec.decode ~tag:snapshot_tag
      (fun r ->
        let z_seed = Snapshot_codec.r_opt Snapshot_codec.r_int r in
        let z_store = Facility_store.read_persisted r in
        let z_slots =
          Snapshot_codec.r_array
            (Snapshot_codec.r_opt (fun r ->
                 let blob = Snapshot_codec.r_string r in
                 let mirrored = Snapshot_codec.r_int r in
                 (blob, mirrored)))
            r
        in
        let z_n_requests = Snapshot_codec.r_int r in
        let t = create ?seed:z_seed env in
        if Array.length z_slots <> Array.length t.slots then
          failwith
            (Printf.sprintf
               "%s.restore: snapshot has %d commodities, cost function has %d"
               S.name (Array.length z_slots) (Array.length t.slots));
        Array.iteri
          (fun e zs ->
            match zs with
            | None -> ()
            | Some (ofl_blob, mirrored) ->
                let costs =
                  Array.init (Finite_metric.size t.metric) (fun m ->
                      Cost_function.singleton_cost t.cost m e)
                in
                let ofl =
                  S.A.restore_state t.metric ~opening_costs:costs ofl_blob
                in
                t.slots.(e) <- Some { ofl; costs; mirrored })
          z_slots;
        {
          t with
          store = Facility_store.of_persisted env z_store;
          n_requests = z_n_requests;
        })
      blob
end

module Meyerson_ofl = Make (struct
  module A = Meyerson

  let name = "MEYERSON-OFL"

  let create ?seed ~commodity metric ~opening_costs =
    let base = Option.value seed ~default:0x4d455945 in
    A.create_seeded metric ~opening_costs
      ~rng:(Splitmix.of_int (base + (7919 * (commodity + 1))))
end)

module Fotakis_ofl = Make (struct
  module A = Fotakis_pd

  let name = "FOTAKIS-OFL"

  let create ?seed:_ ~commodity:_ metric ~opening_costs =
    A.create metric ~opening_costs
end)
