(** NONMETRIC-BF — deterministic online non-metric facility location
    after Bienkowski–Feldkord (arXiv:2007.07025): multiplicative-update
    fractional covering per (commodity, site) with deterministic
    threshold rounding, plus one greedy weighted-cover step
    ({!Omflp_covering.Set_cover}) to close any integrally uncovered
    demand. Declares the [Nonmetric_fl] family; connection costs come
    from the environment's raw matrix. *)

type t

val name : string
val family : Omflp_instance.Problem_env.Family.t
val create : ?seed:int -> Omflp_instance.Problem_env.t -> t
val step : t -> Omflp_instance.Request.t -> Service.t

(** Batch variant of {!step}; decisions are exactly those of folding
    [step] left to right. *)
val step_batch : t -> Omflp_instance.Request.t array -> Service.t array

val run_so_far : t -> Run.t
val store : t -> Facility_store.t

(** See {!Algo_intf.ALGO}: byte-identical continuation. *)
val snapshot : t -> string

val restore : Omflp_instance.Problem_env.t -> string -> t
