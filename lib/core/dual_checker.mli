(** Executable checks of the PD-OMFLP analysis (Section 3.2).

    These turn the paper's lemmas into machine-checked run invariants:
    Corollary 8 bounds the algorithm's cost by the dual objective, and
    Corollary 17 states that the duals scaled by
    [γ = 1 / (5 √|S| H_n)] are dual-feasible — which by weak duality makes
    [γ · Σ a_re] a lower bound on OPT. *)

(** [gamma ~n_commodities ~n_requests] is the paper's scaling factor. *)
val gamma : n_commodities:int -> n_requests:int -> float

(** [corollary8 t] checks total cost ≤ 3 Σ_r Σ_e a_re (with tolerance). *)
val corollary8 : Pd_omflp.t -> (unit, string) result

(** [exhaustive_limit] is the commodity-universe size (10) up to which
    {!default_configs} enumerates every non-empty subset — at most
    [2^10 − 1 = 1023] configurations per site. Above it the enumeration
    would blow up exponentially, so only the structurally relevant
    configurations are kept. *)
val exhaustive_limit : int

(** [default_configs ~n_commodities] is the configuration list
    {!scaled_dual_feasible} checks when [?configs] is omitted: every
    non-empty subset when [n_commodities ≤ exhaustive_limit]
    ([2^k − 1] sets, bit-pattern order), otherwise the full set [S]
    followed by the [k] singletons [{0}, …, {k−1}] — the only
    configurations the online algorithms ever open. *)
val default_configs : n_commodities:int -> Omflp_commodity.Cset.t list

(** [scaled_dual_feasible ?configs ?scale metric cost records] checks the
    simplified dual constraint
    [Σ_r (Σ_{e ∈ s_r ∩ σ} scale·a_re − d(m,r))₊ ≤ f^σ_m]
    for every site [m] and every configuration in [configs] (default:
    {!default_configs}). [scale] defaults to {!gamma}. Returns the first
    violation. *)
val scaled_dual_feasible :
  ?configs:Omflp_commodity.Cset.t list ->
  ?scale:float ->
  Omflp_metric.Finite_metric.t ->
  Omflp_commodity.Cost_function.t ->
  Pd_omflp.dual_record list ->
  (unit, int * Omflp_commodity.Cset.t) result

(** [dual_lower_bound t] is [γ · Σ_r Σ_e a_re] — by Corollary 17 and weak
    duality a lower bound on OPT for this instance. *)
val dual_lower_bound : Pd_omflp.t -> float
