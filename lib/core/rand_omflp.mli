(** RAND-OMFLP — the paper's randomized algorithm (Algorithm 2),
    O(√|S| · log n / log log n)-competitive in expectation.

    Facility costs are rounded down to powers of two and grouped into
    classes per configuration (only singletons and the full set matter).
    On an arrival the expected connection cost
    [min{X(r), Z(r)}] is matched, in expectation, by the amounts spent on
    small and large facilities: every class receives a share proportional
    to the distance improvement it would bring, divided by its cost
    (Lemma 20's balance). A deterministic fallback opens the facility
    realizing [X(r,e)] when the coin flips left a commodity unserveable —
    this never exceeds what the analysis already charges. *)

type t

val name : string
val family : Omflp_instance.Problem_env.Family.t

val create : ?seed:int -> Omflp_instance.Problem_env.t -> t

val step : t -> Omflp_instance.Request.t -> Service.t

(** Batch variant of {!step}; decisions are exactly those of folding
    [step] left to right. *)
val step_batch : t -> Omflp_instance.Request.t array -> Service.t array

val run_so_far : t -> Run.t

val store : t -> Facility_store.t

(** See {!Algo_intf.ALGO}: byte-identical continuation; the blob carries
    the RNG position, so the restored run continues the coin-flip stream
    exactly where the snapshot left it (the creation seed is not
    consulted again). *)
val snapshot : t -> string

val restore : Omflp_instance.Problem_env.t -> string -> t
