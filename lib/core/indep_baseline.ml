open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance

type past = { site : int; dual : float }

type t = {
  metric : Finite_metric.t;
  cost : Cost_function.t;
  store : Facility_store.t;
  past : past list array;  (** per commodity, newest first *)
  (* f3.(e).(m) = opening cost of {e} at m, built lazily per commodity on
     first demand; bids is per-serve scratch. The outer-past/inner-site
     accumulation below adds the same float terms per cell in the same
     order as the historical per-site fold — decisions are
     bit-identical. *)
  f3 : float array option array;
  bids : float array;
  mutable n_requests : int;
}

let name = "INDEP"
let family = Problem_env.Family.Omflp

let create ?seed:_ env =
  let metric, cost = Problem_env.require_omflp ~algo:name env in
  let n_commodities = Cost_function.n_commodities cost in
  {
    metric;
    cost;
    store = Facility_store.create env ~n_commodities;
    past = Array.make n_commodities [];
    f3 = Array.make n_commodities None;
    bids = Array.make (Finite_metric.size metric) 0.0;
    n_requests = 0;
  }

let f3_row t e =
  match t.f3.(e) with
  | Some row -> row
  | None ->
      let row =
        Array.init (Finite_metric.size t.metric) (fun m ->
            Cost_function.singleton_cost t.cost m e)
      in
      t.f3.(e) <- Some row;
      row

(* One Fotakis primal–dual step for a single commodity: the request either
   connects at the nearest facility's distance or its bid completes the
   payment of a facility at some site. *)
let serve_commodity t ~site e =
  let n_sites = Finite_metric.size t.metric in
  let connect_at = Facility_store.dist_offering t.store ~commodity:e ~from:site in
  let bids = t.bids in
  Array.fill bids 0 n_sites 0.0;
  List.iter
    (fun p ->
      let cap =
        Float.min p.dual
          (Facility_store.dist_offering t.store ~commodity:e ~from:p.site)
      in
      let row_p = Finite_metric.row t.metric p.site in
      for m = 0 to n_sites - 1 do
        bids.(m) <- bids.(m) +. Numerics.pos (cap -. row_p.(m))
      done)
    t.past.(e);
  let f3e = f3_row t e in
  let row_r = Finite_metric.row t.metric site in
  let best_site = ref (-1) in
  let best_open = ref infinity in
  for m = 0 to n_sites - 1 do
    let open_at = row_r.(m) +. Numerics.pos (f3e.(m) -. bids.(m)) in
    if open_at < !best_open then begin
      best_open := open_at;
      best_site := m
    end
  done;
  let dual = Float.min connect_at !best_open in
  if !best_open < connect_at then
    ignore
      (Facility_store.open_facility t.store ~site:!best_site
         ~kind:(Facility.Small e) ~cost:f3e.(!best_site)
         ~opened_at:t.n_requests);
  t.past.(e) <- { site; dual } :: t.past.(e);
  let fac, _ =
    Option.get (Facility_store.nearest_offering t.store ~commodity:e ~from:site)
  in
  (e, fac.Facility.id)

let step t (r : Request.t) =
  let pairs =
    List.map (serve_commodity t ~site:r.site) (Cset.elements r.demand)
  in
  let service = Service.Per_commodity pairs in
  Facility_store.record_service t.store ~request_site:r.site service;
  t.n_requests <- t.n_requests + 1;
  service

let step_batch t reqs = Algo_intf.batch_of_step ~step t reqs

let run_so_far t = Run.of_store ~algorithm:name t.store
let store t = t.store

(* Persisted: per-commodity dual history plus the store; the lazy f3
   rows and the bid scratch are rebuilt. *)

let snapshot_tag = "omflp.snap.indep.v2"

let w_past b (p : past) =
  Snapshot_codec.w_int b p.site;
  Snapshot_codec.w_float b p.dual

let r_past r =
  let site = Snapshot_codec.r_int r in
  let dual = Snapshot_codec.r_float r in
  { site; dual }

let snapshot t =
  Snapshot_codec.encode ~tag:snapshot_tag (fun b ->
      Snapshot_codec.w_array (Snapshot_codec.w_list w_past) b t.past;
      Facility_store.write_persisted b (Facility_store.persist t.store);
      Snapshot_codec.w_int b t.n_requests)

let restore env blob =
  Snapshot_codec.decode ~tag:snapshot_tag
    (fun r ->
      let z_past = Snapshot_codec.r_array (Snapshot_codec.r_list r_past) r in
      let z_store = Facility_store.read_persisted r in
      let n_requests = Snapshot_codec.r_int r in
      let t = create env in
      if Array.length z_past <> Array.length t.past then
        failwith "Indep_baseline.restore: commodity count mismatch";
      Array.blit z_past 0 t.past 0 (Array.length t.past);
      {
        t with
        store = Facility_store.of_persisted env z_store;
        n_requests;
      })
    blob
