open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance
open Omflp_obs

(* Work counters (lib/obs): shared by the recomputing and incremental
   modes (PD-OMFLP and PD-OMFLP-FAST run the identical event loop).
   [pd.loop_iters] counts event-loop iterations, which fire exactly one
   tightness event each, so it always equals the sum of the four
   [pd.event.*] counters; [pd.facilities_opened] counts confirmed
   openings only (trace [Opened_small] events of a request that ended in
   a large facility are discarded tentatives). *)
let m_requests = Metrics.counter "pd.requests"

let m_loop_iters = Metrics.counter "pd.loop_iters"

let m_connect_small = Metrics.counter "pd.event.connect_small"

let m_open_small = Metrics.counter "pd.event.open_small"

let m_connect_large = Metrics.counter "pd.event.connect_large"

let m_open_large = Metrics.counter "pd.event.open_large"

let m_facilities_opened = Metrics.counter "pd.facilities_opened"

let m_cache_updates = Metrics.counter "pd.cache_updates"

type dual_record = {
  site : int;
  demand : Cset.t;
  duals : float array;
  dual_sum : float;
}

type fired =
  | Connected_small of { commodity : int; facility : int; dual : float }
  | Opened_small of { commodity : int; site : int; dual : float }
  | Connected_large of { facility : int; dual_sum : float }
  | Opened_large of { site : int; dual_sum : float }

(* Local positive part for the innermost loops. [Numerics.pos] is a
   cross-module call, which without flambda boxes its float argument and
   result on every call — millions per run from here. A same-module
   single-comparison version stays inline and keeps the floats unboxed;
   the produced values are identical for every non-NaN input ([Float.max]
   and the branch agree on signed zeros), which the golden decision
   digests pin. *)
let[@inline] pos x = if x > 0.0 then x else 0.0

(* Past requests live in struct-of-arrays form, oldest first: request j's
   scalars sit at index j of [p_site]/[p_demand]/[p_dual_sum]/[p_cap4],
   its per-commodity duals and bid caps in the flat rows
   [j*s .. j*s + s - 1] of [p_duals]/[p_caps] ([caps] holds, per demanded
   commodity, the value min{a_je, d(F(e), j)} currently accounted in the
   incremental bid caches; [cap4] the min{Σ a_je, d(F̂, j)} analogue).
   Every history walk runs newest-first ([for j = n_past-1 downto 0]) to
   preserve the float summation order of the previous cons-list
   representation, which the golden decision digests pin. *)
type t = {
  metric : Finite_metric.t;
  cost : Cost_function.t;
  store : Facility_store.t;
  s : int; (* number of commodities *)
  n_sites : int;
  mutable n_past : int;
  mutable p_site : int array;
  mutable p_demand : Cset.t array;
  mutable p_dual_sum : float array;
  mutable p_cap4 : float array;
  mutable p_duals : float array; (* flat n_past x s *)
  mutable p_caps : float array; (* flat n_past x s *)
  mutable trace_rev : fired list list;
  mutable n_requests : int;
  (* Incremental mode: bid sums are maintained across arrivals instead of
     being recomputed from the whole history. [b3_cache.(e*n_sites + m)]
     is the constraint-(3) bid sum of all past requests towards a small
     facility {e} at site m; [b4_cache.(m)] the constraint-(4)
     analogue. *)
  incremental : bool;
  b3_cache : float array;
  b4_cache : float array;
  (* Hot-path tables and scratch, set up once at creation.
     [f3.(e).(m)] = singleton opening cost of {e} at m (rows built
     lazily on a commodity's first demand), [f4.(m)] = full cost at m:
     the event loop probes these every iteration and
     [Cost_function.singleton_cost] allocates a fresh commodity set per
     call, so the table turns an allocating closure dispatch into an
     array read (identical float values — the cost function is pure).
     The [scratch_*] buffers and recompute-mode bid accumulators
     ([b3_scratch] rows indexed by position in the request's demand) are
     reused across [step] calls; the request's own duals and caps are
     written directly into their [p_duals]/[p_caps] rows, so a step
     allocates nothing on the event path. [scratch_fb] carries floats
     across the [consider] call boundary unboxed: slot 0 the candidate
     delta, slot 1 the best delta, slot 2 the running dual sum. *)
  f3 : float array option array;
  f4 : float array;
  b3_scratch : float array;
  b4_scratch : float array;
  scratch_es : int array;
  scratch_serving_kind : int array; (* 0 unserved / 1 existing / 2 temp *)
  scratch_serving_id : int array; (* facility id (1) or temp site (2) *)
  scratch_unserved : int array;
  scratch_fb : float array;
}

let name = "PD-OMFLP"
let family = Problem_env.Family.Omflp

let create_mode ~incremental env =
  let metric, cost = Problem_env.require_omflp ~algo:name env in
  let n_commodities = Cost_function.n_commodities cost in
  let n_sites = Finite_metric.size metric in
  {
    metric;
    cost;
    store = Facility_store.create env ~n_commodities;
    s = n_commodities;
    n_sites;
    n_past = 0;
    p_site = [||];
    p_demand = [||];
    p_dual_sum = [||];
    p_cap4 = [||];
    p_duals = [||];
    p_caps = [||];
    trace_rev = [];
    n_requests = 0;
    incremental;
    b3_cache =
      (if incremental then Array.make (n_commodities * n_sites) 0.0 else [||]);
    b4_cache = (if incremental then Array.make n_sites 0.0 else [||]);
    f3 = Array.make n_commodities None;
    f4 = Array.init n_sites (fun m -> Cost_function.full_cost cost m);
    b3_scratch =
      (if incremental then [||] else Array.make (n_commodities * n_sites) 0.0);
    b4_scratch = (if incremental then [||] else Array.make n_sites 0.0);
    scratch_es = Array.make n_commodities 0;
    scratch_serving_kind = Array.make n_commodities 0;
    scratch_serving_id = Array.make n_commodities (-1);
    scratch_unserved = Array.make n_commodities 0;
    scratch_fb = Array.make 3 0.0;
  }

let create ?seed:_ env = create_mode ~incremental:false env
let create_incremental ?seed:_ env = create_mode ~incremental:true env

let ensure_past_capacity t =
  let cap = Array.length t.p_site in
  if t.n_past = cap then begin
    (* Start small: the first growth zeroes [ncap * s] floats for the
       dual and cap rows, which dominates whole short runs when the
       commodity set is large (the theorem-2 adversary pairs |S|=1024
       with 32 requests). Doubling from 8 keeps that first touch
       proportional to what a short run actually uses. *)
    let ncap = max 8 (2 * cap) in
    let grow_int a =
      let a' = Array.make ncap 0 in
      Array.blit a 0 a' 0 cap;
      a'
    in
    let grow_float a len len' =
      let a' = Array.make len' 0.0 in
      Array.blit a 0 a' 0 len;
      a'
    in
    t.p_site <- grow_int t.p_site;
    let dem = Array.make ncap (Cset.empty ~n_commodities:t.s) in
    Array.blit t.p_demand 0 dem 0 cap;
    t.p_demand <- dem;
    t.p_dual_sum <- grow_float t.p_dual_sum cap ncap;
    t.p_cap4 <- grow_float t.p_cap4 cap ncap;
    t.p_duals <- grow_float t.p_duals (cap * t.s) (ncap * t.s);
    t.p_caps <- grow_float t.p_caps (cap * t.s) (ncap * t.s)
  end

(* Incremental maintenance: a newly opened facility at [fs] offering [o]
   can only shrink past caps — min{a, d(F(e), j)} becomes
   min{old cap, d(j, fs)} — so each affected (request, commodity) adjusts
   the caches by the difference of its contribution. The walk is
   newest-first, matching the old cons-list order. *)
let note_facility_opened t ~fs ~offered =
  if t.incremental then begin
    let n_sites = t.n_sites in
    let offers_all = Cset.is_full offered in
    let b3 = t.b3_cache and b4 = t.b4_cache in
    for j = t.n_past - 1 downto 0 do
      (* One metric row covers every distance from this past request:
         row_j.(x) = d(j, x), the exact orientation the per-cell [dist]
         calls used. *)
      let row_j = Finite_metric.row t.metric t.p_site.(j) in
      let d_jf = row_j.(fs) in
      let cbase = j * t.s in
      Cset.iter
        (fun e ->
          if Cset.mem offered e && d_jf < t.p_caps.(cbase + e) then begin
            let old_cap = t.p_caps.(cbase + e) in
            let bb = e * n_sites in
            for m = 0 to n_sites - 1 do
              let d = row_j.(m) in
              b3.(bb + m) <-
                b3.(bb + m) +. pos (d_jf -. d)
                -. pos (old_cap -. d)
            done;
            Metrics.add m_cache_updates n_sites;
            t.p_caps.(cbase + e) <- d_jf
          end)
        t.p_demand.(j);
      if offers_all && d_jf < t.p_cap4.(j) then begin
        let old_cap = t.p_cap4.(j) in
        for m = 0 to n_sites - 1 do
          let d = row_j.(m) in
          b4.(m) <-
            b4.(m) +. pos (d_jf -. d) -. pos (old_cap -. d)
        done;
        Metrics.add m_cache_updates n_sites;
        t.p_cap4.(j) <- d_jf
      end
    done
  end

let f3_row t e =
  match t.f3.(e) with
  | Some row -> row
  | None ->
      let row =
        Array.init t.n_sites (fun m -> Cost_function.singleton_cost t.cost m e)
      in
      t.f3.(e) <- Some row;
      row

let open_facility t ~site ~kind =
  let cost =
    match kind with
    | Facility.Small e -> (f3_row t e).(site)
    | Facility.Large -> t.f4.(site)
    | Facility.Custom sigma -> Cost_function.eval t.cost site sigma
  in
  let fac =
    Facility_store.open_facility t.store ~site ~kind ~cost
      ~opened_at:t.n_requests
  in
  Metrics.incr m_facilities_opened;
  note_facility_opened t ~fs:site ~offered:fac.Facility.offered;
  fac

let step t (r : Request.t) =
  let n_sites = t.n_sites in
  let s = t.s in
  ensure_past_capacity t;
  let es = t.scratch_es in
  let k_total =
    let k = ref 0 in
    Cset.iter
      (fun e ->
        es.(!k) <- e;
        Stdlib.incr k)
      r.demand;
    !k
  in
  (* The request's duals accumulate directly in its (pre-zeroed) row of
     [p_duals]; [abase + e] is the old [a.(e)]. *)
  let abase = t.n_past * s in
  let duals = t.p_duals in
  Array.fill duals abase s 0.0;
  Array.fill t.p_caps abase s 0.0;
  let sk = t.scratch_serving_kind and sid = t.scratch_serving_id in
  Array.fill sk 0 s 0;
  (* d_rm.(m) = d(r, m): the metric's own row, fetched once (read-only). *)
  let d_rm = Finite_metric.row t.metric r.site in
  (* Flat read-only views of the nearest-open-facility tables; they are
     mutated in place by openings, so these stay current through the
     step. *)
  let idx = Facility_store.index t.store in
  let nd = Nearest_index.flat_dist idx in
  let nid = Nearest_index.flat_id idx in
  let ndl = Nearest_index.dist_large_row idx in
  let nil = Nearest_index.id_large_row idx in
  let inc = t.incremental in
  (* Per-arrival-constant bid sums of past requests (constraints (3) and
     (4)); facilities only open once processing ends, so the caps
     min{a_je, d(F(e), j)} and min{Σa_je, d(F̂, j)} do not move.
     Incremental mode reads them off the maintained caches; otherwise they
     are recomputed from the whole history into the reusable scratch
     accumulators. The recompute walks the history newest-first with the
     per-(request, commodity) cap hoisted out of the site loop, which
     adds exactly the same sequence of terms to each cell as the
     historical per-cell fold — the float sums are bit-identical. *)
  let b3_all, b4 =
    if inc then (t.b3_cache, t.b4_cache)
    else begin
      let b3 = t.b3_scratch and b4 = t.b4_scratch in
      Array.fill b3 0 (k_total * n_sites) 0.0;
      Array.fill b4 0 n_sites 0.0;
      for j = t.n_past - 1 downto 0 do
        let jsite = t.p_site.(j) in
        let row_j = Finite_metric.row t.metric jsite in
        let dem = t.p_demand.(j) in
        let dbase = j * s in
        for i = 0 to k_total - 1 do
          let e = es.(i) in
          if Cset.mem dem e then begin
            let cap =
              Float.min t.p_duals.(dbase + e) nd.((e * n_sites) + jsite)
            in
            let bb = i * n_sites in
            for m = 0 to n_sites - 1 do
              b3.(bb + m) <- b3.(bb + m) +. pos (cap -. row_j.(m))
            done
          end
        done;
        let cap4 = Float.min t.p_dual_sum.(j) ndl.(jsite) in
        for m = 0 to n_sites - 1 do
          b4.(m) <- b4.(m) +. pos (cap4 -. row_j.(m))
        done
      done;
      (b3, b4)
    end
  in
  let fb = t.scratch_fb in
  fb.(2) <- 0.0 (* Σ a_re so far *);
  let large_kind = ref 0 (* 0 none / 1 existing / 2 new *) in
  let large_tgt = ref (-1) in
  let fired_rev = ref [] in
  let finished = ref false in
  (* Indices into [es] still unserved, in ascending order — compacted in
     place after every event instead of rebuilt as a fresh list per loop
     iteration (the loop body only serves commodities, so compaction
     preserves the iteration order the recomputing/incremental parity
     depends on). *)
  let unserved = t.scratch_unserved in
  for i = 0 to k_total - 1 do
    unserved.(i) <- i
  done;
  let n_unserved = ref k_total in
  while not !finished do
    let w = ref 0 in
    for u = 0 to !n_unserved - 1 do
      let i = unserved.(u) in
      if sk.(es.(i)) = 0 then begin
        unserved.(!w) <- i;
        Stdlib.incr w
      end
    done;
    n_unserved := !w;
    if !n_unserved = 0 then finished := true
    else begin
      Metrics.incr m_loop_iters;
      let k = float_of_int !n_unserved in
      (* Collect the earliest event; ties resolved by event rank
         (E1 connect-small = 0, E3 open-small = 1, E2 connect-large = 2,
         E4 open-large = 3 — connections and small facilities, the
         paper's lines 3–5, before large ones, lines 6–9), then by
         commodity index, then by site. Deltas within a relative 1e-9 of
         each other count as tied, so tie-breaking is stable under the
         float-summation-order differences between the recomputing and
         incremental bid modes (integer-valued cost functions produce
         exact (3)-vs-(4) ties all the time). The candidate delta enters
         [consider] through fb.(0) and the best lives in fb.(1): int-only
         arguments keep the floats unboxed across the call. *)
      let has_best = ref false in
      let best_rank = ref 0 and best_i = ref 0 and best_m = ref 0 in
      let consider rank i m =
        let delta = Float.max fb.(0) 0.0 in
        if not !has_best then begin
          has_best := true;
          fb.(1) <- delta;
          best_rank := rank;
          best_i := i;
          best_m := m
        end
        else begin
          let bd = fb.(1) in
          let eps = 1e-9 *. Float.max 1.0 (Float.max delta bd) in
          if delta < bd -. eps then begin
            fb.(1) <- delta;
            best_rank := rank;
            best_i := i;
            best_m := m
          end
          else if delta <= bd +. eps then begin
            let br = !best_rank and bi = !best_i and bm = !best_m in
            if rank < br || (rank = br && (i < bi || (i = bi && m < bm)))
            then begin
              (* Tie: keep the smaller delta as the anchor so chains of
                 near-ties cannot drift. *)
              fb.(1) <- Float.min delta bd;
              best_rank := rank;
              best_i := i;
              best_m := m
            end
          end
        end
      in
      for u = 0 to !n_unserved - 1 do
        let i = unserved.(u) in
        let e = es.(i) in
        let ae = duals.(abase + e) in
        let d_fe = nd.((e * n_sites) + r.site) in
        if d_fe < infinity then begin
          fb.(0) <- d_fe -. ae;
          consider 0 i 0
        end;
        let f3e = f3_row t e in
        let bb = if inc then e * n_sites else i * n_sites in
        for m = 0 to n_sites - 1 do
          (* Tight when (a_re - d(m,r))+ + B3 = f: the own bid must be
             active, i.e. a_re reaches d(m,r) + (f - B3)+. Waiting until
             then never violates the constraint because B3 <= f holds at
             every arrival. *)
          let target = d_rm.(m) +. pos (f3e.(m) -. b3_all.(bb + m)) in
          fb.(0) <- target -. ae;
          consider 1 i m
        done
      done;
      let d_large = ndl.(r.site) in
      if d_large < infinity then begin
        fb.(0) <- (d_large -. fb.(2)) /. k;
        consider 2 0 0
      end;
      for m = 0 to n_sites - 1 do
        let target = d_rm.(m) +. pos (t.f4.(m) -. b4.(m)) in
        fb.(0) <- (target -. fb.(2)) /. k;
        consider 3 0 m
      done;
      if not !has_best then assert false (* E3 events always exist *);
      let delta = fb.(1) in
      for u = 0 to !n_unserved - 1 do
        let e = es.(unserved.(u)) in
        duals.(abase + e) <- duals.(abase + e) +. delta
      done;
      fb.(2) <- fb.(2) +. (k *. delta);
      (match !best_rank with
      | 0 ->
          let e = es.(!best_i) in
          let fid = nid.((e * n_sites) + r.site) in
          sk.(e) <- 1;
          sid.(e) <- fid;
          Metrics.incr m_connect_small;
          fired_rev :=
            Connected_small
              { commodity = e; facility = fid; dual = duals.(abase + e) }
            :: !fired_rev
      | 1 ->
          let e = es.(!best_i) in
          let m = !best_m in
          sk.(e) <- 2;
          sid.(e) <- m;
          Metrics.incr m_open_small;
          fired_rev :=
            Opened_small { commodity = e; site = m; dual = duals.(abase + e) }
            :: !fired_rev
      | 2 ->
          let fid = nil.(r.site) in
          large_kind := 1;
          large_tgt := fid;
          Metrics.incr m_connect_large;
          fired_rev :=
            Connected_large { facility = fid; dual_sum = fb.(2) }
            :: !fired_rev;
          finished := true
      | _ ->
          let m = !best_m in
          large_kind := 2;
          large_tgt := m;
          Metrics.incr m_open_large;
          fired_rev := Opened_large { site = m; dual_sum = fb.(2) } :: !fired_rev;
          finished := true)
    end
  done;
  let service =
    if !large_kind <> 0 then
      (* Lines 7–9: the whole request is served by one large facility;
         tentative small facilities are discarded. *)
      let fid =
        if !large_kind = 1 then !large_tgt
        else
          (open_facility t ~site:!large_tgt ~kind:Facility.Large).Facility.id
      in
      Service.To_single fid
    else begin
      (* Line 10: confirm the remaining tentative small facilities, in
         ascending commodity order (facility ids depend on it). *)
      let pairs_rev = ref [] in
      for i = 0 to k_total - 1 do
        let e = es.(i) in
        let pair =
          match sk.(e) with
          | 1 -> (e, sid.(e))
          | 2 ->
              ( e,
                (open_facility t ~site:(sid.(e)) ~kind:(Facility.Small e))
                  .Facility.id )
          | _ -> assert false
        in
        pairs_rev := pair :: !pairs_rev
      done;
      Service.Per_commodity (List.rev !pairs_rev)
    end
  in
  Facility_store.record_service t.store ~request_site:r.site service;
  (* Record the request's bid caps (capped by the post-opening facility
     distances — the index rows already reflect this step's openings); in
     incremental mode also add its contributions to the caches. *)
  let caps = t.p_caps in
  Cset.iter
    (fun e ->
      caps.(abase + e) <-
        Float.min duals.(abase + e) nd.((e * n_sites) + r.site))
    r.demand;
  let cap4 = Float.min fb.(2) ndl.(r.site) in
  if inc then begin
    (* d_rm is r's metric row, so d_rm.(m) = d(r, m) as before. *)
    Cset.iter
      (fun e ->
        let bb = e * n_sites in
        let cap_e = caps.(abase + e) in
        for m = 0 to n_sites - 1 do
          t.b3_cache.(bb + m) <-
            t.b3_cache.(bb + m) +. pos (cap_e -. d_rm.(m))
        done;
        Metrics.add m_cache_updates n_sites)
      r.demand;
    for m = 0 to n_sites - 1 do
      t.b4_cache.(m) <- t.b4_cache.(m) +. pos (cap4 -. d_rm.(m))
    done;
    Metrics.add m_cache_updates n_sites
  end;
  t.p_site.(t.n_past) <- r.site;
  t.p_demand.(t.n_past) <- r.demand;
  t.p_dual_sum.(t.n_past) <- fb.(2);
  t.p_cap4.(t.n_past) <- cap4;
  t.n_past <- t.n_past + 1;
  t.trace_rev <- List.rev !fired_rev :: t.trace_rev;
  t.n_requests <- t.n_requests + 1;
  Metrics.incr m_requests;
  service

let step_batch t reqs =
  (* Warm the block's metric rows once up front; each step (and its
     history recompute) then hits the memoized rows. Decisions are
     identical to stepping one by one — the rows are pure. *)
  Array.iter
    (fun (r : Request.t) -> ignore (Finite_metric.row t.metric r.site))
    reqs;
  let n = Array.length reqs in
  if n = 0 then [||]
  else begin
    let out = Array.make n (step t reqs.(0)) in
    for i = 1 to n - 1 do
      out.(i) <- step t reqs.(i)
    done;
    out
  end

let run_so_far t = Run.of_store ~algorithm:name t.store

let dual_records t =
  let acc = ref [] in
  for j = t.n_past - 1 downto 0 do
    acc :=
      {
        site = t.p_site.(j);
        demand = t.p_demand.(j);
        duals = Array.sub t.p_duals (j * t.s) t.s;
        dual_sum = t.p_dual_sum.(j);
      }
      :: !acc
  done;
  !acc

let trace t = List.rev t.trace_rev

let dual_objective t =
  (* Newest-first, like the cons-list fold it replaces. *)
  let acc = ref 0.0 in
  for j = t.n_past - 1 downto 0 do
    acc := !acc +. t.p_dual_sum.(j)
  done;
  !acc

let store t = t.store

(* ---------- snapshot / restore ---------- *)

(* Persisted state: the request history with its frozen duals and bid
   caps, the store, the event trace, and — in incremental mode — the
   maintained bid caches, serialized verbatim. The caches are NOT
   rebuilt from the history on restore: they were produced by a
   particular interleaving of additions and cap adjustments whose float
   rounding a fresh summation would not reproduce, and byte-identical
   continuation requires their exact values. Scratch buffers and the
   pure cost tables (f3/f4) are rebuilt by [create_mode]. *)

let snapshot_tag = "omflp.snap.pd-omflp.v2"

let w_fired b = function
  | Connected_small { commodity; facility; dual } ->
      Snapshot_codec.w_int b 0;
      Snapshot_codec.w_int b commodity;
      Snapshot_codec.w_int b facility;
      Snapshot_codec.w_float b dual
  | Opened_small { commodity; site; dual } ->
      Snapshot_codec.w_int b 1;
      Snapshot_codec.w_int b commodity;
      Snapshot_codec.w_int b site;
      Snapshot_codec.w_float b dual
  | Connected_large { facility; dual_sum } ->
      Snapshot_codec.w_int b 2;
      Snapshot_codec.w_int b facility;
      Snapshot_codec.w_float b dual_sum
  | Opened_large { site; dual_sum } ->
      Snapshot_codec.w_int b 3;
      Snapshot_codec.w_int b site;
      Snapshot_codec.w_float b dual_sum

let r_fired r =
  match Snapshot_codec.r_int r with
  | 0 ->
      let commodity = Snapshot_codec.r_int r in
      let facility = Snapshot_codec.r_int r in
      let dual = Snapshot_codec.r_float r in
      Connected_small { commodity; facility; dual }
  | 1 ->
      let commodity = Snapshot_codec.r_int r in
      let site = Snapshot_codec.r_int r in
      let dual = Snapshot_codec.r_float r in
      Opened_small { commodity; site; dual }
  | 2 ->
      let facility = Snapshot_codec.r_int r in
      let dual_sum = Snapshot_codec.r_float r in
      Connected_large { facility; dual_sum }
  | 3 ->
      let site = Snapshot_codec.r_int r in
      let dual_sum = Snapshot_codec.r_float r in
      Opened_large { site; dual_sum }
  | k -> Printf.ksprintf failwith "Snapshot_codec: bad fired tag %d" k

let snapshot t =
  Snapshot_codec.encode ~tag:snapshot_tag (fun b ->
      Snapshot_codec.w_bool b t.incremental;
      Facility_store.write_persisted b (Facility_store.persist t.store);
      let n = t.n_past in
      Snapshot_codec.w_int b n;
      for j = 0 to n - 1 do
        Snapshot_codec.w_int b t.p_site.(j)
      done;
      for j = 0 to n - 1 do
        Cset.write b t.p_demand.(j)
      done;
      Snapshot_codec.w_float_array b (Array.sub t.p_dual_sum 0 n);
      Snapshot_codec.w_float_array b (Array.sub t.p_cap4 0 n);
      Snapshot_codec.w_float_array b (Array.sub t.p_duals 0 (n * t.s));
      Snapshot_codec.w_float_array b (Array.sub t.p_caps 0 (n * t.s));
      Snapshot_codec.w_list (Snapshot_codec.w_list w_fired) b t.trace_rev;
      Snapshot_codec.w_int b t.n_requests;
      if t.incremental then begin
        Snapshot_codec.w_float_array b t.b3_cache;
        Snapshot_codec.w_float_array b t.b4_cache
      end)

let restore_mode ~incremental env blob =
  Snapshot_codec.decode ~tag:snapshot_tag
    (fun r ->
      let z_incremental = Snapshot_codec.r_bool r in
      if z_incremental <> incremental then
        failwith
          (Printf.sprintf "Pd_omflp.restore: snapshot is from the %s mode"
             (if z_incremental then "incremental" else "recomputing"));
      let z_store = Facility_store.read_persisted r in
      let t = create_mode ~incremental env in
      let n = Snapshot_codec.r_int r in
      if n < 0 then failwith "Pd_omflp.restore: negative history length";
      let sites = Array.make (max n 1) 0 in
      for j = 0 to n - 1 do
        let p = Snapshot_codec.r_int r in
        if p < 0 || p >= t.n_sites then
          failwith "Pd_omflp.restore: history site out of range";
        sites.(j) <- p
      done;
      let demands = Array.make (max n 1) (Cset.empty ~n_commodities:t.s) in
      for j = 0 to n - 1 do
        let d = Cset.read r in
        if Cset.n_commodities d <> t.s then
          failwith "Pd_omflp.restore: demand universe mismatch";
        demands.(j) <- d
      done;
      let dual_sum = Snapshot_codec.r_float_array r in
      let cap4 = Snapshot_codec.r_float_array r in
      let duals = Snapshot_codec.r_float_array r in
      let caps = Snapshot_codec.r_float_array r in
      if
        Array.length dual_sum <> n
        || Array.length cap4 <> n
        || Array.length duals <> n * t.s
        || Array.length caps <> n * t.s
      then failwith "Pd_omflp.restore: inconsistent history arrays";
      let trace_rev = Snapshot_codec.r_list (Snapshot_codec.r_list r_fired) r in
      let n_requests = Snapshot_codec.r_int r in
      if incremental then begin
        let b3 = Snapshot_codec.r_float_array r in
        let b4 = Snapshot_codec.r_float_array r in
        if
          Array.length b3 <> Array.length t.b3_cache
          || Array.length b4 <> Array.length t.b4_cache
        then failwith "Pd_omflp.restore: bid cache size mismatch";
        Array.blit b3 0 t.b3_cache 0 (Array.length b3);
        Array.blit b4 0 t.b4_cache 0 (Array.length b4)
      end;
      (* Capacity is trimmed to the history (padded to 1 slot so the
         scalar and flat arrays stay in the cap/cap*s relationship);
         the next step grows it. *)
      t.n_past <- n;
      t.p_site <- sites;
      t.p_demand <- demands;
      t.p_dual_sum <-
        (if n = 0 then Array.make 1 0.0 else dual_sum);
      t.p_cap4 <- (if n = 0 then Array.make 1 0.0 else cap4);
      t.p_duals <- (if n = 0 then Array.make t.s 0.0 else duals);
      t.p_caps <- (if n = 0 then Array.make t.s 0.0 else caps);
      t.trace_rev <- trace_rev;
      t.n_requests <- n_requests;
      { t with store = Facility_store.of_persisted env z_store })
    blob

let restore env blob = restore_mode ~incremental:false env blob
let restore_incremental env blob = restore_mode ~incremental:true env blob

let cache_drift t =
  if not t.incremental then 0.0
  else begin
    let n_sites = t.n_sites in
    let s = t.s in
    let drift = ref 0.0 in
    for e = 0 to s - 1 do
      for m = 0 to n_sites - 1 do
        (* Newest-first fold, like the cons-list fold it replaces. *)
        let fresh = ref 0.0 in
        for j = t.n_past - 1 downto 0 do
          if Cset.mem t.p_demand.(j) e then begin
            let cap =
              Float.min
                t.p_duals.((j * s) + e)
                (Facility_store.dist_offering t.store ~commodity:e
                   ~from:t.p_site.(j))
            in
            fresh :=
              !fresh
              +. pos
                   (cap -. Finite_metric.dist t.metric t.p_site.(j) m)
          end
        done;
        drift :=
          Float.max !drift (Float.abs (!fresh -. t.b3_cache.((e * n_sites) + m)))
      done
    done;
    for m = 0 to n_sites - 1 do
      let fresh = ref 0.0 in
      for j = t.n_past - 1 downto 0 do
        let cap =
          Float.min t.p_dual_sum.(j)
            (Facility_store.dist_large t.store ~from:t.p_site.(j))
        in
        fresh :=
          !fresh
          +. pos (cap -. Finite_metric.dist t.metric t.p_site.(j) m)
      done;
      drift := Float.max !drift (Float.abs (!fresh -. t.b4_cache.(m)))
    done;
    !drift
  end
