open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance
open Omflp_obs

(* Work counters (lib/obs): shared by the recomputing and incremental
   modes (PD-OMFLP and PD-OMFLP-FAST run the identical event loop).
   [pd.loop_iters] counts event-loop iterations, which fire exactly one
   tightness event each, so it always equals the sum of the four
   [pd.event.*] counters; [pd.facilities_opened] counts confirmed
   openings only (trace [Opened_small] events of a request that ended in
   a large facility are discarded tentatives). *)
let m_requests = Metrics.counter "pd.requests"

let m_loop_iters = Metrics.counter "pd.loop_iters"

let m_connect_small = Metrics.counter "pd.event.connect_small"

let m_open_small = Metrics.counter "pd.event.open_small"

let m_connect_large = Metrics.counter "pd.event.connect_large"

let m_open_large = Metrics.counter "pd.event.open_large"

let m_facilities_opened = Metrics.counter "pd.facilities_opened"

let m_cache_updates = Metrics.counter "pd.cache_updates"

type dual_record = {
  site : int;
  demand : Cset.t;
  duals : float array;
  dual_sum : float;
}

type fired =
  | Connected_small of { commodity : int; facility : int; dual : float }
  | Opened_small of { commodity : int; site : int; dual : float }
  | Connected_large of { facility : int; dual_sum : float }
  | Opened_large of { site : int; dual_sum : float }

(* Internal past-request record. [caps] holds, per demanded commodity, the
   value min{a_je, d(F(e), j)} currently accounted in the incremental bid
   caches; [cap4] the corresponding min{Σ a_je, d(F̂, j)}. *)
type past = {
  p_site : int;
  p_demand : Cset.t;
  p_duals : float array;
  p_dual_sum : float;
  p_caps : float array;
  mutable p_cap4 : float;
}

type t = {
  metric : Finite_metric.t;
  cost : Cost_function.t;
  store : Facility_store.t;
  mutable past_rev : past list;
  mutable trace_rev : fired list list;
  mutable n_requests : int;
  (* Incremental mode: bid sums are maintained across arrivals instead of
     being recomputed from the whole history. [b3_cache.(e).(m)] is the
     constraint-(3) bid sum of all past requests towards a small facility
     {e} at site m; [b4_cache.(m)] the constraint-(4) analogue. *)
  incremental : bool;
  b3_cache : float array array;
  b4_cache : float array;
  (* Hot-path tables and scratch, set up once at creation.
     [f3.(e).(m)] = singleton opening cost of {e} at m (rows built
     lazily on a commodity's first demand), [f4.(m)] = full cost at m:
     the event loop probes these every iteration and
     [Cost_function.singleton_cost] allocates a fresh commodity set per
     call, so the table turns an allocating closure dispatch into an
     array read (identical float values — the cost function is pure).
     The [scratch_*] buffers and recompute-mode bid accumulators
     ([b3_scratch] rows indexed by position in the request's demand) are
     reused across [step] calls instead of re-allocated per request;
     only request-local data that outlives the step (duals, caps — they
     are stored in [past]) is still freshly allocated. *)
  f3 : float array option array;
  f4 : float array;
  b3_scratch : float array array;
  b4_scratch : float array;
  scratch_es : int array;
  scratch_serving : serving array;
  scratch_unserved : int array;
}

and serving =
  (* The serving target of one commodity while the request is processed. *)
  | Unserved
  | By_existing of int  (** facility id *)
  | By_temp of int  (** site of a tentatively opened small facility *)

let name = "PD-OMFLP"

let create_mode ~incremental metric cost =
  let n_commodities = Cost_function.n_commodities cost in
  let n_sites = Finite_metric.size metric in
  {
    metric;
    cost;
    store = Facility_store.create metric ~n_commodities;
    past_rev = [];
    trace_rev = [];
    n_requests = 0;
    incremental;
    b3_cache =
      (if incremental then Array.make_matrix n_commodities n_sites 0.0
       else [||]);
    b4_cache = (if incremental then Array.make n_sites 0.0 else [||]);
    f3 = Array.make n_commodities None;
    f4 = Array.init n_sites (fun m -> Cost_function.full_cost cost m);
    b3_scratch =
      (if incremental then [||]
       else Array.make_matrix n_commodities n_sites 0.0);
    b4_scratch = (if incremental then [||] else Array.make n_sites 0.0);
    scratch_es = Array.make n_commodities 0;
    scratch_serving = Array.make n_commodities Unserved;
    scratch_unserved = Array.make n_commodities 0;
  }

let create ?seed:_ metric cost = create_mode ~incremental:false metric cost

let create_incremental ?seed:_ metric cost =
  create_mode ~incremental:true metric cost

(* The four tightness events of Algorithm 1. The int payloads identify the
   commodity (index into the demand array) and/or the site. Priority order
   on ties follows the paper's loop structure: connections and small
   facilities (lines 3–5) are examined before large ones (lines 6–9). *)
type event =
  | E1_connect_small of int
  | E3_open_small of int * int
  | E2_connect_large
  | E4_open_large of int

let event_rank = function
  | E1_connect_small _ -> 0
  | E3_open_small _ -> 1
  | E2_connect_large -> 2
  | E4_open_large _ -> 3

(* Incremental maintenance: a newly opened facility at [fs] offering [o]
   can only shrink past caps — min{a, d(F(e), j)} becomes
   min{old cap, d(j, fs)} — so each affected (request, commodity) adjusts
   the caches by the difference of its contribution. *)
let note_facility_opened t ~fs ~offered =
  if t.incremental then begin
    let n_sites = Finite_metric.size t.metric in
    let offers_all = Cset.is_full offered in
    List.iter
      (fun (p : past) ->
        (* One metric row covers every distance from this past request:
           row_j.(x) = d(j, x), the exact orientation the per-cell
           [dist] calls used. *)
        let row_j = Finite_metric.row t.metric p.p_site in
        let d_jf = row_j.(fs) in
        Cset.iter
          (fun e ->
            if Cset.mem offered e && d_jf < p.p_caps.(e) then begin
              let old_cap = p.p_caps.(e) in
              let row = t.b3_cache.(e) in
              for m = 0 to n_sites - 1 do
                let d = row_j.(m) in
                row.(m) <-
                  row.(m) +. Numerics.pos (d_jf -. d) -. Numerics.pos (old_cap -. d)
              done;
              Metrics.add m_cache_updates n_sites;
              p.p_caps.(e) <- d_jf
            end)
          p.p_demand;
        if offers_all && d_jf < p.p_cap4 then begin
          let old_cap = p.p_cap4 in
          for m = 0 to n_sites - 1 do
            let d = row_j.(m) in
            t.b4_cache.(m) <-
              t.b4_cache.(m) +. Numerics.pos (d_jf -. d) -. Numerics.pos (old_cap -. d)
          done;
          Metrics.add m_cache_updates n_sites;
          p.p_cap4 <- d_jf
        end)
      t.past_rev
  end

let f3_row t e =
  match t.f3.(e) with
  | Some row -> row
  | None ->
      let row =
        Array.init
          (Finite_metric.size t.metric)
          (fun m -> Cost_function.singleton_cost t.cost m e)
      in
      t.f3.(e) <- Some row;
      row

let open_facility t ~site ~kind =
  let cost =
    match kind with
    | Facility.Small e -> (f3_row t e).(site)
    | Facility.Large -> t.f4.(site)
    | Facility.Custom sigma -> Cost_function.eval t.cost site sigma
  in
  let fac =
    Facility_store.open_facility t.store ~site ~kind ~cost
      ~opened_at:t.n_requests
  in
  Metrics.incr m_facilities_opened;
  note_facility_opened t ~fs:site ~offered:fac.Facility.offered;
  fac

let step t (r : Request.t) =
  let n_sites = Finite_metric.size t.metric in
  let s = Cost_function.n_commodities t.cost in
  let es = t.scratch_es in
  let k_total =
    let k = ref 0 in
    Cset.iter
      (fun e ->
        es.(!k) <- e;
        Stdlib.incr k)
      r.demand;
    !k
  in
  let a = Array.make s 0.0 in
  let serving = t.scratch_serving in
  Array.fill serving 0 s Unserved;
  (* d_rm.(m) = d(r, m): the metric's own row, fetched once (read-only). *)
  let d_rm = Finite_metric.row t.metric r.site in
  (* Per-arrival-constant bid sums of past requests (constraints (3) and
     (4)); facilities only open once processing ends, so the caps
     min{a_je, d(F(e), j)} and min{Σa_je, d(F̂, j)} do not move.
     Incremental mode reads them off the maintained caches; otherwise they
     are recomputed from the whole history into the reusable scratch
     accumulators. The recompute walks [past_rev] in its head→tail order
     with the per-(request, commodity) cap hoisted out of the site loop,
     which adds exactly the same sequence of terms to each cell as the
     historical per-cell fold — the float sums are bit-identical. *)
  let get_b3, get_b4 =
    if t.incremental then
      ((fun i m -> t.b3_cache.(es.(i)).(m)), fun m -> t.b4_cache.(m))
    else begin
      let b3 = t.b3_scratch in
      let b4 = t.b4_scratch in
      for i = 0 to k_total - 1 do
        Array.fill b3.(i) 0 n_sites 0.0
      done;
      Array.fill b4 0 n_sites 0.0;
      List.iter
        (fun (p : past) ->
          let row_j = Finite_metric.row t.metric p.p_site in
          for i = 0 to k_total - 1 do
            let e = es.(i) in
            if Cset.mem p.p_demand e then begin
              let cap =
                Float.min p.p_duals.(e)
                  (Facility_store.dist_offering t.store ~commodity:e
                     ~from:p.p_site)
              in
              let bi = b3.(i) in
              for m = 0 to n_sites - 1 do
                bi.(m) <- bi.(m) +. Numerics.pos (cap -. row_j.(m))
              done
            end
          done;
          let cap4 =
            Float.min p.p_dual_sum
              (Facility_store.dist_large t.store ~from:p.p_site)
          in
          for m = 0 to n_sites - 1 do
            b4.(m) <- b4.(m) +. Numerics.pos (cap4 -. row_j.(m))
          done)
        t.past_rev;
      ((fun i m -> b3.(i).(m)), fun m -> b4.(m))
    end
  in
  let sum_a = ref 0.0 in
  let large_result = ref None in
  let fired_rev = ref [] in
  let finished = ref false in
  (* Indices into [es] still unserved, in ascending order — compacted in
     place after every event instead of rebuilt as a fresh list per loop
     iteration (the loop body only serves commodities, so compaction
     preserves the iteration order the recomputing/incremental parity
     depends on). *)
  let unserved = t.scratch_unserved in
  for i = 0 to k_total - 1 do
    unserved.(i) <- i
  done;
  let n_unserved = ref k_total in
  while not !finished do
    let w = ref 0 in
    for u = 0 to !n_unserved - 1 do
      let i = unserved.(u) in
      match serving.(es.(i)) with
      | Unserved ->
          unserved.(!w) <- i;
          Stdlib.incr w
      | By_existing _ | By_temp _ -> ()
    done;
    n_unserved := !w;
    if !n_unserved = 0 then finished := true
    else begin
      Metrics.incr m_loop_iters;
      let k = float_of_int !n_unserved in
      (* Collect the earliest event; ties resolved by event rank, then by
         commodity index, then by site. Deltas within a relative 1e-9 of
         each other count as tied, so tie-breaking is stable under the
         float-summation-order differences between the recomputing and
         incremental bid modes (integer-valued cost functions produce
         exact (3)-vs-(4) ties all the time). *)
      let best = ref None in
      let consider delta ev i m =
        let delta = Float.max delta 0.0 in
        match !best with
        | None -> best := Some ((delta, event_rank ev, i, m), ev)
        | Some ((bd, br, bi, bm), _) ->
            let eps = 1e-9 *. Float.max 1.0 (Float.max delta bd) in
            if delta < bd -. eps then
              best := Some ((delta, event_rank ev, i, m), ev)
            else if
              delta <= bd +. eps && (event_rank ev, i, m) < (br, bi, bm)
            then
              (* Tie: keep the smaller delta as the anchor so chains of
                 near-ties cannot drift. *)
              best := Some ((Float.min delta bd, event_rank ev, i, m), ev)
      in
      for u = 0 to !n_unserved - 1 do
        let i = unserved.(u) in
        let e = es.(i) in
        let d_fe = Facility_store.dist_offering t.store ~commodity:e ~from:r.site in
        if d_fe < infinity then
          consider (d_fe -. a.(e)) (E1_connect_small i) i 0;
        let f3e = f3_row t e in
        for m = 0 to n_sites - 1 do
          (* Tight when (a_re - d(m,r))+ + B3 = f: the own bid must be
             active, i.e. a_re reaches d(m,r) + (f - B3)+. Waiting until
             then never violates the constraint because B3 <= f holds at
             every arrival. *)
          let target = d_rm.(m) +. Numerics.pos (f3e.(m) -. get_b3 i m) in
          consider (target -. a.(e)) (E3_open_small (i, m)) i m
        done
      done;
      let d_large = Facility_store.dist_large t.store ~from:r.site in
      if d_large < infinity then
        consider ((d_large -. !sum_a) /. k) E2_connect_large 0 0;
      for m = 0 to n_sites - 1 do
        let target = d_rm.(m) +. Numerics.pos (t.f4.(m) -. get_b4 m) in
        consider ((target -. !sum_a) /. k) (E4_open_large m) 0 m
      done;
      match !best with
      | None -> assert false (* E3 events always exist *)
      | Some ((delta, _, _, _), ev) ->
          for u = 0 to !n_unserved - 1 do
            let i = unserved.(u) in
            a.(es.(i)) <- a.(es.(i)) +. delta
          done;
          sum_a := !sum_a +. (k *. delta);
          (match ev with
          | E1_connect_small i ->
              let e = es.(i) in
              let fac, _ =
                Option.get
                  (Facility_store.nearest_offering t.store ~commodity:e
                     ~from:r.site)
              in
              serving.(e) <- By_existing fac.Facility.id;
              Metrics.incr m_connect_small;
              fired_rev :=
                Connected_small
                  { commodity = e; facility = fac.Facility.id; dual = a.(e) }
                :: !fired_rev
          | E3_open_small (i, m) ->
              serving.(es.(i)) <- By_temp m;
              Metrics.incr m_open_small;
              fired_rev :=
                Opened_small { commodity = es.(i); site = m; dual = a.(es.(i)) }
                :: !fired_rev
          | E2_connect_large ->
              let fac, _ =
                Option.get (Facility_store.nearest_large t.store ~from:r.site)
              in
              large_result := Some (`Existing fac.Facility.id);
              Metrics.incr m_connect_large;
              fired_rev :=
                Connected_large { facility = fac.Facility.id; dual_sum = !sum_a }
                :: !fired_rev;
              finished := true
          | E4_open_large m ->
              large_result := Some (`New m);
              Metrics.incr m_open_large;
              fired_rev :=
                Opened_large { site = m; dual_sum = !sum_a } :: !fired_rev;
              finished := true)
    end
  done;
  let service =
    match !large_result with
    | Some target ->
        (* Lines 7–9: the whole request is served by one large facility;
           tentative small facilities are discarded. *)
        let fid =
          match target with
          | `Existing fid -> fid
          | `New m -> (open_facility t ~site:m ~kind:Facility.Large).Facility.id
        in
        Service.To_single fid
    | None ->
        (* Line 10: confirm the remaining tentative small facilities, in
           ascending commodity order (facility ids depend on it). *)
        let pairs_rev = ref [] in
        for i = 0 to k_total - 1 do
          let e = es.(i) in
          let pair =
            match serving.(e) with
            | By_existing fid -> (e, fid)
            | By_temp m ->
                (e, (open_facility t ~site:m ~kind:(Facility.Small e)).Facility.id)
            | Unserved -> assert false
          in
          pairs_rev := pair :: !pairs_rev
        done;
        Service.Per_commodity (List.rev !pairs_rev)
  in
  Facility_store.record_service t.store ~request_site:r.site service;
  (* Record the request's duals; in incremental mode also add its bid
     contributions (capped by the post-opening facility distances) to the
     caches. *)
  let caps = Array.make s 0.0 in
  Cset.iter
    (fun e ->
      caps.(e) <-
        Float.min a.(e)
          (Facility_store.dist_offering t.store ~commodity:e ~from:r.site))
    r.demand;
  let cap4 =
    Float.min !sum_a (Facility_store.dist_large t.store ~from:r.site)
  in
  let p =
    {
      p_site = r.site;
      p_demand = r.demand;
      p_duals = a;
      p_dual_sum = !sum_a;
      p_caps = caps;
      p_cap4 = cap4;
    }
  in
  if t.incremental then begin
    (* d_rm is r's metric row, so d_rm.(m) = d(r, m) as before. *)
    Cset.iter
      (fun e ->
        let row = t.b3_cache.(e) in
        let cap_e = caps.(e) in
        for m = 0 to n_sites - 1 do
          row.(m) <- row.(m) +. Numerics.pos (cap_e -. d_rm.(m))
        done;
        Metrics.add m_cache_updates n_sites)
      r.demand;
    for m = 0 to n_sites - 1 do
      t.b4_cache.(m) <- t.b4_cache.(m) +. Numerics.pos (cap4 -. d_rm.(m))
    done;
    Metrics.add m_cache_updates n_sites
  end;
  t.past_rev <- p :: t.past_rev;
  t.trace_rev <- List.rev !fired_rev :: t.trace_rev;
  t.n_requests <- t.n_requests + 1;
  Metrics.incr m_requests;
  service

let run_so_far t = Run.of_store ~algorithm:name t.store

let dual_records t =
  List.rev_map
    (fun (p : past) ->
      {
        site = p.p_site;
        demand = p.p_demand;
        duals = p.p_duals;
        dual_sum = p.p_dual_sum;
      })
    t.past_rev

let trace t = List.rev t.trace_rev

let dual_objective t =
  List.fold_left (fun acc (p : past) -> acc +. p.p_dual_sum) 0.0 t.past_rev

let store t = t.store

(* ---------- snapshot / restore ---------- *)

(* Persisted state: the request history with its frozen duals and bid
   caps, the store, the event trace, and — in incremental mode — the
   maintained bid caches, serialized verbatim. The caches are NOT
   rebuilt from the history on restore: they were produced by a
   particular interleaving of additions and cap adjustments whose float
   rounding a fresh summation would not reproduce, and byte-identical
   continuation requires their exact values. Scratch buffers and the
   pure cost tables (f3/f4) are rebuilt by [create_mode]. *)
type persisted = {
  z_incremental : bool;
  z_store : Facility_store.persisted;
  z_past_rev : past list;
  z_trace_rev : fired list list;
  z_n_requests : int;
  z_b3 : float array array;
  z_b4 : float array;
}

let snapshot_tag = "omflp.snap.pd-omflp.v1"

let snapshot t =
  Snapshot_codec.encode ~tag:snapshot_tag
    {
      z_incremental = t.incremental;
      z_store = Facility_store.persist t.store;
      z_past_rev = t.past_rev;
      z_trace_rev = t.trace_rev;
      z_n_requests = t.n_requests;
      z_b3 = (if t.incremental then Array.map Array.copy t.b3_cache else [||]);
      z_b4 = (if t.incremental then Array.copy t.b4_cache else [||]);
    }

let restore_mode ~incremental metric cost blob =
  let (z : persisted) = Snapshot_codec.decode ~tag:snapshot_tag blob in
  if z.z_incremental <> incremental then
    failwith
      (Printf.sprintf
         "Pd_omflp.restore: snapshot is from the %s mode"
         (if z.z_incremental then "incremental" else "recomputing"));
  let t = create_mode ~incremental metric cost in
  if incremental then begin
    Array.iteri (fun e row -> t.b3_cache.(e) <- row) z.z_b3;
    Array.blit z.z_b4 0 t.b4_cache 0 (Array.length z.z_b4)
  end;
  {
    t with
    store = Facility_store.of_persisted metric z.z_store;
    past_rev = z.z_past_rev;
    trace_rev = z.z_trace_rev;
    n_requests = z.z_n_requests;
  }

let restore metric cost blob = restore_mode ~incremental:false metric cost blob

let restore_incremental metric cost blob =
  restore_mode ~incremental:true metric cost blob

let cache_drift t =
  if not t.incremental then 0.0
  else begin
    let n_sites = Finite_metric.size t.metric in
    let s = Cost_function.n_commodities t.cost in
    let drift = ref 0.0 in
    for e = 0 to s - 1 do
      for m = 0 to n_sites - 1 do
        let fresh =
          List.fold_left
            (fun acc (p : past) ->
              if Cset.mem p.p_demand e then begin
                let cap =
                  Float.min p.p_duals.(e)
                    (Facility_store.dist_offering t.store ~commodity:e
                       ~from:p.p_site)
                in
                acc +. Numerics.pos (cap -. Finite_metric.dist t.metric p.p_site m)
              end
              else acc)
            0.0 t.past_rev
        in
        drift := Float.max !drift (Float.abs (fresh -. t.b3_cache.(e).(m)))
      done
    done;
    for m = 0 to n_sites - 1 do
      let fresh =
        List.fold_left
          (fun acc (p : past) ->
            let cap =
              Float.min p.p_dual_sum
                (Facility_store.dist_large t.store ~from:p.p_site)
            in
            acc +. Numerics.pos (cap -. Finite_metric.dist t.metric p.p_site m))
          0.0 t.past_rev
      in
      drift := Float.max !drift (Float.abs (fresh -. t.b4_cache.(m)))
    done;
    !drift
  end
