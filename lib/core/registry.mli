(** Name-indexed registry of the online algorithms. *)

(** [all ()] lists the paper's canonical (name, algorithm) pairs:
    PD-OMFLP, RAND-OMFLP, INDEP, ALL-LARGE, GREEDY. *)
val all : unit -> (string * (module Algo_intf.ALGO)) list

(** [extended ()] additionally contains the extensions: PD-OMFLP-FAST
    (incremental bids, same decisions), HEAVY-AWARE (Section 5), and the
    per-commodity OFL adapters MEYERSON-OFL / FOTAKIS-OFL
    ({!Ofl_adapter}). *)
val extended : unit -> (string * (module Algo_intf.ALGO)) list

(** [find name] resolves case-insensitively over {!extended}. *)
val find : string -> (module Algo_intf.ALGO) option

val names : unit -> string list
