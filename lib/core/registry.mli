(** Name-indexed registry of the online algorithms, the one place (with
    {!Omflp_instance.Problem_env}) that knows about problem families. *)

(** [all ()] lists the paper's canonical (name, algorithm) pairs:
    PD-OMFLP, RAND-OMFLP, INDEP, ALL-LARGE, GREEDY. *)
val all : unit -> (string * (module Algo_intf.ALGO)) list

(** [extended ()] additionally contains the extensions: PD-OMFLP-FAST
    (incremental bids, same decisions), HEAVY-AWARE (Section 5), the
    per-commodity OFL adapters MEYERSON-OFL / FOTAKIS-OFL
    ({!Ofl_adapter}), and the other problem families' algorithms
    NONMETRIC-BF and LEASE-PD. *)
val extended : unit -> (string * (module Algo_intf.ALGO)) list

(** [family_of a] is the packed algorithm's declared family. *)
val family_of : (module Algo_intf.ALGO) -> Omflp_instance.Problem_env.Family.t

(** [of_family fam] restricts {!extended} to algorithms declaring [fam]. *)
val of_family :
  Omflp_instance.Problem_env.Family.t ->
  (string * (module Algo_intf.ALGO)) list

(** [canonical_for fam] is the default algorithm set for "run everything"
    entry points: {!all} for OMFLP, {!of_family} otherwise. *)
val canonical_for :
  Omflp_instance.Problem_env.Family.t ->
  (string * (module Algo_intf.ALGO)) list

(** [find name] resolves case-insensitively over {!extended}; the error
    carries the requested name and the available names. *)
val find :
  string ->
  ((module Algo_intf.ALGO), [ `Unknown_algo of string * string list ]) result

(** [unknown_algo_message err] renders {!find}'s error the way every CLI
    surface reports it: ["unknown algorithm %S (available: ...)"]. *)
val unknown_algo_message : [ `Unknown_algo of string * string list ] -> string

val names : unit -> string list
