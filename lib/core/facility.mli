(** Facilities opened by an online algorithm. *)

type kind =
  | Small of int  (** serves the single commodity [e] — configuration [{e}] *)
  | Large  (** serves every commodity — configuration [S] *)
  | Custom of Omflp_commodity.Cset.t  (** arbitrary configuration (baselines) *)

type t = {
  id : int;  (** unique within one run, in opening order *)
  site : int;
  kind : kind;
  offered : Omflp_commodity.Cset.t;  (** the configuration as a set *)
  cost : float;  (** construction cost paid *)
  opened_at : int;  (** index of the request whose arrival opened it *)
}

(** [offered_of_kind ~n_commodities kind] expands a kind to its commodity
    set. *)
val offered_of_kind : n_commodities:int -> kind -> Omflp_commodity.Cset.t

(** Snapshot codec v2 field serializers. [read] derives [offered] from
    the kind instead of deserializing it; raises [Failure] on malformed
    bytes. *)
val write : Omflp_prelude.Snapshot_codec.writer -> t -> unit

val read : n_commodities:int -> Omflp_prelude.Snapshot_codec.reader -> t

val pp : Format.formatter -> t -> unit
