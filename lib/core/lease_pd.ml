open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance

(* LEASE-PD — multi-facility leasing primal–dual in the style of
   Markarian et al. (arXiv:2006.16762), riding the Fotakis-flavoured PD
   core the OMFLP baselines use: facilities are opened as leases of one
   of K types, type k living for durations.(k) steps at factors.(k)
   times the configuration cost.

   Each arriving (request, commodity) pair raises a dual until it either
   reaches the connection cost of a currently-live lease or completes
   the payment of a (site, lease-type) pair, where past requests bid
   toward the pair only while they are inside the lease's window
   (p.time > now - duration) — the parking-permit aggregation rule:
   longer leases collect bids from deeper history but cost a larger
   factor. A facility's lease type is recoverable from its recorded
   construction cost ({!Problem_env.classify_facility_cost}), so the
   live-lease view is a pure function of the store and the environment
   and never enters the snapshot. *)

type past = { site : int; dual : float; time : int }

type t = {
  metric : Finite_metric.t;
  cost : Cost_function.t;
  durations : int array;
  factors : float array;
  env : Problem_env.t;
  store : Facility_store.t;
  s : int;
  n_sites : int;
  f3 : float array array; (* f3.(e).(m) = f^{{e}}_m *)
  past : past list array; (* per commodity, newest first *)
  mutable n_requests : int;
}

let name = "LEASE-PD"
let family = Problem_env.Family.Multi_facility_leasing

let create ?seed:_ env =
  let metric, cost, durations, factors =
    Problem_env.require_leasing ~algo:name env
  in
  let s = Cost_function.n_commodities cost in
  let n_sites = Finite_metric.size metric in
  {
    metric;
    cost;
    durations;
    factors;
    env;
    store = Facility_store.create env ~n_commodities:s;
    s;
    n_sites;
    f3 =
      Array.init s (fun e ->
          Array.init n_sites (fun m -> Cost_function.singleton_cost cost m e));
    past = Array.make s [];
    n_requests = 0;
  }

(* A facility's lease duration, recovered from its construction cost.
   The store's nearest index ignores expiry, so liveness questions go
   through this scan instead. *)
let duration_of t (f : Facility.t) =
  match
    Problem_env.classify_facility_cost t.env ~site:f.Facility.site
      ~offered:f.Facility.offered ~cost:f.Facility.cost
  with
  | Ok (Some d) -> d
  | Ok None | Error _ ->
      failwith (Printf.sprintf "%s: facility %d has a non-lease cost" name
                  f.Facility.id)

let live t (f : Facility.t) ~now =
  f.Facility.opened_at <= now && now < f.Facility.opened_at + duration_of t f

(* Cheapest live lease offering [e] for a request at [site]; ties go to
   the earliest opening. *)
let best_live t ~commodity ~site ~now =
  List.fold_left
    (fun acc (f : Facility.t) ->
      if Cset.mem f.Facility.offered commodity && live t f ~now then
        let c = Finite_metric.dist t.metric site f.Facility.site in
        match acc with
        | Some (_, best) when best <= c -> acc
        | _ -> Some (f.Facility.id, c)
      else acc)
    None
    (Facility_store.facilities t.store)

let serve_commodity t ~site e =
  let now = t.n_requests in
  let connect_at =
    match best_live t ~commodity:e ~site ~now with
    | Some (_, c) -> c
    | None -> infinity
  in
  let row_r = Finite_metric.row t.metric site in
  let f3e = t.f3.(e) in
  let best_site = ref (-1) and best_kind = ref (-1) in
  let best_open = ref infinity in
  for m = 0 to t.n_sites - 1 do
    (* Bids from past requests of this commodity, windowed per lease
       type: request p pays toward a type-k lease at m only if a lease
       opened now would still be running had it opened at p.time — the
       aggregation that makes long leases pay off. *)
    for k = 0 to Array.length t.durations - 1 do
      let window = t.durations.(k) in
      let bids =
        List.fold_left
          (fun acc p ->
            if p.time > now - window then
              acc +. Numerics.pos (p.dual -. Finite_metric.dist t.metric p.site m)
            else acc)
          0.0 t.past.(e)
      in
      let open_at =
        row_r.(m) +. Numerics.pos ((t.factors.(k) *. f3e.(m)) -. bids)
      in
      if open_at < !best_open then begin
        best_open := open_at;
        best_site := m;
        best_kind := k
      end
    done
  done;
  let dual = Float.min connect_at !best_open in
  if !best_open < connect_at then
    ignore
      (Facility_store.open_facility t.store ~site:!best_site
         ~kind:(Facility.Small e)
         ~cost:(t.factors.(!best_kind) *. f3e.(!best_site))
         ~opened_at:now);
  t.past.(e) <- { site; dual; time = now } :: t.past.(e);
  match best_live t ~commodity:e ~site ~now with
  | Some (id, _) -> (e, id)
  | None -> failwith (name ^ ": no live lease after opening")

let step t (r : Request.t) =
  let pairs =
    List.map (serve_commodity t ~site:r.Request.site)
      (Cset.elements r.Request.demand)
  in
  let service = Service.Per_commodity pairs in
  Facility_store.record_service t.store ~request_site:r.Request.site service;
  t.n_requests <- t.n_requests + 1;
  service

let step_batch t reqs = Algo_intf.batch_of_step ~step t reqs
let run_so_far t = Run.of_store ~algorithm:name t.store
let store t = t.store

(* Persisted: the windowed dual history, the store, and the clock. *)

let snapshot_tag = "omflp.snap.lease-pd.v2"

let w_past b (p : past) =
  Snapshot_codec.w_int b p.site;
  Snapshot_codec.w_float b p.dual;
  Snapshot_codec.w_int b p.time

let r_past r =
  let site = Snapshot_codec.r_int r in
  let dual = Snapshot_codec.r_float r in
  let time = Snapshot_codec.r_int r in
  { site; dual; time }

let snapshot t =
  Snapshot_codec.encode ~tag:snapshot_tag (fun b ->
      Snapshot_codec.w_array (Snapshot_codec.w_list w_past) b t.past;
      Facility_store.write_persisted b (Facility_store.persist t.store);
      Snapshot_codec.w_int b t.n_requests)

let restore env blob =
  Snapshot_codec.decode ~tag:snapshot_tag
    (fun r ->
      let z_past = Snapshot_codec.r_array (Snapshot_codec.r_list r_past) r in
      let z_store = Facility_store.read_persisted r in
      let n_requests = Snapshot_codec.r_int r in
      let t = create env in
      if Array.length z_past <> t.s then
        failwith "Lease_pd.restore: commodity count mismatch";
      Array.blit z_past 0 t.past 0 t.s;
      { t with store = Facility_store.of_persisted env z_store; n_requests })
    blob
