open Omflp_prelude
open Omflp_metric

(* Facility ids are the sequential opening order, so the id->facility map
   is a flat growable array (doubling push) rather than a hashtable, and
   services append to a flat array the same way. *)
type t = {
  env : Omflp_instance.Problem_env.t;
  metric : Finite_metric.t; (* = Problem_env.metric env, cached for hot loops *)
  n_commodities : int;
  mutable fac : Facility.t array; (* slots 0..count-1 valid, opening order *)
  mutable count : int;
  index : Nearest_index.t;
  mutable svc : Service.t array; (* slots 0..n_services-1 valid *)
  mutable n_services : int;
  mutable construction : float;
  mutable assignment : float;
}

let create env ~n_commodities =
  let metric = Omflp_instance.Problem_env.metric env in
  let n_sites = Finite_metric.size metric in
  {
    env;
    metric;
    n_commodities;
    fac = [||];
    count = 0;
    index = Nearest_index.create ~n_commodities ~n_sites;
    svc = [||];
    n_services = 0;
    construction = 0.0;
    assignment = 0.0;
  }

let env t = t.env
let metric t = t.metric
let n_commodities t = t.n_commodities
let index t = t.index

let push_fac t f =
  let cap = Array.length t.fac in
  if t.count = cap then begin
    let grown = Array.make (max 8 (2 * cap)) f in
    Array.blit t.fac 0 grown 0 t.count;
    t.fac <- grown
  end;
  t.fac.(t.count) <- f;
  t.count <- t.count + 1

let push_svc t s =
  let cap = Array.length t.svc in
  if t.n_services = cap then begin
    let grown = Array.make (max 16 (2 * cap)) s in
    Array.blit t.svc 0 grown 0 t.n_services;
    t.svc <- grown
  end;
  t.svc.(t.n_services) <- s;
  t.n_services <- t.n_services + 1

let open_facility t ~site ~kind ~cost ~opened_at =
  if cost < 0.0 then invalid_arg "Facility_store.open_facility: negative cost";
  let offered = Facility.offered_of_kind ~n_commodities:t.n_commodities kind in
  let fac =
    { Facility.id = t.count; site; kind; offered; cost; opened_at }
  in
  push_fac t fac;
  t.construction <- t.construction +. cost;
  Nearest_index.note_opened t.index t.metric ~site ~offered ~id:fac.id;
  fac

let facilities t = Array.to_list (Array.sub t.fac 0 t.count)
let n_facilities t = t.count

let facility t id =
  if id < 0 || id >= t.count then raise Not_found;
  t.fac.(id)

(* Raw site lookup for hot loops: no bounds ceremony beyond the array's. *)
let facility_site t id = t.fac.(id).Facility.site

let dist_offering t ~commodity ~from =
  Nearest_index.dist t.index ~commodity ~site:from

let nearest_offering t ~commodity ~from =
  let id = Nearest_index.id t.index ~commodity ~site:from in
  if id < 0 then None
  else Some (facility t id, Nearest_index.dist t.index ~commodity ~site:from)

let dist_large t ~from = Nearest_index.dist_large t.index ~site:from

let nearest_large t ~from =
  let id = Nearest_index.id_large t.index ~site:from in
  if id < 0 then None
  else Some (facility t id, Nearest_index.dist_large t.index ~site:from)

let record_service t ~request_site service =
  let facility_site id = t.fac.(id).Facility.site in
  let c =
    Service.cost_env ~facility_site ~env:t.env ~request_site service
  in
  t.assignment <- t.assignment +. c;
  push_svc t service

let services t = Array.to_list (Array.sub t.svc 0 t.n_services)

let construction_cost t = t.construction
let assignment_cost t = t.assignment
let total_cost t = t.construction +. t.assignment

(* ---------- persistence ---------- *)

type persisted = {
  ps_n_commodities : int;
  ps_facilities : Facility.t list;  (* opening order *)
  ps_services_rev : Service.t list;
  ps_construction : float;
  ps_assignment : float;
}

let persist t =
  {
    ps_n_commodities = t.n_commodities;
    ps_facilities = facilities t;
    ps_services_rev =
      (let rec go i acc =
         if i = t.n_services then acc else go (i + 1) (t.svc.(i) :: acc)
       in
       go 0 []);
    ps_construction = t.construction;
    ps_assignment = t.assignment;
  }

let of_persisted env (z : persisted) =
  let t = create env ~n_commodities:z.ps_n_commodities in
  (* Re-register the facilities in opening order without re-summing
     costs: the nearest-index cells are min-updates over metric rows, so
     replaying the same opening sequence rebuilds bit-identical tables,
     while the cost accumulators are restored to their serialized values
     (a fresh summation could round differently). *)
  List.iter
    (fun (f : Facility.t) ->
      if f.Facility.id <> t.count then
        failwith "Facility_store.of_persisted: non-sequential facility ids";
      push_fac t f;
      Nearest_index.note_opened t.index t.metric ~site:f.Facility.site
        ~offered:f.Facility.offered ~id:f.Facility.id)
    z.ps_facilities;
  List.iter (fun s -> push_svc t s) (List.rev z.ps_services_rev);
  t.construction <- z.ps_construction;
  t.assignment <- z.ps_assignment;
  t

let write_persisted b (z : persisted) =
  Snapshot_codec.w_int b z.ps_n_commodities;
  Snapshot_codec.w_list Facility.write b z.ps_facilities;
  Snapshot_codec.w_list Service.write b z.ps_services_rev;
  Snapshot_codec.w_float b z.ps_construction;
  Snapshot_codec.w_float b z.ps_assignment

let read_persisted r =
  let ps_n_commodities = Snapshot_codec.r_int r in
  let ps_facilities =
    Snapshot_codec.r_list
      (Facility.read ~n_commodities:ps_n_commodities)
      r
  in
  let ps_services_rev = Snapshot_codec.r_list Service.read r in
  let ps_construction = Snapshot_codec.r_float r in
  let ps_assignment = Snapshot_codec.r_float r in
  { ps_n_commodities; ps_facilities; ps_services_rev; ps_construction;
    ps_assignment }
