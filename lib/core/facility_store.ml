open Omflp_metric

type t = {
  metric : Finite_metric.t;
  n_commodities : int;
  mutable facilities_rev : Facility.t list;
  mutable count : int;
  by_id : (int, Facility.t) Hashtbl.t;
  index : Nearest_index.t;
  mutable services_rev : Service.t list;
  mutable construction : float;
  mutable assignment : float;
}

let create metric ~n_commodities =
  let n_sites = Finite_metric.size metric in
  {
    metric;
    n_commodities;
    facilities_rev = [];
    count = 0;
    by_id = Hashtbl.create 64;
    index = Nearest_index.create ~n_commodities ~n_sites;
    services_rev = [];
    construction = 0.0;
    assignment = 0.0;
  }

let metric t = t.metric
let n_commodities t = t.n_commodities
let index t = t.index

let open_facility t ~site ~kind ~cost ~opened_at =
  if cost < 0.0 then invalid_arg "Facility_store.open_facility: negative cost";
  let offered = Facility.offered_of_kind ~n_commodities:t.n_commodities kind in
  let fac =
    { Facility.id = t.count; site; kind; offered; cost; opened_at }
  in
  t.count <- t.count + 1;
  t.facilities_rev <- fac :: t.facilities_rev;
  Hashtbl.replace t.by_id fac.id fac;
  t.construction <- t.construction +. cost;
  Nearest_index.note_opened t.index t.metric ~site ~offered ~id:fac.id;
  fac

let facilities t = List.rev t.facilities_rev
let n_facilities t = t.count

let facility t id = Hashtbl.find t.by_id id

let dist_offering t ~commodity ~from =
  Nearest_index.dist t.index ~commodity ~site:from

let nearest_offering t ~commodity ~from =
  let id = Nearest_index.id t.index ~commodity ~site:from in
  if id < 0 then None
  else Some (facility t id, Nearest_index.dist t.index ~commodity ~site:from)

let dist_large t ~from = Nearest_index.dist_large t.index ~site:from

let nearest_large t ~from =
  let id = Nearest_index.id_large t.index ~site:from in
  if id < 0 then None
  else Some (facility t id, Nearest_index.dist_large t.index ~site:from)

let record_service t ~request_site service =
  let facility_site id = (facility t id).Facility.site in
  let c =
    Service.cost ~facility_site ~metric:t.metric ~request_site service
  in
  t.assignment <- t.assignment +. c;
  t.services_rev <- service :: t.services_rev

let services t = List.rev t.services_rev

let construction_cost t = t.construction
let assignment_cost t = t.assignment
let total_cost t = t.construction +. t.assignment

(* ---------- persistence ---------- *)

type persisted = {
  ps_n_commodities : int;
  ps_facilities : Facility.t list;  (* opening order *)
  ps_services_rev : Service.t list;
  ps_construction : float;
  ps_assignment : float;
}

let persist t =
  {
    ps_n_commodities = t.n_commodities;
    ps_facilities = facilities t;
    ps_services_rev = t.services_rev;
    ps_construction = t.construction;
    ps_assignment = t.assignment;
  }

let of_persisted metric (z : persisted) =
  let t = create metric ~n_commodities:z.ps_n_commodities in
  (* Re-register the facilities in opening order without re-summing
     costs: the nearest-index cells are min-updates over metric rows, so
     replaying the same opening sequence rebuilds bit-identical tables,
     while the cost accumulators are restored to their serialized values
     (a fresh summation could round differently). *)
  List.iter
    (fun (f : Facility.t) ->
      if f.Facility.id <> t.count then
        failwith "Facility_store.of_persisted: non-sequential facility ids";
      t.count <- t.count + 1;
      t.facilities_rev <- f :: t.facilities_rev;
      Hashtbl.replace t.by_id f.Facility.id f;
      Nearest_index.note_opened t.index t.metric ~site:f.Facility.site
        ~offered:f.Facility.offered ~id:f.Facility.id)
    z.ps_facilities;
  t.services_rev <- z.ps_services_rev;
  t.construction <- z.ps_construction;
  t.assignment <- z.ps_assignment;
  t
