(** GREEDY — a natural rent-or-buy heuristic with no competitive
    guarantee: each request picks the cheapest immediate option among
    per-commodity connect-or-open-at-own-site, opening its exact demand
    set at its own site, or connecting to an existing large facility.

    It never predicts commodities (beyond its own demand), so the
    Theorem 2 adversary defeats it — which is exactly the behaviour the
    lower-bound experiment demonstrates. *)

type t

val name : string

val create :
  ?seed:int ->
  Omflp_metric.Finite_metric.t ->
  Omflp_commodity.Cost_function.t ->
  t

val step : t -> Omflp_instance.Request.t -> Service.t

(** Batch variant of {!step}; decisions are exactly those of folding
    [step] left to right. *)
val step_batch : t -> Omflp_instance.Request.t array -> Service.t array
val run_so_far : t -> Run.t
val store : t -> Facility_store.t

(** See {!Algo_intf.ALGO}: byte-identical continuation. *)
val snapshot : t -> string

val restore :
  Omflp_metric.Finite_metric.t ->
  Omflp_commodity.Cost_function.t ->
  string ->
  t
