(** ALL-LARGE — the always-predict extreme: a primal–dual Online Facility
    Location run where every facility offers the full commodity set [S]
    and costs [f^S_m], and every request connects as a unit.

    The dual of INDEP: optimal-ish when demands overlap heavily, wasteful
    when the optimum would scatter cheap small facilities (e.g. linear
    construction cost). *)

type t

val name : string
val family : Omflp_instance.Problem_env.Family.t

val create : ?seed:int -> Omflp_instance.Problem_env.t -> t

val step : t -> Omflp_instance.Request.t -> Service.t

(** Batch variant of {!step}; decisions are exactly those of folding
    [step] left to right. *)
val step_batch : t -> Omflp_instance.Request.t array -> Service.t array
val run_so_far : t -> Run.t
val store : t -> Facility_store.t

(** See {!Algo_intf.ALGO}: byte-identical continuation. *)
val snapshot : t -> string

val restore : Omflp_instance.Problem_env.t -> string -> t
