(** LEASE-PD — multi-facility leasing primal–dual after Markarian et al.
    (arXiv:2006.16762) on the Fotakis-style PD core: facilities open as
    leases of one of K types (duration × cost factor from the
    environment), past requests bid toward a (site, lease type) pair
    only inside the lease's time window, and requests connect to live
    leases only. Declares the [Multi_facility_leasing] family. *)

type t

val name : string
val family : Omflp_instance.Problem_env.Family.t
val create : ?seed:int -> Omflp_instance.Problem_env.t -> t
val step : t -> Omflp_instance.Request.t -> Service.t

(** Batch variant of {!step}; decisions are exactly those of folding
    [step] left to right. *)
val step_batch : t -> Omflp_instance.Request.t array -> Service.t array

val run_so_far : t -> Run.t
val store : t -> Facility_store.t

(** See {!Algo_intf.ALGO}: byte-identical continuation. *)
val snapshot : t -> string

val restore : Omflp_instance.Problem_env.t -> string -> t
