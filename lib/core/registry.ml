let all () : (string * (module Algo_intf.ALGO)) list =
  [
    (Pd_omflp.name, (module Pd_omflp));
    (Rand_omflp.name, (module Rand_omflp));
    (Indep_baseline.name, (module Indep_baseline));
    (All_large_baseline.name, (module All_large_baseline));
    (Greedy_baseline.name, (module Greedy_baseline));
  ]

let extended () =
  all ()
  @ [
      (Pd_omflp_fast.name, (module Pd_omflp_fast : Algo_intf.ALGO));
      (Heavy_aware.name, (module Heavy_aware));
      (Ofl_adapter.Meyerson_ofl.name, (module Ofl_adapter.Meyerson_ofl));
      (Ofl_adapter.Fotakis_ofl.name, (module Ofl_adapter.Fotakis_ofl));
    ]

let find name =
  let norm = String.lowercase_ascii name in
  List.find_map
    (fun (n, a) -> if String.lowercase_ascii n = norm then Some a else None)
    (extended ())

let names () = List.map fst (extended ())
