module Family = Omflp_instance.Problem_env.Family

let all () : (string * (module Algo_intf.ALGO)) list =
  [
    (Pd_omflp.name, (module Pd_omflp));
    (Rand_omflp.name, (module Rand_omflp));
    (Indep_baseline.name, (module Indep_baseline));
    (All_large_baseline.name, (module All_large_baseline));
    (Greedy_baseline.name, (module Greedy_baseline));
  ]

let extended () =
  all ()
  @ [
      (Pd_omflp_fast.name, (module Pd_omflp_fast : Algo_intf.ALGO));
      (Heavy_aware.name, (module Heavy_aware));
      (Ofl_adapter.Meyerson_ofl.name, (module Ofl_adapter.Meyerson_ofl));
      (Ofl_adapter.Fotakis_ofl.name, (module Ofl_adapter.Fotakis_ofl));
      (Nonmetric_bf.name, (module Nonmetric_bf));
      (Lease_pd.name, (module Lease_pd));
    ]

let family_of (module A : Algo_intf.ALGO) = A.family

let of_family fam =
  List.filter (fun (_, a) -> family_of a = fam) (extended ())

(* The algorithm set a family's "run everything" entry points use: the
   paper's canonical five for OMFLP, every registered algorithm of the
   family otherwise. *)
let canonical_for = function
  | Family.Omflp -> all ()
  | fam -> of_family fam

let names () = List.map fst (extended ())

let find name =
  let norm = String.lowercase_ascii name in
  match
    List.find_map
      (fun (n, a) -> if String.lowercase_ascii n = norm then Some a else None)
      (extended ())
  with
  | Some a -> Ok a
  | None -> Error (`Unknown_algo (name, names ()))

let unknown_algo_message (`Unknown_algo (name, available)) =
  Printf.sprintf "unknown algorithm %S (available: %s)" name
    (String.concat ", " available)
