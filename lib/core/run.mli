(** Completed (or in-progress) outcome of an online algorithm. *)

type t = {
  algorithm : string;
  facilities : Facility.t list;
  services : Service.t list;  (** one per processed request, in order *)
  construction_cost : float;
  assignment_cost : float;
  step_seconds : float array;
      (** per-request wall-clock service latency, one cell per request in
          arrival order; [[||]] unless the run was observed (the
          simulator fills it when metrics or tracing are on) *)
}

val total_cost : t -> float

(** [of_store ~algorithm store] snapshots a {!Facility_store}. *)
val of_store : algorithm:string -> Facility_store.t -> t

(** [n_small run] counts facilities with a singleton configuration. *)
val n_small : t -> int

(** [n_large run] counts full-configuration facilities. *)
val n_large : t -> int

val pp : Format.formatter -> t -> unit
