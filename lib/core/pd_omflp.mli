(** PD-OMFLP — the paper's deterministic primal–dual algorithm
    (Algorithm 1), O(√|S| · log n)-competitive under Condition 1.

    On the arrival of a request [r] demanding [s_r], the dual variables
    [a_re] of all unserved commodities rise simultaneously until one of the
    four constraints becomes tight:

    + [a_re = d(F(e), r)] — connect commodity [e] to an existing facility;
    + [Σ a_re = d(F̂, r)] — connect the whole request to an existing large
      facility;
    + the bids towards a small facility [{e}] at some site [m] reach
      [f^{{e}}_m] — tentatively open it;
    + the bids towards a large facility at [m] reach [f^S_m] — open it,
      discarding tentative small facilities.

    Bid sums of past requests are constant during one arrival (facilities
    only open when processing ends), so each tightness time is computed in
    closed form. *)

type t

val name : string
val family : Omflp_instance.Problem_env.Family.t

val create : ?seed:int -> Omflp_instance.Problem_env.t -> t

(** [create_incremental] runs the identical algorithm but maintains the
    constraint-(3)/(4) bid sums incrementally across arrivals (O(|M|) per
    recorded request plus O(affected · |M|) per facility opening) instead
    of recomputing them from the whole history (O(|s_r| · |M| · n) per
    arrival). Semantically equivalent up to floating-point summation
    order; see {!Pd_omflp_fast} for the packaged algorithm module. *)
val create_incremental : ?seed:int -> Omflp_instance.Problem_env.t -> t

val step : t -> Omflp_instance.Request.t -> Service.t

(** Sequentially equivalent to folding {!step}; warms the block's metric
    rows once up front. See {!Algo_intf.ALGO.step_batch}. *)
val step_batch : t -> Omflp_instance.Request.t array -> Service.t array

val run_so_far : t -> Run.t

(** {1 Snapshot / restore}

    See {!Algo_intf.ALGO}: byte-identical continuation. One blob format
    covers both modes (it records which mode produced it); [restore]
    revives the recomputing mode, [restore_incremental] the incremental
    mode, and each raises [Failure] on a blob from the other mode. *)

val snapshot : t -> string

val restore : Omflp_instance.Problem_env.t -> string -> t

val restore_incremental : Omflp_instance.Problem_env.t -> string -> t

(** {1 Introspection (analysis and tests)} *)

type dual_record = {
  site : int;
  demand : Omflp_commodity.Cset.t;
  duals : float array;  (** [a_re] per commodity; meaningful on [demand] *)
  dual_sum : float;  (** [Σ_{e ∈ s_r} a_re] *)
}

(** [dual_records t] returns one record per processed request, in arrival
    order. *)
val dual_records : t -> dual_record list

(** Which constraint of Algorithm 1 fired, in firing order, while a
    request was processed. *)
type fired =
  | Connected_small of { commodity : int; facility : int; dual : float }
      (** constraint (1): connected to an existing facility *)
  | Opened_small of { commodity : int; site : int; dual : float }
      (** constraint (3): tentative small facility, later confirmed *)
  | Connected_large of { facility : int; dual_sum : float }
      (** constraint (2): whole request to an existing large facility *)
  | Opened_large of { site : int; dual_sum : float }
      (** constraint (4): new large facility, tentatives discarded *)

(** [trace t] is the per-request event log, in arrival order. Events of a
    request that ended in constraint (2)/(4) include the discarded
    tentative openings — they reflect the process, not the outcome. *)
val trace : t -> fired list list

(** [dual_objective t] is [Σ_r Σ_e a_re] — by Corollary 8 at least a third
    of the algorithm's total cost. *)
val dual_objective : t -> float

val store : t -> Facility_store.t

(** [cache_drift t] (incremental mode only) recomputes the bid sums from
    scratch and returns the largest absolute deviation from the
    maintained caches — 0 up to float noise when the incremental
    maintenance is correct. Returns 0 in recomputing mode. Used by the
    equivalence tests. *)
val cache_drift : t -> float
