open Omflp_prelude
open Omflp_commodity

let gamma ~n_commodities ~n_requests =
  1.0
  /. (5.0
     *. sqrt (float_of_int n_commodities)
     *. Numerics.harmonic (max 1 n_requests))

let corollary8 t =
  let run = Pd_omflp.run_so_far t in
  let cost = Run.total_cost run in
  let duals = Pd_omflp.dual_objective t in
  if Numerics.approx_le ~tol:1e-6 cost (3.0 *. duals) then Ok ()
  else
    Error
      (Printf.sprintf "Corollary 8 violated: cost %.9g > 3 * duals %.9g" cost
         (3.0 *. duals))

let exhaustive_limit = 10

let default_configs ~n_commodities =
  if n_commodities <= exhaustive_limit then
    Cset.all_nonempty_subsets ~n_commodities
  else
    Cset.full ~n_commodities
    :: List.init n_commodities (fun e -> Cset.singleton ~n_commodities e)

let scaled_dual_feasible ?configs ?scale metric cost records =
  let n_commodities = Cost_function.n_commodities cost in
  let n_requests = List.length records in
  let scale =
    match scale with
    | Some s -> s
    | None -> gamma ~n_commodities ~n_requests
  in
  let configs =
    match configs with Some cs -> cs | None -> default_configs ~n_commodities
  in
  let n_sites = Omflp_metric.Finite_metric.size metric in
  let violation = ref None in
  (try
     List.iter
       (fun sigma ->
         for m = 0 to n_sites - 1 do
           let lhs =
             List.fold_left
               (fun acc (p : Pd_omflp.dual_record) ->
                 let dual_part =
                   Cset.fold
                     (fun e s ->
                       if Cset.mem sigma e then s +. (scale *. p.duals.(e))
                       else s)
                     p.demand 0.0
                 in
                 acc
                 +. Numerics.pos
                      (dual_part -. Omflp_metric.Finite_metric.dist metric m p.site))
               0.0 records
           in
           if not (Numerics.approx_le ~tol:1e-6 lhs (Cost_function.eval cost m sigma))
           then begin
             violation := Some (m, sigma);
             raise Exit
           end
         done)
       configs
   with Exit -> ());
  match !violation with None -> Ok () | Some v -> Error v

let dual_lower_bound t =
  let records = Pd_omflp.dual_records t in
  let n_requests = List.length records in
  match records with
  | [] -> 0.0
  | p :: _ ->
      let n_commodities = Cset.n_commodities p.demand in
      gamma ~n_commodities ~n_requests *. Pd_omflp.dual_objective t
