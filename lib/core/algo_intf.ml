(** Common interface of online facility-location algorithms.

    Algorithms receive the problem environment up front (metric, cost
    function, and family-specific data — all public knowledge in the
    model) and the requests one by one — they never see the request
    sequence. Each algorithm declares the problem {!Problem_env.Family.t}
    it serves; [create] and [restore] refuse environments of any other
    family with a named [Failure] (see
    {!Omflp_instance.Problem_env.mismatch_message}), so dispatch layers
    (registry, oracle, serve, bench) can rely on capability checks
    instead of family-specific branching. *)

module Problem_env = Omflp_instance.Problem_env

module type ALGO = sig
  type t

  val name : string

  (** The problem family this algorithm serves. *)
  val family : Problem_env.Family.t

  (** [create ?seed env] starts a run; [seed] only matters for randomized
      algorithms. Raises [Failure] on a family mismatch. *)
  val create : ?seed:int -> Problem_env.t -> t

  (** [step t request] irrevocably serves the request (opening facilities
      as needed) and returns the service decision. *)
  val step : t -> Omflp_instance.Request.t -> Service.t

  (** [step_batch t requests] serves a block of requests in array order
      and returns one decision per request, positionally. The contract is
      strict sequential equivalence: decisions, facility ids, cost
      floats, metrics, and traces are exactly those of folding {!step}
      over the array — implementations may only amortize work that is a
      pure function of the inputs (metric row materialization, bounds
      checks), never reorder or fuse the serving itself. The default
      implementation is {!batch_of_step}. *)
  val step_batch : t -> Omflp_instance.Request.t array -> Service.t array

  (** [run_so_far t] snapshots facilities, services, and costs. *)
  val run_so_far : t -> Run.t

  (** [store t] is the algorithm's facility store — the shared mutable
      bookkeeping every algorithm maintains. Serving layers read running
      costs and newly opened facilities off it in O(1) per request
      instead of materializing a full {!Run.t}. *)
  val store : t -> Facility_store.t

  (** [snapshot t] serializes the algorithm's complete mutable state
      (store, per-algorithm scratch that is not a pure function of the
      inputs, and any RNG position) as an opaque versioned blob.

      [restore env blob] revives that state against the same environment.
      The contract is {e byte-identical continuation}: for any request
      sequence, interleaving [snapshot]/[restore] at any point yields
      exactly the decisions, facility ids, and cost floats of the
      uninterrupted run. [restore] raises [Failure] (never a decode crash
      on the envelope) when the blob belongs to another algorithm or
      format version, or when [env]'s family doesn't match the declared
      one; blobs are trusted beyond the envelope tag, so integrity-check
      bytes of unknown provenance before calling it. *)
  val snapshot : t -> string

  val restore : Problem_env.t -> string -> t
end

type packed = (module ALGO)

(** Default batch stepping: a left-to-right fold of [step] (explicit loop
    — [Array.map]'s evaluation order is unspecified and the steps are
    effectful). *)
let batch_of_step ~step t reqs =
  let n = Array.length reqs in
  if n = 0 then [||]
  else begin
    let out = Array.make n (step t reqs.(0)) in
    for i = 1 to n - 1 do
      out.(i) <- step t reqs.(i)
    done;
    out
  end
