(** How a request was served.

    The model charges the distance to every {e distinct} facility the
    request connects to, once per facility — serving several commodities
    over one connection is the whole point of large facilities. *)

type t =
  | To_single of int  (** whole demand to one facility (id), e.g. a large one *)
  | Per_commodity of (int * int) list  (** (commodity, facility id) pairs *)

(** [facility_ids t] is the deduplicated list of connected facilities. *)
val facility_ids : t -> int list

(** [covers ~facility_offered ~demand t] checks the service is feasible:
    every demanded commodity is offered by the facility serving it.
    [facility_offered id] must return the facility's configuration. *)
val covers :
  facility_offered:(int -> Omflp_commodity.Cset.t) ->
  demand:Omflp_commodity.Cset.t ->
  t ->
  bool

(** Snapshot codec v2 field serializers. [read] raises [Failure] on
    malformed bytes. *)
val write : Omflp_prelude.Snapshot_codec.writer -> t -> unit

val read : Omflp_prelude.Snapshot_codec.reader -> t

(** [cost ~facility_site ~metric ~request_site t] is the connection cost:
    the sum of distances to distinct connected facilities. *)
val cost :
  facility_site:(int -> int) ->
  metric:Omflp_metric.Finite_metric.t ->
  request_site:int ->
  t ->
  float

(** [cost_env ~facility_site ~env ~request_site t] is the family-aware
    connection cost: distances come from
    {!Omflp_instance.Problem_env.connection_dist}. Float-identical to
    {!cost} on OMFLP environments. *)
val cost_env :
  facility_site:(int -> int) ->
  env:Omflp_instance.Problem_env.t ->
  request_site:int ->
  t ->
  float
