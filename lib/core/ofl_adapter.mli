(** Adapters lifting single-commodity Online Facility Location algorithms
    ({!Omflp_ofl.Ofl_types.ALGORITHM}) to the joint {!Algo_intf.ALGO}
    interface.

    Each commodity gets an independent OFL run whose opening costs are
    the singleton costs [f^{e}_m]; its openings are mirrored into a
    shared {!Facility_store} as [Small] facilities and every request is
    served per commodity by the nearest mirrored facility. The adapters
    register in {!Registry.extended}, so the conformance oracle and the
    algorithms table exercise the classical OFL baselines without
    special-casing their step signature. *)

module type OFL_SPEC = sig
  module A : Omflp_ofl.Ofl_types.ALGORITHM

  val name : string

  val create :
    ?seed:int ->
    commodity:int ->
    Omflp_metric.Finite_metric.t ->
    opening_costs:float array ->
    A.t
end

module Make (_ : OFL_SPEC) : Algo_intf.ALGO

(** Meyerson's randomized OFL per commodity; the commodity index salts
    the seed so the per-commodity streams are independent. *)
module Meyerson_ofl : Algo_intf.ALGO

(** Fotakis' deterministic primal-dual OFL per commodity. *)
module Fotakis_ofl : Algo_intf.ALGO
