(** Incremental nearest-open-facility index.

    Maintains, for every commodity [e] and site [p], the distance to and
    identity of the nearest open facility offering [e] — the [d(F(e), ·)]
    and [d(F̂, ·)] tables of the paper — updated in O(|σ(f)| · |M|) per
    opening and queried in O(1). Extracted from [Facility_store] so the
    step loops of [Pd_omflp], [Rand_omflp] and [Greedy_baseline] can
    consult it (and its raw rows) directly instead of re-scanning the
    facility list.

    Invariants:
    - [dist t ~commodity ~site] equals the minimum over open facilities
      [f] offering [commodity] of [Finite_metric.dist metric site f.site]
      ([infinity] when no such facility exists), provided every opening
      was reported through {!note_opened} against the same metric.
    - Ties keep the earliest-opened facility ([note_opened] only replaces
      on strictly smaller distance), matching the historical
      [Facility_store] behavior that the decision digests pin.

    Counters: [index.openings], [index.cell_updates]. Queries are not
    counted — they are raw array reads inside the innermost event
    loops. *)

type t

val create : n_commodities:int -> n_sites:int -> t

(** [note_opened t metric ~site ~offered ~id] folds a newly opened
    facility into the tables. [offered] is the facility's commodity set;
    a full set also updates the large-facility tables. *)
val note_opened :
  t ->
  Omflp_metric.Finite_metric.t ->
  site:int ->
  offered:Omflp_commodity.Cset.t ->
  id:int ->
  unit

(** [dist t ~commodity ~site] is [d(F(commodity), site)]; [infinity] if
    no open facility offers it. *)
val dist : t -> commodity:int -> site:int -> float

(** [id t ~commodity ~site] is the nearest such facility's id, [-1] if
    none. *)
val id : t -> commodity:int -> site:int -> int

val dist_large : t -> site:int -> float

val id_large : t -> site:int -> int

(** Read-only views of the underlying flat tables for loops that scan
    every site: cell (commodity [e], site [p]) of {!flat_dist} /
    {!flat_id} lives at [row_base t ~commodity:e + p]. Callers MUST NOT
    mutate them. *)
val flat_dist : t -> float array

val flat_id : t -> int array

val row_base : t -> commodity:int -> int

val dist_large_row : t -> float array

val id_large_row : t -> int array
