type t = {
  algorithm : string;
  facilities : Facility.t list;
  services : Service.t list;
  construction_cost : float;
  assignment_cost : float;
  step_seconds : float array;
}

let total_cost t = t.construction_cost +. t.assignment_cost

let of_store ~algorithm store =
  {
    algorithm;
    facilities = Facility_store.facilities store;
    services = Facility_store.services store;
    construction_cost = Facility_store.construction_cost store;
    assignment_cost = Facility_store.assignment_cost store;
    step_seconds = [||];
  }

let n_small t =
  List.length
    (List.filter
       (fun f -> match f.Facility.kind with Facility.Small _ -> true | _ -> false)
       t.facilities)

let n_large t =
  List.length
    (List.filter
       (fun f -> match f.Facility.kind with Facility.Large -> true | _ -> false)
       t.facilities)

let pp ppf t =
  Format.fprintf ppf
    "%s: total=%.4g (construction=%.4g, assignment=%.4g), %d facilities (%d small, %d large)"
    t.algorithm (total_cost t) t.construction_cost t.assignment_cost
    (List.length t.facilities) (n_small t) (n_large t)
