(** Online simulation engine: feed a request sequence to an algorithm,
    validate every decision, and produce the final {!Run}. *)

(** [validate instance run] re-derives feasibility and cost from first
    principles: every request's service covers its demand using facilities
    open at the time, and the reported construction/assignment costs match
    a recomputation. [Ok ()] or a human-readable error. *)
val validate : Omflp_instance.Instance.t -> Run.t -> (unit, string) result

(** [run ?seed ?check algo instance] executes the full sequence.
    With [check] (default [true]) the run is validated and [Failure] is
    raised on violation — an algorithm bug, never an input property. *)
val run :
  ?seed:int ->
  ?check:bool ->
  (module Algo_intf.ALGO) ->
  Omflp_instance.Instance.t ->
  Run.t

(** [run_many ?seed ?check algos instance] runs an algorithm table on
    one instance, amortizing shared per-instance setup (the lazily
    generated metric rows of the request sites are materialized once for
    the whole table). Decisions are identical to running each algorithm
    through {!run} individually. *)
val run_many :
  ?seed:int ->
  ?check:bool ->
  (string * (module Algo_intf.ALGO)) list ->
  Omflp_instance.Instance.t ->
  (string * Run.t) list

(** [run_all ?seed instance] runs every registered algorithm
    (via {!run_many}). *)
val run_all :
  ?seed:int -> Omflp_instance.Instance.t -> (string * Run.t) list
