(** Shared interface of single-commodity Online Facility Location
    algorithms.

    Requests are site indices arriving online; every site is also a
    potential facility location with an individual opening cost. *)

type run = {
  facilities : int list;  (** opened sites, in opening order *)
  construction_cost : float;
  assignment_cost : float;
}

val total_cost : run -> float

module type ALGORITHM = sig
  type t

  (** [create metric ~opening_costs] starts a fresh run;
      [opening_costs.(m)] is the facility cost at site [m]. Raises
      [Invalid_argument] on arity mismatch or a negative cost. *)
  val create : Omflp_metric.Finite_metric.t -> opening_costs:float array -> t

  (** [step t site] serves the next request, possibly opening facilities;
      returns the request's assignment distance. *)
  val step : t -> int -> float

  val snapshot : t -> run

  (** [save_state t] serializes the algorithm's complete mutable state
      (including any RNG position) as an opaque blob; [restore_state]
      revives it against the same metric and opening costs, such that the
      revived run takes byte-identical decisions on every future request.
      [restore_state] raises [Failure] on a blob from another algorithm
      or format version. *)
  val save_state : t -> string

  val restore_state :
    Omflp_metric.Finite_metric.t -> opening_costs:float array -> string -> t
end
