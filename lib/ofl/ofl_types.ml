type run = {
  facilities : int list;
  construction_cost : float;
  assignment_cost : float;
}

let total_cost run = run.construction_cost +. run.assignment_cost

module type ALGORITHM = sig
  type t

  val create : Omflp_metric.Finite_metric.t -> opening_costs:float array -> t
  val step : t -> int -> float
  val snapshot : t -> run
  val save_state : t -> string
  val restore_state :
    Omflp_metric.Finite_metric.t -> opening_costs:float array -> string -> t
end
