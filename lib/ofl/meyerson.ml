open Omflp_prelude
open Omflp_metric
open Omflp_obs

(* Same work-counter substrate as the multi-commodity algorithms
   (lib/obs), so OFL baselines and PD/RAND comparisons read off one
   measurement surface. *)
let m_steps = Metrics.counter "ofl.meyerson.steps"

let m_coin_flips = Metrics.counter "ofl.meyerson.coin_flips"

let m_facilities_opened = Metrics.counter "ofl.meyerson.facilities_opened"

type cls = { cost : float; sites : int array }

type t = {
  metric : Finite_metric.t;
  rng : Splitmix.t;
  classes : cls array;  (** strictly increasing rounded cost *)
  dist_to_f : float array;  (** per site, distance to nearest open facility *)
  mutable facility_sites : int list;
  mutable construction : float;
  mutable assignment : float;
  opening_costs : float array;
}

let build_classes opening_costs =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun m c ->
      let rounded = if c = 0.0 then 0.0 else Numerics.floor_pow2 c in
      let prev = Option.value (Hashtbl.find_opt tbl rounded) ~default:[] in
      Hashtbl.replace tbl rounded (m :: prev))
    opening_costs;
  let classes =
    Hashtbl.fold
      (fun cost sites acc -> { cost; sites = Array.of_list (List.rev sites) } :: acc)
      tbl []
  in
  Array.of_list (List.sort (fun a b -> Float.compare a.cost b.cost) classes)

let create_seeded metric ~opening_costs ~rng =
  let n = Finite_metric.size metric in
  if Array.length opening_costs <> n then
    invalid_arg "Meyerson.create: opening_costs arity mismatch";
  Array.iter
    (fun c -> if c < 0.0 then invalid_arg "Meyerson.create: negative cost")
    opening_costs;
  {
    metric;
    rng;
    classes = build_classes opening_costs;
    dist_to_f = Array.make n infinity;
    facility_sites = [];
    construction = 0.0;
    assignment = 0.0;
    opening_costs;
  }

let create metric ~opening_costs =
  create_seeded metric ~opening_costs ~rng:(Splitmix.of_int 0x6d65)

let open_facility t m =
  Metrics.incr m_facilities_opened;
  t.facility_sites <- m :: t.facility_sites;
  t.construction <- t.construction +. t.opening_costs.(m);
  for p = 0 to Array.length t.dist_to_f - 1 do
    let d = Finite_metric.dist t.metric p m in
    if d < t.dist_to_f.(p) then t.dist_to_f.(p) <- d
  done

let nearest_in_class t site cls =
  let best_site = ref cls.sites.(0) in
  let best = ref (Finite_metric.dist t.metric site !best_site) in
  Array.iter
    (fun m ->
      let d = Finite_metric.dist t.metric site m in
      if d < !best then begin
        best := d;
        best_site := m
      end)
    cls.sites;
  (!best_site, !best)

let step t site =
  Metrics.incr m_steps;
  let k = Array.length t.classes in
  (* Cumulative-minimum distance to classes 0..i. *)
  let cum = Array.make k infinity in
  let acc = ref infinity in
  Array.iteri
    (fun i cls ->
      let _, d = nearest_in_class t site cls in
      acc := Float.min !acc d;
      cum.(i) <- !acc)
    t.classes;
  (* Connection estimate: nearest open facility, or cheapest
     build-and-connect. *)
  let open_estimate =
    let best = ref infinity in
    Array.iteri
      (fun i cls -> best := Float.min !best (cls.cost +. cum.(i)))
      t.classes;
    !best
  in
  let estimate = Float.min t.dist_to_f.(site) open_estimate in
  (* Per-class opening coin: probability (D_{i-1} - D_i) / C_i with
     D_0 = estimate. *)
  Array.iteri
    (fun i cls ->
      let d_prev = if i = 0 then estimate else cum.(i - 1) in
      let improvement = Float.max 0.0 (d_prev -. cum.(i)) in
      if cls.cost = 0.0 then begin
        (* Free classes: opening is always worthwhile when it beats every
           existing facility (the estimate already counts the free build,
           so compare against open facilities instead). *)
        if cum.(i) < t.dist_to_f.(site) then
          open_facility t (fst (nearest_in_class t site cls))
      end
      else begin
        let p = Float.min 1.0 (improvement /. cls.cost) in
        if p > 0.0 then begin
          Metrics.incr m_coin_flips;
          if Splitmix.bernoulli t.rng p then
            open_facility t (fst (nearest_in_class t site cls))
        end
      end)
    t.classes;
  (* Service guarantee: if nothing is open yet, deterministically realise
     the cheapest build-and-connect option. *)
  if t.dist_to_f.(site) = infinity then begin
    let best_i = ref 0 and best_v = ref infinity in
    Array.iteri
      (fun i cls ->
        let _, d = nearest_in_class t site cls in
        let v = cls.cost +. d in
        if v < !best_v then begin
          best_v := v;
          best_i := i
        end)
      t.classes;
    open_facility t (fst (nearest_in_class t site t.classes.(!best_i)))
  end;
  let dist = t.dist_to_f.(site) in
  t.assignment <- t.assignment +. dist;
  dist

let snapshot t =
  {
    Ofl_types.facilities = List.rev t.facility_sites;
    construction_cost = t.construction;
    assignment_cost = t.assignment;
  }

(* Persisted state: everything [step] reads that is not a pure function
   of (metric, opening_costs) — the RNG position, the opening history,
   the incremental distance table, and the cost accumulators. [classes]
   is rebuilt deterministically from the opening costs. *)

let snapshot_tag = "omflp.snap.meyerson.v2"

let save_state t =
  Snapshot_codec.encode ~tag:snapshot_tag (fun b ->
      Snapshot_codec.w_i64 b (Splitmix.state t.rng);
      Snapshot_codec.w_list Snapshot_codec.w_int b t.facility_sites;
      Snapshot_codec.w_float_array b t.dist_to_f;
      Snapshot_codec.w_float b t.construction;
      Snapshot_codec.w_float b t.assignment)

let restore_state metric ~opening_costs blob =
  Snapshot_codec.decode ~tag:snapshot_tag
    (fun r ->
      let z_rng = Snapshot_codec.r_i64 r in
      let z_facility_sites = Snapshot_codec.r_list Snapshot_codec.r_int r in
      let z_dist_to_f = Snapshot_codec.r_float_array r in
      let z_construction = Snapshot_codec.r_float r in
      let z_assignment = Snapshot_codec.r_float r in
      if Array.length z_dist_to_f <> Finite_metric.size metric then
        failwith "Meyerson.restore_state: snapshot from a different metric";
      let t =
        create_seeded metric ~opening_costs ~rng:(Splitmix.create z_rng)
      in
      {
        t with
        dist_to_f = z_dist_to_f;
        facility_sites = z_facility_sites;
        construction = z_construction;
        assignment = z_assignment;
      })
    blob
