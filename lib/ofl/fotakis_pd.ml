open Omflp_metric
open Omflp_obs

(* Same work-counter substrate as the multi-commodity algorithms
   (lib/obs). [ofl.fotakis.bid_evals] counts past-request bid
   evaluations — the quadratic-in-history work the incremental PD modes
   avoid. *)
let m_steps = Metrics.counter "ofl.fotakis.steps"

let m_bid_evals = Metrics.counter "ofl.fotakis.bid_evals"

let m_facilities_opened = Metrics.counter "ofl.fotakis.facilities_opened"

type past = { site : int; dual : float }

type t = {
  metric : Finite_metric.t;
  opening_costs : float array;
  mutable past : past list;  (** newest first *)
  mutable facility_sites : int list;
  (* dist_to_f.(m): distance from site m to the nearest open facility. *)
  dist_to_f : float array;
  mutable construction : float;
  mutable assignment : float;
}

let create metric ~opening_costs =
  let n = Finite_metric.size metric in
  if Array.length opening_costs <> n then
    invalid_arg "Fotakis_pd.create: opening_costs arity mismatch";
  Array.iter
    (fun c -> if c < 0.0 then invalid_arg "Fotakis_pd.create: negative cost")
    opening_costs;
  {
    metric;
    opening_costs;
    past = [];
    facility_sites = [];
    dist_to_f = Array.make n infinity;
    construction = 0.0;
    assignment = 0.0;
  }

let open_facility t m =
  Metrics.incr m_facilities_opened;
  t.facility_sites <- m :: t.facility_sites;
  t.construction <- t.construction +. t.opening_costs.(m);
  for p = 0 to Array.length t.dist_to_f - 1 do
    let d = Finite_metric.dist t.metric p m in
    if d < t.dist_to_f.(p) then t.dist_to_f.(p) <- d
  done

(* Bid of a past request towards a facility at m: its dual is capped by
   its current distance to the open facility set (it never pays more than
   a reconnection would save). *)
let past_bid t m (p : past) =
  Float.max 0.0 (Float.min p.dual t.dist_to_f.(p.site) -. Finite_metric.dist t.metric p.site m)

let step t site =
  Metrics.incr m_steps;
  let n = Finite_metric.size t.metric in
  (* The dual a_r rises until connect (a_r = d(F, r)) or some site's
     facility is fully paid: (a_r - d(m,r))+ + Σ past bids = f_m, i.e.
     a_r = d(m,r) + f_m - B(m). Take the earliest event. *)
  let connect_at = t.dist_to_f.(site) in
  let best_site = ref (-1) in
  let best_open_at = ref infinity in
  for m = 0 to n - 1 do
    let b = ref 0.0 in
    List.iter
      (fun p ->
        Metrics.incr m_bid_evals;
        b := !b +. past_bid t m p)
      t.past;
    (* Tight when the request's own bid is active: a_r reaches
       d(m, r) + (f_m - B)+, keeping the assignment bounded by the dual. *)
    let open_at =
      Finite_metric.dist t.metric site m
      +. Float.max 0.0 (t.opening_costs.(m) -. !b)
    in
    if open_at < !best_open_at then begin
      best_open_at := open_at;
      best_site := m
    end
  done;
  let dual = Float.min connect_at !best_open_at in
  let dist =
    if !best_open_at < connect_at then begin
      open_facility t !best_site;
      Finite_metric.dist t.metric site !best_site
    end
    else connect_at
  in
  t.past <- { site; dual } :: t.past;
  t.assignment <- t.assignment +. dist;
  dist

let snapshot t =
  {
    Ofl_types.facilities = List.rev t.facility_sites;
    construction_cost = t.construction;
    assignment_cost = t.assignment;
  }

let duals t = List.rev_map (fun p -> p.dual) t.past

(* Persisted state: the frozen duals, the opening history, the distance
   table, and the cost accumulators — all pure data. *)

module Sc = Omflp_prelude.Snapshot_codec

let snapshot_tag = "omflp.snap.fotakis.v2"

let w_past b (p : past) =
  Sc.w_int b p.site;
  Sc.w_float b p.dual

let r_past r =
  let site = Sc.r_int r in
  let dual = Sc.r_float r in
  { site; dual }

let save_state t =
  Sc.encode ~tag:snapshot_tag (fun b ->
      Sc.w_list w_past b t.past;
      Sc.w_list Sc.w_int b t.facility_sites;
      Sc.w_float_array b t.dist_to_f;
      Sc.w_float b t.construction;
      Sc.w_float b t.assignment)

let restore_state metric ~opening_costs blob =
  Sc.decode ~tag:snapshot_tag
    (fun r ->
      let z_past = Sc.r_list r_past r in
      let z_facility_sites = Sc.r_list Sc.r_int r in
      let z_dist_to_f = Sc.r_float_array r in
      let z_construction = Sc.r_float r in
      let z_assignment = Sc.r_float r in
      if Array.length z_dist_to_f <> Finite_metric.size metric then
        failwith "Fotakis_pd.restore_state: snapshot from a different metric";
      let t = create metric ~opening_costs in
      {
        t with
        past = z_past;
        facility_sites = z_facility_sites;
        dist_to_f = z_dist_to_f;
        construction = z_construction;
        assignment = z_assignment;
      })
    blob
