open Omflp_prelude
open Omflp_instance

type solution = {
  facilities : (int * Omflp_commodity.Cset.t) list;
  cost : float;
  restarts_used : int;
}

let facility_set_of_run (run : Omflp_core.Run.t) =
  List.sort_uniq compare
    (List.map
       (fun (f : Omflp_core.Facility.t) -> (f.site, f.offered))
       run.facilities)

let one_pass inst requests =
  (* The offline heuristic always works on the plain-OMFLP view of the
     metric/cost pair, whatever the instance's family. *)
  let t =
    Omflp_core.Pd_omflp.create_incremental
      (Problem_env.omflp inst.Instance.metric inst.Instance.cost)
  in
  Array.iter (fun r -> ignore (Omflp_core.Pd_omflp.step t r)) requests;
  let run =
    Omflp_core.Run.of_store ~algorithm:"pd-offline"
      (Omflp_core.Pd_omflp.store t)
  in
  let facilities = facility_set_of_run run in
  Prune.drop_pass inst facilities

let solve ?(restarts = 3) ?(seed = 0x0ff1) (inst : Instance.t) =
  if restarts < 1 then invalid_arg "Pd_offline.solve: need at least one restart";
  if Instance.n_requests inst = 0 then
    { facilities = []; cost = 0.0; restarts_used = 0 }
  else begin
    let best = ref None in
    for restart = 0 to restarts - 1 do
      let requests = Array.copy inst.requests in
      if restart > 0 then
        Sampler.shuffle (Splitmix.of_int (seed + restart)) requests;
      let facilities, cost = one_pass inst requests in
      match !best with
      | Some (_, c) when c <= cost -> ()
      | _ -> best := Some (facilities, cost)
    done;
    match !best with
    | Some (facilities, cost) -> { facilities; cost; restarts_used = restarts }
    | None -> assert false
  end
