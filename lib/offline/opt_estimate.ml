open Omflp_prelude
open Omflp_commodity
open Omflp_instance

type bracket = {
  lower : float;
  lower_method : string;
  upper : float;
  upper_method : string;
}

let certified b = Numerics.approx_eq ~tol:1e-6 b.lower b.upper

let serve_alone_cost (inst : Instance.t) (r : Request.t) =
  let s = Instance.n_commodities inst in
  let n_sites = Instance.n_sites inst in
  let env = Instance.env inst in
  (* Family-generic: connection costs come from the environment (raw
     matrix for non-metric instances) and facility weights are scaled by
     the cheapest lease factor — OPT cannot open anything cheaper. Both
     degenerate to the identity on plain OMFLP. *)
  let scale = Problem_env.lease_scale_min env in
  let demanded = Array.of_list (Cset.elements r.demand) in
  let k = Array.length demanded in
  let compact = Hashtbl.create (2 * k) in
  Array.iteri (fun i e -> Hashtbl.replace compact e i) demanded;
  let compact_of sigma =
    Cset.fold
      (fun e acc ->
        match Hashtbl.find_opt compact e with
        | Some i -> acc lor (1 lsl i)
        | None -> acc)
      sigma 0
  in
  (* Candidate configurations: everything when |S| is small (exact
     superset minimisation), otherwise the demand's subsets plus S. *)
  let configs, exact =
    if s <= 12 then (Cset.all_nonempty_subsets ~n_commodities:s, true)
    else
      ( Cset.full ~n_commodities:s
        :: List.filter
             (fun c -> not (Cset.is_empty c))
             (Cset.subsets_of r.demand),
        false )
  in
  let sets = ref [] in
  for m = 0 to n_sites - 1 do
    (* best_piece.(bits): cheapest f^sigma_m over sigma covering exactly
       this part of the demand. *)
    let best_piece = Array.make (1 lsl k) infinity in
    List.iter
      (fun sigma ->
        let bits = compact_of sigma in
        let f = Cost_function.eval inst.cost m sigma in
        if f < best_piece.(bits) then best_piece.(bits) <- f)
      configs;
    let d =
      Problem_env.connection_dist env ~facility_site:m ~request_site:r.site
    in
    Array.iteri
      (fun bits f ->
        if bits <> 0 && f < infinity then
          sets :=
            {
              Omflp_covering.Set_cover.weight = (scale *. f) +. d;
              members = Bitset.of_int k bits;
            }
            :: !sets)
      best_piece
  done;
  let _, cost =
    Omflp_covering.Set_cover.exact ~universe:k (Array.of_list !sets)
  in
  (cost, exact)

let single_request_lower (inst : Instance.t) =
  Array.fold_left
    (fun acc r -> Float.max acc (fst (serve_alone_cost inst r)))
    0.0 inst.requests

(* Family-generic bracket for non-OMFLP instances. The dedicated offline
   machinery (ILP, LP relaxation, greedy + local search, PD replays) is
   metric-OMFLP-specific, so the other families use the serve-alone
   bracket: [lower] is the hardest single request — certified, since OPT
   must serve every request and [serve_alone_cost] already prices
   connections from the environment and facilities at the cheapest lease
   factor — and [upper] is the concrete feasible solution that serves
   every request alone at its arrival time. *)
let serve_alone_bracket (inst : Instance.t) =
  let lower = ref 0.0 and upper = ref 0.0 in
  Array.iter
    (fun r ->
      let c, _ = serve_alone_cost inst r in
      lower := Float.max !lower c;
      upper := !upper +. c)
    inst.requests;
  {
    lower = !lower;
    lower_method = "hardest single request";
    upper = !upper;
    upper_method = "serve each request alone";
  }

let bracket ?exact ?(local_search = true) (inst : Instance.t) =
  if Instance.family inst <> Problem_env.Family.Omflp then
    serve_alone_bracket inst
  else
  let s = Instance.n_commodities inst in
  let n_sites = Instance.n_sites inst in
  let n_req = Instance.n_requests inst in
  let want_exact =
    match exact with
    | Some b -> b
    | None -> (s <= 4 && n_sites <= 5 && n_req <= 10) || n_sites = 1
  in
  let exact_value =
    if not want_exact then None
    else if n_sites = 1 && s <= 20 then Some (Exact.single_point_opt inst, "exact set cover (single point)")
    else if s <= 6 then
      Option.map (fun v -> (v, "ILP branch&bound")) (Exact.ilp_opt inst)
    else None
  in
  match exact_value with
  | Some (v, meth) ->
      { lower = v; lower_method = meth; upper = v; upper_method = meth }
  | None ->
      let greedy = Greedy_offline.solve inst in
      let greedy_cost, greedy_method =
        if local_search then begin
          let ls = Local_search.improve inst greedy.facilities in
          if ls.cost < greedy.cost then (ls.cost, "greedy + local search")
          else (greedy.cost, "greedy")
        end
        else (greedy.cost, "greedy")
      in
      (* Second candidate: the paper's primal-dual process run offline
         (shuffled restarts + pruning + optimal reassignment). *)
      let pd = Pd_offline.solve ~restarts:(if local_search then 3 else 2) inst in
      (* Third candidate: simultaneous-growth (Jain-Vazirani-style)
         primal-dual; skipped on large instances where its per-event scan
         would dominate. *)
      let jv_cost =
        if n_req * n_sites * s <= 30_000 then
          Some (Jv_primal_dual.solve inst).Jv_primal_dual.cost
        else None
      in
      let upper, upper_method =
        List.fold_left
          (fun (bc, bm) (c, m) -> if c < bc then (c, m) else (bc, bm))
          (greedy_cost, greedy_method)
          ([ (pd.Pd_offline.cost, "pd-offline") ]
          @ match jv_cost with Some c -> [ (c, "jv primal-dual") ] | None -> [])
      in
      (* LP lower bound on small models, otherwise the single-request
         bound. *)
      let lp_lower =
        if s <= 5 && n_sites * ((1 lsl s) - 1) * (1 + n_req) <= 4000 then begin
          try Some (Omflp_lp.Mflp_model.lp_lower_bound inst, "LP relaxation")
          with _ -> None
        end
        else None
      in
      let sr_lower = single_request_lower inst in
      let sr_method =
        if s <= 12 then "hardest single request"
        else "hardest single request (restricted configs)"
      in
      let lower, lower_method =
        match lp_lower with
        | Some (v, m) when v >= sr_lower -> (v, m)
        | _ -> (sr_lower, sr_method)
      in
      { lower; lower_method; upper; upper_method }
