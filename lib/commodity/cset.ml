open Omflp_prelude

type t = Bitset.t

let empty ~n_commodities = Bitset.create n_commodities
let full ~n_commodities = Bitset.full n_commodities
let singleton ~n_commodities e = Bitset.singleton n_commodities e
let of_list ~n_commodities es = Bitset.of_list n_commodities es

let n_commodities = Bitset.universe
let mem = Bitset.mem
let cardinal = Bitset.cardinal
let is_empty = Bitset.is_empty
let is_full t = Bitset.cardinal t = Bitset.universe t
let union = Bitset.union
let inter = Bitset.inter
let diff = Bitset.diff
let subset = Bitset.subset
let equal = Bitset.equal
let compare = Bitset.compare
let iter = Bitset.iter
let for_all = Bitset.for_all
let exists = Bitset.exists
let fold = Bitset.fold
let elements = Bitset.elements
let add = Bitset.add
let remove = Bitset.remove

let all_subsets ~n_commodities =
  if n_commodities > 20 then
    invalid_arg "Cset.all_subsets: universe too large to enumerate";
  List.init (1 lsl n_commodities) (fun bits -> Bitset.of_int n_commodities bits)

let all_nonempty_subsets ~n_commodities =
  List.filter (fun s -> not (is_empty s)) (all_subsets ~n_commodities)

let subsets_of t =
  let els = Array.of_list (elements t) in
  let k = Array.length els in
  if k > 20 then invalid_arg "Cset.subsets_of: set too large to enumerate";
  List.init (1 lsl k) (fun bits ->
      let s = ref (empty ~n_commodities:(n_commodities t)) in
      for i = 0 to k - 1 do
        if bits land (1 lsl i) <> 0 then s := add !s els.(i)
      done;
      !s)

let write b t =
  Snapshot_codec.w_int b (Bitset.universe t);
  Snapshot_codec.w_int_array b (Bitset.to_words t)

let read r =
  let u = Snapshot_codec.r_int r in
  let words = Snapshot_codec.r_int_array r in
  try Bitset.of_words u words
  with Invalid_argument m -> failwith ("Snapshot_codec: " ^ m)

let pp = Bitset.pp
