(** Commodity sets: subsets of the commodity universe [S = {0, ..., k-1}].

    Thin semantic wrapper over {!Omflp_prelude.Bitset}: configurations of
    facilities (the paper's [σ ⊆ S]) and demand sets of requests (the
    paper's [s_r ⊆ S]) are both values of this type. *)

type t = Omflp_prelude.Bitset.t

(** [empty ~n_commodities] is [∅] in a universe of the given size. *)
val empty : n_commodities:int -> t

(** [full ~n_commodities] is the whole commodity set [S]. *)
val full : n_commodities:int -> t

(** [singleton ~n_commodities e] is [{e}]. *)
val singleton : n_commodities:int -> int -> t

(** [of_list ~n_commodities es] builds a set from element list. *)
val of_list : n_commodities:int -> int list -> t

val n_commodities : t -> int
val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool
val is_full : t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val iter : (int -> unit) -> t -> unit
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val add : t -> int -> t
val remove : t -> int -> t

(** [all_subsets ~n_commodities] enumerates every [σ ⊆ S] (2^|S| sets, in
    bit-pattern order). Raises [Invalid_argument] if [n_commodities > 20]
    to prevent accidental blow-ups. *)
val all_subsets : n_commodities:int -> t list

(** [all_nonempty_subsets ~n_commodities] as above without [∅]. *)
val all_nonempty_subsets : n_commodities:int -> t list

(** [subsets_of t] enumerates the subsets of [t] (including [∅] and [t]).
    Raises [Invalid_argument] if [cardinal t > 20]. *)
val subsets_of : t -> t list

(** Snapshot codec v2 field serializers: universe size + backing words.
    [read] raises [Failure] on malformed bytes. *)
val write : Omflp_prelude.Snapshot_codec.writer -> t -> unit

val read : Omflp_prelude.Snapshot_codec.reader -> t

val pp : Format.formatter -> t -> unit
