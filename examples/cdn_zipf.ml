(* A content-delivery scenario: regional clusters of viewers request
   bundles of content categories with Zipf popularity; edge caches can be
   provisioned with any subset of categories at sqrt-concave cost.

   Demonstrates the offline toolkit: greedy (Ravi-Sinha style), local
   search, the LP-based certified lower bound on a truncated prefix, and
   the PD dual lower bound on the full instance.

     dune exec examples/cdn_zipf.exe *)

open Omflp_prelude
open Omflp_commodity
open Omflp_instance
open Omflp_core

let () =
  let rng = Splitmix.of_int 4242 in
  let n_categories = 8 in
  let inst =
    Generators.clustered rng ~clusters:4 ~per_cluster:5 ~n_requests:60
      ~n_commodities:n_categories ~side:200.0 ~spread:4.0
      ~cost:(fun ~n_commodities ~n_sites ->
        Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
  in
  Format.printf "%a@.@." Instance.pp inst;

  (* Online: deterministic and randomized. *)
  let pd = Simulator.run ~seed:5 (module Pd_omflp) inst in
  let rand = Simulator.run ~seed:5 (module Rand_omflp) inst in
  Format.printf "online  %a@." Run.pp pd;
  Format.printf "online  %a@.@." Run.pp rand;

  (* Offline: greedy, then local search. *)
  let greedy = Omflp_offline.Greedy_offline.solve inst in
  Format.printf "offline greedy:        %.2f with %d caches@."
    greedy.Omflp_offline.Greedy_offline.cost
    (List.length greedy.Omflp_offline.Greedy_offline.facilities);
  let ls =
    Omflp_offline.Local_search.improve ~max_moves:60 inst
      greedy.Omflp_offline.Greedy_offline.facilities
  in
  Format.printf "offline + local search: %.2f (%d improving moves)@.@."
    ls.Omflp_offline.Local_search.cost ls.Omflp_offline.Local_search.moves;

  (* Certified lower bounds: the PD dual (Corollary 17 + weak duality) on
     the whole instance, and the LP relaxation on a small prefix. *)
  let t = Pd_omflp.create (Instance.env inst) in
  Array.iter (fun r -> ignore (Pd_omflp.step t r)) inst.Instance.requests;
  Format.printf "PD dual lower bound on OPT: %.2f@." (Dual_checker.dual_lower_bound t);
  let prefix = Instance.truncate inst 6 in
  (try
     let lp = Omflp_lp.Mflp_model.lp_lower_bound prefix in
     Format.printf "LP lower bound (first %d requests): %.2f@."
       (Instance.n_requests prefix) lp
   with Invalid_argument msg ->
     Format.printf "LP skipped: %s@." msg);

  Format.printf "@.upper/lower picture: OPT is in [%.2f, %.2f]@."
    (Dual_checker.dual_lower_bound t)
    ls.Omflp_offline.Local_search.cost;
  Format.printf "PD-OMFLP ratio against best-known offline: %.3f@."
    (Run.total_cost pd /. ls.Omflp_offline.Local_search.cost)
