(* Quickstart: build a small OMFLP instance by hand, run the deterministic
   algorithm, and inspect the outcome.

     dune exec examples/quickstart.exe *)

open Omflp_commodity
open Omflp_instance
open Omflp_core

let () =
  (* A metric space: five points on a line. Facilities may be built at any
     point; requests arrive at points. *)
  let metric = Omflp_metric.Finite_metric.line [| 0.0; 1.0; 2.0; 10.0; 11.0 |] in

  (* Three commodities; opening a facility with configuration sigma costs
     sqrt(|sigma|) — concave, so bundling commodities is cheaper. *)
  let cost = Cost_function.power_law ~n_commodities:3 ~n_sites:5 ~x:1.0 in

  (* An online request sequence: demands are commodity subsets. *)
  let demand es = Cset.of_list ~n_commodities:3 es in
  let requests =
    [|
      Request.make ~site:0 ~demand:(demand [ 0 ]);
      Request.make ~site:1 ~demand:(demand [ 0; 1 ]);
      Request.make ~site:2 ~demand:(demand [ 0; 1; 2 ]);
      Request.make ~site:3 ~demand:(demand [ 2 ]);
      Request.make ~site:4 ~demand:(demand [ 1; 2 ]);
    |]
  in
  let instance = Instance.make ~name:"quickstart" ~metric ~cost ~requests in
  Format.printf "instance: %a@.@." Instance.pp instance;

  (* Run the paper's deterministic primal-dual algorithm online. The
     simulator re-validates every decision (coverage, costs, causality). *)
  let run = Simulator.run (module Pd_omflp) instance in
  Format.printf "%a@." Run.pp run;
  List.iter (fun f -> Format.printf "  %a@." Facility.pp f) run.Run.facilities;

  (* Compare against the offline optimum (exact on this tiny instance). *)
  let bracket = Omflp_offline.Opt_estimate.bracket instance in
  Format.printf "@.offline OPT: %.4g (%s)@." bracket.Omflp_offline.Opt_estimate.upper
    bracket.Omflp_offline.Opt_estimate.upper_method;
  Format.printf "competitive ratio on this input: %.3f@."
    (Run.total_cost run /. bracket.Omflp_offline.Opt_estimate.upper);

  (* The theory checks of Section 3.2, executable: *)
  let t = Pd_omflp.create (Problem_env.omflp metric cost) in
  Array.iter (fun r -> ignore (Pd_omflp.step t r)) requests;
  (match Dual_checker.corollary8 t with
  | Ok () -> Format.printf "Corollary 8  (cost <= 3 * duals): ok@."
  | Error e -> Format.printf "Corollary 8 violated: %s@." e);
  match Dual_checker.scaled_dual_feasible metric cost (Pd_omflp.dual_records t) with
  | Ok () -> Format.printf "Corollary 17 (scaled duals feasible): ok@."
  | Error (m, sigma) ->
      Format.printf "Corollary 17 violated at site %d, %a@." m Cset.pp sigma
