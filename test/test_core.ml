open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance
open Omflp_core

let check_float tol = Alcotest.(check (float tol))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Facility / Service ---------- *)

let test_offered_of_kind () =
  Alcotest.(check (list int))
    "small" [ 2 ]
    (Cset.elements (Facility.offered_of_kind ~n_commodities:5 (Facility.Small 2)));
  check_int "large" 5
    (Cset.cardinal (Facility.offered_of_kind ~n_commodities:5 Facility.Large))

let test_service_facility_ids () =
  Alcotest.(check (list int))
    "single" [ 3 ]
    (Service.facility_ids (Service.To_single 3));
  Alcotest.(check (list int))
    "dedup" [ 1; 2 ]
    (Service.facility_ids (Service.Per_commodity [ (0, 1); (1, 2); (2, 1) ]))

let test_service_cost_dedup () =
  let metric = Finite_metric.line [| 0.0; 4.0 |] in
  let facility_site = function 1 -> 1 | _ -> 0 in
  (* Two commodities served by the same facility: distance paid once. *)
  let c =
    Service.cost ~facility_site ~metric ~request_site:0
      (Service.Per_commodity [ (0, 1); (1, 1) ])
  in
  check_float 1e-9 "once" 4.0 c;
  let c2 =
    Service.cost ~facility_site ~metric ~request_site:0
      (Service.Per_commodity [ (0, 1); (1, 0) ])
  in
  check_float 1e-9 "distinct facilities" 4.0 c2

let test_service_covers () =
  let offered = function
    | 0 -> Cset.of_list ~n_commodities:4 [ 0; 1 ]
    | _ -> Cset.of_list ~n_commodities:4 [ 2; 3 ]
  in
  let demand = Cset.of_list ~n_commodities:4 [ 0; 2 ] in
  check_bool "covers" true
    (Service.covers ~facility_offered:offered ~demand
       (Service.Per_commodity [ (0, 0); (2, 1) ]));
  check_bool "wrong facility" false
    (Service.covers ~facility_offered:offered ~demand
       (Service.Per_commodity [ (0, 1); (2, 1) ]));
  check_bool "single covers" false
    (Service.covers ~facility_offered:offered ~demand (Service.To_single 0))

(* ---------- Facility_store ---------- *)

let env_of metric ~n_commodities =
  let n_sites = Finite_metric.size metric in
  Problem_env.omflp metric
    (Cost_function.constant ~n_commodities ~n_sites ~cost:1.0)

let mk_store () =
  let metric = Finite_metric.line [| 0.0; 2.0; 5.0 |] in
  Facility_store.create (env_of metric ~n_commodities:3) ~n_commodities:3

let test_store_empty () =
  let store = mk_store () in
  check_bool "no facility" true
    (Facility_store.dist_offering store ~commodity:0 ~from:0 = infinity);
  check_bool "no large" true (Facility_store.dist_large store ~from:0 = infinity);
  check_int "count" 0 (Facility_store.n_facilities store)

let test_store_small_facility () =
  let store = mk_store () in
  let f =
    Facility_store.open_facility store ~site:1 ~kind:(Facility.Small 0)
      ~cost:2.0 ~opened_at:0
  in
  check_int "id" 0 f.Facility.id;
  check_float 1e-9 "dist from 0" 2.0
    (Facility_store.dist_offering store ~commodity:0 ~from:0);
  check_float 1e-9 "dist from 2" 3.0
    (Facility_store.dist_offering store ~commodity:0 ~from:2);
  check_bool "other commodity unserved" true
    (Facility_store.dist_offering store ~commodity:1 ~from:0 = infinity);
  check_bool "not large" true (Facility_store.dist_large store ~from:0 = infinity);
  check_float 1e-9 "construction" 2.0 (Facility_store.construction_cost store)

let test_store_large_facility () =
  let store = mk_store () in
  ignore
    (Facility_store.open_facility store ~site:2 ~kind:Facility.Large ~cost:4.0
       ~opened_at:0);
  for e = 0 to 2 do
    check_float 1e-9
      (Printf.sprintf "commodity %d" e)
      5.0
      (Facility_store.dist_offering store ~commodity:e ~from:0)
  done;
  check_float 1e-9 "large dist" 5.0 (Facility_store.dist_large store ~from:0)

let test_store_nearest_updates () =
  let store = mk_store () in
  ignore
    (Facility_store.open_facility store ~site:2 ~kind:(Facility.Small 1)
       ~cost:1.0 ~opened_at:0);
  ignore
    (Facility_store.open_facility store ~site:0 ~kind:(Facility.Small 1)
       ~cost:1.0 ~opened_at:1);
  let fac, d =
    Option.get (Facility_store.nearest_offering store ~commodity:1 ~from:0)
  in
  check_int "nearest is newer" 1 fac.Facility.id;
  check_float 1e-9 "distance" 0.0 d

let test_store_custom_full_counts_as_large () =
  let store = mk_store () in
  ignore
    (Facility_store.open_facility store ~site:0
       ~kind:(Facility.Custom (Cset.full ~n_commodities:3))
       ~cost:3.0 ~opened_at:0);
  check_float 1e-9 "counts as large" 0.0 (Facility_store.dist_large store ~from:0)

let test_store_service_accounting () =
  let store = mk_store () in
  ignore
    (Facility_store.open_facility store ~site:1 ~kind:Facility.Large ~cost:4.0
       ~opened_at:0);
  Facility_store.record_service store ~request_site:0 (Service.To_single 0);
  check_float 1e-9 "assignment" 2.0 (Facility_store.assignment_cost store);
  check_float 1e-9 "total" 6.0 (Facility_store.total_cost store);
  check_int "services" 1 (List.length (Facility_store.services store))

(* Property: store's nearest tables match brute-force recomputation, on
   line and graph metrics alike. *)
let prop_store_distances =
  QCheck.Test.make ~name:"store distance tables = brute force" ~count:100
    QCheck.small_int (fun seed ->
      let rng = Splitmix.of_int seed in
      let n_sites = 2 + Splitmix.int rng 6 in
      let n_commodities = 1 + Splitmix.int rng 5 in
      let metric =
        if Splitmix.bool rng then
          Finite_metric.line
            (Array.init n_sites (fun _ ->
                 Sampler.uniform_float rng ~lo:0.0 ~hi:30.0))
        else
          Omflp_metric.Metric_gen.random_graph_metric rng ~n:n_sites
            ~extra_edges:2 ~max_weight:5.0
      in
      let store =
        Facility_store.create (env_of metric ~n_commodities) ~n_commodities
      in
      let facs = ref [] in
      for i = 0 to 6 do
        let site = Splitmix.int rng n_sites in
        let kind =
          if Splitmix.bool rng then Facility.Large
          else Facility.Small (Splitmix.int rng n_commodities)
        in
        let f =
          Facility_store.open_facility store ~site ~kind ~cost:1.0 ~opened_at:i
        in
        facs := f :: !facs
      done;
      let ok = ref true in
      for from = 0 to n_sites - 1 do
        for e = 0 to n_commodities - 1 do
          let brute =
            List.fold_left
              (fun acc (f : Facility.t) ->
                if Cset.mem f.offered e then
                  Float.min acc (Finite_metric.dist metric from f.site)
                else acc)
              infinity !facs
          in
          if
            Float.abs (Facility_store.dist_offering store ~commodity:e ~from -. brute)
            > 1e-9
          then ok := false
        done;
        let brute_large =
          List.fold_left
            (fun acc (f : Facility.t) ->
              if Cset.is_full f.offered then
                Float.min acc (Finite_metric.dist metric from f.site)
              else acc)
            infinity !facs
        in
        if Float.abs (Facility_store.dist_large store ~from -. brute_large) > 1e-9
        then ok := false
      done;
      !ok)

(* ---------- Registry ---------- *)

let test_registry () =
  check_int "five canonical algorithms" 5 (List.length (Registry.all ()));
  check_int "eleven with extensions" 11 (List.length (Registry.extended ()));
  check_bool "find PD" true (Result.is_ok (Registry.find "pd-omflp"));
  check_bool "find extension" true (Result.is_ok (Registry.find "heavy-aware"));
  check_bool "find OFL adapter" true
    (Result.is_ok (Registry.find "meyerson-ofl"));
  check_bool "case insensitive" true (Result.is_ok (Registry.find "RAND-omflp"));
  (match Registry.find "nope" with
  | Ok _ -> Alcotest.fail "unknown algorithm resolved"
  | Error (`Unknown_algo (name, available) as e) ->
      Alcotest.(check string) "unknown name echoed" "nope" name;
      Alcotest.(check (list string))
        "available list" (Registry.names ()) available;
      Alcotest.(check string)
        "pinned message"
        "unknown algorithm \"nope\" (available: PD-OMFLP, RAND-OMFLP, INDEP, \
         ALL-LARGE, GREEDY, PD-OMFLP-FAST, HEAVY-AWARE, MEYERSON-OFL, \
         FOTAKIS-OFL, NONMETRIC-BF, LEASE-PD)"
        (Registry.unknown_algo_message e));
  (* Family dispatch: 9 OMFLP algorithms, one per new family. *)
  check_int "omflp family" 9
    (List.length (Registry.of_family Problem_env.Family.Omflp));
  check_int "nonmetric family" 1
    (List.length (Registry.of_family Problem_env.Family.Nonmetric_fl));
  check_int "leasing family" 1
    (List.length
       (Registry.of_family Problem_env.Family.Multi_facility_leasing));
  check_int "canonical omflp = all" 5
    (List.length (Registry.canonical_for Problem_env.Family.Omflp));
  check_int "canonical leasing = of_family" 1
    (List.length
       (Registry.canonical_for Problem_env.Family.Multi_facility_leasing))

(* ---------- Simulator validation ---------- *)

let small_instance () =
  let metric = Finite_metric.line [| 0.0; 1.0; 3.0 |] in
  let cost = Cost_function.power_law ~n_commodities:3 ~n_sites:3 ~x:1.0 in
  let requests =
    [|
      Request.make ~site:0 ~demand:(Cset.of_list ~n_commodities:3 [ 0; 1 ]);
      Request.make ~site:2 ~demand:(Cset.of_list ~n_commodities:3 [ 2 ]);
    |]
  in
  Instance.make ~name:"small" ~metric ~cost ~requests

let test_validate_accepts_good_run () =
  let inst = small_instance () in
  List.iter
    (fun (name, run) ->
      match Simulator.validate inst run with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s rejected: %s" name e)
    (Simulator.run_all ~seed:1 inst)

let test_validate_rejects_uncovered () =
  let inst = small_instance () in
  let run = Simulator.run ~seed:1 (module Pd_omflp) inst in
  (* Tamper: drop the second request's service. *)
  let bad =
    { run with Run.services = [ List.hd run.Run.services; Service.Per_commodity [] ] }
  in
  match Simulator.validate inst bad with
  | Ok () -> Alcotest.fail "tampered run accepted"
  | Error _ -> ()

let test_validate_rejects_wrong_cost () =
  let inst = small_instance () in
  let run = Simulator.run ~seed:1 (module Pd_omflp) inst in
  let bad = { run with Run.construction_cost = run.Run.construction_cost +. 1.0 } in
  match Simulator.validate inst bad with
  | Ok () -> Alcotest.fail "wrong cost accepted"
  | Error _ -> ()

let test_validate_rejects_time_travel () =
  (* A service that uses a facility opened by a later request. *)
  let inst = small_instance () in
  let run = Simulator.run ~seed:1 (module Pd_omflp) inst in
  let last_facility =
    List.fold_left (fun _ f -> f.Facility.id) 0 run.Run.facilities
  in
  let tampered_service = Service.To_single last_facility in
  let bad_facilities =
    List.map
      (fun (f : Facility.t) ->
        if f.id = last_facility then { f with opened_at = 1 } else f)
      run.Run.facilities
  in
  let bad =
    {
      run with
      Run.facilities = bad_facilities;
      services =
        (match run.Run.services with
        | _ :: rest -> tampered_service :: rest
        | [] -> [ tampered_service ]);
    }
  in
  match Simulator.validate inst bad with
  | Ok () -> Alcotest.fail "time travel accepted"
  | Error _ -> ()

(* Property: every registered algorithm produces a validating run on random
   instances across families (the simulator re-checks everything). *)
let random_instance seed =
  let rng = Splitmix.of_int seed in
  let pick = Splitmix.int rng 3 in
  match pick with
  | 0 ->
      Generators.line rng ~n_sites:6 ~n_requests:12 ~n_commodities:4
        ~length:20.0
        ~demand:(Demand.Bernoulli { p = 0.5 })
        ~cost:(fun ~n_commodities ~n_sites ->
          Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
  | 1 ->
      Generators.uniform_metric rng ~n_sites:5 ~d:4.0 ~n_requests:10
        ~n_commodities:5
        ~demand:(Demand.Zipf_bundle { zipf_s = 1.0; max_size = 3 })
        ~cost:(fun ~n_commodities ~n_sites ->
          Cost_function.theorem2 ~n_commodities ~n_sites)
  | _ ->
      Generators.network rng ~n_sites:7 ~extra_edges:3 ~n_requests:10
        ~n_commodities:4
        ~demand:(Demand.Singletons { zipf_s = 0.8 })
        ~cost:(fun ~n_commodities ~n_sites ->
          Cost_function.linear ~n_commodities ~n_sites ~per_commodity:1.5)

let prop_all_algorithms_valid =
  QCheck.Test.make ~name:"all algorithms validate on random instances"
    ~count:60 QCheck.small_int (fun seed ->
      let inst = random_instance seed in
      List.for_all
        (fun (_, algo) ->
          let run = Simulator.run ~seed ~check:false algo inst in
          match Simulator.validate inst run with Ok () -> true | Error _ -> false)
        (Registry.all ()))

(* Run.n_small / n_large counters. *)
let test_run_counters () =
  let inst = small_instance () in
  let run = Simulator.run ~seed:1 (module Indep_baseline) inst in
  check_int "indep: all small" (List.length run.Run.facilities) (Run.n_small run);
  check_int "indep: no large" 0 (Run.n_large run);
  let run = Simulator.run ~seed:1 (module All_large_baseline) inst in
  check_int "all-large: no small" 0 (Run.n_small run);
  check_int "all-large: all large" (List.length run.Run.facilities) (Run.n_large run)

let () =
  Alcotest.run "core"
    [
      ( "facility/service",
        [
          Alcotest.test_case "offered_of_kind" `Quick test_offered_of_kind;
          Alcotest.test_case "facility_ids" `Quick test_service_facility_ids;
          Alcotest.test_case "cost dedup" `Quick test_service_cost_dedup;
          Alcotest.test_case "covers" `Quick test_service_covers;
        ] );
      ( "facility_store",
        [
          Alcotest.test_case "empty" `Quick test_store_empty;
          Alcotest.test_case "small facility" `Quick test_store_small_facility;
          Alcotest.test_case "large facility" `Quick test_store_large_facility;
          Alcotest.test_case "nearest updates" `Quick test_store_nearest_updates;
          Alcotest.test_case "custom full = large" `Quick
            test_store_custom_full_counts_as_large;
          Alcotest.test_case "service accounting" `Quick test_store_service_accounting;
          QCheck_alcotest.to_alcotest prop_store_distances;
        ] );
      ("registry", [ Alcotest.test_case "registry" `Quick test_registry ]);
      ( "simulator",
        [
          Alcotest.test_case "accepts good runs" `Quick test_validate_accepts_good_run;
          Alcotest.test_case "rejects uncovered" `Quick test_validate_rejects_uncovered;
          Alcotest.test_case "rejects wrong cost" `Quick test_validate_rejects_wrong_cost;
          Alcotest.test_case "rejects time travel" `Quick
            test_validate_rejects_time_travel;
          Alcotest.test_case "run counters" `Quick test_run_counters;
          QCheck_alcotest.to_alcotest prop_all_algorithms_valid;
        ] );
    ]
