(* Pool (lib/prelude/pool.ml) unit tests: order preservation across
   domains, deterministic exception propagation, the nested-map inline
   fallback, the jobs=1 no-domain path, and the default-pool
   configuration surface. Workloads are kept tiny — correctness of the
   queue/join machinery is what is under test, not throughput. *)

open Omflp_prelude

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_pool ~jobs f =
  let p = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* ---------- order preservation ---------- *)

let test_map_preserves_order () =
  with_pool ~jobs:4 (fun p ->
      let input = Array.init 100 Fun.id in
      let expected = Array.map (fun i -> i * i) input in
      let got = Pool.map p (fun i -> i * i) input in
      Alcotest.(check (array int)) "squares in order" expected got)

let test_map_matches_serial_map () =
  (* The determinism contract at the pool level: same elements, same
     order, for any job count. *)
  let input = Array.init 57 (fun i -> (i * 37) mod 19) in
  let f x = Printf.sprintf "%d->%d" x (x + 1) in
  let serial = Array.map f input in
  List.iter
    (fun jobs ->
      with_pool ~jobs (fun p ->
          Alcotest.(check (array string))
            (Printf.sprintf "jobs=%d" jobs)
            serial (Pool.map p f input)))
    [ 1; 2; 3; 4 ]

let test_map_empty_and_singleton () =
  with_pool ~jobs:3 (fun p ->
      check_int "empty" 0 (Array.length (Pool.map p (fun x -> x) [||]));
      Alcotest.(check (array int)) "singleton" [| 9 |] (Pool.map p (fun x -> x * x) [| 3 |]))

let test_pool_reuse () =
  (* Workers are spawned once and must survive many map calls. *)
  with_pool ~jobs:2 (fun p ->
      for round = 1 to 20 do
        let got = Pool.map p (fun i -> i + round) (Array.init 8 Fun.id) in
        check_int (Printf.sprintf "round %d" round) (7 + round) got.(7)
      done)

(* ---------- exception propagation ---------- *)

exception Boom of int

let test_exception_propagates () =
  with_pool ~jobs:4 (fun p ->
      Alcotest.check_raises "worker exception reaches caller" (Boom 5)
        (fun () ->
          ignore
            (Pool.map p
               (fun i -> if i = 5 then raise (Boom i) else i)
               (Array.init 16 Fun.id))))

let test_exception_lowest_index_wins () =
  (* Several tasks fail; the propagated exception must be the
     lowest-index one regardless of completion order. *)
  with_pool ~jobs:4 (fun p ->
      Alcotest.check_raises "lowest index" (Boom 3) (fun () ->
          ignore
            (Pool.map p
               (fun i -> if i >= 3 then raise (Boom i) else i)
               (Array.init 12 Fun.id))))

let test_pool_survives_exception () =
  with_pool ~jobs:2 (fun p ->
      (try ignore (Pool.map p (fun _ -> failwith "x") [| 0; 1; 2 |])
       with Failure _ -> ());
      let got = Pool.map p (fun i -> i * 2) (Array.init 6 Fun.id) in
      check_int "usable after failure" 10 got.(5))

(* ---------- nested map: safe inline fallback ---------- *)

let test_nested_map_runs_inline () =
  with_pool ~jobs:3 (fun p ->
      let got =
        Pool.map p
          (fun i ->
            (* A nested map on the same pool must not deadlock; it runs
               inline inside this task. *)
            Array.fold_left ( + ) 0
              (Pool.map p (fun j -> (10 * i) + j) (Array.init 4 Fun.id)))
          (Array.init 6 Fun.id)
      in
      let expected =
        Array.init 6 (fun i ->
            Array.fold_left ( + ) 0 (Array.init 4 (fun j -> (10 * i) + j)))
      in
      Alcotest.(check (array int)) "nested totals" expected got)

(* ---------- jobs = 1: the no-domain path ---------- *)

let test_jobs_one_inline () =
  with_pool ~jobs:1 (fun p ->
      check_int "jobs" 1 (Pool.jobs p);
      (* Inline execution stays on the calling domain. *)
      let self = (Domain.self () :> int) in
      let domains =
        Pool.map p (fun _ -> (Domain.self () :> int)) (Array.init 8 Fun.id)
      in
      Array.iter (fun d -> check_int "ran on caller's domain" self d) domains)

let test_create_rejects_nonpositive () =
  Alcotest.check_raises "jobs=0" (Invalid_argument "Pool.create: jobs must be >= 1")
    (fun () -> ignore (Pool.create ~jobs:0))

(* ---------- shutdown ---------- *)

let test_shutdown_idempotent_and_closes () =
  let p = Pool.create ~jobs:2 in
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map p (fun x -> x) [| 1; 2 |]))

(* ---------- default pool ---------- *)

let test_default_pool_configuration () =
  Alcotest.check_raises "set_default_jobs 0"
    (Invalid_argument "Pool.set_default_jobs: jobs must be >= 1") (fun () ->
      Pool.set_default_jobs 0);
  Pool.set_default_jobs 2;
  check_int "setting stored" 2 (Pool.default_jobs ());
  let p = Pool.default () in
  check_int "pool matches setting" 2 (Pool.jobs p);
  check_bool "default is cached" true (p == Pool.default ());
  let got = Pool.map p (fun i -> i + 1) (Array.init 5 Fun.id) in
  check_int "default pool works" 5 got.(4);
  (* Restore serial default for the rest of the binary. *)
  Pool.set_default_jobs 1;
  check_int "restored" 1 (Pool.jobs (Pool.default ()))

let () =
  Alcotest.run "pool"
    [
      ( "map",
        [
          Alcotest.test_case "preserves order" `Quick test_map_preserves_order;
          Alcotest.test_case "matches serial map" `Quick test_map_matches_serial_map;
          Alcotest.test_case "empty and singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "propagates" `Quick test_exception_propagates;
          Alcotest.test_case "lowest index wins" `Quick
            test_exception_lowest_index_wins;
          Alcotest.test_case "pool survives" `Quick test_pool_survives_exception;
        ] );
      ( "nesting",
        [ Alcotest.test_case "inline fallback" `Quick test_nested_map_runs_inline ] );
      ( "serial",
        [
          Alcotest.test_case "jobs=1 inline" `Quick test_jobs_one_inline;
          Alcotest.test_case "rejects jobs<1" `Quick test_create_rejects_nonpositive;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "shutdown" `Quick test_shutdown_idempotent_and_closes;
          Alcotest.test_case "default pool" `Quick test_default_pool_configuration;
        ] );
    ]
