(* CLI-contract pins: the shared flag validators (lib/cli) must keep
   their exact error strings — they are printed by every subcommand —
   and the bench regression gate (lib/benchkit + Minijson) must read its
   own omflp.bench.v1 output and flag exactly the regressed rows. *)

module Cli_flags = Omflp_cli_support.Cli_flags
module Benchkit = Omflp_benchkit.Benchkit
module Minijson = Omflp_prelude.Minijson

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------- shared flag validators ---------- *)

let test_jobs_errors () =
  check_bool "1 ok" true (Cli_flags.validate_jobs 1 = Ok ());
  check_bool "8 ok" true (Cli_flags.validate_jobs 8 = Ok ());
  check_string "zero" "omflp: --jobs must be >= 1 (got 0)"
    (match Cli_flags.validate_jobs 0 with Error e -> e | Ok () -> "ok");
  check_string "negative" "omflp: --jobs must be >= 1 (got -3)"
    (match Cli_flags.validate_jobs (-3) with Error e -> e | Ok () -> "ok")

let test_nonneg_errors () =
  check_bool "0 ok" true
    (Cli_flags.validate_nonneg ~flag:"--budget" 0 = Ok ());
  check_string "budget" "omflp: --budget must be >= 0 (got -1)"
    (match Cli_flags.validate_nonneg ~flag:"--budget" (-1) with
    | Error e -> e
    | Ok () -> "ok")

let test_conflict_error () =
  check_string "conflict"
    "omflp: --tables-only and --bench-only conflict (together they would \
     run nothing)"
    (Cli_flags.conflict_error "--tables-only" "--bench-only")

(* ---------- Minijson ---------- *)

let test_minijson_roundtrip () =
  let json =
    Minijson.of_string
      {|{"schema": "omflp.bench.v1", "quick": false, "n": 3,
         "benchmarks": [{"name": "a \"quoted\" one", "ns_per_run": 12.5},
                        {"name": "b", "ns_per_run": null}]}|}
  in
  check_bool "schema" true
    (Option.bind (Minijson.member "schema" json) Minijson.to_string
    = Some "omflp.bench.v1");
  check_bool "n" true
    (Option.bind (Minijson.member "n" json) Minijson.to_float = Some 3.0);
  match Option.bind (Minijson.member "benchmarks" json) Minijson.to_list with
  | Some [ a; b ] ->
      check_bool "escaped name" true
        (Option.bind (Minijson.member "name" a) Minijson.to_string
        = Some {|a "quoted" one|});
      check_bool "ns" true
        (Option.bind (Minijson.member "ns_per_run" a) Minijson.to_float
        = Some 12.5);
      check_bool "null ns" true
        (Option.bind (Minijson.member "ns_per_run" b) Minijson.to_float = None)
  | _ -> Alcotest.fail "expected two benchmark rows"

let test_minijson_rejects_garbage () =
  check_bool "raises" true
    (match Minijson.of_string "{\"a\": }" with
    | exception Minijson.Parse_error _ -> true
    | _ -> false)

(* ---------- bench regression gate ---------- *)

let write_baseline rows =
  let path = Filename.temp_file "omflp_baseline" ".json" in
  Benchkit.write_json ~quick:false ~jobs:1 path ~bench_rows:rows
    ~counter_rows:[] ~alloc_rows:[];
  path

let test_gate_round_trip () =
  (* write_json -> read_baseline is the identity on numeric rows. *)
  let rows = [ ("slow one", Some 2000.0); ("fast one", Some 10.5) ] in
  let path = write_baseline rows in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match Benchkit.read_baseline path with
      | Error e -> Alcotest.fail e
      | Ok parsed ->
          check_bool "identical rows" true
            (parsed = [ ("slow one", 2000.0); ("fast one", 10.5) ]))

let test_gate_flags_regressions () =
  let path =
    write_baseline
      [ ("stable", Some 1000.0); ("regressed", Some 1000.0);
        ("improved", Some 1000.0); ("gone", Some 1000.0) ]
  in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let current =
        [
          ("stable", Some 1100.0) (* +10%: inside the 25% budget *);
          ("regressed", Some 1600.0) (* +60%: must be flagged *);
          ("improved", Some 400.0);
          ("brand new", Some 5.0) (* not in baseline: skipped *);
          ("no estimate", None) (* bechamel produced nothing: skipped *);
        ]
      in
      match
        Benchkit.compare_baseline ~baseline_path:path ~max_regression:0.25
          current
      with
      | Error e -> Alcotest.fail e
      | Ok report ->
          check_int "compared" 3 report.Benchkit.compared;
          check_int "skipped" 2 report.Benchkit.skipped;
          (match report.Benchkit.regressions with
          | [ r ] ->
              check_string "row" "regressed" r.Benchkit.reg_name;
              check_bool "ratio" true (Float.abs (r.Benchkit.ratio -. 1.6) < 1e-9)
          | rs ->
              Alcotest.failf "expected exactly one regression, got %d"
                (List.length rs)))

let test_gate_vacuous_fails () =
  (* Regression: a comparison where every row skipped (renamed
     benchmarks, foreign baseline) reported "gate: OK". Zero compared
     rows must be a hard Error with the pinned message. *)
  let path =
    write_baseline [ ("other-a", Some 1000.0); ("other-b", Some 500.0) ]
  in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let current = [ ("mine-1", Some 10.0); ("mine-2", None) ] in
      match
        Benchkit.compare_baseline ~baseline_path:path ~max_regression:0.25
          current
      with
      | Ok _ -> Alcotest.fail "vacuous comparison must not pass"
      | Error e ->
          check_string "pinned message"
            (Benchkit.vacuous_error ~baseline_path:path ~n_rows:2 ~skipped:2)
            e;
      match
        Benchkit.compare_baseline ~baseline_path:path ~max_regression:0.25 []
      with
      | Ok _ -> Alcotest.fail "empty current rows must not pass"
      | Error _ -> ())

let test_gate_partial_skip_passes () =
  (* Skipping is fine as long as at least one row was really compared. *)
  let path = write_baseline [ ("kept", Some 1000.0) ] in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let current =
        [ ("kept", Some 1000.0); ("new-a", Some 1.0); ("new-b", None) ]
      in
      match
        Benchkit.compare_baseline ~baseline_path:path ~max_regression:0.25
          current
      with
      | Error e -> Alcotest.fail e
      | Ok report ->
          check_int "compared" 1 report.Benchkit.compared;
          check_int "skipped" 2 report.Benchkit.skipped;
          check_int "no regressions" 0
            (List.length report.Benchkit.regressions))

(* ---------- end-to-end error pins against the real binary ---------- *)

(* The test runs from _build/default/test (dune runtest) or the
   workspace root (dune exec); anchor on the test executable. *)
let cli_binary =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "omflp_cli.exe"))

let run_cli args =
  let err = Filename.temp_file "omflp_cli_err" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove err)
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s >/dev/null 2>%s </dev/null"
          (Filename.quote cli_binary)
          (String.concat " " (List.map Filename.quote args))
          (Filename.quote err)
      in
      let code = Sys.command cmd in
      (code, In_channel.with_open_text err In_channel.input_all))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let expect_usage_error ~args ~substring =
  if not (Sys.file_exists cli_binary) then Alcotest.skip ();
  let code, err = run_cli args in
  check_int (String.concat " " args ^ " exits 2") 2 code;
  check_bool
    (Printf.sprintf "stderr carries %S (got %S)" substring err)
    true
    (contains ~sub:substring err)

let with_omflp_instance_file f =
  let sc = Omflp_check.Scenario.golden ~master_seed:0xD16E57 ~index:0 in
  let path = Filename.temp_file "omflp_inst" ".txt" in
  Omflp_instance.Serial.save_file path sc.Omflp_check.Scenario.instance;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_serve_unknown_algo () =
  with_omflp_instance_file @@ fun inst ->
  expect_usage_error
    ~args:[ "serve"; "--algo"; "nope"; "--env"; inst ]
    ~substring:
      "omflp: unknown algorithm \"nope\" (available: PD-OMFLP, RAND-OMFLP, \
       INDEP, ALL-LARGE, GREEDY, PD-OMFLP-FAST, HEAVY-AWARE, MEYERSON-OFL, \
       FOTAKIS-OFL, NONMETRIC-BF, LEASE-PD)"

let test_serve_family_mismatch () =
  with_omflp_instance_file @@ fun inst ->
  expect_usage_error
    ~args:[ "serve"; "--algo"; "NONMETRIC-BF"; "--env"; inst ]
    ~substring:
      "omflp serve: family mismatch: algorithm NONMETRIC-BF serves the \
       nonmetric-fl family but the environment is omflp"

let test_check_bad_family () =
  expect_usage_error
    ~args:[ "check"; "--budget"; "0"; "--problem-family"; "bogus" ]
    ~substring:
      "omflp: --problem-family: expected omflp|nonmetric-fl|leasing|all, got \
       \"bogus\""

let test_bench_bad_family () =
  expect_usage_error
    ~args:[ "bench"; "--bench-only"; "--family"; "bogus" ]
    ~substring:
      "omflp: --family: expected omflp|nonmetric-fl|leasing|all, got \"bogus\""

let test_gate_missing_baseline () =
  check_bool "unreadable baseline is an Error" true
    (match
       Benchkit.compare_baseline
         ~baseline_path:"/nonexistent/omflp/baseline.json" ~max_regression:0.25
         []
     with
    | Error _ -> true
    | Ok _ -> false)

let () =
  Alcotest.run "cli"
    [
      ( "flags",
        [
          Alcotest.test_case "--jobs errors" `Quick test_jobs_errors;
          Alcotest.test_case "nonneg errors" `Quick test_nonneg_errors;
          Alcotest.test_case "conflict error" `Quick test_conflict_error;
          Alcotest.test_case "serve --algo unknown is pinned" `Quick
            test_serve_unknown_algo;
          Alcotest.test_case "serve family mismatch is pinned" `Quick
            test_serve_family_mismatch;
          Alcotest.test_case "check --problem-family validation" `Quick
            test_check_bad_family;
          Alcotest.test_case "bench --family validation" `Quick
            test_bench_bad_family;
        ] );
      ( "minijson",
        [
          Alcotest.test_case "roundtrip" `Quick test_minijson_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_minijson_rejects_garbage;
        ] );
      ( "gate",
        [
          Alcotest.test_case "write/read roundtrip" `Quick test_gate_round_trip;
          Alcotest.test_case "flags regressions only" `Quick
            test_gate_flags_regressions;
          Alcotest.test_case "missing baseline" `Quick
            test_gate_missing_baseline;
          Alcotest.test_case "vacuous comparison fails" `Quick
            test_gate_vacuous_fails;
          Alcotest.test_case "partial skip still passes" `Quick
            test_gate_partial_skip_passes;
        ] );
    ]
