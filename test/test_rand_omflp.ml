open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance
open Omflp_core

let check_float tol = Alcotest.(check (float tol))
let check_bool = Alcotest.(check bool)

let run_rand ?(seed = 1) inst =
  Simulator.run ~seed (module Rand_omflp) inst

let test_coverage_guarantee () =
  (* The validation inside Simulator.run already checks full coverage;
     exercise it across many seeds on one instance. *)
  let rng = Splitmix.of_int 5 in
  let inst =
    Generators.line rng ~n_sites:6 ~n_requests:15 ~n_commodities:5 ~length:20.0
      ~demand:(Demand.Bernoulli { p = 0.5 })
      ~cost:(fun ~n_commodities ~n_sites ->
        Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
  in
  for seed = 0 to 30 do
    ignore (run_rand ~seed inst)
  done

let test_seeded_determinism () =
  let rng = Splitmix.of_int 6 in
  let inst =
    Generators.line rng ~n_sites:5 ~n_requests:12 ~n_commodities:4 ~length:15.0
      ~demand:(Demand.Bernoulli { p = 0.5 })
      ~cost:(fun ~n_commodities ~n_sites ->
        Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
  in
  let c1 = Run.total_cost (run_rand ~seed:7 inst) in
  let c2 = Run.total_cost (run_rand ~seed:7 inst) in
  check_float 1e-12 "same seed" c1 c2

let test_seeds_vary () =
  let rng = Splitmix.of_int 7 in
  let inst =
    Generators.line rng ~n_sites:8 ~n_requests:20 ~n_commodities:5 ~length:30.0
      ~demand:(Demand.Bernoulli { p = 0.5 })
      ~cost:(fun ~n_commodities ~n_sites ->
        Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
  in
  let costs =
    List.init 10 (fun seed -> Run.total_cost (run_rand ~seed inst))
  in
  check_bool "randomness visible across seeds" true
    (List.length (List.sort_uniq compare costs) > 1)

let test_zero_cost_sites () =
  (* Free facilities everywhere: the algorithm must not crash on cost-0
     classes and should serve everything at distance ~0. *)
  let metric = Finite_metric.line [| 0.0; 2.0 |] in
  let cost = Cost_function.constant ~n_commodities:3 ~n_sites:2 ~cost:0.0 in
  let inst =
    Instance.make ~name:"free" ~metric ~cost
      ~requests:
        [|
          Request.make ~site:0 ~demand:(Cset.of_list ~n_commodities:3 [ 0; 1 ]);
          Request.make ~site:1 ~demand:(Cset.of_list ~n_commodities:3 [ 2 ]);
        |]
  in
  let run = run_rand inst in
  check_float 1e-9 "zero total" 0.0 (Run.total_cost run)

let test_single_site_single_request () =
  let metric = Finite_metric.single_point () in
  let cost = Cost_function.linear ~n_commodities:2 ~n_sites:1 ~per_commodity:4.0 in
  let inst =
    Instance.make ~name:"one" ~metric ~cost
      ~requests:[| Request.make ~site:0 ~demand:(Cset.singleton ~n_commodities:2 0) |]
  in
  let run = run_rand inst in
  (* Must build something offering commodity 0; the cheapest possibility
     is one small facility: cost in [4, 8] (a large facility costs 8). *)
  check_bool "cost bounded" true
    (Run.total_cost run >= 4.0 -. 1e-9 && Run.total_cost run <= 8.0 +. 1e-9)

let test_expected_competitiveness_theorem2 () =
  (* Mean ratio over seeds on the |S'| = |S| regime should be far below
     the non-predicting sqrt|S| = 8 (INDEP pays exactly 8). *)
  let n_commodities = 64 in
  let rng = Splitmix.of_int 9 in
  let inst =
    Generators.single_point_adversary rng ~n_commodities
      ~cost:Cost_function.theorem2 ~n_requested:n_commodities
  in
  let opt = 8.0 in
  let reps = 15 in
  let total = ref 0.0 in
  for seed = 0 to reps - 1 do
    total := !total +. Run.total_cost (run_rand ~seed inst)
  done;
  let mean_ratio = !total /. float_of_int reps /. opt in
  check_bool "predicts large facilities" true (mean_ratio < 4.0)

let test_lemma20_balance_fresh_state () =
  (* Lemma 20: for a single arriving request the expected spend on small
     facilities and on large facilities each equal the assignment estimate
     min{X(r), Z(r)}. On a fresh state with one request the estimate is
     min over sites of (rounded cost + distance); the measured mean
     construction spend over many seeds must be close to twice that
     (small + large shares), within generous statistical slack. *)
  let metric = Finite_metric.line [| 0.0; 1.0; 3.0 |] in
  let cost = Cost_function.power_law ~n_commodities:4 ~n_sites:3 ~x:1.0 in
  let demand = Cset.of_list ~n_commodities:4 [ 0; 1 ] in
  let r = Request.make ~site:0 ~demand in
  (* X(r,e) per commodity: cheapest class build = rounded cost 1 at own
     site; X = 2. Z: rounded full cost 2 at distance 0; estimate =
     min(2, 2) = 2. *)
  let reps = 4000 in
  let total_construction = ref 0.0 in
  for seed = 0 to reps - 1 do
    let t = Rand_omflp.create ~seed (Problem_env.omflp metric cost) in
    ignore (Rand_omflp.step t r);
    total_construction :=
      !total_construction
      +. Facility_store.construction_cost (Rand_omflp.store t)
  done;
  let mean = !total_construction /. float_of_int reps in
  (* Expected small spend ~ estimate and large spend ~ estimate, but the
     service guarantee and probability clamping shift things; accept a
     generous [0.5, 3] x estimate band around 2*estimate = 4. *)
  check_bool
    (Printf.sprintf "mean construction %.3f within [2, 12]" mean)
    true
    (mean >= 2.0 && mean <= 12.0)

(* Distributional checks of the coin-flip law. On the one-point metric
   with constant construction cost [c], a fresh request with demand S has
   X(r,e) = c for each e in S, X(r) = c|S|, Z(r) = c, estimate = c; the
   single small class of commodity e flips with probability
   min(1, improvement / cls.cost * share) = min(1, (c/c) * (1/|S|)) =
   1/|S|, and the single large class flips with probability c/c = 1 — the
   large facility is always built, and the number of small facilities is
   Binomial(|S|, 1/|S|). *)
let small_flip_frequency ~n_commodities ~reps =
  let metric = Finite_metric.single_point () in
  let cost = Cost_function.constant ~n_commodities ~n_sites:1 ~cost:4.0 in
  let demand =
    Cset.of_list ~n_commodities (List.init n_commodities Fun.id)
  in
  let r = Request.make ~site:0 ~demand in
  let smalls = ref 0 in
  for seed = 0 to reps - 1 do
    let t = Rand_omflp.create ~seed (Problem_env.omflp metric cost) in
    ignore (Rand_omflp.step t r);
    let run = Rand_omflp.run_so_far t in
    Alcotest.(check int) "large facility always built" 1 (Run.n_large run);
    smalls := !smalls + Run.n_small run
  done;
  float_of_int !smalls /. float_of_int (reps * n_commodities)

let test_small_flip_frequency_half () =
  (* |S| = 2: per-commodity flip probability 1/2. 2000 trials x 2 flips;
     [0.46, 0.54] is a +-5 sigma band around the mean. *)
  let freq = small_flip_frequency ~n_commodities:2 ~reps:2000 in
  check_bool
    (Printf.sprintf "frequency %.4f within [0.46, 0.54]" freq)
    true
    (freq >= 0.46 && freq <= 0.54)

let test_small_flip_frequency_quarter () =
  (* |S| = 4: the share split X(r,e)/X(r) = 1/4 scales the probability
     down. 2000 trials x 4 flips; [0.22, 0.28] is a +-6 sigma band. *)
  let freq = small_flip_frequency ~n_commodities:4 ~reps:2000 in
  check_bool
    (Printf.sprintf "frequency %.4f within [0.22, 0.28]" freq)
    true
    (freq >= 0.22 && freq <= 0.28)

let test_rounding_factor_bound () =
  (* Rounding costs down to powers of two loses at most a factor 2: any
     facility's paid cost is at least its class cost and below twice it. *)
  let cost =
    Cost_function.site_scaled
      (Cost_function.power_law ~n_commodities:3 ~n_sites:4 ~x:1.0)
      [| 1.3; 2.7; 0.9; 5.1 |]
  in
  let classes = Omflp_commodity.Cost_classes.build cost in
  List.iter
    (fun key ->
      let cs = Omflp_commodity.Cost_classes.classes classes key in
      Array.iter
        (fun (c : Omflp_commodity.Cost_classes.cls) ->
          Array.iter
            (fun m ->
              let true_cost =
                match key with
                | Omflp_commodity.Cost_classes.Single e ->
                    Cost_function.singleton_cost cost m e
                | Omflp_commodity.Cost_classes.All ->
                    Cost_function.full_cost cost m
              in
              check_bool "within factor 2" true
                (c.cost <= true_cost +. 1e-9
                && true_cost < (2.0 *. c.cost) +. 1e-9))
            c.sites)
        cs)
    [
      Omflp_commodity.Cost_classes.Single 0;
      Omflp_commodity.Cost_classes.Single 2;
      Omflp_commodity.Cost_classes.All;
    ]

let prop_valid_across_families =
  QCheck.Test.make ~name:"validates across families and seeds" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Splitmix.of_int seed in
      let inst =
        match Splitmix.int rng 3 with
        | 0 ->
            Generators.theorem2 rng ~n_commodities:16
        | 1 ->
            Generators.network rng ~n_sites:6 ~extra_edges:3 ~n_requests:8
              ~n_commodities:4
              ~demand:(Demand.Bernoulli { p = 0.4 })
              ~cost:(fun ~n_commodities ~n_sites ->
                Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
        | _ ->
            Generators.clustered rng ~clusters:2 ~per_cluster:3 ~n_requests:8
              ~n_commodities:5 ~side:20.0 ~spread:1.0
              ~cost:(fun ~n_commodities ~n_sites ->
                Cost_function.theorem2 ~n_commodities ~n_sites)
      in
      let run = Simulator.run ~seed ~check:false (module Rand_omflp) inst in
      match Simulator.validate inst run with Ok () -> true | Error _ -> false)

let prop_cost_at_least_lp_bound =
  (* Any feasible online solution costs at least the LP lower bound. *)
  QCheck.Test.make ~name:"cost >= LP lower bound" ~count:20 QCheck.small_int
    (fun seed ->
      let rng = Splitmix.of_int (seed + 31) in
      let inst =
        Generators.line rng ~n_sites:3 ~n_requests:5 ~n_commodities:3
          ~length:8.0
          ~demand:(Demand.Bernoulli { p = 0.6 })
          ~cost:(fun ~n_commodities ~n_sites ->
            Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
      in
      let run = run_rand ~seed inst in
      let lb = Omflp_lp.Mflp_model.lp_lower_bound inst in
      Run.total_cost run >= lb -. 1e-6)

let () =
  Alcotest.run "rand_omflp"
    [
      ( "behaviour",
        [
          Alcotest.test_case "coverage over seeds" `Quick test_coverage_guarantee;
          Alcotest.test_case "seeded determinism" `Quick test_seeded_determinism;
          Alcotest.test_case "seeds vary" `Quick test_seeds_vary;
          Alcotest.test_case "zero-cost sites" `Quick test_zero_cost_sites;
          Alcotest.test_case "single site" `Quick test_single_site_single_request;
          Alcotest.test_case "theorem2 expectation" `Quick
            test_expected_competitiveness_theorem2;
          Alcotest.test_case "Lemma 20 balance (statistical)" `Slow
            test_lemma20_balance_fresh_state;
          Alcotest.test_case "small-flip frequency 1/2 (statistical)" `Slow
            test_small_flip_frequency_half;
          Alcotest.test_case "small-flip frequency 1/4 (statistical)" `Slow
            test_small_flip_frequency_quarter;
          Alcotest.test_case "class rounding factor 2" `Quick
            test_rounding_factor_bound;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_valid_across_families;
          QCheck_alcotest.to_alcotest prop_cost_at_least_lp_bound;
        ] );
    ]
