open Omflp_prelude
open Omflp_commodity
open Omflp_instance

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_request_validation () =
  Alcotest.check_raises "empty demand"
    (Invalid_argument "Request.make: empty demand") (fun () ->
      ignore (Request.make ~site:0 ~demand:(Cset.empty ~n_commodities:3)));
  Alcotest.check_raises "negative site"
    (Invalid_argument "Request.make: negative site") (fun () ->
      ignore
        (Request.make ~site:(-1) ~demand:(Cset.singleton ~n_commodities:3 0)))

let mk_instance () =
  let metric = Omflp_metric.Finite_metric.line [| 0.0; 1.0; 5.0 |] in
  let cost = Cost_function.power_law ~n_commodities:4 ~n_sites:3 ~x:1.0 in
  let requests =
    [|
      Request.make ~site:0 ~demand:(Cset.of_list ~n_commodities:4 [ 0; 1 ]);
      Request.make ~site:2 ~demand:(Cset.of_list ~n_commodities:4 [ 2 ]);
      Request.make ~site:1 ~demand:(Cset.of_list ~n_commodities:4 [ 1; 2 ]);
    |]
  in
  Instance.make ~name:"test" ~metric ~cost ~requests

let test_instance_accessors () =
  let inst = mk_instance () in
  check_int "requests" 3 (Instance.n_requests inst);
  check_int "sites" 3 (Instance.n_sites inst);
  check_int "commodities" 4 (Instance.n_commodities inst);
  check_int "demand pairs" 5 (Instance.total_demand_pairs inst);
  Alcotest.(check (list int))
    "distinct commodities" [ 0; 1; 2 ]
    (Cset.elements (Instance.distinct_commodities inst))

let test_instance_truncate () =
  let inst = mk_instance () in
  check_int "truncated" 2 (Instance.n_requests (Instance.truncate inst 2));
  Alcotest.check_raises "bad length"
    (Invalid_argument "Instance.truncate: bad length") (fun () ->
      ignore (Instance.truncate inst 4))

let test_instance_validation () =
  let metric = Omflp_metric.Finite_metric.line [| 0.0; 1.0 |] in
  let cost = Cost_function.power_law ~n_commodities:4 ~n_sites:3 ~x:1.0 in
  Alcotest.check_raises "site arity"
    (Invalid_argument
       "Instance.make: cost function covers 3 sites but metric has 2")
    (fun () -> ignore (Instance.make ~name:"x" ~metric ~cost ~requests:[||]));
  let cost2 = Cost_function.power_law ~n_commodities:4 ~n_sites:2 ~x:1.0 in
  Alcotest.check_raises "request site"
    (Invalid_argument "Instance.make: request site 5 outside metric") (fun () ->
      ignore
        (Instance.make ~name:"x" ~metric ~cost:cost2
           ~requests:
             [| Request.make ~site:5 ~demand:(Cset.singleton ~n_commodities:4 0) |]))

(* ---------- Demand models ---------- *)

let demand_models =
  [
    ("singletons", Demand.Singletons { zipf_s = 1.0 });
    ("bernoulli", Demand.Bernoulli { p = 0.3 });
    ("zipf bundle", Demand.Zipf_bundle { zipf_s = 1.0; max_size = 4 });
    ( "profile",
      Demand.Profile
        {
          profiles = [| Cset.of_list ~n_commodities:8 [ 0; 2; 4; 6 ] |];
          keep_p = 0.5;
        } );
  ]

let prop_demand_valid =
  List.map
    (fun (name, model) ->
      QCheck.Test.make ~name:(name ^ " yields non-empty in-universe demand")
        ~count:200 QCheck.small_int (fun seed ->
          let rng = Splitmix.of_int seed in
          let d = Demand.sample rng ~n_commodities:8 model in
          (not (Cset.is_empty d)) && Cset.n_commodities d = 8))
    demand_models

let test_demand_singleton_size () =
  let rng = Splitmix.of_int 1 in
  for _ = 1 to 50 do
    check_int "singleton" 1
      (Cset.cardinal
         (Demand.sample rng ~n_commodities:6 (Demand.Singletons { zipf_s = 1.0 })))
  done

let test_demand_profile_subset () =
  let rng = Splitmix.of_int 2 in
  let profile = Cset.of_list ~n_commodities:8 [ 1; 3; 5 ] in
  for _ = 1 to 50 do
    let d =
      Demand.sample rng ~n_commodities:8
        (Demand.Profile { profiles = [| profile |]; keep_p = 0.5 })
    in
    check_bool "subset of profile" true (Cset.subset d profile)
  done

let test_demand_validation () =
  let rng = Splitmix.of_int 3 in
  Alcotest.check_raises "bad p"
    (Invalid_argument "Demand.sample: Bernoulli p must lie in (0, 1]") (fun () ->
      ignore (Demand.sample rng ~n_commodities:4 (Demand.Bernoulli { p = 0.0 })));
  Alcotest.check_raises "empty profiles"
    (Invalid_argument "Demand.sample: empty profile list") (fun () ->
      ignore
        (Demand.sample rng ~n_commodities:4
           (Demand.Profile { profiles = [||]; keep_p = 0.5 })))

(* ---------- Generators ---------- *)

let generator_cases =
  [
    ( "theorem2",
      fun rng -> Generators.theorem2 rng ~n_commodities:16 );
    ( "line",
      fun rng ->
        Generators.line rng ~n_sites:8 ~n_requests:15 ~n_commodities:5
          ~length:10.0
          ~demand:(Demand.Bernoulli { p = 0.4 })
          ~cost:(fun ~n_commodities ~n_sites ->
            Cost_function.power_law ~n_commodities ~n_sites ~x:1.0) );
    ( "clustered",
      fun rng ->
        Generators.clustered rng ~clusters:2 ~per_cluster:3 ~n_requests:10
          ~n_commodities:6 ~side:20.0 ~spread:1.0
          ~cost:(fun ~n_commodities ~n_sites ->
            Cost_function.power_law ~n_commodities ~n_sites ~x:1.0) );
    ( "network",
      fun rng ->
        Generators.network rng ~n_sites:8 ~extra_edges:4 ~n_requests:10
          ~n_commodities:5
          ~demand:(Demand.Bernoulli { p = 0.4 })
          ~cost:(fun ~n_commodities ~n_sites ->
            Cost_function.power_law ~n_commodities ~n_sites ~x:1.0) );
    ( "uniform",
      fun rng ->
        Generators.uniform_metric rng ~n_sites:5 ~d:3.0 ~n_requests:10
          ~n_commodities:5
          ~demand:(Demand.Bernoulli { p = 0.4 })
          ~cost:(fun ~n_commodities ~n_sites ->
            Cost_function.power_law ~n_commodities ~n_sites ~x:1.0) );
  ]

(* Instance.make re-validates everything; the property is that generators
   never trip those validations and produce the advertised shape. *)
let prop_generators_valid =
  List.map
    (fun (name, gen) ->
      QCheck.Test.make ~name:(name ^ " generates valid instances") ~count:25
        QCheck.small_int (fun seed ->
          let inst = gen (Splitmix.of_int seed) in
          Instance.n_requests inst > 0
          && Array.for_all
               (fun (r : Request.t) -> not (Cset.is_empty r.demand))
               inst.Instance.requests))
    generator_cases

let test_theorem2_shape () =
  let rng = Splitmix.of_int 7 in
  let inst = Generators.theorem2 rng ~n_commodities:64 in
  check_int "sqrt|S| requests" 8 (Instance.n_requests inst);
  check_int "single site" 1 (Instance.n_sites inst);
  (* All demands are distinct singletons. *)
  Array.iter
    (fun (r : Request.t) -> check_int "singleton" 1 (Cset.cardinal r.demand))
    inst.Instance.requests;
  check_int "distinct" 8
    (Cset.cardinal (Instance.distinct_commodities inst))

(* ---------- Serialization ---------- *)

let test_serial_round_trip_exact () =
  let inst = mk_instance () in
  let inst' = Serial.round_trip inst in
  check_int "requests" (Instance.n_requests inst) (Instance.n_requests inst');
  check_int "sites" (Instance.n_sites inst) (Instance.n_sites inst');
  check_int "commodities" (Instance.n_commodities inst) (Instance.n_commodities inst');
  (* Metric preserved exactly. *)
  for u = 0 to Instance.n_sites inst - 1 do
    for v = 0 to Instance.n_sites inst - 1 do
      Alcotest.(check (float 0.0))
        "distance"
        (Omflp_metric.Finite_metric.dist inst.Instance.metric u v)
        (Omflp_metric.Finite_metric.dist inst'.Instance.metric u v)
    done
  done;
  (* Size-based cost preserved exactly on every configuration. *)
  List.iter
    (fun sigma ->
      for m = 0 to Instance.n_sites inst - 1 do
        Alcotest.(check (float 0.0))
          "cost"
          (Cost_function.eval inst.Instance.cost m sigma)
          (Cost_function.eval inst'.Instance.cost m sigma)
      done)
    (Cset.all_nonempty_subsets ~n_commodities:4);
  (* Demands preserved. *)
  Array.iteri
    (fun i (r : Request.t) ->
      check_bool "demand" true
        (Cset.equal r.demand inst'.Instance.requests.(i).Request.demand);
      check_int "site" r.site inst'.Instance.requests.(i).Request.site)
    inst.Instance.requests

let prop_serial_round_trip_structural =
  (* Round trip preserves the whole instance bit-for-bit — distances and
     size-based costs print as [%.17g], so equality is exact, not
     approximate — across every generator family x cost family the check
     corpus can contain. *)
  QCheck.Test.make ~name:"round trip is structurally exact across families"
    ~count:60 QCheck.small_int (fun seed ->
      let rng = Splitmix.of_int (seed + 101) in
      let cost =
        match Splitmix.int rng 4 with
        | 0 ->
            fun ~n_commodities ~n_sites ->
              Cost_function.power_law ~n_commodities ~n_sites ~x:1.5
        | 1 ->
            fun ~n_commodities ~n_sites ->
              Cost_function.constant ~n_commodities ~n_sites ~cost:2.5
        | 2 -> Cost_function.theorem2
        | _ ->
            fun ~n_commodities ~n_sites ->
              Cost_function.site_scaled
                (Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
                (Array.init n_sites (fun m -> 0.7 +. (0.31 *. float_of_int m)))
      in
      let _, gen =
        List.nth generator_cases (Splitmix.int rng (List.length generator_cases))
      in
      let inst =
        match gen (Splitmix.of_int seed) with
        | inst when Instance.n_sites inst > 1 ->
            (* Re-cost multi-site instances with the drawn family. *)
            Instance.make ~name:inst.Instance.name ~metric:inst.Instance.metric
              ~cost:
                (cost
                   ~n_commodities:(Instance.n_commodities inst)
                   ~n_sites:(Instance.n_sites inst))
              ~requests:inst.Instance.requests
        | inst -> inst
      in
      let inst' = Serial.round_trip inst in
      let n_sites = Instance.n_sites inst in
      let n_commodities = Instance.n_commodities inst in
      Instance.n_sites inst' = n_sites
      && Instance.n_commodities inst' = n_commodities
      && Instance.n_requests inst' = Instance.n_requests inst
      && (let exact = ref true in
          for u = 0 to n_sites - 1 do
            for v = 0 to n_sites - 1 do
              if
                Omflp_metric.Finite_metric.dist inst.Instance.metric u v
                <> Omflp_metric.Finite_metric.dist inst'.Instance.metric u v
              then exact := false
            done
          done;
          for m = 0 to n_sites - 1 do
            if
              Cost_function.full_cost inst.Instance.cost m
              <> Cost_function.full_cost inst'.Instance.cost m
            then exact := false;
            for e = 0 to n_commodities - 1 do
              if
                Cost_function.singleton_cost inst.Instance.cost m e
                <> Cost_function.singleton_cost inst'.Instance.cost m e
              then exact := false
            done
          done;
          !exact)
      && Array.for_all2
           (fun (r : Request.t) (r' : Request.t) ->
             r.site = r'.site && Cset.equal r.demand r'.demand)
           inst.Instance.requests inst'.Instance.requests)

let prop_serial_round_trip_runs_identically =
  (* Algorithms are deterministic functions of (metric, costs, requests):
     a round-tripped instance must produce the same PD run cost. *)
  QCheck.Test.make ~name:"PD cost invariant under round trip" ~count:30
    QCheck.small_int (fun seed ->
      let rng = Splitmix.of_int seed in
      let inst =
        Generators.line rng ~n_sites:5 ~n_requests:10 ~n_commodities:4
          ~length:12.0
          ~demand:(Demand.Bernoulli { p = 0.5 })
          ~cost:(fun ~n_commodities ~n_sites ->
            Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
      in
      let inst' = Serial.round_trip inst in
      let cost i =
        Omflp_core.Run.total_cost
          (Omflp_core.Simulator.run (module Omflp_core.Pd_omflp) i)
      in
      Float.abs (cost inst -. cost inst') < 1e-9)

let test_serial_rejects_garbage () =
  let tmp = Filename.temp_file "omflp" ".bad" in
  let oc = open_out tmp in
  output_string oc "not an instance\n";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      match Serial.load_file tmp with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "garbage accepted")

let test_serial_rejects_truncated () =
  let inst = mk_instance () in
  let tmp = Filename.temp_file "omflp" ".trunc" in
  Serial.save_file tmp inst;
  (* Drop the last line. *)
  let content = In_channel.with_open_text tmp In_channel.input_all in
  let lines = String.split_on_char '\n' content in
  let truncated =
    String.concat "\n" (List.filteri (fun i _ -> i < List.length lines - 2) lines)
  in
  Out_channel.with_open_text tmp (fun oc -> Out_channel.output_string oc truncated);
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      match Serial.load_file tmp with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "truncated file accepted")

let prop_serial_fuzz_never_crashes =
  (* Randomly corrupting a serialized instance must produce Failure (the
     documented error) or a valid instance — never any other exception. *)
  QCheck.Test.make ~name:"loader survives random corruption" ~count:80
    QCheck.small_int (fun seed ->
      let rng = Splitmix.of_int seed in
      let inst = mk_instance () in
      let tmp = Filename.temp_file "omflp" ".fuzz" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          Serial.save_file tmp inst;
          let content = In_channel.with_open_text tmp In_channel.input_all in
          (* Corrupt: delete a random line, or mangle a random byte. *)
          let corrupted =
            if Splitmix.bool rng then begin
              let lines = String.split_on_char '\n' content in
              let drop = Splitmix.int rng (List.length lines) in
              String.concat "\n" (List.filteri (fun i _ -> i <> drop) lines)
            end
            else begin
              let b = Bytes.of_string content in
              let pos = Splitmix.int rng (Bytes.length b) in
              Bytes.set b pos
                (Char.chr (32 + Splitmix.int rng 90));
              Bytes.to_string b
            end
          in
          Out_channel.with_open_text tmp (fun oc ->
              Out_channel.output_string oc corrupted);
          match Serial.load_file tmp with
          | _ -> true
          | exception Failure _ -> true
          | exception Invalid_argument _ ->
              (* Corrupted numbers can surface as metric/instance
                 validation errors; also documented. *)
              true
          | exception _ -> false))

(* ---------- split_per_commodity ---------- *)

let test_split_per_commodity () =
  let inst = mk_instance () in
  let split = Instance.split_per_commodity inst in
  check_int "one request per pair" (Instance.total_demand_pairs inst)
    (Instance.n_requests split);
  Array.iter
    (fun (r : Request.t) -> check_int "singleton" 1 (Cset.cardinal r.demand))
    split.Instance.requests;
  (* Same multiset of (site, commodity) pairs. *)
  let pairs_of i =
    List.sort compare
      (Array.to_list i.Instance.requests
      |> List.concat_map (fun (r : Request.t) ->
             List.map (fun e -> (r.site, e)) (Cset.elements r.demand)))
  in
  check_bool "same pairs" true (pairs_of inst = pairs_of split)

(* ---------- Instance_stats ---------- *)

let test_stats_basic () =
  let inst = mk_instance () in
  let s = Instance_stats.compute inst in
  check_int "requests" 3 s.Instance_stats.n_requests;
  check_int "distinct" 3 s.Instance_stats.distinct_requested;
  Alcotest.(check (float 1e-9)) "mean size" (5.0 /. 3.0) s.Instance_stats.mean_demand_size;
  check_int "max size" 2 s.Instance_stats.max_demand_size;
  Alcotest.(check (list int))
    "popularity" [ 1; 2; 2; 0 ]
    (Array.to_list s.Instance_stats.popularity)

let test_stats_overlap () =
  (* Two identical demands: Jaccard overlap 1. *)
  let metric = Omflp_metric.Finite_metric.single_point () in
  let cost = Cost_function.power_law ~n_commodities:3 ~n_sites:1 ~x:1.0 in
  let r = Request.make ~site:0 ~demand:(Cset.of_list ~n_commodities:3 [ 0; 1 ]) in
  let inst = Instance.make ~name:"same" ~metric ~cost ~requests:[| r; r |] in
  let s = Instance_stats.compute inst in
  Alcotest.(check (float 1e-9)) "overlap" 1.0 s.Instance_stats.mean_pairwise_overlap;
  Alcotest.(check (float 1e-9)) "spread" 0.0 s.Instance_stats.mean_request_spread

let () =
  Alcotest.run "instance"
    [
      ( "request",
        [ Alcotest.test_case "validation" `Quick test_request_validation ] );
      ( "instance",
        [
          Alcotest.test_case "accessors" `Quick test_instance_accessors;
          Alcotest.test_case "truncate" `Quick test_instance_truncate;
          Alcotest.test_case "validation" `Quick test_instance_validation;
        ] );
      ( "demand",
        [
          Alcotest.test_case "singleton size" `Quick test_demand_singleton_size;
          Alcotest.test_case "profile subset" `Quick test_demand_profile_subset;
          Alcotest.test_case "validation" `Quick test_demand_validation;
        ]
        @ List.map QCheck_alcotest.to_alcotest prop_demand_valid );
      ( "generators",
        Alcotest.test_case "theorem2 shape" `Quick test_theorem2_shape
        :: List.map QCheck_alcotest.to_alcotest prop_generators_valid );
      ( "serial",
        [
          Alcotest.test_case "round trip exact" `Quick test_serial_round_trip_exact;
          Alcotest.test_case "rejects garbage" `Quick test_serial_rejects_garbage;
          Alcotest.test_case "rejects truncated" `Quick test_serial_rejects_truncated;
          Alcotest.test_case "split per commodity" `Quick test_split_per_commodity;
          QCheck_alcotest.to_alcotest prop_serial_round_trip_structural;
          QCheck_alcotest.to_alcotest prop_serial_round_trip_runs_identically;
          QCheck_alcotest.to_alcotest prop_serial_fuzz_never_crashes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "overlap" `Quick test_stats_overlap;
        ] );
    ]
