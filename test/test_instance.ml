open Omflp_prelude
open Omflp_commodity
open Omflp_instance

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_request_validation () =
  Alcotest.check_raises "empty demand"
    (Invalid_argument "Request.make: empty demand") (fun () ->
      ignore (Request.make ~site:0 ~demand:(Cset.empty ~n_commodities:3)));
  Alcotest.check_raises "negative site"
    (Invalid_argument "Request.make: negative site") (fun () ->
      ignore
        (Request.make ~site:(-1) ~demand:(Cset.singleton ~n_commodities:3 0)))

let mk_instance () =
  let metric = Omflp_metric.Finite_metric.line [| 0.0; 1.0; 5.0 |] in
  let cost = Cost_function.power_law ~n_commodities:4 ~n_sites:3 ~x:1.0 in
  let requests =
    [|
      Request.make ~site:0 ~demand:(Cset.of_list ~n_commodities:4 [ 0; 1 ]);
      Request.make ~site:2 ~demand:(Cset.of_list ~n_commodities:4 [ 2 ]);
      Request.make ~site:1 ~demand:(Cset.of_list ~n_commodities:4 [ 1; 2 ]);
    |]
  in
  Instance.make ~name:"test" ~metric ~cost ~requests

let test_instance_accessors () =
  let inst = mk_instance () in
  check_int "requests" 3 (Instance.n_requests inst);
  check_int "sites" 3 (Instance.n_sites inst);
  check_int "commodities" 4 (Instance.n_commodities inst);
  check_int "demand pairs" 5 (Instance.total_demand_pairs inst);
  Alcotest.(check (list int))
    "distinct commodities" [ 0; 1; 2 ]
    (Cset.elements (Instance.distinct_commodities inst))

let test_instance_truncate () =
  let inst = mk_instance () in
  check_int "truncated" 2 (Instance.n_requests (Instance.truncate inst 2));
  Alcotest.check_raises "bad length"
    (Invalid_argument "Instance.truncate: bad length") (fun () ->
      ignore (Instance.truncate inst 4))

let test_instance_validation () =
  let metric = Omflp_metric.Finite_metric.line [| 0.0; 1.0 |] in
  let cost = Cost_function.power_law ~n_commodities:4 ~n_sites:3 ~x:1.0 in
  Alcotest.check_raises "site arity"
    (Invalid_argument
       "Instance.make: cost function covers 3 sites but metric has 2")
    (fun () -> ignore (Instance.make ~name:"x" ~metric ~cost ~requests:[||]));
  let cost2 = Cost_function.power_law ~n_commodities:4 ~n_sites:2 ~x:1.0 in
  Alcotest.check_raises "request site"
    (Invalid_argument "Instance.make: request site 5 outside metric") (fun () ->
      ignore
        (Instance.make ~name:"x" ~metric ~cost:cost2
           ~requests:
             [| Request.make ~site:5 ~demand:(Cset.singleton ~n_commodities:4 0) |]))

(* ---------- Demand models ---------- *)

let demand_models =
  [
    ("singletons", Demand.Singletons { zipf_s = 1.0 });
    ("bernoulli", Demand.Bernoulli { p = 0.3 });
    ("zipf bundle", Demand.Zipf_bundle { zipf_s = 1.0; max_size = 4 });
    ( "profile",
      Demand.Profile
        {
          profiles = [| Cset.of_list ~n_commodities:8 [ 0; 2; 4; 6 ] |];
          keep_p = 0.5;
        } );
  ]

let prop_demand_valid =
  List.map
    (fun (name, model) ->
      QCheck.Test.make ~name:(name ^ " yields non-empty in-universe demand")
        ~count:200 QCheck.small_int (fun seed ->
          let rng = Splitmix.of_int seed in
          let d = Demand.sample rng ~n_commodities:8 model in
          (not (Cset.is_empty d)) && Cset.n_commodities d = 8))
    demand_models

let test_demand_singleton_size () =
  let rng = Splitmix.of_int 1 in
  for _ = 1 to 50 do
    check_int "singleton" 1
      (Cset.cardinal
         (Demand.sample rng ~n_commodities:6 (Demand.Singletons { zipf_s = 1.0 })))
  done

let test_demand_profile_subset () =
  let rng = Splitmix.of_int 2 in
  let profile = Cset.of_list ~n_commodities:8 [ 1; 3; 5 ] in
  for _ = 1 to 50 do
    let d =
      Demand.sample rng ~n_commodities:8
        (Demand.Profile { profiles = [| profile |]; keep_p = 0.5 })
    in
    check_bool "subset of profile" true (Cset.subset d profile)
  done

let test_demand_validation () =
  let rng = Splitmix.of_int 3 in
  Alcotest.check_raises "bad p"
    (Invalid_argument "Demand.sample: Bernoulli p must lie in (0, 1]") (fun () ->
      ignore (Demand.sample rng ~n_commodities:4 (Demand.Bernoulli { p = 0.0 })));
  Alcotest.check_raises "empty profiles"
    (Invalid_argument "Demand.sample: empty profile list") (fun () ->
      ignore
        (Demand.sample rng ~n_commodities:4
           (Demand.Profile { profiles = [||]; keep_p = 0.5 })))

(* ---------- Generators ---------- *)

let generator_cases =
  [
    ( "theorem2",
      fun rng -> Generators.theorem2 rng ~n_commodities:16 );
    ( "line",
      fun rng ->
        Generators.line rng ~n_sites:8 ~n_requests:15 ~n_commodities:5
          ~length:10.0
          ~demand:(Demand.Bernoulli { p = 0.4 })
          ~cost:(fun ~n_commodities ~n_sites ->
            Cost_function.power_law ~n_commodities ~n_sites ~x:1.0) );
    ( "clustered",
      fun rng ->
        Generators.clustered rng ~clusters:2 ~per_cluster:3 ~n_requests:10
          ~n_commodities:6 ~side:20.0 ~spread:1.0
          ~cost:(fun ~n_commodities ~n_sites ->
            Cost_function.power_law ~n_commodities ~n_sites ~x:1.0) );
    ( "network",
      fun rng ->
        Generators.network rng ~n_sites:8 ~extra_edges:4 ~n_requests:10
          ~n_commodities:5
          ~demand:(Demand.Bernoulli { p = 0.4 })
          ~cost:(fun ~n_commodities ~n_sites ->
            Cost_function.power_law ~n_commodities ~n_sites ~x:1.0) );
    ( "uniform",
      fun rng ->
        Generators.uniform_metric rng ~n_sites:5 ~d:3.0 ~n_requests:10
          ~n_commodities:5
          ~demand:(Demand.Bernoulli { p = 0.4 })
          ~cost:(fun ~n_commodities ~n_sites ->
            Cost_function.power_law ~n_commodities ~n_sites ~x:1.0) );
  ]

(* Instance.make re-validates everything; the property is that generators
   never trip those validations and produce the advertised shape. *)
let prop_generators_valid =
  List.map
    (fun (name, gen) ->
      QCheck.Test.make ~name:(name ^ " generates valid instances") ~count:25
        QCheck.small_int (fun seed ->
          let inst = gen (Splitmix.of_int seed) in
          Instance.n_requests inst > 0
          && Array.for_all
               (fun (r : Request.t) -> not (Cset.is_empty r.demand))
               inst.Instance.requests))
    generator_cases

let test_theorem2_shape () =
  let rng = Splitmix.of_int 7 in
  let inst = Generators.theorem2 rng ~n_commodities:64 in
  check_int "sqrt|S| requests" 8 (Instance.n_requests inst);
  check_int "single site" 1 (Instance.n_sites inst);
  (* All demands are distinct singletons. *)
  Array.iter
    (fun (r : Request.t) -> check_int "singleton" 1 (Cset.cardinal r.demand))
    inst.Instance.requests;
  check_int "distinct" 8
    (Cset.cardinal (Instance.distinct_commodities inst))

(* ---------- Serialization ---------- *)

let test_serial_round_trip_exact () =
  let inst = mk_instance () in
  let inst' = Serial.round_trip inst in
  check_int "requests" (Instance.n_requests inst) (Instance.n_requests inst');
  check_int "sites" (Instance.n_sites inst) (Instance.n_sites inst');
  check_int "commodities" (Instance.n_commodities inst) (Instance.n_commodities inst');
  (* Metric preserved exactly. *)
  for u = 0 to Instance.n_sites inst - 1 do
    for v = 0 to Instance.n_sites inst - 1 do
      Alcotest.(check (float 0.0))
        "distance"
        (Omflp_metric.Finite_metric.dist inst.Instance.metric u v)
        (Omflp_metric.Finite_metric.dist inst'.Instance.metric u v)
    done
  done;
  (* Size-based cost preserved exactly on every configuration. *)
  List.iter
    (fun sigma ->
      for m = 0 to Instance.n_sites inst - 1 do
        Alcotest.(check (float 0.0))
          "cost"
          (Cost_function.eval inst.Instance.cost m sigma)
          (Cost_function.eval inst'.Instance.cost m sigma)
      done)
    (Cset.all_nonempty_subsets ~n_commodities:4);
  (* Demands preserved. *)
  Array.iteri
    (fun i (r : Request.t) ->
      check_bool "demand" true
        (Cset.equal r.demand inst'.Instance.requests.(i).Request.demand);
      check_int "site" r.site inst'.Instance.requests.(i).Request.site)
    inst.Instance.requests

let prop_serial_round_trip_structural =
  (* Round trip preserves the whole instance bit-for-bit — distances and
     size-based costs print as [%.17g], so equality is exact, not
     approximate — across every generator family x cost family the check
     corpus can contain. *)
  QCheck.Test.make ~name:"round trip is structurally exact across families"
    ~count:60 QCheck.small_int (fun seed ->
      let rng = Splitmix.of_int (seed + 101) in
      let cost =
        match Splitmix.int rng 4 with
        | 0 ->
            fun ~n_commodities ~n_sites ->
              Cost_function.power_law ~n_commodities ~n_sites ~x:1.5
        | 1 ->
            fun ~n_commodities ~n_sites ->
              Cost_function.constant ~n_commodities ~n_sites ~cost:2.5
        | 2 -> Cost_function.theorem2
        | _ ->
            fun ~n_commodities ~n_sites ->
              Cost_function.site_scaled
                (Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
                (Array.init n_sites (fun m -> 0.7 +. (0.31 *. float_of_int m)))
      in
      let _, gen =
        List.nth generator_cases (Splitmix.int rng (List.length generator_cases))
      in
      let inst =
        match gen (Splitmix.of_int seed) with
        | inst when Instance.n_sites inst > 1 ->
            (* Re-cost multi-site instances with the drawn family. *)
            Instance.make ~name:inst.Instance.name ~metric:inst.Instance.metric
              ~cost:
                (cost
                   ~n_commodities:(Instance.n_commodities inst)
                   ~n_sites:(Instance.n_sites inst))
              ~requests:inst.Instance.requests
        | inst -> inst
      in
      let inst' = Serial.round_trip inst in
      let n_sites = Instance.n_sites inst in
      let n_commodities = Instance.n_commodities inst in
      Instance.n_sites inst' = n_sites
      && Instance.n_commodities inst' = n_commodities
      && Instance.n_requests inst' = Instance.n_requests inst
      && (let exact = ref true in
          for u = 0 to n_sites - 1 do
            for v = 0 to n_sites - 1 do
              if
                Omflp_metric.Finite_metric.dist inst.Instance.metric u v
                <> Omflp_metric.Finite_metric.dist inst'.Instance.metric u v
              then exact := false
            done
          done;
          for m = 0 to n_sites - 1 do
            if
              Cost_function.full_cost inst.Instance.cost m
              <> Cost_function.full_cost inst'.Instance.cost m
            then exact := false;
            for e = 0 to n_commodities - 1 do
              if
                Cost_function.singleton_cost inst.Instance.cost m e
                <> Cost_function.singleton_cost inst'.Instance.cost m e
              then exact := false
            done
          done;
          !exact)
      && Array.for_all2
           (fun (r : Request.t) (r' : Request.t) ->
             r.site = r'.site && Cset.equal r.demand r'.demand)
           inst.Instance.requests inst'.Instance.requests)

let prop_serial_round_trip_runs_identically =
  (* Algorithms are deterministic functions of (metric, costs, requests):
     a round-tripped instance must produce the same PD run cost. *)
  QCheck.Test.make ~name:"PD cost invariant under round trip" ~count:30
    QCheck.small_int (fun seed ->
      let rng = Splitmix.of_int seed in
      let inst =
        Generators.line rng ~n_sites:5 ~n_requests:10 ~n_commodities:4
          ~length:12.0
          ~demand:(Demand.Bernoulli { p = 0.5 })
          ~cost:(fun ~n_commodities ~n_sites ->
            Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
      in
      let inst' = Serial.round_trip inst in
      let cost i =
        Omflp_core.Run.total_cost
          (Omflp_core.Simulator.run (module Omflp_core.Pd_omflp) i)
      in
      Float.abs (cost inst -. cost inst') < 1e-9)

let test_serial_rejects_garbage () =
  let tmp = Filename.temp_file "omflp" ".bad" in
  let oc = open_out tmp in
  output_string oc "not an instance\n";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      match Serial.load_file tmp with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "garbage accepted")

let test_serial_rejects_truncated () =
  let inst = mk_instance () in
  let tmp = Filename.temp_file "omflp" ".trunc" in
  Serial.save_file tmp inst;
  (* Drop the last line. *)
  let content = In_channel.with_open_text tmp In_channel.input_all in
  let lines = String.split_on_char '\n' content in
  let truncated =
    String.concat "\n" (List.filteri (fun i _ -> i < List.length lines - 2) lines)
  in
  Out_channel.with_open_text tmp (fun oc -> Out_channel.output_string oc truncated);
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      match Serial.load_file tmp with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "truncated file accepted")

let prop_serial_fuzz_never_crashes =
  (* Randomly corrupting a serialized instance must produce Failure (the
     documented error) or a valid instance — never any other exception. *)
  QCheck.Test.make ~name:"loader survives random corruption" ~count:80
    QCheck.small_int (fun seed ->
      let rng = Splitmix.of_int seed in
      let inst = mk_instance () in
      let tmp = Filename.temp_file "omflp" ".fuzz" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          Serial.save_file tmp inst;
          let content = In_channel.with_open_text tmp In_channel.input_all in
          (* Corrupt: delete a random line, or mangle a random byte. *)
          let corrupted =
            if Splitmix.bool rng then begin
              let lines = String.split_on_char '\n' content in
              let drop = Splitmix.int rng (List.length lines) in
              String.concat "\n" (List.filteri (fun i _ -> i <> drop) lines)
            end
            else begin
              let b = Bytes.of_string content in
              let pos = Splitmix.int rng (Bytes.length b) in
              Bytes.set b pos
                (Char.chr (32 + Splitmix.int rng 90));
              Bytes.to_string b
            end
          in
          Out_channel.with_open_text tmp (fun oc ->
              Out_channel.output_string oc corrupted);
          match Serial.load_file tmp with
          | _ -> true
          | exception Failure _ -> true
          | exception Invalid_argument _ ->
              (* Corrupted numbers can surface as metric/instance
                 validation errors; also documented. *)
              true
          | exception _ -> false))

(* ---------- split_per_commodity ---------- *)

let test_split_per_commodity () =
  let inst = mk_instance () in
  let split = Instance.split_per_commodity inst in
  check_int "one request per pair" (Instance.total_demand_pairs inst)
    (Instance.n_requests split);
  Array.iter
    (fun (r : Request.t) -> check_int "singleton" 1 (Cset.cardinal r.demand))
    split.Instance.requests;
  (* Same multiset of (site, commodity) pairs. *)
  let pairs_of i =
    List.sort compare
      (Array.to_list i.Instance.requests
      |> List.concat_map (fun (r : Request.t) ->
             List.map (fun e -> (r.site, e)) (Cset.elements r.demand)))
  in
  check_bool "same pairs" true (pairs_of inst = pairs_of split)

(* ---------- Instance_stats ---------- *)

(* ---------- Arrival models ---------- *)

let request_compare (a : Request.t) (b : Request.t) =
  match compare a.site b.site with 0 -> Cset.compare a.demand b.demand | c -> c

let sorted_requests arr =
  let copy = Array.copy arr in
  Array.sort request_compare copy;
  copy

let arrival_cases =
  [
    Arrival.Adversarial;
    Arrival.Random_order { seed = 7 };
    Arrival.Iid
      { seed = 7; n_requests = 5; demand = Demand.Singletons { zipf_s = 1.0 } };
  ]

let test_arrival_apply_pure () =
  (* [apply] never mutates its input and never aliases it in the result —
     the regression behind the old in-place scenario reorder. *)
  let inst = mk_instance () in
  let before = Array.map (fun r -> r) inst.Instance.requests in
  List.iter
    (fun arrival ->
      let out =
        Arrival.apply arrival ~n_sites:(Instance.n_sites inst)
          ~n_commodities:(Instance.n_commodities inst) inst.Instance.requests
      in
      check_bool "result is a fresh array" true (out != inst.Instance.requests);
      check_bool "source unchanged" true (inst.Instance.requests = before))
    arrival_cases;
  (* Same through the generator combinator: the source instance keeps its
     own order after a derived instance is built. *)
  let derived =
    Generators.with_arrival (Arrival.Random_order { seed = 3 }) inst
  in
  check_bool "with_arrival leaves the source instance unchanged" true
    (inst.Instance.requests = before);
  check_bool "derived instance has its own array" true
    (derived.Instance.requests != inst.Instance.requests)

let big_requests n =
  Array.init n (fun i ->
      Request.make ~site:i ~demand:(Cset.singleton ~n_commodities:2 (i mod 2)))

let prop_ro_permutation =
  QCheck.Test.make ~name:"random-order is a seed-deterministic permutation"
    ~count:100 QCheck.small_int (fun s ->
      let reqs = big_requests 20 in
      let apply seed =
        Arrival.apply
          (Arrival.Random_order { seed })
          ~n_sites:20 ~n_commodities:2 reqs
      in
      let a = apply s and b = apply s in
      a = b
      (* same seed, same permutation *)
      && sorted_requests a = sorted_requests reqs
      (* true permutation: multiset-equal to the source *))

let test_ro_distinct_seeds_differ () =
  (* 20 distinct sites give 20! orders; ten deterministic seeds must land
     on ten pairwise-distinct permutations (fixed seeds, no flakiness). *)
  let reqs = big_requests 20 in
  let perms =
    List.init 10 (fun seed ->
        Arrival.apply
          (Arrival.Random_order { seed })
          ~n_sites:20 ~n_commodities:2 reqs)
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            check_bool (Printf.sprintf "seeds %d vs %d differ" i j) true
              (a <> b))
        perms)
    perms

let test_arrival_string_codec () =
  let cases =
    arrival_cases
    @ [
        Arrival.Iid
          {
            seed = 123456789;
            n_requests = 40;
            demand = Demand.Bernoulli { p = 0.375 };
          };
        Arrival.Iid
          {
            seed = 1;
            n_requests = 3;
            demand = Demand.Zipf_bundle { zipf_s = 1.5; max_size = 2 };
          };
        Arrival.Iid
          {
            seed = 2;
            n_requests = 6;
            demand =
              Demand.Profile
                {
                  profiles =
                    [|
                      Cset.of_list ~n_commodities:4 [ 0; 2 ];
                      Cset.of_list ~n_commodities:4 [ 1; 2; 3 ];
                    |];
                  keep_p = 0.75;
                };
          };
      ]
  in
  List.iter
    (fun a ->
      let s = Arrival.to_string a in
      check_bool (s ^ " round-trips") true
        (Arrival.of_string ~n_commodities:4 s = a))
    cases;
  Alcotest.check_raises "malformed spec"
    (Failure "Arrival.of_string: malformed \"bogus 1\"") (fun () ->
      ignore (Arrival.of_string ~n_commodities:4 "bogus 1"))

let test_arrival_serial_round_trip () =
  (* A non-adversarial instance keeps both its materialized order and its
     arrival provenance across save/load. *)
  List.iter
    (fun arrival ->
      let inst = Generators.with_arrival arrival (mk_instance ()) in
      let back = Serial.round_trip inst in
      check_bool "arrival preserved" true (back.Instance.arrival = arrival);
      check_bool "materialized order preserved" true
        (back.Instance.requests = inst.Instance.requests))
    arrival_cases;
  (* Adversarial instances serialize without an arrival line — the file
     is byte-compatible with the pre-arrival format. *)
  let tmp = Filename.temp_file "omflp-arrival" ".inst" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      Serial.save_file tmp (mk_instance ());
      let contents = In_channel.with_open_text tmp In_channel.input_all in
      check_bool "no arrival line for the default model" false
        (List.exists
           (fun l -> String.length l >= 8 && String.sub l 0 8 = "arrival ")
           (String.split_on_char '\n' contents)))

(* ---------- Statistical validation of the i.i.d. sampler ----------

   Same discipline as the RAND coin-flip tests: fixed seeds make every
   run identical, and acceptance bands are wide (5-6 sigma, or the
   p = 0.001 chi-square critical value), so a pass is stable and a fail
   means the sampler is really broken. *)

let chi_square ~expected observed =
  let acc = ref 0.0 in
  Array.iteri
    (fun i o ->
      let e = expected.(i) in
      let d = float_of_int o -. e in
      acc := !acc +. ((d *. d) /. e))
    observed;
  !acc

let test_stat_singletons_zipf () =
  (* Singletons with zipf_s = 1: P(commodity k) = (1/(k+1)) / H_4.
     Chi-square over 4 cells, df = 3, critical value 16.27 at p=0.001. *)
  let n = 20_000 and k = 4 in
  let rng = Splitmix.of_int 51 in
  let counts = Array.make k 0 in
  for _ = 1 to n do
    let d =
      Demand.sample rng ~n_commodities:k (Demand.Singletons { zipf_s = 1.0 })
    in
    Cset.iter (fun e -> counts.(e) <- counts.(e) + 1) d
  done;
  let h4 = 1.0 +. (1.0 /. 2.0) +. (1.0 /. 3.0) +. (1.0 /. 4.0) in
  let expected =
    Array.init k (fun i -> float_of_int n /. (float_of_int (i + 1) *. h4))
  in
  let x2 = chi_square ~expected counts in
  check_bool (Printf.sprintf "chi-square %.2f < 16.27" x2) true (x2 < 16.27)

let test_stat_bernoulli_marginal () =
  (* Bernoulli p=1/2 over 4 commodities, resampled until non-empty: the
     conditional marginal is p / (1 - (1-p)^4) = 8/15. 20000 draws,
     sigma = sqrt(q(1-q)/n) ~ 0.0035; +-5 sigma band. *)
  let n = 20_000 and k = 4 in
  let rng = Splitmix.of_int 52 in
  let counts = Array.make k 0 in
  for _ = 1 to n do
    let d = Demand.sample rng ~n_commodities:k (Demand.Bernoulli { p = 0.5 }) in
    Cset.iter (fun e -> counts.(e) <- counts.(e) + 1) d
  done;
  let q = 0.5 /. (1.0 -. (0.5 ** 4.0)) in
  let sigma = sqrt (q *. (1.0 -. q) /. float_of_int n) in
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int n in
      check_bool
        (Printf.sprintf "commodity %d freq %.4f within 5 sigma of %.4f" i freq
           q)
        true
        (Float.abs (freq -. q) < 5.0 *. sigma))
    counts

let test_stat_zipf_bundle () =
  (* Bundle size is uniform on {1, 2, 3} (the retry guard almost never
     trips for 6 commodities); members are Zipf-popular, so commodity 0
     must be requested strictly more often than commodity 5. *)
  let n = 20_000 and k = 6 in
  let rng = Splitmix.of_int 53 in
  let size_counts = Array.make 3 0 in
  let member_counts = Array.make k 0 in
  for _ = 1 to n do
    let d =
      Demand.sample rng ~n_commodities:k
        (Demand.Zipf_bundle { zipf_s = 1.0; max_size = 3 })
    in
    let c = Cset.cardinal d in
    check_bool "cardinality in [1,3]" true (c >= 1 && c <= 3);
    size_counts.(c - 1) <- size_counts.(c - 1) + 1;
    Cset.iter (fun e -> member_counts.(e) <- member_counts.(e) + 1) d
  done;
  let third = 1.0 /. 3.0 in
  let sigma = sqrt (third *. (1.0 -. third) /. float_of_int n) in
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int n in
      check_bool
        (Printf.sprintf "size %d freq %.4f within 6 sigma of 1/3" (i + 1) freq)
        true
        (Float.abs (freq -. third) < 6.0 *. sigma))
    size_counts;
  check_bool "zipf head beats tail" true
    (member_counts.(0) > member_counts.(k - 1))

let test_stat_iid_sites_uniform () =
  (* I.i.d. arrival draws request sites uniformly over the metric:
     chi-square over 6 sites, df = 5, critical value 20.52 at p=0.001. *)
  let n_sites = 6 and n = 18_000 in
  let out =
    Arrival.apply
      (Arrival.Iid
         {
           seed = 54;
           n_requests = n;
           demand = Demand.Singletons { zipf_s = 1.0 };
         })
      ~n_sites ~n_commodities:2 [||]
  in
  check_int "draws n_requests" n (Array.length out);
  let counts = Array.make n_sites 0 in
  Array.iter (fun (r : Request.t) -> counts.(r.site) <- counts.(r.site) + 1) out;
  let expected =
    Array.make n_sites (float_of_int n /. float_of_int n_sites)
  in
  let x2 = chi_square ~expected counts in
  check_bool (Printf.sprintf "chi-square %.2f < 20.52" x2) true (x2 < 20.52)

let test_stats_basic () =
  let inst = mk_instance () in
  let s = Instance_stats.compute inst in
  check_int "requests" 3 s.Instance_stats.n_requests;
  check_int "distinct" 3 s.Instance_stats.distinct_requested;
  Alcotest.(check (float 1e-9)) "mean size" (5.0 /. 3.0) s.Instance_stats.mean_demand_size;
  check_int "max size" 2 s.Instance_stats.max_demand_size;
  Alcotest.(check (list int))
    "popularity" [ 1; 2; 2; 0 ]
    (Array.to_list s.Instance_stats.popularity)

let test_stats_overlap () =
  (* Two identical demands: Jaccard overlap 1. *)
  let metric = Omflp_metric.Finite_metric.single_point () in
  let cost = Cost_function.power_law ~n_commodities:3 ~n_sites:1 ~x:1.0 in
  let r = Request.make ~site:0 ~demand:(Cset.of_list ~n_commodities:3 [ 0; 1 ]) in
  let inst = Instance.make ~name:"same" ~metric ~cost ~requests:[| r; r |] in
  let s = Instance_stats.compute inst in
  Alcotest.(check (float 1e-9)) "overlap" 1.0 s.Instance_stats.mean_pairwise_overlap;
  Alcotest.(check (float 1e-9)) "spread" 0.0 s.Instance_stats.mean_request_spread

let () =
  Alcotest.run "instance"
    [
      ( "request",
        [ Alcotest.test_case "validation" `Quick test_request_validation ] );
      ( "instance",
        [
          Alcotest.test_case "accessors" `Quick test_instance_accessors;
          Alcotest.test_case "truncate" `Quick test_instance_truncate;
          Alcotest.test_case "validation" `Quick test_instance_validation;
        ] );
      ( "demand",
        [
          Alcotest.test_case "singleton size" `Quick test_demand_singleton_size;
          Alcotest.test_case "profile subset" `Quick test_demand_profile_subset;
          Alcotest.test_case "validation" `Quick test_demand_validation;
        ]
        @ List.map QCheck_alcotest.to_alcotest prop_demand_valid );
      ( "generators",
        Alcotest.test_case "theorem2 shape" `Quick test_theorem2_shape
        :: List.map QCheck_alcotest.to_alcotest prop_generators_valid );
      ( "serial",
        [
          Alcotest.test_case "round trip exact" `Quick test_serial_round_trip_exact;
          Alcotest.test_case "rejects garbage" `Quick test_serial_rejects_garbage;
          Alcotest.test_case "rejects truncated" `Quick test_serial_rejects_truncated;
          Alcotest.test_case "split per commodity" `Quick test_split_per_commodity;
          QCheck_alcotest.to_alcotest prop_serial_round_trip_structural;
          QCheck_alcotest.to_alcotest prop_serial_round_trip_runs_identically;
          QCheck_alcotest.to_alcotest prop_serial_fuzz_never_crashes;
        ] );
      ( "arrival",
        [
          Alcotest.test_case "apply is pure" `Quick test_arrival_apply_pure;
          Alcotest.test_case "distinct seeds distinct permutations" `Quick
            test_ro_distinct_seeds_differ;
          Alcotest.test_case "string codec round trip" `Quick
            test_arrival_string_codec;
          Alcotest.test_case "serial round trip" `Quick
            test_arrival_serial_round_trip;
          QCheck_alcotest.to_alcotest prop_ro_permutation;
        ] );
      ( "iid statistics",
        [
          Alcotest.test_case "singletons zipf chi-square (statistical)" `Slow
            test_stat_singletons_zipf;
          Alcotest.test_case "bernoulli conditional marginal (statistical)"
            `Slow test_stat_bernoulli_marginal;
          Alcotest.test_case "zipf-bundle size & popularity (statistical)"
            `Slow test_stat_zipf_bundle;
          Alcotest.test_case "iid site uniformity (statistical)" `Slow
            test_stat_iid_sites_uniform;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "overlap" `Quick test_stats_overlap;
        ] );
    ]
