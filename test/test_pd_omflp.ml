open Omflp_prelude
open Omflp_commodity
open Omflp_metric
open Omflp_instance
open Omflp_core

let check_float tol = Alcotest.(check (float tol))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_pd inst =
  let t = Pd_omflp.create (Instance.env inst) in
  Array.iter (fun r -> ignore (Pd_omflp.step t r)) inst.Instance.requests;
  t

(* ---------- Closed-form behaviour on hand instances ---------- *)

let test_single_request_single_site () =
  (* One site, one request, one commodity: open {e} and pay f. *)
  let metric = Finite_metric.single_point () in
  let cost = Cost_function.linear ~n_commodities:2 ~n_sites:1 ~per_commodity:3.0 in
  let inst =
    Instance.make ~name:"one" ~metric ~cost
      ~requests:[| Request.make ~site:0 ~demand:(Cset.singleton ~n_commodities:2 0) |]
  in
  let t = run_pd inst in
  let run = Pd_omflp.run_so_far t in
  check_float 1e-9 "construction" 3.0 run.Run.construction_cost;
  check_float 1e-9 "assignment" 0.0 run.Run.assignment_cost;
  check_int "one small facility" 1 (Run.n_small run)

let test_second_request_connects () =
  (* Same commodity twice at the same point: second connects for free. *)
  let metric = Finite_metric.single_point () in
  let cost = Cost_function.linear ~n_commodities:2 ~n_sites:1 ~per_commodity:3.0 in
  let r = Request.make ~site:0 ~demand:(Cset.singleton ~n_commodities:2 0) in
  let inst = Instance.make ~name:"two" ~metric ~cost ~requests:[| r; r |] in
  let run = Pd_omflp.run_so_far (run_pd inst) in
  check_float 1e-9 "total" 3.0 (Run.total_cost run);
  check_int "one facility" 1 (List.length run.Run.facilities)

let test_large_facility_on_joint_demand () =
  (* A request for everything with concave cost: a single large facility is
     opened (constraint (4) fires before the combined smalls finish). *)
  let metric = Finite_metric.single_point () in
  let cost = Cost_function.constant ~n_commodities:4 ~n_sites:1 ~cost:2.0 in
  let inst =
    Instance.make ~name:"joint" ~metric ~cost
      ~requests:[| Request.make ~site:0 ~demand:(Cset.full ~n_commodities:4) |]
  in
  let run = Pd_omflp.run_so_far (run_pd inst) in
  check_int "one large facility" 1 (Run.n_large run);
  check_int "no small facilities" 0 (Run.n_small run);
  check_float 1e-9 "total" 2.0 (Run.total_cost run)

let test_theorem2_full_regime_cost () =
  (* |S'| = |S|: PD pays ~sqrt|S| small + one large = 2 * OPT. *)
  let n_commodities = 64 in
  let rng = Splitmix.of_int 11 in
  let inst =
    Generators.single_point_adversary rng ~n_commodities
      ~cost:Cost_function.theorem2 ~n_requested:n_commodities
  in
  let run = Pd_omflp.run_so_far (run_pd inst) in
  check_int "exactly one large" 1 (Run.n_large run);
  check_int "sqrt|S| smalls" 8 (Run.n_small run);
  check_float 1e-9 "cost 2*OPT" 16.0 (Run.total_cost run)

let test_distance_matters () =
  (* Cheap facility far away vs expensive nearby: the dual stops at the
     cheaper tightness. Site 1 at distance 1 with f = 10; site 0 (own) with
     f = 3: opening at own site is tight first (delta 3 < 1 + 10). *)
  let metric = Finite_metric.line [| 0.0; 1.0 |] in
  let cost =
    Cost_function.site_scaled
      (Cost_function.linear ~n_commodities:1 ~n_sites:2 ~per_commodity:1.0)
      [| 3.0; 10.0 |]
  in
  let inst =
    Instance.make ~name:"dist" ~metric ~cost
      ~requests:[| Request.make ~site:0 ~demand:(Cset.singleton ~n_commodities:1 0) |]
  in
  let run = Pd_omflp.run_so_far (run_pd inst) in
  (match run.Run.facilities with
  | [ f ] -> check_int "opens own site" 0 f.Facility.site
  | _ -> Alcotest.fail "expected exactly one facility");
  check_float 1e-9 "total" 3.0 (Run.total_cost run)

let test_determinism () =
  let rng = Splitmix.of_int 3 in
  let inst =
    Generators.line rng ~n_sites:6 ~n_requests:15 ~n_commodities:4 ~length:20.0
      ~demand:(Demand.Bernoulli { p = 0.5 })
      ~cost:(fun ~n_commodities ~n_sites ->
        Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
  in
  let c1 = Run.total_cost (Pd_omflp.run_so_far (run_pd inst)) in
  let c2 = Run.total_cost (Pd_omflp.run_so_far (run_pd inst)) in
  check_float 1e-12 "deterministic" c1 c2

let test_dual_records_shape () =
  let rng = Splitmix.of_int 4 in
  let inst =
    Generators.line rng ~n_sites:4 ~n_requests:8 ~n_commodities:3 ~length:10.0
      ~demand:(Demand.Bernoulli { p = 0.6 })
      ~cost:(fun ~n_commodities ~n_sites ->
        Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
  in
  let t = run_pd inst in
  let records = Pd_omflp.dual_records t in
  check_int "one record per request" 8 (List.length records);
  List.iteri
    (fun i (p : Pd_omflp.dual_record) ->
      check_int
        (Printf.sprintf "site %d" i)
        inst.Instance.requests.(i).Request.site p.site;
      (* dual_sum consistent with per-commodity duals *)
      let s = Cset.fold (fun e acc -> acc +. p.duals.(e)) p.demand 0.0 in
      check_float 1e-9 "dual sum" s p.dual_sum;
      (* duals are non-negative *)
      Cset.iter (fun e -> check_bool "dual >= 0" true (p.duals.(e) >= 0.0)) p.demand)
    records

(* ---------- Theory checks on random instances ---------- *)

let random_instance seed =
  let rng = Splitmix.of_int seed in
  match Splitmix.int rng 4 with
  | 0 ->
      Generators.line rng ~n_sites:5 ~n_requests:12 ~n_commodities:4
        ~length:15.0
        ~demand:(Demand.Bernoulli { p = 0.5 })
        ~cost:(fun ~n_commodities ~n_sites ->
          Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
  | 1 ->
      Generators.theorem2 rng ~n_commodities:16
  | 2 ->
      Generators.uniform_metric rng ~n_sites:4 ~d:3.0 ~n_requests:10
        ~n_commodities:5
        ~demand:(Demand.Zipf_bundle { zipf_s = 1.0; max_size = 3 })
        ~cost:(fun ~n_commodities ~n_sites ->
          Cost_function.power_law ~n_commodities ~n_sites ~x:0.5)
  | _ ->
      Generators.network rng ~n_sites:6 ~extra_edges:3 ~n_requests:10
        ~n_commodities:4
        ~demand:(Demand.Bernoulli { p = 0.4 })
        ~cost:(fun ~n_commodities ~n_sites ->
          Cost_function.theorem2 ~n_commodities ~n_sites)

let prop_fast_equivalent =
  (* The incremental-bid variant is the same algorithm: identical total
     cost (up to floating-point summation order) and identical facility
     count on every instance. *)
  QCheck.Test.make ~name:"incremental PD = recomputing PD" ~count:60
    QCheck.small_int (fun seed ->
      let inst = random_instance seed in
      let slow = Simulator.run (module Pd_omflp) inst in
      let fast = Simulator.run (module Pd_omflp_fast) inst in
      Numerics.approx_eq ~tol:1e-6 (Run.total_cost slow) (Run.total_cost fast)
      && List.length slow.Run.facilities = List.length fast.Run.facilities)

let prop_cache_exact =
  (* The incremental caches must equal a from-scratch recomputation at
     every point (up to float summation noise). *)
  QCheck.Test.make ~name:"incremental bid caches stay exact" ~count:40
    QCheck.small_int (fun seed ->
      let inst = random_instance seed in
      let t =
        Pd_omflp.create_incremental (Instance.env inst)
      in
      let ok = ref true in
      Array.iter
        (fun r ->
          ignore (Pd_omflp.step t r);
          if Pd_omflp.cache_drift t > 1e-9 then ok := false)
        inst.Instance.requests;
      !ok)

let prop_corollary8 =
  QCheck.Test.make ~name:"Corollary 8: cost <= 3 * dual objective" ~count:80
    QCheck.small_int (fun seed ->
      let t = run_pd (random_instance seed) in
      match Dual_checker.corollary8 t with Ok () -> true | Error _ -> false)

let prop_corollary17 =
  QCheck.Test.make
    ~name:"Corollary 17: gamma-scaled duals are dual-feasible" ~count:50
    QCheck.small_int (fun seed ->
      let inst = random_instance seed in
      let t = run_pd inst in
      match
        Dual_checker.scaled_dual_feasible inst.Instance.metric inst.Instance.cost
          (Pd_omflp.dual_records t)
      with
      | Ok () -> true
      | Error _ -> false)

let prop_dual_lower_bound_below_opt =
  (* gamma * dual objective <= OPT: checked against the exact ILP OPT. *)
  QCheck.Test.make ~name:"dual lower bound <= exact OPT" ~count:25
    QCheck.small_int (fun seed ->
      let rng = Splitmix.of_int (seed + 7777) in
      let inst =
        Generators.line rng ~n_sites:3 ~n_requests:5 ~n_commodities:3
          ~length:8.0
          ~demand:(Demand.Bernoulli { p = 0.6 })
          ~cost:(fun ~n_commodities ~n_sites ->
            Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
      in
      let t = run_pd inst in
      match Omflp_offline.Exact.ilp_opt inst with
      | Some opt -> Dual_checker.dual_lower_bound t <= opt +. 1e-6
      | None -> true)

let prop_competitive_against_exact_opt =
  (* The proven guarantee is 15 sqrt|S| H_n; assert it concretely. *)
  QCheck.Test.make ~name:"PD within 15 sqrt|S| H_n of exact OPT" ~count:25
    QCheck.small_int (fun seed ->
      let rng = Splitmix.of_int (seed + 999) in
      let inst =
        Generators.line rng ~n_sites:3 ~n_requests:5 ~n_commodities:3
          ~length:8.0
          ~demand:(Demand.Bernoulli { p = 0.6 })
          ~cost:(fun ~n_commodities ~n_sites ->
            Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
      in
      let t = run_pd inst in
      match Omflp_offline.Exact.ilp_opt inst with
      | Some opt ->
          let bound =
            15.0 *. sqrt 3.0 *. Numerics.harmonic 5 *. opt
          in
          Run.total_cost (Pd_omflp.run_so_far t) <= bound +. 1e-6
      | None -> true)

let test_trace_theorem2 () =
  (* |S| = 16, all commodities requested as singletons: the first sqrt|S|
     requests open small facilities, the next one triggers the large
     facility (its bid threshold is fully paid by past duals), everything
     afterwards connects without opening. *)
  let n_commodities = 16 in
  let rng = Splitmix.of_int 13 in
  let inst =
    Generators.single_point_adversary rng ~n_commodities
      ~cost:Cost_function.theorem2 ~n_requested:n_commodities
  in
  let t = run_pd inst in
  let trace = Pd_omflp.trace t in
  check_int "one log per request" n_commodities (List.length trace);
  let count pred =
    List.fold_left
      (fun acc events -> acc + List.length (List.filter pred events))
      0 trace
  in
  check_int "sqrt|S| small openings" 4
    (count (function Pd_omflp.Opened_small _ -> true | _ -> false));
  check_int "exactly one large opening" 1
    (count (function Pd_omflp.Opened_large _ -> true | _ -> false));
  (* After the large facility exists, nothing opens anymore. *)
  let after_large = ref false in
  List.iter
    (fun events ->
      List.iter
        (fun ev ->
          match ev with
          | Pd_omflp.Opened_large _ -> after_large := true
          | Pd_omflp.Opened_small _ ->
              if !after_large then Alcotest.fail "opened small after large"
          | Pd_omflp.Connected_small _ | Pd_omflp.Connected_large _ -> ())
        events)
    trace

let test_trace_connection_events () =
  (* Second identical request connects: its trace is a single
     Connected_small with dual = 0 (the facility is at distance 0). *)
  let metric = Finite_metric.single_point () in
  let cost = Cost_function.linear ~n_commodities:2 ~n_sites:1 ~per_commodity:3.0 in
  let r = Request.make ~site:0 ~demand:(Cset.singleton ~n_commodities:2 0) in
  let inst = Instance.make ~name:"two" ~metric ~cost ~requests:[| r; r |] in
  let t = run_pd inst in
  match Pd_omflp.trace t with
  | [ [ Pd_omflp.Opened_small { dual; _ } ]; [ second ] ] ->
      check_float 1e-9 "first pays f" 3.0 dual;
      (match second with
      | Pd_omflp.Connected_small { dual; facility; _ } ->
          check_float 1e-9 "free connection" 0.0 dual;
          check_int "to facility 0" 0 facility
      | _ -> Alcotest.fail "expected a connection event")
  | _ -> Alcotest.fail "unexpected trace shape"

let test_gamma_value () =
  (* gamma = 1 / (5 sqrt|S| H_n). *)
  check_float 1e-12 "gamma" (1.0 /. (5.0 *. 4.0 *. Numerics.harmonic 10))
    (Dual_checker.gamma ~n_commodities:16 ~n_requests:10)

let test_default_configs_cutoff () =
  (* The exhaustive-enumeration cutoff is explicit: at the limit every
     non-empty subset is checked (2^|S| - 1 of them), one commodity above
     it only S and the singletons (|S| + 1). *)
  check_int "limit is 10" 10 Dual_checker.exhaustive_limit;
  let at = Dual_checker.exhaustive_limit in
  check_int "at cutoff: all subsets"
    ((1 lsl at) - 1)
    (List.length (Dual_checker.default_configs ~n_commodities:at));
  let above = at + 1 in
  let configs = Dual_checker.default_configs ~n_commodities:above in
  check_int "above cutoff: S + singletons" (above + 1) (List.length configs);
  (match configs with
  | full :: singles ->
      check_bool "first is S" true (Cset.is_full full);
      List.iteri
        (fun e c ->
          check_bool "singleton" true
            (Cset.equal c (Cset.singleton ~n_commodities:above e)))
        singles
  | [] -> Alcotest.fail "empty config list");
  (* Below the cutoff the enumeration is still exhaustive. *)
  check_int "below cutoff: all subsets"
    ((1 lsl (at - 1)) - 1)
    (List.length (Dual_checker.default_configs ~n_commodities:(at - 1)))

let () =
  Alcotest.run "pd_omflp"
    [
      ( "behaviour",
        [
          Alcotest.test_case "single request" `Quick test_single_request_single_site;
          Alcotest.test_case "second connects" `Quick test_second_request_connects;
          Alcotest.test_case "large on joint demand" `Quick
            test_large_facility_on_joint_demand;
          Alcotest.test_case "theorem2 full regime" `Quick
            test_theorem2_full_regime_cost;
          Alcotest.test_case "distance matters" `Quick test_distance_matters;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "dual records" `Quick test_dual_records_shape;
          Alcotest.test_case "trace: theorem2" `Quick test_trace_theorem2;
          Alcotest.test_case "trace: connections" `Quick test_trace_connection_events;
          Alcotest.test_case "gamma" `Quick test_gamma_value;
          Alcotest.test_case "default configs cutoff" `Quick
            test_default_configs_cutoff;
        ] );
      ( "theory",
        [
          QCheck_alcotest.to_alcotest prop_fast_equivalent;
          QCheck_alcotest.to_alcotest prop_cache_exact;
          QCheck_alcotest.to_alcotest prop_corollary8;
          QCheck_alcotest.to_alcotest prop_corollary17;
          QCheck_alcotest.to_alcotest prop_dual_lower_bound_below_opt;
          QCheck_alcotest.to_alcotest prop_competitive_against_exact_opt;
        ] );
    ]
