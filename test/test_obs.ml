(* lib/obs unit tests (counters / timers / histograms / trace sink /
   report) plus the instrumentation parity checks of the acceptance
   criteria: with metrics enabled, a seeded PD-OMFLP run's counters must
   exactly match its event trace, and the incremental bid caches must
   stay exact while metrics are on.

   The registry is process-global, so every test that reads counter
   values resets the registry first and leaves metrics disabled. *)

open Omflp_prelude
open Omflp_instance
open Omflp_core
open Omflp_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float tol = Alcotest.(check (float tol))

let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) f

(* ---------- counters ---------- *)

let test_counter_basics () =
  let c = Metrics.counter "test.obs.counter_basics" in
  Metrics.reset ();
  Metrics.set_enabled false;
  Metrics.incr c;
  Metrics.add c 5;
  check_int "disabled: no-op" 0 (Metrics.value c);
  with_metrics (fun () ->
      Metrics.incr c;
      Metrics.incr c;
      Metrics.add c 40;
      check_int "enabled: counts" 42 (Metrics.value c));
  check_int "survives disable" 42 (Metrics.value c);
  Metrics.reset ();
  check_int "reset zeroes" 0 (Metrics.value c)

let test_counter_registration_idempotent () =
  let a = Metrics.counter "test.obs.same_name" in
  let b = Metrics.counter "test.obs.same_name" in
  with_metrics (fun () ->
      Metrics.incr a;
      Metrics.incr b;
      check_int "same instrument" 2 (Metrics.value a))

let test_many_counters () =
  (* Force the registry past its initial capacity. *)
  let cs =
    List.init 100 (fun i ->
        Metrics.counter (Printf.sprintf "test.obs.many.%03d" i))
  in
  with_metrics (fun () ->
      List.iteri (fun i c -> Metrics.add c i) cs;
      List.iteri
        (fun i c -> check_int (Printf.sprintf "counter %d" i) i (Metrics.value c))
        cs)

let test_timer () =
  let t = Metrics.timer "test.obs.timer" in
  with_metrics (fun () ->
      Metrics.record_span t 0.25;
      Metrics.record_span t 0.75;
      let x = Metrics.time t (fun () -> 7) in
      check_int "time returns" 7 x;
      let snap = Metrics.snapshot () in
      let view =
        List.find
          (fun (v : Metrics.timer_view) -> v.t_name = "test.obs.timer")
          snap.timers
      in
      check_int "events" 3 view.t_events;
      check_bool "total >= recorded spans" true (view.t_total_s >= 1.0))

let test_histogram () =
  let h = Metrics.histogram "test.obs.hist" in
  with_metrics (fun () ->
      List.iter (Metrics.observe h) [ 1.0; 1.5; 2.0; 4.0; 1024.0; 0.0; -3.0 ];
      let snap = Metrics.snapshot () in
      let view =
        List.find
          (fun (v : Metrics.histogram_view) -> v.h_name = "test.obs.hist")
          snap.histograms
      in
      check_int "events" 7 view.h_events;
      check_float 1e-9 "sum" 1029.5 view.h_sum;
      (* 1.0 and 1.5 share the [1,2) bucket; 0 and -3 the bottom one. *)
      let bucket_with lo =
        List.find_opt (fun (b : Metrics.bucket) -> b.b_lo = lo) view.h_buckets
      in
      (match bucket_with 1.0 with
      | Some b -> check_int "[1,2) holds 2" 2 b.b_count
      | None -> Alcotest.fail "no [1,2) bucket");
      (match bucket_with 2.0 with
      | Some b -> check_int "[2,4) holds 1" 1 b.b_count
      | None -> Alcotest.fail "no [2,4) bucket");
      let q50 = Metrics.approx_quantile view 0.5 in
      check_bool "p50 within data range" true (q50 > 0.0 && q50 < 16.0);
      let q100 = Metrics.approx_quantile view 1.0 in
      check_bool "p100 in top bucket" true (q100 > 512.0 && q100 < 2048.0))

let test_snapshot_sorted () =
  ignore (Metrics.counter "test.obs.zzz");
  ignore (Metrics.counter "test.obs.aaa");
  let snap = Metrics.snapshot () in
  let names = List.map (fun (c : Metrics.counter_view) -> c.c_name) snap.counters in
  check_bool "sorted by name" true
    (List.sort String.compare names = names)

(* ---------- per-domain shards (parallel recording) ---------- *)

let with_pool ~jobs f =
  let p = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_parallel_counters_merge_exact () =
  (* Work recorded from pool workers lands in per-domain shards; the
     merged value must equal the serial total exactly. *)
  let c = Metrics.counter "test.obs.shard_counter" in
  with_metrics (fun () ->
      with_pool ~jobs:4 (fun pool ->
          ignore
            (Pool.map pool
               (fun i ->
                 Metrics.add c (i + 1);
                 Metrics.incr c)
               (Array.init 32 Fun.id)));
      (* sum 1..32 plus one incr per task *)
      check_int "merged total" ((32 * 33 / 2) + 32) (Metrics.value c))

let test_parallel_timers_histograms_merge () =
  let t = Metrics.timer "test.obs.shard_timer" in
  let h = Metrics.histogram "test.obs.shard_hist" in
  let n = 24 in
  with_metrics (fun () ->
      with_pool ~jobs:3 (fun pool ->
          ignore
            (Pool.map pool
               (fun _ ->
                 Metrics.record_span t 1.0;
                 Metrics.observe h 2.0)
               (Array.init n Fun.id)));
      let snap = Metrics.snapshot () in
      let tv =
        List.find (fun (v : Metrics.timer_view) -> v.t_name = "test.obs.shard_timer")
          snap.timers
      in
      check_int "timer events" n tv.t_events;
      (* 1.0-spans sum exactly in any association order. *)
      check_float 0.0 "timer total" (float_of_int n) tv.t_total_s;
      let hv =
        List.find
          (fun (v : Metrics.histogram_view) -> v.h_name = "test.obs.shard_hist")
          snap.histograms
      in
      check_int "histogram events" n hv.h_events;
      check_float 0.0 "histogram sum" (float_of_int (2 * n)) hv.h_sum;
      match hv.h_buckets with
      | [ b ] -> check_int "all in [2,4)" n b.b_count
      | bs -> Alcotest.failf "expected one bucket, got %d" (List.length bs))

(* Regression guard: [snapshot] used to read the registration counts
   and the names arrays without [reg_mutex] — a genuine data race with a
   concurrent [Metrics.counter]/[histogram] (which grow and swap those
   arrays under the mutex). On x86 the mutex-ordered stores and
   grow-only arrays make the bad interleaving unobservable in practice,
   so this test is a contract guard for the locked read (and for weaker
   memory models / future refactors) rather than an empirical failure
   on this platform. Half the pool tasks register fresh instruments
   while the other half snapshot. *)
let test_registration_vs_snapshot_race () =
  with_metrics (fun () ->
      with_pool ~jobs:4 (fun pool ->
          let n = 192 in
          let failures = Array.make n "" in
          ignore
            (Pool.map pool
               (fun i ->
                 if i mod 2 = 0 then
                   for j = 0 to 15 do
                     ignore
                       (Metrics.counter
                          (Printf.sprintf "test.obs.regrace.%03d.%02d" i j));
                     ignore
                       (Metrics.histogram
                          (Printf.sprintf "test.obs.regrace.h%03d.%02d" i j))
                   done
                 else
                   match Metrics.snapshot () with
                   | snap ->
                       List.iter
                         (fun (c : Metrics.counter_view) ->
                           if c.c_name = "" then
                             failures.(i) <- "snapshot saw an unnamed counter")
                         snap.counters
                   | exception e ->
                       failures.(i) <-
                         "snapshot raised " ^ Printexc.to_string e)
               (Array.init n Fun.id));
          Array.iter (fun f -> if f <> "" then Alcotest.fail f) failures))

let prop_shards_equal_serial =
  (* The satellite qcheck property: for any workload of counter
     increments, the parallel merged value equals the serial value. *)
  QCheck.Test.make ~name:"merged shards = serial counters" ~count:30
    QCheck.(list_of_size Gen.(int_range 0 40) small_nat)
    (fun ks ->
      let c = Metrics.counter "test.obs.shard_prop" in
      let arr = Array.of_list ks in
      Metrics.reset ();
      Metrics.set_enabled true;
      Fun.protect ~finally:(fun () -> Metrics.set_enabled false) (fun () ->
          List.iter (Metrics.add c) ks;
          let serial = Metrics.value c in
          Metrics.reset ();
          with_pool ~jobs:3 (fun pool ->
              ignore (Pool.map pool (fun k -> Metrics.add c k) arr));
          let parallel = Metrics.value c in
          serial = parallel && serial = List.fold_left ( + ) 0 ks))

(* ---------- trace sink ---------- *)

let test_trace_sink_json_lines () =
  let path = Filename.temp_file "omflp_trace" ".jsonl" in
  let sink = Trace_sink.open_file path in
  Trace_sink.install sink;
  check_bool "installed" true (Trace_sink.installed ());
  Trace_sink.emit_current ~kind:"request"
    [
      ("index", Trace_sink.Int 0);
      ("latency_s", Trace_sink.Float 1.5);
      ("name", Trace_sink.String "a\"b\\c");
      ("ok", Trace_sink.Bool true);
      ("bad", Trace_sink.Float Float.nan);
    ];
  Trace_sink.emit_current ~kind:"request" [ ("index", Trace_sink.Int 1) ];
  Trace_sink.uninstall ();
  Trace_sink.close sink;
  check_bool "uninstalled" false (Trace_sink.installed ());
  Trace_sink.emit_current ~kind:"dropped" [];
  let ic = open_in path in
  let l1 = input_line ic in
  let l2 = input_line ic in
  let eof = try ignore (input_line ic); false with End_of_file -> true in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string)
    "first record"
    "{\"kind\":\"request\",\"seq\":0,\"index\":0,\"latency_s\":1.5,\"name\":\"a\\\"b\\\\c\",\"ok\":true,\"bad\":null}"
    l1;
  Alcotest.(check string)
    "second record" "{\"kind\":\"request\",\"seq\":1,\"index\":1}" l2;
  check_bool "exactly two lines" true eof

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_trace_sink_appends () =
  (* Regression: [open_file] used to truncate, so a resumed session (or
     any second sink on the same path) wiped the events of the first.
     It must append — and flush per record, so the line is durable
     before [close]. *)
  let path = Filename.temp_file "omflp_trace" ".jsonl" in
  let s1 = Trace_sink.open_file path in
  Trace_sink.emit s1 ~kind:"first" [ ("i", Trace_sink.Int 0) ];
  Trace_sink.close s1;
  let s2 = Trace_sink.open_file path in
  Trace_sink.emit s2 ~kind:"second" [ ("i", Trace_sink.Int 1) ];
  let durable_before_close = List.length (read_lines path) in
  Trace_sink.close s2;
  let lines = read_lines path in
  Sys.remove path;
  check_int "record durable before close" 2 durable_before_close;
  check_int "both sessions' records survive" 2 (List.length lines);
  Alcotest.(check string)
    "first session's record intact"
    "{\"kind\":\"first\",\"seq\":0,\"i\":0}" (List.nth lines 0);
  Alcotest.(check string)
    "second session appended (seq restarts per sink)"
    "{\"kind\":\"second\",\"seq\":0,\"i\":1}" (List.nth lines 1)

(* Regression: [emit] wrote to the shared channel without a lock. The
   channel's own per-operation lock hid this for small records, but a
   record larger than the channel buffer (64 KiB) is written in several
   chunks with the lock released in between — two domains emitting
   concurrently interleaved their chunks mid-line (torn JSONL), and the
   unsynchronized [seq] bump could duplicate numbers. The 100 KB pads
   below tear on the pre-fix code in ~90% of runs; with emission
   serialized, every line must parse and the seqs must be an exact
   permutation. *)
let test_trace_sink_concurrent_emission () =
  let path = Filename.temp_file "omflp_trace" ".jsonl" in
  let sink = Trace_sink.open_file path in
  let n_tasks = 8 and per = 48 in
  with_pool ~jobs:4 (fun pool ->
      ignore
        (Pool.map pool
           (fun i ->
             let pad = String.make 100_000 (Char.chr (97 + (i mod 26))) in
             for j = 0 to per - 1 do
               Trace_sink.emit sink ~kind:"race"
                 [
                   ("task", Trace_sink.Int i);
                   ("j", Trace_sink.Int j);
                   ("pad", Trace_sink.String pad);
                 ]
             done)
           (Array.init n_tasks Fun.id)));
  Trace_sink.close sink;
  let lines = read_lines path in
  Sys.remove path;
  check_int "one line per record" (n_tasks * per) (List.length lines);
  let seqs =
    List.map
      (fun l ->
        match Minijson.of_string l with
        | exception Minijson.Parse_error e ->
            Alcotest.failf "torn trace line %S: %s" l e
        | json -> (
            match Minijson.member "seq" json with
            | Some (Minijson.Num f) -> int_of_float f
            | _ -> Alcotest.failf "trace line without seq: %s" l))
      lines
  in
  Alcotest.(check (list int))
    "seqs are a permutation (no duplicates, no gaps)"
    (List.init (n_tasks * per) Fun.id)
    (List.sort compare seqs)

(* ---------- report ---------- *)

let test_report_renders () =
  let c = Metrics.counter "test.obs.report_counter" in
  let t = Metrics.timer "test.obs.report_timer" in
  let h = Metrics.histogram "test.obs.report_hist" in
  with_metrics (fun () ->
      Metrics.add c 3;
      Metrics.record_span t 0.001;
      Metrics.observe h 2.5;
      let s = Report.render (Metrics.snapshot ()) in
      let contains sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      check_bool "mentions counter" true (contains "test.obs.report_counter");
      check_bool "mentions timer" true (contains "test.obs.report_timer");
      check_bool "mentions histogram" true (contains "test.obs.report_hist"))

(* ---------- instrumentation parity (acceptance criteria) ---------- *)

let clustered_instance ~seed ~n_requests =
  let rng = Splitmix.of_int seed in
  Generators.clustered rng ~clusters:3 ~per_cluster:4 ~n_requests
    ~n_commodities:8 ~side:100.0 ~spread:2.0
    ~cost:(fun ~n_commodities ~n_sites ->
      Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)

(* [create] is either [Pd_omflp.create] or [Pd_omflp.create_incremental]:
   both modes run the same instrumented event loop. *)
let counters_vs_trace create =
  let inst = clustered_instance ~seed:0xbe9c4 ~n_requests:40 in
  with_metrics (fun () ->
      let t = create (Instance.env inst) in
      Array.iter (fun r -> ignore (Pd_omflp.step t r)) inst.Instance.requests;
      let trace = List.concat (Pd_omflp.trace t) in
      let count pred = List.length (List.filter pred trace) in
      check_int "connect_small = trace"
        (count (function Pd_omflp.Connected_small _ -> true | _ -> false))
        (Metrics.value (Metrics.counter "pd.event.connect_small"));
      check_int "open_small = trace"
        (count (function Pd_omflp.Opened_small _ -> true | _ -> false))
        (Metrics.value (Metrics.counter "pd.event.open_small"));
      check_int "connect_large = trace"
        (count (function Pd_omflp.Connected_large _ -> true | _ -> false))
        (Metrics.value (Metrics.counter "pd.event.connect_large"));
      check_int "open_large = trace"
        (count (function Pd_omflp.Opened_large _ -> true | _ -> false))
        (Metrics.value (Metrics.counter "pd.event.open_large"));
      (* Every event-loop iteration fires exactly one event. *)
      check_int "loop_iters = total events" (List.length trace)
        (Metrics.value (Metrics.counter "pd.loop_iters"));
      check_int "requests counted"
        (Array.length inst.Instance.requests)
        (Metrics.value (Metrics.counter "pd.requests"));
      (* Openings counted = confirmed facilities (tentative small
         facilities discarded by a large opening are trace-only). *)
      let run = Pd_omflp.run_so_far t in
      check_int "facilities_opened = store"
        (List.length run.Run.facilities)
        (Metrics.value (Metrics.counter "pd.facilities_opened")))

let test_pd_counters_match_trace () = counters_vs_trace Pd_omflp.create

let test_pd_fast_counters_match_trace () =
  counters_vs_trace Pd_omflp.create_incremental

let test_cache_exact_under_metrics () =
  (* Incremental caches stay exact while the instrumentation layer is
     enabled (the counters must not perturb the algorithm). *)
  let inst = clustered_instance ~seed:0xca5e ~n_requests:50 in
  with_metrics (fun () ->
      let t =
        Pd_omflp.create_incremental (Instance.env inst)
      in
      Array.iter
        (fun r ->
          ignore (Pd_omflp.step t r);
          check_bool "drift below 1e-6" true (Pd_omflp.cache_drift t < 1e-6))
        inst.Instance.requests;
      check_bool "cache updates counted" true
        (Metrics.value (Metrics.counter "pd.cache_updates") > 0))

let test_disabled_runs_unchanged () =
  (* Instrumentation off: the run is identical to an instrumented one
     (counters never feed back into decisions). *)
  let inst = clustered_instance ~seed:42 ~n_requests:30 in
  Metrics.set_enabled false;
  let plain = Simulator.run (module Pd_omflp) inst in
  let observed =
    with_metrics (fun () -> Simulator.run (module Pd_omflp) inst)
  in
  check_float 1e-12 "same total cost" (Run.total_cost plain)
    (Run.total_cost observed);
  check_int "same facilities"
    (List.length plain.Run.facilities)
    (List.length observed.Run.facilities);
  (* The observed run carries per-request latencies, the plain one not. *)
  check_int "plain: no latencies" 0 (Array.length plain.Run.step_seconds);
  check_int "observed: one latency per request"
    (Array.length inst.Instance.requests)
    (Array.length observed.Run.step_seconds)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "registration idempotent" `Quick
            test_counter_registration_idempotent;
          Alcotest.test_case "registry growth" `Quick test_many_counters;
          Alcotest.test_case "timer" `Quick test_timer;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
        ] );
      ( "shards",
        [
          Alcotest.test_case "parallel counters merge exact" `Quick
            test_parallel_counters_merge_exact;
          Alcotest.test_case "parallel timers/histograms merge" `Quick
            test_parallel_timers_histograms_merge;
          Alcotest.test_case "registration vs snapshot race" `Quick
            test_registration_vs_snapshot_race;
          QCheck_alcotest.to_alcotest prop_shards_equal_serial;
        ] );
      ( "trace",
        [
          Alcotest.test_case "json lines" `Quick test_trace_sink_json_lines;
          Alcotest.test_case "append across sinks" `Quick
            test_trace_sink_appends;
          Alcotest.test_case "concurrent emission has no torn lines" `Quick
            test_trace_sink_concurrent_emission;
        ] );
      ( "report",
        [ Alcotest.test_case "render" `Quick test_report_renders ] );
      ( "parity",
        [
          Alcotest.test_case "PD counters = trace" `Quick
            test_pd_counters_match_trace;
          Alcotest.test_case "PD-FAST counters = trace" `Quick
            test_pd_fast_counters_match_trace;
          Alcotest.test_case "cache exact under metrics" `Quick
            test_cache_exact_under_metrics;
          Alcotest.test_case "disabled run unchanged" `Quick
            test_disabled_runs_unchanged;
        ] );
    ]
