open Omflp_prelude

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Bitset ---------- *)

let test_bitset_empty () =
  let b = Bitset.create 10 in
  check_bool "empty" true (Bitset.is_empty b);
  check_int "cardinal" 0 (Bitset.cardinal b);
  check_int "universe" 10 (Bitset.universe b)

let test_bitset_add_mem () =
  let b = Bitset.add (Bitset.add (Bitset.create 10) 3) 7 in
  check_bool "mem 3" true (Bitset.mem b 3);
  check_bool "mem 7" true (Bitset.mem b 7);
  check_bool "mem 4" false (Bitset.mem b 4);
  check_int "cardinal" 2 (Bitset.cardinal b)

let test_bitset_remove () =
  let b = Bitset.of_list 10 [ 1; 2; 3 ] in
  let b = Bitset.remove b 2 in
  Alcotest.(check (list int)) "elements" [ 1; 3 ] (Bitset.elements b)

let test_bitset_bounds () =
  let b = Bitset.create 5 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index -1 outside universe 5")
    (fun () -> ignore (Bitset.mem b (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index 5 outside universe 5")
    (fun () -> ignore (Bitset.add b 5))

let test_bitset_universe_mismatch () =
  let a = Bitset.create 5 and b = Bitset.create 6 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Bitset: universes differ (5 vs 6)") (fun () ->
      ignore (Bitset.union a b))

let test_bitset_large_universe () =
  (* Crosses the 62-bit word boundary. *)
  let b = Bitset.of_list 200 [ 0; 61; 62; 63; 123; 124; 199 ] in
  check_int "cardinal" 7 (Bitset.cardinal b);
  List.iter
    (fun i -> check_bool (Printf.sprintf "mem %d" i) true (Bitset.mem b i))
    [ 0; 61; 62; 63; 123; 124; 199 ];
  check_bool "not mem 100" false (Bitset.mem b 100);
  let c = Bitset.complement b in
  check_int "complement cardinal" 193 (Bitset.cardinal c);
  check_bool "disjoint" true (Bitset.is_empty (Bitset.inter b c));
  check_bool "full union" true
    (Bitset.equal (Bitset.union b c) (Bitset.full 200))

let test_bitset_full () =
  let f = Bitset.full 65 in
  check_int "cardinal" 65 (Bitset.cardinal f);
  check_bool "complement empty" true (Bitset.is_empty (Bitset.complement f))

let test_bitset_to_int () =
  let b = Bitset.of_list 10 [ 0; 3; 9 ] in
  check_int "to_int" (1 lor 8 lor 512) (Bitset.to_int b);
  check_bool "round trip" true (Bitset.equal b (Bitset.of_int 10 (Bitset.to_int b)));
  Alcotest.check_raises "too large"
    (Invalid_argument "Bitset.to_int: universe exceeds 62") (fun () ->
      ignore (Bitset.to_int (Bitset.create 63)))

let test_bitset_choose () =
  check_int "choose" 4 (Bitset.choose (Bitset.of_list 9 [ 7; 4; 8 ]));
  Alcotest.check_raises "empty" Not_found (fun () ->
      ignore (Bitset.choose (Bitset.create 4)))

let bitset_gen =
  QCheck.make
    ~print:(fun b -> Format.asprintf "%a" Bitset.pp b)
    QCheck.Gen.(
      let* universe = int_range 1 150 in
      let* elems = list_size (int_bound 20) (int_bound (universe - 1)) in
      return (Bitset.of_list universe elems))

let pair_gen =
  QCheck.make
    ~print:(fun (a, b) -> Format.asprintf "%a / %a" Bitset.pp a Bitset.pp b)
    QCheck.Gen.(
      let* universe = int_range 1 150 in
      let* e1 = list_size (int_bound 20) (int_bound (universe - 1)) in
      let* e2 = list_size (int_bound 20) (int_bound (universe - 1)) in
      return (Bitset.of_list universe e1, Bitset.of_list universe e2))

let prop_union_contains =
  QCheck.Test.make ~name:"union contains both operands" ~count:200 pair_gen
    (fun (a, b) ->
      let u = Bitset.union a b in
      Bitset.subset a u && Bitset.subset b u)

let prop_inter_subset =
  QCheck.Test.make ~name:"inter is a subset of both" ~count:200 pair_gen
    (fun (a, b) ->
      let i = Bitset.inter a b in
      Bitset.subset i a && Bitset.subset i b)

let prop_diff_disjoint =
  QCheck.Test.make ~name:"diff disjoint from subtrahend" ~count:200 pair_gen
    (fun (a, b) -> Bitset.is_empty (Bitset.inter (Bitset.diff a b) b))

let prop_cardinal_inclusion_exclusion =
  QCheck.Test.make ~name:"|a|+|b| = |a∪b|+|a∩b|" ~count:200 pair_gen
    (fun (a, b) ->
      Bitset.cardinal a + Bitset.cardinal b
      = Bitset.cardinal (Bitset.union a b) + Bitset.cardinal (Bitset.inter a b))

let prop_complement_involution =
  QCheck.Test.make ~name:"complement is an involution" ~count:200 bitset_gen
    (fun b -> Bitset.equal b (Bitset.complement (Bitset.complement b)))

let prop_elements_sorted =
  QCheck.Test.make ~name:"elements sorted and unique" ~count:200 bitset_gen
    (fun b ->
      let es = Bitset.elements b in
      es = List.sort_uniq compare es)

(* The word-packed bitset against a [Set.Make (Int)] reference: after
   every operation of a random sequence the two must agree on [mem]
   across the whole universe, [cardinal], [elements], and the ascending
   [iter] order, and the [to_words]/[of_words] snapshot form must round
   trip. Universes up to 150 span three 63-bit words, so the sequences
   cross word boundaries. *)
module Iset = Set.Make (Int)

type bitset_op =
  | Op_add of int
  | Op_remove of int
  | Op_union of int list
  | Op_inter of int list
  | Op_diff of int list

let pp_bitset_op op =
  let pp_list l = String.concat ";" (List.map string_of_int l) in
  match op with
  | Op_add i -> Printf.sprintf "add %d" i
  | Op_remove i -> Printf.sprintf "remove %d" i
  | Op_union l -> Printf.sprintf "union [%s]" (pp_list l)
  | Op_inter l -> Printf.sprintf "inter [%s]" (pp_list l)
  | Op_diff l -> Printf.sprintf "diff [%s]" (pp_list l)

let bitset_ops_gen =
  QCheck.make
    ~print:(fun (u, ops) ->
      Printf.sprintf "universe=%d: %s" u
        (String.concat ", " (List.map pp_bitset_op ops)))
    QCheck.Gen.(
      let* universe = int_range 1 150 in
      let elem = int_bound (universe - 1) in
      let elems = list_size (int_bound 12) elem in
      let op =
        oneof
          [
            map (fun i -> Op_add i) elem;
            map (fun i -> Op_remove i) elem;
            map (fun l -> Op_union l) elems;
            map (fun l -> Op_inter l) elems;
            map (fun l -> Op_diff l) elems;
          ]
      in
      let* ops = list_size (int_bound 30) op in
      return (universe, ops))

let prop_bitset_matches_reference =
  QCheck.Test.make ~name:"random op sequences match Set.Make(Int)"
    ~count:300 bitset_ops_gen (fun (universe, ops) ->
      let apply_b b = function
        | Op_add i -> Bitset.add b i
        | Op_remove i -> Bitset.remove b i
        | Op_union l -> Bitset.union b (Bitset.of_list universe l)
        | Op_inter l -> Bitset.inter b (Bitset.of_list universe l)
        | Op_diff l -> Bitset.diff b (Bitset.of_list universe l)
      in
      let apply_r r = function
        | Op_add i -> Iset.add i r
        | Op_remove i -> Iset.remove i r
        | Op_union l -> Iset.union r (Iset.of_list l)
        | Op_inter l -> Iset.inter r (Iset.of_list l)
        | Op_diff l -> Iset.diff r (Iset.of_list l)
      in
      let agree b r =
        Bitset.cardinal b = Iset.cardinal r
        && Bitset.elements b = Iset.elements r
        && (let iterated = ref [] in
            Bitset.iter (fun i -> iterated := i :: !iterated) b;
            List.rev !iterated = Iset.elements r)
        &&
        (let ok = ref true in
         for i = 0 to universe - 1 do
           if Bitset.mem b i <> Iset.mem i r then ok := false
         done;
         !ok)
        && Bitset.equal b (Bitset.of_words universe (Bitset.to_words b))
      in
      let b = ref (Bitset.create universe) and r = ref Iset.empty in
      agree !b !r
      && List.for_all
           (fun op ->
             b := apply_b !b op;
             r := apply_r !r op;
             agree !b !r)
           ops)

(* ---------- Splitmix ---------- *)

let test_splitmix_deterministic () =
  let a = Splitmix.of_int 123 and b = Splitmix.of_int 123 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same stream" (Splitmix.next_int64 a)
      (Splitmix.next_int64 b)
  done

let test_splitmix_copy () =
  let a = Splitmix.of_int 7 in
  ignore (Splitmix.next_int64 a);
  let b = Splitmix.copy a in
  Alcotest.(check int64) "copy continues" (Splitmix.next_int64 a)
    (Splitmix.next_int64 b)

let test_splitmix_split_independent () =
  let a = Splitmix.of_int 9 in
  let b = Splitmix.split a in
  check_bool "different streams"
    (Splitmix.next_int64 a <> Splitmix.next_int64 b)
    true

let test_splitmix_int_bounds () =
  let rng = Splitmix.of_int 5 in
  for _ = 1 to 2000 do
    let v = Splitmix.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Splitmix.int: bound must be positive") (fun () ->
      ignore (Splitmix.int rng 0))

let test_splitmix_float_range () =
  let rng = Splitmix.of_int 5 in
  for _ = 1 to 2000 do
    let v = Splitmix.float rng in
    if v < 0.0 || v >= 1.0 then Alcotest.fail "out of range"
  done

let test_splitmix_int_covers () =
  (* All residues of a small bound appear. *)
  let rng = Splitmix.of_int 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Splitmix.int rng 5) <- true
  done;
  check_bool "all residues" true (Array.for_all Fun.id seen)

(* ---------- Sampler ---------- *)

let test_sample_without_replacement () =
  let rng = Splitmix.of_int 3 in
  for _ = 1 to 100 do
    let picks = Sampler.sample_without_replacement rng ~n:30 ~k:10 in
    let sorted = List.sort_uniq compare (Array.to_list picks) in
    check_int "distinct" 10 (List.length sorted);
    List.iter
      (fun v -> if v < 0 || v >= 30 then Alcotest.fail "out of range")
      sorted
  done

let test_sample_without_replacement_all () =
  let rng = Splitmix.of_int 3 in
  let picks = Sampler.sample_without_replacement rng ~n:8 ~k:8 in
  Alcotest.(check (list int)) "permutation" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.sort compare (Array.to_list picks))

let test_hypergeometric_bounds () =
  let rng = Splitmix.of_int 4 in
  for _ = 1 to 500 do
    let h = Sampler.hypergeometric rng ~population:50 ~successes:20 ~draws:10 in
    if h < 0 || h > 10 then Alcotest.fail "outside [0, draws]"
  done

let test_hypergeometric_exhaustive () =
  let rng = Splitmix.of_int 4 in
  check_int "all draws"
    20
    (Sampler.hypergeometric rng ~population:20 ~successes:20 ~draws:20)

let test_hypergeometric_mean () =
  (* E[Y] = draws * successes / population; matches Equation 3's setup. *)
  let rng = Splitmix.of_int 4 in
  let reps = 3000 in
  let total = ref 0 in
  for _ = 1 to reps do
    total :=
      !total + Sampler.hypergeometric rng ~population:100 ~successes:30 ~draws:20
  done;
  let mean = float_of_int !total /. float_of_int reps in
  check_bool "mean close to 6" true (Float.abs (mean -. 6.0) < 0.3)

let test_zipf_range () =
  let rng = Splitmix.of_int 5 in
  let table = Sampler.zipf_table ~n:20 ~s:1.0 in
  for _ = 1 to 1000 do
    let v = Sampler.zipf_draw rng table in
    if v < 0 || v >= 20 then Alcotest.fail "zipf out of range"
  done

let test_zipf_skew () =
  (* Rank 0 must dominate under strong skew. *)
  let rng = Splitmix.of_int 6 in
  let table = Sampler.zipf_table ~n:10 ~s:2.0 in
  let count0 = ref 0 in
  let reps = 2000 in
  for _ = 1 to reps do
    if Sampler.zipf_draw rng table = 0 then incr count0
  done;
  check_bool "rank 0 majority" true (!count0 > reps / 3)

let test_categorical () =
  let rng = Splitmix.of_int 7 in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let i = Sampler.categorical rng [| 1.0; 0.0; 3.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_int "never draws zero-weight" 0 counts.(1);
  check_bool "weighting respected" true (counts.(2) > counts.(0))

let test_random_subset_of_size () =
  let rng = Splitmix.of_int 8 in
  for k = 0 to 10 do
    let s = Sampler.random_subset_of_size rng ~universe:10 ~k in
    check_int (Printf.sprintf "size %d" k) k (Bitset.cardinal s)
  done

let test_gaussian_moments () =
  let rng = Splitmix.of_int 9 in
  let xs = Array.init 5000 (fun _ -> Sampler.gaussian rng ~mean:2.0 ~stddev:0.5) in
  let m = Stats.mean xs in
  check_bool "mean" true (Float.abs (m -. 2.0) < 0.05);
  check_bool "stddev" true (Float.abs (Stats.stddev xs -. 0.5) < 0.05)

(* ---------- Pqueue ---------- *)

let test_pqueue_sorts () =
  let rng = Splitmix.of_int 10 in
  let h = Pqueue.create () in
  let values = Array.init 500 (fun _ -> Splitmix.float rng) in
  Array.iter (fun v -> Pqueue.push h v v) values;
  Alcotest.(check int) "size" 500 (Pqueue.size h);
  let prev = ref neg_infinity in
  while not (Pqueue.is_empty h) do
    let p, _ = Pqueue.pop_min h in
    if p < !prev then Alcotest.fail "not sorted";
    prev := p
  done

let test_pqueue_empty () =
  let h = Pqueue.create () in
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Pqueue.pop_min h));
  Alcotest.check_raises "peek empty" Not_found (fun () ->
      ignore (Pqueue.peek_min h))

let test_pqueue_peek () =
  let h = Pqueue.create () in
  Pqueue.push h 3.0 "c";
  Pqueue.push h 1.0 "a";
  Pqueue.push h 2.0 "b";
  Alcotest.(check (pair (float 0.0) string)) "peek" (1.0, "a") (Pqueue.peek_min h);
  Alcotest.(check int) "size unchanged" 3 (Pqueue.size h)

(* ---------- Numerics ---------- *)

let test_harmonic () =
  check_float "H_1" 1.0 (Numerics.harmonic 1);
  check_float "H_4" (1.0 +. 0.5 +. (1.0 /. 3.0) +. 0.25) (Numerics.harmonic 4);
  check_float "H_0" 0.0 (Numerics.harmonic 0);
  (* Asymptotic branch close to ln n + gamma. *)
  let h = Numerics.harmonic 2_000_000 in
  check_bool "asymptotic" true (Float.abs (h -. (log 2e6 +. 0.5772156649)) < 1e-6)

let test_isqrt () =
  List.iter
    (fun (n, r) -> check_int (Printf.sprintf "isqrt %d" n) r (Numerics.isqrt n))
    [ (0, 0); (1, 1); (3, 1); (4, 2); (15, 3); (16, 4); (1024, 32); (1023, 31) ]

let test_floor_pow2 () =
  check_float "5 -> 4" 4.0 (Numerics.floor_pow2 5.0);
  check_float "8 -> 8" 8.0 (Numerics.floor_pow2 8.0);
  check_float "0.7 -> 0.5" 0.5 (Numerics.floor_pow2 0.7);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Numerics.floor_pow2: non-positive input") (fun () ->
      ignore (Numerics.floor_pow2 0.0))

let test_ceil_div () =
  check_int "7/2" 4 (Numerics.ceil_div 7 2);
  check_int "8/2" 4 (Numerics.ceil_div 8 2);
  check_int "0/3" 0 (Numerics.ceil_div 0 3)

let test_pos () =
  check_float "positive" 3.0 (Numerics.pos 3.0);
  check_float "negative" 0.0 (Numerics.pos (-2.0))

let test_kahan () =
  (* Summing many tiny values against one big one. *)
  let xs = Array.make 10_001 1e-10 in
  xs.(0) <- 1.0;
  check_bool "kahan accurate" true
    (Float.abs (Numerics.kahan_sum xs -. (1.0 +. 1e-6)) < 1e-12)

let test_log_over_loglog () =
  check_float "small n" 1.0 (Numerics.log_over_loglog 2);
  let v = Numerics.log_over_loglog 1000 in
  check_bool "n=1000" true (Float.abs (v -. (log 1000.0 /. log (log 1000.0))) < 1e-9)

(* ---------- Stats ---------- *)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "mean" 3.0 s.Stats.mean;
  check_float "median" 3.0 s.Stats.median;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 5.0 s.Stats.max;
  check_int "n" 5 s.Stats.n

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "p0" 10.0 (Stats.percentile xs 0.0);
  check_float "p100" 40.0 (Stats.percentile xs 100.0);
  check_float "p50" 25.0 (Stats.percentile xs 50.0)

let test_stats_stddev () =
  check_float "constant" 0.0 (Stats.stddev [| 2.0; 2.0; 2.0 |]);
  check_float "simple" (sqrt 2.0) (Stats.stddev [| 1.0; 3.0 |])

let test_geometric_mean () =
  check_float "gm" 2.0 (Stats.geometric_mean [| 1.0; 2.0; 4.0 |]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geometric_mean: non-positive entry") (fun () ->
      ignore (Stats.geometric_mean [| 1.0; 0.0 |]))

let test_stats_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty")
    (fun () -> ignore (Stats.mean [||]))

(* ---------- Texttable ---------- *)

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    if i + n > String.length haystack then false
    else if String.sub haystack i n = needle then true
    else go (i + 1)
  in
  go 0

let test_table_render () =
  let t = Texttable.create [ "name"; "value" ] in
  Texttable.add_row t [ "alpha"; "1.5" ];
  Texttable.add_row t [ "b"; "22" ];
  let out = Texttable.render t in
  check_bool "has header" true (contains out "name");
  check_bool "mentions alpha" true (contains out "alpha");
  check_bool "numeric column right-aligned" true (contains out " 22")

let test_table_arity () =
  let t = Texttable.create [ "a"; "b" ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Texttable.add_row: expected 2 cells, got 1") (fun () ->
      Texttable.add_row t [ "only" ])

let test_table_rows_accessor () =
  let t = Texttable.create [ "a"; "b" ] in
  Texttable.add_row t [ "1"; "2" ];
  Texttable.add_rule t;
  Texttable.add_row t [ "3"; "4" ];
  Alcotest.(check (list string)) "headers" [ "a"; "b" ] (Texttable.headers t);
  Alcotest.(check (list (list string)))
    "rows skip rules"
    [ [ "1"; "2" ]; [ "3"; "4" ] ]
    (Texttable.rows t)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_union_contains;
      prop_inter_subset;
      prop_diff_disjoint;
      prop_cardinal_inclusion_exclusion;
      prop_complement_involution;
      prop_elements_sorted;
      prop_bitset_matches_reference;
    ]

let () =
  Alcotest.run "prelude"
    [
      ( "bitset",
        [
          Alcotest.test_case "empty" `Quick test_bitset_empty;
          Alcotest.test_case "add/mem" `Quick test_bitset_add_mem;
          Alcotest.test_case "remove" `Quick test_bitset_remove;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "universe mismatch" `Quick test_bitset_universe_mismatch;
          Alcotest.test_case "large universe" `Quick test_bitset_large_universe;
          Alcotest.test_case "full" `Quick test_bitset_full;
          Alcotest.test_case "to_int" `Quick test_bitset_to_int;
          Alcotest.test_case "choose" `Quick test_bitset_choose;
        ] );
      ("bitset-props", qcheck_tests);
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "copy" `Quick test_splitmix_copy;
          Alcotest.test_case "split" `Quick test_splitmix_split_independent;
          Alcotest.test_case "int bounds" `Quick test_splitmix_int_bounds;
          Alcotest.test_case "float range" `Quick test_splitmix_float_range;
          Alcotest.test_case "int covers residues" `Quick test_splitmix_int_covers;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "without replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "full permutation" `Quick test_sample_without_replacement_all;
          Alcotest.test_case "hypergeometric bounds" `Quick test_hypergeometric_bounds;
          Alcotest.test_case "hypergeometric exhaustive" `Quick test_hypergeometric_exhaustive;
          Alcotest.test_case "hypergeometric mean" `Quick test_hypergeometric_mean;
          Alcotest.test_case "zipf range" `Quick test_zipf_range;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "categorical" `Quick test_categorical;
          Alcotest.test_case "subset of size" `Quick test_random_subset_of_size;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "sorts" `Quick test_pqueue_sorts;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          Alcotest.test_case "peek" `Quick test_pqueue_peek;
        ] );
      ( "numerics",
        [
          Alcotest.test_case "harmonic" `Quick test_harmonic;
          Alcotest.test_case "isqrt" `Quick test_isqrt;
          Alcotest.test_case "floor_pow2" `Quick test_floor_pow2;
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
          Alcotest.test_case "pos" `Quick test_pos;
          Alcotest.test_case "kahan" `Quick test_kahan;
          Alcotest.test_case "log/loglog" `Quick test_log_over_loglog;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "empty" `Quick test_stats_empty;
        ] );
      ( "texttable",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "rows accessor" `Quick test_table_rows_accessor;
        ] );
    ]
